// Weighted max-min fair admission onto a shared storage channel.
//
// The ThrottledBackend models one Lustre allocation; when N tenants
// hammer it concurrently, arrival order decides who gets served — the
// classic noisy-neighbour failure.  FairScheduler interposes an
// admission gate: requests queue per tenant, and grants onto the
// channel (at most `max_inflight` at once, default 1 — one modelled
// pipe) are issued in start-time-fair-queuing order over *bytes*:
//
//   at grant:  start        = max(tenant.vtime, V)
//              V            = start
//              tenant.vtime = start + bytes / weight
//
// where V is the global virtual time.  Backlogged tenants therefore
// receive channel bytes proportional to their weights (max-min), and a
// tenant going idle forfeits — its vtime jumps forward to V on its next
// arrival, so it cannot bank credit and burst past active tenants.
//
// On top of the fair ordering:
//  - two lanes: every queued kPriority request (metadata, flushes) is
//    granted before any kBulk request, across all tenants; priority
//    bytes are still charged to the owning tenant's vtime.
//  - deadline-aware ordering: within a tenant+lane queue, requests sort
//    by (deadline, arrival); deadline-free requests sort last, FIFO.
//    Deadlines are absolute on the scheduler clock and compose with
//    issue-anchored retry deadlines (IoRequest::deadline_from), so a
//    retried op re-enters admission ahead of younger work.
//
// Threading: submit()/admit() are called from application threads and
// async execution streams; complete() from whichever thread finishes
// the transfer.  The queue mutex (rank kSchedQueue, just below the
// storage wrappers) is never held across a transfer — wait() blocks on
// a condition variable with the lock released, and the grant-holder
// performs the inner storage op outside the scheduler entirely.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/debug/lock_rank.h"
#include "sched/io_request.h"

namespace apio::sched {

/// One admitted request's grant state.  Returned by submit(); the
/// holder passes it to wait() (blocks until granted) and complete()
/// (frees the channel slot).  Single-use.
class Ticket {
 public:
  /// True once a channel slot has been granted (acquire: the grant
  /// happens-before everything the granted thread does).
  [[nodiscard]] bool granted() const {
    return granted_.load(std::memory_order_acquire);
  }

  /// The submitted request, tenant resolved (never empty).
  [[nodiscard]] const IoRequest& request() const { return request_; }

  /// Seconds from submit to grant; 0 until granted.
  [[nodiscard]] double wait_seconds() const {
    return granted() ? grant_time_ - submit_time_ : 0.0;
  }

  /// Scheduler-wide submission sequence number (arrival order).
  [[nodiscard]] std::uint64_t seq() const { return seq_; }

 private:
  friend class FairScheduler;

  IoRequest request_;
  std::uint64_t seq_ = 0;
  double submit_time_ = 0.0;
  double grant_time_ = 0.0;
  std::atomic<bool> granted_{false};
  std::atomic<bool> completed_{false};
};

using TicketPtr = std::shared_ptr<Ticket>;

struct SchedOptions {
  /// Channel slots grantable at once.  1 (the default) serialises
  /// dispatch — the shared-pipe model the fairness gate measures.
  int max_inflight = 1;
  /// Time source for waits/deadlines; null = process wall clock.
  const Clock* clock = nullptr;
};

/// Per-tenant accounting, exported by stats().
struct TenantStats {
  double weight = 1.0;
  std::uint64_t submitted_ops = 0;
  std::uint64_t submitted_bytes = 0;
  std::uint64_t dispatched_ops = 0;
  std::uint64_t dispatched_bytes = 0;
  /// Dispatched bytes split by lane (index by static_cast<int>(Lane)).
  /// Fairness bounds apply to the bulk lane; the priority lane trades
  /// byte-fairness for bounded latency by design.
  std::uint64_t lane_bytes[kLanes] = {0, 0};
  std::uint64_t priority_ops = 0;       ///< dispatched via kPriority
  std::uint64_t deadline_misses = 0;    ///< granted past their deadline
  std::uint64_t queue_depth = 0;        ///< currently queued (ungranted)
  std::uint64_t max_queue_depth = 0;
  double wait_seconds_total = 0.0;      ///< submit→grant, summed
  /// Per-lane submit→grant wait samples (capped; see kMaxWaitSamples).
  /// Index by static_cast<int>(Lane).
  std::vector<double> wait_samples[kLanes];
};

struct SchedStats {
  std::uint64_t submitted_ops = 0;
  std::uint64_t dispatched_ops = 0;
  std::uint64_t dispatched_bytes = 0;
  std::uint64_t deadline_misses = 0;
  double virtual_time = 0.0;
  std::map<TenantId, TenantStats> tenants;
};

/// The admission gate.  Create one per shared channel (per modelled
/// PFS), share it between every QosBackend/connector draining into that
/// channel.
class FairScheduler {
 public:
  /// Wait samples kept per tenant+lane for percentile reporting;
  /// beyond the cap new samples are dropped (totals keep counting).
  static constexpr std::size_t kMaxWaitSamples = 65536;

  explicit FairScheduler(SchedOptions options = {});
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Declares `tenant` with a fair-share weight (> 0).  Unregistered
  /// tenants are auto-registered at weight 1 on first submit.
  /// Re-registering adjusts the weight.
  void register_tenant(const TenantId& tenant, double weight);

  /// Enqueues `request` for admission; never blocks.  The empty tenant
  /// resolves to kDefaultTenant.
  TicketPtr submit(const IoRequest& request);

  /// Blocks until `ticket` is granted a channel slot (or the scheduler
  /// is closed, which grants everything so drains cannot wedge).
  void wait(const TicketPtr& ticket);

  /// Releases `ticket`'s channel slot and dispatches the next request.
  /// Must be called exactly once per granted ticket.
  void complete(const TicketPtr& ticket);

  /// submit() + wait() — the common synchronous admission path.
  /// The caller performs the transfer, then calls complete().
  TicketPtr admit(const IoRequest& request);

  /// Grants every queued and future request immediately.  Used at
  /// teardown so in-flight drains never block on a dead scheduler.
  void close();

  [[nodiscard]] bool closed() const;

  [[nodiscard]] SchedStats stats() const;

 private:
  struct Tenant;
  struct State;

  void dispatch_locked(State& state);

  std::unique_ptr<State> state_;
};

using FairSchedulerPtr = std::shared_ptr<FairScheduler>;

}  // namespace apio::sched
