// apio-h5: a self-describing hierarchical container with HDF5-style
// semantics — one file, a tree of groups, typed N-dimensional datasets
// with hyperslab-selected parallel reads/writes, and attributes.
//
// This is the "native" data path; the VOL layer (src/vol) routes the
// same operations either directly here (sync) or through a background
// execution stream (async), exactly as HDF5's Virtual Object Layer
// routes H5Dwrite/H5Dread in the paper.
//
// Concurrency: metadata operations (create/open/flush) are serialised
// internally; raw-data transfers to disjoint selections may run
// concurrently from many ranks, the MPI-IO-style contract.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "h5/convert.h"
#include "h5/datatype.h"
#include "h5/dataspace.h"
#include "h5/metadata.h"
#include "h5/properties.h"
#include "storage/backend.h"

namespace apio::h5 {

class File;
class Group;
using FilePtr = std::shared_ptr<File>;

/// Handle to a dataset.  Lightweight; valid while the file is open and
/// the dataset is not removed.
class Dataset {
 public:
  Dataset() = default;

  const std::string& name() const;
  Datatype dtype() const;
  const Dims& dims() const;
  Layout layout() const;
  const Dims& chunk_dims() const;
  /// Chunk filter (kNone for contiguous datasets).
  FilterId filter() const;
  std::uint64_t npoints() const;
  std::size_t element_size() const;
  /// Total raw-data bytes implied by the current extent.
  std::uint64_t byte_size() const;

  /// Writes packed `data` into the selected elements.  data.size() must
  /// equal selection npoints * element size.
  void write_raw(const Selection& selection, std::span<const std::byte> data);

  /// Reads the selected elements into packed `out` (same size contract).
  /// Unwritten chunked regions read back as zero fill.
  void read_raw(const Selection& selection, std::span<std::byte> out) const;

  template <typename T>
  void write(const Selection& selection, std::span<const T> data) {
    require_dtype(native_datatype<T>());
    write_raw(selection, std::as_bytes(data));
  }

  template <typename T>
  void read(const Selection& selection, std::span<T> out) const {
    require_dtype(native_datatype<T>());
    read_raw(selection, std::as_writable_bytes(out));
  }

  /// Reads the selection into a freshly allocated vector.
  template <typename T>
  std::vector<T> read_vector(const Selection& selection) const {
    std::vector<T> out(npoints_of(selection));
    read<T>(selection, out);
    return out;
  }

  /// Type-converting write: `data` elements of type T are converted to
  /// the dataset's stored type on the way in (HDF5 memory-type vs
  /// file-type semantics).
  template <typename T>
  void write_as(const Selection& selection, std::span<const T> data);

  /// Type-converting read: stored elements are converted to T.
  template <typename T>
  std::vector<T> read_as(const Selection& selection) const;

  /// Grows (or shrinks) a chunked dataset's extent; rank must match.
  void set_extent(const Dims& new_dims);

  /// Attribute access.  Scalars only need the value overloads.
  template <typename T>
  void set_attribute(const std::string& attr_name, const T& value) {
    set_attribute_raw(attr_name, native_datatype<T>(), Dims{},
                      std::as_bytes(std::span<const T>(&value, 1)));
  }
  template <typename T>
  T attribute(const std::string& attr_name) const {
    T value{};
    attribute_raw(attr_name, native_datatype<T>(),
                  std::as_writable_bytes(std::span<T>(&value, 1)));
    return value;
  }
  bool has_attribute(const std::string& attr_name) const;

  /// Names of all attributes, in creation order.
  std::vector<std::string> attribute_names() const;
  /// Full copy of one attribute (type, dims, packed bytes); used by
  /// generic consumers such as repack().
  meta::AttributeNode attribute_info(const std::string& attr_name) const;

  void set_attribute_raw(const std::string& attr_name, Datatype dtype, Dims dims,
                         std::span<const std::byte> value);
  void attribute_raw(const std::string& attr_name, Datatype expected,
                     std::span<std::byte> out) const;

  /// Stable identity of the underlying object while the file is open;
  /// used as a cache key by the async VOL's prefetcher.
  const void* object_key() const { return node_; }

 private:
  friend class Group;
  friend class File;
  Dataset(File* file, meta::DatasetNode* node) : file_(file), node_(node) {}

  std::uint64_t npoints_of(const Selection& selection) const;
  void require_dtype(Datatype t) const;
  void require_valid() const;

  File* file_ = nullptr;
  meta::DatasetNode* node_ = nullptr;
};

/// Handle to a group.  Lightweight; valid while the file is open.
class Group {
 public:
  Group() = default;

  const std::string& name() const;

  Group create_group(const std::string& child_name);
  Group open_group(const std::string& child_name) const;
  /// Opens the group, creating it when absent.
  Group require_group(const std::string& child_name);

  Dataset create_dataset(const std::string& ds_name, Datatype dtype, Dims dims,
                         DatasetCreateProps props = {});
  Dataset open_dataset(const std::string& ds_name) const;
  bool has_group(const std::string& child_name) const;
  bool has_dataset(const std::string& ds_name) const;

  std::vector<std::string> group_names() const;
  std::vector<std::string> dataset_names() const;

  /// Unlinks a child group or dataset (raw data extents are not
  /// reclaimed, matching HDF5-without-h5repack behaviour).
  void remove(const std::string& child_name);

  template <typename T>
  void set_attribute(const std::string& attr_name, const T& value) {
    set_attribute_raw(attr_name, native_datatype<T>(), Dims{},
                      std::as_bytes(std::span<const T>(&value, 1)));
  }
  template <typename T>
  T attribute(const std::string& attr_name) const {
    T value{};
    attribute_raw(attr_name, native_datatype<T>(),
                  std::as_writable_bytes(std::span<T>(&value, 1)));
    return value;
  }
  bool has_attribute(const std::string& attr_name) const;
  std::vector<std::string> attribute_names() const;
  meta::AttributeNode attribute_info(const std::string& attr_name) const;
  void set_attribute_raw(const std::string& attr_name, Datatype dtype, Dims dims,
                         std::span<const std::byte> value);
  void attribute_raw(const std::string& attr_name, Datatype expected,
                     std::span<std::byte> out) const;

 private:
  friend class File;
  Group(File* file, meta::GroupNode* node) : file_(file), node_(node) {}

  void require_valid() const;

  File* file_ = nullptr;
  meta::GroupNode* node_ = nullptr;
};

/// An open container.  Create/open via the static factories; share the
/// FilePtr across ranks for parallel access.
class File : public std::enable_shared_from_this<File> {
 public:
  /// Creates a fresh container on `backend` (truncating semantics: the
  /// backend is assumed empty or disposable).
  static FilePtr create(storage::BackendPtr backend, FileProps props = {});

  /// Opens an existing container; throws FormatError when the backend
  /// does not hold one.
  static FilePtr open(storage::BackendPtr backend);

  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  Group root();

  /// Walks `/`-separated `path`, creating intermediate groups.
  Group ensure_path(std::string_view path);

  /// Opens the dataset at a `/`-separated path ("particles/x").
  Dataset dataset_at(std::string_view path);

  /// Inverse of dataset_at: full path of an open dataset handle
  /// ("a/b/d").  Throws NotFoundError when the handle does not belong
  /// to this file.  Used by trace recording and diagnostics.
  std::string path_of(const Dataset& ds) const;

  /// Serialises metadata and flushes the backend (shadow update: data
  /// first, superblock last).
  void flush();

  /// Flushes and detaches from the backend; handles become invalid.
  void close();

  bool is_open() const { return open_; }

  const storage::BackendPtr& backend() const { return backend_; }

  /// Raw-data bytes allocated so far (diagnostics).
  std::uint64_t end_of_file() const { return eof_; }

 private:
  friend class Group;
  friend class Dataset;

  File(storage::BackendPtr backend, FileProps props);

  /// Allocates `size` bytes of file space; returns the offset.
  std::uint64_t allocate(std::uint64_t size);

  /// Chunked-layout helper (unfiltered): offset of the chunk,
  /// allocating on demand.
  std::uint64_t chunk_offset_for_write(meta::DatasetNode& node, const Dims& coords,
                                       std::uint64_t chunk_bytes);
  /// Read-side lookup; returns false when the chunk was never written.
  bool chunk_offset_for_read(const meta::DatasetNode& node, const Dims& coords,
                             std::uint64_t& offset) const;

  /// Filtered-layout helpers (caller holds filter_mutex_).
  std::vector<std::byte> read_chunk_decoded(const meta::DatasetNode& node,
                                            const Dims& coords,
                                            std::uint64_t chunk_bytes) const;
  void store_chunk_encoded(meta::DatasetNode& node, const Dims& coords,
                           std::span<const std::byte> raw_chunk);

  void write_superblock(std::uint64_t meta_offset, std::uint64_t meta_size,
                        std::uint32_t meta_crc);

  storage::BackendPtr backend_;
  FileProps props_;
  std::unique_ptr<meta::GroupNode> root_;
  mutable std::mutex meta_mutex_;
  /// Serialises whole-chunk read-modify-write cycles of filtered
  /// datasets (parallel HDF5 semantics: filtered chunks are not
  /// concurrently writable).
  mutable std::mutex filter_mutex_;
  std::uint64_t eof_ = 0;
  bool open_ = false;
};

template <typename T>
void Dataset::write_as(const Selection& selection, std::span<const T> data) {
  if (native_datatype<T>() == dtype()) {
    write<T>(selection, data);
    return;
  }
  const std::uint64_t n = npoints_of(selection);
  std::vector<std::byte> converted(n * element_size());
  convert_elements(native_datatype<T>(), std::as_bytes(data), dtype(), converted, n);
  write_raw(selection, converted);
}

template <typename T>
std::vector<T> Dataset::read_as(const Selection& selection) const {
  if (native_datatype<T>() == dtype()) return read_vector<T>(selection);
  const std::uint64_t n = npoints_of(selection);
  std::vector<std::byte> stored(n * element_size());
  read_raw(selection, stored);
  std::vector<T> out(n);
  convert_elements(dtype(), stored, native_datatype<T>(),
                   std::as_writable_bytes(std::span<T>(out)), n);
  return out;
}

/// Convenience: creates a container on a fresh POSIX file.
FilePtr create_file(const std::string& path, FileProps props = {});

/// Convenience: opens a container from a POSIX file.
FilePtr open_file(const std::string& path);

}  // namespace apio::h5
