// Tests for the native (synchronous) VOL connector.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "storage/memory_backend.h"
#include "vol/native_connector.h"

namespace apio::vol {
namespace {

/// Observer that stores every record it sees.
class RecordingObserver : public IoObserver {
 public:
  void on_io(const IoRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  }
  std::vector<IoRecord> records() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<IoRecord> records_;
};

std::shared_ptr<NativeConnector> make_connector() {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  return std::make_shared<NativeConnector>(std::move(file));
}

TEST(NativeConnectorTest, RequiresFile) {
  EXPECT_THROW(NativeConnector(nullptr), InvalidArgumentError);
}

TEST(NativeConnectorTest, WriteCompletesImmediately) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};
  auto req = conn->dataset_write(ds, h5::Selection::all(),
                                 std::as_bytes(std::span<const std::int32_t>(values)));
  EXPECT_TRUE(req->test());
  EXPECT_FALSE(req->failed());
  req->wait();
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()), values);
}

TEST(NativeConnectorTest, ReadCompletesImmediately) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{5, 6, 7, 8};
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int32_t>(values)));
  std::vector<std::int32_t> out(4);
  auto req = conn->dataset_read(ds, h5::Selection::all(),
                                std::as_writable_bytes(std::span<std::int32_t>(out)));
  EXPECT_TRUE(req->test());
  EXPECT_EQ(out, values);
}

TEST(NativeConnectorTest, PrefetchIsHarmlessNoOp) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  EXPECT_NO_THROW(conn->prefetch(ds, h5::Selection::all()));
}

TEST(NativeConnectorTest, ObserverSeesSyncRecords) {
  auto conn = make_connector();
  auto observer = std::make_shared<RecordingObserver>();
  conn->add_observer(observer);
  conn->set_reported_ranks(12);
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kFloat64, {8});
  const std::vector<double> values(8, 1.0);
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const double>(values)));
  std::vector<double> out(8);
  conn->dataset_read(ds, h5::Selection::all(),
                     std::as_writable_bytes(std::span<double>(out)));

  auto records = observer->records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].op, IoOp::kWrite);
  EXPECT_EQ(records[0].bytes, 64u);
  EXPECT_EQ(records[0].ranks, 12);
  EXPECT_FALSE(records[0].async);
  EXPECT_DOUBLE_EQ(records[0].blocking_seconds, records[0].completion_seconds);
  EXPECT_EQ(records[1].op, IoOp::kRead);
}

TEST(NativeConnectorTest, FlushAndCloseWork) {
  auto conn = make_connector();
  conn->file()->root().create_dataset("d", h5::Datatype::kInt8, {1});
  auto req = conn->flush();
  EXPECT_TRUE(req->test());
  conn->close();
  EXPECT_FALSE(conn->file()->is_open());
}

TEST(NativeConnectorTest, WriteErrorSurfacesSynchronously) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> tiny{1};
  EXPECT_THROW(conn->dataset_write(ds, h5::Selection::all(),
                                   std::as_bytes(std::span<const std::int32_t>(tiny))),
               InvalidArgumentError);
}

}  // namespace
}  // namespace apio::vol
