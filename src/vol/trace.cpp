#include "vol/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "common/debug/lock_rank.h"
#include "common/error.h"
#include "common/units.h"
#include "vol/selection_token.h"

namespace apio::vol {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos;
}

void append_csv_field(std::string& out, const std::string& field) {
  if (!needs_quoting(field)) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}

/// RFC4180-style row splitter: quote-aware, tolerates commas/newlines/
/// CRLF inside quoted fields, doubles-as-escape for quotes.  Throws
/// FormatError on an unterminated quoted field.
std::vector<std::vector<std::string>> parse_csv(const std::string& csv) {
  std::vector<std::vector<std::string>> rows;
  const std::size_t n = csv.size();
  std::size_t i = 0;
  while (i < n) {
    std::vector<std::string> fields;
    bool row_done = false;
    while (!row_done) {
      std::string field;
      if (i < n && csv[i] == '"') {
        ++i;
        bool closed = false;
        while (i < n) {
          const char c = csv[i];
          if (c == '"') {
            if (i + 1 < n && csv[i + 1] == '"') {
              field += '"';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            field += c;
            ++i;
          }
        }
        if (!closed) throw FormatError("unterminated quoted field in trace CSV");
        if (i < n && csv[i] != ',' && csv[i] != '\n' && csv[i] != '\r') {
          throw FormatError("garbage after quoted field in trace CSV");
        }
      } else {
        while (i < n && csv[i] != ',' && csv[i] != '\n') {
          if (csv[i] != '\r') field += csv[i];
          ++i;
        }
      }
      fields.push_back(std::move(field));
      if (i < n && csv[i] == ',') {
        ++i;
        continue;
      }
      if (i < n && csv[i] == '\r') ++i;
      if (i < n && csv[i] == '\n') ++i;
      row_done = true;
    }
    // Blank separator lines parse as one empty field; skip them.
    if (fields.size() == 1 && fields[0].empty()) continue;
    rows.push_back(std::move(fields));
  }
  return rows;
}

}  // namespace

void Trace::append(TraceEvent event) { events_.push_back(std::move(event)); }

std::string Trace::to_csv() const {
  std::string out = "kind,path,selection,bytes,issue_time,blocking,trace_id,span_id\n";
  std::ostringstream num;
  for (const auto& e : events_) {
    out += std::to_string(static_cast<int>(e.kind));
    out += ',';
    append_csv_field(out, e.dataset_path);
    out += ',';
    out += selection_to_token(e.selection);
    out += ',';
    out += std::to_string(e.bytes);
    num.str("");
    num << ',' << e.issue_time << ',' << e.blocking_seconds;
    out += num.str();
    out += ',';
    out += std::to_string(e.trace_id);
    out += ',';
    out += std::to_string(e.span_id);
    out += '\n';
  }
  return out;
}

Trace Trace::from_csv(const std::string& csv) {
  Trace trace;
  const auto rows = parse_csv(csv);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto& fields = rows[r];
    if (r == 0 && !fields.empty() && fields[0] == "kind") continue;  // header
    // 6 columns is the legacy pre-trace-id layout; 8 is current.
    if (fields.size() != 6 && fields.size() != 8) {
      throw FormatError("malformed trace row with " +
                        std::to_string(fields.size()) + " fields");
    }
    TraceEvent e;
    const int kind = std::atoi(fields[0].c_str());
    if (kind < 0 || kind > 3) {
      throw FormatError("bad trace kind '" + fields[0] + "'");
    }
    e.kind = static_cast<TraceEvent::Kind>(kind);
    e.dataset_path = fields[1];
    e.selection = selection_from_token(fields[2]);
    e.bytes = std::strtoull(fields[3].c_str(), nullptr, 10);
    e.issue_time = std::atof(fields[4].c_str());
    e.blocking_seconds = std::atof(fields[5].c_str());
    if (fields.size() == 8) {
      e.trace_id = std::strtoull(fields[6].c_str(), nullptr, 10);
      e.span_id = std::strtoull(fields[7].c_str(), nullptr, 10);
    }
    trace.append(std::move(e));
  }
  return trace;
}

// ---------------------------------------------------------------------------
// TraceRecorder

/// The recorder's subscription on the unified record stream.  Detail
/// strings (path, selection token) are requested so connectors fill
/// them; records are stored with absolute issue times and rebased at
/// snapshot time.
class TraceRecorder::Sink final : public IoObserver {
 public:
  bool wants_detail() const override { return true; }

  void on_io(const IoRecord& record) override {
    TraceEvent event;
    event.kind = record.op;
    event.dataset_path = record.dataset_path;
    event.selection = selection_from_token(record.selection);
    event.bytes = record.bytes;
    event.issue_time = record.issue_time;
    event.blocking_seconds = record.blocking_seconds;
    event.trace_id = record.trace_id;
    event.span_id = record.span_id;
    std::lock_guard lock(mutex_);
    events_.push_back(std::move(event));
  }

  Trace snapshot() const {
    std::vector<TraceEvent> events;
    {
      std::lock_guard lock(mutex_);
      events = events_;
    }
    // Async connectors report at completion, which may disagree with
    // issue order; a trace is by definition issue-ordered.
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.issue_time < b.issue_time;
                     });
    Trace trace;
    if (!events.empty()) {
      const double base = events.front().issue_time;
      for (auto& e : events) {
        e.issue_time -= base;
        trace.append(std::move(e));
      }
    }
    return trace;
  }

 private:
  mutable debug::RankedMutex<debug::LockRank::kVolTrace> mutex_;
  std::vector<TraceEvent> events_;
};

TraceRecorder::TraceRecorder(ConnectorPtr inner, const Clock* /*clock*/)
    : inner_(std::move(inner)), sink_(std::make_shared<Sink>()) {
  APIO_REQUIRE(inner_ != nullptr, "TraceRecorder requires an inner connector");
  inner_->add_observer(sink_);
}

TraceRecorder::~TraceRecorder() {
  // The sink must not outlive this subscription: the inner connector is
  // shared and may keep emitting after the recorder is gone.
  inner_->remove_observer(sink_);
}

RequestPtr TraceRecorder::dataset_write(h5::Dataset ds, const h5::Selection& selection,
                                        std::span<const std::byte> data) {
  return inner_->dataset_write(ds, selection, data);
}

RequestPtr TraceRecorder::dataset_read(h5::Dataset ds, const h5::Selection& selection,
                                       std::span<std::byte> out) {
  return inner_->dataset_read(ds, selection, out);
}

void TraceRecorder::prefetch(h5::Dataset ds, const h5::Selection& selection) {
  inner_->prefetch(ds, selection);
}

RequestPtr TraceRecorder::flush() { return inner_->flush(); }

Trace TraceRecorder::trace() const { return sink_->snapshot(); }

// ---------------------------------------------------------------------------
// Replay

ReplayResult replay_trace(const Trace& trace, Connector& connector,
                          ReplayOptions options) {
  WallClock clock;
  const double t_start = clock.now();
  ReplayResult result;
  std::vector<RequestPtr> outstanding;
  double prev_issue = 0.0;

  for (const auto& event : trace.events()) {
    // Reproduce the inter-call gap (the original compute phase).
    if (options.time_scale > 0.0 && event.issue_time > prev_issue) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          (event.issue_time - prev_issue) * options.time_scale));
    }
    prev_issue = event.issue_time;

    const double t0 = clock.now();
    switch (event.kind) {
      case TraceEvent::Kind::kWrite: {
        auto ds = connector.file()->dataset_at(event.dataset_path);
        std::vector<std::byte> payload(event.bytes, std::byte{options.fill});
        outstanding.push_back(connector.dataset_write(ds, event.selection, payload));
        result.bytes_written += event.bytes;
        break;
      }
      case TraceEvent::Kind::kRead: {
        auto ds = connector.file()->dataset_at(event.dataset_path);
        std::vector<std::byte> sink(event.bytes);
        auto req = connector.dataset_read(ds, event.selection, sink);
        req->wait();  // the original caller consumed the data
        result.bytes_read += event.bytes;
        break;
      }
      case TraceEvent::Kind::kPrefetch: {
        auto ds = connector.file()->dataset_at(event.dataset_path);
        connector.prefetch(ds, event.selection);
        break;
      }
      case TraceEvent::Kind::kFlush:
        outstanding.push_back(connector.flush());
        break;
    }
    result.blocking_seconds += clock.now() - t0;
    ++result.operations;
  }
  for (auto& req : outstanding) req->wait();
  connector.wait_all();
  result.total_seconds = clock.now() - t_start;
  return result;
}

// ---------------------------------------------------------------------------
// IoProfile

IoProfile::IoProfile(const Trace& trace) : histogram_(48, 0) {
  for (const auto& e : trace.events()) {
    ++total_ops_;
    if (e.kind == TraceEvent::Kind::kFlush) continue;
    auto& p = per_dataset_[e.dataset_path];
    p.blocking_seconds += e.blocking_seconds;
    if (e.kind == TraceEvent::Kind::kWrite) {
      ++p.writes;
      p.bytes_written += e.bytes;
    } else {
      ++p.reads;
      p.bytes_read += e.bytes;
    }
    total_bytes_ += e.bytes;
    std::size_t bucket = 0;
    if (e.bytes > 0) {
      bucket = static_cast<std::size_t>(std::floor(std::log2(
          static_cast<double>(e.bytes))));
      bucket = std::min(bucket, histogram_.size() - 1);
    }
    ++histogram_[bucket];
  }
}

std::string IoProfile::report() const {
  std::ostringstream os;
  os << "I/O profile: " << total_ops_ << " operations, "
     << format_bytes(total_bytes_) << " moved\n";
  os << "  per dataset:\n";
  for (const auto& [path, p] : per_dataset_) {
    os << "    " << path << ": " << p.writes << " writes ("
       << format_bytes(p.bytes_written) << "), " << p.reads << " reads ("
       << format_bytes(p.bytes_read) << "), blocking "
       << format_seconds(p.blocking_seconds) << '\n';
  }
  os << "  request-size histogram (non-empty buckets):\n";
  for (std::size_t i = 0; i < histogram_.size(); ++i) {
    if (histogram_[i] == 0) continue;
    os << "    [" << format_bytes(1ull << i) << ", "
       << format_bytes(1ull << (i + 1)) << "): " << histogram_[i] << '\n';
  }
  return os.str();
}

}  // namespace apio::vol
