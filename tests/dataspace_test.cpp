// Unit + property tests for dataspaces and hyperslab selections.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/error.h"
#include "h5/dataspace.h"

namespace apio::h5 {
namespace {

/// Collects (offset, count) runs for inspection.
std::vector<std::pair<std::uint64_t, std::uint64_t>> runs_of(
    const Dims& extent, const Selection& sel) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for_each_run(extent, sel, [&](std::uint64_t off, std::uint64_t n) {
    out.emplace_back(off, n);
  });
  return out;
}

/// Expands runs into the full element-offset list.
std::vector<std::uint64_t> elements_of(const Dims& extent, const Selection& sel) {
  std::vector<std::uint64_t> out;
  for_each_run(extent, sel, [&](std::uint64_t off, std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(off + i);
  });
  return out;
}

TEST(DimsTest, NumElements) {
  EXPECT_EQ(num_elements({}), 1u);  // scalar space
  EXPECT_EQ(num_elements({5}), 5u);
  EXPECT_EQ(num_elements({3, 4, 5}), 60u);
  EXPECT_EQ(num_elements({3, 0, 5}), 0u);
}

TEST(DimsTest, RowPitches) {
  const auto p = row_pitches({4, 3, 2});
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[0], 6u);
  EXPECT_EQ(p[1], 2u);
  EXPECT_EQ(p[2], 1u);
}

TEST(SelectionTest, AllSelectsEverything) {
  const Selection all = Selection::all();
  EXPECT_TRUE(all.is_all());
  EXPECT_EQ(all.npoints({4, 5}), 20u);
  const auto runs = runs_of({4, 5}, all);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], std::make_pair(std::uint64_t{0}, std::uint64_t{20}));
}

TEST(SelectionTest, OffsetsSelection1D) {
  const auto sel = Selection::offsets({3}, {4});
  EXPECT_EQ(sel.npoints({10}), 4u);
  const auto runs = runs_of({10}, sel);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], std::make_pair(std::uint64_t{3}, std::uint64_t{4}));
}

TEST(SelectionTest, Offsets2DProducesOneRunPerRow) {
  // 6x8 extent, select rows 1..3, cols 2..5.
  const auto sel = Selection::offsets({1, 2}, {3, 4});
  const auto runs = runs_of({6, 8}, sel);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], std::make_pair(std::uint64_t{1 * 8 + 2}, std::uint64_t{4}));
  EXPECT_EQ(runs[1], std::make_pair(std::uint64_t{2 * 8 + 2}, std::uint64_t{4}));
  EXPECT_EQ(runs[2], std::make_pair(std::uint64_t{3 * 8 + 2}, std::uint64_t{4}));
}

TEST(SelectionTest, FullAdjacentRowsCoalesceIntoOneRun) {
  // Entire adjacent rows are file-contiguous and must merge into a
  // single transfer (otherwise every row pays a backend round-trip).
  const auto sel = Selection::offsets({2, 0}, {2, 8});
  const auto runs = runs_of({6, 8}, sel);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], std::make_pair(std::uint64_t{16}, std::uint64_t{16}));
}

TEST(SelectionTest, FullTrailingDimsCoalesceAcrossOuterDim) {
  // [2, 4, 4] block covering dims 1..2 fully: one run of 32 elements.
  const auto sel = Selection::offsets({1, 0, 0}, {2, 4, 4});
  const auto runs = runs_of({8, 4, 4}, sel);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], std::make_pair(std::uint64_t{16}, std::uint64_t{32}));
}

TEST(SelectionTest, StridedSelection) {
  Hyperslab slab;
  slab.start = {1};
  slab.stride = {3};
  slab.count = {4};
  const auto sel = Selection::hyperslab(slab);
  EXPECT_EQ(sel.npoints({20}), 4u);
  const auto elems = elements_of({20}, sel);
  EXPECT_EQ(elems, (std::vector<std::uint64_t>{1, 4, 7, 10}));
}

TEST(SelectionTest, StridedBlockSelection) {
  Hyperslab slab;
  slab.start = {0};
  slab.stride = {4};
  slab.count = {3};
  slab.block = {2};
  const auto sel = Selection::hyperslab(slab);
  EXPECT_EQ(sel.npoints({12}), 6u);
  const auto elems = elements_of({12}, sel);
  EXPECT_EQ(elems, (std::vector<std::uint64_t>{0, 1, 4, 5, 8, 9}));
}

TEST(SelectionTest, StrideEqualsBlockCoalesces) {
  // stride == block means contiguous coverage; one run expected.
  Hyperslab slab;
  slab.start = {2};
  slab.stride = {3};
  slab.count = {4};
  slab.block = {3};
  const auto runs = runs_of({20}, Selection::hyperslab(slab));
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], std::make_pair(std::uint64_t{2}, std::uint64_t{12}));
}

TEST(SelectionTest, Strided2D) {
  Hyperslab slab;
  slab.start = {0, 1};
  slab.stride = {2, 2};
  slab.count = {2, 3};
  const auto sel = Selection::hyperslab(slab);
  const auto elems = elements_of({4, 8}, sel);
  // rows 0 and 2, cols 1, 3, 5.
  EXPECT_EQ(elems, (std::vector<std::uint64_t>{1, 3, 5, 17, 19, 21}));
}

TEST(SelectionTest, EmptyCountSelectsNothing) {
  const auto sel = Selection::offsets({0, 0}, {0, 5});
  EXPECT_EQ(sel.npoints({4, 8}), 0u);
  EXPECT_TRUE(runs_of({4, 8}, sel).empty());
}

TEST(SelectionTest, ScalarSpace) {
  const auto runs = runs_of({}, Selection::all());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].second, 1u);
}

TEST(SelectionValidationTest, RankMismatchThrows) {
  const auto sel = Selection::offsets({0}, {2});
  EXPECT_THROW(sel.validate({4, 4}), InvalidArgumentError);
}

TEST(SelectionValidationTest, OutOfBoundsThrows) {
  EXPECT_THROW(Selection::offsets({3}, {5}).validate({6}), InvalidArgumentError);
  EXPECT_NO_THROW(Selection::offsets({3}, {3}).validate({6}));
}

TEST(SelectionValidationTest, BlockLargerThanStrideThrows) {
  Hyperslab slab;
  slab.start = {0};
  slab.stride = {2};
  slab.count = {3};
  slab.block = {3};
  EXPECT_THROW(Selection::hyperslab(slab).validate({20}), InvalidArgumentError);
}

TEST(SelectionValidationTest, BlockLargerThanStrideOkWithSingleCount) {
  Hyperslab slab;
  slab.start = {0};
  slab.stride = {1};
  slab.count = {1};
  slab.block = {5};
  EXPECT_NO_THROW(Selection::hyperslab(slab).validate({5}));
}

TEST(SelectionValidationTest, ZeroStrideThrows) {
  Hyperslab slab;
  slab.start = {0};
  slab.stride = {0};
  slab.count = {2};
  EXPECT_THROW(Selection::hyperslab(slab).validate({4}), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Overflow regressions: the bounds arithmetic used to be unchecked
// uint64, so start + (count-1)*stride + block could wrap past 2^64 and
// land back inside the extent, passing validation for a selection that
// is wildly out of bounds.

TEST(SelectionValidationTest, StrideOverflowAtWrapBoundaryThrows) {
  // (count-1)*stride = 2 * 2^63 wraps to 0; last element appeared to be
  // start + block - 1 = 50, inside the {100} extent.
  Hyperslab slab;
  slab.start = {50};
  slab.stride = {1ull << 63};
  slab.count = {3};
  EXPECT_THROW(Selection::hyperslab(slab).validate({100}), InvalidArgumentError);
}

TEST(SelectionValidationTest, StartPlusSpanOverflowThrows) {
  // start + span wraps: start near 2^64, modest strided span.
  Hyperslab slab;
  slab.start = {~0ull - 10};
  slab.stride = {8};
  slab.count = {4};
  EXPECT_THROW(Selection::hyperslab(slab).validate({100}), InvalidArgumentError);
}

TEST(SelectionValidationTest, BlockAdditionOverflowThrows) {
  Hyperslab slab;
  slab.start = {1};
  slab.stride = {1};
  slab.count = {1};
  slab.block = {~0ull};
  EXPECT_THROW(Selection::hyperslab(slab).validate({100}), InvalidArgumentError);
}

TEST(HyperslabNpointsTest, ProductOverflowThrows) {
  // 2^32 * 2^32 = 2^64 wraps to 0 in unchecked arithmetic.
  Hyperslab slab;
  slab.start = {0, 0};
  slab.count = {1ull << 32, 1ull << 32};
  EXPECT_THROW(slab.npoints(), InvalidArgumentError);
}

TEST(HyperslabNpointsTest, BlockProductOverflowThrows) {
  Hyperslab slab;
  slab.start = {0};
  slab.count = {1ull << 32};
  slab.block = {1ull << 32};
  EXPECT_THROW(slab.npoints(), InvalidArgumentError);
}

TEST(HyperslabNpointsTest, BlockRankMismatchThrows) {
  // npoints() may legitimately run before validate(); a short block
  // vector used to read block[1] out of bounds here.
  Hyperslab slab;
  slab.start = {0, 0};
  slab.count = {2, 2};
  slab.block = {2};
  EXPECT_THROW(slab.npoints(), InvalidArgumentError);
}

TEST(DimsTest, NumElementsOverflowThrows) {
  EXPECT_THROW(num_elements({1ull << 32, 1ull << 32}), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// for_each_row_run

TEST(RowRunTest, AllSelectionEmitsPerRowRuns) {
  std::vector<std::pair<Dims, std::uint64_t>> rows;
  for_each_row_run({3, 4}, Selection::all(), [&](const Dims& start, std::uint64_t n) {
    rows.emplace_back(start, n);
  });
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, (Dims{0, 0}));
  EXPECT_EQ(rows[0].second, 4u);
  EXPECT_EQ(rows[2].first, (Dims{2, 0}));
}

TEST(RowRunTest, ScalarSpaceSingleRun) {
  int calls = 0;
  for_each_row_run({}, Selection::all(), [&](const Dims& start, std::uint64_t n) {
    ++calls;
    EXPECT_TRUE(start.empty());
    EXPECT_EQ(n, 1u);
  });
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Property sweep: for arbitrary regular hyperslabs, the runs emitted by
// for_each_run enumerate exactly the mathematically-selected elements,
// in increasing order, with no overlap.

struct SlabCase {
  Dims extent;
  Hyperslab slab;
  std::string name;
};

class HyperslabPropertyTest : public ::testing::TestWithParam<SlabCase> {};

TEST_P(HyperslabPropertyTest, RunsMatchReferenceEnumeration) {
  const auto& param = GetParam();
  const auto sel = Selection::hyperslab(param.slab);

  // Reference: brute-force coordinate walk.
  std::set<std::uint64_t> expected;
  const auto pitch = row_pitches(param.extent);
  const std::size_t rank = param.extent.size();
  std::vector<std::uint64_t> idx(rank, 0);
  std::function<void(std::size_t, std::uint64_t)> walk = [&](std::size_t d,
                                                             std::uint64_t base) {
    const std::uint64_t stride =
        param.slab.stride.empty() ? 1 : param.slab.stride[d];
    const std::uint64_t block = param.slab.block.empty() ? 1 : param.slab.block[d];
    for (std::uint64_t b = 0; b < param.slab.count[d]; ++b) {
      for (std::uint64_t k = 0; k < block; ++k) {
        const std::uint64_t coord = param.slab.start[d] + b * stride + k;
        if (d + 1 == rank) {
          expected.insert(base + coord * pitch[d]);
        } else {
          walk(d + 1, base + coord * pitch[d]);
        }
      }
    }
  };
  if (rank > 0 && sel.npoints(param.extent) > 0) walk(0, 0);

  // Enumerate through the library and compare.
  const auto actual = elements_of(param.extent, sel);
  EXPECT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual.size(), sel.npoints(param.extent));
  std::uint64_t prev = 0;
  bool first = true;
  for (std::uint64_t e : actual) {
    EXPECT_TRUE(expected.count(e)) << "unexpected element " << e;
    if (!first) EXPECT_GT(e, prev) << "elements must be strictly increasing";
    prev = e;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HyperslabPropertyTest,
    ::testing::Values(
        SlabCase{{16}, {{0}, {}, {16}, {}}, "full1d"},
        SlabCase{{16}, {{5}, {}, {7}, {}}, "offset1d"},
        SlabCase{{16}, {{1}, {2}, {7}, {}}, "strided1d"},
        SlabCase{{16}, {{0}, {4}, {4}, {2}}, "block1d"},
        SlabCase{{4, 8}, {{0, 0}, {}, {4, 8}, {}}, "full2d"},
        SlabCase{{4, 8}, {{1, 2}, {}, {2, 3}, {}}, "inner2d"},
        SlabCase{{4, 8}, {{0, 0}, {2, 3}, {2, 2}, {1, 2}}, "blockstride2d"},
        SlabCase{{3, 4, 5}, {{0, 0, 0}, {}, {3, 4, 5}, {}}, "full3d"},
        SlabCase{{3, 4, 5}, {{1, 1, 1}, {}, {2, 2, 3}, {}}, "inner3d"},
        SlabCase{{3, 4, 5}, {{0, 0, 0}, {2, 2, 2}, {2, 2, 2}, {}}, "strided3d"},
        SlabCase{{6, 6, 6}, {{1, 0, 2}, {2, 3, 3}, {2, 2, 2}, {1, 2, 1}}, "mixed3d"},
        SlabCase{{2, 3, 4, 5}, {{0, 1, 0, 0}, {}, {2, 2, 4, 5}, {}}, "rank4"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace apio::h5
