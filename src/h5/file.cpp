#include "h5/file.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/error.h"
#include "h5/io_vector.h"
#include "storage/posix_backend.h"

namespace apio::h5 {
namespace {

constexpr char kMagic[8] = {'A', 'P', 'I', 'O', 'H', '5', 'F', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::uint64_t kSuperblockSize = 64;

std::uint64_t align_up(std::uint64_t v, std::uint64_t alignment) {
  if (alignment <= 1) return v;
  return (v + alignment - 1) / alignment * alignment;
}

meta::AttributeNode* find_attribute(std::vector<meta::AttributeNode>& attrs,
                                    const std::string& name) {
  for (auto& a : attrs) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const meta::AttributeNode* find_attribute(const std::vector<meta::AttributeNode>& attrs,
                                          const std::string& name) {
  for (const auto& a : attrs) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

void set_attribute_impl(std::vector<meta::AttributeNode>& attrs,
                        const std::string& name, Datatype dtype, Dims dims,
                        std::span<const std::byte> value) {
  const std::uint64_t expected = num_elements(dims) * datatype_size(dtype);
  APIO_REQUIRE(value.size() == expected, "attribute value size mismatch");
  meta::AttributeNode* node = find_attribute(attrs, name);
  if (node == nullptr) {
    attrs.emplace_back();
    node = &attrs.back();
    node->name = name;
  }
  node->dtype = dtype;
  node->dims = std::move(dims);
  node->value.assign(value.begin(), value.end());
}

std::vector<std::string> attribute_names_impl(
    const std::vector<meta::AttributeNode>& attrs) {
  std::vector<std::string> names;
  names.reserve(attrs.size());
  for (const auto& a : attrs) names.push_back(a.name);
  return names;
}

meta::AttributeNode attribute_info_impl(const std::vector<meta::AttributeNode>& attrs,
                                        const std::string& name) {
  const meta::AttributeNode* node = find_attribute(attrs, name);
  if (node == nullptr) throw NotFoundError("attribute '" + name + "' not found");
  return *node;
}

void get_attribute_impl(const std::vector<meta::AttributeNode>& attrs,
                        const std::string& name, Datatype expected,
                        std::span<std::byte> out) {
  const meta::AttributeNode* node = find_attribute(attrs, name);
  if (node == nullptr) throw NotFoundError("attribute '" + name + "' not found");
  APIO_REQUIRE(node->dtype == expected,
               "attribute '" + name + "' has type " + datatype_name(node->dtype));
  APIO_REQUIRE(out.size() == node->value.size(), "attribute buffer size mismatch");
  std::memcpy(out.data(), node->value.data(), out.size());
}

void validate_name(const std::string& name) {
  APIO_REQUIRE(!name.empty(), "object names must be non-empty");
  APIO_REQUIRE(name.find('/') == std::string::npos,
               "object names must not contain '/' — use File::ensure_path");
}

/// Decomposes a selection over a chunked dataset into chunk-local
/// segments: each row run is split at chunk boundaries of the last
/// dimension and reported as fn(chunk_coord, local_linear_elem,
/// seg_elems, buf_elem_off), where buf_elem_off is the segment's
/// position in the packed transfer buffer.  Every dataset path (scalar,
/// vectored, filtered) walks selections through this one enumerator.
void for_each_chunk_segment(
    const Dims& dims, const Dims& chunk, const Selection& selection,
    const std::function<void(const Dims&, std::uint64_t, std::uint64_t,
                             std::uint64_t)>& fn) {
  const auto cpitch = row_pitches(chunk);
  const std::size_t last = dims.size() - 1;
  Dims chunk_coord(chunk.size());
  Dims local(chunk.size());
  std::uint64_t buf_elem = 0;
  for_each_row_run(dims, selection, [&](const Dims& start, std::uint64_t count) {
    Dims c = start;
    std::uint64_t remaining = count;
    while (remaining > 0) {
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        chunk_coord[i] = c[i] / chunk[i];
        local[i] = c[i] % chunk[i];
      }
      const std::uint64_t seg =
          std::min<std::uint64_t>(remaining, chunk[last] - local[last]);
      std::uint64_t local_linear = 0;
      for (std::size_t i = 0; i < chunk.size(); ++i) local_linear += local[i] * cpitch[i];
      fn(chunk_coord, local_linear, seg, buf_elem);
      buf_elem += seg;
      remaining -= seg;
      c[last] += seg;
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Dataset

const std::string& Dataset::name() const {
  require_valid();
  return node_->name;
}

Datatype Dataset::dtype() const {
  require_valid();
  return node_->dtype;
}

const Dims& Dataset::dims() const {
  require_valid();
  return node_->dims;
}

Layout Dataset::layout() const {
  require_valid();
  return node_->layout;
}

FilterId Dataset::filter() const {
  require_valid();
  return node_->filter;
}

const Dims& Dataset::chunk_dims() const {
  require_valid();
  return node_->chunk_dims;
}

std::uint64_t Dataset::npoints() const {
  require_valid();
  return num_elements(node_->dims);
}

std::size_t Dataset::element_size() const {
  require_valid();
  return datatype_size(node_->dtype);
}

std::uint64_t Dataset::byte_size() const { return npoints() * element_size(); }

std::uint64_t Dataset::npoints_of(const Selection& selection) const {
  require_valid();
  return selection.npoints(node_->dims);
}

void Dataset::require_dtype(Datatype t) const {
  require_valid();
  APIO_REQUIRE(t == node_->dtype,
               "dataset '" + node_->name + "' holds " + datatype_name(node_->dtype) +
                   ", not " + datatype_name(t));
}

void Dataset::require_valid() const {
  if (file_ == nullptr || node_ == nullptr) throw StateError("null Dataset handle");
  if (!file_->is_open()) throw StateError("Dataset handle used after file close");
}

void Dataset::write_raw(const Selection& selection, std::span<const std::byte> data) {
  require_valid();
  // Validate before sizing: npoints() walks block/stride by count's
  // rank, so a malformed selection must be rejected before any code
  // indexes through it.
  selection.validate(node_->dims);
  const std::size_t elsize = element_size();
  const std::uint64_t n = npoints_of(selection);
  APIO_REQUIRE(data.size() == n * elsize,
               "write buffer size (" + std::to_string(data.size()) +
                   ") != selection bytes (" + std::to_string(n * elsize) + ")");
  if (n == 0) return;

  storage::Backend& backend = *file_->backend_;
  const bool vectored = file_->props_.vectored_io;
  if (node_->layout == Layout::kContiguous) {
    if (vectored) {
      IoVector iov;
      std::uint64_t buf_off = 0;
      for_each_run(node_->dims, selection,
                   [&](std::uint64_t elem_off, std::uint64_t count) {
                     iov.add_write(node_->data_offset + elem_off * elsize,
                                   data.subspan(buf_off, count * elsize));
                     buf_off += count * elsize;
                   });
      iov.write_to(backend);
    } else {
      // Scalar fallback: one backend call per run, kept for A/B
      // comparison against the aggregated path.
      std::uint64_t buf_off = 0;
      for_each_run(node_->dims, selection,
                   [&](std::uint64_t elem_off, std::uint64_t count) {
                     backend.write(node_->data_offset + elem_off * elsize,  // apio-lint: allow(io-vector)
                                   data.subspan(buf_off, count * elsize));
                     buf_off += count * elsize;
                   });
    }
    return;
  }

  // Chunked layout: split each row run at chunk boundaries of the last
  // dimension and scatter the segments into their chunks.
  const Dims& chunk = node_->chunk_dims;
  const std::uint64_t chunk_bytes = num_elements(chunk) * elsize;

  if (node_->filter == FilterId::kNone) {
    if (vectored) {
      // Per-call chunk-offset cache: one meta_mutex_ acquisition per
      // touched chunk instead of one per segment, then a single
      // vectored backend call for the whole selection.
      IoVector iov;
      std::map<Dims, std::uint64_t> chunk_offs;
      for_each_chunk_segment(
          node_->dims, chunk, selection,
          [&](const Dims& cc, std::uint64_t local_linear, std::uint64_t seg,
              std::uint64_t buf_elem) {
            auto it = chunk_offs.find(cc);
            if (it == chunk_offs.end()) {
              it = chunk_offs
                       .emplace(cc, file_->chunk_offset_for_write(*node_, cc, chunk_bytes))
                       .first;
            }
            iov.add_write(it->second + local_linear * elsize,
                          data.subspan(buf_elem * elsize, seg * elsize));
          });
      iov.write_to(backend);
    } else {
      for_each_chunk_segment(
          node_->dims, chunk, selection,
          [&](const Dims& cc, std::uint64_t local_linear, std::uint64_t seg,
              std::uint64_t buf_elem) {
            const std::uint64_t chunk_off =
                file_->chunk_offset_for_write(*node_, cc, chunk_bytes);
            backend.write(chunk_off + local_linear * elsize,  // apio-lint: allow(io-vector)
                          data.subspan(buf_elem * elsize, seg * elsize));
          });
    }
    return;
  }

  // Filtered layout: whole-chunk read-modify-write.  Each touched chunk
  // is decoded once, patched in memory, then re-encoded and stored.
  // Encoded chunk sizes vary per write, so these transfers do not
  // aggregate; filtered datasets stay on the scalar path.
  std::lock_guard<std::mutex> filter_lock(file_->filter_mutex_);
  std::map<Dims, std::vector<std::byte>> touched;
  for_each_chunk_segment(
      node_->dims, chunk, selection,
      [&](const Dims& cc, std::uint64_t local_linear, std::uint64_t seg,
          std::uint64_t buf_elem) {
        auto it = touched.find(cc);
        if (it == touched.end()) {
          it = touched.emplace(cc, file_->read_chunk_decoded(*node_, cc, chunk_bytes))
                   .first;
        }
        std::memcpy(it->second.data() + local_linear * elsize,
                    data.data() + buf_elem * elsize, seg * elsize);
      });
  for (const auto& [coords, raw] : touched) {
    file_->store_chunk_encoded(*node_, coords, raw);
  }
}

void Dataset::read_raw(const Selection& selection, std::span<std::byte> out) const {
  require_valid();
  // Same ordering as write_raw: reject malformed selections before
  // npoints() indexes through them.
  selection.validate(node_->dims);
  const std::size_t elsize = element_size();
  const std::uint64_t n = npoints_of(selection);
  APIO_REQUIRE(out.size() == n * elsize,
               "read buffer size (" + std::to_string(out.size()) +
                   ") != selection bytes (" + std::to_string(n * elsize) + ")");
  if (n == 0) return;

  storage::Backend& backend = *file_->backend_;
  const bool vectored = file_->props_.vectored_io;
  if (node_->layout == Layout::kContiguous) {
    if (vectored) {
      IoVector iov;
      std::uint64_t buf_off = 0;
      for_each_run(node_->dims, selection,
                   [&](std::uint64_t elem_off, std::uint64_t count) {
                     iov.add_read(node_->data_offset + elem_off * elsize,
                                  out.subspan(buf_off, count * elsize));
                     buf_off += count * elsize;
                   });
      iov.read_from(backend);
    } else {
      std::uint64_t buf_off = 0;
      for_each_run(node_->dims, selection,
                   [&](std::uint64_t elem_off, std::uint64_t count) {
                     backend.read(node_->data_offset + elem_off * elsize,  // apio-lint: allow(io-vector)
                                  out.subspan(buf_off, count * elsize));
                     buf_off += count * elsize;
                   });
    }
    return;
  }

  const Dims& chunk = node_->chunk_dims;
  const std::uint64_t chunk_bytes = num_elements(chunk) * elsize;
  const bool filtered = node_->filter != FilterId::kNone;

  if (filtered) {
    // Filtered layout: whole-chunk decode with a per-call cache.
    std::unique_lock<std::mutex> filter_lock(file_->filter_mutex_);
    std::map<Dims, std::vector<std::byte>> decoded;
    for_each_chunk_segment(
        node_->dims, chunk, selection,
        [&](const Dims& cc, std::uint64_t local_linear, std::uint64_t seg,
            std::uint64_t buf_elem) {
          auto it = decoded.find(cc);
          if (it == decoded.end()) {
            it = decoded.emplace(cc, file_->read_chunk_decoded(*node_, cc, chunk_bytes))
                     .first;
          }
          std::memcpy(out.data() + buf_elem * elsize,
                      it->second.data() + local_linear * elsize, seg * elsize);
        });
    return;
  }

  if (vectored) {
    // Unwritten chunks are zero-filled immediately; written chunks
    // accumulate into one vectored read.  The cache holds {exists,
    // offset} so each chunk's metadata is looked up once per call.
    IoVector iov;
    std::map<Dims, std::pair<bool, std::uint64_t>> chunk_offs;
    for_each_chunk_segment(
        node_->dims, chunk, selection,
        [&](const Dims& cc, std::uint64_t local_linear, std::uint64_t seg,
            std::uint64_t buf_elem) {
          auto it = chunk_offs.find(cc);
          if (it == chunk_offs.end()) {
            std::uint64_t off = 0;
            const bool present = file_->chunk_offset_for_read(*node_, cc, off);
            it = chunk_offs.emplace(cc, std::make_pair(present, off)).first;
          }
          auto dst = out.subspan(buf_elem * elsize, seg * elsize);
          if (it->second.first) {
            iov.add_read(it->second.second + local_linear * elsize, dst);
          } else {
            std::memset(dst.data(), 0, dst.size());  // fill value
          }
        });
    iov.read_from(backend);
    return;
  }

  for_each_chunk_segment(
      node_->dims, chunk, selection,
      [&](const Dims& cc, std::uint64_t local_linear, std::uint64_t seg,
          std::uint64_t buf_elem) {
        auto dst = out.subspan(buf_elem * elsize, seg * elsize);
        std::uint64_t chunk_off = 0;
        if (file_->chunk_offset_for_read(*node_, cc, chunk_off)) {
          backend.read(chunk_off + local_linear * elsize, dst);  // apio-lint: allow(io-vector)
        } else {
          std::memset(dst.data(), 0, dst.size());  // fill value
        }
      });
}

void Dataset::set_extent(const Dims& new_dims) {
  require_valid();
  APIO_REQUIRE(node_->layout == Layout::kChunked,
               "set_extent requires a chunked dataset");
  APIO_REQUIRE(new_dims.size() == node_->dims.size(), "set_extent rank mismatch");
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  // Drop chunks lying entirely beyond the new extent: a shrink followed
  // by a regrow must read zero fill there, not resurrect stale data.
  // The chunk's file extent becomes dead space (reclaimed by repack),
  // matching how unlink treats raw data.
  for (auto it = node_->chunks.begin(); it != node_->chunks.end();) {
    bool outside = false;
    for (std::size_t i = 0; i < new_dims.size(); ++i) {
      if (it->first[i] * node_->chunk_dims[i] >= new_dims[i]) {
        outside = true;
        break;
      }
    }
    it = outside ? node_->chunks.erase(it) : std::next(it);
  }
  node_->dims = new_dims;
}

bool Dataset::has_attribute(const std::string& attr_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return find_attribute(node_->attributes, attr_name) != nullptr;
}

std::vector<std::string> Dataset::attribute_names() const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return attribute_names_impl(node_->attributes);
}

meta::AttributeNode Dataset::attribute_info(const std::string& attr_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return attribute_info_impl(node_->attributes, attr_name);
}

void Dataset::set_attribute_raw(const std::string& attr_name, Datatype dtype,
                                Dims dims, std::span<const std::byte> value) {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  set_attribute_impl(node_->attributes, attr_name, dtype, std::move(dims), value);
}

void Dataset::attribute_raw(const std::string& attr_name, Datatype expected,
                            std::span<std::byte> out) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  get_attribute_impl(node_->attributes, attr_name, expected, out);
}

// ---------------------------------------------------------------------------
// Group

const std::string& Group::name() const {
  require_valid();
  return node_->name;
}

void Group::require_valid() const {
  if (file_ == nullptr || node_ == nullptr) throw StateError("null Group handle");
  if (!file_->is_open()) throw StateError("Group handle used after file close");
}

Group Group::create_group(const std::string& child_name) {
  require_valid();
  validate_name(child_name);
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  APIO_REQUIRE(node_->groups.find(child_name) == node_->groups.end() &&
                   node_->datasets.find(child_name) == node_->datasets.end(),
               "name '" + child_name + "' already exists in group '" + node_->name + "'");
  auto child = std::make_unique<meta::GroupNode>();
  child->name = child_name;
  meta::GroupNode* raw = child.get();
  node_->groups.emplace(child_name, std::move(child));
  return Group(file_, raw);
}

Group Group::open_group(const std::string& child_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  auto it = node_->groups.find(child_name);
  if (it == node_->groups.end()) {
    throw NotFoundError("group '" + child_name + "' not found in '" + node_->name + "'");
  }
  return Group(file_, it->second.get());
}

Group Group::require_group(const std::string& child_name) {
  require_valid();
  {
    std::lock_guard<std::mutex> lock(file_->meta_mutex_);
    auto it = node_->groups.find(child_name);
    if (it != node_->groups.end()) return Group(file_, it->second.get());
  }
  return create_group(child_name);
}

Dataset Group::create_dataset(const std::string& ds_name, Datatype dtype, Dims dims,
                              DatasetCreateProps props) {
  require_valid();
  validate_name(ds_name);
  if (props.layout == Layout::kChunked) {
    APIO_REQUIRE(props.chunk_dims.size() == dims.size(),
                 "chunk rank must match dataspace rank");
    for (std::uint64_t c : props.chunk_dims) {
      APIO_REQUIRE(c >= 1, "chunk dimensions must be >= 1");
    }
    APIO_REQUIRE(!dims.empty(), "chunked datasets must have rank >= 1");
  } else {
    APIO_REQUIRE(props.filter == FilterId::kNone,
                 "filters require the chunked layout");
  }

  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  APIO_REQUIRE(node_->datasets.find(ds_name) == node_->datasets.end() &&
                   node_->groups.find(ds_name) == node_->groups.end(),
               "name '" + ds_name + "' already exists in group '" + node_->name + "'");
  auto ds = std::make_unique<meta::DatasetNode>();
  ds->name = ds_name;
  ds->dtype = dtype;
  ds->dims = std::move(dims);
  ds->layout = props.layout;
  ds->chunk_dims = std::move(props.chunk_dims);
  ds->filter = props.filter;
  if (ds->layout == Layout::kContiguous) {
    ds->data_size = num_elements(ds->dims) * datatype_size(dtype);
    ds->data_offset = file_->allocate(ds->data_size);
    // Materialise the extent so never-written regions read back as the
    // zero fill value (POSIX holes / zeroed memory) instead of running
    // past the end of the object.
    file_->backend_->truncate(
        std::max(file_->backend_->size(), ds->data_offset + ds->data_size));
  }
  meta::DatasetNode* raw = ds.get();
  node_->datasets.emplace(ds_name, std::move(ds));
  return Dataset(file_, raw);
}

Dataset Group::open_dataset(const std::string& ds_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  auto it = node_->datasets.find(ds_name);
  if (it == node_->datasets.end()) {
    throw NotFoundError("dataset '" + ds_name + "' not found in '" + node_->name + "'");
  }
  return Dataset(file_, it->second.get());
}

bool Group::has_group(const std::string& child_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return node_->groups.count(child_name) > 0;
}

bool Group::has_dataset(const std::string& ds_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return node_->datasets.count(ds_name) > 0;
}

std::vector<std::string> Group::group_names() const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  std::vector<std::string> names;
  names.reserve(node_->groups.size());
  for (const auto& [name, _] : node_->groups) names.push_back(name);
  return names;
}

std::vector<std::string> Group::dataset_names() const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  std::vector<std::string> names;
  names.reserve(node_->datasets.size());
  for (const auto& [name, _] : node_->datasets) names.push_back(name);
  return names;
}

void Group::remove(const std::string& child_name) {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  if (node_->groups.erase(child_name) > 0) return;
  if (node_->datasets.erase(child_name) > 0) return;
  throw NotFoundError("'" + child_name + "' not found in group '" + node_->name + "'");
}

bool Group::has_attribute(const std::string& attr_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return find_attribute(node_->attributes, attr_name) != nullptr;
}

std::vector<std::string> Group::attribute_names() const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return attribute_names_impl(node_->attributes);
}

meta::AttributeNode Group::attribute_info(const std::string& attr_name) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  return attribute_info_impl(node_->attributes, attr_name);
}

void Group::set_attribute_raw(const std::string& attr_name, Datatype dtype, Dims dims,
                              std::span<const std::byte> value) {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  set_attribute_impl(node_->attributes, attr_name, dtype, std::move(dims), value);
}

void Group::attribute_raw(const std::string& attr_name, Datatype expected,
                          std::span<std::byte> out) const {
  require_valid();
  std::lock_guard<std::mutex> lock(file_->meta_mutex_);
  get_attribute_impl(node_->attributes, attr_name, expected, out);
}

// ---------------------------------------------------------------------------
// File

File::File(storage::BackendPtr backend, FileProps props)
    : backend_(std::move(backend)), props_(props) {}

FilePtr File::create(storage::BackendPtr backend, FileProps props) {
  APIO_REQUIRE(backend != nullptr, "File::create requires a backend");
  APIO_REQUIRE(props.allocation_alignment >= 1 &&
                   (props.allocation_alignment & (props.allocation_alignment - 1)) == 0,
               "allocation_alignment must be a power of two");
  auto file = FilePtr(new File(std::move(backend), props));
  file->root_ = std::make_unique<meta::GroupNode>();
  file->root_->name = "/";
  file->eof_ = kSuperblockSize;
  file->open_ = true;
  file->write_superblock(0, 0, 0);
  return file;
}

FilePtr File::open(storage::BackendPtr backend) {
  APIO_REQUIRE(backend != nullptr, "File::open requires a backend");
  if (backend->size() < kSuperblockSize) {
    throw FormatError("backend too small to hold an apio-h5 superblock");
  }
  std::vector<std::byte> sb(kSuperblockSize);
  backend->read(0, sb);
  ByteReader reader(sb);
  auto magic = reader.get_bytes(sizeof kMagic);
  if (std::memcmp(magic.data(), kMagic, sizeof kMagic) != 0) {
    throw FormatError("bad magic: not an apio-h5 container");
  }
  const std::uint32_t version = reader.get_u32();
  if (version != kFormatVersion) {
    throw FormatError("unsupported format version " + std::to_string(version));
  }
  reader.get_u32();  // flags
  const std::uint64_t meta_offset = reader.get_u64();
  const std::uint64_t meta_size = reader.get_u64();
  const std::uint64_t eof = reader.get_u64();
  const std::uint64_t alignment = reader.get_u64();
  const std::uint32_t meta_crc = reader.get_u32();
  const std::uint32_t stored_sb_crc = reader.get_u32();
  const std::size_t checked_bytes = reader.position() - sizeof(std::uint32_t);
  const std::uint32_t computed_sb_crc =
      crc32c(std::span<const std::byte>(sb.data(), checked_bytes));
  if (stored_sb_crc != computed_sb_crc) {
    throw FormatError("superblock checksum mismatch: file corrupt or torn write");
  }

  FileProps props;
  props.allocation_alignment = alignment;
  auto file = FilePtr(new File(std::move(backend), props));
  if (meta_size == 0) {
    // Created but never flushed with content: empty root.
    file->root_ = std::make_unique<meta::GroupNode>();
    file->root_->name = "/";
  } else {
    std::vector<std::byte> blob(meta_size);
    file->backend_->read(meta_offset, blob);
    if (crc32c(blob) != meta_crc) {
      throw FormatError("metadata block checksum mismatch: file corrupt");
    }
    ByteReader meta_reader(blob);
    file->root_ = meta::deserialize_tree(meta_reader);
  }
  file->eof_ = std::max(eof, kSuperblockSize);
  file->open_ = true;
  return file;
}

File::~File() {
  if (open_) {
    try {
      close();
    } catch (...) {
      // Destructors must not throw; an unflushable file is already lost.
    }
  }
}

Group File::root() {
  APIO_REQUIRE(open_, "File is closed");
  return Group(this, root_.get());
}

Group File::ensure_path(std::string_view path) {
  Group g = root();
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    const std::size_t end = std::min(path.find('/', pos), path.size());
    if (end > pos) {
      g = g.require_group(std::string(path.substr(pos, end - pos)));
    }
    pos = end;
  }
  return g;
}

Dataset File::dataset_at(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string_view::npos) {
    return root().open_dataset(std::string(path));
  }
  Group g = root();
  std::string_view dir = path.substr(0, slash);
  std::size_t pos = 0;
  while (pos < dir.size()) {
    while (pos < dir.size() && dir[pos] == '/') ++pos;
    const std::size_t end = std::min(dir.find('/', pos), dir.size());
    if (end > pos) g = g.open_group(std::string(dir.substr(pos, end - pos)));
    pos = end;
  }
  return g.open_dataset(std::string(path.substr(slash + 1)));
}

namespace {

bool find_dataset_path(const meta::GroupNode& group, const void* target,
                       std::string& path) {
  for (const auto& [name, ds] : group.datasets) {
    if (ds.get() == target) {
      path = path.empty() ? name : path + "/" + name;
      return true;
    }
  }
  for (const auto& [name, child] : group.groups) {
    std::string sub = path.empty() ? name : path + "/" + name;
    std::string found = sub;
    if (find_dataset_path(*child, target, found)) {
      path = found;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string File::path_of(const Dataset& ds) const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  std::string path;
  if (!find_dataset_path(*root_, ds.object_key(), path)) {
    throw NotFoundError("dataset handle does not belong to this file");
  }
  return path;
}

std::uint64_t File::allocate(std::uint64_t size) {
  // Caller holds meta_mutex_ OR is inside create(); allocation itself is
  // cheap so we take no separate lock — all call sites are serialised.
  const std::uint64_t offset = align_up(eof_, props_.allocation_alignment);
  eof_ = offset + size;
  return offset;
}

std::uint64_t File::chunk_offset_for_write(meta::DatasetNode& node, const Dims& coords,
                                           std::uint64_t chunk_bytes) {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  auto it = node.chunks.find(coords);
  if (it != node.chunks.end()) return it->second.offset;
  meta::ChunkLocation loc;
  loc.offset = allocate(chunk_bytes);
  loc.stored_size = chunk_bytes;
  loc.allocated_size = chunk_bytes;
  node.chunks.emplace(coords, loc);
  // Zero-fill so partial chunk writes leave deterministic fill values.
  // POSIX holes and the memory backend already read back zero, so only
  // the extent needs to exist.
  backend_->truncate(std::max(backend_->size(), loc.offset + chunk_bytes));
  return loc.offset;
}

bool File::chunk_offset_for_read(const meta::DatasetNode& node, const Dims& coords,
                                 std::uint64_t& offset) const {
  std::lock_guard<std::mutex> lock(meta_mutex_);
  auto it = node.chunks.find(coords);
  if (it == node.chunks.end()) return false;
  offset = it->second.offset;
  return true;
}

std::vector<std::byte> File::read_chunk_decoded(const meta::DatasetNode& node,
                                                const Dims& coords,
                                                std::uint64_t chunk_bytes) const {
  meta::ChunkLocation loc;
  {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    auto it = node.chunks.find(coords);
    if (it == node.chunks.end()) {
      return std::vector<std::byte>(chunk_bytes);  // fill value
    }
    loc = it->second;
  }
  std::vector<std::byte> stored(loc.stored_size);
  backend_->read(loc.offset, stored);
  return filter_decode(node.filter, stored, chunk_bytes);
}

void File::store_chunk_encoded(meta::DatasetNode& node, const Dims& coords,
                               std::span<const std::byte> raw_chunk) {
  auto encoded = filter_encode(node.filter, raw_chunk);
  std::uint64_t offset = 0;
  {
    std::lock_guard<std::mutex> lock(meta_mutex_);
    auto it = node.chunks.find(coords);
    if (it != node.chunks.end() && encoded.size() <= it->second.allocated_size) {
      // Fits in place.
      it->second.stored_size = encoded.size();
      offset = it->second.offset;
    } else {
      // Allocate a fresh extent with headroom so mild growth of the
      // re-encoded chunk does not relocate it again; the previous
      // extent becomes dead space (reclaimed by repacking, as in HDF5).
      meta::ChunkLocation loc;
      loc.allocated_size = encoded.size() + encoded.size() / 4 + 64;
      loc.offset = allocate(loc.allocated_size);
      loc.stored_size = encoded.size();
      offset = loc.offset;
      node.chunks[coords] = loc;
    }
  }
  backend_->write(offset, encoded);
}

void File::write_superblock(std::uint64_t meta_offset, std::uint64_t meta_size,
                            std::uint32_t meta_crc) {
  ByteWriter writer;
  writer.put_bytes(std::as_bytes(std::span<const char>(kMagic, sizeof kMagic)));
  writer.put_u32(kFormatVersion);
  writer.put_u32(0);  // flags
  writer.put_u64(meta_offset);
  writer.put_u64(meta_size);
  writer.put_u64(eof_);
  writer.put_u64(props_.allocation_alignment);
  writer.put_u32(meta_crc);
  // Self-checksum over everything that precedes it: a torn superblock
  // write is detected at open time.
  writer.put_u32(crc32c(writer.view()));
  std::vector<std::byte> block(kSuperblockSize);
  auto view = writer.view();
  APIO_ASSERT(view.size() <= kSuperblockSize, "superblock overflow");
  std::memcpy(block.data(), view.data(), view.size());
  backend_->write(0, block);
}

void File::flush() {
  APIO_REQUIRE(open_, "flush on closed file");
  std::lock_guard<std::mutex> lock(meta_mutex_);
  ByteWriter writer;
  meta::serialize_tree(*root_, writer);
  const std::uint64_t meta_size = writer.size();
  const std::uint64_t meta_offset = allocate(meta_size);
  backend_->write(meta_offset, writer.view());
  // Shadow update: data and the new metadata block land before the
  // superblock starts pointing at them.
  write_superblock(meta_offset, meta_size, crc32c(writer.view()));
  backend_->flush();
}

void File::close() {
  if (!open_) return;
  flush();
  // Lifecycle hook after the final flush: visibility-deferring tiers
  // (storage::CachedBackend in after-close / after-epoch mode) drain
  // their staged data to the PFS here.
  backend_->close();
  open_ = false;
}

FilePtr create_file(const std::string& path, FileProps props) {
  auto backend = std::make_shared<storage::PosixBackend>(
      path, storage::PosixBackend::Mode::kCreateTruncate);
  return File::create(std::move(backend), props);
}

FilePtr open_file(const std::string& path) {
  auto backend = std::make_shared<storage::PosixBackend>(
      path, storage::PosixBackend::Mode::kOpenExisting);
  return File::open(std::move(backend));
}

}  // namespace apio::h5
