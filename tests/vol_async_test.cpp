// Tests for the asynchronous VOL connector — ordering, the
// double-buffer (transactional copy) guarantee, prefetching, error
// propagation, back-pressure and instrumentation.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "storage/memory_backend.h"
#include "storage/backend_stack.h"
#include "vol/async_connector.h"

namespace apio::vol {
namespace {

class RecordingObserver : public IoObserver {
 public:
  void on_io(const IoRecord& record) override {
    std::lock_guard<std::mutex> lock(mutex_);
    records_.push_back(record);
  }
  std::vector<IoRecord> records() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<IoRecord> records_;
};

std::shared_ptr<AsyncConnector> make_connector(AsyncOptions options = {}) {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  return std::make_shared<AsyncConnector>(std::move(file), options);
}

/// Connector over a throttled backend: PFS-like delays make overlap and
/// ordering effects observable in wall time.
std::shared_ptr<AsyncConnector> make_slow_connector(double bandwidth,
                                                    double latency = 0.0) {
  storage::ThrottleParams params;
  params.bandwidth = bandwidth;
  params.latency = latency;
  params.time_scale = 1.0;
  auto backend = storage::BackendStack::memory().throttled(params).build();
  auto file = h5::File::create(std::move(backend));
  return std::make_shared<AsyncConnector>(std::move(file));
}

TEST(AsyncConnectorTest, RequiresFile) {
  EXPECT_THROW(AsyncConnector(nullptr), InvalidArgumentError);
}

TEST(AsyncConnectorTest, WriteDataLandsAfterWait) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};
  auto req = conn->dataset_write(ds, h5::Selection::all(),
                                 std::as_bytes(std::span<const std::int32_t>(values)));
  req->wait();
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()), values);
  conn->close();
}

TEST(AsyncConnectorTest, WriteReturnsBeforeSlowBackendCompletes) {
  // 1 MiB at 2 MiB/s: the background transfer takes ~0.5 s; the staging
  // copy must return in a small fraction of that.
  auto conn = make_slow_connector(2.0 * 1024 * 1024);
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kUInt8,
                                                {1024 * 1024});
  std::vector<std::uint8_t> data(1024 * 1024, 7);
  const auto t0 = std::chrono::steady_clock::now();
  auto req = conn->dataset_write(ds, h5::Selection::all(),
                                 std::as_bytes(std::span<const std::uint8_t>(data)));
  const double issue_time =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(issue_time, 0.25);
  EXPECT_FALSE(req->test());  // still in flight
  req->wait();
  EXPECT_TRUE(req->test());
  conn->close();
}

TEST(AsyncConnectorTest, DoubleBufferAllowsImmediateReuse) {
  auto conn = make_slow_connector(4.0 * 1024 * 1024);
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {1024});
  std::vector<std::int32_t> buffer(1024);
  std::iota(buffer.begin(), buffer.end(), 0);
  auto req = conn->dataset_write(ds, h5::Selection::all(),
                                 std::as_bytes(std::span<const std::int32_t>(buffer)));
  // Clobber the caller buffer immediately — the staged copy must win.
  std::fill(buffer.begin(), buffer.end(), -1);
  req->wait();
  auto stored = ds.read_vector<std::int32_t>(h5::Selection::all());
  for (int i = 0; i < 1024; ++i) EXPECT_EQ(stored[i], i);
  conn->close();
}

TEST(AsyncConnectorTest, OperationsExecuteInFifoOrder) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {1});
  // 50 sequential overwrites; the last one must win.
  for (std::int32_t i = 0; i < 50; ++i) {
    const std::vector<std::int32_t> v{i};
    conn->dataset_write(ds, h5::Selection::all(),
                        std::as_bytes(std::span<const std::int32_t>(v)));
  }
  conn->wait_all();
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all())[0], 49);
  conn->close();
}

TEST(AsyncConnectorTest, AsyncReadCompletesIntoCallerBuffer) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {8});
  std::vector<std::int32_t> values{1, 2, 3, 4, 5, 6, 7, 8};
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int32_t>(values)));
  std::vector<std::int32_t> out(8, 0);
  auto req = conn->dataset_read(ds, h5::Selection::all(),
                                std::as_writable_bytes(std::span<std::int32_t>(out)));
  req->wait();
  EXPECT_EQ(out, values);
  conn->close();
}

TEST(AsyncConnectorTest, PrefetchServesSubsequentRead) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {8});
  std::vector<std::int32_t> values{9, 8, 7, 6, 5, 4, 3, 2};
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int32_t>(values)));
  conn->prefetch(ds, h5::Selection::all());
  conn->wait_all();

  std::vector<std::int32_t> out(8, 0);
  auto req = conn->dataset_read(ds, h5::Selection::all(),
                                std::as_writable_bytes(std::span<std::int32_t>(out)));
  EXPECT_TRUE(req->test());  // cache hit completes immediately
  EXPECT_EQ(out, values);

  const auto stats = conn->stats();
  EXPECT_EQ(stats.prefetches_enqueued, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  conn->close();
}

TEST(AsyncConnectorTest, PrefetchEntryConsumedOnce) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int32_t>(values)));
  conn->prefetch(ds, h5::Selection::all());
  conn->wait_all();

  std::vector<std::int32_t> out(4);
  conn->dataset_read(ds, h5::Selection::all(),
                     std::as_writable_bytes(std::span<std::int32_t>(out)));
  conn->dataset_read(ds, h5::Selection::all(),
                     std::as_writable_bytes(std::span<std::int32_t>(out)));
  conn->wait_all();
  const auto stats = conn->stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  conn->close();
}

TEST(AsyncConnectorTest, DuplicatePrefetchIsCoalesced) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int32_t>(values)));
  conn->prefetch(ds, h5::Selection::all());
  conn->prefetch(ds, h5::Selection::all());
  conn->wait_all();
  EXPECT_EQ(conn->stats().prefetches_enqueued, 1u);
  conn->close();
}

TEST(AsyncConnectorTest, DistinctSelectionsCacheSeparately) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {8});
  const std::vector<std::int32_t> values{0, 1, 2, 3, 4, 5, 6, 7};
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int32_t>(values)));
  conn->prefetch(ds, h5::Selection::offsets({0}, {4}));
  conn->prefetch(ds, h5::Selection::offsets({4}, {4}));
  conn->wait_all();
  EXPECT_EQ(conn->stats().prefetches_enqueued, 2u);

  std::vector<std::int32_t> out(4);
  conn->dataset_read(ds, h5::Selection::offsets({4}, {4}),
                     std::as_writable_bytes(std::span<std::int32_t>(out)));
  EXPECT_EQ(out, (std::vector<std::int32_t>{4, 5, 6, 7}));
  EXPECT_EQ(conn->stats().cache_hits, 1u);
  conn->close();
}

TEST(AsyncConnectorTest, ErrorPropagatesThroughRequest) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  // Wrong buffer size: the failure happens in the background task and
  // must surface on wait(), not crash the stream.
  const std::vector<std::int32_t> bad{1};
  auto req = conn->dataset_write(ds, h5::Selection::all(),
                                 std::as_bytes(std::span<const std::int32_t>(bad)));
  EXPECT_THROW(req->wait(), InvalidArgumentError);
  EXPECT_TRUE(req->failed());

  // The queue keeps serving later operations.
  const std::vector<std::int32_t> good{1, 2, 3, 4};
  auto ok = conn->dataset_write(ds, h5::Selection::all(),
                                std::as_bytes(std::span<const std::int32_t>(good)));
  ok->wait();
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()), good);
  conn->close();
}

TEST(AsyncConnectorTest, WaitAllDrainsEverything) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {64});
  std::vector<RequestPtr> reqs;
  for (int i = 0; i < 32; ++i) {
    std::vector<std::int32_t> v(2, i);
    reqs.push_back(conn->dataset_write(
        ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * 2}, {2}),
        std::as_bytes(std::span<const std::int32_t>(v))));
  }
  conn->wait_all();
  for (auto& r : reqs) EXPECT_TRUE(r->test());
  conn->close();
}

TEST(AsyncConnectorTest, StatsTrackStagingVolume) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kUInt8, {1000});
  std::vector<std::uint8_t> data(1000, 1);
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::uint8_t>(data)));
  conn->wait_all();
  const auto stats = conn->stats();
  EXPECT_EQ(stats.writes_enqueued, 1u);
  EXPECT_EQ(stats.bytes_staged, 1000u);
  EXPECT_GE(stats.staged_high_watermark, 1000u);
  EXPECT_GE(stats.init_seconds, 0.0);
  conn->close();
  EXPECT_GE(conn->stats().term_seconds, 0.0);
}

TEST(AsyncConnectorTest, BackpressureBoundsStagedBytes) {
  AsyncOptions options;
  options.max_staged_bytes = 64 * 1024;
  storage::ThrottleParams params;
  params.bandwidth = 4.0 * 1024 * 1024;
  params.time_scale = 1.0;
  auto backend = storage::BackendStack::memory().throttled(params).build();
  auto conn = std::make_shared<AsyncConnector>(h5::File::create(backend), options);

  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kUInt8,
                                                {32u * 32 * 1024});
  std::vector<std::uint8_t> chunk(32 * 1024, 9);
  for (int i = 0; i < 32; ++i) {
    conn->dataset_write(
        ds,
        h5::Selection::offsets({static_cast<std::uint64_t>(i) * chunk.size()},
                               {chunk.size()}),
        std::as_bytes(std::span<const std::uint8_t>(chunk)));
  }
  conn->wait_all();
  const auto stats = conn->stats();
  // The high-watermark must respect the configured bound (one op may
  // exceed it only when the queue was empty; 2 chunks fit exactly).
  EXPECT_LE(stats.staged_high_watermark, options.max_staged_bytes);
  conn->close();
}

TEST(AsyncConnectorTest, UseAfterCloseThrows) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {1});
  conn->close();
  const std::vector<std::int32_t> v{1};
  EXPECT_THROW(conn->dataset_write(ds, h5::Selection::all(),
                                   std::as_bytes(std::span<const std::int32_t>(v))),
               StateError);
  EXPECT_NO_THROW(conn->close());  // idempotent
}

TEST(AsyncConnectorTest, ObserverSeesAsyncTimings) {
  auto conn = make_slow_connector(8.0 * 1024 * 1024, 0.02);
  auto observer = std::make_shared<RecordingObserver>();
  conn->add_observer(observer);
  conn->set_reported_ranks(6);

  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kUInt8,
                                                {256 * 1024});
  std::vector<std::uint8_t> data(256 * 1024, 1);
  conn->dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::uint8_t>(data)));
  conn->wait_all();

  auto records = observer->records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].async);
  EXPECT_EQ(records[0].ranks, 6);
  EXPECT_EQ(records[0].bytes, 256u * 1024);
  // The caller was blocked for only the staging copy — far less than
  // the full completion time on the throttled backend.
  EXPECT_LT(records[0].blocking_seconds, records[0].completion_seconds);
  conn->close();
}

TEST(AsyncConnectorTest, FlushRunsInBackground) {
  auto conn = make_connector();
  conn->file()->root().create_dataset("d", h5::Datatype::kInt8, {1});
  auto req = conn->flush();
  req->wait();
  EXPECT_FALSE(req->failed());
  conn->close();
}

TEST(AsyncConnectorTest, ManyMixedOperationsStressOrdering) {
  auto conn = make_connector();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt64, {256});
  std::vector<std::int64_t> out(256);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::int64_t> values(256, round);
    conn->dataset_write(ds, h5::Selection::all(),
                        std::as_bytes(std::span<const std::int64_t>(values)));
    conn->dataset_read(ds, h5::Selection::all(),
                       std::as_writable_bytes(std::span<std::int64_t>(out)));
    conn->flush();
  }
  conn->wait_all();
  // FIFO semantics: the final read observed the final write.
  for (auto v : out) EXPECT_EQ(v, 19);
  conn->close();
}

}  // namespace
}  // namespace apio::vol
