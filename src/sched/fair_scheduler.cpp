#include "sched/fair_scheduler.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>

#include "common/error.h"
#include "obs/metrics.h"

namespace apio::sched {

namespace {

const Clock& default_clock() {
  static WallClock clock;
  return clock;
}

/// Sort key inside one tenant+lane queue: earliest deadline first,
/// deadline-free requests last in FIFO order.
double deadline_key(const IoRequest& request) {
  return request.deadline > 0.0 ? request.deadline
                                : std::numeric_limits<double>::infinity();
}

bool queue_before(const TicketPtr& a, const TicketPtr& b) {
  const double da = deadline_key(a->request());
  const double db = deadline_key(b->request());
  if (da != db) return da < db;
  return a->seq() < b->seq();
}

}  // namespace

const char* to_string(Lane lane) {
  return lane == Lane::kPriority ? "priority" : "bulk";
}

namespace {
thread_local const SubmissionContext* t_submission = nullptr;
}  // namespace

const SubmissionContext* current_submission() { return t_submission; }

ScopedSubmission::ScopedSubmission(SubmissionContext context)
    : context_(std::move(context)), previous_(t_submission) {
  t_submission = &context_;
}

ScopedSubmission::~ScopedSubmission() { t_submission = previous_; }

// ---------------------------------------------------------------------------
// FairScheduler

struct FairScheduler::Tenant {
  double weight = 1.0;
  /// Virtual finish time of this tenant's last charged grant.
  double vtime = 0.0;
  /// Queued tickets per lane, ordered by (deadline, seq).
  std::vector<TicketPtr> queue[kLanes];
  TenantStats stats;
  /// Cached obs metric handles (stable references; looked up once).
  obs::Counter* bytes_counter = nullptr;
  obs::Gauge* depth_gauge = nullptr;
  obs::Histogram* wait_hist = nullptr;
  obs::Counter* miss_counter = nullptr;
};

struct FairScheduler::State {
  SchedOptions options;
  const Clock* clock = nullptr;

  debug::RankedMutex<debug::LockRank::kSchedQueue> mutex;
  std::condition_variable_any grant_cv;

  bool closed = false;
  int inflight = 0;
  std::uint64_t next_seq = 0;
  double virtual_time = 0.0;
  std::uint64_t queued_total = 0;

  std::map<TenantId, Tenant> tenants;

  std::uint64_t submitted_ops = 0;
  std::uint64_t dispatched_ops = 0;
  std::uint64_t dispatched_bytes = 0;
  std::uint64_t deadline_misses = 0;

  Tenant& tenant_for(const TenantId& id) {
    auto [it, inserted] = tenants.try_emplace(id);
    Tenant& t = it->second;
    if (inserted) {
      // New arrivals start at the global virtual time: an idle or new
      // tenant cannot have banked credit against active ones.
      t.vtime = virtual_time;
      t.stats.weight = t.weight;
      const std::string prefix = "sched.tenant." + id + ".";
      auto& reg = obs::Registry::instance();
      t.bytes_counter = &reg.counter(prefix + "dispatched_bytes");
      t.depth_gauge = &reg.gauge(prefix + "queue_depth");
      t.wait_hist = &reg.histogram(prefix + "wait_seconds");
      t.miss_counter = &reg.counter(prefix + "deadline_misses");
    }
    return t;
  }
};

FairScheduler::FairScheduler(SchedOptions options)
    : state_(std::make_unique<State>()) {
  APIO_REQUIRE(options.max_inflight >= 1,
               "SchedOptions::max_inflight must be >= 1");
  state_->options = options;
  state_->clock = options.clock != nullptr ? options.clock : &default_clock();
}

FairScheduler::~FairScheduler() { close(); }

void FairScheduler::register_tenant(const TenantId& tenant, double weight) {
  APIO_REQUIRE(!tenant.empty(), "tenant id must be non-empty");
  APIO_REQUIRE(weight > 0.0, "tenant weight must be positive");
  State& s = *state_;
  std::lock_guard lock(s.mutex);
  Tenant& t = s.tenant_for(tenant);
  t.weight = weight;
  t.stats.weight = weight;
}

TicketPtr FairScheduler::submit(const IoRequest& request) {
  State& s = *state_;
  auto ticket = std::make_shared<Ticket>();
  ticket->request_ = request;
  if (ticket->request_.tenant.empty()) ticket->request_.tenant = kDefaultTenant;

  std::lock_guard lock(s.mutex);
  ticket->seq_ = s.next_seq++;
  ticket->submit_time_ = s.clock->now();

  Tenant& t = s.tenant_for(ticket->request_.tenant);
  ++s.submitted_ops;
  ++t.stats.submitted_ops;
  t.stats.submitted_bytes += ticket->request_.bytes;
  if (obs::enabled()) {
    obs::Registry::instance().counter("sched.submitted").increment();
  }

  auto& queue = t.queue[static_cast<int>(ticket->request_.lane)];
  queue.insert(std::upper_bound(queue.begin(), queue.end(), ticket,
                                queue_before),
               ticket);
  ++s.queued_total;
  ++t.stats.queue_depth;
  t.stats.max_queue_depth =
      std::max(t.stats.max_queue_depth, t.stats.queue_depth);
  if (obs::enabled()) {
    t.depth_gauge->set(static_cast<std::int64_t>(t.stats.queue_depth));
    t.depth_gauge->note_watermark();
  }

  dispatch_locked(s);
  return ticket;
}

void FairScheduler::wait(const TicketPtr& ticket) {
  APIO_REQUIRE(ticket != nullptr, "wait() needs a ticket");
  if (ticket->granted()) return;
  State& s = *state_;
  std::unique_lock lock(s.mutex);
  s.grant_cv.wait(lock, [&] { return ticket->granted(); });
}

void FairScheduler::complete(const TicketPtr& ticket) {
  APIO_REQUIRE(ticket != nullptr, "complete() needs a ticket");
  APIO_REQUIRE(ticket->granted(), "complete() before grant");
  if (ticket->completed_.exchange(true, std::memory_order_acq_rel)) return;
  State& s = *state_;
  std::lock_guard lock(s.mutex);
  // Tickets granted by close() bypassed the inflight limit; only
  // grants that consumed a slot return one.
  if (s.inflight > 0) --s.inflight;
  dispatch_locked(s);
}

TicketPtr FairScheduler::admit(const IoRequest& request) {
  TicketPtr ticket = submit(request);
  wait(ticket);
  return ticket;
}

void FairScheduler::close() {
  State& s = *state_;
  std::lock_guard lock(s.mutex);
  if (s.closed) return;
  s.closed = true;
  dispatch_locked(s);  // grants everything queued, in fair order
}

bool FairScheduler::closed() const {
  State& s = *state_;
  std::lock_guard lock(s.mutex);
  return s.closed;
}

SchedStats FairScheduler::stats() const {
  State& s = *state_;
  std::lock_guard lock(s.mutex);
  SchedStats out;
  out.submitted_ops = s.submitted_ops;
  out.dispatched_ops = s.dispatched_ops;
  out.dispatched_bytes = s.dispatched_bytes;
  out.deadline_misses = s.deadline_misses;
  out.virtual_time = s.virtual_time;
  for (const auto& [id, tenant] : s.tenants) out.tenants.emplace(id, tenant.stats);
  return out;
}

/// Grants channel slots while any are free and work is queued.  Lane
/// policy first (any priority request beats any bulk request), then
/// weighted fairness: the grant goes to the eligible request whose
/// tenant has the smallest virtual start time, with deadlines breaking
/// ties toward urgency inside the priority lane.  Called with the
/// queue mutex held; notifies waiters once per batch.
void FairScheduler::dispatch_locked(State& s) {
  bool granted_any = false;
  while (s.queued_total > 0 && (s.closed || s.inflight < s.options.max_inflight)) {
    Tenant* best_tenant = nullptr;
    int best_lane = 0;
    // (deadline, virtual start, seq) for priority; (virtual start,
    // deadline, seq) for bulk — fairness dominates in the bulk lane.
    double best_k0 = 0.0, best_k1 = 0.0;
    std::uint64_t best_seq = 0;
    for (int lane = 0; lane < kLanes && best_tenant == nullptr; ++lane) {
      for (auto& [id, t] : s.tenants) {
        if (t.queue[lane].empty()) continue;
        const TicketPtr& head = t.queue[lane].front();
        const double start = std::max(t.vtime, s.virtual_time);
        const double dl = deadline_key(head->request());
        const double k0 = lane == static_cast<int>(Lane::kPriority) ? dl : start;
        const double k1 = lane == static_cast<int>(Lane::kPriority) ? start : dl;
        if (best_tenant == nullptr || k0 < best_k0 ||
            (k0 == best_k0 &&
             (k1 < best_k1 || (k1 == best_k1 && head->seq_ < best_seq)))) {
          best_tenant = &t;
          best_lane = lane;
          best_k0 = k0;
          best_k1 = k1;
          best_seq = head->seq_;
        }
      }
    }
    if (best_tenant == nullptr) break;  // queued_total out of sync — cannot happen
    Tenant& t = *best_tenant;
    TicketPtr ticket = t.queue[best_lane].front();
    t.queue[best_lane].erase(t.queue[best_lane].begin());
    --s.queued_total;
    --t.stats.queue_depth;

    // Start-time fair queuing over bytes: charge the grant to the
    // tenant's virtual time so backlogged tenants share the channel
    // in proportion to their weights.  Only BULK grants advance the
    // global frontier: a priority grant's start tag rides the issuing
    // tenant's vtime, which sits up to one full charge ahead of the
    // frontier — advancing V to it would snap every lagging tenant
    // forward ("catch-up" forgiveness) and erase the fair-queuing
    // history each time anyone flushes, degrading SFQ toward FIFO.
    // Priority bytes still charge the tenant's own vtime, so flush
    // metadata is paid out of that tenant's bulk entitlement.
    const IoRequest& req = ticket->request_;
    const double start = std::max(t.vtime, s.virtual_time);
    if (req.lane == Lane::kBulk) s.virtual_time = start;
    t.vtime = start + static_cast<double>(req.bytes) / t.weight;

    const double now = s.clock->now();
    ticket->grant_time_ = now;
    const double waited = now - ticket->submit_time_;
    const bool missed = req.deadline > 0.0 && now > req.deadline;

    ++s.dispatched_ops;
    s.dispatched_bytes += req.bytes;
    ++t.stats.dispatched_ops;
    t.stats.dispatched_bytes += req.bytes;
    t.stats.lane_bytes[static_cast<int>(req.lane)] += req.bytes;
    t.stats.wait_seconds_total += waited;
    auto& samples = t.stats.wait_samples[static_cast<int>(req.lane)];
    if (samples.size() < kMaxWaitSamples) samples.push_back(waited);
    if (req.lane == Lane::kPriority) ++t.stats.priority_ops;
    if (missed) {
      ++s.deadline_misses;
      ++t.stats.deadline_misses;
    }
    if (obs::enabled()) {
      auto& reg = obs::Registry::instance();
      reg.counter("sched.dispatched").increment();
      reg.counter("sched.dispatched_bytes").add(req.bytes);
      if (req.lane == Lane::kPriority) {
        reg.counter("sched.priority_dispatched").increment();
      }
      if (missed) {
        reg.counter("sched.deadline_misses").increment();
        t.miss_counter->increment();
      }
      t.bytes_counter->add(req.bytes);
      t.wait_hist->record_seconds(waited);
      t.depth_gauge->set(static_cast<std::int64_t>(t.stats.queue_depth));
    }

    if (!s.closed) ++s.inflight;
    ticket->granted_.store(true, std::memory_order_release);
    granted_any = true;
  }
  if (granted_any) s.grant_cv.notify_all();
}

}  // namespace apio::sched
