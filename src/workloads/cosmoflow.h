// Cosmoflow proxy: the deep-learning workload of Sec. IV-C — a CNN
// reading 3-D matter-distribution volumes batch by batch.  The proxy
// reproduces the I/O structure of the paper's custom PyTorch
// DataLoader: each rank reads its own batches of 128^3-voxel samples
// from a shared container; in async mode the loader prefetches the
// next batch while the (emulated) training step runs.
#pragma once

#include "sim/epoch_sim.h"
#include "workloads/workload_common.h"

namespace apio::workloads {

struct CosmoflowParams {
  /// Samples per rank per training epoch.
  int samples_per_rank = 16;
  /// Voxels per sample axis (the paper's public 128^3 dataset).
  h5::Dims sample_shape{128, 128, 128};
  int batch_size = 8;
  int epochs = 4;
  /// Emulated forward+backward pass duration per batch.
  double seconds_per_batch = 0.0;
  bool prefetch = true;
};

struct CosmoflowRunResult {
  /// Blocking read time per batch (max over ranks), all epochs in order.
  std::vector<double> batch_io_seconds;
  std::uint64_t bytes_per_batch = 0;  ///< aggregate over ranks
  double total_seconds = 0.0;
  double peak_bandwidth() const;
};

class CosmoflowProxy {
 public:
  explicit CosmoflowProxy(CosmoflowParams params);

  /// Creates and fills the dataset ("samples", shape [N, voxels...])
  /// collectively; call once before train().
  void prepare(vol::Connector& connector, pmpi::Communicator& comm) const;

  /// Runs `epochs` training epochs of batch reads + emulated compute.
  CosmoflowRunResult train(vol::Connector& connector, pmpi::Communicator& comm) const;

  const CosmoflowParams& params() const { return params_; }

  std::uint64_t sample_bytes() const;

  /// Simulator configuration reproducing Fig. 5 (Summit only; the
  /// paper ran Cosmoflow where GPUs were available).
  static sim::RunConfig sim_config(const sim::SystemSpec& spec, int nodes,
                                   model::IoMode mode, const CosmoflowParams& params,
                                   double seconds_per_batch = 1.0);

 private:
  CosmoflowParams params_;
};

}  // namespace apio::workloads
