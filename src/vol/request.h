// Asynchronous request tokens returned by VOL operations, analogous to
// HDF5 event-set entries / the async VOL's internal task objects.
#pragma once

#include <memory>

#include "tasking/eventual.h"

namespace apio::vol {

/// Completion token for one VOL operation.
class Request {
 public:
  explicit Request(tasking::EventualPtr done) : done_(std::move(done)) {}

  /// Blocks until the operation completed; rethrows its error.
  void wait() { done_->wait(); }

  /// Non-blocking completion probe.
  bool test() const { return done_->test(); }

  bool failed() const { return done_->has_error(); }

  const tasking::EventualPtr& eventual() const { return done_; }

 private:
  tasking::EventualPtr done_;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace apio::vol
