#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace apio {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  if (mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  APIO_REQUIRE(!xs.empty(), "percentile() of empty sample");
  APIO_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

Ewma::Ewma(double alpha) : alpha_(alpha) {
  APIO_REQUIRE(alpha > 0.0 && alpha <= 1.0, "Ewma alpha must be in (0,1]");
}

void Ewma::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double Ewma::value() const {
  APIO_REQUIRE(seeded_, "Ewma::value() before any sample");
  return value_;
}

}  // namespace apio
