// CPU<->GPU transfer-cost model (Sec. III-B1).
//
// The paper's GPU-resident applications pay a blocking device-to-host
// copy as part of the transactional overhead.  The cost model captures
// the two regimes the authors measured with micro-benchmarks: DMA
// setup dominates small transfers (amortised above ~10 MB), and pinned
// host memory reaches close to the link's theoretical peak while
// pageable memory pays an extra bounce-buffer copy.
#pragma once

#include <cstdint>

namespace apio::sim {

class GpuLinkModel {
 public:
  /// `peak_bandwidth` — link limit (bytes/s); `pageable_bandwidth` —
  /// effective ceiling when the runtime must bounce through a pinned
  /// staging buffer; `half_size` — transfer size at 50 % efficiency;
  /// `dma_setup_latency` — per-transfer setup cost (seconds).
  GpuLinkModel(double peak_bandwidth, double pageable_bandwidth,
               double half_size, double dma_setup_latency);

  /// Seconds for one blocking transfer of `bytes`.
  double transfer_seconds(std::uint64_t bytes, bool pinned) const;

  /// Achieved bandwidth (bytes/s) for a transfer of `bytes`.
  double achieved_bandwidth(std::uint64_t bytes, bool pinned) const;

  double peak_bandwidth() const { return peak_; }

  /// Summit: NVLink 2.0, 50 GB/s theoretical per direction.
  static GpuLinkModel nvlink2();

  /// Generic PCIe 3.0 x16: 15.75 GB/s theoretical.
  static GpuLinkModel pcie3();

 private:
  double peak_;
  double pageable_;
  double half_size_;
  double latency_;
};

}  // namespace apio::sim
