// apio::sched — the first-class submission API for backend work.
//
// Before this layer, every rank and every background stream drained its
// operations straight into storage::Backend as anonymous closures: the
// storage target had no idea *whose* bytes it was moving, so one greedy
// tenant (a checkpoint burst, a bulk training-data reader) could starve
// everyone sharing the modelled Lustre allocation.  The paper measures
// a single job; a production deployment serves many.
//
// An IoRequest names the work before it reaches storage: which tenant
// issued it, which lane it rides (latency-sensitive metadata/flush vs
// bulk data), how many bytes it moves, and — optionally — the absolute
// deadline it inherits from the issue-anchored resilience::RetryPolicy
// budget.  sched::FairScheduler (fair_scheduler.h) admits these
// requests onto the shared storage channel in weighted max-min order;
// storage::QosBackend builds them at the decorator boundary from the
// calling thread's SubmissionContext.
#pragma once

#include <cstdint>
#include <string>

#include "obs/record.h"
#include "resilience/retry.h"

namespace apio::sched {

/// Tenant identity: one fair-share account (a job, a user, a service).
/// Human-readable on purpose — it keys metrics names and diagnostics.
using TenantId = std::string;

/// Tenant of work submitted with no explicit identity bound.
inline constexpr const char* kDefaultTenant = "default";

/// Dispatch lane.  kPriority (metadata, flushes, latency-sensitive
/// reads) is always served before kBulk across *all* tenants; bulk data
/// competes under weighted max-min fairness.  Priority bytes are still
/// charged to the tenant's virtual time, so a priority-flooding tenant
/// pays for its lane use in the bulk competition.
enum class Lane : std::uint8_t { kPriority = 0, kBulk = 1 };

inline constexpr int kLanes = 2;

const char* to_string(Lane lane);

/// One unit of backend work submitted for admission.
struct IoRequest {
  TenantId tenant;                  ///< "" resolves to kDefaultTenant
  Lane lane = Lane::kBulk;
  obs::IoOp op = obs::IoOp::kWrite; ///< diagnostic only
  /// Bytes the granted transfer will move; the fairness currency.
  /// Zero-byte requests (flushes) are admitted but charge nothing.
  std::uint64_t bytes = 0;
  /// Absolute deadline in seconds on the scheduler's clock; 0 = none.
  /// Requests with earlier deadlines are served first within their
  /// tenant+lane queue (FIFO among deadline-free requests), and a grant
  /// issued past its deadline counts as a deadline miss.
  double deadline = 0.0;

  /// Issue-anchored deadline from a retry policy: the same budget that
  /// bounds the request's retries bounds its queueing, so a retried
  /// attempt re-enters admission with its *original* anchor and sorts
  /// ahead of younger work.  Returns 0 (no deadline) when the policy
  /// has none.
  static double deadline_from(const resilience::RetryPolicy& policy,
                              double issue_time) {
    return policy.deadline_seconds > 0.0
               ? issue_time + policy.deadline_seconds
               : 0.0;
  }
};

/// Submission identity bound to the calling thread.  QosBackend reads
/// it at the decorator boundary; the async connector captures it at
/// issue time and re-binds it on the background stream around the
/// actual storage transfer, so admission attributes work to the tenant
/// that *issued* it, not to the stream that happens to drain it.
struct SubmissionContext {
  TenantId tenant;          ///< "" resolves to kDefaultTenant
  Lane lane = Lane::kBulk;  ///< lane for data ops (flushes stay priority)
  double deadline = 0.0;    ///< absolute, scheduler clock; 0 = none
};

/// The calling thread's current submission binding; null when unbound.
const SubmissionContext* current_submission();

/// RAII binding of a SubmissionContext to the current thread.  Nests:
/// the previous binding is restored on destruction (the adaptive
/// connector may re-bind around an inner connector's issue path).
class ScopedSubmission {
 public:
  explicit ScopedSubmission(SubmissionContext context);
  ~ScopedSubmission();

  ScopedSubmission(const ScopedSubmission&) = delete;
  ScopedSubmission& operator=(const ScopedSubmission&) = delete;

 private:
  SubmissionContext context_;
  const SubmissionContext* previous_;
};

}  // namespace apio::sched
