#include "model/epoch_model.h"

#include <algorithm>

#include "common/error.h"

namespace apio::model {

std::string to_string(IoMode mode) {
  return mode == IoMode::kSync ? "sync" : "async";
}

double sync_epoch_seconds(const EpochCosts& costs) {
  return costs.t_io + costs.t_comp;
}

double async_epoch_seconds(const EpochCosts& costs) {
  return std::max(costs.t_comp, costs.t_io - costs.t_comp) + costs.t_transact;
}

double epoch_seconds(const EpochCosts& costs, IoMode mode) {
  return mode == IoMode::kSync ? sync_epoch_seconds(costs)
                               : async_epoch_seconds(costs);
}

double async_speedup(const EpochCosts& costs) {
  const double async = async_epoch_seconds(costs);
  APIO_REQUIRE(async > 0.0, "async epoch time must be positive");
  return sync_epoch_seconds(costs) / async;
}

std::string to_string(OverlapScenario scenario) {
  switch (scenario) {
    case OverlapScenario::kIdeal: return "ideal";
    case OverlapScenario::kPartial: return "partial";
    case OverlapScenario::kSlowdown: return "slowdown";
  }
  return "?";
}

OverlapScenario classify_overlap(const EpochCosts& costs) {
  if (!async_is_beneficial(costs)) return OverlapScenario::kSlowdown;
  if (costs.t_comp >= costs.t_io) return OverlapScenario::kIdeal;
  return OverlapScenario::kPartial;
}

bool async_is_beneficial(const EpochCosts& costs) {
  return async_epoch_seconds(costs) < sync_epoch_seconds(costs);
}

double app_seconds(const AppSchedule& schedule, IoMode mode) {
  APIO_REQUIRE(schedule.iterations >= 0, "iterations must be >= 0");
  // Eq. 1 sums uniform epochs; the terminal queue drain of the real
  // async connector is not part of the paper's model and is accounted
  // for by the simulator (sim::EpochSimulator) instead.
  double total = schedule.t_init + schedule.t_term;
  total += schedule.iterations * epoch_seconds(schedule.epoch, mode);
  return total;
}

}  // namespace apio::model
