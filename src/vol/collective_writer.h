// Two-phase collective write aggregation over extent lists (MPI-IO
// "collective buffering", generalised from workloads/two_phase's single
// slab per rank).
//
// Every rank contributes a list of (element offset, payload) extents of
// one shared 1-D dataset.  Ranks exchange extent headers with one
// allgather, partition the selected file span into stripe-aligned
// regions owned by aggregator ranks, ship payload pieces point-to-point
// to the owning aggregators, and the aggregators merge adjacent pieces
// into large contiguous writes issued through the VOL connector (whose
// dataset path lands them as vectored backend transfers).  Because the
// headers are allgathered, every rank derives the full communication
// pattern deterministically — no probing, no handshake round.
//
// Opt-in: workloads call this instead of per-rank dataset_write when
// their access pattern is many small interleaved extents, the pattern
// the paper's VPIC-IO workload shows collapsing PFS throughput.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "h5/file.h"
#include "pmpi/world.h"
#include "vol/connector.h"

namespace apio::vol {

struct CollectiveWriteOptions {
  /// Aggregator file-region granularity in bytes; regions are rounded
  /// up to whole stripes so one stripe never splits across aggregators
  /// (the Lustre-alignment rule collective buffering exists for).
  std::uint64_t stripe_bytes = 4 << 20;
  /// Number of aggregator ranks; 0 picks one aggregator per stripe-ful
  /// of selected span, capped at the communicator size.
  int num_aggregators = 0;
};

/// One rank-local contribution: `data` covers whole elements and lands
/// at element `elem_offset` of the shared dataset.
struct CollectiveExtent {
  std::uint64_t elem_offset = 0;
  std::span<const std::byte> data;
};

struct CollectiveWriteResult {
  /// Write requests the aggregators issued (after merging), summed.
  std::uint64_t requests_issued = 0;
  /// Payload pieces received by aggregators before merging, summed.
  std::uint64_t extents_received = 0;
  /// Bytes moved through aggregators (also added to the
  /// io.aggregated_bytes counter).
  std::uint64_t total_bytes = 0;
  /// Caller-visible blocking time, max over ranks.
  double blocking_seconds = 0.0;
};

/// Collective: every rank of `comm` must call with its own extent list
/// (possibly empty).  Extents must be pairwise disjoint across all
/// ranks and sorted by elem_offset within each rank's list.  When
/// `outstanding` is non-null the aggregators' write requests are
/// appended there instead of waited on, so an async connector can
/// overlap the drain with the next epoch; the caller must wait on them
/// before reading the data back.  Returns identical results on every
/// rank (requests_issued counts only waited requests when `outstanding`
/// is null — in-flight requests are counted either way).
CollectiveWriteResult collective_write(
    Connector& connector, pmpi::Communicator& comm, h5::Dataset ds,
    std::span<const CollectiveExtent> extents,
    const CollectiveWriteOptions& options = {},
    std::vector<RequestPtr>* outstanding = nullptr);

}  // namespace apio::vol
