// EQSIM/SW4 proxy: the earthquake simulation of Sec. IV-C.
//
// SW4 solves fourth-order-accurate seismic wave equations; its I/O
// phase checkpoints the displacement/velocity fields every N steps.
// The proxy keeps a real (small) fourth-order finite-difference wave
// kernel for the compute phase — so examples exercise genuine
// computation, not just sleeps — and checkpoints through the VOL under
// strong scaling, like the paper's grid-size-50 runs.
#pragma once

#include "sim/epoch_sim.h"
#include "workloads/amr.h"
#include "workloads/checkpoint_app.h"

namespace apio::workloads {

/// A 3-D scalar wave field updated with a 4th-order central-difference
/// Laplacian and leapfrog time stepping.  Deterministic; used as the
/// EQSIM proxy's compute phase and directly testable (a standing wave
/// must keep its energy bounded under a CFL-stable step).
class WaveGrid {
 public:
  /// `dims` — grid points per axis; `dx` — spacing; `dt` — time step;
  /// `c` — wave speed.  Requires CFL stability dt <= dx / (c * sqrt(3)).
  WaveGrid(h5::Dims dims, double dx, double dt, double wave_speed);

  /// Seeds a Gaussian displacement pulse in the grid centre.
  void seed_pulse(double amplitude, double width);

  /// Advances one leapfrog step with the 4th-order stencil.
  void step();

  double time() const { return time_; }
  const h5::Dims& dims() const { return dims_; }
  const std::vector<float>& displacement() const { return u_; }

  /// Discrete field energy (kinetic + potential proxy); bounded for a
  /// stable configuration.
  double energy() const;

 private:
  h5::Dims dims_;
  double dx_;
  double dt_;
  double c_;
  double time_ = 0.0;
  std::vector<float> u_prev_;
  std::vector<float> u_;
  std::vector<float> u_next_;

  std::size_t index(std::uint64_t i, std::uint64_t j, std::uint64_t k) const;
};

struct EqsimParams {
  /// Paper run: 30000 x 30000 x 17000 m at grid size 50 m =>
  /// 600 x 600 x 340 grid points.  Real executions use small grids.
  h5::Dims domain{600, 600, 340};
  int ncomp = 6;  ///< 3 displacement + 3 velocity components
  CheckpointSchedule schedule{/*checkpoints=*/3, /*steps_per_checkpoint=*/100,
                              /*seconds_per_step=*/0.0};
  /// When true the compute phase runs the WaveGrid stencil (scaled to
  /// a small private grid per rank) instead of sleeping.
  bool real_compute = false;
};

class EqsimProxy {
 public:
  explicit EqsimProxy(EqsimParams params);

  CheckpointRunResult run(vol::Connector& connector, pmpi::Communicator& comm) const;

  const EqsimParams& params() const { return params_; }

  static std::string checkpoint_name(int index);

  /// Simulator configuration reproducing Fig. 6 (Summit, strong scaling).
  static sim::RunConfig sim_config(const sim::SystemSpec& spec, int nodes,
                                   model::IoMode mode, const EqsimParams& params,
                                   double seconds_per_step = 1.0);

 private:
  EqsimParams params_;
};

}  // namespace apio::workloads
