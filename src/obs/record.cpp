#include "obs/record.h"

#include <algorithm>

namespace apio::obs {

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kWrite: return "write";
    case IoOp::kRead: return "read";
    case IoOp::kPrefetch: return "prefetch";
    case IoOp::kFlush: return "flush";
  }
  return "?";
}

void CompositeObserver::add(IoObserverPtr observer) {
  if (observer == nullptr) return;
  std::lock_guard lock(mutex_);
  observers_.push_back(std::move(observer));
  refresh_flags_locked();
}

void CompositeObserver::remove(const IoObserverPtr& observer) {
  std::lock_guard lock(mutex_);
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
  refresh_flags_locked();
}

void CompositeObserver::clear() {
  std::lock_guard lock(mutex_);
  observers_.clear();
  refresh_flags_locked();
}

std::size_t CompositeObserver::size() const {
  std::lock_guard lock(mutex_);
  return observers_.size();
}

void CompositeObserver::refresh_flags_locked() {
  count_.store(observers_.size(), std::memory_order_relaxed);
  bool detail = false;
  for (const auto& o : observers_) detail = detail || o->wants_detail();
  wants_detail_.store(detail, std::memory_order_relaxed);
}

void CompositeObserver::on_io(const IoRecord& record) {
  // Emission holds the list guard: observers' on_io take only their own
  // leaf locks and never call back into the composite, so no cycle.
  std::lock_guard lock(mutex_);
  for (const auto& o : observers_) o->on_io(record);
}

}  // namespace apio::obs
