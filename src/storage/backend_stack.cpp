#include "storage/backend_stack.h"

#include "common/debug/invariant.h"
#include "common/error.h"
#include "storage/memory_backend.h"

namespace apio::storage {

BackendStack::BackendStack(BackendPtr leaf) : backend_(std::move(leaf)) {
  APIO_REQUIRE(backend_ != nullptr, "BackendStack needs a leaf backend");
}

BackendStack BackendStack::memory() {
  return BackendStack(std::make_shared<MemoryBackend>());
}

BackendStack BackendStack::posix(const std::string& path,
                                 PosixBackend::Mode mode) {
  return BackendStack(std::make_shared<PosixBackend>(path, mode));
}

BackendStack BackendStack::wrap(BackendPtr leaf) {
  return BackendStack(std::move(leaf));
}

void BackendStack::require_order(Stage next, const char* layer) {
  APIO_INVARIANT(static_cast<int>(next) > static_cast<int>(stage_),
                 "backend decorator order is leaf < throttled < resilient < "
                 "qos < cached, each layer at most once");
  (void)layer;
  stage_ = next;
}

BackendStack& BackendStack::throttled(ThrottleParams params) {
  require_order(Stage::kThrottled, "throttled");
  backend_ = std::make_shared<ThrottledBackend>(std::move(backend_), params);
  return *this;
}

BackendStack& BackendStack::resilient(ResilienceOptions options,
                                      const Clock* clock,
                                      resilience::Sleeper* sleeper) {
  require_order(Stage::kResilient, "resilient");
  backend_ = std::make_shared<ResilientBackend>(std::move(backend_),
                                                std::move(options), clock,
                                                sleeper);
  return *this;
}

BackendStack& BackendStack::qos(sched::FairSchedulerPtr scheduler,
                                QosOptions options) {
  require_order(Stage::kQos, "qos");
  backend_ = std::make_shared<QosBackend>(
      std::move(backend_), std::move(scheduler), std::move(options));
  return *this;
}

BackendStack& BackendStack::cached(CacheOptions options, BackendPtr staging) {
  require_order(Stage::kCached, "cached");
  backend_ = std::make_shared<CachedBackend>(std::move(backend_), options,
                                             std::move(staging));
  return *this;
}

BackendPtr BackendStack::build() const { return backend_; }

}  // namespace apio::storage
