// Ablation: staging queue depth of the async connector.  With short
// compute phases the background queue fills; a deeper queue absorbs
// longer bursts at the cost of staging memory (depth x checkpoint
// size).  DESIGN.md calls this out as the central capacity/latency
// trade-off of transparent async I/O.
#include "bench/bench_util.h"
#include "workloads/vpic_io.h"

int main() {
  using namespace apio;
  const auto spec = sim::SystemSpec::summit();
  sim::EpochSimulator simulator(spec);
  const int nodes = 32;
  const int iterations = 24;

  bench::banner("Ablation: async staging queue depth (Summit, VPIC-IO, 32 nodes)",
                "compute phase deliberately shorter than the background I/O "
                "so the pipeline backs up");

  // Background I/O per epoch ~ bytes/cap; pick compute at ~30% of it.
  auto base = workloads::VpicIoKernel::sim_config(spec, nodes, model::IoMode::kAsync,
                                                  iterations);
  base.contention_sigma_override = 0.0;
  const double t_io = spec.pfs.io_seconds(base.bytes_per_epoch, nodes * 6, nodes,
                                          storage::IoKind::kWrite);
  base.compute_seconds = 0.3 * t_io;

  std::printf("epoch I/O (background) = %.2f s, compute = %.2f s\n\n", t_io,
              base.compute_seconds);
  std::printf("%8s | %14s %16s %18s\n", "depth", "total [s]",
              "mean blocking [s]", "staging footprint");
  std::printf("%8s | %14s %16s %18s\n", "-----", "---------", "---------------",
              "-----------------");
  for (int depth : {1, 2, 4, 8, 16}) {
    auto config = base;
    config.staging_queue_depth = depth;
    const auto result = simulator.run(config);
    const double mean_blocking =
        result.total_blocking_seconds() / static_cast<double>(result.epochs.size());
    std::printf("%8d | %14.1f %16.2f %18s\n", depth, result.total_seconds,
                mean_blocking,
                format_bytes(static_cast<std::uint64_t>(depth) *
                             config.bytes_per_epoch / nodes)
                    .c_str());
  }
  std::printf(
      "\nshape check: once the pipeline is saturated (I/O-bound), extra\n"
      "depth only defers the back-pressure — total time converges to the\n"
      "background I/O floor while the staging footprint keeps growing.\n");
  return 0;
}
