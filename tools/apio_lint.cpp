// apio_lint: repo-specific concurrency-hygiene lint.
//
// A deliberately dependency-free (no libclang) token/line-based checker
// for rules the compiler cannot enforce but the concurrency model
// requires (DESIGN.md, "Concurrency model"):
//
//   raw-mutex     src/tasking, src/pmpi and src/vol must synchronise
//                 through debug::RankedMutex so the global lock-rank
//                 order is checked at runtime.  Raw std::mutex /
//                 std::condition_variable (whose wait() forces a raw
//                 std::mutex) are rejected; std::condition_variable_any
//                 pairs with RankedMutex and is fine.
//   no-detach     detached threads outlive scope-based reasoning and
//                 every sanitizer's happens-before graph; forbidden
//                 everywhere in src/ and tests/.
//   no-test-sleep wall-clock sleeps make tests flaky and slow; tests
//                 must synchronise on events.  Sleeps that *simulate
//                 compute phases* (the paper's methodology) are opted
//                 in per line with "apio-lint: allow(no-test-sleep)".
//   pragma-once   every header under src/ uses #pragma once (the
//                 include-guard style of this repo).
//   set-observer  Connector::set_observer() is a deprecated single-slot
//                 shim; new code subscribes with add_observer() so
//                 multiple observers (model, trace, metrics) compose.
//                 Only the shim's own definition carries a waiver.
//   faulty-backend  storage::FaultyBackend is a test-only fault
//                 injector; wiring it into library code under src/
//                 (outside its own definition) would ship injected
//                 failures.  Production resilience goes through
//                 storage::ResilientBackend / AsyncOptions::retry.
//   io-vector     dataset transfer paths in src/h5 must aggregate
//                 segments through h5::IoVector (one vectored
//                 write_v/read_v per transfer) instead of issuing
//                 per-segment backend.write()/read() calls — the
//                 request-per-fragment pattern is exactly what the
//                 aggregation layer exists to eliminate.  The
//                 deliberate scalar fallbacks (A/B comparison paths)
//                 carry per-line waivers.
//
// Any rule can be waived for one line with a trailing comment:
//   // apio-lint: allow(<rule>)
//
// Usage: apio_lint <repo-root>
// Exit code 0 when clean, 1 when violations were found (wired into
// CTest as the `lint` label, so tier-1 fails on violations).
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void report(const fs::path& file, std::size_t line, std::string rule,
            std::string message) {
  g_violations.push_back(
      {file.generic_string(), line, std::move(rule), std::move(message)});
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// True when `line` carries an "apio-lint: allow(<rule>)" waiver.
bool waived(std::string_view line, std::string_view rule) {
  const std::string marker = "apio-lint: allow(" + std::string(rule) + ")";
  return contains(line, marker);
}

/// Strips // and /* */ comments (tracking block state across lines) so
/// rule tokens inside prose do not count.  String literals are not
/// parsed; none of the rule tokens plausibly appears inside one.
std::string strip_comments(const std::string& line, bool& in_block) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size();) {
    if (in_block) {
      if (line.compare(i, 2, "*/") == 0) {
        in_block = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (line.compare(i, 2, "/*") == 0) {
      in_block = true;
      i += 2;
      continue;
    }
    if (line.compare(i, 2, "//") == 0) break;
    out.push_back(line[i]);
    ++i;
  }
  return out;
}

/// Token match: `needle` not preceded/followed by an identifier char.
bool has_token(std::string_view code, std::string_view needle) {
  auto is_ident = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident(code[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= code.size() || !is_ident(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool path_under(const fs::path& file, const fs::path& dir) {
  const std::string f = file.generic_string();
  const std::string d = dir.generic_string();
  return f.size() > d.size() && f.compare(0, d.size(), d) == 0 &&
         f[d.size()] == '/';
}

void lint_file(const fs::path& root, const fs::path& file) {
  const bool in_ranked_scope = path_under(file, root / "src" / "tasking") ||
                               path_under(file, root / "src" / "pmpi") ||
                               path_under(file, root / "src" / "vol");
  const bool in_tests = path_under(file, root / "tests");
  const bool in_src = path_under(file, root / "src");
  const bool is_faulty_backend_impl =
      file.filename() == "faulty_backend.h" ||
      file.filename() == "faulty_backend.cpp";
  const bool in_h5 = path_under(file, root / "src" / "h5");
  const bool is_io_vector_impl = file.filename() == "io_vector.h" ||
                                 file.filename() == "io_vector.cpp";
  const bool is_header = file.extension() == ".h";

  std::ifstream in(file);
  if (!in) {
    report(file, 0, "io", "cannot open file");
    return;
  }

  bool saw_pragma_once = false;
  bool in_block_comment = false;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (contains(raw, "#pragma once")) saw_pragma_once = true;
    const std::string code = strip_comments(raw, in_block_comment);
    if (code.empty()) continue;

    if (in_ranked_scope) {
      for (const char* bad : {"std::mutex", "std::recursive_mutex",
                              "std::timed_mutex", "std::shared_mutex",
                              "std::recursive_timed_mutex"}) {
        if (has_token(code, bad) && !waived(raw, "raw-mutex")) {
          report(file, lineno, "raw-mutex",
                 std::string(bad) +
                     " is forbidden here; use apio::debug::RankedMutex so "
                     "the lock-rank order is enforced");
        }
      }
      if (has_token(code, "std::condition_variable") &&
          !waived(raw, "raw-mutex")) {
        report(file, lineno, "raw-mutex",
               "std::condition_variable waits on a raw std::mutex; use "
               "std::condition_variable_any with a RankedMutex");
      }
    }

    if (has_token(code, "set_observer") && !waived(raw, "set-observer")) {
      report(file, lineno, "set-observer",
             "set_observer() is a deprecated single-slot shim that clears "
             "the whole chain; subscribe with add_observer()");
    }

    if (in_src && !is_faulty_backend_impl && has_token(code, "FaultyBackend") &&
        !waived(raw, "faulty-backend")) {
      report(file, lineno, "faulty-backend",
             "FaultyBackend is a test-only fault injector and must not be "
             "wired into library code; use storage::ResilientBackend or "
             "AsyncOptions::retry for production resilience");
    }

    if (in_h5 && !is_io_vector_impl &&
        (contains(code, "backend.write(") || contains(code, "backend.read(")) &&
        !waived(raw, "io-vector")) {
      report(file, lineno, "io-vector",
             "dataset transfers must aggregate through h5::IoVector "
             "(write_v/read_v), not issue per-segment backend calls; "
             "annotate a deliberate scalar fallback with apio-lint: "
             "allow(io-vector)");
    }

    if (contains(code, ".detach()") && !waived(raw, "no-detach")) {
      report(file, lineno, "no-detach",
             "detached threads escape shutdown and sanitizer analysis; "
             "join every thread");
    }

    if (in_tests) {
      for (const char* bad : {"sleep_for", "sleep_until", "usleep"}) {
        if (has_token(code, bad) && !waived(raw, "no-test-sleep")) {
          report(file, lineno, "no-test-sleep",
                 "wall-clock sleeps make tests flaky; synchronise on "
                 "events, or annotate a compute-phase simulation with "
                 "apio-lint: allow(no-test-sleep)");
        }
      }
    }
  }

  if (is_header && !saw_pragma_once) {
    report(file, 1, "pragma-once", "headers must use #pragma once");
  }
}

void walk(const fs::path& root, const fs::path& dir) {
  if (!fs::exists(dir)) return;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto ext = entry.path().extension();
    if (ext == ".h" || ext == ".cpp") lint_file(root, entry.path());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: apio_lint <repo-root>\n");
    return 2;
  }
  std::error_code ec;
  const fs::path root = fs::canonical(argv[1], ec);
  if (ec) {
    std::fprintf(stderr, "apio_lint: cannot open %s: %s\n", argv[1],
                 ec.message().c_str());
    return 2;
  }
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "apio_lint: %s has no src/ directory\n",
                 root.generic_string().c_str());
    return 2;
  }

  walk(root, root / "src");
  walk(root, root / "tests");
  walk(root, root / "examples");
  walk(root, root / "bench");

  for (const auto& v : g_violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!g_violations.empty()) {
    std::fprintf(stderr, "apio_lint: %zu violation(s)\n", g_violations.size());
    return 1;
  }
  std::printf("apio_lint: clean\n");
  return 0;
}
