// AsyncConnector: the asynchronous VOL connector — the system the
// paper evaluates (Sec. II-A, "Transparent Asynchronous Parallel I/O
// using Background Threads").
//
// Mechanics, mirroring hpc-io/vol-async:
//   * one background execution stream (Argobots-style, src/tasking)
//     drains a FIFO pool of container operations;
//   * dataset_write copies the caller's buffer into an internal staging
//     buffer and returns — that copy is the paper's *transactional
//     overhead* (t_transact in Eq. 2b); the background task later moves
//     the staged bytes to the target storage;
//   * operations on one connector execute in FIFO order (each task
//     depends on its predecessor), which is how the VOL connector keeps
//     HDF5's ordering semantics without fine-grained dependency
//     analysis;
//   * dataset_read either completes in the background (caller owns the
//     buffer until completion) or is served from the prefetch cache
//     (the BD-CATS-IO read path: first read synchronous, subsequent
//     time steps prefetched during compute).
//
// Initialization (stream + pool creation) and termination (drain +
// join) are timed; they are the t_init / t_term costs of Eq. 1.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/debug/lock_rank.h"
#include "resilience/retry.h"
#include "sched/io_request.h"
#include "tasking/execution_stream.h"
#include "vol/connector.h"

namespace apio::vol {

/// Tunables for the async connector.
struct AsyncOptions {
  /// Upper bound on bytes staged but not yet written; dataset_write
  /// blocks (back-pressure) when exceeded.  0 = unlimited.
  std::uint64_t max_staged_bytes = 0;
  /// Optional staging device: when set, the transactional copy lands on
  /// this backend (e.g. a node-local SSD file) instead of a DRAM
  /// buffer, trading staging speed for capacity — the paper's
  /// "caching data either to a memory buffer on the same node ... or to
  /// a node-local SSD" (Sec. II-C).  The region is bump-allocated and
  /// recycled only across connector lifetimes.
  storage::BackendPtr staging_backend;
  /// Retry policy for background operations: a failed attempt is
  /// re-enqueued under backoff instead of failing the request outright.
  /// The default (max_attempts = 1) reproduces pre-resilience behavior.
  resilience::RetryPolicy retry;
  /// Degraded mode: when a write's retries are exhausted, replay the
  /// staged buffer synchronously through the native data path (outside
  /// policy and breaker) before giving up.  The request then completes
  /// successfully with Request::degraded() set.
  bool sync_fallback = false;
  /// Where retry backoff sleeps go.  Null = blocking wall sleeper;
  /// tests inject a resilience::ManualClock so nothing wall-sleeps.
  /// Backoff sleeps run on the background stream and stall the FIFO —
  /// exactly the semantics of a storage target that is down.
  resilience::Sleeper* sleeper = nullptr;
  /// Optional circuit breaker consulted before every attempt; may be
  /// shared across connectors targeting the same backend.
  resilience::CircuitBreakerPtr breaker;
  /// Fair-share identity charged for this connector's storage work when
  /// the file sits on a storage::QosBackend.  Empty = inherit the
  /// issuing thread's sched::ScopedSubmission binding (falling back to
  /// the QosBackend's default tenant).  The connector captures the
  /// identity at *issue* time and re-binds it on the background stream
  /// around each attempt, so admission always charges the tenant that
  /// issued the op, never the stream draining it.
  sched::TenantId tenant;
};

/// Counters exposed for tests, benches and the model.
///
/// Mutated under the connector's stats mutex by application threads
/// (enqueue paths) AND the background stream (staging accounting), so
/// they must never be read field-by-field while the connector is live;
/// stats() returns a coherent snapshot taken under the same mutex.
struct AsyncStats {
  std::uint64_t writes_enqueued = 0;
  std::uint64_t reads_enqueued = 0;
  std::uint64_t prefetches_enqueued = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t bytes_staged = 0;
  std::uint64_t staged_high_watermark = 0;
  /// Re-executed attempts across all operations (excludes the first
  /// attempt of each).
  std::uint64_t retries = 0;
  /// Operations completed only via sync-fallback replay.
  std::uint64_t degraded_ops = 0;
  /// Operations that exhausted policy and failed.
  std::uint64_t failed_ops = 0;
  double init_seconds = 0.0;
  double term_seconds = 0.0;
};

class AsyncConnector final : public Connector {
 public:
  explicit AsyncConnector(h5::FilePtr file, AsyncOptions options = {},
                          const Clock* clock = nullptr);

  /// Drains outstanding work and joins the background stream, but —
  /// unlike close() — leaves the container open: several connectors may
  /// come and go over one file's lifetime.
  ~AsyncConnector() override;

  const h5::FilePtr& file() const override { return file_; }

  RequestPtr dataset_write(h5::Dataset ds, const h5::Selection& selection,
                           std::span<const std::byte> data) override;
  RequestPtr dataset_read(h5::Dataset ds, const h5::Selection& selection,
                          std::span<std::byte> out) override;
  void prefetch(h5::Dataset ds, const h5::Selection& selection) override;
  RequestPtr flush() override;
  void wait_all() override;
  void close() override;

  /// Coherent snapshot of the counters; safe to call from any thread
  /// while the background stream is running.
  AsyncStats stats() const;

  /// Drops any unconsumed prefetch buffers.
  void clear_cache();

 private:
  struct CacheEntry {
    tasking::EventualPtr ready;
    std::shared_ptr<std::vector<std::byte>> data;
  };

  /// One background operation's full state: payload, identity, retry
  /// session and completion plumbing.  Heap-shared because the retry
  /// loop re-enqueues the same operation into the pool.
  struct AsyncOp;

  h5::FilePtr file_;
  AsyncOptions options_;
  WallClock wall_clock_;
  const Clock* clock_;

  tasking::PoolPtr pool_;
  std::unique_ptr<tasking::ExecutionStream> stream_;

  debug::RankedMutex<debug::LockRank::kVolConnector> order_mutex_;
  tasking::EventualPtr last_op_;

  debug::RankedMutex<debug::LockRank::kVolCache> cache_mutex_;
  std::map<std::string, CacheEntry> cache_;

  mutable debug::RankedMutex<debug::LockRank::kCounters> stats_mutex_;
  AsyncStats stats_;
  std::atomic<std::uint64_t> staged_outstanding_{0};
  std::atomic<std::uint64_t> staging_device_offset_{0};
  std::condition_variable_any staging_cv_;
  debug::RankedMutex<debug::LockRank::kVolStaging> staging_mutex_;

  /// Set by shutdown_machinery(); read by every entry point.  Atomic:
  /// a close() racing in-flight operations must fail them with
  /// StateError, not tear a plain bool.
  std::atomic<bool> closed_{false};

  /// Chains `op` behind the connector's FIFO tail.  The op enters the
  /// pool when its predecessor reaches its *final* outcome (successors
  /// wait out a predecessor's retries, preserving FIFO semantics).
  void enqueue_op(std::shared_ptr<AsyncOp> op);

  /// Executes one attempt on the background stream; on failure consults
  /// the op's retry session and either re-enqueues, degrades (write
  /// sync-fallback) or fails the request.
  void run_attempt(const std::shared_ptr<AsyncOp>& op);

  /// Performs the actual storage transfer for the op's kind.
  void execute_op(AsyncOp& op);

  /// Final-outcome paths: fill the shared RequestOutcome, release
  /// staging accounting (writes, exactly once), update stats/counters,
  /// then complete the eventual.
  void finish_success(const std::shared_ptr<AsyncOp>& op);
  void finish_failure(const std::shared_ptr<AsyncOp>& op,
                      std::exception_ptr error);

  /// Records the completion phase and seals the op's trace (runs before
  /// the eventual fires so waiters observe a sealed trace).
  static void seal_trace(const AsyncOp& op, bool failed,
                         double completion_start);

  /// Drains and joins the background machinery without closing the file.
  void shutdown_machinery();

  static std::string cache_key(const h5::Dataset& ds, const h5::Selection& selection);

  void note_staged(std::uint64_t bytes);
  void note_unstaged(std::uint64_t bytes);
};

}  // namespace apio::vol
