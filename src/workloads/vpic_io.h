// VPIC-IO: the plasma-physics write kernel of Sec. IV-B.
//
// Each MPI rank writes the same number of particles per time step,
// with 8 properties per particle, each property a 1-D dataset — weak
// scaling by construction.  In the paper a rank writes 8x1024x1024
// particles (~32 MB per property); our real executions use scaled-down
// particle counts, while the simulator configuration reproduces the
// paper's sizes at any node count.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/epoch_sim.h"
#include "workloads/workload_common.h"

namespace apio::workloads {

struct VpicParams {
  std::uint64_t particles_per_rank = 8ull * 1024 * 1024;
  int time_steps = 5;
  /// Emulated compute-phase duration between I/O phases.
  double compute_seconds = 0.0;
  /// When >= 1, property slabs go through two-phase collective
  /// aggregation (vol::collective_write) with this many aggregator
  /// ranks; 0 keeps the direct per-rank writes the paper's baseline
  /// VPIC-IO issues.
  int collective_aggregators = 0;
  /// Aggregator file-region granularity for the collective path.
  std::uint64_t collective_stripe_bytes = 4 << 20;
};

/// The 8 particle properties VPIC writes (position, momentum, energy, id).
inline constexpr std::array<const char*, 8> kVpicProperties = {
    "x", "y", "z", "px", "py", "pz", "energy", "id"};

/// Bytes one rank writes per time step (8 float32 properties).
std::uint64_t vpic_bytes_per_rank_per_step(const VpicParams& params);

/// Result of a real execution on one rank.
struct VpicRunResult {
  /// Per-step I/O phase blocking time (max across ranks).
  std::vector<double> step_io_seconds;
  /// Aggregate bytes written per step across all ranks.
  std::uint64_t bytes_per_step = 0;
  /// Aggregate observed bandwidth of the best step (peak, as Fig. 3 plots).
  double peak_bandwidth() const;
};

class VpicIoKernel {
 public:
  explicit VpicIoKernel(VpicParams params);

  /// Collective: every rank of `comm` must call run() with the same
  /// shared connector.  Writes `time_steps` groups "Step#<i>" each
  /// holding one 1-D dataset per property; rank r writes the slab
  /// [r*ppr, (r+1)*ppr).  Returns identical results on every rank.
  VpicRunResult run(vol::Connector& connector, pmpi::Communicator& comm) const;

  const VpicParams& params() const { return params_; }

  /// Group name of step `i` ("Step#0", ...).
  static std::string step_group(int step);

  /// Simulator configuration reproducing the paper's VPIC-IO runs
  /// (32 MB per property per rank, weak scaling).
  static sim::RunConfig sim_config(const sim::SystemSpec& spec, int nodes,
                                   model::IoMode mode, int steps = 5,
                                   double compute_seconds = 30.0);

 private:
  VpicParams params_;
};

}  // namespace apio::workloads
