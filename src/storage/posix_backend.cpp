#include "storage/posix_backend.h"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/debug/invariant.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "storage/obs_metrics.h"

namespace apio::storage {
namespace {

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw IoError(what + " '" + path + "': " + std::strerror(errno));
}

constexpr std::size_t default_iov_limit() {
#ifdef IOV_MAX
  return IOV_MAX;
#else
  return 1024;
#endif
}

}  // namespace

namespace detail {

void write_fully(const PwriteFn& op, std::uint64_t offset,
                 std::span<const std::byte> data, const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const long n = op(data.data() + done, data.size() - done, offset + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite failed for", path);
    }
    if (n == 0) {
      // No progress and no errno: looping would spin forever.  Treat it
      // as an error, exactly like the read path treats a short read.
      throw IoError("posix backend: zero-progress write to '" + path + "'");
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace detail

PosixBackend::PosixBackend(const std::string& path, Mode mode)
    : path_(path), iov_limit_(default_iov_limit()) {
  int flags = O_RDWR;
  switch (mode) {
    case Mode::kCreateTruncate: flags |= O_CREAT | O_TRUNC; break;
    case Mode::kOpenExisting: break;
    case Mode::kOpenOrCreate: flags |= O_CREAT; break;
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throw_errno("open failed for", path);
}

PosixBackend::~PosixBackend() {
  if (fd_ >= 0) ::close(fd_);
}

void PosixBackend::set_iov_batch_limit(std::size_t limit) {
  APIO_REQUIRE(limit >= 1, "iovec batch limit must be >= 1");
  iov_limit_ = limit;
}

std::uint64_t PosixBackend::size() const {
  struct stat st{};
  if (::fstat(fd_, &st) != 0) throw_errno("fstat failed for", path_);
  return static_cast<std::uint64_t>(st.st_size);
}

void PosixBackend::read(std::uint64_t offset, std::span<std::byte> out) {
  APIO_INVARIANT(offset + out.size() >= offset, "read range overflows offset space");
  obs::TimedOp op("storage.read", obs::Category::kStorage, storage_read_hist(),
                  &storage_bytes_read(), out.size());
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, out.size(),
                               "posix");
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread failed for", path_);
    }
    if (n == 0) {
      throw IoError("posix backend: read past end of file '" + path_ + "'");
    }
    done += static_cast<std::size_t>(n);
  }
  count_read(out.size());
}

void PosixBackend::write(std::uint64_t offset, std::span<const std::byte> data) {
  APIO_INVARIANT(offset + data.size() >= offset, "write range overflows offset space");
  obs::TimedOp op("storage.write", obs::Category::kStorage, storage_write_hist(),
                  &storage_bytes_written(), data.size());
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, data.size(),
                               "posix");
  detail::write_fully(
      [this](const std::byte* buf, std::size_t len, std::uint64_t off) {
        return static_cast<long>(::pwrite(fd_, buf, len, static_cast<off_t>(off)));
      },
      offset, data, path_);
  count_write(data.size());
}

std::uint64_t PosixBackend::write_v(std::span<const WriteExtent> extents) {
  if (extents.empty()) return 0;
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.data.size();
  obs::TimedOp op("storage.write", obs::Category::kStorage, storage_write_hist(),
                  &storage_bytes_written(), total);
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, total, "posix");

  // Group file-contiguous extents into one pwritev each (a gather from
  // many memory spans into one contiguous file run), splitting batches
  // at the iovec limit.  Partial writes advance through the batch.
  std::vector<struct iovec> iov;
  std::size_t i = 0;
  while (i < extents.size()) {
    std::uint64_t start = extents[i].offset;
    std::uint64_t end = start;
    iov.clear();
    while (i < extents.size() && iov.size() < iov_limit_ &&
           extents[i].offset == end) {
      iov.push_back({const_cast<std::byte*>(extents[i].data.data()),
                     extents[i].data.size()});
      end += extents[i].data.size();
      ++i;
    }
    std::size_t idx = 0;
    std::uint64_t offset = start;
    while (idx < iov.size()) {
      const ssize_t n = ::pwritev(fd_, iov.data() + idx,
                                  static_cast<int>(iov.size() - idx),
                                  static_cast<off_t>(offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("pwritev failed for", path_);
      }
      if (n == 0) {
        throw IoError("posix backend: zero-progress vectored write to '" +
                      path_ + "'");
      }
      offset += static_cast<std::uint64_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (idx < iov.size() && left >= iov[idx].iov_len) {
        left -= iov[idx].iov_len;
        ++idx;
      }
      if (idx < iov.size() && left > 0) {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
        iov[idx].iov_len -= left;
      }
    }
  }
  count_write(total);
  return total;
}

std::uint64_t PosixBackend::read_v(std::span<const ReadExtent> extents) {
  if (extents.empty()) return 0;
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.out.size();
  obs::TimedOp op("storage.read", obs::Category::kStorage, storage_read_hist(),
                  &storage_bytes_read(), total);
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, total, "posix");

  std::vector<struct iovec> iov;
  std::size_t i = 0;
  while (i < extents.size()) {
    std::uint64_t start = extents[i].offset;
    std::uint64_t end = start;
    iov.clear();
    while (i < extents.size() && iov.size() < iov_limit_ &&
           extents[i].offset == end) {
      iov.push_back({extents[i].out.data(), extents[i].out.size()});
      end += extents[i].out.size();
      ++i;
    }
    std::size_t idx = 0;
    std::uint64_t offset = start;
    while (idx < iov.size()) {
      const ssize_t n = ::preadv(fd_, iov.data() + idx,
                                 static_cast<int>(iov.size() - idx),
                                 static_cast<off_t>(offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("preadv failed for", path_);
      }
      if (n == 0) {
        throw IoError("posix backend: read past end of file '" + path_ + "'");
      }
      offset += static_cast<std::uint64_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (idx < iov.size() && left >= iov[idx].iov_len) {
        left -= iov[idx].iov_len;
        ++idx;
      }
      if (idx < iov.size() && left > 0) {
        iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + left;
        iov[idx].iov_len -= left;
      }
    }
  }
  count_read(total);
  return total;
}

void PosixBackend::flush() {
  if (::fsync(fd_) != 0) throw_errno("fsync failed for", path_);
  count_flush();
}

void PosixBackend::truncate(std::uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    throw_errno("ftruncate failed for", path_);
  }
}

}  // namespace apio::storage
