// Sec. III-B1 micro-benchmark: memcpy bandwidth between two CPU memory
// buffers vs. transfer size, run for real with google-benchmark.  The
// paper's observation — bandwidth becomes constant above ~32 MB — is
// what justifies modelling the transactional overhead with a constant
// rate for large requests.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

namespace {

void BM_MemcpyBandwidth(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<char> src(bytes, 1);
  std::vector<char> dst(bytes, 0);
  for (auto _ : state) {
    std::memcpy(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

// 64 KiB .. 128 MiB: the paper's knee at 32 MB sits inside this sweep.
BENCHMARK(BM_MemcpyBandwidth)->RangeMultiplier(4)->Range(64 << 10, 128 << 20);

void BM_StagingCopyWithAllocation(benchmark::State& state) {
  // The async VOL's transactional copy allocates the staging buffer per
  // operation; measure the combined cost the connector actually pays.
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  std::vector<char> src(bytes, 1);
  for (auto _ : state) {
    std::vector<char> staged(src.begin(), src.end());
    benchmark::DoNotOptimize(staged.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

BENCHMARK(BM_StagingCopyWithAllocation)->RangeMultiplier(4)->Range(64 << 10, 64 << 20);

}  // namespace

BENCHMARK_MAIN();
