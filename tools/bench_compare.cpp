#include "bench_compare.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace apio::bench {

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser.  Dependency-free on purpose —
// the gate must build in every configuration; the documents it reads
// are machine-generated one-liners, so the parser favours clarity over
// speed and keeps values in a tiny variant tree.

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::shared_ptr<JsonValue> parse() {
    skip_ws();
    auto value = parse_value();
    if (value == nullptr) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return value;
  }

 private:
  std::shared_ptr<JsonValue> fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return nullptr;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::string(literal).size();
    if (text_.compare(pos_, n, literal) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> parse_value() {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string_value();
      case 't':
      case 'f': return parse_bool();
      case 'n':
        if (consume_literal("null")) return std::make_shared<JsonValue>();
        return fail("bad literal");
      default: return parse_number();
    }
  }

  std::shared_ptr<JsonValue> parse_bool() {
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kBool;
    if (consume_literal("true")) {
      value->boolean = true;
      return value;
    }
    if (consume_literal("false")) return value;
    return fail("bad literal");
  }

  std::shared_ptr<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail("malformed number");
    }
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kNumber;
    value->number = parsed;
    return value;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) {
      fail("expected string");
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          // The emitters only escape control characters; decode the
          // code point as a single byte (sufficient for < 0x80).
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          out->push_back(static_cast<char>(
              std::strtol(hex.c_str(), nullptr, 16) & 0xff));
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  std::shared_ptr<JsonValue> parse_string_value() {
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kString;
    if (!parse_string(&value->string)) return nullptr;
    return value;
  }

  std::shared_ptr<JsonValue> parse_array() {
    consume('[');
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return value;
    while (true) {
      skip_ws();
      auto element = parse_value();
      if (element == nullptr) return nullptr;
      value->array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return value;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  std::shared_ptr<JsonValue> parse_object() {
    consume('{');
    auto value = std::make_shared<JsonValue>();
    value->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return value;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return nullptr;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      auto element = parse_value();
      if (element == nullptr) return nullptr;
      value->object[key] = std::move(element);
      skip_ws();
      if (consume('}')) return value;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

const JsonValue* find(const JsonObject& object, const std::string& key) {
  auto it = object.find(key);
  return it != object.end() ? it->second.get() : nullptr;
}

std::string get_string(const JsonObject& object, const std::string& key) {
  const JsonValue* v = find(object, key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string : "";
}

double get_number(const JsonObject& object, const std::string& key,
                  double fallback) {
  const JsonValue* v = find(object, key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->number
                                                             : fallback;
}

}  // namespace

bool parse_bench_jsonl(const std::string& text, std::vector<BenchRecord>* out,
                       std::string* error) {
  std::size_t line_start = 0;
  int line_number = 0;
  while (line_start <= text.size()) {
    std::size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) line_end = text.size();
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::string parse_error;
    auto root = JsonParser(line, &parse_error).parse();
    if (root == nullptr || root->kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = "line " + std::to_string(line_number) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return false;
    }

    BenchRecord record;
    record.bench = get_string(root->object, "bench");
    if (record.bench.empty()) continue;  // not a bench record; skip
    record.schema = static_cast<int>(get_number(root->object, "schema", 0));
    record.config = get_string(root->object, "config");
    if (const JsonValue* values = find(root->object, "values");
        values != nullptr && values->kind == JsonValue::Kind::kArray) {
      for (const auto& entry : values->array) {
        if (entry->kind != JsonValue::Kind::kObject) continue;
        ComparedValue value;
        value.metric = get_string(entry->object, "metric");
        value.value = get_number(entry->object, "value", 0.0);
        value.units = get_string(entry->object, "units");
        value.noise = get_string(entry->object, "noise");
        if (!value.metric.empty()) record.values.push_back(std::move(value));
      }
    }
    out->push_back(std::move(record));
  }
  return true;
}

std::map<std::pair<std::string, std::string>, BenchRecord> merge_records(
    const std::vector<BenchRecord>& records) {
  std::map<std::pair<std::string, std::string>, BenchRecord> merged;
  for (const auto& record : records) {
    merged[{record.bench, record.config}] = record;  // last record wins
  }
  return merged;
}

bool higher_is_worse(const std::string& units) {
  // Durations regress upward; rates (B/s, ops/s, ...) regress downward.
  return units == "s" || units == "seconds" || units == "ms" || units == "us" ||
         units == "ns";
}

namespace {

void compare_values(const BenchRecord& current, const BenchRecord& baseline,
                    const CompareOptions& options, CompareResult* result) {
  std::map<std::string, const ComparedValue*> current_by_metric;
  for (const auto& value : current.values) {
    current_by_metric[value.metric] = &value;
  }

  for (const auto& base : baseline.values) {
    auto it = current_by_metric.find(base.metric);
    if (it == current_by_metric.end()) {
      result->violations.push_back(
          {current.bench, current.config, base.metric,
           "metric present in baseline but missing from current run"});
      continue;
    }
    const ComparedValue& cur = *it->second;
    current_by_metric.erase(it);
    ++result->compared_values;

    const double reference = std::abs(base.value);
    const double delta = cur.value - base.value;
    const double relative =
        reference > 0.0 ? delta / reference : (delta == 0.0 ? 0.0 : 1e9);
    const bool wall = base.noise == "wall" || cur.noise == "wall";
    const double tolerance =
        wall ? options.wall_tolerance : options.det_tolerance;

    bool violated;
    if (wall) {
      // One-sided: only a move in the regression direction counts.
      violated = higher_is_worse(base.units) ? relative > tolerance
                                             : relative < -tolerance;
    } else {
      // Deterministic: any drift past the tolerance is a failure —
      // including "improvements", which mean the baseline is stale.
      violated = std::abs(relative) > tolerance;
    }
    if (violated) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%.6g -> %.6g %s (%+.1f%%, %s tolerance %.0f%%)",
                    base.value, cur.value, base.units.c_str(),
                    100.0 * relative, wall ? "wall" : "det",
                    100.0 * tolerance);
      result->violations.push_back(
          {current.bench, current.config, base.metric, buf});
    }
  }

  for (const auto& [metric, value] : current_by_metric) {
    (void)value;
    result->violations.push_back(
        {current.bench, current.config, metric,
         "metric missing from baseline — regenerate bench/baselines/"});
  }
}

}  // namespace

CompareResult compare_records(const std::vector<BenchRecord>& current,
                              const std::vector<BenchRecord>& baseline,
                              const CompareOptions& options) {
  CompareResult result;
  auto current_merged = merge_records(current);
  auto baseline_merged = merge_records(baseline);

  for (const auto& [key, base] : baseline_merged) {
    auto it = current_merged.find(key);
    if (it == current_merged.end()) {
      result.violations.push_back(
          {key.first, key.second, "",
           "bench record present in baseline but missing from current run"});
      continue;
    }
    ++result.compared_records;
    compare_values(it->second, base, options, &result);
    current_merged.erase(it);
  }
  for (const auto& [key, record] : current_merged) {
    (void)record;
    result.violations.push_back(
        {key.first, key.second, "",
         "bench record missing from baseline — regenerate bench/baselines/"});
  }
  return result;
}

}  // namespace apio::bench
