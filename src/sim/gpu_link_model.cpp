#include "sim/gpu_link_model.h"

#include <algorithm>

#include "common/error.h"
#include "common/units.h"

namespace apio::sim {

GpuLinkModel::GpuLinkModel(double peak_bandwidth, double pageable_bandwidth,
                           double half_size, double dma_setup_latency)
    : peak_(peak_bandwidth),
      pageable_(pageable_bandwidth),
      half_size_(half_size),
      latency_(dma_setup_latency) {
  APIO_REQUIRE(peak_ > 0 && pageable_ > 0, "link bandwidths must be positive");
  APIO_REQUIRE(pageable_ <= peak_, "pageable bandwidth cannot exceed the link peak");
}

double GpuLinkModel::transfer_seconds(std::uint64_t bytes, bool pinned) const {
  const double ceiling = pinned ? peak_ : pageable_;
  const double s = static_cast<double>(bytes);
  const double eff = s / (s + half_size_);
  // Pageable transfers additionally pay the runtime's bounce-buffer
  // copy, modelled as a second latency term.
  const double setup = pinned ? latency_ : 2.0 * latency_;
  return setup + s / (ceiling * eff);
}

double GpuLinkModel::achieved_bandwidth(std::uint64_t bytes, bool pinned) const {
  APIO_REQUIRE(bytes > 0, "achieved_bandwidth of an empty transfer");
  return static_cast<double>(bytes) / transfer_seconds(bytes, pinned);
}

GpuLinkModel GpuLinkModel::nvlink2() {
  // 50 GB/s theoretical; pinned copies approach it, pageable copies
  // bottleneck on the host-side staging at ~18 GB/s.  The ~1 MiB knee
  // and 15 us DMA setup amortise above ~10 MB, matching the paper's
  // micro-benchmark observation.
  return GpuLinkModel(50.0 * kGB, 18.0 * kGB, 1.0 * static_cast<double>(kMiB), 15e-6);
}

GpuLinkModel GpuLinkModel::pcie3() {
  return GpuLinkModel(15.75 * kGB, 6.0 * kGB, 1.0 * static_cast<double>(kMiB), 20e-6);
}

}  // namespace apio::sim
