// CI regression gate for the figure-reproduction benches: diffs
// standardized bench JSON (as bench::record_bench_metrics emits it)
// against the committed baselines in bench/baselines/, with noise-aware
// thresholds.  Exits 0 when every compared value is inside tolerance,
// 1 on any violation, 2 on usage or parse errors.
//
//   apio_bench_compare current1.jsonl [current2.jsonl ...]
//       --baselines bench/baselines [--tol-det 10] [--tol-wall 60]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_compare.h"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: apio_bench_compare <current.jsonl>... --baselines DIR\n"
      "           [--tol-det PCT] [--tol-wall PCT]\n"
      "  --tol-det   symmetric tolerance for deterministic values "
      "(default 10%%)\n"
      "  --tol-wall  one-sided tolerance for wall-clock values "
      "(default 60%%)\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool load_records(const std::string& path,
                  std::vector<apio::bench::BenchRecord>* records) {
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "apio_bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::string error;
  if (!apio::bench::parse_bench_jsonl(text, records, &error)) {
    std::fprintf(stderr, "apio_bench_compare: %s: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> current_paths;
  std::string baselines_dir;
  apio::bench::CompareOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--baselines") {
      const char* value = next();
      if (value == nullptr) return usage();
      baselines_dir = value;
    } else if (arg == "--tol-det") {
      const char* value = next();
      if (value == nullptr) return usage();
      options.det_tolerance = std::atof(value) / 100.0;
    } else if (arg == "--tol-wall") {
      const char* value = next();
      if (value == nullptr) return usage();
      options.wall_tolerance = std::atof(value) / 100.0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "apio_bench_compare: unknown flag %s\n", arg.c_str());
      return usage();
    } else {
      current_paths.push_back(arg);
    }
  }
  if (current_paths.empty() || baselines_dir.empty()) return usage();

  std::vector<apio::bench::BenchRecord> current;
  for (const auto& path : current_paths) {
    if (!load_records(path, &current)) return 2;
  }

  std::vector<apio::bench::BenchRecord> baseline;
  std::error_code ec;
  std::filesystem::directory_iterator it(baselines_dir, ec);
  if (ec) {
    std::fprintf(stderr, "apio_bench_compare: cannot open baselines dir %s\n",
                 baselines_dir.c_str());
    return 2;
  }
  int baseline_files = 0;
  for (const auto& entry : it) {
    if (!entry.is_regular_file() || entry.path().extension() != ".jsonl") {
      continue;
    }
    if (!load_records(entry.path().string(), &baseline)) return 2;
    ++baseline_files;
  }
  if (baseline_files == 0) {
    std::fprintf(stderr,
                 "apio_bench_compare: no *.jsonl baselines under %s\n",
                 baselines_dir.c_str());
    return 2;
  }

  const auto result = apio::bench::compare_records(current, baseline, options);
  std::printf("apio_bench_compare: %d record(s), %d value(s) compared "
              "against %d baseline file(s)\n",
              result.compared_records, result.compared_values, baseline_files);
  for (const auto& v : result.violations) {
    std::fprintf(stderr, "VIOLATION %s[%s] %s: %s\n", v.bench.c_str(),
                 v.config.c_str(), v.metric.empty() ? "-" : v.metric.c_str(),
                 v.reason.c_str());
  }
  if (!result.ok()) {
    std::fprintf(stderr, "apio_bench_compare: %zu violation(s)\n",
                 result.violations.size());
    return 1;
  }
  std::printf("apio_bench_compare: OK\n");
  return 0;
}
