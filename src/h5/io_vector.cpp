#include "h5/io_vector.h"

#include <algorithm>

#include "common/debug/invariant.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace apio::h5 {
namespace {

obs::Counter& vectored_ops_counter() {
  static auto& c = obs::Registry::instance().counter("io.vectored_ops");
  return c;
}

obs::Counter& extents_merged_counter() {
  static auto& c = obs::Registry::instance().counter("io.extents_merged");
  return c;
}

std::span<const std::byte> span_of(const storage::WriteExtent& e) { return e.data; }
std::span<std::byte> span_of(const storage::ReadExtent& e) { return e.out; }

void extend(storage::WriteExtent& e, std::size_t by) {
  e.data = {e.data.data(), e.data.size() + by};
}
void extend(storage::ReadExtent& e, std::size_t by) {
  e.out = {e.out.data(), e.out.size() + by};
}

/// True when `next` continues `prev` in both the file and memory, i.e.
/// the two segments are one transfer that a selection walk happened to
/// emit in pieces (chunk boundaries, row splits).
template <typename Extent>
bool mergeable(const Extent& prev, const Extent& next) {
  return prev.offset + span_of(prev).size() == next.offset &&
         span_of(prev).data() + span_of(prev).size() == span_of(next).data();
}

/// Sorts by file offset and coalesces in place; returns the number of
/// segments eliminated.  The result is the sorted, pairwise-disjoint
/// extent list Backend::write_v/read_v require.
template <typename Extent>
std::uint64_t sort_and_merge(std::vector<Extent>& extents) {
  std::stable_sort(extents.begin(), extents.end(),
                   [](const Extent& a, const Extent& b) { return a.offset < b.offset; });
  std::uint64_t merged = 0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < extents.size(); ++i) {
    if (out > 0) {
      Extent& prev = extents[out - 1];
      APIO_INVARIANT(extents[i].offset >= prev.offset + span_of(prev).size(),
                     "IoVector segments overlap in the file");
      if (mergeable(prev, extents[i])) {
        extend(prev, span_of(extents[i]).size());
        ++merged;
        continue;
      }
    }
    extents[out++] = extents[i];
  }
  extents.resize(out);
  return merged;
}

}  // namespace

void IoVector::add_write(std::uint64_t offset, std::span<const std::byte> data) {
  if (data.empty()) return;
  APIO_REQUIRE(reads_.empty(), "IoVector already holds read segments");
  bytes_ += data.size();
  // Cheap in-order merge: selection walks emit most segments already in
  // file order, so the common case coalesces here without a sort.
  if (!writes_.empty() && mergeable(writes_.back(), storage::WriteExtent{offset, data})) {
    extend(writes_.back(), data.size());
    ++merged_;
    return;
  }
  writes_.push_back({offset, data});
}

void IoVector::add_read(std::uint64_t offset, std::span<std::byte> out) {
  if (out.empty()) return;
  APIO_REQUIRE(writes_.empty(), "IoVector already holds write segments");
  bytes_ += out.size();
  if (!reads_.empty() && mergeable(reads_.back(), storage::ReadExtent{offset, out})) {
    extend(reads_.back(), out.size());
    ++merged_;
    return;
  }
  reads_.push_back({offset, out});
}

void IoVector::write_to(storage::Backend& backend) {
  APIO_REQUIRE(reads_.empty(), "IoVector holds read segments; use read_from");
  if (writes_.empty()) return;
  merged_ += sort_and_merge(writes_);
  if (obs::enabled()) {
    vectored_ops_counter().increment();
    extents_merged_counter().add(merged_);
  }
  const std::uint64_t moved = backend.write_v(writes_);
  APIO_INVARIANT(moved == bytes_,
                 "vectored write transferred fewer bytes than submitted");
}

void IoVector::read_from(storage::Backend& backend) {
  APIO_REQUIRE(writes_.empty(), "IoVector holds write segments; use write_to");
  if (reads_.empty()) return;
  merged_ += sort_and_merge(reads_);
  if (obs::enabled()) {
    vectored_ops_counter().increment();
    extents_merged_counter().add(merged_);
  }
  const std::uint64_t moved = backend.read_v(reads_);
  APIO_INVARIANT(moved == bytes_,
                 "vectored read transferred fewer bytes than submitted");
}

void IoVector::clear() {
  writes_.clear();
  reads_.clear();
  bytes_ = 0;
  merged_ = 0;
}

}  // namespace apio::h5
