#include "vol/native_connector.h"

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "vol/selection_token.h"

namespace apio::vol {
namespace {

RequestPtr completed_request() {
  return std::make_shared<Request>(tasking::Eventual::make_ready());
}

obs::Histogram& sync_write_hist() {
  static auto& h = obs::Registry::instance().histogram("vol.sync.write_seconds");
  return h;
}

obs::Histogram& sync_read_hist() {
  static auto& h = obs::Registry::instance().histogram("vol.sync.read_seconds");
  return h;
}

obs::Counter& sync_bytes_written() {
  static auto& c = obs::Registry::instance().counter("vol.sync.bytes_written");
  return c;
}

obs::Counter& sync_bytes_read() {
  static auto& c = obs::Registry::instance().counter("vol.sync.bytes_read");
  return c;
}

}  // namespace

NativeConnector::NativeConnector(h5::FilePtr file, const Clock* clock)
    : file_(std::move(file)), clock_(clock != nullptr ? clock : &wall_clock_) {
  APIO_REQUIRE(file_ != nullptr, "NativeConnector requires an open file");
}

RequestPtr NativeConnector::dataset_write(h5::Dataset ds,
                                          const h5::Selection& selection,
                                          std::span<const std::byte> data) {
  const double t0 = clock_->now();
  {
    obs::TimedOp op("write.sync", obs::Category::kVol, sync_write_hist(),
                    &sync_bytes_written(), data.size());
    ds.write_raw(selection, data);
  }
  const double dt = clock_->now() - t0;
  if (has_observers()) {
    IoRecord record;
    record.op = IoOp::kWrite;
    record.bytes = data.size();
    record.ranks = reported_ranks();
    record.origin_rank = obs::thread_rank();
    record.issue_time = t0;
    record.blocking_seconds = dt;
    record.completion_seconds = dt;
    record.async = false;
    if (observers_want_detail()) {
      record.dataset_path = file_->path_of(ds);
      record.selection = selection_to_token(selection);
    }
    observe(record);
  }
  return completed_request();
}

RequestPtr NativeConnector::dataset_read(h5::Dataset ds,
                                         const h5::Selection& selection,
                                         std::span<std::byte> out) {
  const double t0 = clock_->now();
  {
    obs::TimedOp op("read.sync", obs::Category::kVol, sync_read_hist(),
                    &sync_bytes_read(), out.size());
    ds.read_raw(selection, out);
  }
  const double dt = clock_->now() - t0;
  if (has_observers()) {
    IoRecord record;
    record.op = IoOp::kRead;
    record.bytes = out.size();
    record.ranks = reported_ranks();
    record.origin_rank = obs::thread_rank();
    record.issue_time = t0;
    record.blocking_seconds = dt;
    record.completion_seconds = dt;
    record.async = false;
    if (observers_want_detail()) {
      record.dataset_path = file_->path_of(ds);
      record.selection = selection_to_token(selection);
    }
    observe(record);
  }
  return completed_request();
}

void NativeConnector::prefetch(h5::Dataset ds, const h5::Selection& selection) {
  // Synchronous mode has no background machinery to prefetch with; the
  // hint is still reported so trace sinks capture the full call stream.
  if (has_observers()) {
    const double t0 = clock_->now();
    IoRecord record;
    record.op = IoOp::kPrefetch;
    record.bytes = selection.npoints(ds.dims()) * ds.element_size();
    record.ranks = reported_ranks();
    record.origin_rank = obs::thread_rank();
    record.issue_time = t0;
    record.async = false;
    if (observers_want_detail()) {
      record.dataset_path = file_->path_of(ds);
      record.selection = selection_to_token(selection);
    }
    observe(record);
  }
}

RequestPtr NativeConnector::flush() {
  const double t0 = clock_->now();
  file_->flush();
  const double dt = clock_->now() - t0;
  if (has_observers()) {
    IoRecord record;
    record.op = IoOp::kFlush;
    record.ranks = reported_ranks();
    record.origin_rank = obs::thread_rank();
    record.issue_time = t0;
    record.blocking_seconds = dt;
    record.completion_seconds = dt;
    record.async = false;
    observe(record);
  }
  return completed_request();
}

void NativeConnector::close() {
  if (file_->is_open()) file_->close();
}

}  // namespace apio::vol
