// Ablation: vectored I/O aggregation (IoVector) and the two-phase
// collective writer.
//
// A strided hyperslab over a chunked dataset is the request-per-fragment
// pattern that collapses sync bandwidth in the paper's strong-scaled
// applications: every fragment used to become its own backend call and
// pay the full per-request latency.  Two views:
//   (1) dataset path: backend calls + modelled PFS time for the same
//       strided write, scalar loop vs one vectored write_v;
//   (2) collective: 16 ranks writing interleaved slabs direct vs
//       through aggregator ranks (merged requests).
// Both views run on Throttled(Memory) with time_scale = 0, so every
// reported number is deterministic model time ("det" noise class).
#include "bench/bench_util.h"
#include "h5/file.h"
#include "pmpi/world.h"
#include "storage/memory_backend.h"
#include "storage/throttled_backend.h"
#include "vol/collective_writer.h"
#include "vol/native_connector.h"

int main() {
  using namespace apio;
  bench::banner("Ablation: vectored I/O aggregation",
                "fragmented dataset transfers coalesced into vectored "
                "backend calls");

  std::vector<bench::BenchValue> values;

  // (1) Dataset path: 64x64 int32 chunked (8x8), stride-2 hyperslab in
  // both dimensions — 1024 fragments of 1 element each.
  {
    const h5::Dims dims{64, 64};
    h5::Hyperslab slab;
    slab.start = {0, 0};
    slab.stride = {2, 2};
    slab.count = {32, 32};
    const auto selection = h5::Selection::hyperslab(slab);
    std::vector<std::int32_t> payload(32 * 32);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::int32_t>(i);
    }

    std::printf("\ndataset path (64x64 chunked 8x8, stride-2 hyperslab, "
                "1 ms/request latency):\n");
    std::printf("  %10s | %12s | %12s\n", "path", "backend ops", "model time");
    std::uint64_t ops[2] = {0, 0};
    double seconds[2] = {0.0, 0.0};
    for (int vectored = 0; vectored < 2; ++vectored) {
      storage::ThrottleParams throttle;
      throttle.bandwidth = 256.0 * kMiB;
      throttle.latency = 1e-3;
      throttle.time_scale = 0.0;  // model time only: deterministic
      auto throttled = std::make_shared<storage::ThrottledBackend>(
          std::make_shared<storage::MemoryBackend>(), throttle);
      h5::FileProps props;
      props.vectored_io = vectored == 1;
      auto file = h5::File::create(throttled, props);
      auto ds = file->root().create_dataset(
          "d", h5::Datatype::kInt32, dims, h5::DatasetCreateProps::chunked({8, 8}));
      const auto before = throttled->stats();
      const double t0 = throttled->modelled_delay_seconds();
      ds.write(selection, std::span<const std::int32_t>(payload));
      ops[vectored] = throttled->stats().write_ops - before.write_ops;
      seconds[vectored] = throttled->modelled_delay_seconds() - t0;
      std::printf("  %10s | %12llu | %10.4f s\n",
                  vectored ? "vectored" : "scalar",
                  static_cast<unsigned long long>(ops[vectored]),
                  seconds[vectored]);
    }
    std::printf("  %.0fx fewer requests, %.1fx less modelled PFS time.\n",
                static_cast<double>(ops[0]) / static_cast<double>(ops[1]),
                seconds[0] / seconds[1]);

    values.push_back({"scalar_write_ops", static_cast<double>(ops[0]), "ops"});
    values.push_back({"vectored_write_ops", static_cast<double>(ops[1]), "ops"});
    values.push_back({"scalar_model_seconds", seconds[0], "s"});
    values.push_back({"vectored_model_seconds", seconds[1], "s"});
  }

  // (2) Collective: 16 ranks, 2 extents each, interleaved; direct writes
  // vs two-phase aggregation over the same latency-bearing storage.
  {
    constexpr int kRanks = 16;
    constexpr std::uint64_t kPerRank = 4096;  // int32 elements
    std::printf("\ncollective (16 ranks, interleaved slabs, 2 ms/request "
                "latency):\n");
    std::printf("  %12s | %10s | %12s\n", "mode", "requests", "model time");
    for (const bool collective : {false, true}) {
      storage::ThrottleParams throttle;
      throttle.bandwidth = 64.0 * kMiB;
      throttle.latency = 2e-3;
      throttle.time_scale = 0.0;
      auto throttled = std::make_shared<storage::ThrottledBackend>(
          std::make_shared<storage::MemoryBackend>(), throttle);
      auto file = h5::File::create(throttled);
      auto connector = std::make_shared<vol::NativeConnector>(file);
      auto ds = file->root().create_dataset("d", h5::Datatype::kInt32,
                                            {kPerRank * kRanks});
      std::uint64_t requests = 0;
      pmpi::run(kRanks, [&](pmpi::Communicator& comm) {
        const auto rank = static_cast<std::uint64_t>(comm.rank());
        std::vector<std::int32_t> mine(kPerRank,
                                       static_cast<std::int32_t>(rank));
        const std::span<const std::int32_t> view(mine);
        if (collective) {
          const vol::CollectiveExtent extent{rank * kPerRank,
                                             std::as_bytes(view)};
          vol::CollectiveWriteOptions copts;
          copts.num_aggregators = 4;
          copts.stripe_bytes = kPerRank * kRanks * sizeof(std::int32_t) / 4;
          const auto result =
              vol::collective_write(*connector, comm, ds, {&extent, 1}, copts);
          if (comm.rank() == 0) requests = result.requests_issued;
        } else {
          auto req = connector->dataset_write(
              ds, h5::Selection::offsets({rank * kPerRank}, {kPerRank}),
              std::as_bytes(view));
          req->wait();
          if (comm.rank() == 0) requests = kRanks;
        }
        comm.barrier();
      });
      std::printf("  %12s | %10llu | %10.4f s\n",
                  collective ? "two-phase" : "direct",
                  static_cast<unsigned long long>(requests),
                  throttled->modelled_delay_seconds());
      values.push_back({collective ? "collective_requests" : "direct_requests",
                        static_cast<double>(requests), "ops"});
      values.push_back({collective ? "collective_model_seconds"
                                   : "direct_model_seconds",
                        throttled->modelled_delay_seconds(), "s"});
    }
    std::printf("  aggregators merge adjacent slabs: per-request latency is\n"
                "  paid once per region instead of once per rank.\n");
  }

  return bench::record_bench_metrics("ablation_vectored_io", "default", values);
}
