// I/O tracing: record the exact stream of dataset operations an
// application issues through a connector, persist it, summarise it, and
// replay it later against any connector.
//
// This is the "runtime tracking of I/O calls" the paper's methodology
// relies on (Sec. II-A), grown into a tool: capture a production run's
// I/O pattern once, then replay it through sync and async connectors —
// or feed its sizes to the simulator — to evaluate I/O modes without
// rerunning the application.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/debug/lock_rank.h"
#include "vol/connector.h"

namespace apio::vol {

/// One recorded operation.  Kind is the unified op enum shared with the
/// IoRecord stream (obs::IoOp) — traces are just persisted projections
/// of that stream.
struct TraceEvent {
  using Kind = IoOp;

  Kind kind = Kind::kWrite;
  std::string dataset_path;  ///< empty for flush
  h5::Selection selection;   ///< meaningful for dataset ops
  std::uint64_t bytes = 0;
  /// Seconds since the trace's first operation at which the call was issued.
  double issue_time = 0.0;
  /// Caller-visible blocking duration of the call.
  double blocking_seconds = 0.0;
  /// Causal trace identity (obs::trace), carried through from the
  /// IoRecord stream; 0 when tracing was off when the op ran.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// An ordered trace with CSV persistence.
class Trace {
 public:
  void append(TraceEvent event);
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// CSV: kind,path,selection,bytes,issue_time,blocking,trace_id,span_id
  /// Selections serialise as "all" or "start0xstart1:count0xcount1".
  /// Paths containing commas, quotes or newlines are RFC4180-quoted
  /// (embedded quotes doubled); from_csv understands quoted fields and
  /// throws FormatError on unterminated quotes or malformed rows.
  /// Legacy 6-column rows (pre trace-id) parse with both ids zero;
  /// any other column count is malformed.
  std::string to_csv() const;
  static Trace from_csv(const std::string& csv);

 private:
  std::vector<TraceEvent> events_;
};

/// Connector interposer that records every operation it forwards.
///
/// Recording rides the unified observer stream: the recorder subscribes
/// a detail-requesting sink on the inner connector and converts each
/// IoRecord into a TraceEvent — there is no second, private record
/// path.  With an async inner connector records surface at completion
/// time, so call wait_all() before trace() to capture in-flight ops;
/// trace() sorts by issue time and rebases it to the first operation.
class TraceRecorder final : public Connector {
 public:
  /// The clock parameter is accepted for interface stability but no
  /// longer consulted: timings come from the inner connector's records.
  explicit TraceRecorder(ConnectorPtr inner, const Clock* clock = nullptr);
  ~TraceRecorder() override;

  const h5::FilePtr& file() const override { return inner_->file(); }
  RequestPtr dataset_write(h5::Dataset ds, const h5::Selection& selection,
                           std::span<const std::byte> data) override;
  RequestPtr dataset_read(h5::Dataset ds, const h5::Selection& selection,
                          std::span<std::byte> out) override;
  void prefetch(h5::Dataset ds, const h5::Selection& selection) override;
  RequestPtr flush() override;
  void wait_all() override { inner_->wait_all(); }
  void close() override { inner_->close(); }

  /// Additional subscribers land on the inner connector, next to the
  /// recorder's own sink.
  void add_observer(IoObserverPtr observer) override {
    inner_->add_observer(std::move(observer));
  }
  void remove_observer(const IoObserverPtr& observer) override {
    inner_->remove_observer(observer);
  }

  /// Snapshot of everything recorded so far, ordered by issue time.
  Trace trace() const;

 private:
  class Sink;

  ConnectorPtr inner_;
  std::shared_ptr<Sink> sink_;
};

/// Replay options.
struct ReplayOptions {
  /// Reproduce inter-operation gaps (compute phases) scaled by this
  /// factor; 0 replays back-to-back.
  double time_scale = 0.0;
  /// Synthetic fill byte for replayed writes.
  std::uint8_t fill = 0xA5;
};

/// Statistics of one replay run.
struct ReplayResult {
  std::size_t operations = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  double total_seconds = 0.0;
  double blocking_seconds = 0.0;  ///< caller-visible I/O blocking
};

/// Replays `trace` against `connector`.  Datasets are resolved by path
/// in the connector's file and must exist with compatible extents
/// (replaying a write trace into a freshly created twin container is
/// the intended use; see examples/).
ReplayResult replay_trace(const Trace& trace, Connector& connector,
                          ReplayOptions options = {});

/// Darshan-style per-dataset profile derived from a trace.
struct DatasetProfile {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  double blocking_seconds = 0.0;
};

class IoProfile {
 public:
  explicit IoProfile(const Trace& trace);

  const std::map<std::string, DatasetProfile>& per_dataset() const { return per_dataset_; }
  /// Histogram of request sizes: bucket i counts requests in
  /// [2^i, 2^(i+1)) bytes; bucket 0 additionally holds zero-size ops.
  const std::vector<std::uint64_t>& size_histogram() const { return histogram_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::size_t total_operations() const { return total_ops_; }

  /// Multi-line human-readable report.
  std::string report() const;

 private:
  std::map<std::string, DatasetProfile> per_dataset_;
  std::vector<std::uint64_t> histogram_;
  std::uint64_t total_bytes_ = 0;
  std::size_t total_ops_ = 0;
};

}  // namespace apio::vol
