// Unit tests for storage backends and the PFS bandwidth models.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <thread>

#include "common/error.h"
#include "common/units.h"
#include "storage/memory_backend.h"
#include "storage/pfs_model.h"
#include "storage/posix_backend.h"
#include "storage/throttled_backend.h"

namespace apio::storage {
namespace {

std::vector<std::byte> make_bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(std::byte{static_cast<unsigned char>(v)});
  return out;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------------------
// Backend behaviours shared by memory and posix: exercised via a
// parameterized suite.

enum class BackendKind { kMemory, kPosix };

class BackendContractTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  BackendPtr make_backend() {
    if (GetParam() == BackendKind::kMemory) return std::make_shared<MemoryBackend>();
    path_ = temp_path("apio_backend_contract_test.bin");
    return std::make_shared<PosixBackend>(path_, PosixBackend::Mode::kCreateTruncate);
  }

  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  std::string path_;
};

TEST_P(BackendContractTest, StartsEmpty) {
  auto b = make_backend();
  EXPECT_EQ(b->size(), 0u);
}

TEST_P(BackendContractTest, WriteThenReadRoundTrip) {
  auto b = make_backend();
  auto data = make_bytes({1, 2, 3, 4, 5});
  b->write(0, data);
  EXPECT_EQ(b->size(), 5u);
  std::vector<std::byte> out(5);
  b->read(0, out);
  EXPECT_EQ(out, data);
}

TEST_P(BackendContractTest, WriteAtOffsetGrowsObject) {
  auto b = make_backend();
  auto data = make_bytes({9});
  b->write(100, data);
  EXPECT_EQ(b->size(), 101u);
  std::vector<std::byte> out(1);
  b->read(100, out);
  EXPECT_EQ(std::to_integer<int>(out[0]), 9);
}

TEST_P(BackendContractTest, GapReadsBackZero) {
  auto b = make_backend();
  b->write(10, make_bytes({7}));
  std::vector<std::byte> out(10);
  b->read(0, out);
  for (auto v : out) EXPECT_EQ(std::to_integer<int>(v), 0);
}

TEST_P(BackendContractTest, ReadPastEndThrows) {
  auto b = make_backend();
  b->write(0, make_bytes({1, 2}));
  std::vector<std::byte> out(5);
  EXPECT_THROW(b->read(0, out), IoError);
  EXPECT_THROW(b->read(100, out), IoError);
}

TEST_P(BackendContractTest, OverwriteInPlace) {
  auto b = make_backend();
  b->write(0, make_bytes({1, 2, 3}));
  b->write(1, make_bytes({9}));
  std::vector<std::byte> out(3);
  b->read(0, out);
  EXPECT_EQ(std::to_integer<int>(out[0]), 1);
  EXPECT_EQ(std::to_integer<int>(out[1]), 9);
  EXPECT_EQ(std::to_integer<int>(out[2]), 3);
}

TEST_P(BackendContractTest, TruncateShrinksAndGrows) {
  auto b = make_backend();
  b->write(0, make_bytes({1, 2, 3, 4}));
  b->truncate(2);
  EXPECT_EQ(b->size(), 2u);
  b->truncate(6);
  EXPECT_EQ(b->size(), 6u);
  std::vector<std::byte> out(6);
  b->read(0, out);
  EXPECT_EQ(std::to_integer<int>(out[1]), 2);
  EXPECT_EQ(std::to_integer<int>(out[5]), 0);  // zero fill on growth
}

TEST_P(BackendContractTest, StatsCountTransfers) {
  auto b = make_backend();
  b->write(0, make_bytes({1, 2, 3}));
  std::vector<std::byte> out(3);
  b->read(0, out);
  b->flush();
  const auto stats = b->stats();
  EXPECT_EQ(stats.bytes_written, 3u);
  EXPECT_EQ(stats.bytes_read, 3u);
  EXPECT_EQ(stats.write_ops, 1u);
  EXPECT_EQ(stats.read_ops, 1u);
  EXPECT_EQ(stats.flushes, 1u);
}

TEST_P(BackendContractTest, ConcurrentDisjointWrites) {
  auto b = make_backend();
  constexpr int kThreads = 8;
  constexpr std::size_t kChunk = 1024;
  b->truncate(kThreads * kChunk);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::byte> chunk(kChunk, std::byte{static_cast<unsigned char>(t + 1)});
      b->write(static_cast<std::uint64_t>(t) * kChunk, chunk);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    std::vector<std::byte> out(kChunk);
    b->read(static_cast<std::uint64_t>(t) * kChunk, out);
    for (auto v : out) EXPECT_EQ(std::to_integer<int>(v), t + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendContractTest,
                         ::testing::Values(BackendKind::kMemory, BackendKind::kPosix),
                         [](const auto& info) {
                           return info.param == BackendKind::kMemory ? "Memory"
                                                                     : "Posix";
                         });

// ---------------------------------------------------------------------------
// PosixBackend specifics

TEST(PosixBackendTest, PersistsAcrossReopen) {
  const std::string path = temp_path("apio_posix_persist.bin");
  {
    PosixBackend b(path, PosixBackend::Mode::kCreateTruncate);
    b.write(0, make_bytes({42}));
    b.flush();
  }
  {
    PosixBackend b(path, PosixBackend::Mode::kOpenExisting);
    std::vector<std::byte> out(1);
    b.read(0, out);
    EXPECT_EQ(std::to_integer<int>(out[0]), 42);
  }
  std::filesystem::remove(path);
}

TEST(PosixBackendTest, OpenMissingFileThrows) {
  EXPECT_THROW(PosixBackend("/nonexistent-dir-xyz/file.bin",
                            PosixBackend::Mode::kOpenExisting),
               IoError);
}

TEST(PosixBackendTest, CreateTruncateClearsOldContent) {
  const std::string path = temp_path("apio_posix_trunc.bin");
  {
    PosixBackend b(path, PosixBackend::Mode::kCreateTruncate);
    b.write(0, make_bytes({1, 2, 3}));
  }
  {
    PosixBackend b(path, PosixBackend::Mode::kCreateTruncate);
    EXPECT_EQ(b.size(), 0u);
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// ThrottledBackend

TEST(ThrottledBackendTest, DelegatesData) {
  auto inner = std::make_shared<MemoryBackend>();
  ThrottleParams params;
  params.bandwidth = 1e12;
  params.time_scale = 0.0;  // no real sleeping in unit tests
  ThrottledBackend throttled(inner, params);
  throttled.write(0, make_bytes({5, 6}));
  std::vector<std::byte> out(2);
  throttled.read(0, out);
  EXPECT_EQ(std::to_integer<int>(out[1]), 6);
}

TEST(ThrottledBackendTest, AccountsModelledDelay) {
  auto inner = std::make_shared<MemoryBackend>();
  ThrottleParams params;
  params.bandwidth = 1000.0;  // 1000 B/s
  params.latency = 0.5;
  params.time_scale = 0.0;
  ThrottledBackend throttled(inner, params);
  std::vector<std::byte> data(2000, std::byte{1});
  throttled.write(0, data);
  // 0.5 s latency + 2000/1000 s transfer = 2.5 s modelled.
  EXPECT_NEAR(throttled.modelled_delay_seconds(), 2.5, 1e-9);
}

TEST(ThrottledBackendTest, SharedChannelSerializesDelays) {
  auto inner = std::make_shared<MemoryBackend>();
  ThrottleParams params;
  params.bandwidth = 1000.0;
  params.time_scale = 0.0;
  params.shared_channel = true;
  ThrottledBackend throttled(inner, params);
  std::vector<std::byte> data(500, std::byte{1});
  throttled.write(0, data);
  throttled.write(500, data);
  EXPECT_NEAR(throttled.modelled_delay_seconds(), 1.0, 1e-9);
}

TEST(ThrottledBackendTest, ActuallySleepsWhenScaled) {
  auto inner = std::make_shared<MemoryBackend>();
  ThrottleParams params;
  params.bandwidth = 1.0 * kMB;
  params.latency = 0.02;
  params.time_scale = 1.0;
  ThrottledBackend throttled(inner, params);
  const auto t0 = std::chrono::steady_clock::now();
  throttled.write(0, make_bytes({1}));
  const auto dt = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0);
  EXPECT_GE(dt.count(), 0.015);
}

TEST(ThrottledBackendTest, RejectsBadParams) {
  auto inner = std::make_shared<MemoryBackend>();
  ThrottleParams params;
  params.bandwidth = 0.0;
  EXPECT_THROW(ThrottledBackend(inner, params), InvalidArgumentError);
  EXPECT_THROW(ThrottledBackend(nullptr, ThrottleParams{}), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// PfsModel — the figure-shaping physics.

TEST(PfsModelTest, SummitFactoryParameters) {
  auto pfs = PfsModel::summit_gpfs();
  EXPECT_EQ(pfs.params().name, "summit-gpfs");
  EXPECT_GT(pfs.params().aggregate_cap, 100.0 * kGB);
}

TEST(PfsModelTest, CoriCapScalesWithStripeCount) {
  auto narrow = PfsModel::cori_lustre(8);
  auto wide = PfsModel::cori_lustre(72);
  EXPECT_LT(narrow.params().aggregate_cap, wide.params().aggregate_cap);
  EXPECT_NEAR(wide.params().aggregate_cap / narrow.params().aggregate_cap, 9.0, 1e-9);
}

TEST(PfsModelTest, MoreNodesNeverSlower) {
  auto pfs = PfsModel::cori_lustre();
  const std::uint64_t bytes = 32ull * kMiB * 1024;  // 32 GiB aggregate
  double prev = 0.0;
  for (int nodes = 1; nodes <= 256; nodes *= 2) {
    const double bw = pfs.effective_bandwidth(bytes, nodes * 32, nodes,
                                              IoKind::kWrite);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
}

TEST(PfsModelTest, WeakScalingSaturatesAtCap) {
  auto pfs = PfsModel::cori_lustre(72);
  // Weak scaling: 32 MiB per rank, 32 ranks/node.
  const double cap = pfs.params().aggregate_cap;
  const int nodes = 512;
  const int ranks = nodes * 32;
  const std::uint64_t bytes = static_cast<std::uint64_t>(ranks) * 32 * kMiB;
  const double bw = pfs.effective_bandwidth(bytes, ranks, nodes, IoKind::kWrite);
  EXPECT_LE(bw, cap + 1.0);
  EXPECT_GT(bw, 0.9 * cap);
}

TEST(PfsModelTest, SmallPerRankRequestsLoseEfficiency) {
  auto pfs = PfsModel::summit_gpfs();
  const int nodes = 16;
  const int ranks = nodes * 6;
  const std::uint64_t big = static_cast<std::uint64_t>(ranks) * 32 * kMiB;
  const std::uint64_t small = static_cast<std::uint64_t>(ranks) * 16 * kKiB;
  const double bw_big = pfs.effective_bandwidth(big, ranks, nodes, IoKind::kWrite);
  const double bw_small = pfs.effective_bandwidth(small, ranks, nodes, IoKind::kWrite);
  EXPECT_GT(bw_big, 5.0 * bw_small);
}

TEST(PfsModelTest, StrongScalingAggregateDeclinesOnGpfs) {
  // The Castro/EQSIM regime: fixed ~100 MB dataset, growing rank count
  // => observed aggregate bandwidth must fall (Fig. 4c / Fig. 6).
  auto pfs = PfsModel::summit_gpfs();
  const std::uint64_t bytes = 100ull * 1000 * 1000;
  double prev = 1e30;
  for (int nodes = 32; nodes <= 1024; nodes *= 2) {
    const double bw = pfs.aggregate_bandwidth(bytes, nodes * 6, nodes, IoKind::kWrite);
    EXPECT_LT(bw, prev);
    prev = bw;
  }
}

TEST(PfsModelTest, ReadsFasterThanWrites) {
  auto pfs = PfsModel::summit_gpfs();
  const std::uint64_t bytes = 1ull * kGiB;
  const double w = pfs.effective_bandwidth(bytes, 96, 16, IoKind::kWrite);
  const double r = pfs.effective_bandwidth(bytes, 96, 16, IoKind::kRead);
  EXPECT_GT(r, w);
}

TEST(PfsModelTest, ContentionScalesBandwidth) {
  auto pfs = PfsModel::cori_lustre();
  const std::uint64_t bytes = 8ull * kGiB;
  const double full = pfs.effective_bandwidth(bytes, 128, 4, IoKind::kWrite, 1.0);
  const double half = pfs.effective_bandwidth(bytes, 128, 4, IoKind::kWrite, 0.5);
  EXPECT_NEAR(half, 0.5 * full, 1e-6);
}

TEST(PfsModelTest, IoSecondsIncludesLatencyAndMetadata) {
  PfsParams p;
  p.name = "toy";
  p.node_bandwidth = 1.0 * kGB;
  p.aggregate_cap = 10.0 * kGB;
  p.per_rank_half_size = 0.0;  // no efficiency knee
  p.open_latency = 1.0;
  p.meta_per_rank = 0.5;
  PfsModel pfs(p);
  // 1 GB over 1 node / 2 ranks: 1 (open) + 1 (meta) + 1 (data) = 3 s.
  const double t = pfs.io_seconds(static_cast<std::uint64_t>(1.0 * kGB), 2, 1,
                                  IoKind::kWrite);
  EXPECT_NEAR(t, 3.0, 1e-9);
}

TEST(PfsModelTest, InvalidInputsRejected) {
  auto pfs = PfsModel::summit_gpfs();
  EXPECT_THROW(pfs.io_seconds(1, 0, 1, IoKind::kWrite), InvalidArgumentError);
  EXPECT_THROW(pfs.io_seconds(1, 1, 1, IoKind::kWrite, 0.0), InvalidArgumentError);
  EXPECT_THROW(pfs.io_seconds(1, 1, 1, IoKind::kWrite, 1.5), InvalidArgumentError);
  EXPECT_THROW(PfsModel::cori_lustre(0), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// MemcpyModel — transactional-overhead physics (Sec. III-B1).

TEST(MemcpyModelTest, BandwidthConstantAbove32MiB) {
  auto m = MemcpyModel::summit_dram();
  const int ranks = 6;
  const int nodes = 1;
  const double bw32 = m.aggregate_bandwidth(32ull * kMiB * ranks, ranks, nodes);
  const double bw256 = m.aggregate_bandwidth(256ull * kMiB * ranks, ranks, nodes);
  // Above the knee the achieved bandwidth varies by < 10 %.
  EXPECT_NEAR(bw256 / bw32, 1.0, 0.10);
}

TEST(MemcpyModelTest, SmallCopiesLoseBandwidth) {
  auto m = MemcpyModel::cori_dram();
  const double big = m.aggregate_bandwidth(64ull * kMiB * 32, 32, 1);
  const double small = m.aggregate_bandwidth(64ull * kKiB * 32, 32, 1);
  EXPECT_GT(big, 5.0 * small);
}

TEST(MemcpyModelTest, AggregateBandwidthScalesWithNodes) {
  auto m = MemcpyModel::summit_dram();
  const std::uint64_t per_node = 256ull * kMiB;
  const double bw1 = m.aggregate_bandwidth(per_node * 1, 6, 1);
  const double bw64 = m.aggregate_bandwidth(per_node * 64, 6 * 64, 64);
  EXPECT_NEAR(bw64 / bw1, 64.0, 1.0);
}

TEST(MemcpyModelTest, RejectsBadConfig) {
  EXPECT_THROW(MemcpyModel(0.0, 1.0, 0.0), InvalidArgumentError);
}

}  // namespace
}  // namespace apio::storage
