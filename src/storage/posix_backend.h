// POSIX file backend using positional pread/pwrite, the same primitive
// layer HDF5's sec2 driver uses underneath a parallel file system.
// Vectored transfers go through preadv/pwritev so a whole aggregated
// selection costs one syscall per contiguous file run.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "storage/backend.h"

namespace apio::storage {

namespace detail {

/// A positional-write primitive with pwrite's signature, injectable for
/// tests.  Returns bytes written, or -1 with errno set.
using PwriteFn =
    std::function<long(const std::byte* buf, std::size_t len, std::uint64_t offset)>;

/// Loops `op` until `data` is fully written at `offset`.  EINTR is
/// retried; a negative return throws IoError with `path` in the
/// message.  A return of 0 with bytes remaining is also an error — the
/// write made no progress and looping again would spin forever
/// (regression: the old loop treated 0 as retryable and hung).
void write_fully(const PwriteFn& op, std::uint64_t offset,
                 std::span<const std::byte> data, const std::string& path);

}  // namespace detail

/// File-backed flat object.  pread/pwrite are thread-safe at the kernel
/// level, so concurrent disjoint-range access needs no user-space lock.
class PosixBackend final : public Backend {
 public:
  enum class Mode { kCreateTruncate, kOpenExisting, kOpenOrCreate };

  PosixBackend(const std::string& path, Mode mode);
  ~PosixBackend() override;

  PosixBackend(const PosixBackend&) = delete;
  PosixBackend& operator=(const PosixBackend&) = delete;

  std::uint64_t size() const override;
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  [[nodiscard]] std::uint64_t write_v(
      std::span<const WriteExtent> extents) override;
  [[nodiscard]] std::uint64_t read_v(
      std::span<const ReadExtent> extents) override;
  void flush() override;
  void truncate(std::uint64_t new_size) override;
  std::string name() const override { return "posix:" + path_; }

  const std::string& path() const { return path_; }

  /// Caps the iovec count of one preadv/pwritev call.  Defaults to the
  /// platform IOV_MAX; tests lower it to exercise the splitting path
  /// without building million-extent vectors.
  void set_iov_batch_limit(std::size_t limit);
  std::size_t iov_batch_limit() const { return iov_limit_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::size_t iov_limit_;
};

}  // namespace apio::storage
