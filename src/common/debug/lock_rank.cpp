#include "common/debug/lock_rank.h"

#include <cstdio>
#include <cstdlib>

#include "common/debug/invariant.h"

namespace apio::debug {

const char* lock_rank_name(LockRank rank) {
  switch (rank) {
    case LockRank::kVolConnector: return "vol.connector";
    case LockRank::kVolCache: return "vol.cache";
    case LockRank::kVolEventSet: return "vol.event_set";
    case LockRank::kVolTrace: return "vol.trace";
    case LockRank::kVolStaging: return "vol.staging";
    case LockRank::kPmpiSplit: return "pmpi.split";
    case LockRank::kPmpiCollective: return "pmpi.collective";
    case LockRank::kPmpiBarrier: return "pmpi.barrier";
    case LockRank::kPmpiMailbox: return "pmpi.mailbox";
    case LockRank::kStorageCache: return "storage.cache";
    case LockRank::kResilienceBreaker: return "resilience.breaker";
    case LockRank::kSchedQueue: return "sched.queue";
    case LockRank::kStorageWrapper: return "storage.wrapper";
    case LockRank::kStorageBase: return "storage.base";
    case LockRank::kTaskingPool: return "tasking.pool";
    case LockRank::kTaskingEventual: return "tasking.eventual";
    case LockRank::kCounters: return "counters";
  }
  return "<unknown rank>";
}

[[noreturn]] void invariant_failure(const char* kind, const char* expr,
                                    const char* message,
                                    std::source_location loc) {
  std::fprintf(stderr, "apio fatal: %s failed: %s — %s\n  at %s:%u (%s)\n",
               kind, expr, message, loc.file_name(),
               static_cast<unsigned>(loc.line()), loc.function_name());
  std::fflush(stderr);
  std::abort();
}

namespace detail {
namespace {

/// Per-thread stack of held ranks.  Strict ordering makes the stack
/// monotonically increasing, so the top is also the maximum.
struct HeldRanks {
  static constexpr int kMaxDepth = 32;
  LockRank ranks[kMaxDepth];
  int depth = 0;
};

thread_local HeldRanks t_held;

}  // namespace

void note_acquire(LockRank rank) {
  HeldRanks& held = t_held;
  if (held.depth > 0) {
    const LockRank top = held.ranks[held.depth - 1];
    if (static_cast<int>(rank) <= static_cast<int>(top)) {
      std::fprintf(stderr,
                   "apio fatal: lock-rank violation: acquiring %s (%d) while "
                   "holding %s (%d); locks must be taken in strictly "
                   "increasing rank order (see DESIGN.md, Concurrency model)\n",
                   lock_rank_name(rank), static_cast<int>(rank),
                   lock_rank_name(top), static_cast<int>(top));
      std::fflush(stderr);
      std::abort();
    }
  }
  if (held.depth >= HeldRanks::kMaxDepth) {
    std::fprintf(stderr, "apio fatal: lock-rank stack overflow (depth %d)\n",
                 held.depth);
    std::fflush(stderr);
    std::abort();
  }
  held.ranks[held.depth++] = rank;
}

void note_release(LockRank rank) {
  HeldRanks& held = t_held;
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.ranks[i] == rank) {
      for (int j = i; j + 1 < held.depth; ++j) held.ranks[j] = held.ranks[j + 1];
      --held.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "apio fatal: releasing lock rank %s (%d) this thread does not "
               "hold\n",
               lock_rank_name(rank), static_cast<int>(rank));
  std::fflush(stderr);
  std::abort();
}

bool holds_rank(LockRank rank) {
  const HeldRanks& held = t_held;
  for (int i = 0; i < held.depth; ++i) {
    if (held.ranks[i] == rank) return true;
  }
  return false;
}

}  // namespace detail
}  // namespace apio::debug
