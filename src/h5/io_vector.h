// IoVector: write-coalescing builder for dataset I/O.
//
// The scalar dataset paths issue one backend call per contiguous run of
// a selection — for a strided hyperslab over a chunked dataset that is
// one call per row-fragment per chunk, exactly the request-per-block
// pattern the paper's VPIC-IO workload shows collapsing PFS throughput.
// IoVector instead accumulates every (file offset, memory span) segment
// of one dataset transfer, sorts them by file offset, merges segments
// that are adjacent in BOTH the file and memory, and hands the whole
// list to Backend::write_v/read_v in a single call.  Leaf backends then
// batch remaining file-adjacent extents into one pwritev/preadv each.
//
// A builder is single-transfer, single-thread state: fill it, issue it
// once, drop it (or clear() for reuse).  Write and read segments must
// not be mixed in one builder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "storage/backend.h"

namespace apio::h5 {

class IoVector {
 public:
  /// Appends one gather-write segment.  Empty segments are ignored.
  void add_write(std::uint64_t offset, std::span<const std::byte> data);

  /// Appends one scatter-read segment.  Empty segments are ignored.
  void add_read(std::uint64_t offset, std::span<std::byte> out);

  /// Sorts, merges and issues all write segments as one vectored call.
  /// Increments io.vectored_ops (one per issued call) and
  /// io.extents_merged (segments eliminated by coalescing).
  void write_to(storage::Backend& backend);

  /// Read-side counterpart of write_to.
  void read_from(storage::Backend& backend);

  /// Segments currently held (post-merge after an issue call).
  std::size_t extent_count() const {
    return writes_.empty() ? reads_.size() : writes_.size();
  }

  /// Total payload bytes added so far.
  std::uint64_t bytes() const { return bytes_; }

  /// Segments eliminated by merging so far.
  std::uint64_t extents_merged() const { return merged_; }

  void clear();

 private:
  std::vector<storage::WriteExtent> writes_;
  std::vector<storage::ReadExtent> reads_;
  std::uint64_t bytes_ = 0;
  std::uint64_t merged_ = 0;
};

}  // namespace apio::h5
