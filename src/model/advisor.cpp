#include "model/advisor.h"

#include "common/error.h"

namespace apio::model {

ModeAdvisor::ModeAdvisor(AdvisorOptions options)
    : options_(options),
      sync_estimator_(options.sync_form, options.min_samples),
      async_estimator_(options.async_form, options.min_samples),
      compute_estimator_(options.ewma_alpha) {
  sync_estimator_.set_auto_form(options.auto_select_form);
  async_estimator_.set_auto_form(options.auto_select_form);
}

void ModeAdvisor::on_io(const vol::IoRecord& record) {
  // Prefetch hints and flushes move no caller-timed payload; letting
  // them into the history would pollute the transfer-rate fits.
  if (record.op == vol::IoOp::kPrefetch || record.op == vol::IoOp::kFlush) return;
  // Async reads completed in the background report 0 blocking time and
  // carry no rate information for the caller-visible cost; skip them.
  if (record.blocking_seconds <= 0.0 || record.bytes == 0) return;

  IoSample sample;
  sample.data_size = record.bytes;
  sample.ranks = record.ranks;
  sample.async = record.async;
  sample.op = record.op;
  // For sync transfers the rate is the PFS aggregate rate; for async it
  // is the staging-copy rate, which is exactly what the transactional-
  // overhead estimator must regress (Sec. III-B1).
  sample.io_rate = static_cast<double>(record.bytes) / record.blocking_seconds;
  history_.add(sample);

  std::lock_guard<std::mutex> lock(mutex_);
  dirty_ = true;
}

void ModeAdvisor::record_compute(double seconds) {
  APIO_REQUIRE(seconds >= 0.0, "compute durations must be non-negative");
  std::lock_guard<std::mutex> lock(mutex_);
  compute_estimator_.add_observation(seconds);
  ++compute_observations_;
}

void ModeAdvisor::refit_locked() const {
  if (!dirty_) return;
  // The rate populations: sync transfers (either op) feed the PFS-rate
  // fit; async transfers feed the staging-rate fit.
  std::vector<IoSample> sync_samples;
  std::vector<IoSample> async_samples;
  for (const auto& s : history_.all()) {
    (s.async ? async_samples : sync_samples).push_back(s);
  }
  sync_estimator_.refit(sync_samples);
  async_estimator_.refit(async_samples);
  dirty_ = false;
}

bool ModeAdvisor::sync_ready() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refit_locked();
  return sync_estimator_.ready();
}

bool ModeAdvisor::async_ready() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refit_locked();
  return async_estimator_.ready();
}

bool ModeAdvisor::compute_ready() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compute_estimator_.ready();
}

double ModeAdvisor::estimate_io_seconds(std::uint64_t bytes, int ranks) const {
  std::lock_guard<std::mutex> lock(mutex_);
  refit_locked();
  return sync_estimator_.estimate_seconds(bytes, ranks);
}

double ModeAdvisor::estimate_transact_seconds(std::uint64_t bytes, int ranks) const {
  std::lock_guard<std::mutex> lock(mutex_);
  refit_locked();
  return async_estimator_.estimate_seconds(bytes, ranks);
}

double ModeAdvisor::estimate_compute_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compute_estimator_.estimate_seconds();
}

EpochCosts ModeAdvisor::predict_epoch(std::uint64_t bytes, int ranks) const {
  EpochCosts costs;
  costs.t_io = estimate_io_seconds(bytes, ranks);
  costs.t_transact = estimate_transact_seconds(bytes, ranks);
  costs.t_comp = estimate_compute_seconds();
  return costs;
}

IoMode ModeAdvisor::recommend(std::uint64_t bytes, int ranks) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    refit_locked();
    // Exploration phase: measure sync first (the baseline every
    // comparison needs), then async.
    if (!sync_estimator_.ready() || !compute_estimator_.ready()) {
      return IoMode::kSync;
    }
    if (!async_estimator_.ready()) return IoMode::kAsync;
  }
  const EpochCosts costs = predict_epoch(bytes, ranks);
  return async_is_beneficial(costs) ? IoMode::kAsync : IoMode::kSync;
}

OverlapScenario ModeAdvisor::predict_scenario(std::uint64_t bytes, int ranks) const {
  return classify_overlap(predict_epoch(bytes, ranks));
}

double ModeAdvisor::sync_r_squared() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refit_locked();
  return sync_estimator_.r_squared();
}

double ModeAdvisor::async_r_squared() const {
  std::lock_guard<std::mutex> lock(mutex_);
  refit_locked();
  return async_estimator_.r_squared();
}

std::size_t ModeAdvisor::compute_observations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return compute_observations_;
}

std::string ModeAdvisor::save_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string state = "advisorv1,";
  if (compute_estimator_.ready()) {
    state += std::to_string(compute_estimator_.estimate_seconds());
    state += ',' + std::to_string(compute_observations_);
  } else {
    state += "-,0";
  }
  state += '\n';
  state += history_.to_csv();
  return state;
}

std::shared_ptr<ModeAdvisor> ModeAdvisor::load_state(const std::string& state,
                                                     AdvisorOptions options) {
  const std::size_t newline = state.find('\n');
  if (newline == std::string::npos || state.rfind("advisorv1,", 0) != 0) {
    throw FormatError("not a saved advisor state");
  }
  const std::string header = state.substr(0, newline);
  auto advisor = std::make_shared<ModeAdvisor>(options);

  // Header: advisorv1,<compute estimate or '-'>,<observation count>.
  const std::size_t first = header.find(',');
  const std::size_t second = header.find(',', first + 1);
  if (second == std::string::npos) throw FormatError("malformed advisor header");
  const std::string estimate = header.substr(first + 1, second - first - 1);
  if (estimate != "-") {
    // The EWMA collapses to its last value; seeding with it preserves
    // the estimate (further observations re-weight from there).
    advisor->record_compute(std::atof(estimate.c_str()));
  }

  History restored = History::from_csv(state.substr(newline + 1));
  for (const auto& sample : restored.all()) {
    vol::IoRecord record;
    record.op = sample.op;
    record.bytes = sample.data_size;
    record.ranks = sample.ranks;
    record.blocking_seconds = static_cast<double>(sample.data_size) / sample.io_rate;
    record.completion_seconds = record.blocking_seconds;
    record.async = sample.async;
    advisor->on_io(record);
  }
  return advisor;
}

}  // namespace apio::model
