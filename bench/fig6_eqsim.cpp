// Fig. 6: EQSIM/SW4 checkpoint I/O on Summit under strong scaling
// (grid spacing 50 m over 30000 x 30000 x 17000 m, checkpoint every 100
// steps).  Per-rank data shrinks with scale, so sync bandwidth
// decreases while async stays consistent.
#include "bench/bench_util.h"
#include "workloads/eqsim.h"

int main() {
  using namespace apio;
  const auto spec = sim::SystemSpec::summit();
  sim::EpochSimulator simulator(spec);
  model::ModeAdvisor advisor;
  workloads::EqsimParams params;  // 600 x 600 x 340 points, 6 components

  bench::banner("Fig. 6 (" + spec.name + "): EQSIM checkpoints, strong scaling",
                "grid size 50 => 600x600x340 points, 6 components, "
                "checkpoint every 100 steps");

  std::vector<bench::SweepPoint> points;
  for (int nodes : {64, 128, 256, 512, 1024}) {
    auto sync_cfg =
        workloads::EqsimProxy::sim_config(spec, nodes, model::IoMode::kSync, params);
    auto async_cfg =
        workloads::EqsimProxy::sim_config(spec, nodes, model::IoMode::kAsync, params);
    sync_cfg.contention_sigma_override = 0.0;
    async_cfg.contention_sigma_override = 0.0;
    bench::SweepPoint p;
    p.nodes = nodes;
    p.bytes = sync_cfg.bytes_per_epoch;
    p.sync_bw = bench::run_point(simulator, sync_cfg, &advisor);
    p.async_bw = bench::run_point(simulator, async_cfg, &advisor);
    points.push_back(p);
  }

  bench::print_sweep(advisor, spec, points);
  return 0;
}
