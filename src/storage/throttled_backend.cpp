#include "storage/throttled_backend.h"

#include <chrono>
#include <thread>

#include "common/debug/invariant.h"
#include "common/error.h"
#include "obs/trace_context.h"

namespace apio::storage {
namespace {

double steady_now() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

void sleep_seconds(double s) {
  if (s <= 0.0) return;
  // Deliberate: the throttle models PFS latency by blocking the calling
  // thread, exactly as a congested parallel file system does.
  std::this_thread::sleep_for(  // apio-lint: allow(thread-context)
      std::chrono::duration<double>(s));
}

}  // namespace

ThrottledBackend::ThrottledBackend(BackendPtr inner, ThrottleParams params)
    : inner_(std::move(inner)), params_(params) {
  APIO_REQUIRE(inner_ != nullptr, "ThrottledBackend requires an inner backend");
  APIO_REQUIRE(params_.bandwidth > 0, "throttle bandwidth must be positive");
  APIO_REQUIRE(params_.time_scale >= 0, "time_scale must be >= 0");
}

void ThrottledBackend::throttle(std::uint64_t bytes) {
  const double delay = params_.latency + static_cast<double>(bytes) / params_.bandwidth;
  if (params_.shared_channel) {
    // Reserve a slot on the shared channel: operations queue behind each
    // other just as concurrent clients of one PFS allocation do.
    double wait = 0.0;
    {
      std::lock_guard lock(channel_mutex_);
      const double now = steady_now();
      const double start = std::max(now, channel_free_at_);
      channel_free_at_ = start + delay * params_.time_scale;
      modelled_delay_ += delay;
      wait = channel_free_at_ - now;
      // The shared channel only ever books time forward; a regression
      // here would let concurrent ops overlap their budgeted slots.
      APIO_INVARIANT(wait >= 0.0, "shared-channel reservation moved backwards");
    }
    sleep_seconds(wait);
  } else {
    {
      std::lock_guard lock(channel_mutex_);
      modelled_delay_ += delay;
    }
    sleep_seconds(delay * params_.time_scale);
  }
}

void ThrottledBackend::read(std::uint64_t offset, std::span<std::byte> out) {
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, out.size(),
                               "throttled");
  throttle(out.size());
  inner_->read(offset, out);
  count_read(out.size());
}

void ThrottledBackend::write(std::uint64_t offset, std::span<const std::byte> data) {
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, data.size(),
                               "throttled");
  throttle(data.size());
  inner_->write(offset, data);
  count_write(data.size());
}

std::uint64_t ThrottledBackend::write_v(std::span<const WriteExtent> extents) {
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.data.size();
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, total, "throttled");
  throttle(total);
  const std::uint64_t moved = inner_->write_v(extents);
  count_write(moved);
  return moved;
}

std::uint64_t ThrottledBackend::read_v(std::span<const ReadExtent> extents) {
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.out.size();
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, total, "throttled");
  throttle(total);
  const std::uint64_t moved = inner_->read_v(extents);
  count_read(moved);
  return moved;
}

void ThrottledBackend::flush() {
  inner_->flush();
  count_flush();
}

double ThrottledBackend::modelled_delay_seconds() const {
  std::lock_guard lock(channel_mutex_);
  return modelled_delay_;
}

}  // namespace apio::storage
