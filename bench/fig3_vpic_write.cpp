// Fig. 3a/3b: VPIC-IO write, weak scaling, sync vs async aggregate
// bandwidth on Summit (GPFS) and Cori-Haswell (Lustre), with the
// model's estimate (the paper's dotted line) fitted from the observed
// history via the Fig. 2 feedback loop.
//
// Expected shape (paper): sync saturates at ~768 ranks / 128 nodes on
// Summit and ~1024 ranks / 32 nodes on Cori; async scales linearly with
// node count because only the node-local staging copy blocks.
#include "bench/bench_util.h"
#include "workloads/vpic_io.h"

namespace apio {
namespace {

void run_system(const sim::SystemSpec& spec, const std::vector<int>& node_counts,
                const std::string& tag, std::vector<bench::BenchValue>& values) {
  sim::EpochSimulator simulator(spec);
  model::ModeAdvisor advisor;

  bench::banner("Fig. 3 (" + spec.name + "): VPIC-IO write, weak scaling",
                "32 MB per property per rank, 8 properties, " +
                    std::to_string(spec.ranks_per_node) + " ranks/node, 5 steps");

  // First pass: execute the sweep and feed the advisor's history.
  std::vector<bench::SweepPoint> points;
  for (int nodes : node_counts) {
    auto sync_cfg = workloads::VpicIoKernel::sim_config(spec, nodes, model::IoMode::kSync);
    auto async_cfg =
        workloads::VpicIoKernel::sim_config(spec, nodes, model::IoMode::kAsync);
    sync_cfg.contention_sigma_override = 0.0;
    async_cfg.contention_sigma_override = 0.0;
    bench::SweepPoint p;
    p.nodes = nodes;
    p.bytes = sync_cfg.bytes_per_epoch;
    p.sync_bw = bench::run_point(simulator, sync_cfg, &advisor);
    p.async_bw = bench::run_point(simulator, async_cfg, &advisor);
    points.push_back(p);

    // Headline values for the regression gate: the simulator sweep is
    // deterministic (fixed seed, contention sigma zeroed), so these
    // compare under the tight "det" tolerance.
    const std::string point_tag = tag + ".nodes" + std::to_string(nodes);
    values.push_back({point_tag + ".sync_bw", p.sync_bw, "B/s", "det"});
    values.push_back({point_tag + ".async_bw", p.async_bw, "B/s", "det"});
  }

  // Second pass: print measurements next to the fitted estimates.
  bench::print_sweep(advisor, spec, points);
}

}  // namespace
}  // namespace apio

int main() {
  std::vector<apio::bench::BenchValue> values;
  apio::run_system(apio::sim::SystemSpec::summit(),
                   {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}, "summit",
                   values);
  apio::run_system(apio::sim::SystemSpec::cori_haswell(),
                   {1, 2, 4, 8, 16, 32, 64, 128, 256}, "cori", values);
  return apio::bench::record_bench_metrics("fig3_vpic_write", "weak-scaling",
                                           values);
}
