// apio-dump: prints the values of one dataset of an apio-h5 container,
// in the spirit of h5dump.  Output is bounded (first N elements) so it
// is safe on large checkpoints.
//
// Usage: apio_dump <container.h5> <dataset-path> [max-elements]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/error.h"
#include "h5/file.h"

namespace {

template <typename T>
void dump_typed(apio::h5::Dataset ds, std::uint64_t limit) {
  using namespace apio::h5;
  const std::uint64_t total = ds.npoints();
  const std::uint64_t n = std::min(total, limit);
  if (n == 0) {
    std::printf("  (empty)\n");
    return;
  }
  // Read a prefix: flatten to the first n elements in row-major order.
  Dims start(ds.dims().size(), 0);
  Dims count = ds.dims();
  // Reduce the outermost dimension so that the selection holds >= n
  // elements, then trim while printing.
  std::uint64_t inner = 1;
  for (std::size_t i = 1; i < count.size(); ++i) inner *= count[i];
  if (!count.empty() && inner > 0) {
    count[0] = std::min<std::uint64_t>(count[0], (n + inner - 1) / inner);
  }
  auto values = ds.read_vector<T>(Selection::offsets(start, count));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (i % 8 == 0) std::printf("  [%8llu] ", static_cast<unsigned long long>(i));
    std::printf("%g ", static_cast<double>(values[i]));
    if (i % 8 == 7) std::printf("\n");
  }
  if (n % 8 != 0) std::printf("\n");
  if (n < total) {
    std::printf("  ... (%llu of %llu elements shown)\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(total));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr, "usage: %s <container.h5> <dataset-path> [max-elements]\n",
                 argv[0]);
    return 2;
  }
  const std::uint64_t limit =
      argc == 4 ? std::strtoull(argv[3], nullptr, 10) : 64;
  try {
    auto file = apio::h5::open_file(argv[1]);
    auto ds = file->dataset_at(argv[2]);
    std::printf("%s: %s, %llu elements\n", argv[2],
                apio::h5::datatype_name(ds.dtype()).c_str(),
                static_cast<unsigned long long>(ds.npoints()));
    switch (ds.dtype()) {
      case apio::h5::Datatype::kInt8: dump_typed<std::int8_t>(ds, limit); break;
      case apio::h5::Datatype::kUInt8: dump_typed<std::uint8_t>(ds, limit); break;
      case apio::h5::Datatype::kInt16: dump_typed<std::int16_t>(ds, limit); break;
      case apio::h5::Datatype::kUInt16: dump_typed<std::uint16_t>(ds, limit); break;
      case apio::h5::Datatype::kInt32: dump_typed<std::int32_t>(ds, limit); break;
      case apio::h5::Datatype::kUInt32: dump_typed<std::uint32_t>(ds, limit); break;
      case apio::h5::Datatype::kInt64: dump_typed<std::int64_t>(ds, limit); break;
      case apio::h5::Datatype::kUInt64: dump_typed<std::uint64_t>(ds, limit); break;
      case apio::h5::Datatype::kFloat32: dump_typed<float>(ds, limit); break;
      case apio::h5::Datatype::kFloat64: dump_typed<double>(ds, limit); break;
    }
  } catch (const apio::Error& e) {
    std::fprintf(stderr, "apio_dump: %s\n", e.what());
    return 1;
  }
  return 0;
}
