#include "workloads/multi_job.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "common/error.h"
#include "h5/file.h"
#include "storage/backend_stack.h"
#include "storage/memory_backend.h"
#include "vol/async_connector.h"
#include "workloads/workload_common.h"

namespace apio::workloads {
namespace {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

std::byte pattern_byte(const std::string& name, int step, std::uint64_t i) {
  return static_cast<std::byte>((name.size() * 37 +
                                 static_cast<std::uint64_t>(step) * 131 + i) &
                                0xff);
}

/// One rank of a tenant: steps `rank, rank + ranks, ...` of (compute,
/// async op) over its own connector, then a full drain.
void run_rank(const h5::FilePtr& file, h5::Dataset ds, const TenantSpec& spec,
              int rank) {
  vol::AsyncOptions options;
  options.tenant = spec.name;
  vol::AsyncConnector conn(file, options);
  std::vector<std::byte> chunk(spec.bytes_per_step);
  // Read targets stay alive (and untouched) until the drain; the inner
  // buffers never move when the outer vector grows.
  std::vector<std::vector<std::byte>> read_buffers;
  if (spec.kind == TenantSpec::Kind::kBdcats) {
    read_buffers.reserve(static_cast<std::size_t>(spec.steps));
  }
  for (int step = rank; step < spec.steps; step += spec.ranks) {
    simulated_compute(spec.compute_seconds);
    const auto selection = h5::Selection::offsets(
        {static_cast<std::uint64_t>(step) * spec.bytes_per_step},
        {spec.bytes_per_step});
    switch (spec.kind) {
      case TenantSpec::Kind::kCheckpoint:
      case TenantSpec::Kind::kVpic:
        for (std::uint64_t i = 0; i < spec.bytes_per_step; ++i) {
          chunk[i] = pattern_byte(spec.name, step, i);
        }
        conn.dataset_write(ds, selection, chunk);
        // Checkpoint semantics: the step is durable only after a flush;
        // the flush rides the priority lane through the scheduler.
        if (spec.kind == TenantSpec::Kind::kCheckpoint) conn.flush();
        break;
      case TenantSpec::Kind::kBdcats:
        read_buffers.emplace_back(spec.bytes_per_step);
        conn.dataset_read(ds, selection, read_buffers.back());
        break;
    }
  }
  conn.wait_all();
  // ~AsyncConnector drains and joins the stream but leaves the shared
  // file open for the other ranks and tenants.
}

/// One tenant: its ranks issue concurrently; the tenant has drained
/// once every rank has.  Runs on a dedicated thread per tenant.
void run_tenant(const h5::FilePtr& file, h5::Dataset ds,
                const TenantSpec& spec) {
  std::vector<std::thread> ranks;
  ranks.reserve(static_cast<std::size_t>(spec.ranks));
  for (int rank = 0; rank < spec.ranks; ++rank) {
    ranks.emplace_back([&, rank] { run_rank(file, ds, spec, rank); });
  }
  for (std::thread& thread : ranks) thread.join();
}

}  // namespace

MultiJobParams MultiJobParams::reference() {
  MultiJobParams params;
  params.pfs_bandwidth = 64.0 * kMiB;
  params.pfs_latency = 1e-3;
  params.time_scale = 1.0;
  params.max_inflight = 1;
  // Equal work per tenant: the weight-4 tenant drains first, and the
  // share snapshot lands while the others are still backlogged.  Four
  // ranks per tenant keep each tenant's scheduler queue several deep,
  // which is what the weighted max-min bound is defined over.
  const int steps = 48;
  const int ranks = 4;
  const std::uint64_t bytes = 64 * kKiB;
  TenantSpec checkpoint;
  checkpoint.name = "checkpoint";
  checkpoint.weight = 1.0;
  checkpoint.kind = TenantSpec::Kind::kCheckpoint;
  checkpoint.steps = steps;
  checkpoint.bytes_per_step = bytes;
  checkpoint.ranks = ranks;
  TenantSpec vpic;
  vpic.name = "vpic";
  vpic.weight = 2.0;
  vpic.kind = TenantSpec::Kind::kVpic;
  vpic.steps = steps;
  vpic.bytes_per_step = bytes;
  vpic.ranks = ranks;
  TenantSpec bdcats;
  bdcats.name = "bdcats";
  bdcats.weight = 4.0;
  bdcats.kind = TenantSpec::Kind::kBdcats;
  bdcats.steps = steps;
  bdcats.bytes_per_step = bytes;
  bdcats.ranks = ranks;
  params.tenants = {checkpoint, vpic, bdcats};
  return params;
}

MultiJobResult run_multi_job(const MultiJobParams& params) {
  APIO_REQUIRE(!params.tenants.empty(), "multi_job needs at least one tenant");
  double weight_sum = 0.0;
  for (const TenantSpec& spec : params.tenants) {
    APIO_REQUIRE(!spec.name.empty(), "tenant name must be non-empty");
    APIO_REQUIRE(spec.weight > 0.0, "tenant weight must be positive");
    APIO_REQUIRE(spec.steps > 0 && spec.bytes_per_step > 0,
                 "tenant work must be non-empty");
    APIO_REQUIRE(spec.ranks > 0, "tenant needs at least one rank");
    weight_sum += spec.weight;
  }

  // Pre-populate the container through the bare leaf: dataset creation
  // and the BD-CATS input data are setup, not measured contention.
  auto leaf = std::make_shared<storage::MemoryBackend>();
  {
    auto setup = h5::File::create(leaf);
    auto jobs = setup->root().create_group("jobs");
    for (const TenantSpec& spec : params.tenants) {
      auto ds = jobs.create_dataset(
          spec.name, h5::Datatype::kUInt8,
          {spec.bytes_per_step * static_cast<std::uint64_t>(spec.steps)});
      if (spec.kind == TenantSpec::Kind::kBdcats) {
        std::vector<std::byte> seed(spec.bytes_per_step *
                                    static_cast<std::uint64_t>(spec.steps));
        for (std::uint64_t i = 0; i < seed.size(); ++i) {
          seed[i] = pattern_byte(spec.name, 0, i);
        }
        ds.write_raw(h5::Selection::all(), seed);
      }
    }
    setup->close();
  }

  auto scheduler = std::make_shared<sched::FairScheduler>(
      sched::SchedOptions{params.max_inflight});
  for (const TenantSpec& spec : params.tenants) {
    scheduler->register_tenant(spec.name, spec.weight);
  }

  storage::ThrottleParams throttle;
  throttle.bandwidth = params.pfs_bandwidth;
  throttle.latency = params.pfs_latency;
  throttle.time_scale = params.time_scale;
  auto file = h5::File::open(storage::BackendStack::wrap(leaf)
                                 .throttled(throttle)
                                 .qos(scheduler)
                                 .build());

  // Resolve dataset handles on this thread; handles are plain values
  // the tenant threads then use without touching the metadata index.
  std::vector<h5::Dataset> datasets;
  datasets.reserve(params.tenants.size());
  for (const TenantSpec& spec : params.tenants) {
    datasets.push_back(file->dataset_at("/jobs/" + spec.name));
  }

  // Shares are sampled the moment the FIRST tenant drains: up to that
  // point every tenant is backlogged, so the split is the scheduler's
  // doing, not an artifact of who was given how much total work.
  std::once_flag first_drain;
  sched::SchedStats contended;
  WallClock wall;
  const double t0 = wall.now();
  std::vector<std::thread> threads;
  threads.reserve(params.tenants.size());
  for (std::size_t i = 0; i < params.tenants.size(); ++i) {
    threads.emplace_back([&, i] {
      run_tenant(file, datasets[i], params.tenants[i]);
      std::call_once(first_drain, [&] { contended = scheduler->stats(); });
    });
  }
  for (std::thread& thread : threads) thread.join();

  MultiJobResult result;
  result.elapsed_seconds = wall.now() - t0;
  result.final_stats = scheduler->stats();
  const int bulk = static_cast<int>(sched::Lane::kBulk);
  const int prio = static_cast<int>(sched::Lane::kPriority);
  std::uint64_t total_bulk_bytes = 0;
  for (const TenantSpec& spec : params.tenants) {
    result.total_dispatched_bytes += contended.tenants[spec.name].dispatched_bytes;
    total_bulk_bytes += contended.tenants[spec.name].lane_bytes[bulk];
  }
  for (const TenantSpec& spec : params.tenants) {
    const sched::TenantStats& mid = contended.tenants[spec.name];
    const sched::TenantStats& fin = result.final_stats.tenants[spec.name];
    TenantResult row;
    row.name = spec.name;
    row.weight = spec.weight;
    row.dispatched_bytes = mid.dispatched_bytes;
    row.bulk_bytes = mid.lane_bytes[bulk];
    row.priority_bytes = mid.lane_bytes[prio];
    row.share = total_bulk_bytes > 0
                    ? static_cast<double>(row.bulk_bytes) /
                          static_cast<double>(total_bulk_bytes)
                    : 0.0;
    row.fair_share = spec.weight / weight_sum;
    row.priority_p99_wait = percentile(
        fin.wait_samples[static_cast<int>(sched::Lane::kPriority)], 0.99);
    row.bulk_p99_wait = percentile(
        fin.wait_samples[static_cast<int>(sched::Lane::kBulk)], 0.99);
    row.priority_ops = fin.priority_ops;
    row.deadline_misses = fin.deadline_misses;
    result.tenants.push_back(std::move(row));
  }
  return result;
}

double MultiJobResult::max_share_error() const {
  double worst = 0.0;
  for (const TenantResult& t : tenants) {
    if (t.fair_share <= 0.0) continue;
    worst = std::max(worst, std::abs(t.share - t.fair_share) / t.fair_share);
  }
  return worst;
}

double MultiJobResult::priority_p99_wait() const {
  double worst = 0.0;
  for (const TenantResult& t : tenants) {
    if (t.priority_ops > 0) worst = std::max(worst, t.priority_p99_wait);
  }
  return worst;
}

std::string MultiJobResult::table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line,
                "  %12s | %6s | %10s | %10s | %7s | %7s | %12s\n", "tenant",
                "weight", "bulk B", "prio B", "share", "fair", "prio p99");
  out += line;
  for (const TenantResult& t : tenants) {
    std::snprintf(line, sizeof line,
                  "  %12s | %6.1f | %10llu | %10llu | %6.1f%% | %6.1f%% | "
                  "%9.2f ms\n",
                  t.name.c_str(), t.weight,
                  static_cast<unsigned long long>(t.bulk_bytes),
                  static_cast<unsigned long long>(t.priority_bytes),
                  100.0 * t.share, 100.0 * t.fair_share,
                  1e3 * t.priority_p99_wait);
    out += line;
  }
  return out;
}

}  // namespace apio::workloads
