#include "h5/timeseries.h"

#include "common/error.h"

namespace apio::h5 {
namespace {

constexpr const char* kFramesAttr = "apio:timeseries_frames";

Dims series_dims(const Dims& frame_dims, std::uint64_t frames) {
  Dims dims;
  dims.reserve(frame_dims.size() + 1);
  dims.push_back(frames);
  dims.insert(dims.end(), frame_dims.begin(), frame_dims.end());
  return dims;
}

}  // namespace

TimeSeriesWriter::TimeSeriesWriter(Group parent, const std::string& name,
                                   Datatype dtype, Dims frame_dims, FilterId filter,
                                   std::uint64_t frames_per_chunk)
    : frame_dims_(frame_dims) {
  APIO_REQUIRE(frames_per_chunk >= 1, "frames_per_chunk must be >= 1");
  frame_elements_ = num_elements(frame_dims_);
  APIO_REQUIRE(frame_elements_ >= 1, "frames must hold at least one element");
  Dims chunk = series_dims(frame_dims_, frames_per_chunk);
  dataset_ = parent.create_dataset(name, dtype, series_dims(frame_dims_, 0),
                                   DatasetCreateProps::chunked(std::move(chunk), filter));
  dataset_.set_attribute<std::uint64_t>(kFramesAttr, 0);
}

TimeSeriesWriter::TimeSeriesWriter(Dataset dataset, Dims frame_dims,
                                   std::uint64_t frames)
    : dataset_(dataset), frame_dims_(std::move(frame_dims)), frames_(frames) {
  frame_elements_ = num_elements(frame_dims_);
}

TimeSeriesWriter TimeSeriesWriter::open(Group parent, const std::string& name) {
  Dataset dataset = parent.open_dataset(name);
  APIO_REQUIRE(dataset.layout() == Layout::kChunked,
               "'" + name + "' is not an extendable time series");
  if (!dataset.has_attribute(kFramesAttr)) {
    throw InvalidArgumentError("'" + name + "' was not created as a time series");
  }
  const std::uint64_t frames = dataset.attribute<std::uint64_t>(kFramesAttr);
  const Dims& dims = dataset.dims();
  APIO_REQUIRE(!dims.empty() && dims[0] == frames,
               "time series extent is inconsistent with its frame counter");
  Dims frame_dims(dims.begin() + 1, dims.end());
  return TimeSeriesWriter(dataset, std::move(frame_dims), frames);
}

Selection TimeSeriesWriter::frame_selection(std::uint64_t index) const {
  Dims start(frame_dims_.size() + 1, 0);
  start[0] = index;
  Dims count = series_dims(frame_dims_, 1);
  return Selection::offsets(std::move(start), std::move(count));
}

std::uint64_t TimeSeriesWriter::append_raw(std::span<const std::byte> frame) {
  APIO_REQUIRE(frame.size() == frame_bytes(),
               "frame size mismatch: got " + std::to_string(frame.size()) +
                   " bytes, frames hold " + std::to_string(frame_bytes()));
  const std::uint64_t index = frames_;
  dataset_.set_extent(series_dims(frame_dims_, frames_ + 1));
  dataset_.write_raw(frame_selection(index), frame);
  ++frames_;
  dataset_.set_attribute<std::uint64_t>(kFramesAttr, frames_);
  return index;
}

void TimeSeriesWriter::read_frame_raw(std::uint64_t index,
                                      std::span<std::byte> out) const {
  APIO_REQUIRE(index < frames_, "frame index out of range");
  dataset_.read_raw(frame_selection(index), out);
}

}  // namespace apio::h5
