// Per-backend circuit breaker: stops hammering a storage target that is
// failing consistently, the standard production pattern for shared PFS
// deployments where a sick OST punishes every rank that keeps retrying
// against it.
//
// States (exported through the obs gauge `io.breaker_state`):
//   kClosed   (0)  normal operation; consecutive failures are counted.
//   kOpen     (1)  tripped: allow() rejects until `open_seconds` of the
//                  injected clock have elapsed.
//   kHalfOpen (2)  cooldown elapsed: probe operations are allowed; the
//                  first success closes the breaker, the first failure
//                  re-trips it (and restarts the cooldown).
//
// The half-open state is permissive — every caller that observes it may
// probe, not just one.  With the single background execution stream of
// the async VOL that is at most one probe in flight anyway, and it
// keeps the breaker free of probe-ownership bookkeeping.
//
// Time comes from an injected apio::Clock so tests (and the virtual-
// time bench harness) drive cooldowns deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/debug/lock_rank.h"
#include "common/error.h"

namespace apio::resilience {

enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* to_string(BreakerState state);

/// Thrown by the retry machinery when the breaker rejects an attempt.
/// Derives TransientIoError: an open breaker is by definition a
/// condition that clears with time, so policies retry through it.
class BreakerOpenError : public TransientIoError {
 public:
  using TransientIoError::TransientIoError;
};

struct BreakerOptions {
  /// Consecutive failures that trip the breaker; <= 0 disables tripping
  /// (the breaker then only counts).
  int failure_threshold = 5;
  /// Cooldown before an open breaker admits a half-open probe, in
  /// seconds on the injected clock.
  double open_seconds = 1.0;
};

class CircuitBreaker {
 public:
  /// `clock` defaults to the wall clock; tests inject a manual clock so
  /// cooldown expiry is deterministic.  `name` labels diagnostics.
  explicit CircuitBreaker(BreakerOptions options, const Clock* clock = nullptr,
                          std::string name = "");

  /// True when an attempt may proceed.  An open breaker whose cooldown
  /// has elapsed transitions to half-open and admits the caller.
  bool allow();

  /// Records a successful attempt: resets the failure run and closes.
  void on_success();

  /// Records a failed attempt: trips from closed once the threshold of
  /// consecutive failures is reached, and re-trips from half-open
  /// immediately (a failed probe restarts the cooldown).
  void on_failure();

  BreakerState state() const;

  /// Times the breaker has transitioned into kOpen.
  std::uint64_t trips() const;

  /// Current run of consecutive failures.
  int consecutive_failures() const;

  const std::string& name() const { return name_; }
  const BreakerOptions& options() const { return options_; }

 private:
  mutable debug::RankedMutex<debug::LockRank::kResilienceBreaker> mutex_;
  BreakerOptions options_;
  WallClock wall_clock_;
  const Clock* clock_;
  std::string name_;

  BreakerState state_ = BreakerState::kClosed;
  int failures_ = 0;
  double opened_at_ = 0.0;
  std::uint64_t trips_ = 0;

  void transition_locked(BreakerState next);
};

using CircuitBreakerPtr = std::shared_ptr<CircuitBreaker>;

}  // namespace apio::resilience
