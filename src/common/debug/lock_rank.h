// Lock-rank checking: a process-wide total order on every mutex in the
// concurrent substrate, enforced at runtime.
//
// Deadlocks need a cycle in the lock-acquisition graph.  apio forbids
// cycles structurally: every mutex carries a LockRank, and a thread may
// only acquire a mutex whose rank is strictly greater than the highest
// rank it already holds.  Violations abort immediately with both ranks
// named — a deterministic failure on the *first* out-of-order
// acquisition, rather than a probabilistic deadlock under load.
//
// The rank order follows the call direction of the system: VOL
// connectors (outermost, application-facing) call into pmpi and
// storage, which call into tasking primitives; per-object counters are
// leaves.  See DESIGN.md "Concurrency model" for the full table.
//
// Checking is thread-local (no shared state, no extra synchronisation)
// and compiles out entirely when APIO_DEBUG_CHECKS is not defined.
#pragma once

#include <mutex>

namespace apio::debug {

/// Global acquisition order: a thread holding a lock of rank R may only
/// acquire locks of rank strictly greater than R.  Gaps are deliberate
/// so new ranks can slot in without renumbering.
enum class LockRank : int {
  // -- VOL layer (outermost: entered from application threads) --------
  kVolConnector = 10,   ///< AsyncConnector FIFO-order mutex
  kVolCache = 14,       ///< AsyncConnector prefetch cache
  kVolEventSet = 18,    ///< EventSet request/error lists
  kVolTrace = 22,       ///< TraceRecorder event list
  kVolStaging = 26,     ///< AsyncConnector back-pressure gate
  // -- pmpi (rank threads; collectives never nest their locks) --------
  kPmpiSplit = 30,      ///< World split() rendezvous map
  kPmpiCollective = 34, ///< World collective exchange slots
  kPmpiBarrier = 38,    ///< World sense-reversing barrier
  kPmpiMailbox = 42,    ///< per-rank point-to-point mailbox
  // -- storage cache (outermost storage decorator; the drain mutex is
  //    held across the inner flush transfer, so it ranks below every
  //    lock the inner stack may take) --------------------------------
  kStorageCache = 43,   ///< CachedBackend drain/flush serialisation
  // -- resilience (breaker consulted by storage wrappers and the vol
  //    background stream; never held across an inner transfer) --------
  kResilienceBreaker = 44, ///< CircuitBreaker state
  // -- sched (QoS admission queues; released across the granted
  //    transfer, so never held while a storage lock is taken) ---------
  kSchedQueue = 45,     ///< FairScheduler tenant queues + channel state
  // -- storage backends (wrappers delegate inward) --------------------
  kStorageWrapper = 46, ///< throttled/faulty interposer state
  kStorageBase = 50,    ///< memory backend byte store
  // -- tasking primitives (innermost locks of the substrate) ----------
  kTaskingPool = 54,    ///< Pool FIFO queue
  kTaskingEventual = 58,///< Eventual completion state
  // -- leaf counters (never held across any call) ---------------------
  kCounters = 62,       ///< stats snapshots (AsyncStats, interposers)
};

/// Human-readable rank name for diagnostics.
const char* lock_rank_name(LockRank rank);

namespace detail {

/// Aborts if acquiring `rank` would violate the order; records it as
/// held.  Called before blocking on the underlying mutex so an actual
/// inversion aborts instead of deadlocking.
void note_acquire(LockRank rank);

/// Records `rank` as released.  Releases may be out of LIFO order
/// (std::unique_lock allows it); the newest held instance is dropped.
void note_release(LockRank rank);

/// True when the calling thread currently holds a lock of `rank`
/// (test hook; always false when checking is compiled out).
bool holds_rank(LockRank rank);

}  // namespace detail

/// Drop-in std::mutex replacement carrying a compile-time rank.
/// Satisfies Lockable, so std::lock_guard, std::unique_lock and
/// std::condition_variable_any work unchanged.  When APIO_DEBUG_CHECKS
/// is off this is exactly a std::mutex.
template <LockRank Rank>
class RankedMutex {
 public:
  RankedMutex() = default;
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() {
#if defined(APIO_DEBUG_CHECKS)
    detail::note_acquire(Rank);
#endif
    mutex_.lock();
  }

  bool try_lock() {
    if (mutex_.try_lock()) {
#if defined(APIO_DEBUG_CHECKS)
      detail::note_acquire(Rank);
#endif
      return true;
    }
    return false;
  }

  void unlock() {
    mutex_.unlock();
#if defined(APIO_DEBUG_CHECKS)
    detail::note_release(Rank);
#endif
  }

  static constexpr LockRank rank() { return Rank; }

 private:
  std::mutex mutex_;
};

}  // namespace apio::debug
