#include "analysis/call_graph.h"

#include <algorithm>
#include <cctype>

namespace fs = std::filesystem;

namespace apio::analysis {
namespace {

/// Keywords that look like `name(...)` but are never calls or
/// function definitions.
bool is_excluded_keyword(const std::string& s) {
  static const std::set<std::string> kSet = {
      "if",       "for",       "while",     "switch",       "catch",
      "return",   "sizeof",    "alignof",   "alignas",      "decltype",
      "noexcept", "throw",     "new",       "delete",       "static_assert",
      "typeid",   "co_await",  "co_return", "co_yield",     "requires",
      "assert",   "defined",   "do",        "else",         "case",
      "auto",     "const",     "constexpr", "static",       "inline",
      "virtual",  "explicit",  "operator",  "typename",     "this"};
  return kSet.count(s) > 0;
}

bool is_lock_decl_type(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

bool is_lock_tag(const std::string& s) {
  return s == "defer_lock" || s == "adopt_lock" || s == "try_to_lock";
}

bool looks_like_rank_name(const std::string& s) {
  return s.size() >= 2 && s[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(s[1]));
}

/// Per-file extraction walker.
class Extractor {
 public:
  Extractor(const SourceFile& file, CodeModel& model)
      : file_(file), model_(model), toks_(tokenize(file)) {}

  void run();

 private:
  struct Scope {
    enum class Kind { kNamespace, kClass, kEnum, kFunction, kBlock };
    Kind kind;
    std::string name;
    long func = -1;  ///< index into model_.functions for kFunction
    bool is_lambda = false;
  };
  struct Hold {
    std::string rank;
    std::size_t depth;     ///< scope stack size at acquisition
    std::string lock_var;  ///< unique_lock variable (or mutex) name
  };

  const SourceFile& file_;
  CodeModel& model_;
  std::vector<Token> toks_;
  std::vector<Scope> scopes_;
  std::vector<Hold> holds_;
  /// Class-local `using X = RankedMutex<...>` aliases: (class, alias) -> rank.
  std::map<std::pair<std::string, std::string>, std::string> mutex_aliases_;
  /// Locals/params of the current function whose type names a class.
  std::map<std::string, std::string> local_types_;
  /// Most recent known-class type name seen in the current statement.
  std::string last_type_;

  std::size_t n() const { return toks_.size(); }
  bool is(std::size_t i, std::string_view s) const {
    return i < n() && toks_[i].text == s;
  }
  bool ident(std::size_t i) const { return i < n() && toks_[i].is_ident(); }

  long cur_func() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return it->func;
    }
    return -1;
  }
  std::string cur_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
    }
    return "";
  }
  bool at_decl_scope() const {
    if (scopes_.empty()) return true;
    const auto k = scopes_.back().kind;
    return k == Scope::Kind::kNamespace || k == Scope::Kind::kClass;
  }
  bool in_class_body() const {
    return !scopes_.empty() && scopes_.back().kind == Scope::Kind::kClass;
  }

  /// Ranks held at the current point.  Holds acquired outside the
  /// innermost enclosing lambda are excluded: the lambda body runs
  /// later, not under the lock it was built beneath.
  std::vector<std::string> held_ranks() const {
    std::size_t floor = 0;  // holds with depth <= floor are not held here
    for (std::size_t s = scopes_.size(); s-- > 0;) {
      if (scopes_[s].is_lambda) {
        floor = s + 1;
        break;
      }
    }
    std::vector<std::string> out;
    for (const auto& h : holds_) {
      if (h.depth <= floor) continue;
      if (std::find(out.begin(), out.end(), h.rank) == out.end()) {
        out.push_back(h.rank);
      }
    }
    return out;
  }

  void pop_scope() {
    if (scopes_.empty()) return;
    const std::size_t depth = scopes_.size();
    holds_.erase(std::remove_if(holds_.begin(), holds_.end(),
                                [&](const Hold& h) { return h.depth >= depth; }),
                 holds_.end());
    scopes_.pop_back();
  }

  /// Index just past the matching close for the open bracket at `i`
  /// (one of ( [ {).  Returns n() when unbalanced.
  std::size_t skip_group(std::size_t i) const;
  /// Index just past a balanced <...> starting at `i`; n() on failure
  /// (not a plausible template argument list).
  std::size_t skip_angles(std::size_t i) const;
  /// Index just past the terminating `;`, skipping balanced groups.
  std::size_t skip_statement(std::size_t i) const;

  std::size_t handle_namespace(std::size_t i);
  std::size_t handle_class(std::size_t i);
  std::size_t handle_enum(std::size_t i);
  std::size_t handle_using(std::size_t i);
  std::size_t handle_mutex_decl(std::size_t i);
  std::size_t handle_cv_decl(std::size_t i);
  std::size_t try_function_def(std::size_t i);
  std::size_t handle_lock_decl(std::size_t i);
  std::size_t try_lambda(std::size_t i);
  void handle_call(std::size_t i, std::size_t open_paren);
  void harvest_params(std::size_t open, std::size_t close);
  void track_type_decl(std::size_t i);

  void resolve_and_hold(const std::string& var, int line,
                        const std::string& lock_var);
  void record_mutex(const MutexVar& m);
};

std::size_t Extractor::skip_group(std::size_t i) const {
  const std::string& open = toks_[i].text;
  const std::string close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t j = i; j < n(); ++j) {
    if (toks_[j].text == open) ++depth;
    else if (toks_[j].text == close && --depth == 0) return j + 1;
  }
  return n();
}

std::size_t Extractor::skip_angles(std::size_t i) const {
  if (!is(i, "<")) return n();
  int depth = 0;
  for (std::size_t j = i; j < n() && j < i + 256; ++j) {
    const std::string& t = toks_[j].text;
    if (t == "<") ++depth;
    else if (t == ">" && --depth == 0) return j + 1;
    else if (t == ";" || t == "{" || t == "}") return n();
  }
  return n();
}

std::size_t Extractor::skip_statement(std::size_t i) const {
  std::size_t j = i;
  while (j < n()) {
    const std::string& t = toks_[j].text;
    if (t == ";") return j + 1;
    if (t == "(" || t == "[" || t == "{") {
      j = skip_group(j);
      continue;
    }
    if (t == "}") return j;  // malformed; let the scope logic see it
    ++j;
  }
  return j;
}

std::size_t Extractor::handle_namespace(std::size_t i) {
  std::size_t j = i + 1;
  std::string name;
  while (ident(j) || is(j, "::")) {
    if (ident(j)) name += (name.empty() ? "" : "::") + toks_[j].text;
    ++j;
  }
  if (is(j, "{")) {
    scopes_.push_back({Scope::Kind::kNamespace, name, -1, false});
    return j + 1;
  }
  return skip_statement(j);  // namespace alias or malformed
}

std::size_t Extractor::handle_class(std::size_t i) {
  std::size_t j = i + 1;
  while (is(j, "[")) j = skip_group(j);  // attributes
  std::string name;
  if (ident(j) && !is(j, "final")) {
    name = toks_[j].text;
    ++j;
    if (is(j, "<")) {  // specialization Foo<T>
      const std::size_t after = skip_angles(j);
      if (after != n()) j = after;
    }
  }
  if (is(j, "final")) ++j;
  if (is(j, ":")) {  // base clause
    ++j;
    while (j < n() && !is(j, "{") && !is(j, ";")) {
      if (is(j, "<")) {
        const std::size_t after = skip_angles(j);
        j = after == n() ? j + 1 : after;
        continue;
      }
      if (ident(j) && !is(j, "public") && !is(j, "protected") &&
          !is(j, "private") && !is(j, "virtual") && !name.empty()) {
        // Every identifier in the base clause is a candidate base; only
        // names that turn out to be known classes matter downstream, so
        // over-recording (`storage` as well as `Backend`) is harmless.
        model_.bases[name].insert(toks_[j].text);
      }
      ++j;
    }
  }
  if (is(j, "{")) {
    if (!name.empty()) model_.classes.insert(name);
    scopes_.push_back({Scope::Kind::kClass, name, -1, false});
    return j + 1;
  }
  if (is(j, ";")) return j + 1;            // forward declaration
  if (ident(j)) return skip_statement(j);  // `struct stat st{};`
  return i + 1;  // elaborated type use, e.g. vector<struct iovec>
}

std::size_t Extractor::handle_enum(std::size_t i) {
  std::size_t j = i + 1;
  if (is(j, "class") || is(j, "struct")) ++j;
  if (ident(j)) ++j;
  if (is(j, ":")) {  // underlying type
    while (j < n() && !is(j, "{") && !is(j, ";")) ++j;
  }
  if (is(j, "{")) {
    scopes_.push_back({Scope::Kind::kEnum, "", -1, false});
    return j + 1;
  }
  return j;  // opaque declaration
}

std::size_t Extractor::handle_using(std::size_t i) {
  if (!(ident(i + 1) && is(i + 2, "="))) return skip_statement(i + 1);
  const std::string alias = toks_[i + 1].text;
  std::string rank;
  bool saw_ranked = false;
  std::vector<std::string> rhs;
  std::size_t j = i + 3;
  while (j < n() && !is(j, ";")) {
    if (is(j, "RankedMutex")) saw_ranked = true;
    if (ident(j)) {
      rhs.push_back(toks_[j].text);
      if (saw_ranked && looks_like_rank_name(toks_[j].text)) {
        rank = toks_[j].text;
      }
    }
    ++j;
  }
  if (saw_ranked && !rank.empty()) {
    mutex_aliases_[{cur_class(), alias}] = rank;
  } else if (!rhs.empty()) {
    model_.alias_raw[alias] = rhs;  // resolved against classes later
  }
  return j + 1;
}

std::size_t Extractor::handle_mutex_decl(std::size_t i) {
  // `RankedMutex<...kRank...> var ;`  (possibly `debug::` qualified,
  // possibly brace-initialised).
  std::size_t j = i + 1;
  if (!is(j, "<")) return i + 1;
  const std::size_t after = skip_angles(j);
  if (after == n()) return i + 1;
  std::string rank;
  for (std::size_t k = j; k < after; ++k) {
    if (ident(k) && looks_like_rank_name(toks_[k].text)) rank = toks_[k].text;
  }
  j = after;
  if (rank.empty() || !ident(j)) return j;
  const std::string var = toks_[j].text;
  ++j;
  if (is(j, "{")) j = skip_group(j);
  if (is(j, ";")) {
    record_mutex({cur_class(), var, rank});
    return j + 1;
  }
  return j;  // reference/parameter of RankedMutex type, not a member
}

void Extractor::record_mutex(const MutexVar& m) {
  // Extraction runs twice (see build_model); the second pass must not
  // duplicate phase-1 declarations.
  for (const auto& existing : model_.mutexes) {
    if (existing.cls == m.cls && existing.name == m.name &&
        existing.rank == m.rank) {
      return;
    }
  }
  model_.mutexes.push_back(m);
}

std::size_t Extractor::handle_cv_decl(std::size_t i) {
  if (ident(i + 1)) {
    model_.cv_names.insert(toks_[i + 1].text);
    return i + 2;
  }
  return i + 1;
}

void Extractor::harvest_params(std::size_t open, std::size_t close) {
  // Walk `( ... )` recording `Type name` pairs where Type names a class
  // (directly or through a pointer/reference/smart pointer/alias).
  std::string lt;
  for (std::size_t k = open + 1; k < close && k < n(); ++k) {
    const std::string& t = toks_[k].text;
    if (t == "(" || t == "[" || t == "{") {
      k = skip_group(k) - 1;
      continue;
    }
    if (t == ",") {
      lt.clear();
      continue;
    }
    if (!toks_[k].is_ident()) continue;
    const std::string cls = model_.as_class(t);
    if (!cls.empty()) {
      lt = cls;
      continue;
    }
    // Parameter name: an identifier followed by `,`, `)`, or `=`.
    if (!lt.empty() &&
        (is(k + 1, ",") || k + 1 == close || is(k + 1, "="))) {
      local_types_[t] = lt;
    }
  }
}

std::size_t Extractor::try_function_def(std::size_t i) {
  // toks_[i] is an identifier immediately followed by '('.
  const std::string simple = toks_[i].text;
  if (is_excluded_keyword(simple)) return i + 1;

  // The class is the immediate qualifier before the (possibly ~-prefixed)
  // name: `apio::storage::PosixBackend::write` -> PosixBackend.
  std::string name = simple;
  std::size_t head = i;  // index of the name (or '~')
  if (head > 0 && is(head - 1, "~")) {
    name = "~" + name;
    --head;
  }
  std::string cls;
  if (head >= 2 && is(head - 1, "::") && ident(head - 2)) {
    cls = toks_[head - 2].text;
  }
  if (cls.empty()) cls = cur_class();

  const std::size_t params_close = skip_group(i + 1);
  if (params_close >= n()) return i + 1;
  std::size_t j = params_close;

  // Trailing qualifiers / exception spec / trailing return type.
  for (;;) {
    if (is(j, "const") || is(j, "override") || is(j, "final") ||
        is(j, "mutable") || is(j, "&") || is(j, "*") || is(j, "volatile")) {
      ++j;
      continue;
    }
    if (is(j, "noexcept")) {
      ++j;
      if (is(j, "(")) j = skip_group(j);
      continue;
    }
    if (is(j, "->")) {
      ++j;
      while (ident(j) || is(j, "::") || is(j, "*") || is(j, "&") ||
             is(j, "const")) {
        ++j;
      }
      if (is(j, "<")) {
        const std::size_t after = skip_angles(j);
        j = after == n() ? j + 1 : after;
      }
      continue;
    }
    break;
  }

  if (is(j, ":")) {
    // Constructor initializer list: member(args) or member{args},
    // comma-separated, then the body.
    ++j;
    for (;;) {
      while (ident(j) || is(j, "::")) ++j;
      if (is(j, "<")) {
        const std::size_t after = skip_angles(j);
        if (after == n()) return i + 1;
        j = after;
      }
      if (is(j, "(")) j = skip_group(j);
      else if (is(j, "{")) j = skip_group(j);
      else return i + 1;
      if (is(j, ",")) {
        ++j;
        continue;
      }
      break;
    }
  }
  if (is(j, "try")) ++j;  // function-try-block

  if (!is(j, "{")) return i + 1;  // declaration, deleted/defaulted, etc.

  Function fn;
  fn.cls = cls;
  fn.name = name;
  fn.qualified = cls.empty() ? name : cls + "::" + name;
  fn.file = file_.rel;
  fn.line = toks_[i].line;
  model_.functions.push_back(std::move(fn));
  const long idx = static_cast<long>(model_.functions.size()) - 1;
  model_.by_name.emplace(name, static_cast<std::size_t>(idx));
  scopes_.push_back({Scope::Kind::kFunction, name, idx, false});
  local_types_.clear();
  harvest_params(i + 1, params_close - 1);
  return j + 1;
}

void Extractor::resolve_and_hold(const std::string& var, int line,
                                 const std::string& lock_var) {
  const long fi = cur_func();
  if (fi < 0) return;
  Function& fn = model_.functions[static_cast<std::size_t>(fi)];
  // Prefer a member of the function's class; fall back to a unique
  // global match (file-local structs, namespace-scope mutexes).
  std::set<std::string> ranks;
  for (const auto& m : model_.mutexes) {
    if (m.name == var && m.cls == fn.cls) ranks.insert(m.rank);
  }
  if (ranks.empty()) {
    for (const auto& m : model_.mutexes) {
      if (m.name == var) ranks.insert(m.rank);
    }
  }
  if (ranks.size() != 1) return;  // unknown or ambiguous: stay quiet
  AcquireSite a;
  a.rank = *ranks.begin();
  a.line = line;
  a.held_before = held_ranks();
  fn.acquires.push_back(a);
  holds_.push_back({*ranks.begin(), scopes_.size(), lock_var});
}

std::size_t Extractor::handle_lock_decl(std::size_t i) {
  // lock_guard / unique_lock / scoped_lock [<...>] var ( mutex[, ...] ) ;
  std::size_t j = i + 1;
  if (is(j, "<")) {
    const std::size_t after = skip_angles(j);
    if (after == n()) return i + 1;
    j = after;
  }
  if (!ident(j)) return i + 1;
  const std::string lock_var = toks_[j].text;
  ++j;
  if (!is(j, "(")) return i + 1;
  const std::size_t close = skip_group(j) - 1;
  const int line = toks_[i].line;
  // Split top-level commas; the last identifier of each argument names
  // the mutex (handles `cache->mutex_`, `*mu`, plain members).
  std::string last_ident;
  auto flush = [&] {
    if (!last_ident.empty() && !is_lock_tag(last_ident)) {
      resolve_and_hold(last_ident, line, lock_var);
    }
    last_ident.clear();
  };
  std::size_t k = j + 1;
  while (k < close && k < n()) {
    const std::string& t = toks_[k].text;
    if (t == "(" || t == "[" || t == "{") {
      k = skip_group(k);
      continue;
    }
    if (t == ",") {
      flush();
      ++k;
      continue;
    }
    if (toks_[k].is_ident()) last_ident = t;
    ++k;
  }
  flush();
  return close + 1;
}

std::size_t Extractor::try_lambda(std::size_t i) {
  // toks_[i] == "[" in expression position (prev is not a postfix
  // expression, so this is a capture list, not a subscript).
  const std::size_t after_capture = skip_group(i);
  if (after_capture >= n()) return i + 1;
  std::size_t j = after_capture;
  std::size_t params_open = 0, params_close = 0;
  if (is(j, "(")) {
    params_open = j;
    j = skip_group(j);
    params_close = j - 1;
  }
  for (;;) {
    if (is(j, "mutable") || is(j, "constexpr")) {
      ++j;
      continue;
    }
    if (is(j, "noexcept")) {
      ++j;
      if (is(j, "(")) j = skip_group(j);
      continue;
    }
    if (is(j, "->")) {
      ++j;
      while (ident(j) || is(j, "::") || is(j, "*") || is(j, "&") ||
             is(j, "const")) {
        ++j;
      }
      if (is(j, "<")) {
        const std::size_t after = skip_angles(j);
        j = after == n() ? j + 1 : after;
      }
      continue;
    }
    break;
  }
  if (!is(j, "{")) return i + 1;  // not a lambda after all
  scopes_.push_back({Scope::Kind::kBlock, "", -1, true});
  if (params_open != 0) harvest_params(params_open, params_close);
  return j + 1;
}

void Extractor::track_type_decl(std::size_t i) {
  // Statement-local tracker: remember the last known-class type name,
  // and record `Type name` declarations (members at class scope,
  // locals inside functions).  `auto x = std::make_shared<T>(...)` is
  // special-cased.
  const std::string& t = toks_[i].text;
  const std::string cls = model_.as_class(t);
  if (!cls.empty()) {
    last_type_ = cls;
    return;
  }
  const bool next_decl = is(i + 1, ";") || is(i + 1, "=") || is(i + 1, "{") ||
                         is(i + 1, "(");
  if (!next_decl || i == 0) return;
  const Token& prev = toks_[i - 1];
  const bool prev_auto =
      prev.is("auto") ||
      (i >= 2 && (prev.is("&") || prev.is("*")) && is(i - 2, "auto"));
  if (prev_auto && is(i + 1, "=")) {
    // auto v = std::make_shared<T>(...) / make_unique<T>(...)
    std::string made;
    for (std::size_t k = i + 2; k < n() && k < i + 40 && !is(k, ";"); ++k) {
      if ((is(k, "make_shared") || is(k, "make_unique")) && is(k + 1, "<")) {
        const std::size_t after = skip_angles(k + 1);
        for (std::size_t m = k + 2; m + 1 < after && m < n(); ++m) {
          if (ident(m)) {
            const std::string c = model_.as_class(toks_[m].text);
            if (!c.empty()) made = c;
          }
        }
        break;
      }
    }
    if (!made.empty() && cur_func() >= 0) local_types_[t] = made;
    return;
  }
  const bool prev_decl =
      (prev.is_ident() && !is_excluded_keyword(prev.text)) || prev.is(">") ||
      prev.is("*") || prev.is("&");
  if (!prev_decl || last_type_.empty()) return;
  if (cur_func() >= 0) {
    local_types_[t] = last_type_;
  } else if (in_class_body()) {
    model_.member_types[{cur_class(), t}] = last_type_;
  }
}

void Extractor::handle_call(std::size_t i, std::size_t open_paren) {
  const long fi = cur_func();
  if (fi < 0) return;
  const std::string& name = toks_[i].text;
  if (is_excluded_keyword(name)) return;

  // Declarations (`Type name(...)`) have an identifier or number token
  // directly before the name; calls have punctuation or `return` etc.
  std::string receiver, qualifier;
  if (i > 0) {
    const Token& prev = toks_[i - 1];
    if (prev.is(".") || prev.is("->")) {
      if (i >= 2 && ident(i - 2)) receiver = toks_[i - 2].text;
    } else if (prev.is("::")) {
      if (i >= 2 && ident(i - 2)) qualifier = toks_[i - 2].text;
    } else if ((prev.is_ident() && !is_excluded_keyword(prev.text)) ||
               prev.kind == Token::Kind::kNumber) {
      return;  // declaration, not a call
    }
  }

  Function& fn = model_.functions[static_cast<std::size_t>(fi)];
  if (name == "APIO_ASSERT_ON_STREAM") {
    fn.asserts_stream = true;
    fn.assert_stream_line = toks_[i].line;
    return;
  }
  if (name == "APIO_ASSERT_ON_RANK") {
    fn.asserts_rank = true;
    fn.assert_rank_line = toks_[i].line;
    return;
  }

  // unlock() on a tracked lock variable or mutex releases the hold.
  if (name == "unlock" && !receiver.empty()) {
    for (auto it = holds_.rbegin(); it != holds_.rend(); ++it) {
      if (it->lock_var == receiver) {
        holds_.erase(std::next(it).base());
        return;
      }
    }
    return;
  }
  // Direct mutex_.lock(): an acquisition held to scope end.
  if (name == "lock" && !receiver.empty()) {
    resolve_and_hold(receiver, toks_[i].line, receiver);
    return;
  }

  CallSite call;
  call.name = name;
  call.receiver = receiver;
  call.qualifier = qualifier;
  call.line = toks_[i].line;
  call.held = held_ranks();
  if (!receiver.empty()) {
    auto it = local_types_.find(receiver);
    if (it != local_types_.end()) call.receiver_type = it->second;
  }

  // Statement-level discard: the postfix chain starts the statement and
  // the call's closing paren is immediately followed by ';'.
  std::size_t chain_start = i;
  while (chain_start >= 2 &&
         (is(chain_start - 1, ".") || is(chain_start - 1, "->") ||
          is(chain_start - 1, "::")) &&
         ident(chain_start - 2)) {
    chain_start -= 2;
  }
  const bool stmt_start = chain_start == 0 || is(chain_start - 1, ";") ||
                          is(chain_start - 1, "{") || is(chain_start - 1, "}");
  const std::size_t after = skip_group(open_paren);
  call.stmt_discard = stmt_start && is(after, ";");

  fn.calls.push_back(std::move(call));
}

void Extractor::run() {
  std::size_t i = 0;
  while (i < n()) {
    const Token& t = toks_[i];
    if (t.is(";") || t.is("{") || t.is("}")) last_type_.clear();
    if (t.is("namespace")) {
      i = handle_namespace(i);
      continue;
    }
    if (t.is("class") || t.is("struct") || t.is("union")) {
      i = handle_class(i);
      continue;
    }
    if (t.is("enum")) {
      i = handle_enum(i);
      continue;
    }
    if (t.is("template")) {
      if (is(i + 1, "<")) {
        const std::size_t after = skip_angles(i + 1);
        i = after == n() ? i + 2 : after;
      } else {
        ++i;
      }
      continue;
    }
    if (t.is("using") && at_decl_scope()) {
      i = handle_using(i);
      continue;
    }
    if (t.is("RankedMutex") && is(i + 1, "<")) {
      i = handle_mutex_decl(i);
      continue;
    }
    if ((t.is("condition_variable_any") || t.is("condition_variable")) &&
        ident(i + 1)) {
      i = handle_cv_decl(i);
      continue;
    }
    // Aliased mutex members: `Mutex mutex_;` where Mutex is a recorded
    // class-local RankedMutex alias.
    if (t.is_ident() && ident(i + 1) && is(i + 2, ";")) {
      auto it = mutex_aliases_.find({cur_class(), t.text});
      if (it != mutex_aliases_.end()) {
        record_mutex({cur_class(), toks_[i + 1].text, it->second});
        i += 3;
        continue;
      }
    }
    if (t.is("[") && cur_func() >= 0) {
      const bool subscript =
          i > 0 && (toks_[i - 1].is_ident() || is(i - 1, ")") ||
                    is(i - 1, "]") ||
                    toks_[i - 1].kind == Token::Kind::kNumber);
      if (!subscript) {
        i = try_lambda(i);
        continue;
      }
    }
    if (t.is("{")) {
      scopes_.push_back({Scope::Kind::kBlock, "", -1, false});
      ++i;
      continue;
    }
    if (t.is("}")) {
      pop_scope();
      ++i;
      continue;
    }
    if (t.is_ident() && cur_func() >= 0 && is_lock_decl_type(t.text)) {
      i = handle_lock_decl(i);
      continue;
    }
    if (t.is_ident()) {
      track_type_decl(i);
      // `name(` — a definition at declaration scope, a call in a body.
      std::size_t open = n();
      if (is(i + 1, "(")) {
        open = i + 1;
      } else if (is(i + 1, "<") && cur_func() >= 0) {
        const std::size_t after = skip_angles(i + 1);
        if (after != n() && is(after, "(")) open = after;  // f<T>(...)
      }
      if (open != n()) {
        if (cur_func() >= 0) {
          handle_call(i, open);
          ++i;
          continue;
        }
        if (at_decl_scope()) {
          i = try_function_def(i);
          continue;
        }
      }
    }
    ++i;
  }
}

}  // namespace

bool LockRankTable::load(const SourceFile& header) {
  bool in_enum = false;
  for (const auto& line : header.code) {
    if (!in_enum) {
      if (contains(line, "enum") && contains(line, "LockRank")) in_enum = true;
      continue;
    }
    if (contains(line, "}")) break;
    // `kName = N,`
    std::size_t k = line.find('k');
    while (k != std::string::npos) {
      std::size_t e = k;
      while (e < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[e])) ||
              line[e] == '_')) {
        ++e;
      }
      const std::string name = line.substr(k, e - k);
      if (looks_like_rank_name(name)) {
        const std::size_t eq = line.find('=', e);
        if (eq != std::string::npos) {
          int v = 0;
          bool any = false;
          for (std::size_t d = eq + 1; d < line.size(); ++d) {
            const char c = line[d];
            if (std::isdigit(static_cast<unsigned char>(c))) {
              v = v * 10 + (c - '0');
              any = true;
            } else if (any || c != ' ') {
              break;
            }
          }
          if (any) value[name] = v;
        }
        break;  // one enumerator per line in this style
      }
      k = line.find('k', k + 1);
    }
  }
  return !value.empty();
}

std::string CodeModel::as_class(const std::string& type_name) const {
  if (classes.count(type_name) > 0) return type_name;
  auto it = type_aliases.find(type_name);
  return it == type_aliases.end() ? "" : it->second;
}

std::string CodeModel::member_type_of(const std::string& cls,
                                      const std::string& var) const {
  auto it = member_types.find({cls, var});
  if (it != member_types.end()) return it->second;
  // Globally unique member name (e.g. `session` only ever means
  // AsyncOp's RetrySession member).
  std::string found;
  for (const auto& [key, type] : member_types) {
    if (key.second != var) continue;
    if (!found.empty() && found != type) return "";
    found = type;
  }
  return found;
}

bool CodeModel::is_or_derived(const std::string& cls,
                              const std::string& base) const {
  if (cls == base) return true;
  std::set<std::string> seen;
  std::vector<std::string> work{cls};
  while (!work.empty()) {
    const std::string cur = work.back();
    work.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = bases.find(cur);
    if (it == bases.end()) continue;
    for (const auto& b : it->second) {
      if (b == base) return true;
      work.push_back(b);
    }
  }
  return false;
}

std::vector<std::size_t> CodeModel::resolve(const CallSite& call,
                                            const std::string& caller_cls) const {
  // Calls through condition-variable receivers are std waits, never
  // calls into extracted functions (Eventual::wait et al.).
  if (!call.receiver.empty() && cv_names.count(call.receiver) > 0) return {};

  auto range = by_name.equal_range(call.name);
  std::vector<std::size_t> all, same, qual;
  for (auto it = range.first; it != range.second; ++it) {
    const Function& f = functions[it->second];
    all.push_back(it->second);
    if (!caller_cls.empty() && f.cls == caller_cls) same.push_back(it->second);
    if (!call.qualifier.empty() && f.cls == call.qualifier) {
      qual.push_back(it->second);
    }
  }
  // `Cls::f()` resolves within Cls when such a definition exists
  // (namespace qualifiers fall through to the name-wide set).
  if (!qual.empty()) return qual;

  if (!call.receiver.empty() && call.receiver != "this") {
    std::string type = call.receiver_type;
    if (type.empty()) type = member_type_of(caller_cls, call.receiver);
    if (type.empty()) return {};  // std containers, spans, unknowns
    std::vector<std::size_t> typed;
    for (const std::size_t idx : all) {
      if (is_or_derived(functions[idx].cls, type)) typed.push_back(idx);
    }
    return typed;
  }

  // A receiver-less (or this->) call inside a member function prefers
  // the same class: `run(...)` in ResilientBackend::write is its
  // private run, not every run() in the repo.
  if (!same.empty()) return same;
  return all;
}

void extract_file(const SourceFile& file, CodeModel& model) {
  Extractor(file, model).run();
}

CodeModel build_model(const fs::path& root, const std::vector<std::string>& dirs) {
  CodeModel model;
  for (const auto& path : collect_sources(root, dirs)) {
    SourceFile sf;
    if (!load_source(root, path, sf)) continue;
    model.file_index[sf.rel] = model.files.size();
    model.files.push_back(std::move(sf));
  }

  // Phase 1: harvest declarations (classes, bases, aliases, mutexes,
  // condition variables, member types) so phase 2 sees the complete
  // environment regardless of file order.
  for (const auto& sf : model.files) extract_file(sf, model);

  // Resolve namespace-scope `using` aliases against the now-complete
  // class set: the last class-named identifier on the right-hand side
  // wins (`using FilePtr = std::shared_ptr<File>` -> File).
  for (const auto& [alias, rhs] : model.alias_raw) {
    for (auto it = rhs.rbegin(); it != rhs.rend(); ++it) {
      if (model.classes.count(*it) > 0) {
        model.type_aliases[alias] = *it;
        break;
      }
    }
  }

  // Phase 2: rebuild the function bodies with full declarations.
  // Declaration stores (mutexes, classes, member types, aliases) are
  // kept from phase 1 — bodies often precede declarations in file
  // order (foo.cpp sorts before foo.h) — and re-harvesting into them
  // is idempotent.
  model.functions.clear();
  model.by_name.clear();
  for (const auto& sf : model.files) extract_file(sf, model);

  const fs::path rank_header = root / "src" / "common" / "debug" / "lock_rank.h";
  SourceFile rank_file;
  if (load_source(root, rank_header, rank_file)) {
    model.ranks.load(rank_file);
  }
  return model;
}

}  // namespace apio::analysis
