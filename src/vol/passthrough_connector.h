// PassthroughConnector: VOL stacking, as HDF5's passthrough VOL
// connector demonstrates.  Wraps any Connector and forwards every
// operation while accumulating per-operation statistics — bytes moved,
// call counts, blocking time — independently of the inner connector's
// own instrumentation.  Useful for profiling an application without
// touching it (the "transparent" property Sec. II-A emphasises), and as
// the template for user-written interposer connectors.
#pragma once

#include "common/clock.h"
#include "common/debug/lock_rank.h"
#include "vol/connector.h"

namespace apio::vol {

/// Aggregated interposer statistics.
struct PassthroughStats {
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t flushes = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  double write_blocking_seconds = 0.0;
  double read_blocking_seconds = 0.0;
};

class PassthroughConnector final : public Connector {
 public:
  explicit PassthroughConnector(ConnectorPtr inner, const Clock* clock = nullptr);

  const h5::FilePtr& file() const override { return inner_->file(); }

  RequestPtr dataset_write(h5::Dataset ds, const h5::Selection& selection,
                           std::span<const std::byte> data) override;
  RequestPtr dataset_read(h5::Dataset ds, const h5::Selection& selection,
                          std::span<std::byte> out) override;
  void prefetch(h5::Dataset ds, const h5::Selection& selection) override;
  RequestPtr flush() override;
  void wait_all() override { inner_->wait_all(); }
  void close() override { inner_->close(); }

  /// Interposers emit no records of their own; subscriptions land on
  /// the wrapped connector.
  void add_observer(IoObserverPtr observer) override {
    inner_->add_observer(std::move(observer));
  }
  void remove_observer(const IoObserverPtr& observer) override {
    inner_->remove_observer(observer);
  }

  PassthroughStats stats() const;
  const ConnectorPtr& inner() const { return inner_; }

 private:
  ConnectorPtr inner_;
  WallClock wall_clock_;
  const Clock* clock_;
  mutable debug::RankedMutex<debug::LockRank::kCounters> mutex_;
  PassthroughStats stats_;
};

}  // namespace apio::vol
