#include "h5/convert.h"

#include <cstring>

#include "common/error.h"

namespace apio::h5 {
namespace {

template <typename From, typename To>
void convert_typed(std::span<const std::byte> src, std::span<std::byte> dst,
                   std::uint64_t count) {
  const From* in = reinterpret_cast<const From*>(src.data());
  To* out = reinterpret_cast<To*>(dst.data());
  for (std::uint64_t i = 0; i < count; ++i) {
    out[i] = static_cast<To>(in[i]);
  }
}

template <typename From>
void convert_from(std::span<const std::byte> src, Datatype to,
                  std::span<std::byte> dst, std::uint64_t count) {
  switch (to) {
    case Datatype::kInt8: convert_typed<From, std::int8_t>(src, dst, count); return;
    case Datatype::kUInt8: convert_typed<From, std::uint8_t>(src, dst, count); return;
    case Datatype::kInt16: convert_typed<From, std::int16_t>(src, dst, count); return;
    case Datatype::kUInt16: convert_typed<From, std::uint16_t>(src, dst, count); return;
    case Datatype::kInt32: convert_typed<From, std::int32_t>(src, dst, count); return;
    case Datatype::kUInt32: convert_typed<From, std::uint32_t>(src, dst, count); return;
    case Datatype::kInt64: convert_typed<From, std::int64_t>(src, dst, count); return;
    case Datatype::kUInt64: convert_typed<From, std::uint64_t>(src, dst, count); return;
    case Datatype::kFloat32: convert_typed<From, float>(src, dst, count); return;
    case Datatype::kFloat64: convert_typed<From, double>(src, dst, count); return;
  }
  throw InvalidArgumentError("unknown destination datatype");
}

}  // namespace

void convert_elements(Datatype from, std::span<const std::byte> src, Datatype to,
                      std::span<std::byte> dst, std::uint64_t count) {
  APIO_REQUIRE(src.size() == count * datatype_size(from),
               "conversion source buffer size mismatch");
  APIO_REQUIRE(dst.size() == count * datatype_size(to),
               "conversion destination buffer size mismatch");
  if (from == to) {
    std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  switch (from) {
    case Datatype::kInt8: convert_from<std::int8_t>(src, to, dst, count); return;
    case Datatype::kUInt8: convert_from<std::uint8_t>(src, to, dst, count); return;
    case Datatype::kInt16: convert_from<std::int16_t>(src, to, dst, count); return;
    case Datatype::kUInt16: convert_from<std::uint16_t>(src, to, dst, count); return;
    case Datatype::kInt32: convert_from<std::int32_t>(src, to, dst, count); return;
    case Datatype::kUInt32: convert_from<std::uint32_t>(src, to, dst, count); return;
    case Datatype::kInt64: convert_from<std::int64_t>(src, to, dst, count); return;
    case Datatype::kUInt64: convert_from<std::uint64_t>(src, to, dst, count); return;
    case Datatype::kFloat32: convert_from<float>(src, to, dst, count); return;
    case Datatype::kFloat64: convert_from<double>(src, to, dst, count); return;
  }
  throw InvalidArgumentError("unknown source datatype");
}

}  // namespace apio::h5
