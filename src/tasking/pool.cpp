#include "tasking/pool.h"

#include "common/debug/invariant.h"
#include "common/error.h"
#include "obs/metrics.h"

namespace apio::tasking {
namespace {

obs::Gauge& queue_depth_gauge() {
  static auto& g = obs::Registry::instance().gauge("tasking.queue_depth");
  return g;
}

obs::Counter& pops_counter() {
  static auto& c = obs::Registry::instance().counter("tasking.pops");
  return c;
}

}  // namespace

/// Shared bookkeeping for both pop variants — blocking pop() and the
/// non-blocking try_pop() used by scheduler-driven drains must emit
/// identical queue-depth/pop metrics or profiles develop blind spots.
/// Called with mutex_ held, after a task was removed from the queue.
void Pool::note_popped_locked() {
  ++drained_;
  APIO_INVARIANT(drained_ <= accepted_, "Pool drained more tasks than accepted");
  if (obs::enabled()) {
    queue_depth_gauge().set(static_cast<std::int64_t>(tasks_.size()));
    pops_counter().increment();
  }
}

void Pool::push(TaskFn task) {
  if (!try_push(std::move(task))) {
    throw StateError("Pool::push() on closed pool");
  }
}

bool Pool::try_push(TaskFn task) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return false;
    tasks_.push_back(std::move(task));
    ++accepted_;
    if (obs::enabled()) {
      auto& gauge = queue_depth_gauge();
      gauge.set(static_cast<std::int64_t>(tasks_.size()));
      gauge.note_watermark();
    }
  }
  cv_.notify_one();
  return true;
}

std::optional<TaskFn> Pool::pop() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return std::nullopt;
  TaskFn task = std::move(tasks_.front());
  tasks_.pop_front();
  note_popped_locked();
  return task;
}

std::optional<TaskFn> Pool::try_pop() {
  std::lock_guard lock(mutex_);
  if (tasks_.empty()) return std::nullopt;
  TaskFn task = std::move(tasks_.front());
  tasks_.pop_front();
  note_popped_locked();
  return task;
}

void Pool::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Pool::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t Pool::size() const {
  std::lock_guard lock(mutex_);
  return tasks_.size();
}

std::uint64_t Pool::accepted() const {
  std::lock_guard lock(mutex_);
  return accepted_;
}

std::uint64_t Pool::drained() const {
  std::lock_guard lock(mutex_);
  return drained_;
}

}  // namespace apio::tasking
