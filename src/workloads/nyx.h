// Nyx proxy: the adaptive-mesh cosmology simulation of Sec. IV-C,
// reduced to its I/O-relevant structure — an AMReX-style MultiFab on a
// uniform domain, a plotfile written every N time steps, strong
// scaling (the domain does not grow with ranks).
#pragma once

#include "sim/epoch_sim.h"
#include "workloads/amr.h"
#include "workloads/checkpoint_app.h"

namespace apio::workloads {

struct NyxParams {
  h5::Dims domain{256, 256, 256};
  int ncomp = 6;  ///< density, velocities, temperature, phi, ...
  CheckpointSchedule schedule{/*checkpoints=*/3, /*steps_per_checkpoint=*/20,
                              /*seconds_per_step=*/0.0};
  bool gpu_resident = false;

  /// The paper's "small" configuration: 256^3, plotfile every 20 steps.
  static NyxParams small();
  /// The paper's "large" configuration: 2048^3, plotfile every 50 steps.
  static NyxParams large();
};

class NyxProxy {
 public:
  explicit NyxProxy(NyxParams params);

  /// Real execution: decomposes the domain across the ranks of `comm`
  /// and writes plotfile groups "plt0000", "plt0001", ... through the
  /// connector.
  CheckpointRunResult run(vol::Connector& connector, pmpi::Communicator& comm) const;

  const NyxParams& params() const { return params_; }

  static std::string plotfile_name(int index);

  /// Simulator configuration reproducing Fig. 4a (Summit, large) and
  /// Fig. 4b (Cori, small).  `seconds_per_step` controls the compute
  /// phase, swept by the Fig. 7 overlap study.
  static sim::RunConfig sim_config(const sim::SystemSpec& spec, int nodes,
                                   model::IoMode mode, const NyxParams& params,
                                   double seconds_per_step = 2.0);

 private:
  NyxParams params_;
};

}  // namespace apio::workloads
