// Tests for the VOL extensions: event sets (H5ES semantics), the
// passthrough/stacking connector, and SSD-staged transactional copies.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "storage/memory_backend.h"
#include "storage/backend_stack.h"
#include "vol/async_connector.h"
#include "vol/event_set.h"
#include "vol/native_connector.h"
#include "vol/passthrough_connector.h"

namespace apio::vol {
namespace {

std::shared_ptr<AsyncConnector> make_async(AsyncOptions options = {}) {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  return std::make_shared<AsyncConnector>(std::move(file), options);
}

// ---------------------------------------------------------------------------
// EventSet

TEST(EventSetTest, EmptySetIsComplete) {
  EventSet es;
  EXPECT_EQ(es.size(), 0u);
  EXPECT_TRUE(es.test());
  EXPECT_NO_THROW(es.wait());
  EXPECT_EQ(es.num_errors(), 0u);
}

TEST(EventSetTest, TracksBatchOfWrites) {
  auto conn = make_async();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {80});
  EventSet es;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::int32_t> v(8, i);
    es.insert(conn->dataset_write(
        ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * 8}, {8}),
        std::as_bytes(std::span<const std::int32_t>(v))));
  }
  EXPECT_EQ(es.size(), 10u);
  es.wait();
  EXPECT_EQ(es.size(), 0u);
  EXPECT_EQ(es.num_errors(), 0u);
  auto all = ds.read_vector<std::int32_t>(h5::Selection::all());
  EXPECT_EQ(all[79], 9);
  conn->close();
}

TEST(EventSetTest, CollectsErrorsWithoutThrowing) {
  auto conn = make_async();
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {4});
  EventSet es;
  const std::vector<std::int32_t> good{1, 2, 3, 4};
  const std::vector<std::int32_t> bad{1};
  es.insert(conn->dataset_write(ds, h5::Selection::all(),
                                std::as_bytes(std::span<const std::int32_t>(good))));
  es.insert(conn->dataset_write(ds, h5::Selection::all(),
                                std::as_bytes(std::span<const std::int32_t>(bad))));
  EXPECT_NO_THROW(es.wait());  // H5ESwait does not throw
  EXPECT_EQ(es.num_errors(), 1u);
  const auto messages = es.error_messages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_NE(messages[0].find("selection bytes"), std::string::npos);
  EXPECT_THROW(es.rethrow_first_error(), InvalidArgumentError);
  es.clear();
  EXPECT_EQ(es.num_errors(), 0u);
  conn->close();
}

TEST(EventSetTest, TestReflectsInFlightWork) {
  storage::ThrottleParams throttle;
  throttle.bandwidth = 2.0 * 1024 * 1024;
  throttle.time_scale = 1.0;
  auto backend = storage::BackendStack::memory().throttled(throttle).build();
  auto conn = std::make_shared<AsyncConnector>(h5::File::create(backend));
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kUInt8,
                                                {512 * 1024});
  std::vector<std::uint8_t> data(512 * 1024, 1);
  EventSet es;
  es.insert(conn->dataset_write(ds, h5::Selection::all(),
                                std::as_bytes(std::span<const std::uint8_t>(data))));
  EXPECT_FALSE(es.test());  // ~0.25 s transfer still in flight
  es.wait();
  EXPECT_TRUE(es.test());
  conn->close();
}

TEST(EventSetTest, RejectsNullRequest) {
  EventSet es;
  EXPECT_THROW(es.insert(nullptr), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// PassthroughConnector

TEST(PassthroughTest, ForwardsAndCounts) {
  auto inner = make_async();
  PassthroughConnector stack(inner);
  auto ds = stack.file()->root().create_dataset("d", h5::Datatype::kFloat64, {16});
  std::vector<double> values(16);
  std::iota(values.begin(), values.end(), 0.0);
  auto w = stack.dataset_write(ds, h5::Selection::all(),
                               std::as_bytes(std::span<const double>(values)));
  w->wait();
  std::vector<double> out(16);
  stack.dataset_read(ds, h5::Selection::all(),
                     std::as_writable_bytes(std::span<double>(out)))
      ->wait();
  stack.prefetch(ds, h5::Selection::all());
  stack.flush()->wait();
  stack.wait_all();

  const auto stats = stack.stats();
  EXPECT_EQ(stats.writes, 1u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.prefetches, 1u);
  EXPECT_EQ(stats.flushes, 1u);
  EXPECT_EQ(stats.bytes_written, 128u);
  EXPECT_EQ(stats.bytes_read, 128u);
  EXPECT_EQ(out, values);
  stack.close();
}

TEST(PassthroughTest, StacksOverNativeToo) {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  PassthroughConnector stack(std::make_shared<NativeConnector>(file));
  auto ds = stack.file()->root().create_dataset("d", h5::Datatype::kInt8, {4});
  const std::vector<std::int8_t> v{1, 2, 3, 4};
  stack.dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int8_t>(v)));
  EXPECT_EQ(stack.stats().writes, 1u);
  EXPECT_GT(stack.stats().write_blocking_seconds, 0.0);
}

TEST(PassthroughTest, DoubleStackingComposes) {
  auto inner = make_async();
  auto mid = std::make_shared<PassthroughConnector>(inner);
  PassthroughConnector outer(mid);
  auto ds = outer.file()->root().create_dataset("d", h5::Datatype::kInt8, {2});
  const std::vector<std::int8_t> v{9, 9};
  outer.dataset_write(ds, h5::Selection::all(),
                      std::as_bytes(std::span<const std::int8_t>(v)));
  outer.wait_all();
  EXPECT_EQ(outer.stats().writes, 1u);
  EXPECT_EQ(mid->stats().writes, 1u);
  outer.close();
}

TEST(PassthroughTest, RequiresInner) {
  EXPECT_THROW(PassthroughConnector(nullptr), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// SSD-staged transactional copies

TEST(SsdStagingTest, WritesLandViaStagingDevice) {
  AsyncOptions options;
  auto ssd = std::make_shared<storage::MemoryBackend>();  // stands in for NVMe
  options.staging_backend = ssd;
  auto conn = make_async(options);
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {64});
  std::vector<std::int32_t> values(64);
  std::iota(values.begin(), values.end(), 100);
  auto req = conn->dataset_write(ds, h5::Selection::all(),
                                 std::as_bytes(std::span<const std::int32_t>(values)));
  req->wait();
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()), values);
  // The staging device really carried the bytes.
  EXPECT_GE(ssd->stats().bytes_written, 64u * sizeof(std::int32_t));
  EXPECT_GE(ssd->stats().bytes_read, 64u * sizeof(std::int32_t));
  conn->close();
}

TEST(SsdStagingTest, CallerBufferReusableImmediately) {
  AsyncOptions options;
  options.staging_backend = std::make_shared<storage::MemoryBackend>();
  storage::ThrottleParams throttle;
  throttle.bandwidth = 4.0 * 1024 * 1024;
  throttle.time_scale = 1.0;
  auto pfs = storage::BackendStack::memory().throttled(throttle).build();
  auto conn = std::make_shared<AsyncConnector>(h5::File::create(pfs), options);
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {1024});
  std::vector<std::int32_t> buffer(1024);
  std::iota(buffer.begin(), buffer.end(), 0);
  auto req = conn->dataset_write(ds, h5::Selection::all(),
                                 std::as_bytes(std::span<const std::int32_t>(buffer)));
  std::fill(buffer.begin(), buffer.end(), -1);  // clobber immediately
  req->wait();
  auto stored = ds.read_vector<std::int32_t>(h5::Selection::all());
  for (int i = 0; i < 1024; ++i) EXPECT_EQ(stored[i], i);
  conn->close();
}

TEST(SsdStagingTest, SequentialWritesUseDistinctRegions) {
  AsyncOptions options;
  auto ssd = std::make_shared<storage::MemoryBackend>();
  options.staging_backend = ssd;
  auto conn = make_async(options);
  auto ds = conn->file()->root().create_dataset("d", h5::Datatype::kInt32, {8});
  for (std::int32_t round = 0; round < 4; ++round) {
    std::vector<std::int32_t> v(8, round);
    conn->dataset_write(ds, h5::Selection::all(),
                        std::as_bytes(std::span<const std::int32_t>(v)));
  }
  conn->wait_all();
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all())[0], 3);
  // Bump allocation: 4 writes x 32 bytes on the device.
  EXPECT_EQ(ssd->size(), 4u * 32);
  conn->close();
}

}  // namespace
}  // namespace apio::vol
