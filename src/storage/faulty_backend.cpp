#include "storage/faulty_backend.h"

#include <string>

#include "common/debug/invariant.h"
#include "common/error.h"

namespace apio::storage {
namespace {

bool ranges_intersect(std::uint64_t begin_a, std::uint64_t end_a,
                      std::uint64_t begin_b, std::uint64_t end_b) {
  return begin_a < end_b && begin_b < end_a;
}

}  // namespace

FaultyBackend::FaultyBackend(BackendPtr inner, FaultPlan plan)
    : inner_(std::move(inner)),
      plan_(plan),
      writes_left_(plan.fail_writes_after),
      reads_left_(plan.fail_reads_after),
      flushes_left_(plan.fail_flush ? 0 : plan.fail_flushes_after) {
  APIO_REQUIRE(inner_ != nullptr, "FaultyBackend requires an inner backend");
  if (plan_.fail_flush && plan_.fail_flushes_after < 0) {
    plan_.fail_flushes_after = 0;
  }
}

void FaultyBackend::maybe_fault(OpKind kind, std::uint64_t offset,
                                std::uint64_t bytes) {
  // Acquire pairs with the release store in heal(): a thread that sees
  // the healed flag also sees the freshly reset counters below.
  if (healed_.load(std::memory_order_acquire)) return;

  const char* op_name = "flush";
  std::int64_t countdown = -1;
  std::uint64_t every_n = 0;
  std::atomic<std::int64_t>* left = nullptr;
  std::atomic<std::uint64_t>* calls = nullptr;
  switch (kind) {
    case OpKind::kRead:
      op_name = "read";
      countdown = plan_.fail_reads_after;
      every_n = plan_.fail_every_n_reads;
      left = &reads_left_;
      calls = &read_calls_;
      break;
    case OpKind::kWrite:
      op_name = "write";
      countdown = plan_.fail_writes_after;
      every_n = plan_.fail_every_n_writes;
      left = &writes_left_;
      calls = &write_calls_;
      break;
    case OpKind::kFlush:
      countdown = plan_.fail_flushes_after;
      every_n = plan_.fail_every_n_flushes;
      left = &flushes_left_;
      calls = &flush_calls_;
      break;
  }

  bool fault = false;
  const char* pattern = "";
  if (countdown >= 0 && left->fetch_sub(1, std::memory_order_relaxed) <= 0) {
    fault = true;
    pattern = "countdown";
  }
  const std::uint64_t call =
      calls->fetch_add(1, std::memory_order_relaxed) + 1;
  if (!fault && every_n > 0 && call % every_n == 0) {
    fault = true;
    pattern = "every-n";
  }
  if (!fault && kind != OpKind::kFlush &&
      plan_.fault_offset_begin < plan_.fault_offset_end &&
      ranges_intersect(offset, offset + bytes, plan_.fault_offset_begin,
                       plan_.fault_offset_end)) {
    fault = true;
    pattern = "offset-range";
  }
  if (!fault) return;

  const std::int64_t injected =
      static_cast<std::int64_t>(faults_.fetch_add(1, std::memory_order_relaxed)) + 1;
  if (plan_.heal_after_faults >= 0 && injected >= plan_.heal_after_faults) {
    heal();
  }

  std::string message = std::string("injected ") + op_name + " fault (" +
                        pattern + ")";
  if (kind != OpKind::kFlush) {
    message += " at offset " + std::to_string(offset);
  }
  if (plan_.transient) throw TransientIoError(message);
  throw IoError(message);
}

void FaultyBackend::read(std::uint64_t offset, std::span<std::byte> out) {
  APIO_INVARIANT(offset + out.size() >= offset,
                 "read range overflows offset space");
  maybe_fault(OpKind::kRead, offset, out.size());
  inner_->read(offset, out);
  count_read(out.size());
}

void FaultyBackend::write(std::uint64_t offset, std::span<const std::byte> data) {
  maybe_fault(OpKind::kWrite, offset, data.size());
  inner_->write(offset, data);
  count_write(data.size());
}

void FaultyBackend::flush() {
  maybe_fault(OpKind::kFlush, 0, 0);
  inner_->flush();
  count_flush();
}

void FaultyBackend::reset_counters() {
  writes_left_.store(plan_.fail_writes_after, std::memory_order_relaxed);
  reads_left_.store(plan_.fail_reads_after, std::memory_order_relaxed);
  flushes_left_.store(plan_.fail_flushes_after, std::memory_order_relaxed);
  write_calls_.store(0, std::memory_order_relaxed);
  read_calls_.store(0, std::memory_order_relaxed);
  flush_calls_.store(0, std::memory_order_relaxed);
}

void FaultyBackend::heal() {
  // Reset first, publish second: the release on healed_ makes the reset
  // counters visible to any fault check that acquires the flag.
  reset_counters();
  healed_.store(true, std::memory_order_release);
}

void FaultyBackend::arm() { healed_.store(false, std::memory_order_release); }

void FaultyBackend::set_plan(FaultPlan plan) {
  plan_ = plan;
  if (plan_.fail_flush && plan_.fail_flushes_after < 0) {
    plan_.fail_flushes_after = 0;
  }
  reset_counters();
}

}  // namespace apio::storage
