#include "h5/dataspace.h"

#include "common/error.h"

namespace apio::h5 {
namespace {

std::uint64_t dim_or_one(const Dims& dims, std::size_t i) {
  return dims.empty() ? 1 : dims[i];
}

std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b, const char* what) {
  std::uint64_t r = 0;
  APIO_REQUIRE(!__builtin_mul_overflow(a, b, &r), what);
  return r;
}

std::uint64_t checked_add(std::uint64_t a, std::uint64_t b, const char* what) {
  std::uint64_t r = 0;
  APIO_REQUIRE(!__builtin_add_overflow(a, b, &r), what);
  return r;
}

}  // namespace

std::uint64_t Hyperslab::npoints() const {
  // Rank guards first: a block/stride list shorter than count would
  // index out of bounds below (dim_or_one only handles the empty case).
  APIO_REQUIRE(block.empty() || block.size() == count.size(),
               "hyperslab block rank mismatch");
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < count.size(); ++i) {
    const std::uint64_t per_dim = checked_mul(count[i], dim_or_one(block, i),
                                              "hyperslab point count overflows");
    n = checked_mul(n, per_dim, "hyperslab point count overflows");
  }
  return n;
}

Selection Selection::all() { return Selection{}; }

Selection Selection::hyperslab(Hyperslab slab) {
  Selection s;
  s.is_all_ = false;
  s.slab_ = std::move(slab);
  return s;
}

Selection Selection::offsets(Dims start, Dims count) {
  Hyperslab slab;
  slab.start = std::move(start);
  slab.count = std::move(count);
  return hyperslab(std::move(slab));
}

std::uint64_t Selection::npoints(const Dims& extent) const {
  if (is_all_) return num_elements(extent);
  return slab_.npoints();
}

void Selection::validate(const Dims& extent) const {
  if (is_all_) return;
  const std::size_t rank = extent.size();
  APIO_REQUIRE(slab_.start.size() == rank && slab_.count.size() == rank,
               "hyperslab rank does not match dataspace rank");
  APIO_REQUIRE(slab_.stride.empty() || slab_.stride.size() == rank,
               "hyperslab stride rank mismatch");
  APIO_REQUIRE(slab_.block.empty() || slab_.block.size() == rank,
               "hyperslab block rank mismatch");
  for (std::size_t i = 0; i < rank; ++i) {
    const std::uint64_t stride = dim_or_one(slab_.stride, i);
    const std::uint64_t block = dim_or_one(slab_.block, i);
    APIO_REQUIRE(stride >= 1, "hyperslab stride must be >= 1");
    APIO_REQUIRE(block >= 1, "hyperslab block must be >= 1");
    APIO_REQUIRE(block <= stride || slab_.count[i] <= 1,
                 "hyperslab blocks overlap (block > stride)");
    if (slab_.count[i] == 0) continue;
    // Checked arithmetic: a huge stride/count must report "exceeds
    // extent", not wrap to a small offset that passes the bound check
    // and reads/writes the wrong elements.
    const std::uint64_t span =
        checked_mul(slab_.count[i] - 1, stride, "hyperslab exceeds dataspace extent");
    const std::uint64_t last = checked_add(
        checked_add(slab_.start[i], span, "hyperslab exceeds dataspace extent"),
        block, "hyperslab exceeds dataspace extent");
    APIO_REQUIRE(last <= extent[i], "hyperslab exceeds dataspace extent");
  }
}

std::uint64_t num_elements(const Dims& extent) {
  std::uint64_t n = 1;
  for (std::uint64_t d : extent) {
    n = checked_mul(n, d, "dataspace element count overflows");
  }
  return n;
}

std::vector<std::uint64_t> row_pitches(const Dims& extent) {
  std::vector<std::uint64_t> pitch(extent.size(), 1);
  for (std::size_t i = extent.size(); i-- > 1;) {
    pitch[i - 1] = pitch[i] * extent[i];
  }
  return pitch;
}

namespace {

/// Merges adjacent runs before forwarding them: a hyperslab that covers
/// full trailing dimensions (e.g. whole samples of a [N, X, Y, Z]
/// dataset) otherwise decomposes into thousands of tiny per-row runs,
/// each paying a backend round-trip.
class RunCoalescer {
 public:
  explicit RunCoalescer(const std::function<void(std::uint64_t, std::uint64_t)>& fn)
      : fn_(fn) {}

  void add(std::uint64_t offset, std::uint64_t count) {
    if (pending_count_ > 0 && offset == pending_offset_ + pending_count_) {
      pending_count_ += count;
      return;
    }
    flush();
    pending_offset_ = offset;
    pending_count_ = count;
  }

  /// Emits the trailing run.  Must be called explicitly — emitting from
  /// the destructor would turn a throwing consumer (e.g. a failing
  /// backend write) into std::terminate.
  void finish() { flush(); }

 private:
  void flush() {
    if (pending_count_ > 0) fn_(pending_offset_, pending_count_);
    pending_count_ = 0;
  }

  const std::function<void(std::uint64_t, std::uint64_t)>& fn_;
  std::uint64_t pending_offset_ = 0;
  std::uint64_t pending_count_ = 0;
};

}  // namespace

void for_each_run(const Dims& extent, const Selection& selection,
                  const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  selection.validate(extent);
  const std::size_t rank = extent.size();

  if (selection.is_all() || rank == 0) {
    const std::uint64_t n = num_elements(extent);
    if (n > 0) fn(0, n);
    return;
  }

  const Hyperslab& slab = selection.slab();
  for (std::uint64_t c : slab.count) {
    if (c == 0) return;  // empty selection
  }

  const auto pitch = row_pitches(extent);
  const std::size_t last = rank - 1;
  const std::uint64_t last_stride = dim_or_one(slab.stride, last);
  const std::uint64_t last_block = dim_or_one(slab.block, last);
  // A fully packed last dimension collapses into one run per outer coord.
  const bool last_contiguous = (last_stride == last_block) || slab.count[last] == 1;

  // Odometer over all dims except the innermost; for each outer
  // coordinate tuple, emit the innermost run(s).  The coalescer merges
  // runs that happen to be file-adjacent (full trailing dimensions).
  RunCoalescer out(fn);
  std::function<void(std::size_t, std::uint64_t)> walk =
      [&](std::size_t dim, std::uint64_t base) {
        if (dim == last) {
          if (last_contiguous) {
            const std::uint64_t off = base + slab.start[last];
            out.add(off, slab.count[last] * last_block);
          } else {
            for (std::uint64_t b = 0; b < slab.count[last]; ++b) {
              const std::uint64_t off = base + slab.start[last] + b * last_stride;
              out.add(off, last_block);
            }
          }
          return;
        }
        const std::uint64_t stride = dim_or_one(slab.stride, dim);
        const std::uint64_t block = dim_or_one(slab.block, dim);
        for (std::uint64_t b = 0; b < slab.count[dim]; ++b) {
          for (std::uint64_t k = 0; k < block; ++k) {
            const std::uint64_t coord = slab.start[dim] + b * stride + k;
            walk(dim + 1, base + coord * pitch[dim]);
          }
        }
      };
  walk(0, 0);
  out.finish();
}

void for_each_row_run(const Dims& extent, const Selection& selection,
                      const std::function<void(const Dims&, std::uint64_t)>& fn) {
  selection.validate(extent);
  const std::size_t rank = extent.size();

  if (rank == 0) {
    fn(Dims{}, 1);
    return;
  }

  // Normalise "all" to a covering hyperslab so one code path remains.
  Hyperslab slab;
  if (selection.is_all()) {
    slab.start.assign(rank, 0);
    slab.count = extent;
  } else {
    slab = selection.slab();
  }
  for (std::uint64_t c : slab.count) {
    if (c == 0) return;
  }

  const std::size_t last = rank - 1;
  const std::uint64_t last_stride = dim_or_one(slab.stride, last);
  const std::uint64_t last_block = dim_or_one(slab.block, last);
  const bool last_contiguous = (last_stride == last_block) || slab.count[last] == 1;

  Dims coord(rank, 0);
  std::function<void(std::size_t)> walk = [&](std::size_t dim) {
    if (dim == last) {
      if (last_contiguous) {
        coord[last] = slab.start[last];
        fn(coord, slab.count[last] * last_block);
      } else {
        for (std::uint64_t b = 0; b < slab.count[last]; ++b) {
          coord[last] = slab.start[last] + b * last_stride;
          fn(coord, last_block);
        }
      }
      return;
    }
    const std::uint64_t stride = dim_or_one(slab.stride, dim);
    const std::uint64_t block = dim_or_one(slab.block, dim);
    for (std::uint64_t b = 0; b < slab.count[dim]; ++b) {
      for (std::uint64_t k = 0; k < block; ++k) {
        coord[dim] = slab.start[dim] + b * stride + k;
        walk(dim + 1);
      }
    }
  };
  walk(0);
}

}  // namespace apio::h5
