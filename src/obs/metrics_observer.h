// MetricsObserver: subscribes the metrics registry to the unified
// IoRecord stream.  Attach one to a connector (add_observer) and the
// registry accumulates byte counters, op counts and latency histograms
// for every container operation — the third consumer of the stream
// next to the model history and trace sinks.
#pragma once

#include "obs/metrics.h"
#include "obs/record.h"

namespace apio::obs {

class MetricsObserver final : public IoObserver {
 public:
  /// Metric names are "<prefix>.<metric>"; default prefix "io".
  explicit MetricsObserver(std::string prefix = "io");

  void on_io(const IoRecord& record) override;

  /// Counters aggregate per dataset path when detail is flowing; the
  /// registry keys stay stable without it.
  bool wants_detail() const override { return false; }

 private:
  Counter& bytes_written_;
  Counter& bytes_read_;
  Counter& writes_;
  Counter& reads_;
  Counter& prefetches_;
  Counter& flushes_;
  Counter& cache_hits_;
  Counter& async_ops_;
  Histogram& blocking_;
  Histogram& completion_;
};

}  // namespace apio::obs
