// Analytical bandwidth models of the two parallel file systems the
// paper measures: Summit's GPFS (Alpine) and Cori's Lustre file system.
//
// The reproduction cannot run on either machine, so the figure-shaping
// behaviour reported in the paper is captured in a small physical
// model.  For an aggregate transfer of `total_bytes` issued by `ranks`
// MPI ranks spread over `nodes` nodes:
//
//   t_io = t_open + c_meta * ranks + total_bytes / BW_eff
//   BW_eff = min(nodes * bw_node * eff(per_rank_bytes), bw_cap) * contention
//   eff(s) = s / (s + s_half)
//
// The three terms reproduce the three experimental regimes:
//   * the linear-then-capped BW_eff term gives the weak-scaling
//     saturation of sync I/O (VPIC-IO saturates at 128 Summit nodes /
//     32 Cori nodes, Fig. 3);
//   * the per-rank metadata/lock term gives the strong-scaling *decline*
//     of sync bandwidth on GPFS, where more writers on the same data
//     mean more token traffic (Castro/EQSIM on Summit, Fig. 4c/6);
//   * the eff() knee penalises small per-rank requests, which is why
//     strong-scaled small configurations achieve poor absolute sync
//     bandwidth on Lustre (Nyx small on Cori, Fig. 4b).
//
// The contention factor models full-system-level interference from
// other jobs (Sec. V-C / Fig. 8); it multiplies only the PFS bandwidth,
// never the node-local staging copy.
#pragma once

#include <cstdint>
#include <string>

namespace apio::storage {

enum class IoKind { kWrite, kRead };

/// Calibration parameters for one parallel file system.
struct PfsParams {
  std::string name;
  /// Achievable per-node bandwidth to the PFS, bytes/s.
  double node_bandwidth = 0.0;
  /// Job-level aggregate cap (stripe-count or allocation limited), bytes/s.
  double aggregate_cap = 0.0;
  /// Per-rank request size at which efficiency reaches 50 %, bytes.
  double per_rank_half_size = 0.0;
  /// Fixed per-I/O-phase latency (collective open, dataset create), s.
  double open_latency = 0.0;
  /// Metadata/lock-token cost per participating rank, s.
  double meta_per_rank = 0.0;
  /// Reads achieve this multiple of the write bandwidth.
  double read_bandwidth_factor = 1.1;
};

/// Deterministic PFS timing model (contention is an explicit input so
/// the caller controls the stochastic component).
class PfsModel {
 public:
  explicit PfsModel(PfsParams params);

  /// Seconds for an aggregate transfer.  `contention_factor` in (0, 1]
  /// scales the effective PFS bandwidth (1 = unloaded system).
  double io_seconds(std::uint64_t total_bytes, int ranks, int nodes, IoKind kind,
                    double contention_factor = 1.0) const;

  /// Aggregate bandwidth in bytes/s implied by io_seconds().
  double aggregate_bandwidth(std::uint64_t total_bytes, int ranks, int nodes,
                             IoKind kind, double contention_factor = 1.0) const;

  /// The effective bandwidth term alone (no latency/metadata), bytes/s.
  double effective_bandwidth(std::uint64_t total_bytes, int ranks, int nodes,
                             IoKind kind, double contention_factor = 1.0) const;

  const PfsParams& params() const { return params_; }

  /// Summit's Alpine GPFS: 2.5 TB/s system peak, workload-reactive
  /// allocation (no user striping), metadata cost grows with writer count.
  static PfsModel summit_gpfs();

  /// Cori's Lustre scratch with an explicit stripe count (NERSC
  /// "stripe_large" best practice = 72 OSTs, the paper's setting).
  static PfsModel cori_lustre(int stripe_count = 72);

 private:
  PfsParams params_;
};

/// Node-local staging-copy model: the "transactional overhead" of
/// Sec. III-B1.  A memcpy between two CPU DRAM buffers reaches a
/// constant bandwidth above ~32 MB; below that the copy cost is
/// dominated by the size-dependent term.
class MemcpyModel {
 public:
  MemcpyModel(double node_bandwidth, double half_size_bytes, double latency_seconds);

  /// Seconds for every rank on a node to stage `bytes_per_node` bytes
  /// into the asynchronous double buffer.  `per_rank_bytes` sets the
  /// efficiency of each individual copy.
  double copy_seconds(std::uint64_t bytes_per_node, std::uint64_t per_rank_bytes) const;

  /// Aggregate staging bandwidth over `nodes` nodes, bytes/s.
  double aggregate_bandwidth(std::uint64_t total_bytes, int ranks, int nodes) const;

  /// Seconds for the whole job's staging copy (all nodes in parallel).
  double transact_seconds(std::uint64_t total_bytes, int ranks, int nodes) const;

  double node_bandwidth() const { return node_bandwidth_; }

  static MemcpyModel summit_dram();
  static MemcpyModel cori_dram();

 private:
  double node_bandwidth_;
  double half_size_;
  double latency_;

  double efficiency(std::uint64_t per_rank_bytes) const;
};

}  // namespace apio::storage
