// The Virtual Object Layer: an abstract connector that intercepts
// container operations, mirroring HDF5's VOL architecture (Sec. II-A).
//
// Applications program against Connector; whether a dataset write is a
// blocking PFS transfer (NativeConnector) or an enqueued background
// operation behind a staging copy (AsyncConnector) is decided by which
// connector is plugged in — transparently, as with the HDF5 async VOL
// DLL the paper evaluates.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>

#include "h5/file.h"
#include "vol/observer.h"
#include "vol/request.h"

namespace apio::vol {

class Connector {
 public:
  virtual ~Connector() = default;

  /// The underlying container (metadata operations — create_group,
  /// create_dataset — go straight through; they are cheap and
  /// synchronous in the async VOL as well unless batched).
  virtual const h5::FilePtr& file() const = 0;

  /// Writes `data` into the selection of `ds`.  The returned request
  /// completes when the data is resident on the target storage.  For
  /// the async connector the call returns after the staging copy; the
  /// caller may reuse `data` immediately (the double-buffer guarantee).
  virtual RequestPtr dataset_write(h5::Dataset ds, const h5::Selection& selection,
                                   std::span<const std::byte> data) = 0;

  /// Reads the selection into `out`.  For the async connector the
  /// caller must keep `out` alive and untouched until the request
  /// completes, unless the read is served from the prefetch cache (then
  /// it completes immediately).
  virtual RequestPtr dataset_read(h5::Dataset ds, const h5::Selection& selection,
                                  std::span<std::byte> out) = 0;

  /// Hints that the selection will be read soon; the async connector
  /// pulls it into a node-local cache in the background (the
  /// prefetching path BD-CATS-IO exercises).  No-op on the native
  /// connector.
  virtual void prefetch(h5::Dataset ds, const h5::Selection& selection) = 0;

  /// Flushes container metadata and the backend.
  virtual RequestPtr flush() = 0;

  /// Blocks until every outstanding operation has completed.
  virtual void wait_all() = 0;

  /// Completes outstanding work, flushes and closes the container.
  virtual void close() = 0;

  /// Number of ranks the caller reports for IoRecords (for the model's
  /// scaling features).  Defaults to 1.  Atomic: the adaptive connector
  /// re-tags its inner connectors on every routed call, possibly from
  /// several application threads at once.
  void set_reported_ranks(int ranks) {
    reported_ranks_.store(ranks, std::memory_order_relaxed);
  }
  int reported_ranks() const {
    return reported_ranks_.load(std::memory_order_relaxed);
  }

  /// Appends an observer to the connector's chain (Fig. 2 feedback
  /// hooks, trace sinks, metrics bridges — any number of subscribers).
  /// Virtual so routing/interposer connectors (adaptive, trace,
  /// passthrough) forward subscriptions to the connectors that actually
  /// emit records.
  virtual void add_observer(IoObserverPtr observer) {
    observers_->add(std::move(observer));
  }

  /// Removes one previously added observer (by identity).
  virtual void remove_observer(const IoObserverPtr& observer) {
    observers_->remove(observer);
  }

  /// The connector's own observer chain.  Routing connectors keep their
  /// chain empty and forward add_observer() to their inner connectors.
  const CompositeObserverPtr& observer_chain() const { return observers_; }

 protected:
  /// Emission fast path: one relaxed load when nobody subscribed.
  bool has_observers() const { return !observers_->empty(); }

  /// True when some subscriber consumes dataset_path/selection; the
  /// connector skips building those strings otherwise.
  bool observers_want_detail() const { return observers_->wants_detail(); }

  void observe(const IoRecord& record) {
    if (!observers_->empty()) observers_->on_io(record);
  }

 private:
  CompositeObserverPtr observers_ = std::make_shared<CompositeObserver>();
  std::atomic<int> reported_ranks_{1};
};

using ConnectorPtr = std::shared_ptr<Connector>;

}  // namespace apio::vol
