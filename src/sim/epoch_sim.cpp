#include "sim/epoch_sim.h"

#include <algorithm>
#include <deque>

#include "common/error.h"

namespace apio::sim {

double RunResult::peak_bandwidth() const {
  double peak = 0.0;
  for (const auto& e : epochs) peak = std::max(peak, e.bandwidth);
  return peak;
}

double RunResult::mean_bandwidth() const {
  if (epochs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : epochs) sum += e.bandwidth;
  return sum / static_cast<double>(epochs.size());
}

double RunResult::total_blocking_seconds() const {
  double sum = 0.0;
  for (const auto& e : epochs) sum += e.io_blocking_seconds;
  return sum;
}

RunResult EpochSimulator::run(const RunConfig& config) const {
  APIO_REQUIRE(config.nodes >= 1, "run needs >= 1 node");
  APIO_REQUIRE(config.nodes <= spec_.max_nodes,
               "node count exceeds " + spec_.name + "'s size");
  APIO_REQUIRE(config.iterations >= 1, "run needs >= 1 iteration");
  APIO_REQUIRE(config.bytes_per_epoch > 0, "run needs a positive I/O size");
  APIO_REQUIRE(config.staging_queue_depth >= 1, "staging queue depth must be >= 1");

  const int nodes = config.nodes;
  const int ranks = nodes * spec_.ranks_per_node;
  const bool async = config.mode == model::IoMode::kAsync;

  Rng rng(config.seed);
  const ContentionModel contention =
      config.contention_sigma_override >= 0.0
          ? ContentionModel(config.contention_sigma_override,
                            config.contention_sigma_override == 0.0 ? 1.0 : 0.15)
          : spec_.contention;
  const double factor = contention.sample_run_factor(rng);

  RunResult result;
  result.nodes = nodes;
  result.ranks = ranks;
  result.bytes_per_epoch = config.bytes_per_epoch;
  result.contention_factor = factor;
  result.epochs.reserve(static_cast<std::size_t>(config.iterations));

  double now = config.app_init_seconds;
  if (async) now += config.async_init_seconds;

  // Background pipeline state (async only).
  double bg_busy_until = now;
  std::deque<double> in_flight;  // completion times of staged transfers

  const std::uint64_t per_rank_bytes =
      (config.bytes_per_epoch + ranks - 1) / static_cast<std::uint64_t>(ranks);

  APIO_REQUIRE(spec_.supports(config.staging_tier),
               spec_.name + " does not provide the requested staging tier");
  const std::uint64_t bytes_per_node =
      (config.bytes_per_epoch + nodes - 1) / static_cast<std::uint64_t>(nodes);

  auto transact_seconds = [&]() {
    double t = 0.0;
    switch (config.staging_tier) {
      case StagingTier::kDram:
        t = spec_.staging.transact_seconds(config.bytes_per_epoch, ranks, nodes);
        break;
      case StagingTier::kNodeLocalSsd:
        // Every node writes its share to its own NVMe in parallel.
        t = static_cast<double>(bytes_per_node) / spec_.ssd_node_bandwidth;
        break;
      case StagingTier::kBurstBuffer: {
        // The BB is a shared tier: per-node injection up to its cap.
        const double bw = std::min(nodes * spec_.bb_node_bandwidth,
                                   spec_.bb_aggregate_bandwidth);
        t = static_cast<double>(config.bytes_per_epoch) / bw;
        break;
      }
    }
    if (config.gpu_resident) {
      APIO_REQUIRE(spec_.has_gpus, spec_.name + " has no GPUs");
      t += spec_.gpu_link.transfer_seconds(per_rank_bytes, config.pinned_host_memory);
    }
    return t;
  };

  auto pfs_seconds = [&]() {
    return spec_.pfs.io_seconds(config.bytes_per_epoch, ranks, nodes,
                                config.io_kind, factor);
  };

  for (int iter = 0; iter < config.iterations; ++iter) {
    EpochRecord epoch;
    epoch.compute_seconds = config.compute_seconds;
    now += config.compute_seconds;

    const double io_start = now;
    if (!async) {
      const double t_io = pfs_seconds();
      now += t_io;
      epoch.io_blocking_seconds = t_io;
      epoch.io_completion_seconds = t_io;
    } else if (config.io_kind == storage::IoKind::kRead && config.prefetch_reads) {
      if (iter == 0) {
        // First read blocks: there was no prior compute phase to
        // prefetch behind (the VOL triggers prefetching after step 1).
        const double t_io = pfs_seconds();
        now += t_io;
        epoch.io_blocking_seconds = t_io;
        epoch.io_completion_seconds = t_io;
      } else {
        // Prefetch was issued during the previous compute phase; it may
        // still be in flight if compute was too short to cover it.
        const double prefetch_issue = io_start - config.compute_seconds;
        const double prefetch_start = std::max(prefetch_issue, bg_busy_until);
        const double prefetch_done = prefetch_start + pfs_seconds();
        bg_busy_until = prefetch_done;
        const double wait = std::max(0.0, prefetch_done - now);
        const double serve = transact_seconds();  // cache -> app buffer copy
        now += wait + serve;
        epoch.io_blocking_seconds = wait + serve;
        epoch.io_completion_seconds = now - io_start;
        epoch.served_from_cache = true;
      }
    } else {
      // Async write path (and non-prefetched async reads, which behave
      // identically from the caller's timing perspective).
      double wait = 0.0;
      while (!in_flight.empty() && in_flight.front() <= now) in_flight.pop_front();
      if (static_cast<int>(in_flight.size()) >= config.staging_queue_depth) {
        wait = std::max(0.0, in_flight.front() - now);
        now += wait;
        in_flight.pop_front();
      }
      const double t_transact = transact_seconds();
      now += t_transact;
      const double start_bg = std::max(now, bg_busy_until);
      const double done = start_bg + pfs_seconds();
      bg_busy_until = done;
      in_flight.push_back(done);
      epoch.io_blocking_seconds = wait + t_transact;
      epoch.io_completion_seconds = done - io_start;
    }

    epoch.bandwidth =
        static_cast<double>(config.bytes_per_epoch) / epoch.io_blocking_seconds;
    result.epochs.push_back(epoch);

    if (config.observer != nullptr) {
      vol::IoRecord record;
      record.op = config.io_kind == storage::IoKind::kWrite ? vol::IoOp::kWrite
                                                            : vol::IoOp::kRead;
      record.bytes = config.bytes_per_epoch;
      record.ranks = ranks;
      record.blocking_seconds = epoch.io_blocking_seconds;
      record.completion_seconds = epoch.io_completion_seconds;
      // The first read of a prefetched sequence is a synchronous
      // blocking operation (the paper's Sec. V-A2); report it as such so
      // it feeds the sync-rate fit, not the staging-rate fit.
      const bool first_blocking_read = async &&
                                       config.io_kind == storage::IoKind::kRead &&
                                       config.prefetch_reads && iter == 0;
      record.async = async && !first_blocking_read;
      record.cache_hit = epoch.served_from_cache;
      config.observer->on_io(record);
    }
  }

  if (async) {
    // Drain the background queue (wait_all + close) and terminate.
    now = std::max(now, bg_busy_until) + config.async_term_seconds;
  }
  result.total_seconds = now;
  return result;
}

}  // namespace apio::sim
