#include "tasking/pool.h"

#include "common/error.h"

namespace apio::tasking {

void Pool::push(TaskFn task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw StateError("Pool::push() on closed pool");
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::optional<TaskFn> Pool::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return std::nullopt;
  TaskFn task = std::move(tasks_.front());
  tasks_.pop_front();
  return task;
}

std::optional<TaskFn> Pool::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tasks_.empty()) return std::nullopt;
  TaskFn task = std::move(tasks_.front());
  tasks_.pop_front();
  return task;
}

void Pool::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Pool::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t Pool::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tasks_.size();
}

}  // namespace apio::tasking
