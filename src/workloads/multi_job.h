// Multi-tenant contention scenario: N concurrent jobs — checkpoint
// writers, a VPIC-style particle dump, a BD-CATS-style analysis reader
// — hammering ONE throttled Lustre model through a shared fair-share
// scheduler.  This is the coupled-pipeline case the paper's single-job
// measurements do not cover: without QoS, arrival order decides who
// gets the channel; with sched::FairScheduler underneath, each tenant's
// dispatched bytes track its weighted max-min share and priority-lane
// flushes stay fast while bulk lanes saturate.
//
// Each tenant runs on its own thread with its own vol::AsyncConnector
// (AsyncOptions::tenant set), all over one h5::File whose backend stack
// is memory -> throttled -> qos.  Per-tenant shares are sampled at the
// moment the FIRST tenant drains — every tenant is still backlogged up
// to that point, so the measured split reflects scheduling, not total
// issued work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "sched/fair_scheduler.h"

namespace apio::workloads {

struct TenantSpec {
  enum class Kind {
    kCheckpoint,  ///< per-step slab write + priority-lane flush
    kVpic,        ///< bulk slab writes (particle dump)
    kBdcats,      ///< bulk slab reads of a pre-populated dataset
  };

  std::string name;
  double weight = 1.0;
  Kind kind = Kind::kVpic;
  int steps = 32;
  std::uint64_t bytes_per_step = 64 * kKiB;
  /// Emulated compute between steps; 0 keeps the tenant saturating.
  double compute_seconds = 0.0;
  /// Concurrent ranks of this job: each gets its own AsyncConnector
  /// (and background stream) and works a strided subset of the steps.
  /// A single serial stream can keep at most ONE request in admission,
  /// so the tenant is absent from every grant decision taken while its
  /// stream post-processes — it can never win back-to-back grants and
  /// its share is structurally capped.  >= 2 keeps the tenant
  /// backlogged at the scheduler, which is what weighted max-min
  /// fairness is defined over (and what a real multi-rank job does).
  int ranks = 2;
};

struct MultiJobParams {
  std::vector<TenantSpec> tenants;
  /// Shared Lustre model (one ThrottledBackend channel).
  double pfs_bandwidth = 64.0 * kMiB;
  double pfs_latency = 1e-3;
  /// Wall-time scale of the throttle; keep small so runs stay fast.
  double time_scale = 1.0;
  /// Channel slots the scheduler grants at once (1 = one shared pipe).
  int max_inflight = 1;

  /// The paper-style reference contention case: three saturating
  /// tenants at weights 1:2:4 (checkpoint : vpic : bdcats), equal work
  /// each, over one 64 MiB/s channel.  The fairness gate in
  /// bench/fig_fairshare runs exactly this.
  static MultiJobParams reference();
};

struct TenantResult {
  std::string name;
  double weight = 1.0;
  std::uint64_t dispatched_bytes = 0;  ///< all lanes, at the snapshot
  std::uint64_t bulk_bytes = 0;        ///< kBulk lane, at the snapshot
  std::uint64_t priority_bytes = 0;    ///< kPriority lane, at the snapshot
  /// Fraction of all tenants' BULK-lane bytes at the snapshot.  The
  /// weighted max-min bound is defined over the bulk lane: priority
  /// traffic (flushes + their metadata writes) is deliberately granted
  /// ahead of bulk for latency, and its bytes are still charged to the
  /// tenant's virtual time, so a flush-heavy tenant pays for its
  /// metadata out of its own bulk entitlement rather than others'.
  double share = 0.0;
  double fair_share = 0.0;             ///< weight / sum(weights)
  double priority_p99_wait = 0.0;      ///< submit->grant, priority lane
  double bulk_p99_wait = 0.0;          ///< submit->grant, bulk lane
  std::uint64_t priority_ops = 0;
  std::uint64_t deadline_misses = 0;
};

struct MultiJobResult {
  std::vector<TenantResult> tenants;
  std::uint64_t total_dispatched_bytes = 0;  ///< named tenants, at snapshot
  double elapsed_seconds = 0.0;
  /// Full scheduler accounting at the end of the run (not the
  /// mid-contention snapshot the shares use).
  sched::SchedStats final_stats;

  /// max over tenants of |share - fair_share| / fair_share.
  double max_share_error() const;
  /// max over tenants (with priority traffic) of priority-lane p99 wait.
  double priority_p99_wait() const;
  std::string table() const;
};

/// Runs the scenario.  Throws InvalidArgumentError on an empty tenant
/// list or non-positive weights/steps.
MultiJobResult run_multi_job(const MultiJobParams& params);

}  // namespace apio::workloads
