// Tests for the runtime concurrency checkers (src/common/debug/):
// lock-rank order enforcement, thread-role tagging, and the invariant
// macros.  The abort paths are pinned with death tests, which fork and
// are unreliable under TSan — those are compiled out of sanitizer
// builds; the pass paths run everywhere.
#include <gtest/gtest.h>

#include <thread>

#include "common/debug/invariant.h"
#include "common/debug/lock_rank.h"
#include "common/debug/thread_role.h"

namespace apio::debug {
namespace {

#if defined(APIO_DEBUG_CHECKS) && !defined(__SANITIZE_THREAD__)
#define APIO_HAVE_DEATH_TESTS 1
#endif

TEST(LockRankTest, InOrderAcquisitionSucceeds) {
  RankedMutex<LockRank::kVolConnector> outer;
  RankedMutex<LockRank::kTaskingPool> inner;
  std::lock_guard outer_lock(outer);
  std::lock_guard inner_lock(inner);
#if defined(APIO_DEBUG_CHECKS)
  EXPECT_TRUE(detail::holds_rank(LockRank::kVolConnector));
  EXPECT_TRUE(detail::holds_rank(LockRank::kTaskingPool));
  EXPECT_FALSE(detail::holds_rank(LockRank::kCounters));
#endif
}

TEST(LockRankTest, ReleaseAllowsReacquisitionAtLowerRank) {
  RankedMutex<LockRank::kTaskingPool> high;
  RankedMutex<LockRank::kVolConnector> low;
  {
    std::lock_guard lock(high);
  }
  // With `high` released, taking the lower-ranked lock is legal again.
  std::lock_guard lock(low);
#if defined(APIO_DEBUG_CHECKS)
  EXPECT_FALSE(detail::holds_rank(LockRank::kTaskingPool));
  EXPECT_TRUE(detail::holds_rank(LockRank::kVolConnector));
#endif
}

TEST(LockRankTest, OutOfLifoReleaseIsTolerated) {
  RankedMutex<LockRank::kVolConnector> a;
  RankedMutex<LockRank::kPmpiBarrier> b;
  std::unique_lock lock_a(a);
  std::unique_lock lock_b(b);
  lock_a.unlock();  // released before b: legal with std::unique_lock
  lock_b.unlock();
#if defined(APIO_DEBUG_CHECKS)
  EXPECT_FALSE(detail::holds_rank(LockRank::kVolConnector));
  EXPECT_FALSE(detail::holds_rank(LockRank::kPmpiBarrier));
#endif
}

TEST(LockRankTest, TryLockRecordsRank) {
  RankedMutex<LockRank::kStorageBase> m;
  ASSERT_TRUE(m.try_lock());
#if defined(APIO_DEBUG_CHECKS)
  EXPECT_TRUE(detail::holds_rank(LockRank::kStorageBase));
#endif
  m.unlock();
#if defined(APIO_DEBUG_CHECKS)
  EXPECT_FALSE(detail::holds_rank(LockRank::kStorageBase));
#endif
}

TEST(LockRankTest, HeldRanksAreThreadLocal) {
  RankedMutex<LockRank::kTaskingEventual> m;
  std::lock_guard lock(m);
  std::thread other([] {
#if defined(APIO_DEBUG_CHECKS)
    EXPECT_FALSE(detail::holds_rank(LockRank::kTaskingEventual));
#endif
    // Another thread may take a lower rank: it holds nothing yet.
    RankedMutex<LockRank::kVolConnector> low;
    std::lock_guard inner(low);
  });
  other.join();
}

TEST(LockRankTest, RankNamesAreStable) {
  EXPECT_STREQ(lock_rank_name(LockRank::kVolConnector), "vol.connector");
  EXPECT_STREQ(lock_rank_name(LockRank::kTaskingPool), "tasking.pool");
  EXPECT_STREQ(lock_rank_name(LockRank::kCounters), "counters");
}

#if defined(APIO_HAVE_DEATH_TESTS)
TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RankedMutex<LockRank::kTaskingPool> inner;
        RankedMutex<LockRank::kVolConnector> outer;
        std::lock_guard inner_lock(inner);
        std::lock_guard outer_lock(outer);  // rank inversion: must abort
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankReacquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        RankedMutex<LockRank::kTaskingPool> a;
        RankedMutex<LockRank::kTaskingPool> b;
        std::lock_guard lock_a(a);
        std::lock_guard lock_b(b);  // equal rank: order undefined, abort
      },
      "lock-rank violation");
}
#endif  // APIO_HAVE_DEATH_TESTS

TEST(ThreadRoleTest, DefaultsToUnassigned) {
  EXPECT_EQ(current_thread_role(), ThreadRole::kUnassigned);
  EXPECT_EQ(current_thread_role_id(), -1);
  EXPECT_EQ(current_thread_role_domain(), nullptr);
}

TEST(ThreadRoleTest, ScopeSetsAndRestores) {
  const int domain_tag = 0;
  {
    ScopedThreadRole role(ThreadRole::kPmpiRank, 3, &domain_tag);
#if defined(APIO_DEBUG_CHECKS)
    EXPECT_EQ(current_thread_role(), ThreadRole::kPmpiRank);
    EXPECT_EQ(current_thread_role_id(), 3);
    EXPECT_EQ(current_thread_role_domain(), &domain_tag);
    {
      ScopedThreadRole nested(ThreadRole::kStream);
      EXPECT_EQ(current_thread_role(), ThreadRole::kStream);
    }
    EXPECT_EQ(current_thread_role(), ThreadRole::kPmpiRank);
    EXPECT_EQ(current_thread_role_id(), 3);
#endif
  }
  EXPECT_EQ(current_thread_role(), ThreadRole::kUnassigned);
}

TEST(ThreadRoleTest, RolesAreThreadLocal) {
  ScopedThreadRole role(ThreadRole::kStream);
  std::thread other([] {
    EXPECT_EQ(current_thread_role(), ThreadRole::kUnassigned);
  });
  other.join();
}

TEST(ThreadRoleTest, AssertOnStreamPassesOnStreamThread) {
  ScopedThreadRole role(ThreadRole::kStream);
  APIO_ASSERT_ON_STREAM();  // must not abort
}

TEST(ThreadRoleTest, AssertOnRankPassesForOwnerAndStrangers) {
  const int domain = 0;
  const int other_domain = 0;
  {
    // The owning rank thread passes.
    ScopedThreadRole role(ThreadRole::kPmpiRank, 2, &domain);
    APIO_ASSERT_ON_RANK(&domain, 2);
  }
  {
    // A rank thread of a *different* domain passes: split()
    // sub-communicators are legally driven by parent-world ranks.
    ScopedThreadRole role(ThreadRole::kPmpiRank, 0, &other_domain);
    APIO_ASSERT_ON_RANK(&domain, 2);
  }
  // Untagged application threads pass.
  APIO_ASSERT_ON_RANK(&domain, 2);
}

#if defined(APIO_HAVE_DEATH_TESTS)
TEST(ThreadRoleDeathTest, AssertOnStreamAbortsOffStream) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(APIO_ASSERT_ON_STREAM(), "thread-role violation");
}

TEST(ThreadRoleDeathTest, AssertOnRankAbortsOnWrongRank) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int domain = 0;
  EXPECT_DEATH(
      {
        ScopedThreadRole role(ThreadRole::kPmpiRank, 1, &domain);
        APIO_ASSERT_ON_RANK(&domain, 2);  // same world, wrong rank
      },
      "thread-role violation");
}

TEST(ThreadRoleDeathTest, AssertOnRankAbortsOnStream) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int domain = 0;
  EXPECT_DEATH(
      {
        ScopedThreadRole role(ThreadRole::kStream);
        APIO_ASSERT_ON_RANK(&domain, 0);  // a stream in a collective
      },
      "thread-role violation");
}

TEST(InvariantDeathTest, ViolatedInvariantAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(APIO_INVARIANT(1 + 1 == 3, "arithmetic drifted"),
               "arithmetic drifted");
}
#endif  // APIO_HAVE_DEATH_TESTS

TEST(InvariantTest, HoldingInvariantIsSilent) {
  APIO_INVARIANT(2 + 2 == 4, "never printed");
}

TEST(InvariantTest, ExpressionNotEvaluatedWhenCompiledOut) {
#if !defined(APIO_DEBUG_CHECKS)
  int calls = 0;
  auto count = [&calls] { return ++calls > 0; };
  APIO_INVARIANT(count(), "compiled out");
  EXPECT_EQ(calls, 0);
#else
  GTEST_SKIP() << "APIO_DEBUG_CHECKS is on: expressions are evaluated";
#endif
}

}  // namespace
}  // namespace apio::debug
