// BackendStack: fluent builder for backend decorator chains.
//
// Hand-nesting make_shared calls gets the decorator ORDER wrong
// silently — a resilient(qos(...)) stack retries *inside* its admission
// grant, hogging the shared channel for the whole backoff schedule.
// The builder makes the order part of the API:
//
//   auto pfs = storage::BackendStack::posix(path)
//                  .throttled(model)      // PFS timing model
//                  .resilient(policy)     // retries under the throttle
//                  .qos(scheduler)        // admission over the PFS tier
//                  .cached(cache)         // burst buffer outermost
//                  .build();
//
// Layer order (inner to outer) is leaf < throttled < resilient < qos <
// cached; each call checks (APIO_INVARIANT, so a debug-build abort)
// that it is applied outside every layer already present.  Skipping
// layers is fine; adding one twice or out of order is not.
//
// The cache sits OUTSIDE qos deliberately: cache hits and staged
// writes must bypass PFS admission and the throttle entirely (they
// never touch the PFS), while cache drains arrive at the inner tier
// as ordinary write_v/flush traffic — admitted, retried and throttled
// like any other PFS transfer.  Nesting a cache inside qos would
// spend admission slots on node-local staging copies.
#pragma once

#include <string>

#include "storage/backend.h"
#include "storage/cached_backend.h"
#include "storage/posix_backend.h"
#include "storage/qos_backend.h"
#include "storage/resilient_backend.h"
#include "storage/throttled_backend.h"

namespace apio::storage {

class BackendStack {
 public:
  /// Fresh in-memory leaf (tests, staging, modelled PFS under a throttle).
  static BackendStack memory();

  /// POSIX file leaf.
  static BackendStack posix(const std::string& path,
                            PosixBackend::Mode mode =
                                PosixBackend::Mode::kCreateTruncate);

  /// Adopts an existing backend as the leaf (e.g. a FaultyBackend the
  /// test keeps a handle to for fault planning).
  static BackendStack wrap(BackendPtr leaf);

  /// PFS timing model layer.
  BackendStack& throttled(ThrottleParams params);

  /// Retry/backoff/breaker layer.  `clock`/`sleeper` default to wall
  /// time; tests inject a resilience::ManualClock as both.
  BackendStack& resilient(ResilienceOptions options,
                          const Clock* clock = nullptr,
                          resilience::Sleeper* sleeper = nullptr);

  /// Fair-share admission layer over the PFS tier.
  BackendStack& qos(sched::FairSchedulerPtr scheduler, QosOptions options = {});

  /// Write-back burst-buffer tier; always outermost (hits bypass
  /// admission and throttle; drains pass through them).  `staging`
  /// defaults to a fresh in-memory backend.
  BackendStack& cached(CacheOptions options = {}, BackendPtr staging = nullptr);

  /// The finished chain.  The builder stays usable as a handle but adds
  /// no further layers below ones already applied.
  [[nodiscard]] BackendPtr build() const;

 private:
  /// Decorator order, inner to outer.  Each layer must be applied at a
  /// strictly higher stage than everything already present.
  enum class Stage : int {
    kLeaf = 0,
    kThrottled = 1,
    kResilient = 2,
    kQos = 3,
    kCached = 4,
  };

  explicit BackendStack(BackendPtr leaf);

  void require_order(Stage next, const char* layer);

  BackendPtr backend_;
  Stage stage_ = Stage::kLeaf;
};

}  // namespace apio::storage
