// TaskGroup: fork-join helper over a Scheduler.
#pragma once

#include <vector>

#include "tasking/eventual.h"
#include "tasking/scheduler.h"

namespace apio::tasking {

/// Collects eventuals from a burst of submissions and joins them.
/// Typical use:
///
///   TaskGroup group(scheduler);
///   for (...) group.run([=] { ... });
///   group.wait();   // rethrows the first failure
class TaskGroup {
 public:
  explicit TaskGroup(Scheduler& scheduler) : scheduler_(&scheduler) {}

  /// Submits a task into the group.
  void run(TaskFn fn) { eventuals_.push_back(scheduler_->submit(std::move(fn))); }

  /// Submits a task with dependencies into the group.
  void run_after(TaskFn fn, const std::vector<EventualPtr>& deps) {
    eventuals_.push_back(scheduler_->submit(std::move(fn), deps));
  }

  /// Waits for all tasks; rethrows the first error (submission order).
  /// The group can be reused afterwards.
  void wait() {
    auto pending = std::move(eventuals_);
    eventuals_.clear();
    wait_all(pending);
  }

  std::size_t size() const { return eventuals_.size(); }

 private:
  Scheduler* scheduler_;
  std::vector<EventualPtr> eventuals_;
};

}  // namespace apio::tasking
