// Tests for the chunk filter pipeline: codec round trips (including a
// property sweep over generated payload shapes), malformed-stream
// rejection, and filtered datasets end to end.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "h5/file.h"
#include "h5/filter.h"
#include "storage/memory_backend.h"

namespace apio::h5 {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(std::byte{static_cast<unsigned char>(v)});
  return out;
}

// ---------------------------------------------------------------------------
// Codec basics

TEST(FilterTest, NamesAndCodes) {
  EXPECT_EQ(filter_name(FilterId::kNone), "none");
  EXPECT_EQ(filter_name(FilterId::kRle), "rle");
  EXPECT_EQ(filter_name(FilterId::kLz), "lz");
  EXPECT_EQ(filter_from_code(1), FilterId::kRle);
  EXPECT_THROW(filter_from_code(9), FormatError);
}

TEST(FilterTest, NoneIsIdentity) {
  const auto raw = bytes_of({1, 2, 3});
  const auto enc = filter_encode(FilterId::kNone, raw);
  EXPECT_EQ(enc, raw);
  EXPECT_EQ(filter_decode(FilterId::kNone, enc, 3), raw);
  EXPECT_THROW(filter_decode(FilterId::kNone, enc, 4), FormatError);
}

TEST(FilterTest, RleCompressesZeroRuns) {
  std::vector<std::byte> raw(4096, std::byte{0});
  const auto enc = filter_encode(FilterId::kRle, raw);
  EXPECT_LT(enc.size(), raw.size() / 50);  // massive win on fill data
  EXPECT_EQ(filter_decode(FilterId::kRle, enc, raw.size()), raw);
}

TEST(FilterTest, LzCompressesRepeatingPattern) {
  std::vector<std::byte> raw;
  for (int i = 0; i < 512; ++i) {
    for (int j = 0; j < 16; ++j) raw.push_back(std::byte{static_cast<unsigned char>(j)});
  }
  const auto enc = filter_encode(FilterId::kLz, raw);
  EXPECT_LT(enc.size(), raw.size() / 4);
  EXPECT_EQ(filter_decode(FilterId::kLz, enc, raw.size()), raw);
}

TEST(FilterTest, EmptyInput) {
  for (auto id : {FilterId::kNone, FilterId::kRle, FilterId::kLz}) {
    const auto enc = filter_encode(id, {});
    EXPECT_EQ(filter_decode(id, enc, 0).size(), 0u);
  }
}

TEST(FilterTest, IncompressibleDataStaysWithinBound) {
  Rng rng(99);
  std::vector<std::byte> raw(8192);
  for (auto& b : raw) b = std::byte{static_cast<unsigned char>(rng.next_u64())};
  for (auto id : {FilterId::kRle, FilterId::kLz}) {
    const auto enc = filter_encode(id, raw);
    EXPECT_LE(enc.size(), filter_bound(id, raw.size()));
    EXPECT_EQ(filter_decode(id, enc, raw.size()), raw);
  }
}

TEST(FilterTest, MalformedStreamsRejected) {
  // Truncated literal run.
  EXPECT_THROW(filter_decode(FilterId::kRle, bytes_of({0x05, 1, 2}), 6), FormatError);
  // Truncated repeat run.
  EXPECT_THROW(filter_decode(FilterId::kRle, bytes_of({0x80}), 2), FormatError);
  // Stream decodes past the chunk size.
  EXPECT_THROW(filter_decode(FilterId::kRle, bytes_of({0xFF, 7}), 4), FormatError);
  // LZ match offset outside the produced window.
  EXPECT_THROW(filter_decode(FilterId::kLz, bytes_of({0x00, 9, 0x80, 5, 0}), 20),
               FormatError);
  // LZ truncated match token.
  EXPECT_THROW(filter_decode(FilterId::kLz, bytes_of({0x80, 1}), 10), FormatError);
  // Stored size above the worst case is rejected before decoding.
  std::vector<std::byte> oversized(1000, std::byte{0});
  EXPECT_THROW(filter_decode(FilterId::kRle, oversized, 4), FormatError);
}

// ---------------------------------------------------------------------------
// Property sweep: decode(encode(x)) == x over payload families.

struct PayloadCase {
  std::string name;
  std::vector<std::byte> data;
};

PayloadCase make_case(const std::string& name, std::size_t n,
                      const std::function<std::byte(std::size_t)>& gen) {
  PayloadCase c;
  c.name = name;
  c.data.reserve(n);
  for (std::size_t i = 0; i < n; ++i) c.data.push_back(gen(i));
  return c;
}

std::vector<PayloadCase> payload_cases() {
  Rng rng(7);
  std::vector<PayloadCase> cases;
  cases.push_back(make_case("zeros", 5000, [](std::size_t) { return std::byte{0}; }));
  cases.push_back(make_case("ramp", 5000, [](std::size_t i) {
    return std::byte{static_cast<unsigned char>(i & 0xFF)};
  }));
  cases.push_back(make_case("period3", 4099, [](std::size_t i) {
    return std::byte{static_cast<unsigned char>(i % 3)};
  }));
  cases.push_back(make_case("sparse", 6000, [](std::size_t i) {
    return std::byte{static_cast<unsigned char>(i % 97 == 0 ? 0xAB : 0)};
  }));
  auto noise = std::make_shared<Rng>(12345);
  cases.push_back(make_case("random", 4096, [noise](std::size_t) {
    return std::byte{static_cast<unsigned char>(noise->next_u64())};
  }));
  cases.push_back(make_case("single", 1, [](std::size_t) { return std::byte{42}; }));
  cases.push_back(make_case("floatlike", 8192, [](std::size_t i) {
    // IEEE-754 float arrays: repeating exponent bytes, varying mantissa.
    return std::byte{static_cast<unsigned char>((i % 4 == 3) ? 0x41 : (i * 13) & 0xFF)};
  }));
  return cases;
}

class FilterPropertyTest
    : public ::testing::TestWithParam<std::tuple<FilterId, int>> {};

TEST_P(FilterPropertyTest, RoundTrips) {
  const auto [id, case_index] = GetParam();
  const auto cases = payload_cases();
  const auto& payload = cases[static_cast<std::size_t>(case_index)];
  const auto enc = filter_encode(id, payload.data);
  EXPECT_LE(enc.size(), filter_bound(id, payload.data.size())) << payload.name;
  EXPECT_EQ(filter_decode(id, enc, payload.data.size()), payload.data) << payload.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FilterPropertyTest,
    ::testing::Combine(::testing::Values(FilterId::kRle, FilterId::kLz),
                       ::testing::Range(0, 7)),
    [](const auto& info) {
      const auto cases = payload_cases();
      return filter_name(std::get<0>(info.param)) + "_" +
             cases[static_cast<std::size_t>(std::get<1>(info.param))].name;
    });

// ---------------------------------------------------------------------------
// Filtered datasets end to end

class FilteredDatasetTest : public ::testing::TestWithParam<FilterId> {};

TEST_P(FilteredDatasetTest, FullRoundTrip) {
  auto file = File::create(std::make_shared<storage::MemoryBackend>());
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {16, 16},
      DatasetCreateProps::chunked({5, 7}, GetParam()));
  EXPECT_EQ(ds.filter(), GetParam());
  std::vector<std::int32_t> values(256);
  std::iota(values.begin(), values.end(), -100);
  ds.write<std::int32_t>(Selection::all(), values);
  EXPECT_EQ(ds.read_vector<std::int32_t>(Selection::all()), values);
}

TEST_P(FilteredDatasetTest, PartialOverwriteRmw) {
  auto file = File::create(std::make_shared<storage::MemoryBackend>());
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {8, 8}, DatasetCreateProps::chunked({8, 8}, GetParam()));
  std::vector<std::int32_t> zeros(64, 0);
  ds.write<std::int32_t>(Selection::all(), zeros);
  const std::vector<std::int32_t> patch{7, 8, 9, 10};
  ds.write<std::int32_t>(Selection::offsets({2, 2}, {2, 2}), patch);
  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all[2 * 8 + 2], 7);
  EXPECT_EQ(all[3 * 8 + 3], 10);
  EXPECT_EQ(all[0], 0);
}

TEST_P(FilteredDatasetTest, UnwrittenChunksReadZero) {
  auto file = File::create(std::make_shared<storage::MemoryBackend>());
  auto ds = file->root().create_dataset(
      "d", Datatype::kFloat32, {10}, DatasetCreateProps::chunked({4}, GetParam()));
  const std::vector<float> first{1, 2, 3, 4};
  ds.write<float>(Selection::offsets({0}, {4}), first);
  auto all = ds.read_vector<float>(Selection::all());
  EXPECT_EQ(all[0], 1.0f);
  EXPECT_EQ(all[9], 0.0f);
}

TEST_P(FilteredDatasetTest, PersistsAcrossReopen) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  std::vector<double> values(100);
  std::iota(values.begin(), values.end(), 0.5);
  {
    auto file = File::create(backend);
    auto ds = file->root().create_dataset(
        "d", Datatype::kFloat64, {100}, DatasetCreateProps::chunked({30}, GetParam()));
    ds.write<double>(Selection::all(), values);
    file->close();
  }
  auto file = File::open(backend);
  auto ds = file->root().open_dataset("d");
  EXPECT_EQ(ds.filter(), GetParam());
  EXPECT_EQ(ds.read_vector<double>(Selection::all()), values);
}

TEST_P(FilteredDatasetTest, RepeatedOverwritesGrowAndShrinkChunks) {
  // Alternate incompressible and compressible contents: the chunk must
  // survive in-place rewrites and relocations.
  auto file = File::create(std::make_shared<storage::MemoryBackend>());
  auto ds = file->root().create_dataset(
      "d", Datatype::kUInt8, {4096}, DatasetCreateProps::chunked({4096}, GetParam()));
  Rng rng(5);
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint8_t> payload(4096);
    if (round % 2 == 0) {
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    } else {
      std::fill(payload.begin(), payload.end(), static_cast<std::uint8_t>(round));
    }
    ds.write<std::uint8_t>(Selection::all(), payload);
    EXPECT_EQ(ds.read_vector<std::uint8_t>(Selection::all()), payload) << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFilters, FilteredDatasetTest,
                         ::testing::Values(FilterId::kNone, FilterId::kRle,
                                           FilterId::kLz),
                         [](const auto& info) { return filter_name(info.param); });

TEST(FilteredDatasetTest2, FilterOnContiguousRejected) {
  auto file = File::create(std::make_shared<storage::MemoryBackend>());
  DatasetCreateProps props;
  props.filter = FilterId::kLz;
  EXPECT_THROW(file->root().create_dataset("d", Datatype::kInt8, {4}, props),
               InvalidArgumentError);
}

TEST(FilteredDatasetTest2, CompressionActuallyShrinksStoredBytes) {
  // Zero-heavy 1 MiB dataset through RLE: the backend must hold far
  // fewer raw-data bytes than the logical size.
  auto backend = std::make_shared<storage::MemoryBackend>();
  auto file = File::create(backend);
  auto ds = file->root().create_dataset(
      "d", Datatype::kUInt8, {1u << 20},
      DatasetCreateProps::chunked({1u << 16}, FilterId::kRle));
  std::vector<std::uint8_t> payload(1u << 20, 0);
  for (std::size_t i = 0; i < payload.size(); i += 1024) payload[i] = 1;
  ds.write<std::uint8_t>(Selection::all(), payload);
  file->flush();
  EXPECT_LT(backend->size(), (1u << 20) / 8);
}

}  // namespace
}  // namespace apio::h5
