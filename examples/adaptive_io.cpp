// Adaptive I/O example: the Fig. 2 feedback loop in action.
//
// An iterative application runs 12 epochs whose compute phase shrinks
// over time (a strong-scaling-like drift).  The ModeAdvisor observes
// every transfer through the connector's IoObserver hook, refits its
// rate models, and picks sync or async per upcoming I/O phase.  Early
// epochs explore (sync first to establish the baseline, then async);
// later epochs exploit the fitted model, and when the compute phase
// becomes too short to amortise the staging copy the advisor switches
// back to synchronous I/O — the paper's motivating scenario (Sec. II-B).
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/units.h"
#include "model/advisor.h"
#include "storage/memory_backend.h"
#include "storage/backend_stack.h"
#include "vol/async_connector.h"
#include "vol/native_connector.h"

int main() {
  using namespace apio;

  // A shared throttled "PFS" under both connectors.
  storage::ThrottleParams throttle;
  throttle.bandwidth = 48.0 * kMiB;
  throttle.time_scale = 1.0;
  auto backend = storage::BackendStack::memory().throttled(throttle).build();
  auto file = h5::File::create(backend);

  auto advisor = std::make_shared<model::ModeAdvisor>();
  vol::NativeConnector sync_conn(file);
  vol::AsyncConnector async_conn(file);
  sync_conn.add_observer(advisor);
  async_conn.add_observer(advisor);

  constexpr std::uint64_t kBaseBytes = 768 * kKiB;
  constexpr int kEpochs = 12;
  // Checkpoint sizes vary across epochs (1x..3x) so the rate fits have
  // a real size axis to regress over.
  auto epoch_bytes = [](int epoch) {
    return kBaseBytes * static_cast<std::uint64_t>(1 + epoch % 3);
  };
  std::uint64_t total_bytes = 0;
  for (int e = 0; e < kEpochs; ++e) total_bytes += epoch_bytes(e);
  auto ds = file->root().create_dataset("checkpoint", h5::Datatype::kUInt8,
                                        {total_bytes});
  std::vector<std::uint8_t> payload(3 * kBaseBytes, 7);

  std::printf("%6s %12s %10s %12s %14s | %s\n", "epoch", "compute [s]", "size",
              "mode", "io block [s]", "advisor state");
  std::uint64_t offset = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    // Compute phase shrinks 0.30 s -> ~0.01 s over the run.
    const double compute = 0.30 * std::pow(0.72, epoch);
    std::this_thread::sleep_for(std::chrono::duration<double>(compute));
    advisor->record_compute(compute);

    const std::uint64_t bytes = epoch_bytes(epoch);
    const model::IoMode mode = advisor->recommend(bytes, 1);
    const h5::Selection slab = h5::Selection::offsets({offset}, {bytes});
    offset += bytes;
    const auto view =
        std::span<const std::uint8_t>(payload.data(), static_cast<std::size_t>(bytes));

    const auto t0 = std::chrono::steady_clock::now();
    if (mode == model::IoMode::kSync) {
      sync_conn.dataset_write(ds, slab, std::as_bytes(view));
    } else {
      async_conn.dataset_write(ds, slab, std::as_bytes(view));
    }
    const double blocked =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    std::string state;
    if (!advisor->sync_ready()) state = "exploring sync baseline";
    else if (!advisor->async_ready()) state = "exploring async";
    else {
      const auto scenario = advisor->predict_scenario(bytes, 1);
      state = "exploiting model (predicts " + model::to_string(scenario) + ")";
    }
    std::printf("%6d %12.3f %10s %12s %14.4f | %s\n", epoch, compute,
                format_bytes(bytes).c_str(), model::to_string(mode).c_str(), blocked,
                state.c_str());
  }

  async_conn.wait_all();
  std::printf("\nfitted model: r^2(sync)=%.2f r^2(async)=%.2f over %zu samples\n",
              advisor->sync_r_squared(), advisor->async_r_squared(),
              advisor->history().size());
  async_conn.close();
  return 0;
}
