#include "vol/event_set.h"

#include "common/error.h"

namespace apio::vol {

std::string EventError::to_string() const {
  std::string line = info.to_string() + ": " + message;
  line += " [category=" + (category.empty() ? "unknown" : category);
  line += ", attempts=" + std::to_string(attempts);
  if (deadline_exhausted) line += ", deadline-exhausted";
  line += "]";
  return line;
}

void EventSet::insert(RequestPtr request) {
  APIO_REQUIRE(request != nullptr, "EventSet::insert(null)");
  std::lock_guard lock(mutex_);
  pending_.push_back(std::move(request));
}

std::size_t EventSet::size() const {
  std::lock_guard lock(mutex_);
  return pending_.size();
}

bool EventSet::test() const {
  std::lock_guard lock(mutex_);
  for (const auto& r : pending_) {
    if (!r->test()) return false;
  }
  return true;
}

void EventSet::wait() {
  std::vector<RequestPtr> batch;
  {
    std::lock_guard lock(mutex_);
    batch.swap(pending_);
  }
  std::vector<EventError> new_errors;
  std::vector<std::exception_ptr> new_raw;
  for (auto& r : batch) {
    try {
      r->wait();
    } catch (...) {
      new_raw.push_back(std::current_exception());
      EventError err;
      err.info = r->info();
      err.message = apio::error_message(new_raw.back());
      err.category = apio::error_category(new_raw.back());
      err.attempts = r->attempts();
      err.deadline_exhausted = r->deadline_exhausted();
      new_errors.push_back(std::move(err));
    }
  }
  std::lock_guard lock(mutex_);
  errors_.insert(errors_.end(), std::make_move_iterator(new_errors.begin()),
                 std::make_move_iterator(new_errors.end()));
  raw_errors_.insert(raw_errors_.end(), new_raw.begin(), new_raw.end());
}

std::size_t EventSet::num_errors() const {
  std::lock_guard lock(mutex_);
  return errors_.size();
}

std::vector<EventError> EventSet::errors() const {
  std::lock_guard lock(mutex_);
  return errors_;
}

std::vector<std::string> EventSet::error_messages() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> messages;
  messages.reserve(errors_.size());
  for (const auto& e : errors_) messages.push_back(e.to_string());
  return messages;
}

void EventSet::rethrow_first_error() const {
  std::lock_guard lock(mutex_);
  if (!raw_errors_.empty()) std::rethrow_exception(raw_errors_.front());
}

void EventSet::clear() {
  std::lock_guard lock(mutex_);
  pending_.clear();
  errors_.clear();
  raw_errors_.clear();
}

}  // namespace apio::vol
