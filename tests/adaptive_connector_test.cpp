// Tests for the adaptive connector: exploration, routing, correctness
// under mode switches, and convergence to the oracle-best mode.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "common/units.h"
#include "storage/memory_backend.h"
#include "storage/backend_stack.h"
#include "vol/adaptive_connector.h"

namespace apio::vol {
namespace {

storage::BackendPtr slow_pfs(double bandwidth) {
  storage::ThrottleParams params;
  params.bandwidth = bandwidth;
  params.time_scale = 1.0;
  return storage::BackendStack::memory().throttled(params).build();
}

TEST(AdaptiveConnectorTest, DataCorrectAcrossModeSwitches) {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  AdaptiveConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {256});

  for (int epoch = 0; epoch < 16; ++epoch) {
    connector.on_compute_phase(0.001 * (epoch % 4));
    std::vector<std::int32_t> values(16);
    std::iota(values.begin(), values.end(), epoch * 16);
    connector
        .dataset_write(
            ds, h5::Selection::offsets({static_cast<std::uint64_t>(epoch) * 16}, {16}),
            std::as_bytes(std::span<const std::int32_t>(values)))
        ->wait();
  }
  connector.wait_all();
  auto all = ds.read_vector<std::int32_t>(h5::Selection::all());
  for (int i = 0; i < 256; ++i) EXPECT_EQ(all[i], i);
  connector.close();
}

TEST(AdaptiveConnectorTest, ExploresBothModes) {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  AdaptiveConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {64 * 1024});
  std::vector<std::uint8_t> chunk(4 * 1024, 1);
  for (int i = 0; i < 16; ++i) {
    connector.on_compute_phase(0.001);
    connector.dataset_write(
        ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * chunk.size()},
                                   {chunk.size()}),
        std::as_bytes(std::span<const std::uint8_t>(chunk)));
  }
  connector.wait_all();
  const auto stats = connector.adaptive_stats();
  EXPECT_GT(stats.writes_sync, 0u);   // sync baseline explored first
  EXPECT_GT(stats.writes_async, 0u);  // then async
  connector.close();
}

TEST(AdaptiveConnectorTest, ConvergesToAsyncWhenComputeCoversIo) {
  // Slow PFS, ample compute: after exploration every write must route
  // async.
  auto file = h5::File::create(slow_pfs(16.0 * kMiB));
  AdaptiveConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {32u * 256 * 1024});
  std::vector<std::uint8_t> chunk(256 * 1024, 1);

  model::IoMode last_mode = model::IoMode::kSync;
  for (int i = 0; i < 10; ++i) {
    // Simulated compute phase (the paper's t_comp).
    std::this_thread::sleep_for(  // apio-lint: allow(no-test-sleep)
        std::chrono::milliseconds(40));
    connector.on_compute_phase(0.040);
    last_mode = connector.planned_mode(chunk.size());
    connector.dataset_write(
        ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * chunk.size()},
                                   {chunk.size()}),
        std::as_bytes(std::span<const std::uint8_t>(chunk)));
  }
  connector.wait_all();
  EXPECT_EQ(last_mode, model::IoMode::kAsync);
  EXPECT_GE(connector.adaptive_stats().writes_async, 5u);
  connector.close();
}

TEST(AdaptiveConnectorTest, FallsBackToSyncWhenNothingToOverlap) {
  // Fast storage, negligible compute: staging is pure overhead and the
  // advisor must settle on sync.
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  AdaptiveConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {64u << 20});
  std::vector<std::uint8_t> chunk(2 << 20, 1);  // 2 MiB: memcpy cost visible

  model::IoMode last_mode = model::IoMode::kAsync;
  for (int i = 0; i < 12; ++i) {
    connector.on_compute_phase(1e-6);
    last_mode = connector.planned_mode(chunk.size());
    connector
        .dataset_write(
            ds,
            h5::Selection::offsets({static_cast<std::uint64_t>(i) * chunk.size()},
                                   {chunk.size()}),
            std::as_bytes(std::span<const std::uint8_t>(chunk)))
        ->wait();
  }
  connector.wait_all();
  EXPECT_EQ(last_mode, model::IoMode::kSync);
  connector.close();
}

TEST(AdaptiveConnectorTest, PrefetchedReadsServeFromCache) {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  AdaptiveConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {64});
  std::vector<std::int32_t> values(64);
  std::iota(values.begin(), values.end(), 0);
  connector.dataset_write(ds, h5::Selection::all(),
                          std::as_bytes(std::span<const std::int32_t>(values)));
  connector.wait_all();

  connector.prefetch(ds, h5::Selection::all());
  connector.wait_all();
  // Teach the advisor that compute exists so reads may route async.
  for (int i = 0; i < 4; ++i) connector.on_compute_phase(0.5);

  std::vector<std::int32_t> out(64);
  connector.dataset_read(ds, h5::Selection::all(),
                         std::as_writable_bytes(std::span<std::int32_t>(out)));
  EXPECT_EQ(out, values);
  connector.close();
}

TEST(AdaptiveConnectorTest, SharedAdvisorStartsWarm) {
  // A pre-trained advisor (e.g. restored via save_state) skips the
  // exploration phase entirely.
  auto advisor = std::make_shared<model::ModeAdvisor>();
  for (int i = 1; i <= 6; ++i) {
    vol::IoRecord sync_rec;
    sync_rec.bytes = static_cast<std::uint64_t>(i) * 100000;
    sync_rec.ranks = 1;
    sync_rec.blocking_seconds = static_cast<double>(sync_rec.bytes) / 1e7;  // slow PFS
    sync_rec.completion_seconds = sync_rec.blocking_seconds;
    sync_rec.async = false;
    advisor->on_io(sync_rec);
    auto async_rec = sync_rec;
    async_rec.blocking_seconds = static_cast<double>(sync_rec.bytes) / 1e10;
    async_rec.async = true;
    advisor->on_io(async_rec);
  }
  advisor->record_compute(1.0);

  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  AdaptiveConnector connector(file, advisor);
  EXPECT_EQ(connector.planned_mode(500000), model::IoMode::kAsync);
  connector.close();
}

TEST(AdaptiveConnectorTest, FlushDrainsAsyncQueueFirst) {
  auto file = h5::File::create(std::make_shared<storage::MemoryBackend>());
  AdaptiveConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};
  connector.dataset_write(ds, h5::Selection::all(),
                          std::as_bytes(std::span<const std::int32_t>(values)));
  auto req = connector.flush();
  req->wait();
  // After flush the data is durable in the (memory) backend via the
  // reopened view.
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()), values);
  connector.close();
}

}  // namespace
}  // namespace apio::vol
