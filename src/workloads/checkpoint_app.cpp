#include "workloads/checkpoint_app.h"

#include "common/clock.h"
#include "common/error.h"
#include "obs/epoch_analyzer.h"
#include "vol/event_set.h"
#include "workloads/workload_common.h"

namespace apio::workloads {

double CheckpointRunResult::peak_bandwidth() const {
  double peak = 0.0;
  for (double t : checkpoint_io_seconds) {
    if (t > 0.0) {
      peak = std::max(peak, static_cast<double>(bytes_per_checkpoint) / t);
    }
  }
  return peak;
}

double CheckpointRunResult::mean_bandwidth() const {
  if (checkpoint_io_seconds.empty()) return 0.0;
  double sum = 0.0;
  for (double t : checkpoint_io_seconds) {
    sum += static_cast<double>(bytes_per_checkpoint) / t;
  }
  return sum / static_cast<double>(checkpoint_io_seconds.size());
}

CheckpointRunResult run_checkpoint_app(
    vol::Connector& connector, pmpi::Communicator& comm,
    const CheckpointSchedule& schedule, std::uint64_t local_bytes_per_checkpoint,
    const std::function<void(int)>& create_meta,
    const std::function<double(int, std::vector<vol::RequestPtr>&)>& write) {
  APIO_REQUIRE(schedule.checkpoints >= 1, "need at least one checkpoint");
  APIO_REQUIRE(schedule.steps_per_checkpoint >= 1, "need >= 1 step per checkpoint");
  WallClock clock;
  const double t_start = clock.now();

  CheckpointRunResult result;
  result.bytes_per_checkpoint = comm.allreduce_sum(local_bytes_per_checkpoint);

  std::vector<vol::RequestPtr> outstanding;
  for (int c = 0; c < schedule.checkpoints; ++c) {
    // One model epoch per checkpoint: the compute phase covers the
    // simulation steps between I/O phases (epoch-analyzer markers).
    // Proxies that do real computation inside `write` (e.g. EQSIM's
    // wave stencil) set seconds_per_step to zero; skipping the marker
    // then lets the analyzer fall back to "compute ends at the first
    // I/O issue", which brackets that embedded compute correctly.
    obs::EpochScope epoch(c);
    if (schedule.seconds_per_step > 0.0) {
      simulated_compute(schedule.seconds_per_step * schedule.steps_per_checkpoint);
      epoch.compute_done();
    }

    if (comm.rank() == 0) create_meta(c);
    comm.barrier();

    const double blocking = write(c, outstanding);
    const double phase_io = comm.allreduce_max(blocking);
    if (comm.rank() == 0) result.checkpoint_io_seconds.push_back(phase_io);
    comm.barrier();
  }

  // Degraded-mode drain: collect failures through an EventSet (H5ESwait
  // semantics) instead of letting the first failed request abort the
  // run — the surviving checkpoints are still valid.
  vol::EventSet drain;
  for (auto& req : outstanding) drain.insert(req);
  drain.wait();
  result.local_errors = drain.error_messages();
  result.failed_requests =
      comm.allreduce_sum(static_cast<std::uint64_t>(drain.num_errors()));
  comm.barrier();
  result.total_seconds = clock.now() - t_start;

  std::uint64_t n = comm.rank() == 0 ? result.checkpoint_io_seconds.size() : 0;
  n = comm.allreduce_max(n);
  result.checkpoint_io_seconds.resize(n);
  comm.bcast(std::span<double>(result.checkpoint_io_seconds), 0);
  return result;
}

}  // namespace apio::workloads
