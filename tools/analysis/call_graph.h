// Heuristic function/call-graph extraction over the shared source
// model, for apio_analyze's flow passes.
//
// The extractor walks the token stream of every file tracking a scope
// stack (namespace / class / enum / function / block).  It records:
//
//   * class definitions, their base classes, and namespace-scope type
//     aliases (`using FilePtr = std::shared_ptr<File>` maps FilePtr to
//     File), giving the resolver a coarse type environment;
//   * function definitions, with the enclosing class (or the class
//     named in an out-of-line `Cls::member` definition);
//   * member/local/parameter variables whose declared type names a
//     known class (directly, through a smart pointer, or through an
//     alias) — so `inner_->write()` resolves into the Backend
//     hierarchy while `writes_.size()` resolves to nothing;
//   * every call site inside a function body, with the receiver token
//     (`x` in `x->f()`), the qualifier (`detail` in `detail::f()`),
//     whether the result is discarded as a whole statement, and the
//     set of lock ranks held at the call;
//   * RankedMutex<LockRank::kX> member declarations (including via
//     class-local `using` aliases) and the lock_guard/unique_lock/
//     scoped_lock acquisition sites against them, scoped to the
//     enclosing block so "while-holding" edges are per call site.
//     Holds do not leak into lambda bodies: a continuation built under
//     a lock runs later, outside it;
//   * condition-variable member names, so `cv.wait(lock)` is a
//     primitive blocking site rather than a call to Eventual::wait;
//   * APIO_ASSERT_ON_STREAM / APIO_ASSERT_ON_RANK sites, which seed
//     the thread-context pass.
//
// Calls resolve by name plus the coarse type environment: a receiver
// with a known class type restricts candidates to that class and its
// (transitive) derived classes — virtual dispatch through a base
// pointer sees every override; a receiver whose type is unknown (std
// containers, spans, locals of library types) resolves to nothing; a
// receiver-less call inside a member function prefers a same-class
// member (`run(...)` in ResilientBackend::write is its private run,
// not every run() in the repo).  Remaining imprecision is documented
// in DESIGN.md "Static analysis" and is waivable per line.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/source_model.h"

namespace apio::analysis {

/// The global lock order parsed from src/common/debug/lock_rank.h:
/// enumerator name ("kVolConnector") to its declared integer rank.
struct LockRankTable {
  std::map<std::string, int> value;

  /// Parses `enum class LockRank` enumerators from the header's
  /// stripped code lines.  Returns false when none were found.
  bool load(const SourceFile& header);

  int rank_of(const std::string& name) const {
    auto it = value.find(name);
    return it == value.end() ? -1 : it->second;
  }
};

/// One RankedMutex member: `cls` is the enclosing class ("" at
/// namespace scope), `rank` the LockRank enumerator name.
struct MutexVar {
  std::string cls;
  std::string name;
  std::string rank;
};

/// A lock acquisition inside a function, with the ranks already held
/// when it runs (for direct-inversion checks).
struct AcquireSite {
  std::string rank;
  int line = 0;
  std::vector<std::string> held_before;
};

/// A call site inside a function body.
struct CallSite {
  std::string name;           ///< simple callee name
  std::string receiver;       ///< `x` in x.f() / x->f(); "" when none
  std::string receiver_type;  ///< class of the receiver when a local/param
                              ///< declaration pinned it; "" = unknown here
                              ///< (member lookup happens at resolve time)
  std::string qualifier;      ///< `ns` in ns::f(); "" when none
  int line = 0;
  std::vector<std::string> held;  ///< ranks held at this site
  bool stmt_discard = false;      ///< the whole statement is just this call
};

/// One extracted function definition.
struct Function {
  std::string cls;        ///< enclosing or qualifying class; "" if free
  std::string name;       ///< simple name
  std::string qualified;  ///< cls::name or name
  std::string file;       ///< repo-relative path
  int line = 0;
  std::vector<AcquireSite> acquires;
  std::vector<CallSite> calls;
  bool asserts_stream = false;  ///< contains APIO_ASSERT_ON_STREAM
  bool asserts_rank = false;    ///< contains APIO_ASSERT_ON_RANK
  int assert_stream_line = 0;
  int assert_rank_line = 0;
};

/// Whole-repo model consumed by the passes.
struct CodeModel {
  std::vector<SourceFile> files;                  ///< indexed by file id
  std::map<std::string, std::size_t> file_index;  ///< rel path -> id
  LockRankTable ranks;
  std::vector<Function> functions;
  std::multimap<std::string, std::size_t> by_name;  ///< simple name -> idx
  std::vector<MutexVar> mutexes;
  std::set<std::string> cv_names;  ///< condition-variable member names

  // Coarse type environment.
  std::set<std::string> classes;                   ///< defined class names
  std::map<std::string, std::set<std::string>> bases;  ///< class -> bases
  std::map<std::string, std::vector<std::string>> alias_raw;  ///< using X = rhs
  std::map<std::string, std::string> type_aliases;  ///< alias -> class
  /// (class, member variable) -> class of the member's declared type.
  std::map<std::pair<std::string, std::string>, std::string> member_types;

  const SourceFile* file_of(const std::string& rel) const {
    auto it = file_index.find(rel);
    return it == file_index.end() ? nullptr : &files[it->second];
  }

  /// Maps a type name through the alias table to a known class ("" when
  /// it names neither a class nor an alias of one).
  std::string as_class(const std::string& type_name) const;

  /// Declared class of member `var` of `cls`; falls back to a globally
  /// unique member of that name in any class ("" when unknown).
  std::string member_type_of(const std::string& cls,
                             const std::string& var) const;

  /// True when `cls` is `base` or transitively derives from it.
  bool is_or_derived(const std::string& cls, const std::string& base) const;

  /// Resolves a call site to candidate function indices (see header
  /// comment for the refinement rules).  `caller_cls` is the class of
  /// the function containing the call.
  std::vector<std::size_t> resolve(const CallSite& call,
                                   const std::string& caller_cls) const;
};

/// Builds the model over every .h/.cpp under root/<dir> for `dirs`.
/// Extraction runs in two phases so declarations (classes, mutexes,
/// aliases, member types) harvested anywhere are visible to call sites
/// everywhere.  The lock-rank table is read from
/// root/src/common/debug/lock_rank.h when present (passes degrade
/// gracefully without it).
CodeModel build_model(const std::filesystem::path& root,
                      const std::vector<std::string>& dirs);

/// Extracts functions/mutexes/calls from one file into `model`
/// (exposed for focused unit tests; build_model's two-phase driver is
/// the normal entry point).
void extract_file(const SourceFile& file, CodeModel& model);

}  // namespace apio::analysis
