// Noise-aware comparison of standardized bench JSON against committed
// baselines — the library behind tools/apio_bench_compare, split out so
// the regression-gate semantics (tolerances, missing-metric handling,
// last-record-wins merging) are unit-testable without spawning the CLI.
//
// Input format: one JSON object per line, as bench::record_bench_metrics
// emits them:
//   {"bench":NAME,"schema":1,"config":CONFIG,
//    "values":[{"metric":...,"value":...,"units":...,"noise":...}], ...}
// Unknown keys (e.g. the registry "metrics" snapshot) are ignored.
// When a file holds several records for the same (bench, config) — an
// appended accumulation from repeated runs — the last record wins.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace apio::bench {

/// One headline value parsed back from a bench JSON line.
struct ComparedValue {
  std::string metric;
  double value = 0.0;
  std::string units;
  std::string noise;  ///< "det" or "wall"
};

/// One bench result record (one JSON line).
struct BenchRecord {
  std::string bench;
  int schema = 0;
  std::string config;
  std::vector<ComparedValue> values;
};

/// Parses a JSONL document into records.  Blank lines are skipped;
/// lines missing a "bench" key are skipped too (forward compatibility).
/// Returns false and fills `error` on malformed JSON.
bool parse_bench_jsonl(const std::string& text, std::vector<BenchRecord>* out,
                       std::string* error);

/// Collapses records so the last one per (bench, config) wins.
std::map<std::pair<std::string, std::string>, BenchRecord> merge_records(
    const std::vector<BenchRecord>& records);

struct CompareOptions {
  /// Symmetric relative tolerance for "det" (deterministic) values: any
  /// deviation beyond it fails — a deterministic result that *improved*
  /// past the tolerance means the committed baseline is stale.
  double det_tolerance = 0.10;
  /// One-sided relative tolerance for "wall" (wall-clock) values: only
  /// a change in the regression direction fails.  The direction is
  /// inferred from the units — seconds-like units regress upward,
  /// rate-like units (B/s, ...) regress downward.
  double wall_tolerance = 0.60;
};

/// One gate failure, with a human-readable reason.
struct Violation {
  std::string bench;
  std::string config;
  std::string metric;  ///< empty for record-level violations
  std::string reason;
};

struct CompareResult {
  std::vector<Violation> violations;
  int compared_values = 0;
  int compared_records = 0;
  bool ok() const { return violations.empty(); }
};

/// Compares current records against baseline records.  Every baseline
/// (bench, config) must be present in `current` and vice versa, and the
/// two value lists must name the same metrics — a metric added or
/// removed without regenerating baselines is a violation by design.
CompareResult compare_records(const std::vector<BenchRecord>& current,
                              const std::vector<BenchRecord>& baseline,
                              const CompareOptions& options);

/// True when a regression in `units` means the value went *up*
/// (durations); false for rates, where down is worse.
bool higher_is_worse(const std::string& units);

}  // namespace apio::bench
