// Fig. 7: impact of partial computation/I-O overlap — Nyx on Cori with
// the number of simulation time steps per computation phase swept from
// 1 to 192.  Fewer steps per checkpoint = more frequent I/O = less
// compute to hide behind.  Async degrades far more gracefully than sync
// until the compute phase is too short to overlap at all.  The dotted
// line is the model's predicted application duration (Eq. 1 + 2a/2b).
#include "bench/bench_util.h"
#include "workloads/nyx.h"

int main() {
  using namespace apio;
  const auto spec = sim::SystemSpec::cori_haswell();
  sim::EpochSimulator simulator(spec);
  const auto base = workloads::NyxParams::small();
  const int nodes = 32;
  const double seconds_per_step = 0.4;
  const int total_steps = 192 * 2;  // fixed simulated work

  bench::banner("Fig. 7 (" + spec.name + "): Nyx, varying steps per compute phase",
                "256^3 domain, 32 nodes, " + std::to_string(total_steps) +
                    " total time steps; fewer steps/phase = more checkpoints");

  model::ModeAdvisor advisor;
  std::printf("%12s %8s | %12s %12s | %12s %12s\n", "steps/phase", "ckpts",
              "sync [s]", "est [s]", "async [s]", "est [s]");
  std::printf("%12s %8s | %12s %12s | %12s %12s\n", "-----------", "-----",
              "--------", "-------", "---------", "-------");

  std::vector<bench::BenchValue> values;
  for (int steps_per_phase : {1, 2, 4, 8, 16, 32, 64, 96, 192}) {
    const int checkpoints = total_steps / steps_per_phase;
    workloads::NyxParams params = base;
    params.schedule.checkpoints = checkpoints;
    params.schedule.steps_per_checkpoint = steps_per_phase;

    auto run_mode = [&](model::IoMode mode) {
      auto config = workloads::NyxProxy::sim_config(spec, nodes, mode, params,
                                                    seconds_per_step);
      config.contention_sigma_override = 0.0;
      config.observer = &advisor;
      const auto result = simulator.run(config);
      advisor.record_compute(config.compute_seconds);
      return result.total_seconds;
    };
    const double sync_total = run_mode(model::IoMode::kSync);
    const double async_total = run_mode(model::IoMode::kAsync);

    // Headline values for the regression gate (deterministic simulator
    // totals: fixed seed, contention sigma zeroed → "det" tolerance).
    const std::string point_tag = "steps" + std::to_string(steps_per_phase);
    values.push_back({point_tag + ".sync_total", sync_total, "s", "det"});
    values.push_back({point_tag + ".async_total", async_total, "s", "det"});

    // Model prediction of the application duration (Eq. 1).
    const std::uint64_t bytes =
        workloads::NyxProxy::sim_config(spec, nodes, model::IoMode::kSync, params)
            .bytes_per_epoch;
    const int ranks = nodes * spec.ranks_per_node;
    double sync_est = 0.0;
    double async_est = 0.0;
    if (advisor.sync_ready() && advisor.async_ready()) {
      model::AppSchedule schedule;
      schedule.iterations = checkpoints;
      schedule.epoch.t_comp = seconds_per_step * steps_per_phase;
      schedule.epoch.t_io = advisor.estimate_io_seconds(bytes, ranks);
      schedule.epoch.t_transact = advisor.estimate_transact_seconds(bytes, ranks);
      sync_est = model::app_seconds(schedule, model::IoMode::kSync);
      async_est = model::app_seconds(schedule, model::IoMode::kAsync);
    }

    std::printf("%12d %8d | %12.1f %12s | %12.1f %12s\n", steps_per_phase,
                checkpoints, sync_total,
                sync_est > 0 ? (std::to_string(sync_est).substr(0, 6)).c_str() : "-",
                async_total,
                async_est > 0 ? (std::to_string(async_est).substr(0, 6)).c_str() : "-");
  }
  std::printf(
      "\nshape check: async total stays near the compute floor until the\n"
      "compute phase is too short to overlap (1 step/phase), where both\n"
      "modes pay the full I/O cost (paper Fig. 7).\n");
  return apio::bench::record_bench_metrics("fig7_overlap", "nyx-cori-32nodes",
                                           values);
}
