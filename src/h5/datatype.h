// Scalar datatypes of the apio-h5 container, mirroring the HDF5 native
// types the paper's kernels use (VPIC-IO writes 1-D float/int datasets).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace apio::h5 {

enum class Datatype : std::uint8_t {
  kInt8 = 0,
  kUInt8 = 1,
  kInt16 = 2,
  kUInt16 = 3,
  kInt32 = 4,
  kUInt32 = 5,
  kInt64 = 6,
  kUInt64 = 7,
  kFloat32 = 8,
  kFloat64 = 9,
};

/// Size of one element in bytes.
std::size_t datatype_size(Datatype t);

/// Stable name used in diagnostics ("float32", ...).
std::string datatype_name(Datatype t);

/// Parses a datatype code from disk; throws FormatError on junk.
Datatype datatype_from_code(std::uint8_t code);

/// Maps C++ arithmetic types onto Datatype tags.
template <typename T>
constexpr Datatype native_datatype();

template <> constexpr Datatype native_datatype<std::int8_t>() { return Datatype::kInt8; }
template <> constexpr Datatype native_datatype<std::uint8_t>() { return Datatype::kUInt8; }
template <> constexpr Datatype native_datatype<std::int16_t>() { return Datatype::kInt16; }
template <> constexpr Datatype native_datatype<std::uint16_t>() { return Datatype::kUInt16; }
template <> constexpr Datatype native_datatype<std::int32_t>() { return Datatype::kInt32; }
template <> constexpr Datatype native_datatype<std::uint32_t>() { return Datatype::kUInt32; }
template <> constexpr Datatype native_datatype<std::int64_t>() { return Datatype::kInt64; }
template <> constexpr Datatype native_datatype<std::uint64_t>() { return Datatype::kUInt64; }
template <> constexpr Datatype native_datatype<float>() { return Datatype::kFloat32; }
template <> constexpr Datatype native_datatype<double>() { return Datatype::kFloat64; }

}  // namespace apio::h5
