// Two-phase collective write (MPI-IO "collective buffering").
//
// Small per-rank requests waste PFS efficiency (the per-rank knee in
// storage::PfsModel, and per-request latency on real file systems).
// Two-phase I/O routes every rank's slab to a few aggregator ranks,
// which merge adjacent pieces and issue large contiguous writes — the
// optimisation ROMIO performs under collective MPI_File_write_all.
// This helper implements it for 1-D datasets over pmpi + any VOL
// connector, and is ablated against direct per-rank writes in
// bench/ablation_two_phase.
#pragma once

#include <cstdint>
#include <span>

#include "h5/file.h"
#include "pmpi/world.h"
#include "vol/connector.h"

namespace apio::workloads {

struct TwoPhaseResult {
  /// Caller-visible blocking time, max over ranks.
  double blocking_seconds = 0.0;
  /// Number of write requests the aggregators issued (after merging).
  std::uint64_t requests_issued = 0;
  /// Bytes this collective moved in total.
  std::uint64_t total_bytes = 0;
};

/// Collective: every rank of `comm` must call with its own slab of the
/// shared 1-D dataset (`elem_offset` in elements, `data` a whole number
/// of elements).  Ranks are partitioned into `num_aggregators`
/// contiguous groups; each aggregator gathers its group's pieces,
/// merges adjacent extents and writes them through `connector`.
/// Returns identical results on every rank.
TwoPhaseResult two_phase_write(vol::Connector& connector, pmpi::Communicator& comm,
                               h5::Dataset ds, std::uint64_t elem_offset,
                               std::span<const std::byte> data, int num_aggregators);

}  // namespace apio::workloads
