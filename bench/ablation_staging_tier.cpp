// Ablation: where should the async VOL stage the transactional copy?
// The paper notes the connector can cache "either to a memory buffer on
// the same node ... or to a node-local SSD" (Sec. II-C) and that a
// buffering location not shared across users hides variability
// (Sec. VI-A).  This bench quantifies the trade-off on both machines:
// DRAM is fastest but capacity-bound; Summit's node-local NVMe and
// Cori's shared burst buffer stage slower but hold whole checkpoints.
#include "bench/bench_util.h"
#include "workloads/vpic_io.h"

namespace apio {
namespace {

void run_tier(const sim::SystemSpec& spec, sim::StagingTier tier, const char* label,
              const std::vector<int>& node_counts) {
  if (!spec.supports(tier)) return;
  sim::EpochSimulator simulator(spec);
  std::printf("\n  staging tier: %s\n", label);
  std::printf("  %8s %8s %16s %14s\n", "nodes", "ranks", "t_transact [s]",
              "observed BW");
  for (int nodes : node_counts) {
    auto config = workloads::VpicIoKernel::sim_config(spec, nodes, model::IoMode::kAsync);
    config.contention_sigma_override = 0.0;
    config.staging_tier = tier;
    const auto result = simulator.run(config);
    std::printf("  %8d %8d %16.4f %14s\n", nodes, result.ranks,
                result.epochs[0].io_blocking_seconds,
                format_bandwidth(result.peak_bandwidth()).c_str());
  }
}

}  // namespace
}  // namespace apio

int main() {
  using namespace apio;
  bench::banner("Ablation: async staging tier (VPIC-IO write, weak scaling)",
                "blocking cost of the transactional copy per tier; sync PFS "
                "time shown for reference");

  const std::vector<int> nodes{8, 32, 128, 512};

  {
    const auto spec = sim::SystemSpec::summit();
    sim::EpochSimulator simulator(spec);
    std::printf("\n== %s ==\n", spec.name.c_str());
    std::printf("  reference sync I/O phase at 128 nodes: %.2f s\n",
                simulator
                    .run([&] {
                      auto c = workloads::VpicIoKernel::sim_config(
                          spec, 128, model::IoMode::kSync);
                      c.contention_sigma_override = 0.0;
                      return c;
                    }())
                    .epochs[0]
                    .io_blocking_seconds);
    run_tier(spec, sim::StagingTier::kDram, "on-node DRAM", nodes);
    run_tier(spec, sim::StagingTier::kNodeLocalSsd, "node-local NVMe (1.6 TB/node)",
             nodes);
  }
  {
    const auto spec = sim::SystemSpec::cori_haswell();
    sim::EpochSimulator simulator(spec);
    std::printf("\n== %s ==\n", spec.name.c_str());
    std::printf("  reference sync I/O phase at 32 nodes: %.2f s\n",
                simulator
                    .run([&] {
                      auto c = workloads::VpicIoKernel::sim_config(
                          spec, 32, model::IoMode::kSync);
                      c.contention_sigma_override = 0.0;
                      return c;
                    }())
                    .epochs[0]
                    .io_blocking_seconds);
    run_tier(spec, sim::StagingTier::kDram, "on-node DRAM", nodes);
    run_tier(spec, sim::StagingTier::kBurstBuffer, "DataWarp burst buffer (shared)",
             nodes);
  }
  std::printf(
      "\nshape check: DRAM staging gives the highest observed bandwidth;\n"
      "SSD/BB staging still beats synchronous PFS writes while offering\n"
      "capacity for whole checkpoints.\n");
  return 0;
}
