// Unit tests for src/common: units, rng, stats, bytes, clock, error.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"

namespace apio {
namespace {

// ---------------------------------------------------------------------------
// error.h

TEST(ErrorTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(APIO_REQUIRE(false, "boom"), InvalidArgumentError);
}

TEST(ErrorTest, RequirePassesOnTrue) {
  EXPECT_NO_THROW(APIO_REQUIRE(true, "fine"));
}

TEST(ErrorTest, MessageCarriesExpressionAndContext) {
  try {
    APIO_REQUIRE(1 == 2, "math broke");
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math broke"), std::string::npos);
  }
}

TEST(ErrorTest, HierarchyCatchableAsError) {
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw FormatError("x"), Error);
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw StateError("x"), Error);
}

// ---------------------------------------------------------------------------
// units.h

TEST(UnitsTest, ByteConstants) {
  EXPECT_EQ(kKiB, 1024u);
  EXPECT_EQ(kMiB, 1024u * 1024u);
  EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
  EXPECT_EQ(kTiB, 1024ull * kGiB);
}

TEST(UnitsTest, FormatBytesPicksUnit) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(32 * kMiB), "32.00 MiB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3.00 GiB");
}

TEST(UnitsTest, FormatBandwidth) {
  EXPECT_EQ(format_bandwidth(2.5 * kTB), "2.50 TB/s");
  EXPECT_EQ(format_bandwidth(700.0 * kGB), "700.00 GB/s");
  EXPECT_EQ(format_bandwidth(5.0), "5.00 B/s");
}

TEST(UnitsTest, FormatSeconds) {
  EXPECT_EQ(format_seconds(2.0), "2.00 s");
  EXPECT_EQ(format_seconds(5e-3), "5.00 ms");
  EXPECT_EQ(format_seconds(5e-7), "500.00 ns");
}

// ---------------------------------------------------------------------------
// rng.h

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformRejectsInvertedBounds) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform(5.0, -2.0), InvalidArgumentError);
}

TEST(RngTest, NextBelowCoversRangeUniformly) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 9000);
    EXPECT_LT(c, 11000);
  }
}

TEST(RngTest, NextBelowRejectsZero) {
  Rng rng(5);
  EXPECT_THROW(rng.next_below(0), InvalidArgumentError);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

// ---------------------------------------------------------------------------
// stats.h

TEST(StatsTest, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StatsTest, RunningStatsSingleSample) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(StatsTest, MeanAndStddevFreeFunctions) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
}

TEST(StatsTest, PercentileRejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(std::span<const double>{}, 50.0), InvalidArgumentError);
  EXPECT_THROW(percentile(xs, 101.0), InvalidArgumentError);
}

TEST(StatsTest, EwmaConvergesToConstant) {
  Ewma e(0.5);
  for (int i = 0; i < 50; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-9);
}

TEST(StatsTest, EwmaWeightsRecentSamples) {
  Ewma e(0.5);
  e.add(0.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(StatsTest, EwmaRejectsBadAlphaAndEmptyValue) {
  EXPECT_THROW(Ewma(0.0), InvalidArgumentError);
  EXPECT_THROW(Ewma(1.5), InvalidArgumentError);
  Ewma e(0.3);
  EXPECT_TRUE(e.empty());
  EXPECT_THROW(e.value(), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// bytes.h

TEST(BytesTest, RoundTripPrimitives) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_i64(-42);
  w.put_f64(3.141592653589793);
  w.put_string("hello");

  ByteReader r(w.view());
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.141592653589793);
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_TRUE(r.done());
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.put_u32(0x01020304);
  auto v = w.view();
  EXPECT_EQ(std::to_integer<int>(v[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(v[3]), 0x01);
}

TEST(BytesTest, TruncatedReadThrowsFormatError) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.view());
  EXPECT_EQ(r.get_u16(), 7);
  EXPECT_THROW(r.get_u32(), FormatError);
}

TEST(BytesTest, TruncatedStringThrows) {
  ByteWriter w;
  w.put_u32(100);  // claims 100 chars, provides none
  ByteReader r(w.view());
  EXPECT_THROW(r.get_string(), FormatError);
}

TEST(BytesTest, EmptyString) {
  ByteWriter w;
  w.put_string("");
  ByteReader r(w.view());
  EXPECT_EQ(r.get_string(), "");
}

TEST(BytesTest, RawBytesPassThrough) {
  ByteWriter w;
  const std::vector<std::byte> payload{std::byte{1}, std::byte{2}, std::byte{3}};
  w.put_bytes(payload);
  ByteReader r(w.view());
  auto out = r.get_bytes(3);
  EXPECT_EQ(std::to_integer<int>(out[2]), 3);
}

// ---------------------------------------------------------------------------
// clock.h

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(1.0);  // backwards jumps ignored
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.advance_to(3.0);
  EXPECT_DOUBLE_EQ(clock.now(), 3.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(ClockTest, StopwatchMeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch sw(clock);
  clock.advance(2.0);
  EXPECT_DOUBLE_EQ(sw.elapsed(), 2.0);
  sw.restart();
  EXPECT_DOUBLE_EQ(sw.elapsed(), 0.0);
}

TEST(ClockTest, WallClockMonotonic) {
  WallClock clock;
  const double a = clock.now();
  const double b = clock.now();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace apio
