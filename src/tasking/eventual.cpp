#include "tasking/eventual.h"

#include "common/debug/invariant.h"
#include "common/error.h"

namespace apio::tasking {

EventualPtr Eventual::make_ready() {
  auto e = make();
  e->set();
  return e;
}

void Eventual::set() {
  std::unique_lock lock(mutex_);
  APIO_ASSERT(!done_, "Eventual::set() called twice");
  done_ = true;
  complete_locked(lock);
}

void Eventual::set_error(std::exception_ptr error) {
  std::unique_lock lock(mutex_);
  APIO_ASSERT(!done_, "Eventual::set_error() after completion");
  done_ = true;
  error_ = std::move(error);
  complete_locked(lock);
}

void Eventual::complete_locked(std::unique_lock<Mutex>& lock) {
  APIO_INVARIANT(done_, "complete_locked() on a pending eventual");
  std::vector<std::function<void()>> continuations;
  continuations.swap(continuations_);
  cv_.notify_all();
  // Continuations run outside the lock: they may acquire lower-ranked
  // locks (e.g. push into a pool) or re-enter this eventual.
  lock.unlock();
  for (auto& fn : continuations) fn();
}

void Eventual::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
  if (error_) std::rethrow_exception(error_);
}

void Eventual::wait_ignore_error() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return done_; });
}

bool Eventual::test() const {
  std::lock_guard lock(mutex_);
  return done_;
}

bool Eventual::has_error() const {
  std::lock_guard lock(mutex_);
  return done_ && error_ != nullptr;
}

std::exception_ptr Eventual::error() const {
  std::lock_guard lock(mutex_);
  return done_ ? error_ : nullptr;
}

void Eventual::on_ready(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    if (!done_) {
      continuations_.push_back(std::move(fn));
      return;
    }
  }
  fn();
}

void wait_all(const std::vector<EventualPtr>& eventuals) {
  for (const auto& e : eventuals) e->wait();
}

}  // namespace apio::tasking
