#include "obs/trace_context.h"

#include <algorithm>
#include <cstdlib>

#include "obs/span.h"

namespace apio::obs::trace {

namespace {

/// The thread's bound context (trace_id == 0 when unbound) and its open
/// phase-span stack.  Both are swapped wholesale by ScopedTraceContext
/// so nested bindings never cross-parent.
thread_local TraceContext t_context;
thread_local std::vector<std::uint64_t> t_phase_stack;

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSubmit: return "submit";
    case Phase::kStageCopy: return "stage_copy";
    case Phase::kFifoWait: return "fifo_wait";
    case Phase::kPoolWait: return "pool_wait";
    case Phase::kQueueWait: return "queue_wait";
    case Phase::kAdmission: return "admission";
    case Phase::kAttempt: return "attempt";
    case Phase::kBackoff: return "backoff";
    case Phase::kBackend: return "backend";
    case Phase::kCacheHit: return "cache_hit";
    case Phase::kCacheFlush: return "cache_flush";
    case Phase::kFallback: return "fallback";
    case Phase::kExchange: return "exchange";
    case Phase::kRemoteWrite: return "remote_write";
    case Phase::kComplete: return "complete";
    case Phase::kOther: return "other";
  }
  return "?";
}

const TraceContext* current_trace() {
  return t_context.trace_id != 0 ? &t_context : nullptr;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& context)
    : previous_(t_context), previous_stack_(std::move(t_phase_stack)) {
  t_context = context;
  t_phase_stack.clear();
}

ScopedTraceContext::~ScopedTraceContext() {
  t_context = previous_;
  t_phase_stack = std::move(previous_stack_);
}

// ---------------------------------------------------------------------------
// TraceCollector

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  // Seed the slowdown-injection hook from the environment exactly once;
  // absent (the production case) it stays 0 and the minting path pays a
  // single relaxed load.
  static const bool env_seeded = [] {
    if (const char* v = std::getenv("APIO_TRACE_INJECT_SPAN_DELAY_US")) {
      collector.set_injected_delay_us(std::strtoull(v, nullptr, 10));
    }
    return true;
  }();
  (void)env_seeded;
  return collector;
}

void TraceCollector::set_injected_delay_us(std::uint64_t us) {
  injected_delay_us_.store(us, std::memory_order_relaxed);
}

void TraceCollector::apply_injected_delay() const {
  const std::uint64_t us = injected_delay_us_.load(std::memory_order_relaxed);
  if (us == 0) return;
  // Busy-wait: the hook models tracing-path CPU cost, so it must not
  // yield (a sleep would vanish from min-of-N wall samples under load).
  const double until = steady_seconds() + static_cast<double>(us) * 1e-6;
  while (steady_seconds() < until) {
  }
}

void TraceCollector::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void TraceCollector::set_sampling_period(std::uint64_t period) {
  std::lock_guard lock(mutex_);
  sampling_period_ = period > 0 ? period : 1;
}

std::uint64_t TraceCollector::sampling_period() const {
  std::lock_guard lock(mutex_);
  return sampling_period_;
}

void TraceCollector::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity > 0 ? capacity : 1;
  while (completed_.size() > capacity_) {
    completed_.pop_front();
    ++evicted_count_;
  }
}

TraceContext TraceCollector::start_trace() {
  if (!enabled()) return {};
  apply_injected_delay();
  TraceContext ctx;
  const std::uint64_t n = next_trace_.fetch_add(1, std::memory_order_relaxed);
  ctx.trace_id = n + 1;
  ctx.span_id = next_span_.fetch_add(1, std::memory_order_relaxed) + 1;

  // A recording context bound on the minting thread (an aggregator
  // issuing writes from inside a collective trace) makes this trace a
  // causal child; chained traces are always sampled so a sampled parent
  // never points at a hole.
  const TraceContext* parent = current_trace();
  const bool chained = parent != nullptr && parent->sampled;

  std::lock_guard lock(mutex_);
  ctx.sampled = chained || n % sampling_period_ == 0;
  if (!ctx.sampled) return ctx;
  ++sampled_count_;
  ActiveTrace& active = active_[ctx.trace_id];
  active.root_span_id = ctx.span_id;
  active.start_seconds = steady_seconds();
  if (chained) {
    active.parent_trace_id = parent->trace_id;
    active.parent_span_id = parent->span_id;
  }
  return ctx;
}

std::uint64_t TraceCollector::new_span_id(const TraceContext& context) {
  if (!context.recording()) return 0;
  return next_span_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void TraceCollector::record_locked(std::uint64_t trace_id, TraceSpan&& span) {
  auto it = active_.find(trace_id);
  if (it == active_.end()) {
    ++late_spans_;
    return;
  }
  if (it->second.spans.size() >= kMaxSpansPerTrace) {
    ++dropped_spans_;
    return;
  }
  it->second.spans.push_back(std::move(span));
}

void TraceCollector::record(const TraceContext& context, TraceSpan span) {
  if (!context.recording() || !enabled()) return;
  std::lock_guard lock(mutex_);
  record_locked(context.trace_id, std::move(span));
}

void TraceCollector::record(std::uint64_t trace_id, TraceSpan span) {
  if (trace_id == 0 || !enabled()) return;
  std::lock_guard lock(mutex_);
  record_locked(trace_id, std::move(span));
}

void TraceCollector::complete(const TraceContext& context, IoOp op,
                              std::string tenant, std::uint64_t bytes,
                              bool failed, double start_seconds,
                              double end_seconds) {
  if (!context.recording()) return;
  std::lock_guard lock(mutex_);
  auto it = active_.find(context.trace_id);
  if (it == active_.end()) return;  // cleared mid-flight
  CompletedTrace done;
  done.trace_id = context.trace_id;
  done.root_span_id = it->second.root_span_id;
  done.parent_trace_id = it->second.parent_trace_id;
  done.parent_span_id = it->second.parent_span_id;
  done.op = op;
  done.tenant = std::move(tenant);
  done.bytes = bytes;
  done.failed = failed;
  done.start_seconds = start_seconds;
  done.duration_seconds = end_seconds - start_seconds;
  done.spans = std::move(it->second.spans);
  active_.erase(it);
  completed_.push_back(std::move(done));
  ++completed_seq_;
  ++completed_count_;
  while (completed_.size() > capacity_) {
    completed_.pop_front();
    ++evicted_count_;
  }
}

std::vector<CompletedTrace> TraceCollector::drain() {
  std::lock_guard lock(mutex_);
  std::vector<CompletedTrace> out(completed_.begin(), completed_.end());
  completed_.clear();
  return out;
}

std::pair<std::vector<CompletedTrace>, std::uint64_t>
TraceCollector::completed_since(std::uint64_t cursor) const {
  std::lock_guard lock(mutex_);
  std::vector<CompletedTrace> out;
  // completed_.back() has sequence completed_seq_; walk back to the
  // first entry newer than the cursor.
  const std::uint64_t newest = completed_seq_;
  if (newest > cursor) {
    const std::uint64_t want =
        std::min<std::uint64_t>(newest - cursor, completed_.size());
    out.assign(completed_.end() - static_cast<std::ptrdiff_t>(want),
               completed_.end());
  }
  return {std::move(out), newest};
}

TraceCollector::Watermark TraceCollector::watermark() const {
  std::lock_guard lock(mutex_);
  Watermark w;
  w.started = next_trace_.load(std::memory_order_relaxed);
  w.sampled = sampled_count_;
  w.completed = completed_count_;
  w.evicted = evicted_count_;
  w.dropped_spans = dropped_spans_;
  w.late_spans = late_spans_;
  w.active = active_.size();
  for (const auto& [id, active] : active_) {
    if (w.oldest_active_start == 0.0 ||
        active.start_seconds < w.oldest_active_start) {
      w.oldest_active_start = active.start_seconds;
    }
  }
  return w;
}

void TraceCollector::clear() {
  std::lock_guard lock(mutex_);
  active_.clear();
  completed_.clear();
  completed_seq_ = 0;
  sampled_count_ = 0;
  completed_count_ = 0;
  evicted_count_ = 0;
  dropped_spans_ = 0;
  late_spans_ = 0;
  next_trace_.store(0, std::memory_order_relaxed);
  next_span_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Phase recording

void record_phase(const TraceContext& context, Phase phase,
                  double start_seconds, double duration_seconds,
                  std::uint64_t bytes, std::string detail) {
  auto& collector = TraceCollector::instance();
  if (!context.recording() || !collector.enabled()) return;
  TraceSpan span;
  span.span_id = collector.new_span_id(context);
  span.parent_span_id = context.span_id;
  span.phase = phase;
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds;
  span.bytes = bytes;
  span.rank = thread_rank();
  span.detail = std::move(detail);
  collector.record(context, std::move(span));
}

ScopedPhase::ScopedPhase(Phase phase, std::uint64_t bytes,
                         const char* detail) {
  const TraceContext* ctx = current_trace();
  if (ctx == nullptr || !ctx->sampled) return;
  auto& collector = TraceCollector::instance();
  if (!collector.enabled()) return;
  active_ = true;
  phase_ = phase;
  bytes_ = bytes;
  detail_ = detail;
  context_ = *ctx;
  span_id_ = collector.new_span_id(context_);
  parent_ = t_phase_stack.empty() ? context_.span_id : t_phase_stack.back();
  t_phase_stack.push_back(span_id_);
  start_ = steady_seconds();
}

void ScopedPhase::finish() {
  if (!active_) return;
  active_ = false;
  const double end = steady_seconds();
  // Unwind the stack down to (and including) this span: an early
  // finish() with nested phases still open must not leave dangling
  // parents behind.
  while (!t_phase_stack.empty()) {
    const std::uint64_t top = t_phase_stack.back();
    t_phase_stack.pop_back();
    if (top == span_id_) break;
  }
  TraceSpan span;
  span.span_id = span_id_;
  span.parent_span_id = parent_ == context_.span_id ? context_.span_id : parent_;
  span.phase = phase_;
  span.start_seconds = start_;
  span.duration_seconds = end - start_;
  span.bytes = bytes_;
  span.rank = thread_rank();
  if (detail_ != nullptr) span.detail = detail_;
  TraceCollector::instance().record(context_, std::move(span));
}

ScopedPhase::~ScopedPhase() { finish(); }

}  // namespace apio::obs::trace
