#include "h5/datatype.h"

#include "common/error.h"

namespace apio::h5 {

std::size_t datatype_size(Datatype t) {
  switch (t) {
    case Datatype::kInt8:
    case Datatype::kUInt8: return 1;
    case Datatype::kInt16:
    case Datatype::kUInt16: return 2;
    case Datatype::kInt32:
    case Datatype::kUInt32:
    case Datatype::kFloat32: return 4;
    case Datatype::kInt64:
    case Datatype::kUInt64:
    case Datatype::kFloat64: return 8;
  }
  throw FormatError("unknown datatype code");
}

std::string datatype_name(Datatype t) {
  switch (t) {
    case Datatype::kInt8: return "int8";
    case Datatype::kUInt8: return "uint8";
    case Datatype::kInt16: return "int16";
    case Datatype::kUInt16: return "uint16";
    case Datatype::kInt32: return "int32";
    case Datatype::kUInt32: return "uint32";
    case Datatype::kInt64: return "int64";
    case Datatype::kUInt64: return "uint64";
    case Datatype::kFloat32: return "float32";
    case Datatype::kFloat64: return "float64";
  }
  return "?";
}

Datatype datatype_from_code(std::uint8_t code) {
  if (code > static_cast<std::uint8_t>(Datatype::kFloat64)) {
    throw FormatError("invalid datatype code " + std::to_string(code));
  }
  return static_cast<Datatype>(code);
}

}  // namespace apio::h5
