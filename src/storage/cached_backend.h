// CachedBackend: a write-back burst-buffer tier in front of a PFS
// backend, with bbThemis-style selectable visibility (ROADMAP item:
// after-write / after-close / after-epoch / after-job).
//
// The cache interposes a node-local staging area (an in-memory backend
// by default, a local-POSIX file for real burst buffers) between the
// application and the parallel file system.  Writes land in staging and
// are absorbed off the critical path; the consistency mode decides when
// the dirty extents become visible on the PFS tier:
//
//   kAfterWrite  write-through: every write is forwarded immediately
//                (the staging copy only accelerates re-reads).
//   kAfterClose  dirty extents drain when the container announces
//                close() — the POSIX-like default.
//   kAfterEpoch  dirty extents drain at every epoch boundary: the
//                cache subscribes to the obs::EpochSink marker stream
//                and flushes on each kEnd event, so a consumer
//                (BD-CATS) can read step k while the producer (VPIC)
//                is still writing step k+1.
//   kAfterJob    nothing drains until drain() is called explicitly
//                (or the cache is destroyed) — job-end visibility.
//
// Reads are served read-through: missing ranges are fetched from the
// PFS into staging, and staged bytes are evicted least-recently-used
// when the configured capacity is exceeded (dirty victims are written
// back first — the cache never silently drops unflushed data).  Dirty
// extents are kept byte-granular and coalesced, and every drain goes
// to the PFS as vectored write_v batches, preserving the aggregation
// fast path.  The lowest-offset dirty extent is always written last so
// a container's shadow-update discipline (header block at offset 0
// points at data written before it) survives a mid-drain crash.
//
// Failure semantics: a drain that fails (e.g. the resilience breaker
// is open on the PFS tier) surfaces the inner error — TransientIoError
// stays TransientIoError — and RETAINS the dirty set, so the next
// drain retries the same extents.  Epoch-driven drains run inside the
// EpochScope destructor and therefore swallow the error (counted in
// io.cache.flush_failures) instead of throwing through a destructor;
// the retained dirty set drains at the next boundary or at close().
//
// Composition: always the OUTERMOST decorator (BackendStack stage
// order leaf < throttled < resilient < qos < cached), so cache hits
// bypass QoS admission and the PFS throttle entirely, and drains pass
// through retry/admission like any other PFS traffic.  Construct it
// through BackendStack::cached() — apio_lint flags direct make_shared
// nesting (rule `cached-backend`).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/debug/lock_rank.h"
#include "obs/epoch_analyzer.h"
#include "storage/backend.h"

namespace apio::storage {

/// When staged writes become visible on the inner (PFS) backend.
enum class CacheConsistency : int {
  kAfterWrite = 0,
  kAfterClose = 1,
  kAfterEpoch = 2,
  kAfterJob = 3,
};

const char* to_string(CacheConsistency mode);

/// Parses "after-write" / "after-close" / "after-epoch" / "after-job"
/// (CLI spelling).  Returns false on unknown input.
bool parse_cache_consistency(const std::string& text, CacheConsistency& out);

struct CacheOptions {
  CacheConsistency consistency = CacheConsistency::kAfterClose;
  /// Staged-byte budget; LRU eviction keeps the cache at or under it.
  std::uint64_t capacity_bytes = 64ull << 20;
  /// LRU bookkeeping granularity (eviction victims are whole blocks).
  std::uint64_t block_bytes = 256ull * 1024;
};

/// Point-in-time cache counters (also exported as io.cache.* registry
/// metrics for apio_profile report).
struct CacheSnapshot {
  std::uint64_t hits = 0;          ///< reads served entirely from staging
  std::uint64_t misses = 0;        ///< reads that fetched from the PFS
  std::uint64_t hit_bytes = 0;
  std::uint64_t miss_bytes = 0;    ///< bytes fetched from the PFS tier
  std::uint64_t flushes = 0;       ///< drain batches written to the PFS
  std::uint64_t flushed_bytes = 0;
  std::uint64_t flush_failures = 0;  ///< drains that surfaced an error
  std::uint64_t evictions = 0;     ///< LRU blocks dropped from staging
  std::uint64_t writeback_bytes = 0;  ///< dirty bytes flushed by eviction
  std::uint64_t lost_bytes = 0;    ///< dirty bytes undrainable at destruction
  std::uint64_t dirty_bytes = 0;   ///< currently staged, not yet on the PFS
  std::uint64_t cached_bytes = 0;  ///< currently staged (clean + dirty)
};

class CachedBackend final : public Backend, public obs::EpochSink {
 public:
  /// `staging` defaults to a fresh in-memory backend; pass a
  /// PosixBackend for a node-local SSD staging file.  The staging
  /// backend mirrors the inner backend's byte addresses.
  CachedBackend(BackendPtr inner, CacheOptions options,
                BackendPtr staging = nullptr);
  ~CachedBackend() override;

  std::uint64_t size() const override;
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  // write_v/read_v inherit the per-extent base fallback: each extent
  // passes through the hit/miss and dirty bookkeeping individually.
  // Coalescing happens where it pays — on the drain path, which always
  // leaves as vectored write_v batches.
  void flush() override;
  void close() override;
  void truncate(std::uint64_t new_size) override;
  std::string name() const override;

  /// Flushes every dirty extent to the inner backend (vectored,
  /// lowest-offset extent last) and flushes the inner backend.  Throws
  /// the inner error on failure with the dirty set retained.  This is
  /// the explicit "job end" hook for kAfterJob mode and is what the
  /// epoch/close policies call internally.
  void drain();

  /// obs::EpochSink: kAfterEpoch mode drains on every epoch-end marker.
  void on_epoch_event(const obs::EpochEvent& event) override;

  CacheSnapshot cache_snapshot() const;
  const CacheOptions& options() const { return options_; }

 private:
  /// Half-open byte intervals, keyed by begin, coalesced on insert.
  using IntervalMap = std::map<std::uint64_t, std::uint64_t>;

  static void interval_add(IntervalMap& map, std::uint64_t begin,
                           std::uint64_t end);
  static void interval_sub(IntervalMap& map, std::uint64_t begin,
                           std::uint64_t end);
  /// Sub-ranges of [begin, end) not covered by `map`.
  static std::vector<std::pair<std::uint64_t, std::uint64_t>> interval_gaps(
      const IntervalMap& map, std::uint64_t begin, std::uint64_t end);
  static std::uint64_t interval_total(const IntervalMap& map);
  /// Sub-ranges of [begin, end) covered by `map`.
  static IntervalMap interval_intersect(const IntervalMap& map,
                                        std::uint64_t begin,
                                        std::uint64_t end);

  void touch_blocks_locked(std::uint64_t begin, std::uint64_t end);
  void drop_block_if_empty_locked(std::uint64_t block);
  /// Recomputes cached_bytes_ after interval edits (maps are small at
  /// the modelled scale; correctness over micro-optimisation).
  void recount_locked();

  /// Fetches [begin, end) gaps from the inner backend into staging.
  void fill_from_inner(std::uint64_t begin, std::uint64_t end);
  /// Writes the given dirty intervals to the inner backend (vectored,
  /// lowest extent last) and clears them from the dirty set on success.
  /// Caller holds drain_mutex_ but NOT mutex_.
  void write_back(const IntervalMap& extents);
  /// Evicts LRU blocks (writing dirty victims back first) until the
  /// staged footprint fits the capacity budget.
  void enforce_capacity();
  void drain_internal();

  BackendPtr inner_;
  BackendPtr staging_;
  CacheOptions options_;

  /// Serialises drains and eviction write-backs; held across the inner
  /// write_v/flush transfer, hence the low rank (every inner lock is
  /// acquired above it).
  mutable debug::RankedMutex<debug::LockRank::kStorageCache> drain_mutex_;

  /// Guards the interval/LRU bookkeeping below.  Never held across an
  /// inner or staging transfer: data moves happen outside it, and the
  /// shared kStorageWrapper rank aborts (same-rank acquisition) if an
  /// inner wrapper lock is ever taken under it.
  mutable debug::RankedMutex<debug::LockRank::kStorageWrapper> mutex_;
  IntervalMap valid_;   ///< staged byte ranges
  IntervalMap dirty_;   ///< staged ranges not yet on the inner backend
  std::list<std::uint64_t> lru_;  ///< block ids, front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator>
      lru_pos_;
  std::uint64_t cached_bytes_ = 0;
  std::uint64_t logical_size_ = 0;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> hit_bytes_{0};
  std::atomic<std::uint64_t> miss_bytes_{0};
  std::atomic<std::uint64_t> flushes_{0};
  std::atomic<std::uint64_t> flushed_bytes_{0};
  std::atomic<std::uint64_t> flush_failures_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> writeback_bytes_{0};
  std::atomic<std::uint64_t> lost_bytes_{0};
};

}  // namespace apio::storage
