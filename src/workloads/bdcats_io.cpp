#include "workloads/bdcats_io.h"

#include "common/clock.h"
#include "common/error.h"
#include "obs/epoch_analyzer.h"

namespace apio::workloads {

double BdCatsRunResult::peak_bandwidth() const {
  double peak = 0.0;
  for (double t : step_io_seconds) {
    if (t > 0.0) peak = std::max(peak, static_cast<double>(bytes_per_step) / t);
  }
  return peak;
}

BdCatsIoKernel::BdCatsIoKernel(BdCatsParams params) : params_(params) {
  APIO_REQUIRE(params_.particles_per_rank >= 1, "need at least one particle");
  APIO_REQUIRE(params_.time_steps >= 1, "need at least one time step");
}

BdCatsRunResult BdCatsIoKernel::run(vol::Connector& connector,
                                    pmpi::Communicator& comm) const {
  const int rank = comm.rank();
  const int size = comm.size();
  const std::uint64_t ppr = params_.particles_per_rank;
  const std::uint64_t total = ppr * static_cast<std::uint64_t>(size);
  WallClock clock;

  BdCatsRunResult result;
  result.bytes_per_step = total * kVpicProperties.size() * sizeof(float);

  const h5::Selection slab =
      h5::Selection::offsets({static_cast<std::uint64_t>(rank) * ppr}, {ppr});
  std::vector<float> buffer(ppr);

  auto prefetch_step = [&](int step) {
    auto group = connector.file()->root().open_group(VpicIoKernel::step_group(step));
    for (const char* prop : kVpicProperties) {
      connector.prefetch(group.open_dataset(prop), slab);
    }
  };

  for (int step = 0; step < params_.time_steps; ++step) {
    // One model epoch per time step.  This loop is I/O-first (reads,
    // then the clustering compute), so the compute phase is bracketed
    // explicitly for the epoch analyzer.
    obs::EpochScope epoch(step);
    const double t0 = clock.now();
    auto group = connector.file()->root().open_group(VpicIoKernel::step_group(step));
    std::vector<vol::RequestPtr> reads;
    for (int p = 0; p < static_cast<int>(kVpicProperties.size()); ++p) {
      auto ds = group.open_dataset(kVpicProperties[p]);
      reads.push_back(connector.dataset_read(
          ds, slab, std::as_writable_bytes(std::span<float>(buffer))));
      // The clustering pass needs the values; wait before reusing the
      // buffer for the next property (cache hits complete immediately).
      reads.back()->wait();
      if (params_.verify_data) {
        for (std::uint64_t i = 0; i < ppr; ++i) {
          const float expected =
              particle_value(static_cast<std::uint64_t>(rank) * ppr + i, p);
          if (buffer[i] != expected) ++result.verification_failures;
        }
      }
    }
    const double blocking = clock.now() - t0;

    // Kick off prefetching of the next step before computing on this
    // one — the overlap the async VOL provides.
    if (params_.prefetch && step + 1 < params_.time_steps) {
      prefetch_step(step + 1);
    }
    epoch.compute_start();
    simulated_compute(params_.compute_seconds);
    epoch.compute_done();

    const double phase_io = comm.allreduce_max(blocking);
    if (rank == 0) result.step_io_seconds.push_back(phase_io);
    comm.barrier();
  }

  const std::uint64_t failures = comm.allreduce_sum(result.verification_failures);
  result.verification_failures = failures;

  std::uint64_t n = rank == 0 ? result.step_io_seconds.size() : 0;
  n = comm.allreduce_max(n);
  result.step_io_seconds.resize(n);
  comm.bcast(std::span<double>(result.step_io_seconds), 0);
  return result;
}

sim::RunConfig BdCatsIoKernel::sim_config(const sim::SystemSpec& spec, int nodes,
                                          model::IoMode mode, int steps,
                                          double compute_seconds) {
  const std::uint64_t per_rank = 8ull * 1024 * 1024 * 8 * sizeof(float);
  const std::uint64_t ranks =
      static_cast<std::uint64_t>(nodes) * spec.ranks_per_node;
  sim::RunConfig config;
  config.nodes = nodes;
  config.mode = mode;
  config.iterations = steps;
  config.compute_seconds = compute_seconds;
  config.bytes_per_epoch = per_rank * ranks;
  config.io_kind = storage::IoKind::kRead;
  config.prefetch_reads = true;
  return config;
}

}  // namespace apio::workloads
