// apio-repack: rebuilds a container without its dead space (shadowed
// metadata blocks, relocated filtered chunks), optionally re-filtering
// every chunked dataset — the h5repack of the apio-h5 format.
//
// Usage: apio_repack <in.h5> <out.h5> [none|rle|lz]
#include <cstdio>
#include <cstring>

#include "common/error.h"
#include "common/units.h"
#include "h5/repack.h"

int main(int argc, char** argv) {
  if (argc < 3 || argc > 4) {
    std::fprintf(stderr, "usage: %s <in.h5> <out.h5> [none|rle|lz]\n", argv[0]);
    return 2;
  }
  apio::h5::RepackOptions options;
  if (argc == 4) {
    if (std::strcmp(argv[3], "none") == 0) options.refilter = apio::h5::FilterId::kNone;
    else if (std::strcmp(argv[3], "rle") == 0) options.refilter = apio::h5::FilterId::kRle;
    else if (std::strcmp(argv[3], "lz") == 0) options.refilter = apio::h5::FilterId::kLz;
    else {
      std::fprintf(stderr, "unknown filter '%s'\n", argv[3]);
      return 2;
    }
  }
  try {
    auto source = apio::h5::open_file(argv[1]);
    auto destination = apio::h5::create_file(argv[2]);
    const auto result = apio::h5::repack(source, destination, options);
    destination->close();
    std::printf("%s -> %s: %llu groups, %llu datasets, %llu attributes, %s data\n",
                argv[1], argv[2],
                static_cast<unsigned long long>(result.groups_copied),
                static_cast<unsigned long long>(result.datasets_copied),
                static_cast<unsigned long long>(result.attributes_copied),
                apio::format_bytes(result.bytes_copied).c_str());
    std::printf("size: %s -> %s (%.1f%%)\n",
                apio::format_bytes(result.source_size).c_str(),
                apio::format_bytes(result.packed_size).c_str(),
                100.0 * static_cast<double>(result.packed_size) /
                    static_cast<double>(result.source_size));
  } catch (const apio::Error& e) {
    std::fprintf(stderr, "apio_repack: %s\n", e.what());
    return 1;
  }
  return 0;
}
