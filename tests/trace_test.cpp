// Tests for I/O tracing: the recording connector, CSV persistence,
// replay against fresh connectors, and the profile report.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "obs/trace_context.h"
#include "storage/memory_backend.h"
#include "vol/async_connector.h"
#include "vol/native_connector.h"
#include "vol/trace.h"

namespace apio::vol {
namespace {

h5::FilePtr mem_file() {
  return h5::File::create(std::make_shared<storage::MemoryBackend>());
}

/// Creates a container with the structure traces in these tests use.
h5::FilePtr make_structure() {
  auto file = mem_file();
  auto g = file->root().create_group("out");
  g.create_dataset("field", h5::Datatype::kFloat32, {64});
  g.create_dataset("ids", h5::Datatype::kInt32, {32});
  return file;
}

Trace record_sample_workload(h5::FilePtr file) {
  TraceRecorder recorder(std::make_shared<NativeConnector>(file));
  auto field = file->dataset_at("out/field");
  auto ids = file->dataset_at("out/ids");

  std::vector<float> values(32);
  std::iota(values.begin(), values.end(), 0.0f);
  recorder.dataset_write(field, h5::Selection::offsets({0}, {32}),
                         std::as_bytes(std::span<const float>(values)));
  recorder.dataset_write(field, h5::Selection::offsets({32}, {32}),
                         std::as_bytes(std::span<const float>(values)));
  std::vector<std::int32_t> id_values(32, 7);
  recorder.dataset_write(ids, h5::Selection::all(),
                         std::as_bytes(std::span<const std::int32_t>(id_values)));
  std::vector<float> sink(32);
  recorder.dataset_read(field, h5::Selection::offsets({0}, {32}),
                        std::as_writable_bytes(std::span<float>(sink)));
  recorder.prefetch(field, h5::Selection::offsets({32}, {32}));
  recorder.flush();
  return recorder.trace();
}

TEST(TraceRecorderTest, CapturesAllOperationKinds) {
  auto file = make_structure();
  const Trace trace = record_sample_workload(file);
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace.events()[0].kind, TraceEvent::Kind::kWrite);
  EXPECT_EQ(trace.events()[0].dataset_path, "out/field");
  EXPECT_EQ(trace.events()[0].bytes, 32u * sizeof(float));
  EXPECT_EQ(trace.events()[2].dataset_path, "out/ids");
  EXPECT_EQ(trace.events()[3].kind, TraceEvent::Kind::kRead);
  EXPECT_EQ(trace.events()[4].kind, TraceEvent::Kind::kPrefetch);
  EXPECT_EQ(trace.events()[4].bytes, 32u * sizeof(float));
  EXPECT_EQ(trace.events()[5].kind, TraceEvent::Kind::kFlush);
}

TEST(TraceRecorderTest, CausalTraceIdsRideTheRecordStream) {
  auto& collector = obs::trace::TraceCollector::instance();
  collector.clear();
  collector.set_sampling_period(1);
  collector.set_enabled(true);

  auto file = make_structure();
  TraceRecorder recorder(std::make_shared<AsyncConnector>(file));
  auto field = file->dataset_at("out/field");
  std::vector<float> values(32, 1.0f);
  recorder
      .dataset_write(field, h5::Selection::offsets({0}, {32}),
                     std::as_bytes(std::span<const float>(values)))
      ->wait();
  recorder.wait_all();
  const Trace trace = recorder.trace();
  recorder.close();
  collector.set_enabled(false);
  collector.clear();

  ASSERT_EQ(trace.size(), 1u);
  EXPECT_NE(trace.events()[0].trace_id, 0u);
  EXPECT_NE(trace.events()[0].span_id, 0u);
}

TEST(TraceRecorderTest, IssueTimesMonotone) {
  auto file = make_structure();
  const Trace trace = record_sample_workload(file);
  double prev = -1.0;
  for (const auto& e : trace.events()) {
    EXPECT_GE(e.issue_time, prev);
    prev = e.issue_time;
    EXPECT_GE(e.blocking_seconds, 0.0);
  }
}

TEST(TraceTest, CsvRoundTrip) {
  auto file = make_structure();
  const Trace trace = record_sample_workload(file);
  const std::string csv = trace.to_csv();
  const Trace parsed = Trace::from_csv(csv);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = trace.events()[i];
    const auto& b = parsed.events()[i];
    EXPECT_EQ(a.kind, b.kind) << i;
    EXPECT_EQ(a.dataset_path, b.dataset_path) << i;
    EXPECT_EQ(a.bytes, b.bytes) << i;
    EXPECT_EQ(a.selection.is_all(), b.selection.is_all()) << i;
    if (!a.selection.is_all()) {
      EXPECT_EQ(a.selection.slab().start, b.selection.slab().start) << i;
      EXPECT_EQ(a.selection.slab().count, b.selection.slab().count) << i;
    }
  }
}

TEST(TraceTest, CsvRejectsGarbage) {
  EXPECT_THROW(Trace::from_csv("9,x,all,1,0,0\n"), FormatError);
  EXPECT_THROW(Trace::from_csv("0,p\n"), FormatError);
  EXPECT_THROW(Trace::from_csv("0,p,0:1:2,4,0,0\n"), FormatError);
  // Between the legacy 6-column and current 8-column layouts lies
  // nothing: a truncated id pair is malformed, as is a 9th column.
  EXPECT_THROW(Trace::from_csv("0,p,all,4,0,0,17\n"), FormatError);
  EXPECT_THROW(Trace::from_csv("0,p,all,4,0,0,17,18,19\n"), FormatError);
}

TEST(TraceTest, CsvCarriesTraceIds) {
  Trace trace;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kWrite;
  e.dataset_path = "d";
  e.selection = h5::Selection::offsets({0}, {8});
  e.bytes = 8;
  e.trace_id = 42;
  e.span_id = 7;
  trace.append(e);
  const std::string csv = trace.to_csv();
  EXPECT_NE(csv.find("trace_id,span_id"), std::string::npos);

  const Trace parsed = Trace::from_csv(csv);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.events()[0].trace_id, 42u);
  EXPECT_EQ(parsed.events()[0].span_id, 7u);
}

TEST(TraceTest, LegacySixColumnCsvParsesWithZeroIds) {
  const Trace parsed = Trace::from_csv(
      "kind,path,selection,bytes,issue_time,blocking\n"
      "0,d,all,16,0.5,0.25\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed.events()[0].bytes, 16u);
  EXPECT_DOUBLE_EQ(parsed.events()[0].issue_time, 0.5);
  EXPECT_EQ(parsed.events()[0].trace_id, 0u);
  EXPECT_EQ(parsed.events()[0].span_id, 0u);
}

// Dataset paths are user-controlled, so the CSV layer must quote the
// separator, quote and newline characters (RFC 4180) rather than
// corrupt neighbouring fields.
TEST(TraceTest, CsvEscapesAwkwardPaths) {
  const std::vector<std::string> paths = {
      "plain",
      "with,comma",
      "with \"quotes\" inside",
      "line\nbreak",
      "cr\rlf\r\nmix",
      ",\"start and end\"",
  };
  Trace trace;
  std::uint64_t bytes = 8;
  for (const auto& path : paths) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kWrite;
    e.dataset_path = path;
    e.selection = h5::Selection::offsets({0}, {bytes});
    e.bytes = bytes;
    trace.append(e);
    bytes += 8;
  }
  const Trace parsed = Trace::from_csv(trace.to_csv());
  ASSERT_EQ(parsed.size(), paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_EQ(parsed.events()[i].dataset_path, paths[i]) << i;
    EXPECT_EQ(parsed.events()[i].bytes, 8 * (i + 1)) << i;
  }
}

TEST(TraceTest, CsvRejectsMalformedQuoting) {
  // Unterminated quoted field.
  EXPECT_THROW(Trace::from_csv("0,\"no closing quote,all,1,0,0\n"),
               FormatError);
  // Garbage between closing quote and the next separator.
  EXPECT_THROW(Trace::from_csv("0,\"p\"x,all,1,0,0\n"), FormatError);
  // A quoted field must not swallow the rest of the row's fields.
  EXPECT_THROW(Trace::from_csv("0,\"p,all,1,0,0\"\n"), FormatError);
}

TEST(TraceTest, StridedSelectionSurvivesCsv) {
  Trace trace;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kWrite;
  e.dataset_path = "d";
  h5::Hyperslab slab;
  slab.start = {1, 2};
  slab.count = {3, 4};
  slab.stride = {2, 2};
  slab.block = {1, 2};
  e.selection = h5::Selection::hyperslab(slab);
  e.bytes = 96;
  trace.append(e);
  const Trace parsed = Trace::from_csv(trace.to_csv());
  const auto& s = parsed.events()[0].selection.slab();
  EXPECT_EQ(s.stride, (h5::Dims{2, 2}));
  EXPECT_EQ(s.block, (h5::Dims{1, 2}));
}

TEST(ReplayTest, ReplaysWriteTraceIntoTwinContainer) {
  auto original = make_structure();
  const Trace trace = record_sample_workload(original);

  // A fresh container with the same structure; replay through async.
  auto twin = make_structure();
  AsyncConnector connector(twin);
  const auto result = replay_trace(trace, connector);
  EXPECT_EQ(result.operations, trace.size());
  EXPECT_EQ(result.bytes_written, 3u * 32 * 4);
  EXPECT_EQ(result.bytes_read, 32u * 4);
  EXPECT_GT(result.total_seconds, 0.0);

  // Replayed writes filled the datasets with the synthetic pattern.
  auto field = twin->dataset_at("out/field");
  auto values = field.read_vector<float>(h5::Selection::all());
  float expected;
  std::uint32_t bits = 0xA5A5A5A5u;
  std::memcpy(&expected, &bits, sizeof expected);
  EXPECT_EQ(values[0], expected);
  connector.close();
}

TEST(ReplayTest, MissingDatasetSurfacesNotFound) {
  auto original = make_structure();
  const Trace trace = record_sample_workload(original);
  auto empty = mem_file();  // no structure
  NativeConnector connector(empty);
  EXPECT_THROW(replay_trace(trace, connector), NotFoundError);
}

TEST(ProfileTest, AggregatesPerDataset) {
  auto file = make_structure();
  const Trace trace = record_sample_workload(file);
  IoProfile profile(trace);
  EXPECT_EQ(profile.total_operations(), 6u);
  const auto& field = profile.per_dataset().at("out/field");
  EXPECT_EQ(field.writes, 2u);
  EXPECT_EQ(field.reads, 2u);  // explicit read + prefetch
  EXPECT_EQ(field.bytes_written, 2u * 32 * 4);
  const auto& ids = profile.per_dataset().at("out/ids");
  EXPECT_EQ(ids.writes, 1u);
  EXPECT_EQ(ids.reads, 0u);
}

TEST(ProfileTest, SizeHistogramBucketsRequests) {
  auto file = make_structure();
  const Trace trace = record_sample_workload(file);
  IoProfile profile(trace);
  // All five dataset ops move 128 bytes => bucket log2(128) = 7.
  EXPECT_EQ(profile.size_histogram()[7], 5u);
  EXPECT_EQ(profile.total_bytes(), 5u * 128);
  const std::string report = profile.report();
  EXPECT_NE(report.find("out/field"), std::string::npos);
  EXPECT_NE(report.find("128.00 B"), std::string::npos);
}

TEST(PathOfTest, ResolvesNestedPaths) {
  auto file = mem_file();
  auto g = file->ensure_path("a/b/c");
  auto ds = g.create_dataset("leaf", h5::Datatype::kInt8, {1});
  EXPECT_EQ(file->path_of(ds), "a/b/c/leaf");
  auto top = file->root().create_dataset("top", h5::Datatype::kInt8, {1});
  EXPECT_EQ(file->path_of(top), "top");
}

TEST(PathOfTest, ForeignHandleRejected) {
  auto file_a = mem_file();
  auto file_b = mem_file();
  auto ds = file_a->root().create_dataset("d", h5::Datatype::kInt8, {1});
  EXPECT_THROW(file_b->path_of(ds), NotFoundError);
}

}  // namespace
}  // namespace apio::vol
