#include "common/crc32.h"

#include <array>

namespace apio {
namespace {

constexpr std::uint32_t kPolynomial = 0x82F63B78u;  // reflected CRC-32C

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = build_table();
  return t;
}

}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed) {
  const auto& t = table();
  std::uint32_t crc = ~seed;
  for (std::byte b : data) {
    crc = (crc >> 8) ^ t[(crc ^ std::to_integer<std::uint32_t>(b)) & 0xFFu];
  }
  return ~crc;
}

}  // namespace apio
