// Resilience tests: retry/backoff policy, circuit breaker, resilient
// backend decorator and the async connector's recovery paths, driven by
// a deterministic fault matrix.
//
// Everything runs on virtual time: resilience::ManualClock is injected
// as both Clock and Sleeper, so the exact backoff schedule is asserted
// (sleep-by-sleep) and no test ever wall-sleeps.
//
// The centerpiece is ResilienceMatrixTest: {write, read, flush} ×
// {countdown, every-N, offset-range, permanent} × {no-retry, bounded,
// deadline, sync-fallback}, each cell asserting the request outcome
// (attempts, degraded, deadline_exhausted), the EventSet error record
// (identity + category), the obs counters (io.retries et al.), the
// connector's AsyncStats and — via File::open's checksum validation —
// the final bytes in the container.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "h5/file.h"
#include "obs/metrics.h"
#include "pmpi/world.h"
#include "resilience/circuit_breaker.h"
#include "resilience/retry.h"
#include "storage/faulty_backend.h"
#include "storage/memory_backend.h"
#include "storage/resilient_backend.h"
#include "vol/async_connector.h"
#include "vol/event_set.h"
#include "workloads/checkpoint_app.h"

namespace apio {
namespace {

using resilience::BreakerOptions;
using resilience::BreakerState;
using resilience::CircuitBreaker;
using resilience::ManualClock;
using resilience::RetryPolicy;
using resilience::run_with_retry;
using storage::FaultPlan;
using storage::FaultyBackend;

std::span<const std::byte> bytes_of(const std::vector<std::uint8_t>& v) {
  return std::as_bytes(std::span<const std::uint8_t>(v));
}

std::span<std::byte> writable(std::vector<std::uint8_t>& v) {
  return std::as_writable_bytes(std::span<std::uint8_t>(v));
}

std::uint64_t counter_total(const obs::RegistrySnapshot& snap,
                            const std::string& name) {
  return snap.counter_total(name);
}

// ---------------------------------------------------------------------------
// RetryPolicy: backoff schedule and jitter.

TEST(ResilienceRetryPolicyTest, BackoffIsExponentialAndClamped) {
  RetryPolicy p;
  p.base_backoff_seconds = 0.5;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 3.0;
  p.jitter_fraction = 0.0;
  Rng rng(1);
  EXPECT_DOUBLE_EQ(p.backoff_for(1, rng), 0.5);
  EXPECT_DOUBLE_EQ(p.backoff_for(2, rng), 1.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(3, rng), 2.0);
  EXPECT_DOUBLE_EQ(p.backoff_for(4, rng), 3.0);  // clamped from 4.0
  EXPECT_DOUBLE_EQ(p.backoff_for(5, rng), 3.0);
}

TEST(ResilienceRetryPolicyTest, JitterIsSeededBoundedAndReproducible) {
  RetryPolicy p;
  p.base_backoff_seconds = 1.0;
  p.max_backoff_seconds = 10.0;
  p.jitter_fraction = 0.25;
  Rng a(7);
  Rng b(7);
  Rng c(8);
  const double x = p.backoff_for(1, a);
  const double y = p.backoff_for(1, b);
  const double z = p.backoff_for(1, c);
  EXPECT_DOUBLE_EQ(x, y);  // same seed, same schedule
  EXPECT_NE(x, z);         // different seed, different draw
  EXPECT_GE(x, 0.75);
  EXPECT_LT(x, 1.25);
}

TEST(ResilienceRetryPolicyTest, ValidateRejectsNonsense) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_THROW(p.validate(), Error);
  p = RetryPolicy{};
  p.jitter_fraction = 1.5;
  EXPECT_THROW(p.validate(), Error);
  p = RetryPolicy{};
  p.backoff_multiplier = 0.5;
  EXPECT_THROW(p.validate(), Error);
}

// ---------------------------------------------------------------------------
// ManualClock: virtual time for zero-wall-sleep tests.

TEST(ResilienceManualClockTest, AdvancesVirtuallyAndLogsSleeps) {
  ManualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  EXPECT_DOUBLE_EQ(clock.now(), 1.5);
  clock.sleep(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 1.75);
  EXPECT_EQ(clock.sleeps(), std::vector<double>{0.25});
  EXPECT_DOUBLE_EQ(clock.total_slept(), 0.25);
  EXPECT_EQ(clock.sleep_count(), 1u);
}

// ---------------------------------------------------------------------------
// run_with_retry: the synchronous retry loop.

TEST(ResilienceRetrySessionTest, RetriesTransientUntilSuccess) {
  ManualClock clock;
  RetryPolicy p;
  p.max_attempts = 5;
  p.base_backoff_seconds = 0.5;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 8.0;
  int calls = 0;
  const auto outcome = run_with_retry(p, clock, clock, nullptr, [&] {
    if (++calls < 3) throw TransientIoError("flaky");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_DOUBLE_EQ(outcome.backoff_seconds, 0.5 + 1.0);
  EXPECT_EQ(clock.sleeps(), (std::vector<double>{0.5, 1.0}));
}

TEST(ResilienceRetrySessionTest, PermanentErrorFailsFast) {
  ManualClock clock;
  RetryPolicy p;
  p.max_attempts = 5;
  int calls = 0;
  EXPECT_THROW((void)run_with_retry(p, clock, clock, nullptr,
                                    [&] {
                                      ++calls;
                                      throw IoError("dead");
                                    }),
               IoError);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.sleep_count(), 0u);
}

TEST(ResilienceRetrySessionTest, RetryPermanentOptInRetriesIoError) {
  ManualClock clock;
  RetryPolicy p;
  p.max_attempts = 5;
  p.base_backoff_seconds = 0.1;
  p.retry_permanent = true;
  int calls = 0;
  const auto outcome = run_with_retry(p, clock, clock, nullptr, [&] {
    if (++calls < 3) throw IoError("flaky-but-permanent-looking");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(outcome.attempts, 3);
}

TEST(ResilienceRetrySessionTest, DeadlineAbandonsInsteadOfSleeping) {
  ManualClock clock;
  RetryPolicy p;
  p.max_attempts = 100;
  p.base_backoff_seconds = 1.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 8.0;
  p.deadline_seconds = 2.5;
  int calls = 0;
  EXPECT_THROW((void)run_with_retry(p, clock, clock, nullptr,
                                    [&] {
                                      ++calls;
                                      throw TransientIoError("down");
                                    }),
               TransientIoError);
  // Attempt 1 fails at t=0, backoff 1.0 fits the 2.5 s budget; attempt 2
  // fails at t=1, backoff 2.0 would overrun -> abandoned unslept.
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(clock.sleeps(), std::vector<double>{1.0});
}

// ---------------------------------------------------------------------------
// CircuitBreaker state machine on virtual time.

TEST(ResilienceBreakerTest, TripsAfterThresholdCoolsDownAndRecovers) {
  ManualClock clock;
  BreakerOptions bo;
  bo.failure_threshold = 3;
  bo.open_seconds = 5.0;
  CircuitBreaker breaker(bo, &clock, "unit");

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.on_failure();
  breaker.on_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 2);
  EXPECT_TRUE(breaker.allow());

  breaker.on_failure();  // third consecutive failure trips
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow());

  clock.advance(4.9);
  EXPECT_FALSE(breaker.allow());  // still cooling down
  clock.advance(0.2);
  EXPECT_TRUE(breaker.allow());  // cooldown elapsed: half-open probe
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

  breaker.on_failure();  // failed probe re-trips immediately
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);

  clock.advance(5.1);
  EXPECT_TRUE(breaker.allow());
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

// ---------------------------------------------------------------------------
// FaultyBackend patterns and the heal/arm contract.

TEST(ResilienceFaultyBackendTest, EveryNFailsOnSchedule) {
  FaultPlan plan;
  plan.fail_every_n_writes = 3;
  FaultyBackend backend(std::make_shared<storage::MemoryBackend>(), plan);
  std::vector<std::byte> data(4, std::byte{1});
  backend.write(0, data);
  backend.write(4, data);
  EXPECT_THROW(backend.write(8, data), IoError);  // call 3
  backend.write(8, data);
  backend.write(12, data);
  EXPECT_THROW(backend.write(16, data), IoError);  // call 6
  EXPECT_EQ(backend.faults_injected(), 2u);
}

TEST(ResilienceFaultyBackendTest, OffsetRangeFaultsIntersectingAccesses) {
  FaultPlan plan;
  plan.fault_offset_begin = 8;
  plan.fault_offset_end = 16;
  FaultyBackend backend(std::make_shared<storage::MemoryBackend>(), plan);
  std::vector<std::byte> data(8, std::byte{1});
  backend.write(0, data);                          // [0, 8): clear
  EXPECT_THROW(backend.write(4, data), IoError);   // [4, 12): intersects
  backend.write(16, data);                         // [16, 24): clear
  std::vector<std::byte> out(8);
  EXPECT_THROW(backend.read(12, out), IoError);    // [12, 20): intersects
  backend.read(0, out);
  backend.flush();  // flushes carry no offset and never match
}

TEST(ResilienceFaultyBackendTest, TransientPlansThrowTransientIoError) {
  FaultPlan plan;
  plan.fail_every_n_writes = 1;
  plan.transient = true;
  FaultyBackend backend(std::make_shared<storage::MemoryBackend>(), plan);
  std::vector<std::byte> data(4, std::byte{1});
  EXPECT_THROW(backend.write(0, data), TransientIoError);
  try {
    backend.write(0, data);
    FAIL() << "expected an injected fault";
  } catch (...) {
    EXPECT_EQ(resilience::classify_error(std::current_exception()),
              resilience::ErrorClass::kTransient);
  }
}

TEST(ResilienceFaultyBackendTest, AutoHealsAfterConfiguredFaults) {
  FaultPlan plan;
  plan.fail_every_n_writes = 1;
  plan.heal_after_faults = 2;
  FaultyBackend backend(std::make_shared<storage::MemoryBackend>(), plan);
  std::vector<std::byte> data(4, std::byte{1});
  EXPECT_THROW(backend.write(0, data), IoError);
  EXPECT_THROW(backend.write(0, data), IoError);
  backend.write(0, data);  // outage cleared
  EXPECT_TRUE(backend.healed());
  EXPECT_EQ(backend.faults_injected(), 2u);
}

TEST(ResilienceFaultyBackendTest, HealResetsCountdownBeforeArm) {
  FaultPlan plan;
  plan.fail_writes_after = 1;
  FaultyBackend backend(std::make_shared<storage::MemoryBackend>(), plan);
  std::vector<std::byte> data(4, std::byte{1});
  backend.write(0, data);
  EXPECT_THROW(backend.write(4, data), IoError);
  EXPECT_THROW(backend.write(4, data), IoError);

  backend.heal();
  backend.write(4, data);
  backend.write(8, data);

  // Re-arming replays a FRESH countdown (one success, then faults),
  // not the stale exhausted one — the regression the release/acquire
  // contract in faulty_backend.h pins down.
  backend.arm();
  backend.write(12, data);
  EXPECT_THROW(backend.write(16, data), IoError);
}

// ---------------------------------------------------------------------------
// ResilientBackend: the synchronous decorator.

TEST(ResilienceResilientBackendTest, RetriesTransientWritesToCompletion) {
  FaultPlan plan;
  plan.fail_writes_after = 0;
  plan.transient = true;
  plan.heal_after_faults = 2;
  auto faulty = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);

  ManualClock manual;
  storage::ResilienceOptions ro;
  ro.retry.max_attempts = 5;
  ro.retry.base_backoff_seconds = 1.0;
  ro.retry.backoff_multiplier = 2.0;
  ro.retry.max_backoff_seconds = 8.0;
  storage::ResilientBackend backend(faulty, ro, &manual, &manual);

  const std::vector<std::uint8_t> data{1, 2, 3, 4};
  backend.write(0, bytes_of(data));  // two faults, then success
  EXPECT_EQ(backend.retries(), 2u);
  EXPECT_EQ(manual.sleeps(), (std::vector<double>{1.0, 2.0}));

  std::vector<std::uint8_t> out(4);
  backend.read(0, writable(out));
  EXPECT_EQ(out, data);
  EXPECT_EQ(backend.name(), "resilient(faulty(memory))");
}

TEST(ResilienceResilientBackendTest, PermanentErrorsAreNotRetried) {
  FaultPlan plan;
  plan.fail_every_n_writes = 1;  // every write fails, classified permanent
  auto faulty = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);
  ManualClock manual;
  storage::ResilienceOptions ro;
  ro.retry.max_attempts = 5;
  storage::ResilientBackend backend(faulty, ro, &manual, &manual);
  const std::vector<std::uint8_t> data{1};
  EXPECT_THROW(backend.write(0, bytes_of(data)), IoError);
  EXPECT_EQ(backend.retries(), 0u);
  EXPECT_EQ(manual.sleep_count(), 0u);
  EXPECT_EQ(faulty->faults_injected(), 1u);
}

TEST(ResilienceResilientBackendTest, BreakerShedsLoadDuringOutage) {
  FaultPlan plan;
  plan.fail_every_n_writes = 1;
  plan.transient = true;
  auto faulty = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);

  ManualClock manual;
  storage::ResilienceOptions ro;
  ro.retry.max_attempts = 1;  // isolate the breaker from the retry loop
  ro.breaker.failure_threshold = 3;
  ro.breaker.open_seconds = 10.0;
  storage::ResilientBackend backend(faulty, ro, &manual, &manual);
  ASSERT_NE(backend.breaker(), nullptr);

  const std::vector<std::uint8_t> data{1};
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(backend.write(0, bytes_of(data)), TransientIoError);
  }
  EXPECT_EQ(backend.breaker()->state(), BreakerState::kOpen);

  // While open, attempts are rejected before reaching the backend.
  EXPECT_THROW(backend.write(0, bytes_of(data)), resilience::BreakerOpenError);
  EXPECT_EQ(faulty->faults_injected(), 3u);

  manual.advance(11.0);
  faulty->heal();
  backend.write(0, bytes_of(data));  // half-open probe succeeds
  EXPECT_EQ(backend.breaker()->state(), BreakerState::kClosed);
  EXPECT_EQ(backend.breaker()->trips(), 1u);
}

// ---------------------------------------------------------------------------
// Request identity on failure.

TEST(ResilienceRequestIdentityTest, FailedRequestCarriesFullIdentity) {
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), FaultPlan{});
  auto file = h5::File::create(backend);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {64});

  FaultPlan plan;
  plan.fail_every_n_writes = 1;  // permanent: no retry, fails outright
  backend->set_plan(plan);

  vol::AsyncConnector connector(file);
  const std::vector<std::uint8_t> payload(16, 0xAA);
  auto req = connector.dataset_write(ds, h5::Selection::offsets({16}, {16}),
                                     bytes_of(payload));
  EXPECT_THROW(req->wait(), IoError);
  EXPECT_TRUE(req->failed());
  EXPECT_EQ(req->error_category(), "io");
  EXPECT_NE(req->error_message().find("injected write fault"),
            std::string::npos);
  EXPECT_EQ(req->info().op, obs::IoOp::kWrite);
  EXPECT_EQ(req->info().dataset_path, "d");
  EXPECT_EQ(req->info().offset, 16u);
  EXPECT_EQ(req->info().bytes, 16u);
  EXPECT_EQ(req->attempts(), 1);
  EXPECT_FALSE(req->degraded());

  // The EventSet error line aggregates identity + message + taxonomy.
  vol::EventSet es;
  es.insert(req);
  es.wait();
  ASSERT_EQ(es.num_errors(), 1u);
  const std::string line = es.error_messages()[0];
  EXPECT_NE(line.find("write d"), std::string::npos);
  EXPECT_NE(line.find("injected write fault"), std::string::npos);
  EXPECT_NE(line.find("category=io"), std::string::npos);
  EXPECT_NE(line.find("attempts=1"), std::string::npos);

  backend->heal();
  connector.close();
}

// ---------------------------------------------------------------------------
// The fault matrix.

enum class TargetOp { kWrite, kRead, kFlush };
enum class Pattern { kCountdown, kEveryN, kOffsetRange, kPermanent };
enum class PolicyKind { kNoRetry, kBounded, kDeadline, kSyncFallback };

const char* name_of(TargetOp op) {
  switch (op) {
    case TargetOp::kWrite: return "Write";
    case TargetOp::kRead: return "Read";
    case TargetOp::kFlush: return "Flush";
  }
  return "?";
}

const char* name_of(Pattern p) {
  switch (p) {
    case Pattern::kCountdown: return "Countdown";
    case Pattern::kEveryN: return "EveryN";
    case Pattern::kOffsetRange: return "OffsetRange";
    case Pattern::kPermanent: return "Permanent";
  }
  return "?";
}

const char* name_of(PolicyKind pk) {
  switch (pk) {
    case PolicyKind::kNoRetry: return "NoRetry";
    case PolicyKind::kBounded: return "Bounded";
    case PolicyKind::kDeadline: return "Deadline";
    case PolicyKind::kSyncFallback: return "SyncFallback";
  }
  return "?";
}

obs::IoOp to_io_op(TargetOp op) {
  switch (op) {
    case TargetOp::kWrite: return obs::IoOp::kWrite;
    case TargetOp::kRead: return obs::IoOp::kRead;
    case TargetOp::kFlush: return obs::IoOp::kFlush;
  }
  return obs::IoOp::kWrite;
}

/// The fault plan that drives one matrix cell.  `data_offset` is the
/// backend offset of the target dataset's data region (for the
/// offset-range pattern).
FaultPlan make_plan(TargetOp op, Pattern pattern, std::uint64_t data_offset) {
  FaultPlan plan;
  plan.transient = true;
  switch (pattern) {
    case Pattern::kCountdown:
      // Fail from the first call; the outage clears after two faults.
      plan.heal_after_faults = 2;
      if (op == TargetOp::kWrite) plan.fail_writes_after = 0;
      if (op == TargetOp::kRead) plan.fail_reads_after = 0;
      if (op == TargetOp::kFlush) plan.fail_flushes_after = 0;
      break;
    case Pattern::kEveryN:
      // A warm-up op takes call 1; the target faults on call 2 and its
      // retry (call 3) succeeds.
      if (op == TargetOp::kWrite) plan.fail_every_n_writes = 2;
      if (op == TargetOp::kRead) plan.fail_every_n_reads = 2;
      if (op == TargetOp::kFlush) plan.fail_every_n_flushes = 2;
      break;
    case Pattern::kOffsetRange:
      // Exactly the target selection's backend range; one fault, then
      // the outage clears.  Flushes carry no offset and never match.
      plan.fault_offset_begin = data_offset + 16;
      plan.fault_offset_end = data_offset + 32;
      plan.heal_after_faults = 1;
      break;
    case Pattern::kPermanent:
      plan.transient = false;
      if (op == TargetOp::kWrite) plan.fail_every_n_writes = 1;
      if (op == TargetOp::kRead) plan.fail_every_n_reads = 1;
      if (op == TargetOp::kFlush) plan.fail_every_n_flushes = 1;
      break;
  }
  return plan;
}

/// The retry policy for one matrix cell.  All use base 1 s, x2, cap 8 s,
/// no jitter, so the virtual backoff schedule is exact.
RetryPolicy make_policy(PolicyKind pk) {
  RetryPolicy p;
  p.base_backoff_seconds = 1.0;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 8.0;
  p.jitter_fraction = 0.0;
  switch (pk) {
    case PolicyKind::kNoRetry:
      p.max_attempts = 1;
      break;
    case PolicyKind::kBounded:
      p.max_attempts = 4;
      break;
    case PolicyKind::kDeadline:
      p.max_attempts = 100;
      p.deadline_seconds = 2.5;
      break;
    case PolicyKind::kSyncFallback:
      p.max_attempts = 2;
      break;
  }
  return p;
}

struct Expected {
  bool success = true;
  bool degraded = false;
  bool deadline_exhausted = false;
  int attempts = 1;
  std::vector<double> sleeps;       // exact virtual backoff schedule
  std::uint64_t retries = 0;        // io.retries == vol.async.retries
  std::uint64_t failed = 0;         // vol.async.failed_ops
  std::string fail_category;        // "" on success
};

Expected compute_expected(TargetOp op, Pattern pattern, PolicyKind pk) {
  Expected e;
  switch (pattern) {
    case Pattern::kPermanent:
      // Never retried; sync-fallback replays but the replay faults too.
      e.success = false;
      e.fail_category = "io";
      e.failed = 1;
      return e;

    case Pattern::kCountdown:
      switch (pk) {
        case PolicyKind::kNoRetry:
          e.success = false;
          e.fail_category = "transient-io";
          e.failed = 1;
          return e;
        case PolicyKind::kBounded:
          // Faults on attempts 1 and 2; the outage clears (heal_after_
          // faults = 2) and attempt 3 succeeds.
          e.attempts = 3;
          e.sleeps = {1.0, 2.0};
          e.retries = 2;
          return e;
        case PolicyKind::kDeadline:
          // Attempt 2's 2.0 s backoff would overrun the 2.5 s budget.
          e.success = false;
          e.attempts = 2;
          e.sleeps = {1.0};
          e.retries = 1;
          e.deadline_exhausted = true;
          e.fail_category = "transient-io";
          e.failed = 1;
          return e;
        case PolicyKind::kSyncFallback:
          // Both allowed attempts fault (which clears the outage); the
          // write replays synchronously and degrades, reads/flushes
          // have no staged payload to replay and fail.
          e.attempts = 2;
          e.sleeps = {1.0};
          e.retries = 1;
          if (op == TargetOp::kWrite) {
            e.degraded = true;
          } else {
            e.success = false;
            e.fail_category = "transient-io";
            e.failed = 1;
          }
          return e;
      }
      return e;

    case Pattern::kEveryN:
    case Pattern::kOffsetRange:
      if (pattern == Pattern::kOffsetRange && op == TargetOp::kFlush) {
        return e;  // flushes carry no offset: trivial success
      }
      if (pk == PolicyKind::kNoRetry) {
        e.success = false;
        e.fail_category = "transient-io";
        e.failed = 1;
        return e;
      }
      // One fault, one retry, success — under every retrying policy.
      e.attempts = 2;
      e.sleeps = {1.0};
      e.retries = 1;
      return e;
  }
  return e;
}

/// Locates `needle` (the baseline data-region bytes) in the backend
/// image; the matrix uses it to aim the offset-range pattern.
std::uint64_t find_data_offset(storage::Backend& backend,
                               const std::vector<std::uint8_t>& needle) {
  std::vector<std::byte> image(backend.size());
  backend.read(0, image);
  const auto it = std::search(
      image.begin(), image.end(), needle.begin(), needle.end(),
      [](std::byte a, std::uint8_t b) {
        return std::to_integer<std::uint8_t>(a) == b;
      });
  EXPECT_NE(it, image.end()) << "baseline bytes not found in backend image";
  return static_cast<std::uint64_t>(it - image.begin());
}

class ResilienceMatrixTest
    : public testing::TestWithParam<std::tuple<TargetOp, Pattern, PolicyKind>> {
 protected:
  void SetUp() override {
    obs::Registry::instance().reset();
    obs::set_enabled(true);
  }
  void TearDown() override { obs::set_enabled(false); }
};

TEST_P(ResilienceMatrixTest, DrivesFaultToExpectedOutcome) {
  const auto [op, pattern, pk] = GetParam();
  const Expected expected = compute_expected(op, pattern, pk);

  auto memory = std::make_shared<storage::MemoryBackend>();
  auto backend = std::make_shared<FaultyBackend>(memory, FaultPlan{});
  auto file = h5::File::create(backend);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {64});

  // Baseline: 64 distinct ascending bytes, so the data region is
  // locatable in the backend image and any corruption shows up in the
  // final byte check.
  std::vector<std::uint8_t> baseline(64);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    baseline[i] = static_cast<std::uint8_t>(i);
  }
  ds.write<std::uint8_t>(h5::Selection::all(), baseline);
  const std::uint64_t data_offset = find_data_offset(*memory, baseline);

  backend->set_plan(make_plan(op, pattern, data_offset));

  ManualClock manual;
  vol::AsyncOptions options;
  options.retry = make_policy(pk);
  options.sync_fallback = (pk == PolicyKind::kSyncFallback);
  options.sleeper = &manual;
  auto connector =
      std::make_unique<vol::AsyncConnector>(file, options, &manual);

  const std::vector<std::uint8_t> lead(16, 0xBB);
  const std::vector<std::uint8_t> payload(16, 0xAA);
  std::vector<std::uint8_t> out_lead(16, 0);
  std::vector<std::uint8_t> out(16, 0);

  vol::EventSet es;
  const bool two_ops = (pattern == Pattern::kEveryN);
  if (two_ops) {
    // Warm-up op: takes per-op call 1 so the target lands on call 2.
    switch (op) {
      case TargetOp::kWrite:
        es.insert(connector->dataset_write(
            ds, h5::Selection::offsets({0}, {16}), bytes_of(lead)));
        break;
      case TargetOp::kRead:
        es.insert(connector->dataset_read(
            ds, h5::Selection::offsets({0}, {16}), writable(out_lead)));
        break;
      case TargetOp::kFlush:
        es.insert(connector->flush());
        break;
    }
  }

  vol::RequestPtr target;
  switch (op) {
    case TargetOp::kWrite:
      target = connector->dataset_write(ds, h5::Selection::offsets({16}, {16}),
                                        bytes_of(payload));
      break;
    case TargetOp::kRead:
      target = connector->dataset_read(ds, h5::Selection::offsets({16}, {16}),
                                       writable(out));
      break;
    case TargetOp::kFlush:
      target = connector->flush();
      break;
  }
  es.insert(target);
  es.wait();

  // Request outcome.
  EXPECT_TRUE(target->test());
  EXPECT_EQ(target->failed(), !expected.success);
  EXPECT_EQ(target->attempts(), expected.attempts);
  EXPECT_EQ(target->degraded(), expected.degraded);
  EXPECT_EQ(target->deadline_exhausted(), expected.deadline_exhausted);

  // Exact virtual backoff schedule — nothing ever wall-slept.
  EXPECT_EQ(manual.sleeps(), expected.sleeps);

  // EventSet error record with full identity.
  if (expected.success) {
    EXPECT_EQ(es.num_errors(), 0u);
  } else {
    const auto errors = es.errors();
    ASSERT_EQ(errors.size(), 1u);
    const vol::EventError& err = errors[0];
    EXPECT_EQ(err.category, expected.fail_category);
    EXPECT_EQ(err.attempts, expected.attempts);
    EXPECT_EQ(err.deadline_exhausted, expected.deadline_exhausted);
    EXPECT_NE(err.message.find("injected"), std::string::npos);
    EXPECT_EQ(err.info.op, to_io_op(op));
    if (op != TargetOp::kFlush) {
      EXPECT_EQ(err.info.dataset_path, "d");
      EXPECT_EQ(err.info.offset, 16u);
      EXPECT_EQ(err.info.bytes, 16u);
    }
  }

  // Obs counters: exact retry/degraded/deadline accounting.
  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(counter_total(snap, "io.retries"), expected.retries);
  EXPECT_EQ(counter_total(snap, "vol.async.retries"), expected.retries);
  EXPECT_EQ(counter_total(snap, "vol.async.failed_ops"), expected.failed);
  EXPECT_EQ(counter_total(snap, "vol.async.degraded_ops"),
            expected.degraded ? 1u : 0u);
  EXPECT_EQ(counter_total(snap, "io.degraded_ops"),
            expected.degraded ? 1u : 0u);
  EXPECT_EQ(counter_total(snap, "io.deadline_exhausted"),
            expected.deadline_exhausted ? 1u : 0u);
  const auto hist = snap.histograms.find("io.retry_backoff_seconds");
  const std::uint64_t backoff_count =
      hist == snap.histograms.end() ? 0 : hist->second.count;
  double backoff_sum =
      hist == snap.histograms.end() ? 0.0 : hist->second.sum_seconds;
  EXPECT_EQ(backoff_count, expected.sleeps.size());
  double want_sum = 0.0;
  for (double s : expected.sleeps) want_sum += s;
  EXPECT_NEAR(backoff_sum, want_sum, 1e-6);

  // AsyncStats agree with the registry.
  const auto stats = connector->stats();
  EXPECT_EQ(stats.retries, expected.retries);
  EXPECT_EQ(stats.failed_ops, expected.failed);
  EXPECT_EQ(stats.degraded_ops, expected.degraded ? 1u : 0u);

  // Reopen through the format-integrity path (File::open validates the
  // superblock and metadata checksums) and check the final bytes.
  backend->heal();
  connector->close();
  connector.reset();

  auto reopened = h5::File::open(backend);
  auto ds2 = reopened->root().open_dataset("d");
  std::vector<std::uint8_t> want = baseline;
  if (op == TargetOp::kWrite) {
    if (two_ops) std::fill(want.begin(), want.begin() + 16, 0xBB);
    if (expected.success) std::fill(want.begin() + 16, want.begin() + 32, 0xAA);
  }
  EXPECT_EQ(ds2.read_vector<std::uint8_t>(h5::Selection::all()), want);

  if (op == TargetOp::kRead) {
    if (expected.success) {
      EXPECT_EQ(out, std::vector<std::uint8_t>(baseline.begin() + 16,
                                               baseline.begin() + 32));
    } else {
      EXPECT_EQ(out, std::vector<std::uint8_t>(16, 0));  // untouched
    }
    if (two_ops) {
      EXPECT_EQ(out_lead, std::vector<std::uint8_t>(baseline.begin(),
                                                    baseline.begin() + 16));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FaultMatrix, ResilienceMatrixTest,
    testing::Combine(
        testing::Values(TargetOp::kWrite, TargetOp::kRead, TargetOp::kFlush),
        testing::Values(Pattern::kCountdown, Pattern::kEveryN,
                        Pattern::kOffsetRange, Pattern::kPermanent),
        testing::Values(PolicyKind::kNoRetry, PolicyKind::kBounded,
                        PolicyKind::kDeadline, PolicyKind::kSyncFallback)),
    [](const testing::TestParamInfo<ResilienceMatrixTest::ParamType>& info) {
      return std::string(name_of(std::get<0>(info.param))) + "_" +
             name_of(std::get<1>(info.param)) + "_" +
             name_of(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Concurrency: faults mid-epoch on 8 ranks, and shutdown racing retries.

TEST(ResilienceConcurrencyTest, EightRanksRetryMidEpochFaultsToCompletion) {
  obs::Registry::instance().reset();
  obs::set_enabled(true);

  constexpr int kRanks = 8;
  constexpr int kChunksPerRank = 4;
  constexpr std::uint64_t kChunk = 16;
  constexpr std::uint64_t kTotal = kRanks * kChunksPerRank * kChunk;

  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), FaultPlan{});
  auto file = h5::File::create(backend);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {kTotal});

  ManualClock manual;
  vol::AsyncOptions options;
  options.retry.max_attempts = 100;
  options.retry.base_backoff_seconds = 0.001;
  options.retry.max_backoff_seconds = 0.01;
  options.sleeper = &manual;
  vol::AsyncConnector connector(file, options, &manual);

  FaultPlan plan;
  plan.fail_every_n_writes = 5;
  plan.transient = true;
  backend->set_plan(plan);

  pmpi::run(kRanks, [&](pmpi::Communicator& comm) {
    vol::EventSet es;
    for (int i = 0; i < kChunksPerRank; ++i) {
      const int chunk = comm.rank() * kChunksPerRank + i;
      const std::vector<std::uint8_t> chunk_data(
          kChunk, static_cast<std::uint8_t>(chunk));
      es.insert(connector.dataset_write(
          ds,
          h5::Selection::offsets({static_cast<std::uint64_t>(chunk) * kChunk},
                                 {kChunk}),
          bytes_of(chunk_data)));
    }
    es.wait();
    EXPECT_EQ(es.num_errors(), 0u);
    comm.barrier();
  });

  // Deterministic retry math: the single background stream serializes
  // all backend writes; every 5th call faults and is retried until 32
  // chunks have landed.  The 32nd success is call 39 (39 - 39/5 = 32),
  // so exactly 7 faults were injected and 7 retries re-executed.
  const auto stats = connector.stats();
  EXPECT_EQ(stats.writes_enqueued, 32u);
  EXPECT_EQ(stats.retries, 7u);
  EXPECT_EQ(stats.failed_ops, 0u);
  EXPECT_EQ(stats.degraded_ops, 0u);
  EXPECT_EQ(backend->faults_injected(), 7u);

  // Registry agrees with AsyncStats.
  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(counter_total(snap, "io.retries"), 7u);
  EXPECT_EQ(counter_total(snap, "vol.async.retries"), 7u);
  EXPECT_EQ(counter_total(snap, "vol.async.failed_ops"), 0u);

  backend->heal();
  connector.close();
  obs::set_enabled(false);

  auto reopened = h5::File::open(backend);
  auto ds2 = reopened->root().open_dataset("d");
  const auto contents = ds2.read_vector<std::uint8_t>(h5::Selection::all());
  ASSERT_EQ(contents.size(), kTotal);
  for (std::size_t i = 0; i < contents.size(); ++i) {
    EXPECT_EQ(contents[i], static_cast<std::uint8_t>(i / kChunk))
        << "byte " << i;
  }
}

TEST(ResilienceConcurrencyTest, CloseDrainsFailingRetriesWithoutDeadlock) {
  auto memory = std::make_shared<storage::MemoryBackend>();
  auto backend = std::make_shared<FaultyBackend>(memory, FaultPlan{});
  auto file = h5::File::create(backend);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {64});

  std::vector<std::uint8_t> baseline(64);
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    baseline[i] = static_cast<std::uint8_t>(i);
  }
  ds.write<std::uint8_t>(h5::Selection::all(), baseline);
  const std::uint64_t data_offset = find_data_offset(*memory, baseline);

  // The whole data region faults transiently and never heals: every
  // data write retries to exhaustion while metadata traffic (other
  // offsets) stays healthy, so close() can still flush the container.
  FaultPlan plan;
  plan.fault_offset_begin = data_offset;
  plan.fault_offset_end = data_offset + 64;
  plan.transient = true;
  backend->set_plan(plan);

  ManualClock manual;
  vol::AsyncOptions options;
  options.retry.max_attempts = 5;
  options.retry.base_backoff_seconds = 0.001;
  options.sleeper = &manual;
  vol::AsyncConnector connector(file, options, &manual);

  const std::vector<std::uint8_t> payload(16, 0xAA);
  std::vector<vol::RequestPtr> requests;
  for (int i = 0; i < 4; ++i) {
    requests.push_back(connector.dataset_write(
        ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * 16}, {16}),
        bytes_of(payload)));
  }

  // Close while the ops are retrying: the drain must wait out every
  // op's full retry sequence without deadlocking or wedging the pool.
  connector.close();

  for (const auto& req : requests) {
    EXPECT_TRUE(req->test());
    EXPECT_TRUE(req->failed());
    EXPECT_EQ(req->attempts(), 5);
    EXPECT_EQ(req->error_category(), "transient-io");
  }
  const auto stats = connector.stats();
  EXPECT_EQ(stats.failed_ops, 4u);
  EXPECT_EQ(stats.retries, 16u);  // 4 ops x 4 re-executions each

  // The container survived: baseline intact under checksum validation.
  backend->heal();
  auto reopened = h5::File::open(backend);
  auto ds2 = reopened->root().open_dataset("d");
  EXPECT_EQ(ds2.read_vector<std::uint8_t>(h5::Selection::all()), baseline);
}

// ---------------------------------------------------------------------------
// Checkpoint workload: storage faults degrade the run instead of
// aborting it, and failures are counted collectively.

TEST(ResilienceCheckpointTest, FaultsDegradeRunInsteadOfAborting) {
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), FaultPlan{});
  auto file = h5::File::create(backend);
  vol::AsyncConnector connector(file);  // default policy: no retries

  // 3 checkpoints x 2 ranks = 6 data writes (metadata stays in memory
  // until flush); every 3rd faults permanently -> exactly 2 failures.
  FaultPlan plan;
  plan.fail_every_n_writes = 3;
  backend->set_plan(plan);

  workloads::CheckpointSchedule schedule;
  schedule.checkpoints = 3;
  schedule.steps_per_checkpoint = 1;
  schedule.seconds_per_step = 0.0;

  constexpr int kRanks = 2;
  std::array<workloads::CheckpointRunResult, kRanks> results;
  pmpi::run(kRanks, [&](pmpi::Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        workloads::run_checkpoint_app(
            connector, comm, schedule, 16,
            [&](int c) {
              file->root().create_dataset("ckpt" + std::to_string(c),
                                          h5::Datatype::kUInt8, {32});
            },
            [&](int c, std::vector<vol::RequestPtr>& outstanding) {
              auto ds =
                  file->root().open_dataset("ckpt" + std::to_string(c));
              const std::vector<std::uint8_t> chunk(
                  16, static_cast<std::uint8_t>(c));
              outstanding.push_back(connector.dataset_write(
                  ds,
                  h5::Selection::offsets(
                      {static_cast<std::uint64_t>(comm.rank()) * 16}, {16}),
                  bytes_of(chunk)));
              return 0.0;
            });
  });

  // The aggregated count is identical on every rank; the run completed
  // instead of aborting on the first failure.
  EXPECT_EQ(results[0].failed_requests, 2u);
  EXPECT_EQ(results[1].failed_requests, 2u);
  EXPECT_EQ(results[0].checkpoint_io_seconds.size(), 3u);

  std::size_t local_error_lines = 0;
  for (const auto& result : results) {
    for (const auto& line : result.local_errors) {
      ++local_error_lines;
      EXPECT_NE(line.find("injected write fault"), std::string::npos);
      EXPECT_NE(line.find("ckpt"), std::string::npos);
    }
  }
  EXPECT_EQ(local_error_lines, 2u);

  backend->heal();  // close() must flush metadata successfully
  connector.close();
}

}  // namespace
}  // namespace apio
