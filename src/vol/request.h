// Asynchronous request tokens returned by VOL operations, analogous to
// HDF5 event-set entries / the async VOL's internal task objects.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/error.h"
#include "obs/record.h"
#include "tasking/eventual.h"

namespace apio::vol {

/// Identity of one VOL operation, captured at issue time so failures
/// can be reported with full context long after the issuing call
/// returned (the request may fail on the background stream).
struct RequestInfo {
  obs::IoOp op = obs::IoOp::kWrite;
  /// Full in-file path of the dataset ("" when unknown).
  std::string dataset_path;
  /// Human-readable selection description ("all", "[start..start+count)").
  std::string selection;
  /// Linearized byte offset of the selection start within the dataset.
  std::uint64_t offset = 0;
  /// Payload size in bytes.
  std::uint64_t bytes = 0;

  /// "write tiles/temperature [8..24) @+64 (16 B)" style summary.
  std::string to_string() const;
};

/// Resolution detail shared between the connector (producer) and the
/// Request/EventSet (consumers).  The producer fills it on the
/// background stream strictly before completing the eventual; the
/// eventual's completion ordering makes it visible to observers.
struct RequestOutcome {
  /// Executions the operation took (1 = no retries).
  int attempts = 1;
  /// True when the async path failed and the staged data was replayed
  /// through the synchronous native path (degraded mode).
  bool degraded = false;
  /// True when retrying stopped because the per-request deadline would
  /// have been overrun.
  bool deadline_exhausted = false;
};

using RequestOutcomePtr = std::shared_ptr<RequestOutcome>;

/// Completion token for one VOL operation.
class Request {
 public:
  explicit Request(tasking::EventualPtr done, RequestInfo info = {},
                   RequestOutcomePtr outcome = nullptr)
      : done_(std::move(done)),
        info_(std::move(info)),
        outcome_(std::move(outcome)) {}

  /// Blocks until the operation completed; rethrows its error.
  void wait() { done_->wait(); }

  /// Non-blocking completion probe.
  bool test() const { return done_->test(); }

  bool failed() const { return done_->has_error(); }

  /// The captured failure message; "" while pending or on success.
  std::string error_message() const {
    return apio::error_message(done_->error());
  }

  /// Error taxonomy name ("transient-io", "io", "state", ...); "" while
  /// pending or on success.
  std::string error_category() const {
    return apio::error_category(done_->error());
  }

  const RequestInfo& info() const { return info_; }

  /// Executions the operation took so far as observed at completion
  /// (1 when the connector ran without resilience).
  int attempts() const { return outcome_ ? outcome_->attempts : 1; }

  /// True when the operation only completed via sync-fallback replay.
  bool degraded() const { return outcome_ && outcome_->degraded; }

  bool deadline_exhausted() const {
    return outcome_ && outcome_->deadline_exhausted;
  }

  const tasking::EventualPtr& eventual() const { return done_; }

 private:
  tasking::EventualPtr done_;
  RequestInfo info_;
  RequestOutcomePtr outcome_;
};

using RequestPtr = std::shared_ptr<Request>;

}  // namespace apio::vol
