// NativeConnector: the pass-through VOL connector — every operation is
// a blocking call into the apio-h5 data path (synchronous I/O mode).
#pragma once

#include "common/clock.h"
#include "vol/connector.h"

namespace apio::vol {

class NativeConnector final : public Connector {
 public:
  explicit NativeConnector(h5::FilePtr file, const Clock* clock = nullptr);

  const h5::FilePtr& file() const override { return file_; }

  RequestPtr dataset_write(h5::Dataset ds, const h5::Selection& selection,
                           std::span<const std::byte> data) override;
  RequestPtr dataset_read(h5::Dataset ds, const h5::Selection& selection,
                          std::span<std::byte> out) override;
  void prefetch(h5::Dataset ds, const h5::Selection& selection) override;
  RequestPtr flush() override;
  void wait_all() override {}
  void close() override;

 private:
  h5::FilePtr file_;
  WallClock wall_clock_;
  const Clock* clock_;
};

}  // namespace apio::vol
