// Cross-module integration tests: the model feedback loop attached to
// real connectors over throttled storage, advisor-vs-oracle decisions,
// model accuracy over simulated scaling sweeps, and consistency between
// the real async connector and the epoch simulator's pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.h"
#include "model/advisor.h"
#include "sim/epoch_sim.h"
#include "storage/memory_backend.h"
#include "storage/backend_stack.h"
#include "vol/async_connector.h"
#include "vol/native_connector.h"
#include "workloads/vpic_io.h"

namespace apio {
namespace {

using model::IoMode;

storage::BackendPtr slow_backend(double bandwidth, double latency = 0.0) {
  storage::ThrottleParams params;
  params.bandwidth = bandwidth;
  params.latency = latency;
  params.time_scale = 1.0;
  return storage::BackendStack::memory().throttled(params).build();
}

TEST(FeedbackLoopTest, AdvisorLearnsFromRealConnectors) {
  // A slow "PFS" (8 MiB/s) and fast staging: after observing both
  // modes, the advisor must recommend async when compute is ample and
  // sync when there is nothing to overlap with.
  auto advisor = std::make_shared<model::ModeAdvisor>();

  const std::uint64_t chunk = 256 * kKiB;
  std::vector<std::uint8_t> data(chunk, 1);

  {
    auto file = h5::File::create(slow_backend(8.0 * kMiB));
    vol::NativeConnector sync_conn(file);
    sync_conn.add_observer(advisor);
    auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {chunk * 8});
    for (int i = 0; i < 4; ++i) {
      sync_conn.dataset_write(
          ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * chunk}, {chunk}),
          std::as_bytes(std::span<const std::uint8_t>(data)));
    }
  }
  {
    auto file = h5::File::create(slow_backend(8.0 * kMiB));
    vol::AsyncConnector async_conn(file);
    async_conn.add_observer(advisor);
    auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {chunk * 8});
    for (int i = 0; i < 4; ++i) {
      async_conn.dataset_write(
          ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * chunk}, {chunk}),
          std::as_bytes(std::span<const std::uint8_t>(data)));
      async_conn.wait_all();  // keep queue short; we only need timing samples
    }
    async_conn.close();
  }

  ASSERT_TRUE(advisor->sync_ready());
  ASSERT_TRUE(advisor->async_ready());

  // The staging copy must be far faster than the throttled PFS.
  EXPECT_LT(advisor->estimate_transact_seconds(chunk, 1),
            0.5 * advisor->estimate_io_seconds(chunk, 1));

  advisor->record_compute(1.0);  // compute dwarfs both
  EXPECT_EQ(advisor->recommend(chunk, 1), IoMode::kAsync);

  // Recreate the compute estimator regime: negligible compute phases.
  auto cold = std::make_shared<model::ModeAdvisor>();
  for (const auto& s : advisor->history().all()) {
    vol::IoRecord r;
    r.op = s.op;
    r.bytes = s.data_size;
    r.ranks = s.ranks;
    r.blocking_seconds = static_cast<double>(s.data_size) / s.io_rate;
    r.completion_seconds = r.blocking_seconds;
    r.async = s.async;
    cold->on_io(r);
  }
  cold->record_compute(1e-6);
  // With ~zero compute, async cannot amortise the staging copy of an
  // epoch whose I/O it can't overlap with anything.
  const auto costs = cold->predict_epoch(chunk, 1);
  EXPECT_EQ(cold->recommend(chunk, 1),
            model::async_is_beneficial(costs) ? IoMode::kAsync : IoMode::kSync);
}

TEST(FeedbackLoopTest, SimulatorFeedsAdvisorFig2Loop) {
  // Run a weak-scaling sweep in the simulator with the advisor attached
  // as the Fig. 2 observer; the fitted model must then predict held-out
  // configurations accurately (the dotted lines of Fig. 3).
  const auto spec = sim::SystemSpec::summit();
  sim::EpochSimulator simulator(spec);
  auto advisor = std::make_shared<model::ModeAdvisor>();

  auto run_nodes = [&](int nodes, IoMode mode) {
    auto config = workloads::VpicIoKernel::sim_config(spec, nodes, mode);
    config.contention_sigma_override = 0.0;
    config.observer = advisor.get();
    return simulator.run(config);
  };

  for (int nodes : {2, 4, 8, 16, 32, 64}) {
    run_nodes(nodes, IoMode::kSync);
    run_nodes(nodes, IoMode::kAsync);
  }

  EXPECT_GT(advisor->sync_r_squared(), 0.80);   // paper: above 80 %
  EXPECT_GT(advisor->async_r_squared(), 0.90);  // paper: above 90 %

  // Held-out prediction at 128 nodes within 2x of the simulated truth
  // (log-scale figures; the paper's fits are trend fits, not exact).
  const int nodes = 128;
  const auto truth = run_nodes(nodes, IoMode::kSync);
  // The sim was just observed at 128 nodes too — rebuild an advisor
  // without those samples for a clean holdout.
  auto holdout = std::make_shared<model::ModeAdvisor>();
  for (const auto& s : advisor->history().all()) {
    if (s.ranks == nodes * 6) continue;
    vol::IoRecord r;
    r.op = s.op;
    r.bytes = s.data_size;
    r.ranks = s.ranks;
    r.blocking_seconds = static_cast<double>(s.data_size) / s.io_rate;
    r.completion_seconds = r.blocking_seconds;
    r.async = s.async;
    holdout->on_io(r);
  }
  const std::uint64_t bytes =
      workloads::VpicIoKernel::sim_config(spec, nodes, IoMode::kSync).bytes_per_epoch;
  const double predicted = holdout->estimate_io_seconds(bytes, nodes * 6);
  const double actual = truth.epochs.front().io_blocking_seconds;
  EXPECT_LT(std::fabs(std::log(predicted / actual)), std::log(2.0));
}

TEST(ConsistencyTest, RealAsyncConnectorMatchesSimulatorPipelineShape) {
  // The real connector on a throttled backend and the simulator's async
  // pipeline must agree qualitatively: caller-visible blocking is a
  // small fraction of the end-to-end completion when compute covers the
  // background transfer.
  // 0.5 s modelled background transfer: long enough that main-thread
  // descheduling (tens of ms when a parallel TSan run saturates the
  // cores) cannot push the staging-copy blocking time past the bound.
  const std::uint64_t bytes = 1ull * kMiB;
  auto file = h5::File::create(slow_backend(2.0 * kMiB));
  vol::AsyncConnector conn(file);

  class Capture : public vol::IoObserver {
   public:
    void on_io(const vol::IoRecord& r) override {
      std::lock_guard<std::mutex> lock(m);
      records.push_back(r);
    }
    std::mutex m;
    std::vector<vol::IoRecord> records;
  };
  auto capture = std::make_shared<Capture>();
  conn.add_observer(capture);

  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {bytes});
  std::vector<std::uint8_t> data(bytes, 3);
  conn.dataset_write(ds, h5::Selection::all(),
                     std::as_bytes(std::span<const std::uint8_t>(data)));
  conn.wait_all();
  conn.close();

  ASSERT_EQ(capture->records.size(), 1u);
  const auto& r = capture->records[0];
  // Blocking (staging memcpy) should be well under the ~0.5 s
  // background transfer of 1 MiB at 2 MiB/s.
  EXPECT_LT(r.blocking_seconds, 0.3 * r.completion_seconds);
}

TEST(ConsistencyTest, ThroughputGainMatchesEpochAlgebra) {
  // Execute the same epoch loop (compute + write) through both real
  // connectors and verify Eq. 2a/2b predicts the winner.
  const std::uint64_t bytes = 512 * kKiB;
  const double compute = 0.08;
  const double pfs_bw = 4.0 * kMiB;
  const int iterations = 4;

  auto run_mode = [&](bool async) {
    auto file = h5::File::create(slow_backend(pfs_bw));
    std::shared_ptr<vol::Connector> conn;
    if (async) conn = std::make_shared<vol::AsyncConnector>(file);
    else conn = std::make_shared<vol::NativeConnector>(file);
    auto ds = file->root().create_dataset(
        "d", h5::Datatype::kUInt8,
        {bytes * static_cast<std::uint64_t>(iterations)});
    std::vector<std::uint8_t> data(bytes, 1);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iterations; ++i) {
      // Simulated compute phase.
      std::this_thread::sleep_for(  // apio-lint: allow(no-test-sleep)
          std::chrono::duration<double>(compute));
      conn->dataset_write(
          ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * bytes}, {bytes}),
          std::as_bytes(std::span<const std::uint8_t>(data)));
    }
    conn->wait_all();
    const double total =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    conn->close();
    return total;
  };

  const double sync_total = run_mode(false);
  const double async_total = run_mode(true);
  // I/O per epoch is ~0.125 s vs 0.08 s compute: partial overlap, but
  // async must still beat sync clearly (staging is a memcpy).
  EXPECT_LT(async_total, 0.9 * sync_total);
}

TEST(ModelAccuracyTest, LinearLogBeatsLinearForSaturatingSyncWrites) {
  // The paper chose linear-log for the sync write trend; our auto-form
  // selection should reach the same conclusion on a saturating sweep.
  const auto spec = sim::SystemSpec::cori_haswell();
  sim::EpochSimulator simulator(spec);
  std::vector<model::IoSample> samples;
  for (int nodes = 1; nodes <= 256; nodes *= 2) {
    auto config = workloads::VpicIoKernel::sim_config(spec, nodes, IoMode::kSync);
    config.contention_sigma_override = 0.0;
    const auto result = simulator.run(config);
    model::IoSample s;
    s.data_size = config.bytes_per_epoch;
    s.ranks = result.ranks;
    s.io_rate = result.peak_bandwidth();
    s.async = false;
    s.op = vol::IoOp::kWrite;
    samples.push_back(s);
  }
  model::IoRateEstimator linear(model::FeatureForm::kLinear);
  linear.refit(samples);
  model::IoRateEstimator autoform(model::FeatureForm::kLinear);
  autoform.set_auto_form(true);
  autoform.refit(samples);
  ASSERT_TRUE(linear.ready());
  ASSERT_TRUE(autoform.ready());
  EXPECT_EQ(autoform.form(), model::FeatureForm::kLinearLog);
  EXPECT_GE(autoform.r_squared(), linear.r_squared());
  EXPECT_GT(autoform.r_squared(), 0.8);
}

TEST(EndToEndTest, VpicThroughThrottledPfsShowsAsyncBandwidthAdvantage) {
  // Miniature Fig. 3: the same VPIC write kernel, sync vs async
  // connector, over the same throttled "PFS"; async must report much
  // higher aggregate bandwidth because only the staging copy blocks.
  constexpr int kRanks = 2;
  workloads::VpicParams params;
  params.particles_per_rank = 16 * 1024;  // 512 KiB/rank/step
  params.time_steps = 2;
  // Slow enough that the modelled transfer (128 ms/step) dominates the
  // real-world noise on the async path (staging copies + thread
  // wakeups, tens of ms under a parallel TSan run); at 32 MiB/s the
  // 16 ms modelled sleep was comparable to that noise and the 2x
  // margin flaked under load.
  const double pfs_bw = 4.0 * kMiB;

  auto run_mode = [&](bool async) {
    auto file = h5::File::create(slow_backend(pfs_bw));
    std::shared_ptr<vol::Connector> conn;
    if (async) conn = std::make_shared<vol::AsyncConnector>(file);
    else conn = std::make_shared<vol::NativeConnector>(file);
    workloads::VpicRunResult result;
    pmpi::run(kRanks, [&](pmpi::Communicator& comm) {
      auto r = workloads::VpicIoKernel(params).run(*conn, comm);
      if (comm.rank() == 0) result = r;
    });
    conn->close();
    return result.peak_bandwidth();
  };

  const double sync_bw = run_mode(false);
  const double async_bw = run_mode(true);
  EXPECT_GT(async_bw, 2.0 * sync_bw);
}

}  // namespace
}  // namespace apio
