// Sec. V-C: model accuracy across all workloads — the r² table.
// For every workload/system pair, fit the advisor over a scaling sweep
// and report r² for the sync and async populations (paper: above 80 %
// for sync, above 90 % for async), plus the chosen feature form.
#include <cstdio>

#include "bench/bench_util.h"
#include "model/regression.h"
#include "workloads/bdcats_io.h"
#include "workloads/castro.h"
#include "workloads/cosmoflow.h"
#include "workloads/eqsim.h"
#include "workloads/nyx.h"
#include "workloads/vpic_io.h"

namespace apio {
namespace {

struct Case {
  std::string name;
  sim::SystemSpec spec;
  std::function<sim::RunConfig(int, model::IoMode)> config;
  std::vector<int> nodes;
};

void report(const Case& c) {
  sim::EpochSimulator simulator(c.spec);
  model::ModeAdvisor advisor;
  struct Measured {
    std::uint64_t bytes;
    int ranks;
    double sync_bw;
    double async_bw;
  };
  std::vector<Measured> measured;
  for (int nodes : c.nodes) {
    Measured m{};
    for (auto mode : {model::IoMode::kSync, model::IoMode::kAsync}) {
      auto config = c.config(nodes, mode);
      config.contention_sigma_override = 0.0;
      config.observer = &advisor;
      const auto result = simulator.run(config);
      m.bytes = config.bytes_per_epoch;
      m.ranks = result.ranks;
      (mode == model::IoMode::kSync ? m.sync_bw : m.async_bw) =
          result.peak_bandwidth();
    }
    measured.push_back(m);
  }

  // Mean relative estimation error: the fairer accuracy metric when the
  // measured trend is nearly flat and r² degenerates (Nyx-small sync).
  double sync_err = 0.0;
  double async_err = 0.0;
  for (const auto& m : measured) {
    const double sync_est =
        static_cast<double>(m.bytes) / advisor.estimate_io_seconds(m.bytes, m.ranks);
    const double async_est = static_cast<double>(m.bytes) /
                             advisor.estimate_transact_seconds(m.bytes, m.ranks);
    sync_err += std::abs(sync_est - m.sync_bw) / m.sync_bw;
    async_err += std::abs(async_est - m.async_bw) / m.async_bw;
  }
  sync_err /= static_cast<double>(measured.size());
  async_err /= static_cast<double>(measured.size());

  const bool r2_ok =
      advisor.sync_r_squared() > 0.80 && advisor.async_r_squared() > 0.90;
  const bool err_ok = sync_err < 0.10 && async_err < 0.10;
  std::printf("%-28s | %10.3f %10.3f | %7.1f%% %7.1f%% | %s\n", c.name.c_str(),
              advisor.sync_r_squared(), advisor.async_r_squared(),
              100.0 * sync_err, 100.0 * async_err,
              r2_ok          ? "OK (r^2 in paper bands)"
              : err_ok       ? "OK (flat trend; error < 10%)"
                             : "below bands");
}

}  // namespace
}  // namespace apio

int main() {
  using namespace apio;
  bench::banner("Sec. V-C: model accuracy (r^2) per workload",
                "paper: r^2 above 80% for sync I/O, above 90% for async I/O");

  const auto summit = sim::SystemSpec::summit();
  const auto cori = sim::SystemSpec::cori_haswell();
  const workloads::CastroParams castro_params;
  const workloads::EqsimParams eqsim_params;
  const workloads::CosmoflowParams cosmo_params;

  std::vector<Case> cases;
  cases.push_back({"vpic-io / summit", summit,
                   [&](int n, model::IoMode m) {
                     return workloads::VpicIoKernel::sim_config(summit, n, m);
                   },
                   {2, 4, 8, 16, 32, 64, 128, 256, 512}});
  cases.push_back({"vpic-io / cori", cori,
                   [&](int n, model::IoMode m) {
                     return workloads::VpicIoKernel::sim_config(cori, n, m);
                   },
                   {1, 2, 4, 8, 16, 32, 64, 128}});
  cases.push_back({"bd-cats-io / summit", summit,
                   [&](int n, model::IoMode m) {
                     return workloads::BdCatsIoKernel::sim_config(summit, n, m);
                   },
                   {2, 4, 8, 16, 32, 64, 128, 256}});
  cases.push_back({"nyx-large / summit", summit,
                   [&](int n, model::IoMode m) {
                     return workloads::NyxProxy::sim_config(
                         summit, n, m, workloads::NyxParams::large());
                   },
                   {128, 256, 512, 1024, 2048}});
  cases.push_back({"nyx-small / cori", cori,
                   [&](int n, model::IoMode m) {
                     return workloads::NyxProxy::sim_config(
                         cori, n, m, workloads::NyxParams::small());
                   },
                   {4, 8, 16, 32, 64, 128}});
  cases.push_back({"castro / summit", summit,
                   [&](int n, model::IoMode m) {
                     return workloads::CastroProxy::sim_config(summit, n, m,
                                                               castro_params);
                   },
                   {8, 16, 32, 64, 128, 256}});
  cases.push_back({"eqsim / summit", summit,
                   [&](int n, model::IoMode m) {
                     return workloads::EqsimProxy::sim_config(summit, n, m,
                                                              eqsim_params);
                   },
                   {64, 128, 256, 512, 1024}});
  cases.push_back({"cosmoflow / summit", summit,
                   [&](int n, model::IoMode m) {
                     return workloads::CosmoflowProxy::sim_config(summit, n, m,
                                                                  cosmo_params);
                   },
                   {8, 16, 32, 64, 128, 256}});

  std::printf("%-28s | %10s %10s | %8s %8s | %s\n", "workload / system",
              "r^2 sync", "r^2 async", "err sync", "err asyn", "verdict");
  std::printf("%-28s | %10s %10s | %8s %8s | %s\n", "-----------------",
              "--------", "---------", "--------", "--------", "-------");
  for (const auto& c : cases) report(c);
  return 0;
}
