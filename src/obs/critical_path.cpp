#include "obs/critical_path.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/units.h"

namespace apio::obs::trace {

namespace {

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Percentiles percentiles_of(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  Percentiles p;
  p.count = samples.size();
  p.p50 = percentile(samples, 0.50);
  p.p95 = percentile(samples, 0.95);
  p.p99 = percentile(samples, 0.99);
  return p;
}

/// Decomposes one trace into per-phase self times.  Spans whose parent
/// is missing (sampling drop, late arrival) attach to the root so their
/// time is still attributed.
PhaseBreakdown decompose(const CompletedTrace& trace) {
  PhaseBreakdown b;
  b.trace_id = trace.trace_id;
  b.op = trace.op;
  b.tenant = trace.tenant;
  b.bytes = trace.bytes;
  b.failed = trace.failed;
  b.duration_seconds = trace.duration_seconds;

  // children duration per span id (root included).
  std::map<std::uint64_t, double> child_total;
  std::map<std::uint64_t, bool> known;
  known[trace.root_span_id] = true;
  for (const auto& s : trace.spans) known[s.span_id] = true;
  for (const auto& s : trace.spans) {
    const std::uint64_t parent =
        known.count(s.parent_span_id) > 0 ? s.parent_span_id
                                          : trace.root_span_id;
    child_total[parent] += s.duration_seconds;
  }
  for (const auto& s : trace.spans) {
    const double self =
        std::max(0.0, s.duration_seconds - child_total[s.span_id]);
    b.phase_seconds[static_cast<std::size_t>(s.phase)] += self;
  }
  const double root_self =
      std::max(0.0, trace.duration_seconds - child_total[trace.root_span_id]);
  b.phase_seconds[static_cast<std::size_t>(Phase::kOther)] += root_self;
  return b;
}

}  // namespace

double PhaseBreakdown::phase_total() const {
  double total = 0.0;
  for (double s : phase_seconds) total += s;
  return total;
}

CriticalPathAnalyzer::CriticalPathAnalyzer(std::vector<CompletedTrace> traces)
    : traces_(std::move(traces)) {
  breakdowns_.reserve(traces_.size());
  std::vector<double> durations;
  durations.reserve(traces_.size());
  for (const auto& t : traces_) {
    breakdowns_.push_back(decompose(t));
    durations.push_back(t.duration_seconds);
  }
  std::sort(durations.begin(), durations.end());
  median_duration_ = percentile(durations, 0.50);
}

std::map<Phase, Percentiles> CriticalPathAnalyzer::phase_percentiles() const {
  std::map<Phase, std::vector<double>> samples;
  for (const auto& b : breakdowns_) {
    for (int p = 0; p < kPhaseCount; ++p) {
      const double s = b.phase_seconds[static_cast<std::size_t>(p)];
      if (s > 0.0) samples[static_cast<Phase>(p)].push_back(s);
    }
  }
  std::map<Phase, Percentiles> out;
  for (auto& [phase, values] : samples) {
    out.emplace(phase, percentiles_of(std::move(values)));
  }
  return out;
}

std::map<std::string, Percentiles> CriticalPathAnalyzer::tenant_percentiles()
    const {
  std::map<std::string, std::vector<double>> samples;
  for (const auto& b : breakdowns_) {
    samples[b.tenant.empty() ? "(none)" : b.tenant].push_back(
        b.duration_seconds);
  }
  std::map<std::string, Percentiles> out;
  for (auto& [tenant, values] : samples) {
    out.emplace(tenant, percentiles_of(std::move(values)));
  }
  return out;
}

std::vector<Straggler> CriticalPathAnalyzer::stragglers(
    double threshold) const {
  std::vector<Straggler> out;
  if (median_duration_ <= 0.0 || threshold <= 0.0) return out;

  // Per-phase medians: the baseline a straggler's phases are compared
  // against to find which one blew up.
  std::array<double, kPhaseCount> phase_median{};
  {
    std::array<std::vector<double>, kPhaseCount> samples;
    for (const auto& b : breakdowns_) {
      for (int p = 0; p < kPhaseCount; ++p) {
        samples[static_cast<std::size_t>(p)].push_back(
            b.phase_seconds[static_cast<std::size_t>(p)]);
      }
    }
    for (int p = 0; p < kPhaseCount; ++p) {
      auto& v = samples[static_cast<std::size_t>(p)];
      std::sort(v.begin(), v.end());
      phase_median[static_cast<std::size_t>(p)] = percentile(v, 0.50);
    }
  }

  for (const auto& b : breakdowns_) {
    if (b.duration_seconds <= threshold * median_duration_) continue;
    Straggler s;
    s.trace_id = b.trace_id;
    s.tenant = b.tenant;
    s.duration_seconds = b.duration_seconds;
    s.factor = b.duration_seconds / median_duration_;
    for (int p = 0; p < kPhaseCount; ++p) {
      const double excess = b.phase_seconds[static_cast<std::size_t>(p)] -
                            phase_median[static_cast<std::size_t>(p)];
      if (excess > s.dominant_excess_seconds) {
        s.dominant_excess_seconds = excess;
        s.dominant = static_cast<Phase>(p);
      }
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const Straggler& a, const Straggler& b) {
    return a.duration_seconds > b.duration_seconds;
  });
  return out;
}

std::string CriticalPathAnalyzer::flame(const CompletedTrace& trace) {
  std::ostringstream os;
  os << "trace " << trace.trace_id << " " << to_string(trace.op) << " "
     << format_bytes(trace.bytes);
  if (!trace.tenant.empty()) os << " tenant=" << trace.tenant;
  if (trace.failed) os << " FAILED";
  os << " " << format_seconds(trace.duration_seconds) << '\n';

  // Children by parent, in start order.
  std::map<std::uint64_t, std::vector<const TraceSpan*>> children;
  std::map<std::uint64_t, bool> known;
  known[trace.root_span_id] = true;
  for (const auto& s : trace.spans) known[s.span_id] = true;
  for (const auto& s : trace.spans) {
    const std::uint64_t parent =
        known.count(s.parent_span_id) > 0 ? s.parent_span_id
                                          : trace.root_span_id;
    children[parent].push_back(&s);
  }
  for (auto& [id, list] : children) {
    std::stable_sort(list.begin(), list.end(),
                     [](const TraceSpan* a, const TraceSpan* b) {
                       return a->start_seconds < b->start_seconds;
                     });
  }

  // Depth-first render, offsets relative to the root start.
  struct Frame {
    std::uint64_t span = 0;
    int depth = 0;
  };
  std::vector<Frame> stack;
  auto push_children = [&](std::uint64_t span, int depth) {
    auto it = children.find(span);
    if (it == children.end()) return;
    for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
      stack.push_back({(*rit)->span_id, depth});
    }
  };
  std::map<std::uint64_t, const TraceSpan*> by_id;
  for (const auto& s : trace.spans) by_id[s.span_id] = &s;
  push_children(trace.root_span_id, 1);
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const TraceSpan* s = by_id[f.span];
    os << std::string(static_cast<std::size_t>(f.depth) * 2, ' ') << "+"
       << format_seconds(s->start_seconds - trace.start_seconds) << " "
       << phase_name(s->phase);
    if (!s->detail.empty()) os << " [" << s->detail << "]";
    if (s->bytes > 0) os << " " << format_bytes(s->bytes);
    os << " " << format_seconds(s->duration_seconds) << '\n';
    push_children(f.span, f.depth + 1);
  }
  return os.str();
}

std::string CriticalPathAnalyzer::report(double straggler_threshold,
                                         std::size_t flames) const {
  std::ostringstream os;
  os << "critical path: " << breakdowns_.size() << " traced request(s), "
     << "median " << format_seconds(median_duration_) << '\n';
  if (breakdowns_.empty()) return os.str();

  os << "  per-phase self time (p50 / p95 / p99 across requests):\n";
  for (const auto& [phase, p] : phase_percentiles()) {
    os << "    " << phase_name(phase) << ": " << format_seconds(p.p50) << " / "
       << format_seconds(p.p95) << " / " << format_seconds(p.p99) << "  (n="
       << p.count << ")\n";
  }
  os << "  per-tenant request wall time (p50 / p95 / p99):\n";
  for (const auto& [tenant, p] : tenant_percentiles()) {
    os << "    " << tenant << ": " << format_seconds(p.p50) << " / "
       << format_seconds(p.p95) << " / " << format_seconds(p.p99) << "  (n="
       << p.count << ")\n";
  }

  const auto slow = stragglers(straggler_threshold);
  if (!slow.empty()) {
    os << "  stragglers (> " << straggler_threshold << "x median):\n";
    for (const auto& s : slow) {
      os << "    trace " << s.trace_id << " " << format_seconds(s.duration_seconds)
         << " (" << static_cast<int>(std::lround(s.factor)) << "x median), "
         << "blown phase: " << phase_name(s.dominant) << " (+"
         << format_seconds(s.dominant_excess_seconds) << ")";
      if (!s.tenant.empty()) os << " tenant=" << s.tenant;
      os << '\n';
    }
  }

  if (flames > 0) {
    std::vector<const CompletedTrace*> slowest;
    slowest.reserve(traces_.size());
    for (const auto& t : traces_) slowest.push_back(&t);
    std::sort(slowest.begin(), slowest.end(),
              [](const CompletedTrace* a, const CompletedTrace* b) {
                return a->duration_seconds > b->duration_seconds;
              });
    os << "  slowest request flame(s):\n";
    for (std::size_t i = 0; i < std::min(flames, slowest.size()); ++i) {
      std::istringstream lines(flame(*slowest[i]));
      std::string line;
      while (std::getline(lines, line)) os << "    " << line << '\n';
    }
  }
  return os.str();
}

std::string CriticalPathAnalyzer::to_json(double straggler_threshold) const {
  std::ostringstream os;
  os.precision(9);
  os << "{\"requests\":" << breakdowns_.size()
     << ",\"median_seconds\":" << median_duration_ << ",\"phases\":{";
  bool first = true;
  for (const auto& [phase, p] : phase_percentiles()) {
    os << (first ? "" : ",") << "\"" << phase_name(phase)
       << "\":{\"count\":" << p.count << ",\"p50\":" << p.p50
       << ",\"p95\":" << p.p95 << ",\"p99\":" << p.p99 << "}";
    first = false;
  }
  os << "},\"tenants\":{";
  first = true;
  for (const auto& [tenant, p] : tenant_percentiles()) {
    os << (first ? "" : ",") << "\"" << tenant
       << "\":{\"count\":" << p.count << ",\"p50\":" << p.p50
       << ",\"p95\":" << p.p95 << ",\"p99\":" << p.p99 << "}";
    first = false;
  }
  os << "},\"stragglers\":[";
  first = true;
  for (const auto& s : stragglers(straggler_threshold)) {
    os << (first ? "" : ",") << "{\"trace_id\":" << s.trace_id
       << ",\"seconds\":" << s.duration_seconds << ",\"factor\":" << s.factor
       << ",\"phase\":\"" << phase_name(s.dominant) << "\"}";
    first = false;
  }
  os << "]}";
  return os.str();
}

}  // namespace apio::obs::trace
