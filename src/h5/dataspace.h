// Dataspaces and hyperslab selections.
//
// A Dataspace is an N-dimensional row-major extent.  A Selection picks
// elements out of it: everything, or a regular hyperslab described by
// (start, stride, count, block) per dimension with HDF5 semantics —
// `count` blocks of `block` consecutive elements, consecutive blocks
// `stride` apart, beginning at `start`.
//
// The data path consumes selections as a sequence of contiguous
// element runs in file order (for_each_run), which both the contiguous
// and the chunked dataset layouts build on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace apio::h5 {

using Dims = std::vector<std::uint64_t>;

/// Regular hyperslab, one entry per dimension.
struct Hyperslab {
  Dims start;
  Dims stride;  ///< empty means all-ones
  Dims count;
  Dims block;   ///< empty means all-ones

  /// Total number of selected elements.  Throws InvalidArgumentError
  /// when the product overflows uint64 or `block` has a different rank
  /// than `count` — callers may invoke this before validate(), so it
  /// must be safe on malformed slabs.
  std::uint64_t npoints() const;
};

/// A selection over a dataspace: everything or a hyperslab.
class Selection {
 public:
  /// Selects the entire extent.
  static Selection all();

  /// Selects a hyperslab; validated against an extent at use time.
  static Selection hyperslab(Hyperslab slab);

  /// Convenience: contiguous block selection (stride = block = 1).
  static Selection offsets(Dims start, Dims count);

  bool is_all() const { return is_all_; }
  const Hyperslab& slab() const { return slab_; }

  /// Number of selected elements within `extent`.
  std::uint64_t npoints(const Dims& extent) const;

  /// Throws InvalidArgumentError when the selection does not fit in
  /// `extent` (rank mismatch, out-of-bounds, block > stride).
  void validate(const Dims& extent) const;

 private:
  bool is_all_ = true;
  Hyperslab slab_;
};

/// Number of elements in an extent (1 for a scalar/rank-0 space).
std::uint64_t num_elements(const Dims& extent);

/// Row-major pitches: pitch[i] = product of extent[i+1..].
std::vector<std::uint64_t> row_pitches(const Dims& extent);

/// Invokes `fn(file_elem_offset, elem_count)` for every maximal
/// contiguous run of the selection, in increasing file order (which is
/// also the packed order of the user's memory buffer).
void for_each_run(const Dims& extent, const Selection& selection,
                  const std::function<void(std::uint64_t, std::uint64_t)>& fn);

/// Like for_each_run but never coalesces across rows: each emitted run
/// lies within one row of the extent and is reported by the coordinate
/// of its first element.  The chunked layout builds on this form.
void for_each_row_run(const Dims& extent, const Selection& selection,
                      const std::function<void(const Dims&, std::uint64_t)>& fn);

}  // namespace apio::h5
