// Critical-path attribution over completed request traces.
//
// A request's span tree (obs/trace_context.h) covers its wall time with
// nested phase spans.  The analyzer decomposes each request's duration
// into *self times*: a span's self time is its duration minus the
// duration of its direct children, and the root's self time is reported
// as the `other` phase.  By construction the per-phase self times of
// one request sum to its wall time exactly (up to clock-read jitter),
// which is what makes the decomposition trustworthy — no phase is
// double-counted, nothing is invisible.
//
// On top of the per-request breakdowns the analyzer reports p50/p95/p99
// per phase and per tenant, and flags stragglers: requests whose wall
// time exceeds k x the median, attributed to the phase that grew most
// relative to the per-phase median — "this request was 9x median and
// 80% of the excess is queue_wait" is the actionable form of the
// paper's where-does-async-time-go question.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_context.h"

namespace apio::obs::trace {

/// One request's wall time decomposed into phase self-times.
struct PhaseBreakdown {
  std::uint64_t trace_id = 0;
  IoOp op = IoOp::kWrite;
  std::string tenant;
  std::uint64_t bytes = 0;
  bool failed = false;
  double duration_seconds = 0.0;
  /// Self time per phase (index by static_cast<int>(Phase)); the
  /// kOther slot holds the root's own self time.
  std::array<double, kPhaseCount> phase_seconds{};

  [[nodiscard]] double phase(Phase p) const {
    return phase_seconds[static_cast<std::size_t>(p)];
  }
  /// Sum of all phase self-times; equals duration_seconds up to
  /// clock-read jitter (clamped negatives).
  [[nodiscard]] double phase_total() const;
};

struct Percentiles {
  std::uint64_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One flagged straggler: a request whose wall time exceeded
/// k x median, with the phase that blew up.
struct Straggler {
  std::uint64_t trace_id = 0;
  std::string tenant;
  double duration_seconds = 0.0;
  double factor = 0.0;  ///< duration / median duration
  Phase dominant = Phase::kOther;  ///< phase with the largest excess
  double dominant_excess_seconds = 0.0;
};

class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(std::vector<CompletedTrace> traces);

  [[nodiscard]] const std::vector<PhaseBreakdown>& breakdowns() const {
    return breakdowns_;
  }

  /// Request wall-time median across all analyzed traces (0 when none).
  [[nodiscard]] double median_duration() const { return median_duration_; }

  /// Percentiles of per-request self time for each phase that appeared.
  [[nodiscard]] std::map<Phase, Percentiles> phase_percentiles() const;

  /// Percentiles of request wall time per tenant.
  [[nodiscard]] std::map<std::string, Percentiles> tenant_percentiles() const;

  /// Requests with duration > threshold x median, worst first.
  [[nodiscard]] std::vector<Straggler> stragglers(double threshold) const;

  /// Human-readable report: phase table, per-tenant table, stragglers,
  /// and a per-request flame rendering of the `flames` slowest traces.
  [[nodiscard]] std::string report(double straggler_threshold = 3.0,
                                   std::size_t flames = 3) const;

  /// Machine-readable report (build/trace-report.json shape):
  /// {"requests":N,"median_seconds":...,"phases":{...},
  ///  "tenants":{...},"stragglers":[...]}.
  [[nodiscard]] std::string to_json(double straggler_threshold = 3.0) const;

  /// Indented span tree of one trace (the per-request flame report).
  [[nodiscard]] static std::string flame(const CompletedTrace& trace);

 private:
  std::vector<CompletedTrace> traces_;
  std::vector<PhaseBreakdown> breakdowns_;
  double median_duration_ = 0.0;
};

}  // namespace apio::obs::trace
