#include "storage/qos_backend.h"

#include <numeric>

#include "common/error.h"
#include "obs/trace_context.h"

namespace apio::storage {

namespace {

/// Holds one admission grant for the duration of the inner transfer;
/// releases the channel slot on every exit path, including throws.
/// The time blocked inside admit() is the queue-wait phase of the
/// bound request's trace.
class Admission {
 public:
  Admission(sched::FairScheduler& scheduler, const sched::IoRequest& request)
      : scheduler_(scheduler) {
    obs::trace::ScopedPhase wait(obs::trace::Phase::kQueueWait, request.bytes);
    ticket_ = scheduler_.admit(request);
  }
  ~Admission() { scheduler_.complete(ticket_); }

  Admission(const Admission&) = delete;
  Admission& operator=(const Admission&) = delete;

 private:
  sched::FairScheduler& scheduler_;
  sched::TicketPtr ticket_;
};

}  // namespace

QosBackend::QosBackend(BackendPtr inner, sched::FairSchedulerPtr scheduler,
                       QosOptions options)
    : inner_(std::move(inner)),
      scheduler_(std::move(scheduler)),
      options_(std::move(options)) {
  APIO_REQUIRE(inner_ != nullptr, "QosBackend needs an inner backend");
  APIO_REQUIRE(scheduler_ != nullptr, "QosBackend needs a scheduler");
}

sched::IoRequest QosBackend::request_for(obs::IoOp op,
                                         std::uint64_t bytes) const {
  sched::IoRequest request;
  request.op = op;
  request.bytes = bytes;
  if (const sched::SubmissionContext* ctx = sched::current_submission()) {
    request.tenant = ctx->tenant;
    request.lane = ctx->lane;
    request.deadline = ctx->deadline;
  }
  if (request.tenant.empty()) request.tenant = options_.default_tenant;
  if (op == obs::IoOp::kFlush) request.lane = options_.flush_lane;
  return request;
}

void QosBackend::read(std::uint64_t offset, std::span<std::byte> out) {
  Admission grant(*scheduler_, request_for(obs::IoOp::kRead, out.size()));
  obs::trace::ScopedPhase held(obs::trace::Phase::kAdmission, out.size());
  inner_->read(offset, out);
}

void QosBackend::write(std::uint64_t offset, std::span<const std::byte> data) {
  Admission grant(*scheduler_, request_for(obs::IoOp::kWrite, data.size()));
  obs::trace::ScopedPhase held(obs::trace::Phase::kAdmission, data.size());
  inner_->write(offset, data);
}

std::uint64_t QosBackend::write_v(std::span<const WriteExtent> extents) {
  const std::uint64_t total = std::accumulate(
      extents.begin(), extents.end(), std::uint64_t{0},
      [](std::uint64_t n, const WriteExtent& e) { return n + e.data.size(); });
  Admission grant(*scheduler_, request_for(obs::IoOp::kWrite, total));
  obs::trace::ScopedPhase held(obs::trace::Phase::kAdmission, total);
  return inner_->write_v(extents);
}

std::uint64_t QosBackend::read_v(std::span<const ReadExtent> extents) {
  const std::uint64_t total = std::accumulate(
      extents.begin(), extents.end(), std::uint64_t{0},
      [](std::uint64_t n, const ReadExtent& e) { return n + e.out.size(); });
  Admission grant(*scheduler_, request_for(obs::IoOp::kRead, total));
  obs::trace::ScopedPhase held(obs::trace::Phase::kAdmission, total);
  return inner_->read_v(extents);
}

void QosBackend::flush() {
  Admission grant(*scheduler_, request_for(obs::IoOp::kFlush, 0));
  obs::trace::ScopedPhase held(obs::trace::Phase::kAdmission);
  inner_->flush();
}

}  // namespace apio::storage
