// Wall-clock and virtual-clock utilities.
//
// Library code that must work both in real executions (tests, examples,
// the real async VOL) and in virtual-time simulations (bench harness at
// 2048 nodes) is written against the Clock interface.
#pragma once

#include <chrono>

namespace apio {

/// Abstract monotonic clock in seconds.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in seconds since an arbitrary epoch.
  virtual double now() const = 0;
};

/// Real monotonic wall clock.
class WallClock final : public Clock {
 public:
  double now() const override {
    using namespace std::chrono;
    return duration<double>(steady_clock::now().time_since_epoch()).count();
  }
};

/// Manually-advanced clock used by the discrete simulators.
class VirtualClock final : public Clock {
 public:
  double now() const override { return now_; }

  /// Moves the clock forward by `dt` seconds (dt >= 0).
  void advance(double dt) { now_ += dt; }

  /// Jumps the clock to an absolute time >= now().
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }

  void reset() { now_ = 0.0; }

 private:
  double now_ = 0.0;
};

/// Simple RAII-free stopwatch over a Clock.
class Stopwatch {
 public:
  explicit Stopwatch(const Clock& clock) : clock_(&clock), start_(clock.now()) {}

  /// Seconds elapsed since construction or the last restart().
  double elapsed() const { return clock_->now() - start_; }

  void restart() { start_ = clock_->now(); }

 private:
  const Clock* clock_;
  double start_;
};

}  // namespace apio
