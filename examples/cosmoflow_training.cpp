// Cosmoflow-style training-loop example: a deep-learning data loader
// reading 3-D volume batches from a shared container with lookahead
// prefetching (the paper's custom PyTorch DataLoader, Sec. IV-C).
// Compares a plain synchronous loader against the prefetching async
// loader on the same throttled storage.
#include <cstdio>

#include "common/units.h"
#include "storage/memory_backend.h"
#include "storage/backend_stack.h"
#include "vol/async_connector.h"
#include "vol/native_connector.h"
#include "workloads/cosmoflow.h"

int main() {
  using namespace apio;

  workloads::CosmoflowParams params;
  params.samples_per_rank = 8;
  params.sample_shape = {32, 32, 32};
  params.batch_size = 2;
  params.epochs = 2;
  params.seconds_per_batch = 0.08;  // emulated forward+backward pass

  auto make_storage = [] {
    storage::ThrottleParams throttle;
    throttle.bandwidth = 24.0 * kMiB;
    throttle.time_scale = 1.0;
    return storage::BackendStack::memory().throttled(throttle).build();
  };

  std::printf("Cosmoflow loader: %d samples/rank of %s, batch %d, %d epochs\n",
              params.samples_per_rank,
              format_bytes(32ull * 32 * 32 * sizeof(float)).c_str(),
              params.batch_size, params.epochs);
  std::printf("\n%10s | %14s %14s %12s\n", "loader", "peak batch BW", "total time",
              "cache hits");

  for (bool prefetch : {false, true}) {
    params.prefetch = prefetch;
    workloads::CosmoflowProxy proxy(params);
    auto file = h5::File::create(make_storage());
    std::shared_ptr<vol::Connector> connector;
    std::shared_ptr<vol::AsyncConnector> async_connector;
    if (prefetch) {
      async_connector = std::make_shared<vol::AsyncConnector>(file);
      connector = async_connector;
    } else {
      connector = std::make_shared<vol::NativeConnector>(file);
    }

    workloads::CosmoflowRunResult result;
    pmpi::run(2, [&](pmpi::Communicator& comm) {
      proxy.prepare(*connector, comm);
      comm.barrier();
      auto r = proxy.train(*connector, comm);
      if (comm.rank() == 0) result = r;
    });

    std::printf("%10s | %14s %13.2fs %12llu\n",
                prefetch ? "prefetch" : "sync",
                format_bandwidth(result.peak_bandwidth()).c_str(),
                result.total_seconds,
                static_cast<unsigned long long>(
                    async_connector ? async_connector->stats().cache_hits : 0));
    connector->close();
  }
  std::printf("\nthe prefetching loader overlaps the next batch's read with the\n"
              "current training step — the Fig. 5 effect at laptop scale.\n");
  return 0;
}
