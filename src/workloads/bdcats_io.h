// BD-CATS-IO: the clustering read kernel of Sec. IV-B.
//
// Reads the particle data written by VPIC-IO, one time step per epoch,
// with the clustering computation replaced by an emulated compute
// phase.  In async mode the kernel exercises the VOL's prefetch path:
// the first time step is a blocking read (nothing to prefetch behind),
// and while step t is being processed the connector prefetches step
// t+1 into node-local memory — the behaviour of the HDF5 async VOL the
// paper describes (Sec. V-A2).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/epoch_sim.h"
#include "workloads/vpic_io.h"

namespace apio::workloads {

struct BdCatsParams {
  std::uint64_t particles_per_rank = 8ull * 1024 * 1024;
  int time_steps = 5;
  double compute_seconds = 0.0;
  /// Issue prefetches for the next step while computing (async mode).
  bool prefetch = true;
  /// Verify every value against the VPIC generator (tests set this).
  bool verify_data = false;
};

struct BdCatsRunResult {
  std::vector<double> step_io_seconds;  ///< max-over-ranks blocking per step
  std::uint64_t bytes_per_step = 0;
  std::uint64_t verification_failures = 0;
  double peak_bandwidth() const;
};

class BdCatsIoKernel {
 public:
  explicit BdCatsIoKernel(BdCatsParams params);

  /// Collective read of a container previously produced by VpicIoKernel
  /// with matching particle counts and step count.
  BdCatsRunResult run(vol::Connector& connector, pmpi::Communicator& comm) const;

  /// Simulator configuration (weak-scaling read of VPIC output).
  static sim::RunConfig sim_config(const sim::SystemSpec& spec, int nodes,
                                   model::IoMode mode, int steps = 5,
                                   double compute_seconds = 30.0);

 private:
  BdCatsParams params_;
};

}  // namespace apio::workloads
