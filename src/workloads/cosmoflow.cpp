#include "workloads/cosmoflow.h"

#include "common/clock.h"
#include "common/error.h"
#include "obs/epoch_analyzer.h"

namespace apio::workloads {
namespace {

constexpr const char* kSamplesDataset = "samples";

}  // namespace

double CosmoflowRunResult::peak_bandwidth() const {
  double peak = 0.0;
  for (double t : batch_io_seconds) {
    if (t > 0.0) peak = std::max(peak, static_cast<double>(bytes_per_batch) / t);
  }
  return peak;
}

CosmoflowProxy::CosmoflowProxy(CosmoflowParams params) : params_(std::move(params)) {
  APIO_REQUIRE(!params_.sample_shape.empty(), "sample shape must be non-empty");
  APIO_REQUIRE(params_.batch_size >= 1, "batch size must be >= 1");
  APIO_REQUIRE(params_.samples_per_rank >= params_.batch_size,
               "need at least one full batch per rank");
  APIO_REQUIRE(params_.epochs >= 1, "need at least one training epoch");
}

std::uint64_t CosmoflowProxy::sample_bytes() const {
  return h5::num_elements(params_.sample_shape) * sizeof(float);
}

void CosmoflowProxy::prepare(vol::Connector& connector,
                             pmpi::Communicator& comm) const {
  const int rank = comm.rank();
  const std::uint64_t per_rank = static_cast<std::uint64_t>(params_.samples_per_rank);
  const std::uint64_t total = per_rank * static_cast<std::uint64_t>(comm.size());

  h5::Dims shape;
  shape.push_back(total);
  shape.insert(shape.end(), params_.sample_shape.begin(), params_.sample_shape.end());

  if (rank == 0) {
    connector.file()->root().create_dataset(kSamplesDataset, h5::Datatype::kFloat32,
                                            shape);
  }
  comm.barrier();

  // Every rank fills its own contiguous slice of samples.
  auto ds = connector.file()->root().open_dataset(kSamplesDataset);
  const std::uint64_t voxels = h5::num_elements(params_.sample_shape);
  std::vector<float> sample(voxels);
  std::vector<vol::RequestPtr> writes;
  for (std::uint64_t s = 0; s < per_rank; ++s) {
    const std::uint64_t global_sample = static_cast<std::uint64_t>(rank) * per_rank + s;
    for (std::uint64_t v = 0; v < voxels; ++v) {
      sample[v] = particle_value(global_sample * 131 + v, 0);
    }
    h5::Dims start(shape.size(), 0);
    start[0] = global_sample;
    h5::Dims count(shape.size(), 1);
    for (std::size_t d = 0; d < params_.sample_shape.size(); ++d) {
      count[d + 1] = params_.sample_shape[d];
    }
    writes.push_back(connector.dataset_write(
        ds, h5::Selection::offsets(start, count),
        std::as_bytes(std::span<const float>(sample))));
  }
  for (auto& w : writes) w->wait();
  comm.barrier();
}

CosmoflowRunResult CosmoflowProxy::train(vol::Connector& connector,
                                         pmpi::Communicator& comm) const {
  const int rank = comm.rank();
  const std::uint64_t per_rank = static_cast<std::uint64_t>(params_.samples_per_rank);
  const int batches_per_epoch = params_.samples_per_rank / params_.batch_size;
  const std::uint64_t voxels = h5::num_elements(params_.sample_shape);
  const std::uint64_t batch_elems =
      voxels * static_cast<std::uint64_t>(params_.batch_size);
  WallClock clock;
  const double t_start = clock.now();

  CosmoflowRunResult result;
  result.bytes_per_batch = batch_elems * sizeof(float) *
                           static_cast<std::uint64_t>(comm.size());

  auto ds = connector.file()->root().open_dataset(kSamplesDataset);
  const h5::Dims& shape = ds.dims();

  auto batch_selection = [&](int batch) {
    const std::uint64_t first = static_cast<std::uint64_t>(rank) * per_rank +
                                static_cast<std::uint64_t>(batch) *
                                    static_cast<std::uint64_t>(params_.batch_size);
    h5::Dims start(shape.size(), 0);
    start[0] = first;
    h5::Dims count(shape.size(), 1);
    count[0] = static_cast<std::uint64_t>(params_.batch_size);
    for (std::size_t d = 0; d < params_.sample_shape.size(); ++d) {
      count[d + 1] = params_.sample_shape[d];
    }
    return h5::Selection::offsets(start, count);
  };

  std::vector<float> batch(batch_elems);
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    for (int b = 0; b < batches_per_epoch; ++b) {
      // One model epoch per training batch (running counter across
      // training epochs): read-then-train, so the compute phase is
      // bracketed explicitly for the epoch analyzer.
      obs::EpochScope marker(
          static_cast<std::int64_t>(epoch) * batches_per_epoch + b);
      const double t0 = clock.now();
      auto req = connector.dataset_read(
          ds, batch_selection(b), std::as_writable_bytes(std::span<float>(batch)));
      req->wait();  // the training step needs the data
      const double blocking = clock.now() - t0;

      // DataLoader-style lookahead: prefetch the next batch (wrapping
      // into the next epoch) while this training step runs.
      if (params_.prefetch) {
        const int next = (b + 1) % batches_per_epoch;
        const bool more = (b + 1 < batches_per_epoch) || (epoch + 1 < params_.epochs);
        if (more) connector.prefetch(ds, batch_selection(next));
      }
      marker.compute_start();
      simulated_compute(params_.seconds_per_batch);
      marker.compute_done();

      const double phase_io = comm.allreduce_max(blocking);
      if (rank == 0) result.batch_io_seconds.push_back(phase_io);
    }
  }
  comm.barrier();
  result.total_seconds = clock.now() - t_start;

  std::uint64_t n = rank == 0 ? result.batch_io_seconds.size() : 0;
  n = comm.allreduce_max(n);
  result.batch_io_seconds.resize(n);
  comm.bcast(std::span<double>(result.batch_io_seconds), 0);
  return result;
}

sim::RunConfig CosmoflowProxy::sim_config(const sim::SystemSpec& spec, int nodes,
                                          model::IoMode mode,
                                          const CosmoflowParams& params,
                                          double seconds_per_batch) {
  const std::uint64_t ranks =
      static_cast<std::uint64_t>(nodes) * spec.ranks_per_node;
  const std::uint64_t batch_bytes = h5::num_elements(params.sample_shape) *
                                    sizeof(float) *
                                    static_cast<std::uint64_t>(params.batch_size);
  sim::RunConfig config;
  config.nodes = nodes;
  config.mode = mode;
  config.iterations = params.epochs * (params.samples_per_rank / params.batch_size);
  config.compute_seconds = seconds_per_batch;
  config.bytes_per_epoch = batch_bytes * ranks;
  config.io_kind = storage::IoKind::kRead;
  config.prefetch_reads = params.prefetch;
  config.gpu_resident = spec.has_gpus;  // training data lands on the GPU
  return config;
}

}  // namespace apio::workloads
