// Unit tests for apio::sched (fair-share admission) and its storage /
// VOL integration: the FairScheduler SFQ math, lane and deadline
// ordering, submission-context plumbing, QosBackend attribution, the
// BackendStack builder, and the multi_job contention workload.
//
// Everything timing-sensitive runs on a resilience::ManualClock, so the
// fairness properties here are exact (deterministic grant sequences),
// not statistical.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/units.h"
#include "h5/file.h"
#include "obs/metrics.h"
#include "resilience/retry.h"
#include "sched/fair_scheduler.h"
#include "sched/io_request.h"
#include "sched/report.h"
#include "storage/backend_stack.h"
#include "storage/memory_backend.h"
#include "storage/qos_backend.h"
#include "vol/async_connector.h"
#include "workloads/multi_job.h"

#if defined(APIO_DEBUG_CHECKS) && !defined(__SANITIZE_THREAD__)
#define APIO_HAVE_DEATH_TESTS 1
#endif

namespace apio::sched {
namespace {

IoRequest bulk_request(std::string tenant, std::uint64_t bytes) {
  IoRequest req;
  req.tenant = std::move(tenant);
  req.lane = Lane::kBulk;
  req.op = obs::IoOp::kWrite;
  req.bytes = bytes;
  return req;
}

IoRequest priority_request(std::string tenant, std::uint64_t bytes = 0) {
  IoRequest req = bulk_request(std::move(tenant), bytes);
  req.lane = Lane::kPriority;
  req.op = obs::IoOp::kFlush;
  return req;
}

/// Completes the unique granted-but-uncompleted ticket (max_inflight=1
/// keeps it unique) and returns its index; -1 when nothing is granted.
int complete_next(FairScheduler& sched, const std::vector<TicketPtr>& tickets,
                  std::vector<bool>& done) {
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (!done[i] && tickets[i]->granted()) {
      done[i] = true;
      sched.complete(tickets[i]);
      return static_cast<int>(i);
    }
  }
  return -1;
}

TEST(FairSchedulerTest, GrantsImmediatelyWhenChannelIdle) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});
  auto ticket = sched.submit(bulk_request("a", 1024));
  EXPECT_TRUE(ticket->granted());
  sched.wait(ticket);  // must not block
  sched.complete(ticket);
  EXPECT_EQ(sched.stats().dispatched_ops, 1u);
}

// The core property: three backlogged tenants at weights 1:2:4 receive
// channel bytes in exact weight proportion.  Equal-size requests, so
// over any window of 7k grants the split must be k : 2k : 4k (the SFQ
// schedule is periodic; we check the half-way window with one-request
// slack for phase).
TEST(FairSchedulerTest, WeightedFairSharesUnderBacklog) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});
  sched.register_tenant("a", 1.0);
  sched.register_tenant("b", 2.0);
  sched.register_tenant("c", 4.0);

  constexpr std::uint64_t kBytes = 4096;
  std::vector<TicketPtr> tickets;
  std::vector<std::string> owner;
  auto enqueue = [&](const std::string& tenant, int count) {
    for (int i = 0; i < count; ++i) {
      tickets.push_back(sched.submit(bulk_request(tenant, kBytes)));
      owner.push_back(tenant);
    }
  };
  enqueue("a", 8);
  enqueue("b", 16);
  enqueue("c", 32);

  std::vector<bool> done(tickets.size(), false);
  std::map<std::string, int> granted;
  for (int grant = 0; grant < 28; ++grant) {
    const int idx = complete_next(sched, tickets, done);
    ASSERT_GE(idx, 0) << "channel wedged at grant " << grant;
    ++granted[owner[static_cast<std::size_t>(idx)]];
  }
  // Ideal split of 28 grants at 1:2:4 is 4:8:16; allow one request of
  // phase slack per tenant.
  EXPECT_NEAR(granted["a"], 4, 1);
  EXPECT_NEAR(granted["b"], 8, 1);
  EXPECT_NEAR(granted["c"], 16, 1);
}

// A tenant that sat idle while others consumed the channel must NOT
// burst past them on return: its vtime snaps forward to the global
// frontier, so from arrival onward it shares equally (weight 1:1) —
// no banked credit.
TEST(FairSchedulerTest, IdleTenantCannotBankCredit) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});
  sched.register_tenant("busy", 1.0);
  sched.register_tenant("late", 1.0);

  std::vector<TicketPtr> tickets;
  std::vector<std::string> owner;
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(sched.submit(bulk_request("busy", 1024)));
    owner.push_back("busy");
  }
  std::vector<bool> done(tickets.size(), false);
  for (int i = 0; i < 6; ++i) {
    ASSERT_GE(complete_next(sched, tickets, done), 0);
  }
  // "late" arrives after 6 exclusive grants to "busy".
  for (int i = 0; i < 10; ++i) {
    tickets.push_back(sched.submit(bulk_request("late", 1024)));
    owner.push_back("late");
    done.push_back(false);
  }
  int late_grants = 0;
  for (int i = 0; i < 8; ++i) {
    const int idx = complete_next(sched, tickets, done);
    ASSERT_GE(idx, 0);
    if (owner[static_cast<std::size_t>(idx)] == "late") ++late_grants;
  }
  // Equal weights from arrival: 4 of the next 8 (±1 phase).  Catching
  // up on the 6 missed grants would need 7 of 8.
  EXPECT_GE(late_grants, 3);
  EXPECT_LE(late_grants, 5);
}

// Starvation regression: a priority request submitted behind a deep
// bulk backlog from another tenant is granted at the very next slot.
TEST(FairSchedulerTest, PriorityJumpsBulkBacklog) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});

  std::vector<TicketPtr> bulk;
  for (int i = 0; i < 100; ++i) {
    bulk.push_back(sched.submit(bulk_request("hog", 65536)));
  }
  ASSERT_TRUE(bulk[0]->granted());
  auto flush = sched.submit(priority_request("meta"));
  EXPECT_FALSE(flush->granted());  // channel is busy, no preemption

  sched.complete(bulk[0]);
  EXPECT_TRUE(flush->granted()) << "priority must beat 99 queued bulk ops";
  EXPECT_FALSE(bulk[1]->granted());
  sched.complete(flush);
  EXPECT_TRUE(bulk[1]->granted());
}

// Regression for the virtual-time jump bug: a priority grant's start
// tag rides its tenant's vtime (up to one full charge ahead of the
// global frontier).  Advancing V to it would snap every lagging tenant
// forward and erase fair-queuing history on each flush, degrading SFQ
// toward FIFO — exactly what the fig_fairshare gate first caught.
TEST(FairSchedulerTest, PriorityGrantDoesNotAdvanceGlobalVirtualTime) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});

  auto write = sched.submit(bulk_request("ck", 65536));
  ASSERT_TRUE(write->granted());  // start 0 -> V stays 0, ck.vtime 65536
  auto flush = sched.submit(priority_request("ck"));
  sched.complete(write);
  ASSERT_TRUE(flush->granted());  // start = ck.vtime = 65536
  sched.complete(flush);
  EXPECT_DOUBLE_EQ(sched.stats().virtual_time, 0.0)
      << "priority grants must not drag the global frontier forward";
}

TEST(FairSchedulerTest, DeadlinesReorderWithinTenantLane) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});

  auto blocker = sched.submit(bulk_request("t", 1024));
  ASSERT_TRUE(blocker->granted());
  auto relaxed = sched.submit(bulk_request("t", 1024));  // no deadline
  auto far = [&] {
    auto req = bulk_request("t", 1024);
    req.deadline = 10.0;
    return sched.submit(req);
  }();
  auto near = [&] {
    auto req = bulk_request("t", 1024);
    req.deadline = 1.0;
    return sched.submit(req);
  }();

  sched.complete(blocker);
  EXPECT_TRUE(near->granted());  // tightest deadline first
  EXPECT_FALSE(far->granted());
  sched.complete(near);
  EXPECT_TRUE(far->granted());
  EXPECT_FALSE(relaxed->granted());  // deadline-free sorts last
  sched.complete(far);
  EXPECT_TRUE(relaxed->granted());
  sched.complete(relaxed);
}

TEST(FairSchedulerTest, LateGrantCountsDeadlineMiss) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});

  auto blocker = sched.submit(bulk_request("t", 1024));
  auto req = bulk_request("t", 1024);
  req.deadline = 0.5;
  auto urgent = sched.submit(req);
  clock.advance(1.0);  // channel stays busy past the deadline
  sched.complete(blocker);
  ASSERT_TRUE(urgent->granted());
  sched.complete(urgent);

  const auto stats = sched.stats();
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.tenants.at("t").deadline_misses, 1u);
}

TEST(FairSchedulerTest, DeadlineComposesWithRetryPolicy) {
  resilience::RetryPolicy policy;
  policy.deadline_seconds = 2.0;
  EXPECT_DOUBLE_EQ(IoRequest::deadline_from(policy, 5.0), 7.0);
  policy.deadline_seconds = 0.0;
  EXPECT_DOUBLE_EQ(IoRequest::deadline_from(policy, 5.0), 0.0);
}

TEST(FairSchedulerTest, CloseGrantsEverythingSoDrainsCannotWedge) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});
  auto blocker = sched.submit(bulk_request("t", 1024));
  auto queued1 = sched.submit(bulk_request("t", 1024));
  auto queued2 = sched.submit(bulk_request("u", 1024));
  EXPECT_FALSE(queued1->granted());

  sched.close();
  EXPECT_TRUE(sched.closed());
  EXPECT_TRUE(queued1->granted());
  EXPECT_TRUE(queued2->granted());
  sched.wait(queued1);  // must not block
  sched.complete(blocker);
  sched.complete(queued1);
  sched.complete(queued2);
  // Post-close submissions are granted immediately.
  auto late = sched.submit(bulk_request("t", 1024));
  EXPECT_TRUE(late->granted());
  sched.complete(late);
}

TEST(FairSchedulerTest, CompleteBeforeGrantThrows) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});
  auto blocker = sched.submit(bulk_request("t", 1024));
  auto queued = sched.submit(bulk_request("t", 1024));
  EXPECT_THROW(sched.complete(queued), InvalidArgumentError);
  sched.complete(blocker);
  sched.complete(queued);
}

TEST(FairSchedulerTest, EmptyTenantResolvesToDefault) {
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});
  auto ticket = sched.submit(bulk_request("", 512));
  EXPECT_EQ(ticket->request().tenant, std::string(kDefaultTenant));
  sched.complete(ticket);
  EXPECT_EQ(sched.stats().tenants.at(kDefaultTenant).dispatched_bytes, 512u);
}

TEST(FairSchedulerTest, RejectsInvalidConfiguration) {
  EXPECT_THROW(FairScheduler(SchedOptions{0, nullptr}), InvalidArgumentError);
  resilience::ManualClock clock;
  FairScheduler sched(SchedOptions{1, &clock});
  EXPECT_THROW(sched.register_tenant("", 1.0), InvalidArgumentError);
  EXPECT_THROW(sched.register_tenant("t", 0.0), InvalidArgumentError);
}

// Contended admit()/complete() from many threads: exercised under TSan
// by the tsan-labelled suite.  With max_inflight=1 every admission
// serialises through the channel, so totals must be exact.
TEST(FairSchedulerTest, ConcurrentAdmitCompleteStaysConsistent) {
  FairScheduler sched(SchedOptions{1, nullptr});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 64;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sched, t] {
      const std::string tenant = "t" + std::to_string(t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto ticket = sched.admit(bulk_request(tenant, 1024));
        sched.complete(ticket);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto stats = sched.stats();
  EXPECT_EQ(stats.dispatched_ops,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
  EXPECT_EQ(stats.dispatched_bytes,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread) * 1024u);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(stats.tenants.at("t" + std::to_string(t)).dispatched_ops,
              static_cast<std::uint64_t>(kOpsPerThread));
  }
}

TEST(ScopedSubmissionTest, BindsNestsAndRestores) {
  EXPECT_EQ(current_submission(), nullptr);
  {
    ScopedSubmission outer({"alpha", Lane::kBulk, 0.0});
    ASSERT_NE(current_submission(), nullptr);
    EXPECT_EQ(current_submission()->tenant, "alpha");
    {
      ScopedSubmission inner({"beta", Lane::kPriority, 3.0});
      EXPECT_EQ(current_submission()->tenant, "beta");
      EXPECT_EQ(current_submission()->lane, Lane::kPriority);
    }
    EXPECT_EQ(current_submission()->tenant, "alpha");
  }
  EXPECT_EQ(current_submission(), nullptr);
}

// ---------------------------------------------------------------------------
// render_sched_report: the shared `sched:` block (apio_profile + tests).

TEST(SchedReportTest, EmptyWhenNothingDispatched) {
  obs::Registry::instance().reset();
  EXPECT_TRUE(render_sched_report(obs::Registry::instance().snapshot()).empty());
}

TEST(SchedReportTest, RendersPerTenantWaitPercentilesAndMisses) {
  auto& registry = obs::Registry::instance();
  registry.reset();
  obs::set_enabled(true);
  registry.counter("sched.dispatched").add(6);
  registry.counter("sched.dispatched_bytes").add(1024);
  registry.counter("sched.tenant.alpha.dispatched_bytes").add(768);
  registry.counter("sched.tenant.alpha.deadline_misses").add(2);
  registry.counter("sched.tenant.beta.dispatched_bytes").add(256);
  auto& wait = registry.histogram("sched.tenant.alpha.wait_seconds");
  wait.record_seconds(1e-4);
  wait.record_seconds(2e-3);
  wait.record_seconds(5e-2);
  const auto snap = registry.snapshot();
  obs::set_enabled(false);

  const std::string report = render_sched_report(snap);
  EXPECT_NE(report.find("dispatched 6 ops"), std::string::npos);
  EXPECT_NE(report.find("tenant alpha"), std::string::npos);
  EXPECT_NE(report.find("share  75.0%"), std::string::npos);
  EXPECT_NE(report.find("misses 2"), std::string::npos);

  // The full percentile spread renders from the wait histogram —
  // exactly the values the snapshot itself reports.
  const auto& h = snap.histograms.at("sched.tenant.alpha.wait_seconds");
  const std::string spread = "wait p50/p95/p99 " +
                             format_seconds(h.p50_seconds()) + "/" +
                             format_seconds(h.p95_seconds()) + "/" +
                             format_seconds(h.p99_seconds()) + " (n=3)";
  EXPECT_NE(report.find(spread), std::string::npos) << report;

  // beta recorded no waits: its line renders bytes + misses only.
  EXPECT_NE(report.find("tenant beta"), std::string::npos);
  EXPECT_NE(report.find("share  25.0%"), std::string::npos);
}

}  // namespace
}  // namespace apio::sched

namespace apio::storage {
namespace {

using sched::FairScheduler;
using sched::Lane;
using sched::SchedOptions;

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>(i & 0xff);
  }
  return data;
}

TEST(QosBackendTest, ChargesBoundTenantAndPreservesData) {
  auto scheduler = std::make_shared<FairScheduler>();
  QosBackend qos(std::make_shared<MemoryBackend>(), scheduler);

  const auto data = pattern(2048);
  {
    sched::ScopedSubmission bind({"jobA", Lane::kBulk, 0.0});
    qos.write(0, data);
  }
  std::vector<std::byte> back(2048);
  qos.read(0, back);  // unbound: charged to the default tenant
  EXPECT_EQ(back, data);

  const auto stats = scheduler->stats();
  EXPECT_EQ(stats.tenants.at("jobA").dispatched_bytes, 2048u);
  EXPECT_EQ(stats.tenants.at(sched::kDefaultTenant).dispatched_bytes, 2048u);
}

TEST(QosBackendTest, VectoredWriteAdmitsOnceForTotalBytes) {
  auto scheduler = std::make_shared<FairScheduler>();
  QosBackend qos(std::make_shared<MemoryBackend>(), scheduler);

  const auto data = pattern(3 * 512);
  const std::span<const std::byte> span(data);
  const WriteExtent extents[] = {{0, span.subspan(0, 512)},
                                 {4096, span.subspan(512, 512)},
                                 {8192, span.subspan(1024, 512)}};
  const std::uint64_t written = qos.write_v(extents);
  EXPECT_EQ(written, 3u * 512u);

  const auto stats = scheduler->stats();
  EXPECT_EQ(stats.dispatched_ops, 1u) << "one admission per vectored call";
  EXPECT_EQ(stats.dispatched_bytes, 3u * 512u);
}

TEST(QosBackendTest, FlushRidesPriorityLane) {
  auto scheduler = std::make_shared<FairScheduler>();
  QosBackend qos(std::make_shared<MemoryBackend>(), scheduler);
  {
    sched::ScopedSubmission bind({"jobA", Lane::kBulk, 0.0});
    qos.flush();
  }
  const auto stats = scheduler->stats();
  EXPECT_EQ(stats.tenants.at("jobA").priority_ops, 1u)
      << "flush must override the bound bulk lane";
}

TEST(BackendStackTest, ComposesLayersInnerToOuter) {
  auto scheduler = std::make_shared<FairScheduler>();
  ThrottleParams throttle;
  throttle.bandwidth = 1e12;
  throttle.latency = 0.0;
  auto backend = BackendStack::memory()
                     .throttled(throttle)
                     .qos(scheduler)
                     .build();
  EXPECT_EQ(backend->name(), "qos(throttled(memory))");

  auto plain = BackendStack::memory().build();
  EXPECT_EQ(plain->name(), "memory");
}

TEST(BackendStackTest, WrapAdoptsExistingLeaf) {
  auto leaf = std::make_shared<MemoryBackend>();
  auto backend = BackendStack::wrap(leaf).build();
  const auto data = pattern(64);
  backend->write(0, data);
  EXPECT_EQ(leaf->size(), 64u);
}

#if defined(APIO_HAVE_DEATH_TESTS)
TEST(BackendStackDeathTest, RejectsLayerBelowExistingOne) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto scheduler = std::make_shared<FairScheduler>();
        ThrottleParams throttle;
        BackendStack::memory().qos(scheduler).throttled(throttle);
      },
      "decorator order");
}

TEST(BackendStackDeathTest, RejectsDuplicateLayer) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThrottleParams throttle;
        BackendStack::memory().throttled(throttle).throttled(throttle);
      },
      "decorator order");
}
#endif

}  // namespace
}  // namespace apio::storage

namespace apio::vol {
namespace {

// End-to-end attribution: ops issued through an AsyncConnector whose
// AsyncOptions names a tenant are charged to that tenant by the
// QosBackend underneath, including the priority-lane flush.
TEST(AsyncConnectorSchedTest, TenantFlowsFromOptionsToScheduler) {
  auto scheduler = std::make_shared<sched::FairScheduler>();
  auto file = h5::File::create(
      storage::BackendStack::memory().qos(scheduler).build());
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {4096});

  {
    AsyncOptions options;
    options.tenant = "jobA";
    AsyncConnector conn(file, options);
    std::vector<std::byte> data(4096, std::byte{0x5a});
    conn.dataset_write(ds, h5::Selection::all(), data);
    conn.flush();
    conn.wait_all();
  }

  const auto stats = scheduler->stats();
  ASSERT_TRUE(stats.tenants.count("jobA"));
  const auto& tenant = stats.tenants.at("jobA");
  EXPECT_GE(tenant.dispatched_bytes, 4096u);
  EXPECT_GE(tenant.priority_ops, 1u) << "flush must ride the priority lane";
  EXPECT_GE(tenant.lane_bytes[static_cast<int>(sched::Lane::kBulk)], 4096u);
}

}  // namespace
}  // namespace apio::vol

namespace apio::workloads {
namespace {

TEST(MultiJobTest, ValidatesParameters) {
  MultiJobParams params;
  EXPECT_THROW(run_multi_job(params), InvalidArgumentError);
  TenantSpec bad;
  bad.name = "t";
  bad.weight = -1.0;
  params.tenants = {bad};
  EXPECT_THROW(run_multi_job(params), InvalidArgumentError);
}

TEST(MultiJobTest, SmokeRunProducesConsistentAccounting) {
  MultiJobParams params;
  params.pfs_bandwidth = 4.0 * kGiB;  // fast: smoke, not a fairness gate
  params.pfs_latency = 1e-5;
  TenantSpec writer;
  writer.name = "writer";
  writer.weight = 1.0;
  writer.kind = TenantSpec::Kind::kVpic;
  writer.steps = 6;
  writer.bytes_per_step = 8 * kKiB;
  writer.ranks = 2;
  TenantSpec reader = writer;
  reader.name = "reader";
  reader.weight = 2.0;
  reader.kind = TenantSpec::Kind::kBdcats;
  params.tenants = {writer, reader};

  const auto result = run_multi_job(params);
  ASSERT_EQ(result.tenants.size(), 2u);
  EXPECT_GT(result.total_dispatched_bytes, 0u);
  EXPECT_GT(result.elapsed_seconds, 0.0);
  double share_sum = 0.0;
  for (const auto& tenant : result.tenants) {
    share_sum += tenant.share;
    EXPECT_GT(tenant.dispatched_bytes, 0u);
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  // Every issued byte was eventually dispatched (final accounting).
  const std::uint64_t expected =
      2u * 6u * 8u * kKiB;  // both tenants' data payloads
  std::uint64_t final_bulk = 0;
  for (const auto& [name, tenant] : result.final_stats.tenants) {
    final_bulk += tenant.lane_bytes[static_cast<int>(sched::Lane::kBulk)];
  }
  EXPECT_GE(final_bulk, expected);
  EXPECT_FALSE(result.table().empty());
}

}  // namespace
}  // namespace apio::workloads
