#include "obs/metrics_observer.h"

namespace apio::obs {

MetricsObserver::MetricsObserver(std::string prefix)
    : bytes_written_(Registry::instance().counter(prefix + ".bytes_written")),
      bytes_read_(Registry::instance().counter(prefix + ".bytes_read")),
      writes_(Registry::instance().counter(prefix + ".writes")),
      reads_(Registry::instance().counter(prefix + ".reads")),
      prefetches_(Registry::instance().counter(prefix + ".prefetches")),
      flushes_(Registry::instance().counter(prefix + ".flushes")),
      cache_hits_(Registry::instance().counter(prefix + ".cache_hits")),
      async_ops_(Registry::instance().counter(prefix + ".async_ops")),
      blocking_(Registry::instance().histogram(prefix + ".blocking_seconds")),
      completion_(Registry::instance().histogram(prefix + ".completion_seconds")) {}

void MetricsObserver::on_io(const IoRecord& record) {
  switch (record.op) {
    case IoOp::kWrite:
      writes_.increment();
      bytes_written_.add(record.bytes);
      break;
    case IoOp::kRead:
      reads_.increment();
      bytes_read_.add(record.bytes);
      break;
    case IoOp::kPrefetch:
      prefetches_.increment();
      break;
    case IoOp::kFlush:
      flushes_.increment();
      break;
  }
  if (record.cache_hit) cache_hits_.increment();
  if (record.async) async_ops_.increment();
  blocking_.record_seconds(record.blocking_seconds);
  completion_.record_seconds(record.completion_seconds);
}

}  // namespace apio::obs
