// CachedBackend: the write-back burst-buffer tier (bbThemis-style
// visibility modes) — hit/miss bookkeeping, LRU eviction with dirty
// write-back, epoch-driven drains, decorator-order interplay with the
// QoS and resilience tiers, and the crash-consistency matrix
// {4 consistency modes} x {mid-flush fault, clean close, epoch
// boundary} with visibility asserted via File::open checksum
// validation over the inner (PFS) backend.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/error.h"
#include "h5/file.h"
#include "obs/epoch_analyzer.h"
#include "resilience/circuit_breaker.h"
#include "resilience/retry.h"
#include "sched/fair_scheduler.h"
#include "storage/backend_stack.h"
#include "storage/cached_backend.h"
#include "storage/faulty_backend.h"
#include "storage/memory_backend.h"

using namespace apio;
using namespace apio::storage;

namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint8_t seed = 0x40) {
  std::vector<std::byte> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<std::byte>((seed + i * 7) & 0xFF);
  }
  return data;
}

std::shared_ptr<CachedBackend> as_cache(const BackendPtr& backend) {
  auto cache = std::dynamic_pointer_cast<CachedBackend>(backend);
  EXPECT_NE(cache, nullptr);
  return cache;
}

CacheOptions opts(CacheConsistency mode,
                  std::uint64_t capacity = 64ull << 20,
                  std::uint64_t block = 4096) {
  CacheOptions o;
  o.consistency = mode;
  o.capacity_bytes = capacity;
  o.block_bytes = block;
  return o;
}

constexpr CacheConsistency kAllModes[] = {
    CacheConsistency::kAfterWrite, CacheConsistency::kAfterClose,
    CacheConsistency::kAfterEpoch, CacheConsistency::kAfterJob};

}  // namespace

// ---------------------------------------------------------------------------
// Mode plumbing and stack composition

TEST(CacheModeTest, ConsistencyNamesRoundTrip) {
  for (const auto mode : kAllModes) {
    CacheConsistency parsed{};
    ASSERT_TRUE(parse_cache_consistency(to_string(mode), parsed));
    EXPECT_EQ(parsed, mode);
  }
  CacheConsistency parsed{};
  EXPECT_FALSE(parse_cache_consistency("immediately", parsed));
}

TEST(CacheStackTest, CachedComposesOutermost) {
  auto scheduler = std::make_shared<sched::FairScheduler>();
  ThrottleParams throttle;
  throttle.bandwidth = 1e12;
  auto backend = BackendStack::memory()
                     .throttled(throttle)
                     .resilient({})
                     .qos(scheduler)
                     .cached(opts(CacheConsistency::kAfterClose))
                     .build();
  EXPECT_EQ(backend->name(),
            "cached[after-close](qos(resilient(throttled(memory))))");
}

// ---------------------------------------------------------------------------
// Write-back basics

TEST(CacheTest, WriteBackAbsorbsWritesOffTheInnerTier) {
  auto inner = std::make_shared<MemoryBackend>();
  auto backend =
      BackendStack::wrap(inner).cached(opts(CacheConsistency::kAfterClose))
          .build();
  auto cache = as_cache(backend);

  const auto data = pattern(8 * 1024);
  backend->write(0, data);
  EXPECT_EQ(inner->stats().bytes_written, 0u)
      << "write-back: nothing reaches the PFS before the drain trigger";

  std::vector<std::byte> back(data.size());
  backend->read(0, back);
  EXPECT_EQ(back, data);
  EXPECT_EQ(inner->stats().bytes_read, 0u) << "read served from staging";

  const auto snap = cache->cache_snapshot();
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.dirty_bytes, data.size());

  backend->close();
  EXPECT_EQ(inner->stats().bytes_written, data.size());
  EXPECT_EQ(cache->cache_snapshot().dirty_bytes, 0u);
  std::vector<std::byte> inner_back(data.size());
  inner->read(0, inner_back);
  EXPECT_EQ(inner_back, data);
}

TEST(CacheTest, DrainCoalescesAdjacentExtentsThroughWriteV) {
  auto inner = std::make_shared<MemoryBackend>();
  auto backend =
      BackendStack::wrap(inner).cached(opts(CacheConsistency::kAfterClose))
          .build();

  // 16 adjacent 256-byte writes plus one distant extent: the drain
  // must coalesce the run into one extent and leave as vectored
  // batches, not 17 scalar writes.
  const auto data = pattern(256);
  for (int i = 0; i < 16; ++i) {
    backend->write(static_cast<std::uint64_t>(i) * 256, data);
  }
  backend->write(1 << 20, data);
  backend->close();

  // Header-last drain order: one write_v for the non-header extent,
  // one for the lowest extent — two inner ops total.
  EXPECT_EQ(inner->stats().write_ops, 2u);
  EXPECT_EQ(inner->stats().bytes_written, 17u * 256u);
}

TEST(CacheTest, ReadThroughFetchesOnceThenHits) {
  auto inner = std::make_shared<MemoryBackend>();
  const auto data = pattern(4096);
  inner->write(0, data);

  auto backend =
      BackendStack::wrap(inner).cached(opts(CacheConsistency::kAfterClose))
          .build();
  auto cache = as_cache(backend);

  std::vector<std::byte> back(data.size());
  backend->read(0, back);
  EXPECT_EQ(back, data);
  backend->read(0, back);
  EXPECT_EQ(back, data);

  const auto snap = cache->cache_snapshot();
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.hits, 1u);
  EXPECT_EQ(snap.miss_bytes, data.size());
  EXPECT_EQ(inner->stats().bytes_read, data.size())
      << "the second read must not touch the PFS";
}

TEST(CacheTest, ReadPastLogicalEndThrows) {
  auto backend = BackendStack::memory()
                     .cached(opts(CacheConsistency::kAfterClose))
                     .build();
  backend->write(0, pattern(64));
  std::vector<std::byte> out(65);
  EXPECT_THROW(backend->read(0, out), IoError);
}

TEST(CacheTest, LruEvictionWritesDirtyVictimsBackFirst) {
  auto inner = std::make_shared<MemoryBackend>();
  // Two 1 KiB blocks of capacity; three dirty blocks force eviction.
  auto backend = BackendStack::wrap(inner)
                     .cached(opts(CacheConsistency::kAfterClose, 2048, 1024))
                     .build();
  auto cache = as_cache(backend);

  const auto b0 = pattern(1024, 0x10);
  const auto b1 = pattern(1024, 0x20);
  const auto b2 = pattern(1024, 0x30);
  backend->write(0, b0);
  backend->write(1024, b1);
  backend->write(2048, b2);  // evicts the LRU block (block 0)

  const auto snap = cache->cache_snapshot();
  EXPECT_GE(snap.evictions, 1u);
  EXPECT_GE(snap.writeback_bytes, 1024u) << "dirty victim written back";
  EXPECT_LE(snap.cached_bytes, 2048u);

  // The evicted range is still correct: refetched from the PFS tier.
  std::vector<std::byte> back(1024);
  backend->read(0, back);
  EXPECT_EQ(back, b0);

  backend->close();
  std::vector<std::byte> all(3 * 1024);
  inner->read(0, all);
  std::vector<std::byte> want;
  want.insert(want.end(), b0.begin(), b0.end());
  want.insert(want.end(), b1.begin(), b1.end());
  want.insert(want.end(), b2.begin(), b2.end());
  EXPECT_EQ(all, want);
}

// ---------------------------------------------------------------------------
// Epoch-aligned visibility

TEST(CacheTest, AfterEpochDrainsOnEpochEndMarker) {
  auto inner = std::make_shared<MemoryBackend>();
  auto backend =
      BackendStack::wrap(inner).cached(opts(CacheConsistency::kAfterEpoch))
          .build();

  const auto data = pattern(2048);
  {
    obs::EpochScope epoch(0);
    backend->write(0, data);
    EXPECT_EQ(inner->stats().bytes_written, 0u);
  }  // kEnd marker fires here
  EXPECT_EQ(inner->stats().bytes_written, data.size())
      << "epoch end must drain the dirty set";
  std::vector<std::byte> back(data.size());
  inner->read(0, back);
  EXPECT_EQ(back, data);
}

// ---------------------------------------------------------------------------
// Interplay with the QoS tier (BackendStack ordering audit)

TEST(CacheTest, StagedWritesBypassAdmissionAndDrainsAreAdmitted) {
  auto scheduler = std::make_shared<sched::FairScheduler>();
  auto backend = BackendStack::memory()
                     .qos(scheduler)
                     .cached(opts(CacheConsistency::kAfterClose))
                     .build();

  backend->write(0, pattern(4096));
  EXPECT_EQ(scheduler->stats().dispatched_ops, 0u)
      << "staged writes must not spend PFS admission slots";

  backend->close();
  const auto stats = scheduler->stats();
  // The drain arrives as ordinary admitted traffic: one vectored write
  // batch plus the priority-lane flush — and close() returns with no
  // slot still held (queue fully drained).
  EXPECT_GE(stats.dispatched_ops, 2u);
  EXPECT_GE(stats.dispatched_bytes, 4096u);
  EXPECT_EQ(stats.submitted_ops, stats.dispatched_ops)
      << "close() must return with the admission queue fully drained";
}

// ---------------------------------------------------------------------------
// Interplay with the resilience tier: a breaker-open PFS during the
// drain surfaces TransientIoError and retains the dirty set.

TEST(CacheTest, BreakerOpenDuringDrainRetainsDirtySet) {
  FaultPlan plan;
  plan.fail_every_n_writes = 1;  // every PFS write fails...
  plan.transient = true;         // ...transiently
  auto faulty =
      std::make_shared<FaultyBackend>(std::make_shared<MemoryBackend>(), plan);

  resilience::ManualClock clock;
  ResilienceOptions resilience;
  resilience.retry.max_attempts = 2;
  resilience.breaker.failure_threshold = 1;
  resilience.breaker.open_seconds = 10.0;
  auto backend = BackendStack::wrap(faulty)
                     .resilient(resilience, &clock, &clock)
                     .cached(opts(CacheConsistency::kAfterClose))
                     .build();
  auto cache = as_cache(backend);

  const auto data = pattern(1024);
  backend->write(0, data);

  EXPECT_THROW(backend->close(), TransientIoError)
      << "exhausted retries surface the transient classification";
  auto snap = cache->cache_snapshot();
  EXPECT_EQ(snap.dirty_bytes, data.size()) << "dirty set retained";
  EXPECT_EQ(snap.flush_failures, 1u);

  // The leaf heals but the breaker is still open: the drain must keep
  // surfacing TransientIoError (BreakerOpenError) without dropping the
  // dirty extents.
  faulty->heal();
  EXPECT_THROW(cache->drain(), resilience::BreakerOpenError);
  EXPECT_EQ(cache->cache_snapshot().dirty_bytes, data.size());

  // Past the cooldown the half-open probe succeeds and the same
  // extents finally land.
  clock.advance(11.0);
  cache->drain();
  EXPECT_EQ(cache->cache_snapshot().dirty_bytes, 0u);
  std::vector<std::byte> back(data.size());
  faulty->read(0, back);
  EXPECT_EQ(back, data);
}

// ---------------------------------------------------------------------------
// Read-after-shrink through the cache (PR 5 set_extent semantics)

TEST(CacheTest, TruncateInvalidatesStagedBytesBeyondNewSize) {
  auto inner = std::make_shared<MemoryBackend>();
  auto backend =
      BackendStack::wrap(inner).cached(opts(CacheConsistency::kAfterClose))
          .build();

  const auto data = pattern(4096);
  backend->write(0, data);
  std::vector<std::byte> warm(4096);
  backend->read(0, warm);  // staged and hot

  backend->truncate(2048);           // shrink
  backend->truncate(4096);           // regrow: zero-fill, not stale bytes
  std::vector<std::byte> back(4096);
  backend->read(0, back);

  std::vector<std::byte> want(data.begin(), data.begin() + 2048);
  want.resize(4096, std::byte{0});
  EXPECT_EQ(back, want);
}

TEST(CacheTest, SetExtentShrinkDropsOutsideChunksOnRegrowThroughCache) {
  // Mirror of the PR 5 dataset-path regression, run through every
  // cache mode: regrow over dead space must read zero fill, never
  // stale staged bytes.
  for (const auto mode : kAllModes) {
    auto file = h5::File::create(
        BackendStack::memory().cached(opts(mode)).build());
    auto ds = file->root().create_dataset(
        "d", h5::Datatype::kInt32, {8}, h5::DatasetCreateProps::chunked({4}));
    const std::vector<std::int32_t> values{1, 2, 3, 4, 5, 6, 7, 8};
    ds.write<std::int32_t>(h5::Selection::all(), values);

    ds.set_extent({4});
    ds.set_extent({8});
    EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()),
              (std::vector<std::int32_t>{1, 2, 3, 4, 0, 0, 0, 0}))
        << "mode " << to_string(mode);
  }
}

TEST(CacheTest, SetExtentShrinkKeepsPartiallyCoveredChunksThroughCache) {
  for (const auto mode : kAllModes) {
    auto file = h5::File::create(
        BackendStack::memory().cached(opts(mode)).build());
    auto ds = file->root().create_dataset(
        "d", h5::Datatype::kInt32, {8}, h5::DatasetCreateProps::chunked({4}));
    const std::vector<std::int32_t> values{1, 2, 3, 4, 5, 6, 7, 8};
    ds.write<std::int32_t>(h5::Selection::all(), values);

    ds.set_extent({6});
    EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()),
              (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6}))
        << "mode " << to_string(mode);
    ds.set_extent({8});
    EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()), values)
        << "mode " << to_string(mode);
  }
}

// ---------------------------------------------------------------------------
// Crash-consistency matrix: {4 modes} x {clean close, epoch boundary,
// mid-flush fault}.  The producer writes two epochs through the cache;
// visibility is asserted by reopening the INNER backend with
// File::open, whose superblock/metadata checksum validation fails
// loudly on a torn container.

namespace {

struct MatrixRig {
  std::shared_ptr<MemoryBackend> pfs;      // the "parallel file system"
  std::shared_ptr<FaultyBackend> faulty;   // between cache and PFS
  BackendPtr backend;                      // the cache (outermost)
  std::shared_ptr<CachedBackend> cache;
};

MatrixRig make_rig(CacheConsistency mode) {
  MatrixRig rig;
  rig.pfs = std::make_shared<MemoryBackend>();
  rig.faulty = std::make_shared<FaultyBackend>(rig.pfs, FaultPlan{});
  rig.backend = BackendStack::wrap(rig.faulty).cached(opts(mode)).build();
  rig.cache = as_cache(rig.backend);
  return rig;
}

/// Writes epoch `step`'s half of the dataset and flushes the container
/// metadata inside the epoch, so an epoch-end drain publishes a
/// self-consistent container.
void produce_epoch(const h5::FilePtr& file, int step) {
  obs::EpochScope epoch(step);
  auto ds = file->root().open_dataset("d");
  const std::vector<std::uint8_t> half(
      128, step == 0 ? std::uint8_t{0xA1} : std::uint8_t{0xB2});
  ds.write<std::uint8_t>(
      h5::Selection::offsets({static_cast<std::uint64_t>(step) * 128}, {128}),
      half);
  file->flush();
}

std::vector<std::uint8_t> full_contents() {
  std::vector<std::uint8_t> want(128, 0xA1);
  want.resize(256, 0xB2);
  return want;
}

/// Opens the PFS tier directly (checksum-validated) and returns the
/// dataset bytes; empty optional-style via bool when unreadable.
bool pfs_visible(const std::shared_ptr<MemoryBackend>& pfs,
                 std::vector<std::uint8_t>& out) {
  try {
    auto reopened = h5::File::open(pfs);
    out = reopened->root().open_dataset("d").read_vector<std::uint8_t>(
        h5::Selection::all());
    return true;
  } catch (const Error&) {
    // FormatError (bad magic / checksum) on a torn or absent container,
    // IoError on unreadable extents: both mean "not visible yet".
    return false;
  }
}

FaultPlan data_region_fault() {
  FaultPlan plan;
  // Any write beyond the 64-byte superblock faults (the drain's
  // data/metadata extents — and any coalesced extent that starts at the
  // header and runs past it), transiently.  Flushes carry no offset and
  // never match.
  plan.fault_offset_begin = 64;
  plan.fault_offset_end = ~std::uint64_t{0};
  plan.transient = true;
  return plan;
}

}  // namespace

TEST(CacheCrashMatrixTest, CleanCloseAndEpochBoundaryVisibilityPerMode) {
  for (const auto mode : kAllModes) {
    SCOPED_TRACE(to_string(mode));
    auto rig = make_rig(mode);
    auto file = h5::File::create(rig.backend);
    file->root().create_dataset("d", h5::Datatype::kUInt8, {256});

    produce_epoch(file, 0);

    // Epoch-boundary cell: what a concurrent consumer (BD-CATS) sees
    // on the PFS after the producer's first epoch closed.
    std::vector<std::uint8_t> mid;
    const bool visible_mid_run = pfs_visible(rig.pfs, mid);
    const bool expect_mid = mode == CacheConsistency::kAfterWrite ||
                            mode == CacheConsistency::kAfterEpoch;
    EXPECT_EQ(visible_mid_run, expect_mid);
    if (visible_mid_run) {
      std::vector<std::uint8_t> epoch0(256, 0);
      std::fill(epoch0.begin(), epoch0.begin() + 128, 0xA1);
      EXPECT_EQ(mid, epoch0) << "epoch 0 published, epoch 1 not yet written";
    }

    produce_epoch(file, 1);
    file->close();

    // Clean-close cell: everything but kAfterJob is on the PFS now.
    std::vector<std::uint8_t> post;
    const bool visible_post_close = pfs_visible(rig.pfs, post);
    EXPECT_EQ(visible_post_close, mode != CacheConsistency::kAfterJob);
    if (visible_post_close) {
      EXPECT_EQ(post, full_contents());
    }

    if (mode == CacheConsistency::kAfterJob) {
      EXPECT_GT(rig.cache->cache_snapshot().dirty_bytes, 0u);
      rig.cache->drain();  // "job end"
      std::vector<std::uint8_t> job_end;
      ASSERT_TRUE(pfs_visible(rig.pfs, job_end));
      EXPECT_EQ(job_end, full_contents());
    }
  }
}

TEST(CacheCrashMatrixTest, MidFlushFaultRetainsDirtySetPerMode) {
  for (const auto mode : kAllModes) {
    SCOPED_TRACE(to_string(mode));
    auto rig = make_rig(mode);
    auto file = h5::File::create(rig.backend);
    file->root().create_dataset("d", h5::Datatype::kUInt8, {256});
    produce_epoch(file, 0);

    switch (mode) {
      case CacheConsistency::kAfterWrite: {
        // The faulted write-through throws at write time, but the
        // bytes are staged and dirty: after healing, close() drains
        // the retained extent — write-through degrades to write-back
        // under a PFS fault instead of losing the update.
        rig.faulty->set_plan(data_region_fault());
        auto ds = file->root().open_dataset("d");
        const std::vector<std::uint8_t> half(128, 0xB2);
        EXPECT_THROW(
            ds.write<std::uint8_t>(h5::Selection::offsets({128}, {128}), half),
            TransientIoError);
        EXPECT_GT(rig.cache->cache_snapshot().dirty_bytes, 0u);
        rig.faulty->heal();
        file->close();
        break;
      }
      case CacheConsistency::kAfterClose: {
        produce_epoch(file, 1);
        rig.faulty->set_plan(data_region_fault());
        EXPECT_THROW(file->close(), TransientIoError);
        EXPECT_GT(rig.cache->cache_snapshot().dirty_bytes, 0u);
        EXPECT_GE(rig.cache->cache_snapshot().flush_failures, 1u);
        rig.faulty->heal();
        file->close();  // close() retries: drains the retained set
        break;
      }
      case CacheConsistency::kAfterEpoch: {
        // The faulted epoch-end drain fires inside the EpochScope
        // destructor: the error is swallowed (counted), the dirty set
        // retained, and the next drain publishes everything.
        rig.faulty->set_plan(data_region_fault());
        produce_epoch(file, 1);
        EXPECT_GE(rig.cache->cache_snapshot().flush_failures, 1u);
        EXPECT_GT(rig.cache->cache_snapshot().dirty_bytes, 0u);
        rig.faulty->heal();
        file->close();
        break;
      }
      case CacheConsistency::kAfterJob: {
        produce_epoch(file, 1);
        file->close();  // no drain in this mode
        rig.faulty->set_plan(data_region_fault());
        EXPECT_THROW(rig.cache->drain(), TransientIoError);
        EXPECT_GT(rig.cache->cache_snapshot().dirty_bytes, 0u);
        rig.faulty->heal();
        rig.cache->drain();
        break;
      }
    }

    std::vector<std::uint8_t> post;
    ASSERT_TRUE(pfs_visible(rig.pfs, post))
        << "after heal + redrain the container must validate";
    EXPECT_EQ(post, full_contents());
    EXPECT_EQ(rig.cache->cache_snapshot().dirty_bytes, 0u);
  }
}
