// Tests for the observability layer: metrics registry sharding and
// snapshots, span tracing with Chrome trace_event export, the
// composable observer chain, and end-to-end coherence of counters
// against connector statistics under multi-threaded load.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "model/advisor.h"
#include "obs/metrics.h"
#include "obs/metrics_observer.h"
#include "obs/record.h"
#include "obs/span.h"
#include "pmpi/world.h"
#include "storage/memory_backend.h"
#include "vol/async_connector.h"
#include "vol/native_connector.h"
#include "vol/trace.h"

namespace apio::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader: validates syntax and exposes
// just enough structure for the Chrome-trace assertions.  Throws
// std::runtime_error on malformed input.

struct JsonValue {
  enum class Type { kObject, kArray, kString, kNumber, kBool, kNull };
  Type type = Type::kNull;
  std::map<std::string, JsonValue> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0.0;
  bool boolean = false;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const JsonValue& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object[key.string] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    while (peek() != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': v.string += '"'; break;
          case '\\': v.string += '\\'; break;
          case '/': v.string += '/'; break;
          case 'b': v.string += '\b'; break;
          case 'f': v.string += '\f'; break;
          case 'n': v.string += '\n'; break;
          case 'r': v.string += '\r'; break;
          case 't': v.string += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            pos_ += 4;  // validated for length only
            v.string += '?';
            break;
          }
          default: fail("bad escape");
        }
      } else {
        v.string += c;
      }
    }
    ++pos_;
    return v;
  }

  JsonValue boolean() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null() {
    JsonValue v;
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("bad number");
    v.number = std::atof(text_.substr(start, pos_ - start).c_str());
    return v;
  }
};

/// RAII: metrics + tracing on with clean registry/tracer, everything
/// off and wiped again on scope exit so tests stay independent.
class ScopedObservability {
 public:
  ScopedObservability() {
    Registry::instance().reset();
    Tracer::instance().clear();
    set_enabled(true);
    set_tracing_enabled(true);
  }
  ~ScopedObservability() {
    set_enabled(false);
    set_tracing_enabled(false);
    Registry::instance().reset();
    Tracer::instance().clear();
  }
};

h5::FilePtr mem_file() {
  return h5::File::create(std::make_shared<storage::MemoryBackend>());
}

// ---------------------------------------------------------------------------
// Metrics primitives

TEST(CounterTest, ShardedAddsSumToTotal) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&counter, i] {
      set_thread_shard(i);
      for (std::uint64_t n = 0; n < kPerThread; ++n) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter.total(), kThreads * kPerThread);
  const auto shards = counter.per_shard();
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) sum += shards[i];
  EXPECT_EQ(sum, counter.total());
  // Pinned shards read back as per-thread values.
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(shards[static_cast<std::size_t>(i)], kPerThread) << i;
  }
  counter.reset();
  EXPECT_EQ(counter.total(), 0u);
}

TEST(GaugeTest, TracksValueAndWatermark) {
  Gauge gauge;
  gauge.set(7);
  gauge.note_watermark();
  gauge.set(3);
  EXPECT_EQ(gauge.value(), 3);
  EXPECT_EQ(gauge.high_watermark(), 7);
  gauge.add(10);
  gauge.note_watermark();
  EXPECT_EQ(gauge.value(), 13);
  EXPECT_EQ(gauge.high_watermark(), 13);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(gauge.high_watermark(), 0);
}

TEST(HistogramTest, Log2BucketsAndMoments) {
  EXPECT_EQ(Histogram::bucket_index(0.5e-9), 0u);   // sub-nanosecond
  EXPECT_EQ(Histogram::bucket_index(1.0e-9), 0u);   // [1ns, 2ns)
  EXPECT_EQ(Histogram::bucket_index(2.0e-9), 1u);   // [2ns, 4ns)
  EXPECT_EQ(Histogram::bucket_index(1.1e-6), 10u);  // [1024ns, 2048ns)
  EXPECT_EQ(Histogram::bucket_index(1e12), Histogram::kBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_seconds(0), 1e-9);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_seconds(10), 1024e-9);

  Histogram hist;
  hist.record_seconds(1.0e-6);
  hist.record_seconds(1.5e-6);
  hist.record_seconds(3.0e-6);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_NEAR(hist.sum_seconds(), 5.5e-6, 1e-8);
  // 1000ns / 1500ns / 3000ns land in log2 buckets 9 / 10 / 11.
  const auto buckets = hist.buckets();
  EXPECT_EQ(buckets[Histogram::bucket_index(1.0e-6)], 1u);
  EXPECT_EQ(buckets[Histogram::bucket_index(1.5e-6)], 1u);
  EXPECT_EQ(buckets[Histogram::bucket_index(3.0e-6)], 1u);
}

TEST(HistogramTest, QuantilesFromLog2Buckets) {
  Histogram hist;
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile_seconds(0.5), 0.0);  // no samples

  // 100 samples in one bucket: every quantile interpolates inside
  // [1024ns, 2048ns), monotonically in q.
  for (int i = 0; i < 100; ++i) hist.record_seconds(1.5e-6);
  HistogramSnapshot one;
  one.count = hist.count();
  one.sum_seconds = hist.sum_seconds();
  one.buckets = hist.buckets();
  EXPECT_GE(one.p50_seconds(), 1024e-9);
  EXPECT_LE(one.p50_seconds(), 2048e-9);
  EXPECT_LE(one.p50_seconds(), one.p95_seconds());
  EXPECT_LE(one.p95_seconds(), one.p99_seconds());
  EXPECT_LE(one.p99_seconds(), 2048e-9);

  // Bimodal: 90 fast samples, 10 slow ones two decades up.  p50 stays
  // in the fast bucket, p95/p99 land in the slow one.
  Histogram bimodal;
  for (int i = 0; i < 90; ++i) bimodal.record_seconds(1.0e-6);
  for (int i = 0; i < 10; ++i) bimodal.record_seconds(1.0e-4);
  HistogramSnapshot two;
  two.count = bimodal.count();
  two.sum_seconds = bimodal.sum_seconds();
  two.buckets = bimodal.buckets();
  EXPECT_LT(two.p50_seconds(), 3e-6);
  EXPECT_GT(two.p95_seconds(), 5e-5);
  EXPECT_GT(two.p99_seconds(), 5e-5);
  EXPECT_LE(two.p99_seconds(), 2e-4);

  // Extremes clamp instead of misbehaving.
  EXPECT_GT(two.quantile_seconds(0.0), 0.0);   // smallest sample's bucket
  EXPECT_LE(two.quantile_seconds(1.0), 2e-4);  // largest sample's bucket
}

TEST(RegistryTest, SnapshotJsonCarriesPercentiles) {
  ScopedObservability scoped;
  for (int i = 0; i < 20; ++i) {
    Registry::instance().histogram("q.latency").record_seconds(1e-3);
  }
  const auto snap = Registry::instance().snapshot();
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"p50_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_seconds\":"), std::string::npos);
  const std::string text = snap.summary();
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST(RegistryTest, StableReferencesAcrossReset) {
  auto& counter = Registry::instance().counter("obs_test.stable");
  counter.add(5);
  Registry::instance().reset();
  EXPECT_EQ(counter.total(), 0u);
  counter.add(2);  // handed-out reference still valid
  EXPECT_EQ(Registry::instance().counter("obs_test.stable").total(), 2u);
  Registry::instance().reset();
}

TEST(RegistryTest, SnapshotIsWellFormedJson) {
  ScopedObservability scoped;
  Registry::instance().counter("a.bytes").add(42);
  Registry::instance().gauge("a.depth").set(3);
  Registry::instance().histogram("a.lat\"ency").record_seconds(1e-3);

  const std::string json = Registry::instance().snapshot().to_json();
  JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_TRUE(root.has("counters"));
  EXPECT_TRUE(root.has("gauges"));
  EXPECT_TRUE(root.has("histograms"));
  EXPECT_EQ(root.at("counters").at("a.bytes").at("total").number, 42.0);
  // The quote in the histogram name must have been escaped.
  EXPECT_TRUE(root.at("histograms").has("a.lat\"ency"));

  const auto snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counter_total("a.bytes"), 42u);
  EXPECT_EQ(snap.counter_total("no.such.counter"), 0u);
  EXPECT_NE(snap.summary().find("a.bytes"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Composite observer chain

class Probe final : public IoObserver {
 public:
  explicit Probe(bool detail = false) : detail_(detail) {}
  void on_io(const IoRecord& record) override {
    std::lock_guard lock(mutex_);
    records.push_back(record);
  }
  bool wants_detail() const override { return detail_; }
  std::size_t count() const {
    std::lock_guard lock(mutex_);
    return records.size();
  }
  std::vector<IoRecord> records;

 private:
  bool detail_;
  mutable std::mutex mutex_;
};

TEST(CompositeObserverTest, FansOutAndAggregatesDetail) {
  CompositeObserver composite;
  EXPECT_TRUE(composite.empty());
  EXPECT_FALSE(composite.wants_detail());

  auto plain = std::make_shared<Probe>(false);
  auto detailed = std::make_shared<Probe>(true);
  composite.add(plain);
  EXPECT_FALSE(composite.wants_detail());
  composite.add(detailed);
  EXPECT_TRUE(composite.wants_detail());
  EXPECT_EQ(composite.size(), 2u);

  IoRecord record;
  record.op = IoOp::kWrite;
  record.bytes = 64;
  composite.on_io(record);
  EXPECT_EQ(plain->count(), 1u);
  EXPECT_EQ(detailed->count(), 1u);

  composite.remove(detailed);
  EXPECT_FALSE(composite.wants_detail());
  composite.on_io(record);
  EXPECT_EQ(plain->count(), 2u);
  EXPECT_EQ(detailed->count(), 1u);

  composite.remove(detailed);  // unknown pointer: ignored
  composite.clear();
  EXPECT_TRUE(composite.empty());
  composite.on_io(record);
  EXPECT_EQ(plain->count(), 2u);
}

TEST(CompositeObserverTest, AddRemoveObserversOnConnector) {
  auto file = mem_file();
  vol::NativeConnector conn(file);
  auto first = std::make_shared<Probe>();
  auto second = std::make_shared<Probe>();
  conn.add_observer(first);
  conn.add_observer(second);
  EXPECT_EQ(conn.observer_chain()->size(), 2u);

  // Removing one observer leaves the rest of the chain receiving.
  conn.remove_observer(first);
  EXPECT_EQ(conn.observer_chain()->size(), 1u);

  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {4});
  const std::vector<std::uint8_t> data(4, 1);
  conn.dataset_write(ds, h5::Selection::all(),
                     std::as_bytes(std::span<const std::uint8_t>(data)));
  EXPECT_EQ(first->count(), 0u);
  EXPECT_EQ(second->count(), 1u);

  conn.observer_chain()->clear();
  EXPECT_TRUE(conn.observer_chain()->empty());
  conn.dataset_write(ds, h5::Selection::all(),
                     std::as_bytes(std::span<const std::uint8_t>(data)));
  EXPECT_EQ(second->count(), 1u);
}

// Regression (TSan-visible): dispatch used to iterate observers_ while
// holding the chain's mutex released — a concurrent remove() could
// invalidate the iterator mid-fan-out.  on_io now snapshots the chain
// under the lock and dispatches on the copy, so add/remove/clear may
// race freely with dispatch; an observer may receive at most one
// in-flight record after its remove() returns, never a torn read.
TEST(CompositeObserverTest, AddRemoveRacingDispatchHammer) {
  CompositeObserver composite;
  IoRecord record;
  record.op = IoOp::kWrite;
  record.bytes = 1;

  std::atomic<bool> stop{false};
  std::thread dispatcher([&] {
    while (!stop.load(std::memory_order_relaxed)) composite.on_io(record);
  });
  std::thread churner([&] {
    for (int i = 0; i < 2000; ++i) {
      auto probe = std::make_shared<Probe>();
      composite.add(probe);
      composite.remove(probe);
      if (i % 64 == 0) composite.clear();
    }
    stop.store(true, std::memory_order_relaxed);
  });
  churner.join();
  dispatcher.join();
  EXPECT_TRUE(composite.empty());
}

TEST(MetricsObserverTest, RoutesOpsToRegistryCounters) {
  ScopedObservability scoped;
  MetricsObserver observer("t");

  IoRecord write;
  write.op = IoOp::kWrite;
  write.bytes = 100;
  write.blocking_seconds = 1e-4;
  write.completion_seconds = 2e-4;
  write.async = true;
  observer.on_io(write);

  IoRecord read;
  read.op = IoOp::kRead;
  read.bytes = 40;
  read.cache_hit = true;
  observer.on_io(read);

  IoRecord prefetch;
  prefetch.op = IoOp::kPrefetch;
  prefetch.bytes = 8;
  observer.on_io(prefetch);

  IoRecord flush;
  flush.op = IoOp::kFlush;
  observer.on_io(flush);

  const auto snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counter_total("t.bytes_written"), 100u);
  EXPECT_EQ(snap.counter_total("t.bytes_read"), 40u);
  EXPECT_EQ(snap.counter_total("t.writes"), 1u);
  EXPECT_EQ(snap.counter_total("t.reads"), 1u);
  EXPECT_EQ(snap.counter_total("t.prefetches"), 1u);
  EXPECT_EQ(snap.counter_total("t.flushes"), 1u);
  EXPECT_EQ(snap.counter_total("t.cache_hits"), 1u);
  EXPECT_EQ(snap.counter_total("t.async_ops"), 1u);
  // Latency histograms take one sample per record, whatever the op.
  EXPECT_EQ(snap.histograms.at("t.blocking_seconds").count, 4u);
  EXPECT_NEAR(snap.histograms.at("t.blocking_seconds").sum_seconds, 1e-4, 1e-6);
  EXPECT_FALSE(observer.wants_detail());
}

// ---------------------------------------------------------------------------
// Span tracing

TEST(TracerTest, DisabledSpansCostNothingAndRecordNothing) {
  Tracer::instance().clear();
  ASSERT_FALSE(tracing_enabled());
  {
    ScopedSpan span("invisible", Category::kApp, 123);
  }
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST(TracerTest, ChromeExportIsValidTraceEventJson) {
  ScopedObservability scoped;
  {
    ScopedSpan outer("outer", Category::kVol, 4096);
    ScopedSpan inner("in\"ner\\path", Category::kTasking);
  }
  set_thread_rank(3);
  { ScopedSpan ranked("ranked", Category::kPmpi); }
  set_thread_rank(-1);

  const std::string json = Tracer::instance().to_chrome_json();
  JsonValue root = JsonParser(json).parse();
  ASSERT_EQ(root.type, JsonValue::Type::kObject);
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").array;
  ASSERT_EQ(events.size(), 3u);
  bool saw_escaped = false;
  bool saw_rank_lane = false;
  for (const auto& event : events) {
    ASSERT_EQ(event.type, JsonValue::Type::kObject);
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      EXPECT_TRUE(event.has(key)) << key;
    }
    EXPECT_EQ(event.at("ph").string, "X");
    EXPECT_GE(event.at("dur").number, 0.0);
    if (event.at("name").string == "in\"ner\\path") saw_escaped = true;
    // pmpi ranks land in the 1000+rank lane.
    if (event.at("cat").string == "pmpi") {
      EXPECT_EQ(event.at("tid").number, 1003.0);
      saw_rank_lane = true;
    }
  }
  EXPECT_TRUE(saw_escaped);
  EXPECT_TRUE(saw_rank_lane);
  EXPECT_NE(Tracer::instance().summary().find("outer"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: instrumented stack

TEST(ObsEndToEndTest, WorkloadEmitsSpansFromAllFourLayers) {
  ScopedObservability scoped;
  auto file = mem_file();
  auto connector = std::make_shared<vol::AsyncConnector>(file);
  auto metrics = std::make_shared<MetricsObserver>();
  connector->add_observer(metrics);

  constexpr std::uint64_t kBytesPerRank = 64 * 1024;
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8,
                                        {2 * kBytesPerRank});
  pmpi::run(2, [&](pmpi::Communicator& comm) {
    const std::vector<std::uint8_t> data(kBytesPerRank,
                                         static_cast<std::uint8_t>(comm.rank()));
    comm.barrier();
    connector->dataset_write(
        ds,
        h5::Selection::offsets(
            {static_cast<std::uint64_t>(comm.rank()) * kBytesPerRank},
            {kBytesPerRank}),
        std::as_bytes(std::span<const std::uint8_t>(data)));
    comm.barrier();
  });
  connector->wait_all();
  const auto stats = connector->stats();
  connector->close();

  // Spans from vol, tasking, pmpi and storage must all be present.
  bool saw[4] = {false, false, false, false};
  for (const auto& span : Tracer::instance().spans()) {
    if (span.category == Category::kVol) saw[0] = true;
    if (span.category == Category::kTasking) saw[1] = true;
    if (span.category == Category::kPmpi) saw[2] = true;
    if (span.category == Category::kStorage) saw[3] = true;
  }
  EXPECT_TRUE(saw[0]) << "no vol span";
  EXPECT_TRUE(saw[1]) << "no tasking span";
  EXPECT_TRUE(saw[2]) << "no pmpi span";
  EXPECT_TRUE(saw[3]) << "no storage span";

  // Registry counters agree with the connector's own accounting and the
  // observer bridge.
  const auto snap = Registry::instance().snapshot();
  EXPECT_EQ(snap.counter_total("vol.async.bytes_staged"), stats.bytes_staged);
  EXPECT_EQ(snap.counter_total("io.bytes_written"), stats.bytes_staged);
  EXPECT_EQ(stats.bytes_staged, 2 * kBytesPerRank);

  // Rank threads pinned their shard to the rank: the per-shard view of
  // the staging counter is the per-rank byte count.
  const auto& staged = snap.counters.at("vol.async.bytes_staged");
  EXPECT_EQ(staged.per_shard[0], kBytesPerRank);
  EXPECT_EQ(staged.per_shard[1], kBytesPerRank);

  // The Chrome export of a real run parses.
  EXPECT_NO_THROW(JsonParser(Tracer::instance().to_chrome_json()).parse());
}

// The satellite stress requirement: one connector hammered from 8
// threads with metrics + trace + model observers attached; snapshots
// must stay coherent (sum of per-shard counters == total == AsyncStats
// accounting) and every operation must surface in the trace.
TEST(ObsHammerTest, EightWriterThreadsSnapshotCoherence) {
  ScopedObservability scoped;
  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 16;
  constexpr std::uint64_t kChunk = 16 * 1024;

  auto file = mem_file();
  auto inner = std::make_shared<vol::AsyncConnector>(file);
  vol::TraceRecorder recorder(inner);
  auto metrics = std::make_shared<MetricsObserver>();
  auto advisor = std::make_shared<model::ModeAdvisor>();
  recorder.add_observer(metrics);
  recorder.add_observer(advisor);

  auto ds = file->root().create_dataset(
      "d", h5::Datatype::kUInt8,
      {static_cast<std::uint64_t>(kThreads) * kWritesPerThread * kChunk});

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      set_thread_shard(t);
      const std::vector<std::uint8_t> data(kChunk,
                                           static_cast<std::uint8_t>(t));
      for (int i = 0; i < kWritesPerThread; ++i) {
        const std::uint64_t offset =
            (static_cast<std::uint64_t>(t) * kWritesPerThread +
             static_cast<std::uint64_t>(i)) *
            kChunk;
        recorder.dataset_write(
            ds, h5::Selection::offsets({offset}, {kChunk}),
            std::as_bytes(std::span<const std::uint8_t>(data)));
      }
    });
  }
  for (auto& t : threads) t.join();
  recorder.wait_all();

  constexpr std::uint64_t kTotal = static_cast<std::uint64_t>(kThreads) *
                                   kWritesPerThread * kChunk;
  const auto stats = inner->stats();
  EXPECT_EQ(stats.bytes_staged, kTotal);
  EXPECT_EQ(stats.writes_enqueued,
            static_cast<std::uint64_t>(kThreads) * kWritesPerThread);

  const auto snap = Registry::instance().snapshot();
  const auto& staged = snap.counters.at("vol.async.bytes_staged");
  EXPECT_EQ(staged.total, kTotal);
  std::uint64_t shard_sum = 0;
  for (std::size_t s = 0; s < staged.per_shard.size(); ++s) {
    shard_sum += staged.per_shard[s];
  }
  EXPECT_EQ(shard_sum, staged.total);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(staged.per_shard[static_cast<std::size_t>(t)],
              static_cast<std::uint64_t>(kWritesPerThread) * kChunk)
        << "shard " << t;
  }
  EXPECT_EQ(snap.counter_total("io.bytes_written"), kTotal);

  // Every write surfaced on the unified stream: the trace sink saw all
  // of them, and the model accumulated usable samples.
  const auto trace = recorder.trace();
  EXPECT_EQ(trace.size(),
            static_cast<std::size_t>(kThreads) * kWritesPerThread);
  double prev = -1.0;
  for (const auto& e : trace.events()) {
    EXPECT_EQ(e.kind, vol::TraceEvent::Kind::kWrite);
    EXPECT_EQ(e.bytes, kChunk);
    EXPECT_GE(e.issue_time, prev);
    prev = e.issue_time;
  }
  EXPECT_TRUE(advisor->async_ready());

  inner->close();
}

}  // namespace
}  // namespace apio::obs
