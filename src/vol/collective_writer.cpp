#include "vol/collective_writer.h"

#include <algorithm>
#include <cstring>

#include "common/clock.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "sched/io_request.h"

namespace apio::vol {
namespace {

/// Reserved tag for aggregation payloads; distinct from the pmpi
/// internal collectives (-1000xxx) and workloads/two_phase (-2000xxx).
constexpr int kTagPayload = -3000001;

obs::Counter& aggregated_bytes_counter() {
  static auto& c = obs::Registry::instance().counter("io.aggregated_bytes");
  return c;
}

/// One region-clipped piece of some rank's extent, in the deterministic
/// global order every rank derives from the allgathered headers.
struct Piece {
  int source = 0;
  int aggregator_index = 0;
  std::uint64_t elem_offset = 0;
  std::uint64_t bytes = 0;
  /// Byte offset of the piece inside its source extent's payload.
  std::uint64_t payload_offset = 0;
  /// Index of the extent in the source rank's submitted list.
  std::size_t extent_index = 0;
  /// Source rank's collective trace identity, piggybacked on the
  /// allgathered headers (0 when the source is untraced/unsampled).
  std::uint64_t source_trace_id = 0;
  std::uint64_t source_span_id = 0;
};

}  // namespace

CollectiveWriteResult collective_write(Connector& connector, pmpi::Communicator& comm,
                                       h5::Dataset ds,
                                       std::span<const CollectiveExtent> extents,
                                       const CollectiveWriteOptions& options,
                                       std::vector<RequestPtr>* outstanding) {
  const int rank = comm.rank();
  const int size = comm.size();
  APIO_REQUIRE(ds.dims().size() == 1, "collective_write requires a 1-D dataset");
  APIO_REQUIRE(options.stripe_bytes >= 1, "stripe_bytes must be >= 1");
  APIO_REQUIRE(options.num_aggregators >= 0 && options.num_aggregators <= size,
               "aggregator count must be in [0, comm size]");
  const std::size_t elsize = ds.element_size();
  for (std::size_t i = 0; i < extents.size(); ++i) {
    APIO_REQUIRE(extents[i].data.size() % elsize == 0,
                 "collective_write extents must hold whole elements");
    APIO_REQUIRE(i == 0 || extents[i].elem_offset >=
                               extents[i - 1].elem_offset +
                                   extents[i - 1].data.size() / elsize,
                 "collective_write extents must be sorted and disjoint");
  }
  WallClock clock;
  const double t0 = clock.now();

  // This rank's collective trace: the exchange phases record against
  // it, and its identity rides the allgathered headers so aggregators
  // can attribute remote writes back to the contributing rank's trace.
  auto& collector = obs::trace::TraceCollector::instance();
  const obs::trace::TraceContext rank_trace = collector.start_trace();
  obs::trace::ScopedTraceContext trace_bind(rank_trace);
  const double rank_trace_start = obs::steady_seconds();
  std::uint64_t my_bytes = 0;
  for (const auto& e : extents) my_bytes += e.data.size();
  const auto seal_rank_trace = [&] {
    if (!rank_trace.recording()) return;
    const sched::SubmissionContext* sub = sched::current_submission();
    collector.complete(rank_trace, obs::IoOp::kWrite,
                       sub != nullptr && !sub->tenant.empty()
                           ? sub->tenant
                           : sched::kDefaultTenant,
                       my_bytes, /*failed=*/false, rank_trace_start,
                       obs::steady_seconds());
  };

  // Phase 0: allgather extent headers so every rank knows the complete
  // access pattern.  Header stream per rank: (elem_offset, bytes,
  // trace_id, root_span_id) quads — the trace fields are the cross-rank
  // context propagation, zero when the source is untraced.
  obs::trace::ScopedPhase exchange_span(obs::trace::Phase::kExchange,
                                        my_bytes);
  std::vector<std::uint64_t> my_headers;
  my_headers.reserve(extents.size() * 4);
  for (const auto& e : extents) {
    my_headers.push_back(e.elem_offset);
    my_headers.push_back(e.data.size());
    my_headers.push_back(rank_trace.recording() ? rank_trace.trace_id : 0);
    my_headers.push_back(rank_trace.recording() ? rank_trace.span_id : 0);
  }
  const auto gathered = comm.allgather_bytes(std::as_bytes(std::span<const std::uint64_t>(my_headers)));

  std::vector<std::vector<std::uint64_t>> all_headers(static_cast<std::size_t>(size));
  std::uint64_t lo = UINT64_MAX;
  std::uint64_t hi = 0;
  for (int r = 0; r < size; ++r) {
    const auto& raw = gathered[static_cast<std::size_t>(r)];
    auto& h = all_headers[static_cast<std::size_t>(r)];
    h.resize(raw.size() / sizeof(std::uint64_t));
    if (!raw.empty()) std::memcpy(h.data(), raw.data(), raw.size());
    for (std::size_t i = 0; i + 3 < h.size(); i += 4) {
      lo = std::min(lo, h[i]);
      hi = std::max(hi, h[i] + h[i + 1] / elsize);
    }
  }

  CollectiveWriteResult result;
  if (hi <= lo) {
    // Nothing selected anywhere; the allgather already synchronised.
    exchange_span.finish();
    seal_rank_trace();
    return result;
  }

  // Region map: the selected span [lo, hi) is divided among A
  // aggregators in contiguous stripe-aligned regions.  Boundaries live
  // in element space so no write ever splits mid-element.
  const std::uint64_t span_elems = hi - lo;
  const std::uint64_t stripe_elems =
      std::max<std::uint64_t>(1, options.stripe_bytes / elsize);
  int num_aggregators = options.num_aggregators;
  if (num_aggregators == 0) {
    const std::uint64_t stripes = (span_elems + stripe_elems - 1) / stripe_elems;
    num_aggregators = static_cast<int>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(size), stripes));
  }
  std::uint64_t region_elems =
      (span_elems + static_cast<std::uint64_t>(num_aggregators) - 1) /
      static_cast<std::uint64_t>(num_aggregators);
  region_elems = (region_elems + stripe_elems - 1) / stripe_elems * stripe_elems;
  const auto aggregator_rank = [&](int g) {
    // Spread aggregators evenly across the communicator (first rank of
    // each contiguous group), the ROMIO cb_nodes placement.
    return g * size / num_aggregators;
  };
  const auto aggregator_of_elem = [&](std::uint64_t elem) {
    return static_cast<int>(
        std::min<std::uint64_t>((elem - lo) / region_elems,
                                static_cast<std::uint64_t>(num_aggregators - 1)));
  };

  // Derive the deterministic piece list: every rank's extents, clipped
  // at region boundaries, in (source rank, extent, offset) order.  This
  // is both the send schedule (pieces with source == rank) and the
  // receive schedule (pieces whose aggregator is this rank).
  std::vector<Piece> pieces;
  for (int r = 0; r < size; ++r) {
    const auto& h = all_headers[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i + 3 < h.size(); i += 4) {
      std::uint64_t off = h[i];
      std::uint64_t elems_left = h[i + 1] / elsize;
      std::uint64_t payload_off = 0;
      while (elems_left > 0) {
        const int g = aggregator_of_elem(off);
        const std::uint64_t region_end =
            lo + (static_cast<std::uint64_t>(g) + 1) * region_elems;
        const std::uint64_t take = std::min(elems_left, region_end - off);
        Piece p;
        p.source = r;
        p.aggregator_index = g;
        p.elem_offset = off;
        p.bytes = take * elsize;
        p.payload_offset = payload_off;
        p.extent_index = i / 4;
        p.source_trace_id = h[i + 2];
        p.source_span_id = h[i + 3];
        pieces.push_back(p);
        off += take;
        payload_off += take * elsize;
        elems_left -= take;
      }
    }
  }

  // Phase 1: ship payload pieces to their aggregators.  Sends are
  // buffered (Bsend semantics), so aggregators safely self-send.
  for (const auto& p : pieces) {
    if (p.source != rank) continue;
    const auto& payload = extents[p.extent_index].data;
    comm.send_bytes(payload.subspan(p.payload_offset, p.bytes),
                    aggregator_rank(p.aggregator_index), kTagPayload);
  }

  // Phase 2: aggregators receive in the same deterministic order, merge
  // element-adjacent pieces and issue large writes.
  std::uint64_t local_requests = 0;
  std::uint64_t local_received = 0;
  std::uint64_t local_bytes = 0;
  bool i_aggregate = false;
  for (int g = 0; g < num_aggregators; ++g) i_aggregate |= aggregator_rank(g) == rank;
  if (i_aggregate) {
    struct Received {
      std::uint64_t elem_offset;
      std::vector<std::byte> bytes;
      std::uint64_t piece_bytes;  ///< bytes.size() survives the merge move
      std::uint64_t source_trace_id;
      std::uint64_t source_span_id;
    };
    std::vector<Received> mine;
    for (const auto& p : pieces) {
      if (aggregator_rank(p.aggregator_index) != rank) continue;
      Received rec;
      rec.elem_offset = p.elem_offset;
      rec.bytes = comm.recv_bytes(p.source, kTagPayload);
      APIO_ASSERT(rec.bytes.size() == p.bytes, "collective piece size mismatch");
      rec.piece_bytes = p.bytes;
      rec.source_trace_id = p.source_trace_id;
      rec.source_span_id = p.source_span_id;
      mine.push_back(std::move(rec));
      ++local_received;
      local_bytes += p.bytes;
    }
    std::sort(mine.begin(), mine.end(), [](const Received& a, const Received& b) {
      return a.elem_offset < b.elem_offset;
    });
    if (obs::enabled()) aggregated_bytes_counter().add(local_bytes);
    exchange_span.finish();

    std::vector<RequestPtr> waited;
    std::vector<RequestPtr>& requests = outstanding != nullptr ? *outstanding : waited;
    std::size_t i = 0;
    while (i < mine.size()) {
      const std::uint64_t run_start = mine[i].elem_offset;
      const std::size_t run_first = i;
      std::vector<std::byte> merged = std::move(mine[i].bytes);
      std::size_t j = i + 1;
      while (j < mine.size() &&
             mine[j].elem_offset == run_start + merged.size() / elsize) {
        merged.insert(merged.end(), mine[j].bytes.begin(), mine[j].bytes.end());
        ++j;
      }
      {
        // Issue the merged write under the first contributor's context
        // (reconstructed from the wire — the sanctioned cross-rank
        // re-binding) so the minted request trace carries a causal
        // parent link back to the contributing rank's collective trace.
        const obs::trace::TraceContext issuer{  // apio-lint: allow(trace-phase)
            mine[run_first].source_trace_id, mine[run_first].source_span_id,
            mine[run_first].source_trace_id != 0};
        obs::trace::ScopedTraceContext issue_bind(issuer);
        const double w0 = obs::steady_seconds();
        requests.push_back(connector.dataset_write(
            ds, h5::Selection::offsets({run_start}, {merged.size() / elsize}),
            merged));
        const double w1 = obs::steady_seconds();
        // Attribute the issue to every contributor of the merged run.
        for (std::size_t k = run_first; k < j; ++k) {
          if (mine[k].source_trace_id == 0) continue;
          const obs::trace::TraceContext src{  // apio-lint: allow(trace-phase)
              mine[k].source_trace_id, mine[k].source_span_id, true};
          obs::trace::TraceSpan span;
          span.span_id = collector.new_span_id(src);
          span.parent_span_id = mine[k].source_span_id;
          span.phase = obs::trace::Phase::kRemoteWrite;
          span.start_seconds = w0;
          span.duration_seconds = w1 - w0;
          span.bytes = mine[k].piece_bytes;
          span.rank = obs::thread_rank();
          span.detail = "aggregator rank " + std::to_string(rank);
          collector.record(mine[k].source_trace_id, std::move(span));
        }
      }
      ++local_requests;
      i = j;
    }
    for (auto& req : waited) req->wait();
  }

  exchange_span.finish();
  const double blocking = clock.now() - t0;
  comm.barrier();

  result.blocking_seconds = comm.allreduce_max(blocking);
  result.requests_issued = comm.allreduce_sum(local_requests);
  result.extents_received = comm.allreduce_sum(local_received);
  result.total_bytes = comm.allreduce_sum(local_bytes);
  seal_rank_trace();
  return result;
}

}  // namespace apio::vol
