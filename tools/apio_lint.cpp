// apio_lint: repo-specific concurrency-hygiene lint.
//
// A deliberately dependency-free (no libclang) token/line-based checker
// for rules the compiler cannot enforce but the concurrency model
// requires (DESIGN.md, "Concurrency model"):
//
//   raw-mutex     src/tasking, src/pmpi, src/vol and src/sched must
//                 synchronise through debug::RankedMutex so the lock-rank
//                 order is checked at runtime.  Raw std::mutex /
//                 std::condition_variable (whose wait() forces a raw
//                 std::mutex) are rejected; std::condition_variable_any
//                 pairs with RankedMutex and is fine.
//   no-detach     detached threads outlive scope-based reasoning and
//                 every sanitizer's happens-before graph; forbidden
//                 everywhere in src/ and tests/.
//   no-test-sleep wall-clock sleeps make tests flaky and slow; tests
//                 must synchronise on events.  Sleeps that *simulate
//                 compute phases* (the paper's methodology) are opted
//                 in per line with "apio-lint: allow(no-test-sleep)".
//   pragma-once   every header under src/ uses #pragma once (the
//                 include-guard style of this repo).
//   faulty-backend  storage::FaultyBackend is a test-only fault
//                 injector; wiring it into library code under src/
//                 (outside its own definition) would ship injected
//                 failures.  Production resilience goes through
//                 storage::ResilientBackend / AsyncOptions::retry.
//   cached-backend  storage::CachedBackend must be constructed through
//                 BackendStack::cached(), never directly: the stack
//                 builder is what enforces the decorator-order
//                 invariant (cache outermost, so hits bypass QoS
//                 admission and drains pass through it).  A direct
//                 make_shared<CachedBackend>(...) can silently nest
//                 the cache under qos/resilient and spend admission
//                 slots on node-local staging copies.
//   io-vector     dataset transfer paths in src/h5 must aggregate
//                 segments through h5::IoVector (one vectored
//                 write_v/read_v per transfer) instead of issuing
//                 per-segment backend.write()/read() calls — the
//                 request-per-fragment pattern is exactly what the
//                 aggregation layer exists to eliminate.  The
//                 deliberate scalar fallbacks (A/B comparison paths)
//                 carry per-line waivers.
//   trace-phase   causal-trace spans in src/ must be attributed to a
//                 named phase from the obs::trace::Phase enum: every
//                 ScopedPhase / record_phase line must spell a
//                 Phase::k... constant on the same line, and raw
//                 TraceContext{...} construction (forging a context
//                 instead of propagating one) is flagged.  The
//                 collective writer's deliberate cross-rank context
//                 reconstruction carries per-line waivers.
//
// Any rule can be waived for one line with a trailing comment:
//   // apio-lint: allow(<rule>)
//
// File loading, comment/string stripping, token matching and the
// waiver syntax live in tools/analysis/source_model.{h,cpp}, shared
// with apio_analyze so the two tools cannot drift on what counts as
// code or how a waiver is spelled.
//
// Usage: apio_lint <repo-root>
// Exit code 0 when clean, 1 when violations were found (wired into
// CTest as the `lint` label, so tier-1 fails on violations).
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/source_model.h"

namespace fs = std::filesystem;

using apio::analysis::contains;
using apio::analysis::has_token;
using apio::analysis::waived;

namespace {

struct Violation {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string message;
};

std::vector<Violation> g_violations;

void report(const std::string& file, std::size_t line, std::string rule,
            std::string message) {
  g_violations.push_back({file, line, std::move(rule), std::move(message)});
}

bool path_under(const fs::path& file, const fs::path& dir) {
  const std::string f = file.generic_string();
  const std::string d = dir.generic_string();
  return f.size() > d.size() && f.compare(0, d.size(), d) == 0 &&
         f[d.size()] == '/';
}

void lint_file(const fs::path& root, const fs::path& file) {
  const bool in_ranked_scope = path_under(file, root / "src" / "tasking") ||
                               path_under(file, root / "src" / "pmpi") ||
                               path_under(file, root / "src" / "vol") ||
                               path_under(file, root / "src" / "sched");
  const bool in_tests = path_under(file, root / "tests");
  const bool in_src = path_under(file, root / "src");
  const bool is_faulty_backend_impl =
      file.filename() == "faulty_backend.h" ||
      file.filename() == "faulty_backend.cpp";
  const bool is_cached_backend_impl =
      file.filename() == "cached_backend.h" ||
      file.filename() == "cached_backend.cpp" ||
      file.filename() == "backend_stack.cpp";
  const bool in_h5 = path_under(file, root / "src" / "h5");
  const bool is_trace_impl = file.filename() == "trace_context.h" ||
                             file.filename() == "trace_context.cpp";
  const bool is_io_vector_impl = file.filename() == "io_vector.h" ||
                                 file.filename() == "io_vector.cpp";
  const bool is_header = file.extension() == ".h";

  apio::analysis::SourceFile sf;
  if (!apio::analysis::load_source(root, file, sf)) {
    report(file.generic_string(), 0, "io", "cannot open file");
    return;
  }

  bool saw_pragma_once = false;
  for (std::size_t li = 0; li < sf.raw.size(); ++li) {
    const std::size_t lineno = li + 1;
    const std::string& raw = sf.raw[li];
    if (contains(raw, "#pragma once")) saw_pragma_once = true;
    const std::string& code = sf.code[li];
    if (code.empty()) continue;

    if (in_ranked_scope) {
      for (const char* bad : {"std::mutex", "std::recursive_mutex",
                              "std::timed_mutex", "std::shared_mutex",
                              "std::recursive_timed_mutex"}) {
        if (has_token(code, bad) && !waived(raw, "raw-mutex")) {
          report(sf.path, lineno, "raw-mutex",
                 std::string(bad) +
                     " is forbidden here; use apio::debug::RankedMutex so "
                     "the lock-rank order is enforced");
        }
      }
      if (has_token(code, "std::condition_variable") &&
          !waived(raw, "raw-mutex")) {
        report(sf.path, lineno, "raw-mutex",
               "std::condition_variable waits on a raw std::mutex; use "
               "std::condition_variable_any with a RankedMutex");
      }
    }

    if (in_src && !is_faulty_backend_impl && has_token(code, "FaultyBackend") &&
        !waived(raw, "faulty-backend")) {
      report(sf.path, lineno, "faulty-backend",
             "FaultyBackend is a test-only fault injector and must not be "
             "wired into library code; use storage::ResilientBackend or "
             "AsyncOptions::retry for production resilience");
    }

    if (!is_cached_backend_impl &&
        (contains(code, "make_shared<CachedBackend") ||
         contains(code, "new CachedBackend") ||
         contains(code, "new storage::CachedBackend")) &&
        !waived(raw, "cached-backend")) {
      report(sf.path, lineno, "cached-backend",
             "construct the burst-buffer cache through "
             "storage::BackendStack::cached(), not directly — the stack "
             "builder enforces the decorator-order invariant (cache "
             "outermost); annotate a deliberate exception with apio-lint: "
             "allow(cached-backend)");
    }

    if (in_h5 && !is_io_vector_impl &&
        (contains(code, "backend.write(") || contains(code, "backend.read(")) &&
        !waived(raw, "io-vector")) {
      report(sf.path, lineno, "io-vector",
             "dataset transfers must aggregate through h5::IoVector "
             "(write_v/read_v), not issue per-segment backend calls; "
             "annotate a deliberate scalar fallback with apio-lint: "
             "allow(io-vector)");
    }

    if (in_src && !is_trace_impl) {
      if ((has_token(code, "ScopedPhase") || has_token(code, "record_phase")) &&
          !contains(code, "Phase::k") && !waived(raw, "trace-phase")) {
        report(sf.path, lineno, "trace-phase",
               "trace spans must name a phase from the obs::trace::Phase "
               "enum on the same line (Phase::k...), so every span is "
               "attributable in the critical-path report");
      }
      if ((contains(code, "TraceContext{") || contains(code, "TraceContext(")) &&
          !waived(raw, "trace-phase")) {
        report(sf.path, lineno, "trace-phase",
               "constructing a raw TraceContext forges causal identity; "
               "propagate the submitter's context (current_trace / "
               "ScopedTraceContext) or annotate a deliberate cross-rank "
               "reconstruction with apio-lint: allow(trace-phase)");
      }
    }

    if (contains(code, ".detach()") && !waived(raw, "no-detach")) {
      report(sf.path, lineno, "no-detach",
             "detached threads escape shutdown and sanitizer analysis; "
             "join every thread");
    }

    if (in_tests) {
      for (const char* bad : {"sleep_for", "sleep_until", "usleep"}) {
        if (has_token(code, bad) && !waived(raw, "no-test-sleep")) {
          report(sf.path, lineno, "no-test-sleep",
                 "wall-clock sleeps make tests flaky; synchronise on "
                 "events, or annotate a compute-phase simulation with "
                 "apio-lint: allow(no-test-sleep)");
        }
      }
    }
  }

  if (is_header && !saw_pragma_once) {
    report(sf.path, 1, "pragma-once", "headers must use #pragma once");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: apio_lint <repo-root>\n");
    return 2;
  }
  std::error_code ec;
  const fs::path root = fs::canonical(argv[1], ec);
  if (ec) {
    std::fprintf(stderr, "apio_lint: cannot open %s: %s\n", argv[1],
                 ec.message().c_str());
    return 2;
  }
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "apio_lint: %s has no src/ directory\n",
                 root.generic_string().c_str());
    return 2;
  }

  for (const auto& file : apio::analysis::collect_sources(
           root, {"src", "tests", "examples", "bench"})) {
    lint_file(root, file);
  }

  for (const auto& v : g_violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!g_violations.empty()) {
    std::fprintf(stderr, "apio_lint: %zu violation(s)\n", g_violations.size());
    return 1;
  }
  std::printf("apio_lint: clean\n");
  return 0;
}
