// Fault-injection tests: storage failures must surface as IoError
// through every layer — direct container access, the sync connector,
// the async connector's requests and event sets — without wedging the
// background machinery.
#include <gtest/gtest.h>

#include "common/error.h"
#include "storage/faulty_backend.h"
#include "storage/memory_backend.h"
#include "vol/async_connector.h"
#include "vol/event_set.h"
#include "vol/native_connector.h"

namespace apio {
namespace {

using storage::FaultPlan;
using storage::FaultyBackend;

TEST(FaultyBackendTest, PassesThroughUntilCountdown) {
  FaultPlan plan;
  plan.fail_writes_after = 2;
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);
  std::vector<std::byte> data(4, std::byte{1});
  backend->write(0, data);
  backend->write(4, data);
  EXPECT_THROW(backend->write(8, data), IoError);
  EXPECT_EQ(backend->faults_injected(), 1u);
}

TEST(FaultyBackendTest, ReadFaultsAndHealing) {
  FaultPlan plan;
  plan.fail_reads_after = 0;
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);
  std::vector<std::byte> data(4, std::byte{1});
  backend->write(0, data);
  std::vector<std::byte> out(4);
  EXPECT_THROW(backend->read(0, out), IoError);
  backend->heal();
  EXPECT_NO_THROW(backend->read(0, out));
}

TEST(FaultyBackendTest, FlushFaults) {
  FaultPlan plan;
  plan.fail_flush = true;
  FaultyBackend backend(std::make_shared<storage::MemoryBackend>(), plan);
  EXPECT_THROW(backend.flush(), IoError);
}

TEST(FaultInjectionTest, ContiguousWriteFailureSurfacesFromDataset) {
  FaultPlan plan;
  plan.fail_writes_after = 1;  // superblock write succeeds, data write fails
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);
  auto file = h5::File::create(backend);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};
  EXPECT_THROW(ds.write<std::int32_t>(h5::Selection::all(), values), IoError);
  backend->heal();
  EXPECT_NO_THROW(ds.write<std::int32_t>(h5::Selection::all(), values));
}

TEST(FaultInjectionTest, AsyncWriteFaultReportsThroughRequestAndKeepsQueueAlive) {
  FaultPlan plan;
  plan.fail_writes_after = 1;
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);
  auto file = h5::File::create(backend);
  vol::AsyncConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};

  auto failing = connector.dataset_write(
      ds, h5::Selection::all(), std::as_bytes(std::span<const std::int32_t>(values)));
  EXPECT_THROW(failing->wait(), IoError);

  backend->heal();
  auto ok = connector.dataset_write(
      ds, h5::Selection::all(), std::as_bytes(std::span<const std::int32_t>(values)));
  ok->wait();
  EXPECT_EQ(ds.read_vector<std::int32_t>(h5::Selection::all()), values);
  connector.close();
}

TEST(FaultInjectionTest, EventSetCollectsStorageFaults) {
  FaultPlan plan;
  plan.fail_writes_after = 1;
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);
  auto file = h5::File::create(backend);
  vol::AsyncConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kUInt8, {64});
  std::vector<std::uint8_t> chunk(16, 9);

  vol::EventSet es;
  for (int i = 0; i < 4; ++i) {
    es.insert(connector.dataset_write(
        ds, h5::Selection::offsets({static_cast<std::uint64_t>(i) * 16}, {16}),
        std::as_bytes(std::span<const std::uint8_t>(chunk))));
  }
  es.wait();
  // All four background writes hit the dead backend.
  EXPECT_EQ(es.num_errors(), 4u);
  for (const auto& msg : es.error_messages()) {
    EXPECT_NE(msg.find("injected write fault"), std::string::npos);
  }
  backend->heal();  // close() must flush metadata successfully
  connector.close();
}

TEST(FaultInjectionTest, PrefetchFaultSurfacesOnConsumingRead) {
  FaultPlan plan;
  plan.fail_reads_after = 0;
  auto inner = std::make_shared<storage::MemoryBackend>();
  auto backend = std::make_shared<FaultyBackend>(inner, plan);
  auto file = h5::File::create(backend);
  vol::AsyncConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {4});
  const std::vector<std::int32_t> values{1, 2, 3, 4};
  connector.dataset_write(ds, h5::Selection::all(),
                          std::as_bytes(std::span<const std::int32_t>(values)));
  connector.wait_all();

  connector.prefetch(ds, h5::Selection::all());
  connector.wait_all();
  std::vector<std::int32_t> out(4);
  // The cache entry's eventual carries the prefetch failure.
  EXPECT_THROW(connector
                   .dataset_read(ds, h5::Selection::all(),
                                 std::as_writable_bytes(std::span<std::int32_t>(out)))
                   ->wait(),
               IoError);
  connector.close();
}

TEST(FaultInjectionTest, FlushFaultPropagatesThroughConnector) {
  FaultPlan plan;
  plan.fail_flush = true;
  auto backend = std::make_shared<FaultyBackend>(
      std::make_shared<storage::MemoryBackend>(), plan);
  auto file = h5::File::create(backend);
  vol::NativeConnector connector(file);
  EXPECT_THROW(connector.flush(), IoError);
}

}  // namespace
}  // namespace apio
