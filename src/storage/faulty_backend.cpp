#include "storage/faulty_backend.h"

#include "common/debug/invariant.h"
#include "common/error.h"

namespace apio::storage {

FaultyBackend::FaultyBackend(BackendPtr inner, FaultPlan plan)
    : inner_(std::move(inner)),
      plan_(plan),
      writes_left_(plan.fail_writes_after),
      reads_left_(plan.fail_reads_after) {
  APIO_REQUIRE(inner_ != nullptr, "FaultyBackend requires an inner backend");
}

void FaultyBackend::read(std::uint64_t offset, std::span<std::byte> out) {
  APIO_INVARIANT(offset + out.size() >= offset, "read range overflows offset space");
  if (!healed_.load() && plan_.fail_reads_after >= 0 &&
      reads_left_.fetch_sub(1) <= 0) {
    faults_.fetch_add(1);
    throw IoError("injected read fault at offset " + std::to_string(offset));
  }
  inner_->read(offset, out);
  count_read(out.size());
}

void FaultyBackend::write(std::uint64_t offset, std::span<const std::byte> data) {
  if (!healed_.load() && plan_.fail_writes_after >= 0 &&
      writes_left_.fetch_sub(1) <= 0) {
    faults_.fetch_add(1);
    throw IoError("injected write fault at offset " + std::to_string(offset));
  }
  inner_->write(offset, data);
  count_write(data.size());
}

void FaultyBackend::flush() {
  if (!healed_.load() && plan_.fail_flush) {
    faults_.fetch_add(1);
    throw IoError("injected flush fault");
  }
  inner_->flush();
  count_flush();
}

void FaultyBackend::heal() { healed_.store(true); }

}  // namespace apio::storage
