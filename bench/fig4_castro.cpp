// Fig. 4c/4d: Castro checkpoint I/O under strong scaling (128^3 domain,
// 6 multifab components, 2 particles per cell).
//
// Expected shape (paper): on Summit the sync aggregate bandwidth
// *decreases* as ranks grow (GPFS allocates I/O resources reactively
// and per-writer metadata cost rises); on Cori it increases until
// saturating around 2048 ranks.  Async shows the opposite trend —
// linear speedup, since the per-node staging copy cost is constant.
#include "bench/bench_util.h"
#include "workloads/castro.h"

namespace apio {
namespace {

void run_system(const sim::SystemSpec& spec, const std::vector<int>& node_counts) {
  sim::EpochSimulator simulator(spec);
  model::ModeAdvisor advisor;
  workloads::CastroParams params;  // paper defaults

  bench::banner("Fig. 4 (" + spec.name + "): Castro, strong scaling",
                "128^3, 6 components, 2 particles/cell, checkpoint bytes = " +
                    format_bytes(workloads::CastroProxy::checkpoint_bytes(params)));

  std::vector<bench::SweepPoint> points;
  for (int nodes : node_counts) {
    auto sync_cfg =
        workloads::CastroProxy::sim_config(spec, nodes, model::IoMode::kSync, params);
    auto async_cfg =
        workloads::CastroProxy::sim_config(spec, nodes, model::IoMode::kAsync, params);
    sync_cfg.contention_sigma_override = 0.0;
    async_cfg.contention_sigma_override = 0.0;
    bench::SweepPoint p;
    p.nodes = nodes;
    p.bytes = sync_cfg.bytes_per_epoch;
    p.sync_bw = bench::run_point(simulator, sync_cfg, &advisor);
    p.async_bw = bench::run_point(simulator, async_cfg, &advisor);
    points.push_back(p);
  }

  bench::print_sweep(advisor, spec, points);
}

}  // namespace
}  // namespace apio

int main() {
  apio::run_system(apio::sim::SystemSpec::summit(), {8, 16, 32, 64, 128, 256, 512});
  apio::run_system(apio::sim::SystemSpec::cori_haswell(),
                   {2, 4, 8, 16, 32, 64, 128, 256});
  return 0;
}
