// CRC-32C (Castagnoli) — software table implementation, used to protect
// the container's superblock and metadata blocks against corruption and
// torn writes (HDF5 v3 object headers carry the same style of checksum).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace apio {

/// CRC-32C of `data`, optionally continuing from a previous value
/// (pass the prior return value to checksum split buffers).
std::uint32_t crc32c(std::span<const std::byte> data, std::uint32_t seed = 0);

}  // namespace apio
