// apio_analyze — whole-repo call-graph static analyzer.
//
// Usage:
//   apio_analyze <repo-root> [--dirs a,b,...] [--json FILE]
//                [--baseline FILE] [--write-baseline FILE]
//
// Tokenizes every .h/.cpp under <repo-root>/src and <repo-root>/tools
// (override with --dirs), extracts a heuristic call graph, and runs
// three flow passes: lock-rank order, thread-context blocking, and
// unchecked I/O outcomes (see DESIGN.md "Static analysis").
//
// Exit codes: 0 clean (modulo waivers/baseline), 1 findings or stale
// waivers, 2 usage/environment error.  --json writes a SARIF-lite
// report; --baseline suppresses previously accepted finding keys;
// --write-baseline freezes the current findings as the new baseline.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/passes.h"

namespace fs = std::filesystem;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " <repo-root> [--dirs a,b,...] [--json FILE]"
               " [--baseline FILE] [--write-baseline FILE]\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, ',')) {
    if (!cur.empty()) out.push_back(cur);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);

  fs::path root;
  std::vector<std::string> dirs = {"src", "tools"};
  std::string json_path, baseline_path, write_baseline_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string& slot) {
      if (i + 1 >= argc) return false;
      slot = argv[++i];
      return true;
    };
    if (arg == "--dirs") {
      std::string csv;
      if (!next(csv)) return usage(argv[0]);
      dirs = split_csv(csv);
    } else if (arg == "--json") {
      if (!next(json_path)) return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (!next(baseline_path)) return usage(argv[0]);
    } else if (arg == "--write-baseline") {
      if (!next(write_baseline_path)) return usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (root.empty()) {
      root = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (root.empty()) return usage(argv[0]);

  std::error_code ec;
  root = fs::canonical(root, ec);
  if (ec) {
    std::cerr << "apio_analyze: cannot resolve repo root: " << ec.message()
              << "\n";
    return 2;
  }
  bool any_dir = false;
  for (const auto& d : dirs) {
    if (fs::exists(root / d)) any_dir = true;
  }
  if (!any_dir) {
    std::cerr << "apio_analyze: none of the requested directories exist "
                 "under "
              << root << "\n";
    return 2;
  }

  std::set<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string err;
    if (!apio::analysis::read_baseline(baseline_path, baseline, err)) {
      std::cerr << "apio_analyze: " << err << "\n";
      return 2;
    }
  }

  const apio::analysis::CodeModel model =
      apio::analysis::build_model(root, dirs);
  const apio::analysis::Analysis result =
      apio::analysis::analyze(model, baseline);

  apio::analysis::print_text(result, result.clean() ? std::cout : std::cerr);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "apio_analyze: cannot write " << json_path << "\n";
      return 2;
    }
    out << apio::analysis::to_json(result);
  }
  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    if (!out) {
      std::cerr << "apio_analyze: cannot write " << write_baseline_path
                << "\n";
      return 2;
    }
    out << apio::analysis::baseline_json(result);
  }

  return result.clean() ? 0 : 1;
}
