#include "sim/system_spec.h"

namespace apio::sim {

SystemSpec SystemSpec::summit() {
  SystemSpec spec{
      .name = "summit",
      .ranks_per_node = 6,
      .max_nodes = 4608,
      .pfs = storage::PfsModel::summit_gpfs(),
      .staging = storage::MemcpyModel::summit_dram(),
      .gpu_link = GpuLinkModel::nvlink2(),
      .has_gpus = true,
      .contention = ContentionModel(0.30, 0.15),
      // 1.6 TB NVMe per node, ~2.1 GB/s sustained writes.
      .ssd_node_bandwidth = 2.1e9,
      .bb_aggregate_bandwidth = 0.0,
      .bb_node_bandwidth = 0.0,
  };
  return spec;
}

SystemSpec SystemSpec::cori_haswell() {
  SystemSpec spec{
      .name = "cori-haswell",
      .ranks_per_node = 32,
      .max_nodes = 2388,
      .pfs = storage::PfsModel::cori_lustre(72),
      .staging = storage::MemcpyModel::cori_dram(),
      .gpu_link = GpuLinkModel::pcie3(),
      .has_gpus = false,
      .contention = ContentionModel(0.25, 0.20),
      // Cori-Haswell nodes are diskless; the Cray DataWarp burst buffer
      // offers 1.7 TB/s aggregate (Sec. IV-A) at ~5 GB/s per node.
      .ssd_node_bandwidth = 0.0,
      .bb_aggregate_bandwidth = 1.7e12,
      .bb_node_bandwidth = 5.0e9,
  };
  return spec;
}

}  // namespace apio::sim
