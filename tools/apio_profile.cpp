// apio-profile: summarises a recorded I/O trace (CSV produced by
// vol::TraceRecorder / Trace::to_csv) into a Darshan-style report:
// per-dataset operation counts, byte volumes, blocking time, and a
// request-size histogram.
//
// Usage: apio_profile <trace.csv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "vol/trace.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.csv>\n", argv[0]);
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "apio_profile: cannot open '%s'\n", argv[1]);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    const auto trace = apio::vol::Trace::from_csv(buffer.str());
    apio::vol::IoProfile profile(trace);
    std::fputs(profile.report().c_str(), stdout);
  } catch (const apio::Error& e) {
    std::fprintf(stderr, "apio_profile: %s\n", e.what());
    return 1;
  }
  return 0;
}
