// TimeSeriesWriter: append-oriented access for checkpoint streams.
//
// The paper's applications write one snapshot per I/O phase.  Rather
// than creating a dataset per step (the VPIC-IO layout), a time series
// stores frames along dimension 0 of one extendable chunked dataset —
// the H5Dset_extent idiom.  The writer owns the bookkeeping: extent
// growth, frame selection, and (optionally) per-frame attributes.
#pragma once

#include <string>

#include "h5/file.h"

namespace apio::h5 {

class TimeSeriesWriter {
 public:
  /// Creates the extendable dataset `name` under `parent` with frames of
  /// shape `frame_dims`.  Chunks hold `frames_per_chunk` whole frames.
  TimeSeriesWriter(Group parent, const std::string& name, Datatype dtype,
                   Dims frame_dims, FilterId filter = FilterId::kNone,
                   std::uint64_t frames_per_chunk = 1);

  /// Re-attaches to a series previously created by this class.
  static TimeSeriesWriter open(Group parent, const std::string& name);

  /// Appends one frame (packed frame_dims elements); returns its index.
  std::uint64_t append_raw(std::span<const std::byte> frame);

  template <typename T>
  std::uint64_t append(std::span<const T> frame) {
    return append_raw(std::as_bytes(frame));
  }

  /// Reads frame `index` back (packed).
  void read_frame_raw(std::uint64_t index, std::span<std::byte> out) const;

  template <typename T>
  std::vector<T> read_frame(std::uint64_t index) const {
    std::vector<T> out(frame_elements_);
    read_frame_raw(index, std::as_writable_bytes(std::span<T>(out)));
    return out;
  }

  std::uint64_t frames() const { return frames_; }
  std::uint64_t frame_bytes() const { return frame_elements_ * dataset_.element_size(); }
  Dataset dataset() const { return dataset_; }

 private:
  TimeSeriesWriter(Dataset dataset, Dims frame_dims, std::uint64_t frames);

  Selection frame_selection(std::uint64_t index) const;

  Dataset dataset_;
  Dims frame_dims_;
  std::uint64_t frame_elements_ = 0;
  std::uint64_t frames_ = 0;
};

}  // namespace apio::h5
