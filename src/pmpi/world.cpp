#include "pmpi/world.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <tuple>

#include "common/debug/invariant.h"
#include "common/debug/thread_role.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace apio::pmpi {

World::World(int size) : size_(size) {
  APIO_REQUIRE(size >= 1, "World size must be >= 1");
  coll_slots_.resize(static_cast<std::size_t>(size));
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

Communicator World::comm(int rank) {
  APIO_REQUIRE(rank >= 0 && rank < size_, "rank out of range");
  return Communicator(this, rank);
}

namespace {

obs::Histogram& barrier_wait_hist() {
  static auto& h = obs::Registry::instance().histogram("pmpi.barrier_wait_seconds");
  return h;
}

obs::Counter& barriers_counter() {
  static auto& c = obs::Registry::instance().counter("pmpi.barriers");
  return c;
}

}  // namespace

void World::barrier() {
  // Time spent here is rank-skew wait — the collective synchronization
  // cost the paper's Fig. 7 overlap analysis charges against I/O modes.
  const bool timed = obs::enabled();
  const double t0 = timed ? obs::steady_seconds() : 0.0;
  obs::ScopedSpan span("barrier", obs::Category::kPmpi);
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t my_generation = barrier_generation_;
  APIO_INVARIANT(barrier_arrived_ >= 0 && barrier_arrived_ < size_,
                 "barrier arrival count out of range");
  if (++barrier_arrived_ == size_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_generation_ != my_generation; });
    // A waiter may only be released by the generation flip of its own
    // round (or a later one, for a thread descheduled across rounds) —
    // never by a stale notify of an earlier round.
    APIO_INVARIANT(barrier_generation_ > my_generation,
                   "barrier released into an earlier generation");
  }
  if (timed) {
    barrier_wait_hist().record_seconds(obs::steady_seconds() - t0);
    barriers_counter().increment();
  }
}

int Communicator::size() const { return world_->size(); }

void Communicator::barrier() {
  APIO_ASSERT_ON_RANK(world_, rank_);
  world_->barrier();
}

void Communicator::bcast_bytes(std::span<std::byte> buffer, int root) {
  APIO_REQUIRE(root >= 0 && root < size(), "bcast root out of range");
  APIO_ASSERT_ON_RANK(world_, rank_);
  if (rank_ == root) {
    std::lock_guard lock(world_->coll_mutex_);
    world_->bcast_view_ = buffer;
  }
  world_->barrier();  // publish root's view
  if (rank_ != root) {
    std::span<const std::byte> src;
    {
      std::lock_guard lock(world_->coll_mutex_);
      src = world_->bcast_view_;
    }
    APIO_REQUIRE(src.size() == buffer.size(), "bcast buffer size mismatch across ranks");
    std::memcpy(buffer.data(), src.data(), buffer.size());
  }
  world_->barrier();  // all copies done before root may reuse its buffer
}

std::vector<std::vector<std::byte>> Communicator::allgather_bytes(
    std::span<const std::byte> mine) {
  APIO_ASSERT_ON_RANK(world_, rank_);
  {
    std::lock_guard lock(world_->coll_mutex_);
    world_->coll_slots_[rank_].assign(mine.begin(), mine.end());
  }
  world_->barrier();  // all deposits visible
  std::vector<std::vector<std::byte>> out;
  {
    std::lock_guard lock(world_->coll_mutex_);
    out = world_->coll_slots_;
  }
  world_->barrier();  // all copies done before slots may be overwritten
  return out;
}

double Communicator::allreduce_sum(double value) {
  return allreduce<double>(value, [](const double& a, const double& b) { return a + b; });
}

double Communicator::allreduce_max(double value) {
  return allreduce<double>(value, [](const double& a, const double& b) { return a > b ? a : b; });
}

double Communicator::allreduce_min(double value) {
  return allreduce<double>(value, [](const double& a, const double& b) { return a < b ? a : b; });
}

std::uint64_t Communicator::allreduce_sum(std::uint64_t value) {
  return allreduce<std::uint64_t>(
      value, [](const std::uint64_t& a, const std::uint64_t& b) { return a + b; });
}

std::uint64_t Communicator::allreduce_max(std::uint64_t value) {
  return allreduce<std::uint64_t>(
      value, [](const std::uint64_t& a, const std::uint64_t& b) { return a > b ? a : b; });
}

std::uint64_t Communicator::exscan_sum(std::uint64_t value) {
  auto all = allgather(value);
  std::uint64_t acc = 0;
  for (int r = 0; r < rank_; ++r) acc += all[r];
  return acc;
}

void Communicator::send_bytes(std::span<const std::byte> data, int dest, int tag) {
  APIO_REQUIRE(dest >= 0 && dest < size(), "send dest out of range");
  APIO_ASSERT_ON_RANK(world_, rank_);
  auto& box = *world_->mailboxes_[dest];
  {
    std::lock_guard lock(box.mutex);
    box.queues[{rank_, tag}].emplace_back(data.begin(), data.end());
  }
  box.cv.notify_all();
}

std::vector<std::byte> Communicator::recv_bytes(int source, int tag) {
  APIO_REQUIRE(source >= 0 && source < size(), "recv source out of range");
  APIO_ASSERT_ON_RANK(world_, rank_);
  auto& box = *world_->mailboxes_[rank_];
  std::unique_lock lock(box.mutex);
  const auto key = std::make_pair(source, tag);
  box.cv.wait(lock, [&] {
    auto it = box.queues.find(key);
    return it != box.queues.end() && !it->second.empty();
  });
  auto& queue = box.queues[key];
  std::vector<std::byte> msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

bool Communicator::iprobe(int source, int tag) const {
  APIO_REQUIRE(source >= 0 && source < size(), "iprobe source out of range");
  APIO_ASSERT_ON_RANK(world_, rank_);
  auto& box = *world_->mailboxes_[rank_];
  std::lock_guard lock(box.mutex);
  auto it = box.queues.find({source, tag});
  return it != box.queues.end() && !it->second.empty();
}

Communicator Communicator::split(int color, int key) {
  APIO_ASSERT_ON_RANK(world_, rank_);
  // Collect (color, key) of every rank; group and order deterministically.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  auto entries = allgather(Entry{color, key, rank_});
  std::vector<Entry> group;
  for (const auto& e : entries) {
    if (e.color == color) group.push_back(e);
  }
  std::sort(group.begin(), group.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  int new_rank = -1;
  for (std::size_t i = 0; i < group.size(); ++i) {
    if (group[i].rank == rank_) new_rank = static_cast<int>(i);
  }
  APIO_ASSERT(new_rank >= 0, "split(): calling rank missing from its group");

  // Rendezvous: the first arriver of each colour creates the sub-world.
  std::shared_ptr<World> sub;
  {
    std::lock_guard lock(world_->split_mutex_);
    auto& slot = world_->split_worlds_[color];
    if (!slot) slot = std::make_shared<World>(static_cast<int>(group.size()));
    sub = slot;
  }
  world_->barrier();  // every rank holds its sub-world
  if (rank_ == 0) {
    std::lock_guard lock(world_->split_mutex_);
    world_->split_worlds_.clear();  // ready for the next split() round
  }
  world_->barrier();
  return Communicator(std::move(sub), new_rank);
}

void run(int size, const std::function<void(Communicator&)>& body) {
  World world(size);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size));
  debug::RankedMutex<debug::LockRank::kCounters> error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < size; ++r) {
    threads.emplace_back([&world, &body, &error_mutex, &first_error, r] {
      // Tag the thread with its rank so APIO_ASSERT_ON_RANK catches a
      // communicator leaking to the wrong rank thread (or to a stream).
      debug::ScopedThreadRole role(debug::ThreadRole::kPmpiRank, r, &world);
      // Rank-tag the observability layer too: spans land in per-rank
      // trace lanes and counter shards stripe by rank.
      obs::set_thread_rank(r);
      Communicator comm = world.comm(r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace apio::pmpi
