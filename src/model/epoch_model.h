// The iterative-application I/O performance model of Sec. III-A.
//
//   t_app          = t_init + Σ t_epoch + t_term                   (Eq. 1)
//   t_sync_epoch   = t_io + t_comp                                 (Eq. 2a)
//   t_async_epoch  = max(t_comp, t_io − t_comp) + t_transact       (Eq. 2b)
//
// Eq. 2b assumes the I/O of iteration i overlaps the computation of
// iteration i+1: if computation is longer the epoch is compute-bound
// (ideal scenario, Fig. 1a); otherwise the un-overlapped remainder of
// the I/O is paid (partial overlap, Fig. 1b).  The staging copy
// t_transact is always paid, which makes async a slowdown whenever the
// achievable overlap cannot amortise it (Fig. 1c).
#pragma once

#include <string>

namespace apio::model {

/// Per-epoch cost inputs (seconds).
struct EpochCosts {
  double t_comp = 0.0;      ///< computation phase (incl. communication)
  double t_io = 0.0;        ///< blocking time of the full I/O transfer
  double t_transact = 0.0;  ///< staging-copy (transactional) overhead
};

/// I/O execution mode.
enum class IoMode { kSync, kAsync };

std::string to_string(IoMode mode);

/// Eq. 2a.
double sync_epoch_seconds(const EpochCosts& costs);

/// Eq. 2b.
double async_epoch_seconds(const EpochCosts& costs);

/// Epoch duration under `mode`.
double epoch_seconds(const EpochCosts& costs, IoMode mode);

/// Speedup of async over sync for one epoch (> 1 means async wins).
double async_speedup(const EpochCosts& costs);

/// The three timeline scenarios of Fig. 1.
enum class OverlapScenario {
  kIdeal,     ///< t_comp >= t_io: I/O fully hidden (Fig. 1a)
  kPartial,   ///< partially hidden, still a net win (Fig. 1b)
  kSlowdown,  ///< overhead exceeds the achievable overlap (Fig. 1c)
};

std::string to_string(OverlapScenario scenario);

OverlapScenario classify_overlap(const EpochCosts& costs);

/// True when Eq. 2b < Eq. 2a: asynchronous I/O shortens the epoch.
bool async_is_beneficial(const EpochCosts& costs);

/// Whole-application schedule (Eq. 1) with uniform epochs.
struct AppSchedule {
  double t_init = 0.0;
  double t_term = 0.0;
  int iterations = 0;
  EpochCosts epoch;
};

/// Eq. 1 under `mode`.  Async additionally pays the trailing
/// un-overlapped I/O of the final iteration (there is no following
/// computation to hide it behind), which close()/wait_all() exposes.
double app_seconds(const AppSchedule& schedule, IoMode mode);

}  // namespace apio::model
