#include "workloads/amr.h"

#include "common/clock.h"
#include "common/error.h"

namespace apio::workloads {

std::uint64_t Box::num_cells() const {
  std::uint64_t n = 1;
  for (std::uint64_t s : size) n *= s;
  return n;
}

h5::Selection Box::selection() const { return h5::Selection::offsets(lo, size); }

std::vector<Box> decompose_domain(const h5::Dims& domain, int parts) {
  APIO_REQUIRE(!domain.empty(), "cannot decompose a rank-0 domain");
  APIO_REQUIRE(parts >= 1, "need at least one part");
  std::vector<Box> boxes;
  boxes.reserve(static_cast<std::size_t>(parts));
  const std::uint64_t extent = domain[0];
  const std::uint64_t base = extent / static_cast<std::uint64_t>(parts);
  const std::uint64_t remainder = extent % static_cast<std::uint64_t>(parts);
  std::uint64_t offset = 0;
  for (int p = 0; p < parts; ++p) {
    const std::uint64_t len = base + (static_cast<std::uint64_t>(p) < remainder ? 1 : 0);
    Box box;
    box.lo = h5::Dims(domain.size(), 0);
    box.lo[0] = offset;
    box.size = domain;
    box.size[0] = len;
    offset += len;
    boxes.push_back(std::move(box));
  }
  return boxes;
}

MultiFab::MultiFab(h5::Dims domain, int ncomp, std::vector<Box> local_boxes)
    : domain_(std::move(domain)), ncomp_(ncomp), boxes_(std::move(local_boxes)) {
  APIO_REQUIRE(ncomp_ >= 1, "MultiFab needs at least one component");
  const auto pitch = h5::row_pitches(domain_);
  data_.reserve(boxes_.size() * static_cast<std::size_t>(ncomp_));
  for (const Box& box : boxes_) {
    APIO_REQUIRE(box.lo.size() == domain_.size() && box.size.size() == domain_.size(),
                 "box rank must match the domain rank");
    for (int c = 0; c < ncomp_; ++c) {
      std::vector<float> values(box.num_cells());
      // Fill in the packed row-major order of the box — the order a
      // hyperslab write consumes.
      std::size_t idx = 0;
      h5::for_each_row_run(domain_, box.selection(),
                           [&](const h5::Dims& start, std::uint64_t count) {
                             std::uint64_t linear = 0;
                             for (std::size_t i = 0; i < start.size(); ++i) {
                               linear += start[i] * pitch[i];
                             }
                             for (std::uint64_t k = 0; k < count; ++k) {
                               values[idx++] = cell_value(c, linear + k);
                             }
                           });
      data_.push_back(std::move(values));
    }
  }
}

std::uint64_t MultiFab::local_bytes() const {
  std::uint64_t bytes = 0;
  for (const Box& box : boxes_) {
    bytes += box.num_cells() * static_cast<std::uint64_t>(ncomp_) * sizeof(float);
  }
  return bytes;
}

float MultiFab::cell_value(int comp, std::uint64_t linear_cell_index) {
  return static_cast<float>((linear_cell_index * 31 +
                             static_cast<std::uint64_t>(comp) * 7 + 1) %
                            16777216ull);
}

std::string MultiFab::component_name(int comp) {
  return "comp" + std::to_string(comp);
}

void MultiFab::create_plotfile(vol::Connector& connector, const std::string& group,
                               const h5::Dims& domain, int ncomp) {
  auto g = connector.file()->root().create_group(group);
  for (int c = 0; c < ncomp; ++c) {
    g.create_dataset(component_name(c), h5::Datatype::kFloat32, domain);
  }
  g.set_attribute<std::int32_t>("ncomp", ncomp);
}

double MultiFab::write_plotfile(vol::Connector& connector, const std::string& group,
                                std::vector<vol::RequestPtr>& outstanding) const {
  WallClock clock;
  const double t0 = clock.now();
  auto g = connector.file()->root().open_group(group);
  for (std::size_t b = 0; b < boxes_.size(); ++b) {
    if (boxes_[b].num_cells() == 0) continue;
    const h5::Selection sel = boxes_[b].selection();
    for (int c = 0; c < ncomp_; ++c) {
      auto ds = g.open_dataset(component_name(c));
      const auto& values = data_[b * static_cast<std::size_t>(ncomp_) + c];
      outstanding.push_back(connector.dataset_write(
          ds, sel, std::as_bytes(std::span<const float>(values))));
    }
  }
  return clock.now() - t0;
}

std::uint64_t MultiFab::verify_plotfile(vol::Connector& connector,
                                        const std::string& group) const {
  std::uint64_t failures = 0;
  auto g = connector.file()->root().open_group(group);
  for (std::size_t b = 0; b < boxes_.size(); ++b) {
    if (boxes_[b].num_cells() == 0) continue;
    const h5::Selection sel = boxes_[b].selection();
    for (int c = 0; c < ncomp_; ++c) {
      auto ds = g.open_dataset(component_name(c));
      std::vector<float> readback(boxes_[b].num_cells());
      auto req = connector.dataset_read(
          ds, sel, std::as_writable_bytes(std::span<float>(readback)));
      req->wait();
      const auto& expected = data_[b * static_cast<std::size_t>(ncomp_) + c];
      for (std::size_t i = 0; i < readback.size(); ++i) {
        if (readback[i] != expected[i]) ++failures;
      }
    }
  }
  return failures;
}

}  // namespace apio::workloads
