#include "h5/metadata.h"

#include "common/error.h"

namespace apio::h5::meta {
namespace {

constexpr std::uint8_t kAttrTag = 0xA1;
constexpr std::uint8_t kDatasetTag = 0xD5;
constexpr std::uint8_t kGroupTag = 0x6F;

void put_dims(ByteWriter& out, const Dims& dims) {
  out.put_u32(static_cast<std::uint32_t>(dims.size()));
  for (std::uint64_t d : dims) out.put_u64(d);
}

Dims get_dims(ByteReader& in) {
  const std::uint32_t rank = in.get_u32();
  if (rank > 32) throw FormatError("implausible dataspace rank " + std::to_string(rank));
  Dims dims(rank);
  for (auto& d : dims) d = in.get_u64();
  return dims;
}

void put_attribute(ByteWriter& out, const AttributeNode& attr) {
  out.put_u8(kAttrTag);
  out.put_string(attr.name);
  out.put_u8(static_cast<std::uint8_t>(attr.dtype));
  put_dims(out, attr.dims);
  out.put_u64(attr.value.size());
  out.put_bytes(attr.value);
}

AttributeNode get_attribute(ByteReader& in) {
  if (in.get_u8() != kAttrTag) throw FormatError("bad attribute tag");
  AttributeNode attr;
  attr.name = in.get_string();
  attr.dtype = datatype_from_code(in.get_u8());
  attr.dims = get_dims(in);
  const std::uint64_t n = in.get_u64();
  auto bytes = in.get_bytes(n);
  attr.value.assign(bytes.begin(), bytes.end());
  return attr;
}

void put_attributes(ByteWriter& out, const std::vector<AttributeNode>& attrs) {
  out.put_u32(static_cast<std::uint32_t>(attrs.size()));
  for (const auto& a : attrs) put_attribute(out, a);
}

std::vector<AttributeNode> get_attributes(ByteReader& in) {
  const std::uint32_t n = in.get_u32();
  std::vector<AttributeNode> attrs;
  attrs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) attrs.push_back(get_attribute(in));
  return attrs;
}

void put_dataset(ByteWriter& out, const DatasetNode& ds) {
  out.put_u8(kDatasetTag);
  out.put_string(ds.name);
  out.put_u8(static_cast<std::uint8_t>(ds.dtype));
  put_dims(out, ds.dims);
  out.put_u8(static_cast<std::uint8_t>(ds.layout));
  put_dims(out, ds.chunk_dims);
  out.put_u8(static_cast<std::uint8_t>(ds.filter));
  out.put_u64(ds.data_offset);
  out.put_u64(ds.data_size);
  out.put_u64(ds.chunks.size());
  for (const auto& [coords, loc] : ds.chunks) {
    put_dims(out, coords);
    out.put_u64(loc.offset);
    out.put_u64(loc.stored_size);
    out.put_u64(loc.allocated_size);
  }
  put_attributes(out, ds.attributes);
}

std::unique_ptr<DatasetNode> get_dataset(ByteReader& in) {
  if (in.get_u8() != kDatasetTag) throw FormatError("bad dataset tag");
  auto ds = std::make_unique<DatasetNode>();
  ds->name = in.get_string();
  ds->dtype = datatype_from_code(in.get_u8());
  ds->dims = get_dims(in);
  const std::uint8_t layout = in.get_u8();
  if (layout > 1) throw FormatError("bad layout code");
  ds->layout = static_cast<Layout>(layout);
  ds->chunk_dims = get_dims(in);
  ds->filter = filter_from_code(in.get_u8());
  ds->data_offset = in.get_u64();
  ds->data_size = in.get_u64();
  const std::uint64_t nchunks = in.get_u64();
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    Dims coords = get_dims(in);
    ChunkLocation loc;
    loc.offset = in.get_u64();
    loc.stored_size = in.get_u64();
    loc.allocated_size = in.get_u64();
    ds->chunks.emplace(std::move(coords), loc);
  }
  ds->attributes = get_attributes(in);
  return ds;
}

void put_group(ByteWriter& out, const GroupNode& group) {
  out.put_u8(kGroupTag);
  out.put_string(group.name);
  put_attributes(out, group.attributes);
  out.put_u32(static_cast<std::uint32_t>(group.datasets.size()));
  for (const auto& [name, ds] : group.datasets) put_dataset(out, *ds);
  out.put_u32(static_cast<std::uint32_t>(group.groups.size()));
  for (const auto& [name, child] : group.groups) put_group(out, *child);
}

std::unique_ptr<GroupNode> get_group(ByteReader& in) {
  if (in.get_u8() != kGroupTag) throw FormatError("bad group tag");
  auto group = std::make_unique<GroupNode>();
  group->name = in.get_string();
  group->attributes = get_attributes(in);
  const std::uint32_t ndatasets = in.get_u32();
  for (std::uint32_t i = 0; i < ndatasets; ++i) {
    auto ds = get_dataset(in);
    std::string name = ds->name;
    group->datasets.emplace(std::move(name), std::move(ds));
  }
  const std::uint32_t ngroups = in.get_u32();
  for (std::uint32_t i = 0; i < ngroups; ++i) {
    auto child = get_group(in);
    std::string name = child->name;
    group->groups.emplace(std::move(name), std::move(child));
  }
  return group;
}

}  // namespace

void serialize_tree(const GroupNode& root, ByteWriter& out) {
  put_group(out, root);
}

std::unique_ptr<GroupNode> deserialize_tree(ByteReader& in) {
  return get_group(in);
}

}  // namespace apio::h5::meta
