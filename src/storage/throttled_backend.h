// ThrottledBackend: wraps another backend and delays each transfer
// according to a bandwidth/latency budget, so that laptop-scale runs of
// the real library exhibit PFS-like timing (a slow shared file system
// under a fast local one).  The throttle blocks the *calling* thread,
// exactly as a blocking write to a congested PFS does — which is what
// makes sync-vs-async differences observable in real executions.
#pragma once

#include "common/debug/lock_rank.h"
#include "storage/backend.h"

namespace apio::storage {

/// Timing budget for the throttle.
struct ThrottleParams {
  /// Modelled bandwidth in bytes/s for reads and writes.
  double bandwidth = 1e9;
  /// Fixed per-operation latency in seconds.
  double latency = 0.0;
  /// Wall-time scale: modelled_delay * time_scale is actually slept.
  /// 1.0 reproduces modelled time; tests use small scales to run fast.
  double time_scale = 1.0;
  /// When true, concurrent operations share the bandwidth budget
  /// (serialised token bucket); when false each op is delayed
  /// independently.
  bool shared_channel = true;
};

class ThrottledBackend final : public Backend {
 public:
  ThrottledBackend(BackendPtr inner, ThrottleParams params);

  std::uint64_t size() const override { return inner_->size(); }
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  /// A vectored call is one aggregated request on the modelled PFS: the
  /// budget is charged once (latency + total/bandwidth) rather than
  /// per-extent, which is exactly the cost reduction aggregation buys
  /// on a latency-bound file system.
  [[nodiscard]] std::uint64_t write_v(
      std::span<const WriteExtent> extents) override;
  [[nodiscard]] std::uint64_t read_v(
      std::span<const ReadExtent> extents) override;
  void flush() override;
  void close() override { inner_->close(); }
  void truncate(std::uint64_t new_size) override { inner_->truncate(new_size); }
  std::string name() const override { return "throttled(" + inner_->name() + ")"; }

  /// Total modelled delay injected so far, in modelled seconds.
  double modelled_delay_seconds() const;

  const ThrottleParams& params() const { return params_; }

 private:
  BackendPtr inner_;
  ThrottleParams params_;

  mutable debug::RankedMutex<debug::LockRank::kStorageWrapper> channel_mutex_;
  /// Wall-clock time (steady seconds) at which the shared channel frees up.
  double channel_free_at_ = 0.0;
  double modelled_delay_ = 0.0;

  void throttle(std::uint64_t bytes);
};

}  // namespace apio::storage
