#include "storage/memory_backend.h"

#include <cstring>

#include "common/debug/invariant.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "storage/obs_metrics.h"

namespace apio::storage {

std::uint64_t MemoryBackend::size() const {
  std::lock_guard lock(mutex_);
  return data_.size();
}

void MemoryBackend::read(std::uint64_t offset, std::span<std::byte> out) {
  APIO_INVARIANT(offset + out.size() >= offset, "read range overflows offset space");
  obs::TimedOp op("storage.read", obs::Category::kStorage, storage_read_hist(),
                  &storage_bytes_read(), out.size());
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, out.size(),
                               "memory");
  std::lock_guard lock(mutex_);
  if (offset + out.size() > data_.size()) {
    throw IoError("memory backend: read past end of object (offset " +
                  std::to_string(offset) + " + " + std::to_string(out.size()) +
                  " > " + std::to_string(data_.size()) + ")");
  }
  std::memcpy(out.data(), data_.data() + offset, out.size());
  count_read(out.size());
}

void MemoryBackend::write(std::uint64_t offset, std::span<const std::byte> data) {
  APIO_INVARIANT(offset + data.size() >= offset, "write range overflows offset space");
  obs::TimedOp op("storage.write", obs::Category::kStorage, storage_write_hist(),
                  &storage_bytes_written(), data.size());
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, data.size(),
                               "memory");
  std::lock_guard lock(mutex_);
  const std::uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(end);
  std::memcpy(data_.data() + offset, data.data(), data.size());
  count_write(data.size());
}

std::uint64_t MemoryBackend::write_v(std::span<const WriteExtent> extents) {
  if (extents.empty()) return 0;
  std::uint64_t total = 0;
  std::uint64_t max_end = 0;
  for (const auto& e : extents) {
    APIO_INVARIANT(e.offset + e.data.size() >= e.offset,
                   "write range overflows offset space");
    total += e.data.size();
    max_end = std::max(max_end, e.offset + e.data.size());
  }
  obs::TimedOp op("storage.write", obs::Category::kStorage, storage_write_hist(),
                  &storage_bytes_written(), total);
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, total, "memory");
  std::lock_guard lock(mutex_);
  if (max_end > data_.size()) data_.resize(max_end);
  for (const auto& e : extents) {
    std::memcpy(data_.data() + e.offset, e.data.data(), e.data.size());
  }
  count_write(total);
  return total;
}

std::uint64_t MemoryBackend::read_v(std::span<const ReadExtent> extents) {
  if (extents.empty()) return 0;
  std::uint64_t total = 0;
  for (const auto& e : extents) total += e.out.size();
  obs::TimedOp op("storage.read", obs::Category::kStorage, storage_read_hist(),
                  &storage_bytes_read(), total);
  obs::trace::ScopedPhase span(obs::trace::Phase::kBackend, total, "memory");
  std::lock_guard lock(mutex_);
  for (const auto& e : extents) {
    APIO_INVARIANT(e.offset + e.out.size() >= e.offset,
                   "read range overflows offset space");
    if (e.offset + e.out.size() > data_.size()) {
      throw IoError("memory backend: read past end of object (offset " +
                    std::to_string(e.offset) + " + " +
                    std::to_string(e.out.size()) + " > " +
                    std::to_string(data_.size()) + ")");
    }
    std::memcpy(e.out.data(), data_.data() + e.offset, e.out.size());
  }
  count_read(total);
  return total;
}

void MemoryBackend::flush() { count_flush(); }

void MemoryBackend::truncate(std::uint64_t new_size) {
  std::lock_guard lock(mutex_);
  data_.resize(new_size);
}

}  // namespace apio::storage
