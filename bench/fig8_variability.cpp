// Fig. 8: run-to-run variability of VPIC-IO on Summit.  Each
// configuration is executed >= 5 times with different contention seeds
// ("across multiple days"); sync bandwidth varies with full-system
// contention while async bandwidth is steady (node-local staging).
#include "bench/bench_util.h"
#include "common/stats.h"
#include "workloads/vpic_io.h"

int main() {
  using namespace apio;
  const auto spec = sim::SystemSpec::summit();
  sim::EpochSimulator simulator(spec);
  constexpr int kRuns = 8;

  bench::banner("Fig. 8 (" + spec.name + "): VPIC-IO variability across runs",
                std::to_string(kRuns) +
                    " runs per configuration with full-system contention "
                    "(sigma = 0.35); async hides the variability");

  std::printf("%8s %8s | %14s %14s %8s | %14s %14s %8s\n", "nodes", "ranks",
              "sync min", "sync max", "cv", "async min", "async max", "cv");
  std::printf("%8s %8s | %14s %14s %8s | %14s %14s %8s\n", "-----", "-----",
              "--------", "--------", "--", "---------", "---------", "--");

  for (int nodes : {8, 32, 128, 512}) {
    RunningStats sync_stats;
    RunningStats async_stats;
    for (int run = 0; run < kRuns; ++run) {
      auto sync_cfg =
          workloads::VpicIoKernel::sim_config(spec, nodes, model::IoMode::kSync);
      auto async_cfg =
          workloads::VpicIoKernel::sim_config(spec, nodes, model::IoMode::kAsync);
      sync_cfg.contention_sigma_override = 0.35;
      async_cfg.contention_sigma_override = 0.35;
      sync_cfg.seed = 1000 + static_cast<std::uint64_t>(run);
      async_cfg.seed = 1000 + static_cast<std::uint64_t>(run);
      sync_stats.add(simulator.run(sync_cfg).peak_bandwidth());
      async_stats.add(simulator.run(async_cfg).peak_bandwidth());
    }
    std::printf("%8d %8d | %14s %14s %7.1f%% | %14s %14s %7.1f%%\n", nodes,
                nodes * spec.ranks_per_node,
                format_bandwidth(sync_stats.min()).c_str(),
                format_bandwidth(sync_stats.max()).c_str(), 100.0 * sync_stats.cv(),
                format_bandwidth(async_stats.min()).c_str(),
                format_bandwidth(async_stats.max()).c_str(),
                100.0 * async_stats.cv());
  }
  std::printf(
      "\nshape check: sync coefficient of variation is large (contention-\n"
      "driven); async cv is ~0 because only node-local staging blocks.\n");
  return 0;
}
