#include "model/validation.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace apio::model {

CrossValidationResult k_fold_cross_validation(const std::vector<IoSample>& samples,
                                              FeatureForm form, int k,
                                              std::uint64_t seed) {
  APIO_REQUIRE(k >= 2, "cross-validation needs k >= 2");
  APIO_REQUIRE(samples.size() >= static_cast<std::size_t>(k),
               "need at least k samples for k folds");

  // Deterministic Fisher-Yates shuffle.
  std::vector<std::size_t> order(samples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.next_below(i)]);
  }

  CrossValidationResult result;
  double error_sum = 0.0;
  for (int fold = 0; fold < k; ++fold) {
    std::vector<std::vector<double>> train_rows;
    std::vector<double> train_y;
    std::vector<const IoSample*> held_out;
    for (std::size_t i = 0; i < order.size(); ++i) {
      const IoSample& s = samples[order[i]];
      if (static_cast<int>(i % static_cast<std::size_t>(k)) == fold) {
        held_out.push_back(&s);
      } else {
        train_rows.push_back(make_features(form, static_cast<double>(s.data_size),
                                           static_cast<double>(s.ranks)));
        train_y.push_back(s.io_rate);
      }
    }
    if (held_out.empty() || train_rows.size() < train_rows.front().size()) continue;

    LinearFit fit;
    try {
      fit = fit_least_squares(train_rows, train_y);
    } catch (const InvalidArgumentError&) {
      continue;  // degenerate training split
    }
    double fold_error = 0.0;
    for (const IoSample* s : held_out) {
      const auto features = make_features(form, static_cast<double>(s->data_size),
                                          static_cast<double>(s->ranks));
      const double predicted = predict(fit, features);
      const double rel = std::fabs(predicted - s->io_rate) / s->io_rate;
      fold_error += rel;
      result.worst_abs_rel_error = std::max(result.worst_abs_rel_error, rel);
    }
    error_sum += fold_error / static_cast<double>(held_out.size());
    ++result.folds_evaluated;
  }
  APIO_REQUIRE(result.folds_evaluated > 0,
               "no cross-validation fold could be evaluated");
  result.mean_abs_rel_error = error_sum / static_cast<double>(result.folds_evaluated);
  return result;
}

}  // namespace apio::model
