// BackendStack: fluent builder for backend decorator chains.
//
// Hand-nesting make_shared calls gets the decorator ORDER wrong
// silently — a resilient(qos(...)) stack retries *inside* its admission
// grant, hogging the shared channel for the whole backoff schedule.
// The builder makes the order part of the API:
//
//   auto pfs = storage::BackendStack::posix(path)
//                  .throttled(model)      // PFS timing model
//                  .resilient(policy)     // retries under the throttle
//                  .qos(scheduler)        // admission outermost
//                  .build();
//
// Layer order (inner to outer) is leaf < throttled < resilient < qos;
// each call checks (APIO_INVARIANT, so a debug-build abort) that it is
// applied outside every layer already present.  Skipping layers is
// fine; adding one twice or out of order is not.
#pragma once

#include <string>

#include "storage/backend.h"
#include "storage/posix_backend.h"
#include "storage/qos_backend.h"
#include "storage/resilient_backend.h"
#include "storage/throttled_backend.h"

namespace apio::storage {

class BackendStack {
 public:
  /// Fresh in-memory leaf (tests, staging, modelled PFS under a throttle).
  static BackendStack memory();

  /// POSIX file leaf.
  static BackendStack posix(const std::string& path,
                            PosixBackend::Mode mode =
                                PosixBackend::Mode::kCreateTruncate);

  /// Adopts an existing backend as the leaf (e.g. a FaultyBackend the
  /// test keeps a handle to for fault planning).
  static BackendStack wrap(BackendPtr leaf);

  /// PFS timing model layer.
  BackendStack& throttled(ThrottleParams params);

  /// Retry/backoff/breaker layer.  `clock`/`sleeper` default to wall
  /// time; tests inject a resilience::ManualClock as both.
  BackendStack& resilient(ResilienceOptions options,
                          const Clock* clock = nullptr,
                          resilience::Sleeper* sleeper = nullptr);

  /// Fair-share admission layer; always outermost.
  BackendStack& qos(sched::FairSchedulerPtr scheduler, QosOptions options = {});

  /// The finished chain.  The builder stays usable as a handle but adds
  /// no further layers below ones already applied.
  [[nodiscard]] BackendPtr build() const;

 private:
  /// Decorator order, inner to outer.  Each layer must be applied at a
  /// strictly higher stage than everything already present.
  enum class Stage : int { kLeaf = 0, kThrottled = 1, kResilient = 2, kQos = 3 };

  explicit BackendStack(BackendPtr leaf);

  void require_order(Stage next, const char* layer);

  BackendPtr backend_;
  Stage stage_ = Stage::kLeaf;
};

}  // namespace apio::storage
