#include "sim/contention.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace apio::sim {

ContentionModel::ContentionModel(double sigma, double floor)
    : sigma_(sigma), floor_(floor) {
  APIO_REQUIRE(sigma >= 0.0, "contention sigma must be >= 0");
  APIO_REQUIRE(floor > 0.0 && floor <= 1.0, "contention floor must be in (0,1]");
}

double ContentionModel::sample_run_factor(Rng& rng) const {
  if (sigma_ == 0.0) return 1.0;
  // |N(0, sigma)| pushed through exp(-x): factor 1 at zero interference,
  // decaying with the (half-normal) interference level.
  const double interference = std::fabs(rng.normal(0.0, sigma_));
  return std::clamp(std::exp(-interference), floor_, 1.0);
}

ContentionModel ContentionModel::none() { return ContentionModel(0.0, 1.0); }

}  // namespace apio::sim
