// FaultyBackend: deterministic fault injection for testing error and
// recovery paths.
//
// Wraps another backend and fails selected operations — after a
// countdown, on a recurring every-N schedule, when the operation
// touches a configured offset range, or always — so tests can drive the
// library's failure handling (async error propagation, event-set error
// collection, retry/backoff, degraded-mode fallback) without real
// hardware faults.  Injected errors are classified: plans marked
// `transient` throw TransientIoError (the resilience layer retries
// these under policy), others throw plain IoError (classified
// permanent).
//
// Heal/arm contract: heal() first resets every countdown and per-op
// counter to the plan's initial state and then publishes the healed
// flag with release ordering; the fault checks load the flag with
// acquire before touching any counter.  A thread that observes the heal
// therefore also observes the reset counters, so arm() after heal()
// starts a fresh countdown instead of replaying a stale, already
// exhausted one.  (Operations concurrent with heal()/arm() may land on
// either side of the transition; each individual operation is
// internally consistent.)
#pragma once

#include <atomic>

#include "storage/backend.h"

namespace apio::storage {

struct FaultPlan {
  /// Countdown patterns: fail every operation of the kind once this
  /// many calls have succeeded (negative = pattern off; 0 = fail from
  /// the first call).
  std::int64_t fail_writes_after = -1;
  std::int64_t fail_reads_after = -1;
  std::int64_t fail_flushes_after = -1;
  /// Legacy alias for fail_flushes_after = 0 (kept for existing plans).
  bool fail_flush = false;
  /// Recurring patterns: every n-th call of the kind fails (1-indexed
  /// call counter; 0 = pattern off).  n = 1 fails every call.
  std::uint64_t fail_every_n_writes = 0;
  std::uint64_t fail_every_n_reads = 0;
  std::uint64_t fail_every_n_flushes = 0;
  /// Offset-range pattern: reads/writes whose byte range intersects
  /// [fault_offset_begin, fault_offset_end) fail.  begin >= end
  /// disables.  Flushes carry no offset and never match.
  std::uint64_t fault_offset_begin = 0;
  std::uint64_t fault_offset_end = 0;
  /// Classification: injected errors throw TransientIoError when true
  /// (retried by resilience policies), plain IoError otherwise.
  bool transient = false;
  /// Transient-outage window: once this many faults have been injected
  /// the backend heals itself (negative = never).  Models an outage
  /// that clears while a request is being retried.
  std::int64_t heal_after_faults = -1;
};

class FaultyBackend final : public Backend {
 public:
  FaultyBackend(BackendPtr inner, FaultPlan plan);

  std::uint64_t size() const override { return inner_->size(); }
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  // write_v/read_v deliberately inherit the base per-extent fallback:
  // each extent passes through maybe_fault() individually, so countdown
  // and every-N plans can fail an aggregated transfer partway through
  // (prefix written, suffix rejected) just like a real mid-batch fault.
  void flush() override;
  void close() override { inner_->close(); }
  void truncate(std::uint64_t new_size) override { inner_->truncate(new_size); }
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

  /// Operations rejected so far (monotone across heal/arm cycles).
  std::uint64_t faults_injected() const {
    return faults_.load(std::memory_order_relaxed);
  }

  /// Heals the backend: subsequent operations succeed.  Resets the
  /// plan's countdowns and call counters before publishing (see the
  /// header comment for the memory-order contract), so a later arm()
  /// starts from a fresh plan.
  void heal();

  /// Re-arms the plan after heal(): faults inject again with the
  /// counters freshly reset by the preceding heal().
  void arm();

  /// Replaces the plan and resets counters to the new plan's initial
  /// state.  Call only while healed or before the backend is shared
  /// across threads; the next arm() publishes the new plan under the
  /// same release/acquire contract as heal().
  void set_plan(FaultPlan plan);

  /// True while heal() is in effect.
  bool healed() const { return healed_.load(std::memory_order_acquire); }

 private:
  enum class OpKind { kRead, kWrite, kFlush };

  BackendPtr inner_;
  FaultPlan plan_;
  std::atomic<std::int64_t> writes_left_;
  std::atomic<std::int64_t> reads_left_;
  std::atomic<std::int64_t> flushes_left_;
  std::atomic<std::uint64_t> write_calls_{0};
  std::atomic<std::uint64_t> read_calls_{0};
  std::atomic<std::uint64_t> flush_calls_{0};
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<bool> healed_{false};

  /// Throws the planned error when the operation should fail.
  /// `offset`/`bytes` describe the touched range (0/0 for flush).
  void maybe_fault(OpKind kind, std::uint64_t offset, std::uint64_t bytes);

  void reset_counters();
};

}  // namespace apio::storage
