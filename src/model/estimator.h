// Cost estimators of Sec. III-B: the I/O-rate regression (Eq. 3/4) and
// the weighted-average compute-time estimator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "model/history.h"
#include "model/regression.h"

namespace apio::model {

/// Fits the aggregate I/O rate as a function of (data size, ranks) and
/// answers rate / time queries for hypothetical transfers.  One
/// estimator instance covers one population (e.g. sync writes or async
/// staging copies).
class IoRateEstimator {
 public:
  explicit IoRateEstimator(FeatureForm form = FeatureForm::kLinear,
                           std::size_t min_samples = 3);

  /// Refits over `samples`; keeps the previous fit when there are fewer
  /// than min_samples points or the system is singular.
  void refit(const std::vector<IoSample>& samples);

  /// When enabled, refit() tries both linear and linear-log forms and
  /// keeps the one with the higher R² (the paper picks linear-log for
  /// the sync write trend by inspection; this automates the choice).
  void set_auto_form(bool enabled) { auto_form_ = enabled; }

  bool ready() const { return fit_.valid(); }

  /// Estimated aggregate rate (bytes/s), clamped into the observed
  /// envelope so extrapolation cannot produce nonsense (<= 0).
  double estimate_rate(std::uint64_t data_size, int ranks) const;

  /// Eq. 3: t_io = data_size / f_io_rate.
  double estimate_seconds(std::uint64_t data_size, int ranks) const;

  double r_squared() const { return fit_.r_squared; }
  FeatureForm form() const { return form_; }
  const LinearFit& fit() const { return fit_; }
  std::size_t samples_fitted() const { return fit_.n; }

 private:
  FeatureForm form_;
  std::size_t min_samples_;
  bool auto_form_ = false;
  LinearFit fit_;
  double min_rate_seen_ = 0.0;
  double max_rate_seen_ = 0.0;

  static std::optional<LinearFit> try_fit(FeatureForm form,
                                          const std::vector<IoSample>& samples);
};

/// Compute-phase duration estimator: a weighted average over previous
/// iterations (Sec. III-B: "we use a weighted average over the
/// measurements taken in previous iterations").
class ComputeTimeEstimator {
 public:
  explicit ComputeTimeEstimator(double ewma_alpha = 0.5) : ewma_(ewma_alpha) {}

  void add_observation(double seconds) { ewma_.add(seconds); }
  bool ready() const { return !ewma_.empty(); }
  double estimate_seconds() const;

 private:
  Ewma ewma_;
};

}  // namespace apio::model
