// EventSet: the H5ES-style grouping of asynchronous requests.
//
// The paper's applications issue many H5Dwrite calls per I/O phase and
// wait on them collectively; HDF5 exposes that as an event set
// (H5EScreate / H5ESwait / H5ESget_err_info).  apio's EventSet wraps a
// batch of RequestPtr with the same semantics: insert as you issue,
// wait once per phase, then inspect how many operations failed and why.
#pragma once

#include <exception>
#include <string>
#include <vector>

#include "common/debug/lock_rank.h"
#include "vol/request.h"

namespace apio::vol {

/// One collected failure: the error plus the failed request's identity,
/// mirroring H5ESget_err_info's per-op error records.
struct EventError {
  RequestInfo info;
  std::string message;
  /// Taxonomy name from apio::error_category ("transient-io", "io", ...).
  std::string category;
  int attempts = 1;
  bool deadline_exhausted = false;

  /// "write /tiles/a [0..16) @+0 (16 B): injected write fault
  ///  [category=io, attempts=3]" style line.
  std::string to_string() const;
};

class EventSet {
 public:
  /// Adds a request to the set.  Thread-safe.
  void insert(RequestPtr request);

  /// Requests currently tracked (completed ones included until
  /// wait()/clear()).
  [[nodiscard]] std::size_t size() const;

  /// True when every tracked request has completed (errors count as
  /// completed).
  [[nodiscard]] bool test() const;

  /// Blocks until every tracked request completes.  Unlike Request::
  /// wait(), errors do NOT propagate as exceptions here; they are
  /// collected for inspection (H5ESwait semantics).  Completed requests
  /// are dropped from the set; failures remain queryable until clear().
  void wait();

  /// Number of failed operations observed by past wait() calls.
  [[nodiscard]] std::size_t num_errors() const;

  /// The collected failures with full request identity, oldest first.
  [[nodiscard]] std::vector<EventError> errors() const;

  /// Human-readable lines of the collected failures, oldest first; each
  /// contains the failed request's identity, the original error message
  /// and its category.
  [[nodiscard]] std::vector<std::string> error_messages() const;

  /// Rethrows the first collected failure, if any (convenience for
  /// callers who do want exception propagation).
  void rethrow_first_error() const;

  /// Drops tracked requests and collected errors.
  void clear();

 private:
  mutable debug::RankedMutex<debug::LockRank::kVolEventSet> mutex_;
  std::vector<RequestPtr> pending_;
  std::vector<EventError> errors_;
  std::vector<std::exception_ptr> raw_errors_;
};

}  // namespace apio::vol
