// QosBackend: fair-share admission decorator.
//
// Wraps another backend and routes every data operation through a
// shared sched::FairScheduler before it reaches the inner store.  The
// scheduler serialises (or bounds) concurrent access to the modelled
// channel and orders waiting requests by weighted max-min fairness —
// see sched/fair_scheduler.h for the math.
//
// Tenant attribution comes from the calling thread's
// sched::SubmissionContext (bound by vol::AsyncConnector around its
// drain path, or by ScopedSubmission directly in application code);
// unbound threads are charged to QosOptions::default_tenant.  Flushes
// ride the priority lane by default — they are the latency-sensitive
// barrier operations a bulk tenant must not starve.
//
// A vectored write_v/read_v is admitted as ONE request for the total
// byte count, mirroring ThrottledBackend's one-modelled-request-per-
// call accounting: aggregation buys one queue pass, not per-extent
// admission.
//
// Stacking order: QosBackend goes OUTERMOST (qos(resilient(throttled(
// leaf)))) so retried attempts re-enter admission and cannot hog the
// channel while backing off — storage::BackendStack enforces this.
#pragma once

#include <memory>

#include "sched/fair_scheduler.h"
#include "storage/backend.h"

namespace apio::storage {

struct QosOptions {
  /// Tenant charged when the calling thread has no submission binding.
  sched::TenantId default_tenant = sched::kDefaultTenant;
  /// Lane for flush(); metadata barriers default to priority.
  sched::Lane flush_lane = sched::Lane::kPriority;
};

class QosBackend final : public Backend {
 public:
  QosBackend(BackendPtr inner, sched::FairSchedulerPtr scheduler,
             QosOptions options = {});

  std::uint64_t size() const override { return inner_->size(); }
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  [[nodiscard]] std::uint64_t write_v(
      std::span<const WriteExtent> extents) override;
  [[nodiscard]] std::uint64_t read_v(
      std::span<const ReadExtent> extents) override;
  void flush() override;
  // close() is a lifecycle announcement, not a transfer: it takes no
  // admission slot (any cache drain it triggers arrives as ordinary
  // write_v/flush traffic from the outer tier and is admitted there).
  void close() override { inner_->close(); }
  /// Rare metadata operation; passes through unadmitted (it must be
  /// externally serialised anyway, per the Backend contract).
  void truncate(std::uint64_t new_size) override { inner_->truncate(new_size); }
  std::string name() const override { return "qos(" + inner_->name() + ")"; }

  const sched::FairSchedulerPtr& scheduler() const { return scheduler_; }
  const QosOptions& options() const { return options_; }

 private:
  sched::IoRequest request_for(obs::IoOp op, std::uint64_t bytes) const;

  BackendPtr inner_;
  sched::FairSchedulerPtr scheduler_;
  QosOptions options_;
};

}  // namespace apio::storage
