#include "common/error.h"

#include <sstream>

namespace apio::detail {

void throw_check_failure(const char* expr, const std::string& message,
                         std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " [" << loc.function_name()
     << "] check failed: (" << expr << ") — " << message;
  throw InvalidArgumentError(os.str());
}

}  // namespace apio::detail
