#include "vol/native_connector.h"

#include "common/error.h"

namespace apio::vol {
namespace {

RequestPtr completed_request() {
  return std::make_shared<Request>(tasking::Eventual::make_ready());
}

}  // namespace

NativeConnector::NativeConnector(h5::FilePtr file, const Clock* clock)
    : file_(std::move(file)), clock_(clock != nullptr ? clock : &wall_clock_) {
  APIO_REQUIRE(file_ != nullptr, "NativeConnector requires an open file");
}

RequestPtr NativeConnector::dataset_write(h5::Dataset ds,
                                          const h5::Selection& selection,
                                          std::span<const std::byte> data) {
  const double t0 = clock_->now();
  ds.write_raw(selection, data);
  const double dt = clock_->now() - t0;
  IoRecord record;
  record.op = IoOp::kWrite;
  record.bytes = data.size();
  record.ranks = reported_ranks();
  record.blocking_seconds = dt;
  record.completion_seconds = dt;
  record.async = false;
  observe(record);
  return completed_request();
}

RequestPtr NativeConnector::dataset_read(h5::Dataset ds,
                                         const h5::Selection& selection,
                                         std::span<std::byte> out) {
  const double t0 = clock_->now();
  ds.read_raw(selection, out);
  const double dt = clock_->now() - t0;
  IoRecord record;
  record.op = IoOp::kRead;
  record.bytes = out.size();
  record.ranks = reported_ranks();
  record.blocking_seconds = dt;
  record.completion_seconds = dt;
  record.async = false;
  observe(record);
  return completed_request();
}

void NativeConnector::prefetch(h5::Dataset, const h5::Selection&) {
  // Synchronous mode has no background machinery to prefetch with.
}

RequestPtr NativeConnector::flush() {
  file_->flush();
  return completed_request();
}

void NativeConnector::close() {
  if (file_->is_open()) file_->close();
}

}  // namespace apio::vol
