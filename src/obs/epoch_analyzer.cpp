#include "obs/epoch_analyzer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace apio::obs {

namespace {

// Process-wide epoch-marker sink list.  Marker emission happens at
// epoch granularity (milliseconds to minutes apart), so one mutex plus
// an atomic emptiness probe mirrors CompositeObserver's design.
std::mutex g_sinks_mutex;
std::vector<EpochSink*> g_sinks;
std::atomic<std::size_t> g_sink_count{0};

int clamp_rank(int rank) { return rank < 0 ? 0 : rank; }

}  // namespace

const char* to_string(EpochEvent::Kind kind) {
  switch (kind) {
    case EpochEvent::Kind::kBegin: return "begin";
    case EpochEvent::Kind::kComputeStart: return "compute_start";
    case EpochEvent::Kind::kComputeDone: return "compute_done";
    case EpochEvent::Kind::kEnd: return "end";
  }
  return "?";
}

void add_epoch_sink(EpochSink* sink) {
  if (sink == nullptr) return;
  std::lock_guard lock(g_sinks_mutex);
  if (std::find(g_sinks.begin(), g_sinks.end(), sink) == g_sinks.end()) {
    g_sinks.push_back(sink);
  }
  g_sink_count.store(g_sinks.size(), std::memory_order_relaxed);
}

void remove_epoch_sink(EpochSink* sink) {
  std::lock_guard lock(g_sinks_mutex);
  g_sinks.erase(std::remove(g_sinks.begin(), g_sinks.end(), sink),
                g_sinks.end());
  g_sink_count.store(g_sinks.size(), std::memory_order_relaxed);
}

bool epoch_sinks_active() {
  return g_sink_count.load(std::memory_order_relaxed) > 0;
}

void emit_epoch_event(const EpochEvent& event) {
  // Sinks' on_epoch_event take only their own leaf locks and never
  // re-enter the sink list, so holding the guard across the fan-out is
  // cycle-free (same argument as CompositeObserver::on_io).
  std::lock_guard lock(g_sinks_mutex);
  for (EpochSink* sink : g_sinks) sink->on_epoch_event(event);
}

// ---------------------------------------------------------------------------
// EpochScope

EpochScope::EpochScope(std::int64_t epoch, int rank)
    : active_(epoch_sinks_active()),
      epoch_(epoch),
      rank_(clamp_rank(rank < 0 ? thread_rank() : rank)) {
  if (!active_) return;
  emit_epoch_event({EpochEvent::Kind::kBegin, epoch_, rank_, steady_seconds()});
}

EpochScope::~EpochScope() { end(); }

void EpochScope::compute_start() {
  if (!active_) return;
  emit_epoch_event(
      {EpochEvent::Kind::kComputeStart, epoch_, rank_, steady_seconds()});
}

void EpochScope::compute_done() {
  if (!active_) return;
  emit_epoch_event(
      {EpochEvent::Kind::kComputeDone, epoch_, rank_, steady_seconds()});
}

void EpochScope::end() {
  if (!active_) return;
  active_ = false;
  emit_epoch_event({EpochEvent::Kind::kEnd, epoch_, rank_, steady_seconds()});
}

// ---------------------------------------------------------------------------
// EpochAnalyzer

/// Per-(epoch, rank) accumulation state.  Marker timestamps use -1 as
/// "never seen"; steady-clock values are always >= 0.
struct EpochAnalyzer::RankEpoch {
  double begin = -1.0;
  double compute_start = -1.0;
  double compute_done = -1.0;
  double end = -1.0;
  bool ended = false;
  double first_issue = -1.0;
  double last_activity = 0.0;  ///< provisional end for unterminated epochs
  double t_transact = 0.0;
  double t_io_sync = 0.0;
  /// Async background-activity windows [issue + blocking, issue +
  /// completion]; their union length is the async t_io estimate.
  std::vector<std::pair<double, double>> bg_windows;
  int async_ops = 0;
  int cache_hits = 0;
  std::uint64_t bytes = 0;
  std::vector<EpochIoSpan> io;
};

/// Resolves one rank-epoch into EpochRankStats.  The compute phase is
/// [compute_start | begin, compute_done | first I/O issue | end]; an
/// unterminated epoch borrows its latest activity as a provisional end.
EpochRankStats EpochAnalyzer::resolve(int rank, const RankEpoch& re) {
  EpochRankStats stats;
  stats.rank = rank;
  stats.begin_seconds = re.begin >= 0.0 ? re.begin : re.last_activity;
  stats.ended = re.ended;
  stats.end_seconds =
      re.ended ? re.end : std::max(re.last_activity, stats.begin_seconds);

  const double cs = re.compute_start >= 0.0 ? re.compute_start : stats.begin_seconds;
  double cd = re.compute_done;
  if (cd < 0.0) cd = re.first_issue;
  if (cd < 0.0) cd = stats.end_seconds;
  stats.compute_start_seconds = cs;
  stats.compute_done_seconds = std::max(cs, cd);
  stats.t_comp = std::max(0.0, cd - cs);

  // Async t_io: union length of the background-activity windows.  The
  // per-record (completion - blocking) duration includes time spent
  // queued behind sibling operations of the same epoch on the serialized
  // background stream, so summing it would multiply-count service time;
  // the interval union counts each background busy second once.
  double t_io_async = 0.0;
  if (!re.bg_windows.empty()) {
    auto windows = re.bg_windows;
    std::sort(windows.begin(), windows.end());
    double lo = windows.front().first;
    double hi = windows.front().second;
    for (const auto& [start, stop] : windows) {
      if (start > hi) {
        t_io_async += hi - lo;
        lo = start;
        hi = stop;
      } else {
        hi = std::max(hi, stop);
      }
    }
    t_io_async += hi - lo;
  }
  stats.t_io = re.t_io_sync + t_io_async;
  stats.t_transact = re.t_transact;
  stats.ops = static_cast<int>(re.io.size());
  stats.async_ops = re.async_ops;
  stats.cache_hits = re.cache_hits;
  stats.bytes = re.bytes;
  stats.io = re.io;
  return stats;
}

namespace {

model::EpochCosts rank_costs(const EpochRankStats& stats) {
  return {stats.t_comp, stats.t_io, stats.t_transact};
}

}  // namespace

EpochAnalyzer::EpochAnalyzer(Options options) : options_(options) {}

EpochAnalyzer::~EpochAnalyzer() { detach(); }

void EpochAnalyzer::attach() {
  {
    std::lock_guard lock(mutex_);
    if (attached_) return;
    attached_ = true;
  }
  add_epoch_sink(this);
}

void EpochAnalyzer::detach() {
  {
    std::lock_guard lock(mutex_);
    if (!attached_) return;
    attached_ = false;
  }
  remove_epoch_sink(this);
}

EpochAnalyzer::RankEpoch* EpochAnalyzer::find_rank_epoch_locked(
    int rank, double issue_time) {
  // The common case is the rank's currently open epoch; fall back to a
  // window scan so records completing after scope end still attribute.
  RankEpoch* open = nullptr;
  for (auto& [key, re] : epochs_) {
    if (key.second != rank || re.begin < 0.0 || issue_time < re.begin) continue;
    if (re.ended) {
      if (issue_time < re.end) return &re;
    } else {
      // Open epoch: the latest one whose begin precedes the issue.
      if (open == nullptr || re.begin > open->begin) open = &re;
    }
  }
  return open;
}

void EpochAnalyzer::on_io(const IoRecord& record) {
  std::lock_guard lock(mutex_);
  RankEpoch* re = find_rank_epoch_locked(clamp_rank(record.origin_rank),
                                         record.issue_time);
  if (re == nullptr) {
    ++orphans_;
    return;
  }
  EpochIoSpan span;
  span.op = record.op;
  span.issue_seconds = record.issue_time;
  span.blocking_seconds = record.blocking_seconds;
  span.completion_seconds = record.completion_seconds;
  span.bytes = record.bytes;
  span.async = record.async;
  span.cache_hit = record.cache_hit;
  re->io.push_back(span);

  if (re->first_issue < 0.0 || record.issue_time < re->first_issue) {
    re->first_issue = record.issue_time;
  }
  re->last_activity =
      std::max(re->last_activity, record.issue_time + record.completion_seconds);
  re->bytes += record.bytes;
  if (record.cache_hit) ++re->cache_hits;
  if (record.async) {
    ++re->async_ops;
    // Async split: the caller-blocking part is the staging copy
    // (transactional overhead); the rest of the completion window is
    // background-transfer activity, i.e. the epoch model's t_io.
    re->t_transact += record.blocking_seconds;
    if (record.completion_seconds > record.blocking_seconds) {
      re->bg_windows.emplace_back(
          record.issue_time + record.blocking_seconds,
          record.issue_time + record.completion_seconds);
    }
  } else {
    // Sync I/O blocks for the full transfer.
    re->t_io_sync += record.blocking_seconds;
  }
}

void EpochAnalyzer::on_epoch_event(const EpochEvent& event) {
  std::lock_guard lock(mutex_);
  RankEpoch& re = epochs_[{event.epoch, clamp_rank(event.rank)}];
  re.last_activity = std::max(re.last_activity, event.time_seconds);
  switch (event.kind) {
    case EpochEvent::Kind::kBegin:
      re.begin = event.time_seconds;
      break;
    case EpochEvent::Kind::kComputeStart:
      re.compute_start = event.time_seconds;
      break;
    case EpochEvent::Kind::kComputeDone:
      re.compute_done = event.time_seconds;
      break;
    case EpochEvent::Kind::kEnd:
      re.end = event.time_seconds;
      re.ended = true;
      finalize_rank_epoch_locked(event);
      break;
  }
}

void EpochAnalyzer::finalize_rank_epoch_locked(const EpochEvent& event) {
  // Live drift check at scope end: compare this rank's predicted and
  // observed epoch duration with whatever records have arrived so far.
  // (Async completions landing after the scope closes are still folded
  // into report(); the live check trades completeness for immediacy.)
  if (options_.drift_alert_threshold <= 0.0) return;
  const auto it = epochs_.find({event.epoch, clamp_rank(event.rank)});
  if (it == epochs_.end() || it->second.io.empty()) return;
  const EpochRankStats stats = resolve(event.rank, it->second);
  const double observed = stats.observed_seconds();
  if (observed <= 0.0) return;
  const double predicted = model::epoch_seconds(
      rank_costs(stats), it->second.async_ops > 0 ? model::IoMode::kAsync
                                                  : model::IoMode::kSync);
  const double error = std::abs(predicted - observed) / observed;
  if (error <= options_.drift_alert_threshold) return;
  ++alerts_;
  if (enabled()) {
    static auto& counter = Registry::instance().counter("obs.epoch.drift_alerts");
    counter.increment();
  }
}

double EpochStats::relative_error() const {
  if (observed_seconds <= 0.0) return 0.0;
  return std::abs(predicted_seconds - observed_seconds) / observed_seconds;
}

EpochReport EpochAnalyzer::report() const {
  std::lock_guard lock(mutex_);
  EpochReport report;
  report.orphan_records = orphans_;
  report.drift_alerts = alerts_;

  // Group per-rank reconstructions by epoch (the map is ordered by
  // (epoch, rank), so each group is contiguous).
  for (auto it = epochs_.begin(); it != epochs_.end();) {
    const std::int64_t epoch = it->first.first;
    EpochStats stats;
    stats.epoch = epoch;
    bool any_async = false;
    double min_begin = 0.0;
    double max_end = 0.0;
    for (; it != epochs_.end() && it->first.first == epoch; ++it) {
      EpochRankStats rank_stats = resolve(it->first.second, it->second);
      any_async = any_async || it->second.async_ops > 0;
      stats.unterminated = stats.unterminated || !rank_stats.ended;
      // Eq. 3: the slowest rank determines each phase's duration.
      stats.costs.t_comp = std::max(stats.costs.t_comp, rank_stats.t_comp);
      stats.costs.t_io = std::max(stats.costs.t_io, rank_stats.t_io);
      stats.costs.t_transact =
          std::max(stats.costs.t_transact, rank_stats.t_transact);
      if (stats.ranks == 0) {
        min_begin = rank_stats.begin_seconds;
        max_end = rank_stats.end_seconds;
      } else {
        min_begin = std::min(min_begin, rank_stats.begin_seconds);
        max_end = std::max(max_end, rank_stats.end_seconds);
      }
      ++stats.ranks;
      stats.ops += rank_stats.ops;
      stats.bytes += rank_stats.bytes;
      stats.per_rank.push_back(std::move(rank_stats));
    }
    stats.mode = any_async ? model::IoMode::kAsync : model::IoMode::kSync;
    stats.observed_seconds = std::max(0.0, max_end - min_begin);
    stats.predicted_seconds = model::epoch_seconds(stats.costs, stats.mode);
    stats.scenario = model::classify_overlap(stats.costs);
    if (any_async && stats.costs.t_io > 0.0) {
      const double exposed =
          std::max(0.0, stats.observed_seconds - stats.costs.t_comp -
                            stats.costs.t_transact);
      const double hidden =
          std::clamp(stats.costs.t_io - exposed, 0.0, stats.costs.t_io);
      stats.overlap_efficiency = hidden / stats.costs.t_io;
    }
    report.epochs.push_back(std::move(stats));
  }

  // Drift aggregates over terminated epochs (Eq. 1 cumulative view).
  int counted = 0;
  for (const auto& e : report.epochs) {
    if (e.unterminated) continue;
    const double err = e.relative_error();
    report.mean_relative_error += err;
    if (err >= report.worst_relative_error) {
      report.worst_relative_error = err;
      report.worst_epoch = e.epoch;
    }
    report.observed_app_seconds += e.observed_seconds;
    report.predicted_app_seconds += e.predicted_seconds;
    ++counted;
  }
  if (counted > 0) report.mean_relative_error /= counted;
  if (report.observed_app_seconds > 0.0) {
    report.cumulative_relative_error =
        std::abs(report.predicted_app_seconds - report.observed_app_seconds) /
        report.observed_app_seconds;
  }
  return report;
}

std::size_t EpochAnalyzer::drift_alerts() const {
  std::lock_guard lock(mutex_);
  return alerts_;
}

void EpochAnalyzer::reset() {
  std::lock_guard lock(mutex_);
  epochs_.clear();
  orphans_ = 0;
  alerts_ = 0;
}

// ---------------------------------------------------------------------------
// EpochReport rendering

std::string EpochReport::table() const {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof line,
                "%6s %5s %5s %4s %10s | %9s %9s %10s | %9s %9s %6s | %-8s %7s\n",
                "epoch", "ranks", "mode", "ops", "bytes", "t_comp", "t_io",
                "t_transact", "observed", "predicted", "err%", "scenario",
                "overlap");
  os << line;
  for (const auto& e : epochs) {
    std::snprintf(
        line, sizeof line,
        "%6lld %5d %5s %4d %10s | %9.4f %9.4f %10.4f | %9.4f %9.4f %5.1f%% | "
        "%-8s %6.1f%%%s\n",
        static_cast<long long>(e.epoch), e.ranks,
        to_string(e.mode).c_str(), e.ops, format_bytes(e.bytes).c_str(),
        e.costs.t_comp, e.costs.t_io, e.costs.t_transact, e.observed_seconds,
        e.predicted_seconds, 100.0 * e.relative_error(),
        to_string(e.scenario).c_str(), 100.0 * e.overlap_efficiency,
        e.unterminated ? "  [unterminated]" : "");
    os << line;
  }
  return os.str();
}

std::string EpochReport::summary() const {
  std::ostringstream os;
  int terminated = 0;
  for (const auto& e : epochs) terminated += e.unterminated ? 0 : 1;
  os << "epoch drift summary: " << epochs.size() << " epochs ("
     << epochs.size() - static_cast<std::size_t>(terminated)
     << " unterminated), " << orphan_records << " orphan records, "
     << drift_alerts << " live drift alerts\n";
  if (terminated > 0) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "  per-epoch relative error: mean %.1f%%, worst %.1f%% "
                  "(epoch %lld)\n",
                  100.0 * mean_relative_error, 100.0 * worst_relative_error,
                  static_cast<long long>(worst_epoch));
    os << line;
    std::snprintf(line, sizeof line,
                  "  cumulative Eq. 1 application time: observed %.4f s, "
                  "predicted %.4f s (error %.1f%%)\n",
                  observed_app_seconds, predicted_app_seconds,
                  100.0 * cumulative_relative_error);
    os << line;
  }
  return os.str();
}

std::string EpochReport::to_chrome_json() const {
  // One lane pair per rank: even tids carry the epoch/compute phase
  // spans, odd tids the attributed I/O operations.  Timestamps rebase
  // against the earliest epoch begin so traces start near zero.
  double t0 = 0.0;
  bool have_t0 = false;
  for (const auto& e : epochs) {
    for (const auto& r : e.per_rank) {
      if (!have_t0 || r.begin_seconds < t0) {
        t0 = r.begin_seconds;
        have_t0 = true;
      }
    }
  }

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const char* name, int tid, double start, double dur,
                  std::int64_t epoch, std::uint64_t bytes) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << name << "\",\"cat\":\"epoch\",\"ph\":\"X\","
       << "\"pid\":0,\"tid\":" << tid << ",\"ts\":" << (start - t0) * 1e6
       << ",\"dur\":" << dur * 1e6 << ",\"args\":{\"epoch\":" << epoch
       << ",\"bytes\":" << bytes << "}}";
  };

  std::map<int, bool> ranks_seen;
  for (const auto& e : epochs) {
    for (const auto& r : e.per_rank) {
      ranks_seen.emplace(r.rank, true);
      const std::string name = "epoch#" + std::to_string(e.epoch);
      emit(name.c_str(), r.rank * 2, r.begin_seconds,
           r.observed_seconds(), e.epoch, r.bytes);
      if (r.t_comp > 0.0) {
        emit("compute", r.rank * 2, r.compute_start_seconds, r.t_comp, e.epoch,
             0);
      }
      for (const auto& span : r.io) {
        emit(to_string(span.op), r.rank * 2 + 1, span.issue_seconds,
             span.async ? span.completion_seconds : span.blocking_seconds,
             e.epoch, span.bytes);
      }
    }
  }
  for (const auto& [rank, _] : ranks_seen) {
    os << (first ? "" : ",");
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << rank * 2 << ",\"args\":{\"name\":\"rank " << rank << " epochs\"}},"
       << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << rank * 2 + 1 << ",\"args\":{\"name\":\"rank " << rank << " io\"}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace apio::obs
