// ResilientBackend: retry/backoff decorator for flaky storage.
//
// Wraps another backend and re-executes failed reads/writes/flushes
// under a resilience::RetryPolicy, with an optional per-backend circuit
// breaker that sheds load during a sustained outage.  Truncate is a
// rare metadata operation and passes through unretried.
//
// Retry cost is recorded through the shared io.* resilience metrics
// (io.retries, io.retry_backoff_seconds, io.deadline_exhausted,
// io.breaker_*) plus a layer-local storage.resilient.retries counter,
// so profiles attribute retries spent below the VOL separately from
// retries spent by the async connector itself.
#pragma once

#include <atomic>
#include <memory>

#include "common/clock.h"
#include "resilience/circuit_breaker.h"
#include "resilience/retry.h"
#include "storage/backend.h"

namespace apio::storage {

struct ResilienceOptions {
  resilience::RetryPolicy retry;
  resilience::BreakerOptions breaker;
  /// When false, no breaker is constructed and retries run unguarded.
  bool enable_breaker = true;
};

class ResilientBackend final : public Backend {
 public:
  /// `clock` defaults to the wall clock and `sleeper` to the blocking
  /// wall sleeper; tests inject a resilience::ManualClock as both so
  /// backoff never wall-sleeps.
  ResilientBackend(BackendPtr inner, ResilienceOptions options,
                   const Clock* clock = nullptr,
                   resilience::Sleeper* sleeper = nullptr);

  std::uint64_t size() const override { return inner_->size(); }
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  // write_v/read_v deliberately inherit the base per-extent fallback so
  // each extent is retried under the policy independently — a transient
  // fault mid-batch re-runs only the failed extent, not the whole list.
  void flush() override;
  void close() override { inner_->close(); }
  void truncate(std::uint64_t new_size) override { inner_->truncate(new_size); }
  std::string name() const override {
    return "resilient(" + inner_->name() + ")";
  }

  /// Re-executed attempts across all operations so far.
  std::uint64_t retries() const {
    return retries_.load(std::memory_order_relaxed);
  }

  /// Null when the breaker is disabled.
  resilience::CircuitBreaker* breaker() const { return breaker_.get(); }

  const ResilienceOptions& options() const { return options_; }

 private:
  template <typename Fn>
  void run(Fn&& fn);

  BackendPtr inner_;
  ResilienceOptions options_;
  const Clock* clock_;
  resilience::Sleeper* sleeper_;
  std::unique_ptr<resilience::CircuitBreaker> breaker_;
  std::atomic<std::uint64_t> retries_{0};
};

}  // namespace apio::storage
