// Tests for object visiting and container repacking.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "h5/repack.h"
#include "storage/memory_backend.h"

namespace apio::h5 {
namespace {

FilePtr mem_file() {
  return File::create(std::make_shared<storage::MemoryBackend>());
}

/// Builds a container with groups, contiguous + chunked(+filtered)
/// datasets and attributes at several levels.
FilePtr build_rich_container() {
  auto file = mem_file();
  file->root().set_attribute<std::int32_t>("version", 3);

  auto sim = file->root().create_group("sim");
  sim.set_attribute<double>("dt", 0.5);
  auto fields = sim.create_group("fields");

  auto rho = fields.create_dataset("rho", Datatype::kFloat64, {16, 16});
  std::vector<double> rho_values(256);
  std::iota(rho_values.begin(), rho_values.end(), 0.0);
  rho.write<double>(Selection::all(), rho_values);
  rho.set_attribute<std::int64_t>("step", 42);

  auto mask = fields.create_dataset("mask", Datatype::kUInt8, {4096},
                                    DatasetCreateProps::chunked({512}, FilterId::kRle));
  std::vector<std::uint8_t> mask_values(4096, 0);
  for (std::size_t i = 0; i < mask_values.size(); i += 100) mask_values[i] = 1;
  mask.write<std::uint8_t>(Selection::all(), mask_values);

  file->root().create_dataset("scalars", Datatype::kInt32, {3});
  return file;
}

TEST(VisitTest, VisitsEveryObjectParentFirst) {
  auto file = build_rich_container();
  std::vector<std::string> group_paths;
  std::vector<std::string> dataset_paths;
  ObjectVisitor visitor;
  visitor.on_group = [&](const std::string& path, Group) { group_paths.push_back(path); };
  visitor.on_dataset = [&](const std::string& path, Dataset) {
    dataset_paths.push_back(path);
  };
  visit_objects(file, visitor);

  EXPECT_EQ(group_paths, (std::vector<std::string>{"", "sim", "sim/fields"}));
  ASSERT_EQ(dataset_paths.size(), 3u);
  EXPECT_EQ(dataset_paths[0], "scalars");
  EXPECT_EQ(dataset_paths[1], "sim/fields/mask");
  EXPECT_EQ(dataset_paths[2], "sim/fields/rho");
}

TEST(VisitTest, NullCallbacksAreFine) {
  auto file = build_rich_container();
  EXPECT_NO_THROW(visit_objects(file, ObjectVisitor{}));
}

TEST(RepackTest, PreservesEverything) {
  auto source = build_rich_container();
  auto dest = mem_file();
  const auto result = repack(source, dest);

  EXPECT_EQ(result.groups_copied, 2u);
  EXPECT_EQ(result.datasets_copied, 3u);
  EXPECT_EQ(result.attributes_copied, 3u);

  EXPECT_EQ(dest->root().attribute<std::int32_t>("version"), 3);
  auto fields = dest->root().open_group("sim").open_group("fields");
  auto rho = fields.open_dataset("rho");
  EXPECT_EQ(rho.dtype(), Datatype::kFloat64);
  EXPECT_EQ(rho.dims(), (Dims{16, 16}));
  EXPECT_EQ(rho.attribute<std::int64_t>("step"), 42);
  std::vector<double> expected(256);
  std::iota(expected.begin(), expected.end(), 0.0);
  EXPECT_EQ(rho.read_vector<double>(Selection::all()), expected);

  auto mask = fields.open_dataset("mask");
  EXPECT_EQ(mask.layout(), Layout::kChunked);
  EXPECT_EQ(mask.filter(), FilterId::kRle);
  auto mask_values = mask.read_vector<std::uint8_t>(Selection::all());
  EXPECT_EQ(mask_values[0], 1);
  EXPECT_EQ(mask_values[1], 0);
  EXPECT_EQ(mask_values[100], 1);
}

TEST(RepackTest, CompactsDeadSpaceFromDeletedDatasets) {
  // Unlinked datasets leave their whole raw-data extents stranded (the
  // allocator never reclaims); repack must drop them.
  auto backend = std::make_shared<storage::MemoryBackend>();
  auto source = File::create(backend);
  Rng rng(1);
  std::vector<std::uint8_t> payload(32 * 1024);
  for (int i = 0; i < 10; ++i) {
    auto ds = source->root().create_dataset("tmp" + std::to_string(i),
                                            Datatype::kUInt8, {payload.size()});
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    ds.write<std::uint8_t>(Selection::all(), payload);
    source->flush();  // metadata shadows accumulate too
  }
  // Keep only the last dataset.
  for (int i = 0; i < 9; ++i) source->root().remove("tmp" + std::to_string(i));
  source->flush();

  auto dest = mem_file();
  const auto result = repack(source, dest);
  EXPECT_GT(result.source_size, 10u * payload.size());
  EXPECT_LT(result.packed_size, result.source_size / 5);
  EXPECT_EQ(dest->root().open_dataset("tmp9").read_vector<std::uint8_t>(Selection::all()),
            payload);
}

TEST(RepackTest, FilteredChunkRelocationsCompact) {
  // Alternating compressible/incompressible rewrites relocate the chunk
  // (encoded size outgrows the allocated extent); the stranded extents
  // are recovered by repack.
  auto backend = std::make_shared<storage::MemoryBackend>();
  auto source = File::create(backend);
  auto ds = source->root().create_dataset(
      "d", Datatype::kUInt8, {64 * 1024},
      DatasetCreateProps::chunked({64 * 1024}, FilterId::kLz));
  Rng rng(1);
  std::vector<std::uint8_t> last;
  for (int round = 0; round < 6; ++round) {
    std::vector<std::uint8_t> payload(64 * 1024);
    if (round % 2 == 0) {
      std::fill(payload.begin(), payload.end(), static_cast<std::uint8_t>(round));
    } else {
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
    }
    ds.write<std::uint8_t>(Selection::all(), payload);
    last = payload;
  }
  source->flush();

  auto dest = mem_file();
  const auto result = repack(source, dest);
  EXPECT_LT(result.packed_size, result.source_size);
  EXPECT_EQ(dest->root().open_dataset("d").read_vector<std::uint8_t>(Selection::all()),
            last);
}

TEST(RepackTest, RefilterCompressesUncompressedContainer) {
  auto source = mem_file();
  auto ds = source->root().create_dataset("zeros", Datatype::kUInt8, {256 * 1024},
                                          DatasetCreateProps::chunked({64 * 1024}));
  std::vector<std::uint8_t> zeros(256 * 1024, 0);
  ds.write<std::uint8_t>(Selection::all(), zeros);
  source->flush();

  auto dest = mem_file();
  RepackOptions options;
  options.refilter = FilterId::kRle;
  const auto result = repack(source, dest, options);
  EXPECT_LT(result.packed_size, result.source_size / 20);
  auto packed = dest->root().open_dataset("zeros");
  EXPECT_EQ(packed.filter(), FilterId::kRle);
  EXPECT_EQ(packed.read_vector<std::uint8_t>(Selection::all()), zeros);
}

TEST(RepackTest, RefilterDoesNotTouchContiguousDatasets) {
  auto source = build_rich_container();
  auto dest = mem_file();
  RepackOptions options;
  options.refilter = FilterId::kLz;
  repack(source, dest, options);
  EXPECT_EQ(dest->dataset_at("sim/fields/rho").layout(), Layout::kContiguous);
  EXPECT_EQ(dest->dataset_at("sim/fields/mask").filter(), FilterId::kLz);
}

TEST(RepackTest, SmallCopyBufferStillCorrect) {
  auto source = build_rich_container();
  auto dest = mem_file();
  RepackOptions options;
  options.copy_buffer_bytes = 64;  // forces many slab batches
  repack(source, dest, options);
  std::vector<double> expected(256);
  std::iota(expected.begin(), expected.end(), 0.0);
  EXPECT_EQ(dest->dataset_at("sim/fields/rho").read_vector<double>(Selection::all()),
            expected);
}

TEST(RepackTest, RoundTripsThroughPersistence) {
  auto source = build_rich_container();
  auto dest_backend = std::make_shared<storage::MemoryBackend>();
  {
    auto dest = File::create(dest_backend);
    repack(source, dest);
    dest->close();
  }
  auto reopened = File::open(dest_backend);
  EXPECT_TRUE(reopened->root().has_group("sim"));
  EXPECT_EQ(reopened->dataset_at("sim/fields/rho").npoints(), 256u);
}

TEST(RepackTest, ValidatesInputs) {
  auto file = mem_file();
  EXPECT_THROW(repack(nullptr, file), InvalidArgumentError);
  EXPECT_THROW(repack(file, nullptr), InvalidArgumentError);
  RepackOptions options;
  options.copy_buffer_bytes = 0;
  EXPECT_THROW(repack(file, mem_file(), options), InvalidArgumentError);
}

// Attribute enumeration API (added for repack) has its own contract.
TEST(AttributeEnumerationTest, NamesAndInfo) {
  auto file = mem_file();
  auto g = file->root().create_group("g");
  g.set_attribute<std::int32_t>("a", 1);
  g.set_attribute<double>("b", 2.5);
  EXPECT_EQ(g.attribute_names(), (std::vector<std::string>{"a", "b"}));
  const auto info = g.attribute_info("b");
  EXPECT_EQ(info.dtype, Datatype::kFloat64);
  EXPECT_TRUE(info.dims.empty());
  EXPECT_EQ(info.value.size(), sizeof(double));
  EXPECT_THROW(g.attribute_info("missing"), NotFoundError);
}

}  // namespace
}  // namespace apio::h5
