#!/usr/bin/env bash
# Full verification pass for apio:
#
#   1. default build + complete ctest suite (includes the apio_lint
#      concurrency-hygiene check as a test case),
#   2. clang-tidy preset (skipped with a notice when clang-tidy is not
#      installed — the GCC-only CI image does not ship it),
#   3. ThreadSanitizer build + the `tsan`-labelled suite (the whole unit
#      suite plus reduced-iteration stress tests; zero reports allowed).
#
# Usage: ci/check.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "usage: ci/check.sh [--skip-tsan]" >&2; exit 2 ;;
  esac
done

echo "==> [1/3] default build + full test suite"
cmake --preset default
cmake --build --preset default -j "${JOBS}"
ctest --preset default -j "${JOBS}"

echo "==> [2/3] clang-tidy"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset tidy
  cmake --build --preset tidy -j "${JOBS}"
else
  echo "    clang-tidy not found on PATH; skipping the tidy preset"
fi

if [[ "${SKIP_TSAN}" -eq 1 ]]; then
  echo "==> [3/3] ThreadSanitizer suite skipped (--skip-tsan)"
else
  echo "==> [3/3] ThreadSanitizer build + tsan-labelled suite"
  cmake --preset tsan
  cmake --build --preset tsan -j "${JOBS}"
  ctest --preset tsan -j "${JOBS}"
fi

echo "==> all checks passed"
