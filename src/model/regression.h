// Least-squares regression via the normal equations (Eq. 4) and the
// coefficient of determination (Eq. 5).
//
// The paper fits the observed aggregate I/O rate against two scaling
// features — data size and number of MPI ranks — with plain linear and
// linear-log forms, solving β = (XᵀX)⁻¹XᵀY analytically rather than
// with iterative nonlinear methods.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace apio::model {

/// Result of a least-squares fit.
struct LinearFit {
  /// Coefficients, one per feature column (intercept included when the
  /// design matrix carries a ones column).
  std::vector<double> beta;
  /// Standard R² = 1 − SS_res / SS_tot.
  double r_squared = 0.0;
  /// Number of samples fitted.
  std::size_t n = 0;

  bool valid() const { return !beta.empty(); }
};

/// Solves min ‖Xβ − y‖² with the normal equations.  `rows` holds one
/// feature vector per sample (all the same length).  Throws
/// InvalidArgumentError when the system is under-determined or the
/// normal matrix is singular.
LinearFit fit_least_squares(const std::vector<std::vector<double>>& rows,
                            std::span<const double> y);

/// Predicted value for one feature vector.
double predict(const LinearFit& fit, std::span<const double> features);

/// Pearson correlation coefficient between two samples.
double pearson(std::span<const double> x, std::span<const double> y);

/// Eq. 5: squared correlation between a single regressor and the
/// response — the r² definition quoted in the paper.
double r_squared_correlation(std::span<const double> x, std::span<const double> y);

/// Feature maps used by the I/O-rate estimators.
enum class FeatureForm {
  kLinear,     ///< [1, size, ranks]
  kLinearLog,  ///< [1, log(size), log(ranks)] — the sync-write fit of Fig. 3
};

/// Builds a design-matrix row for (data_size, ranks) under `form`.
std::vector<double> make_features(FeatureForm form, double data_size, double ranks);

}  // namespace apio::model
