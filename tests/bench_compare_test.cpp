// Regression-gate semantics of tools/bench_compare: JSONL parsing,
// last-record-wins merging, and the noise-aware comparison rules the
// CI gate (apio_bench_compare + ci/check.sh) relies on.
#include <gtest/gtest.h>

#include "bench_compare.h"

namespace apio::bench {
namespace {

std::string sample_line(const std::string& bench, const std::string& config,
                        double value, const std::string& noise = "det",
                        const std::string& units = "s") {
  return "{\"bench\":\"" + bench + "\",\"schema\":1,\"config\":\"" + config +
         "\",\"values\":[{\"metric\":\"total\",\"value\":" +
         std::to_string(value) + ",\"units\":\"" + units + "\",\"noise\":\"" +
         noise + "\"}],\"metrics\":{\"counters\":{},\"gauges\":{},"
         "\"histograms\":{}}}";
}

std::vector<BenchRecord> parse_ok(const std::string& text) {
  std::vector<BenchRecord> records;
  std::string error;
  EXPECT_TRUE(parse_bench_jsonl(text, &records, &error)) << error;
  return records;
}

TEST(BenchCompareTest, ParsesRecordsAndIgnoresUnknownKeys) {
  const auto records =
      parse_ok(sample_line("fig7", "cfg", 12.5) + "\n\n" +
               "{\"not_a_bench\":true}\n" + sample_line("fig3", "cfg", 3.0));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].bench, "fig7");
  EXPECT_EQ(records[0].schema, 1);
  EXPECT_EQ(records[0].config, "cfg");
  ASSERT_EQ(records[0].values.size(), 1u);
  EXPECT_EQ(records[0].values[0].metric, "total");
  EXPECT_NEAR(records[0].values[0].value, 12.5, 1e-9);
  EXPECT_EQ(records[0].values[0].units, "s");
  EXPECT_EQ(records[0].values[0].noise, "det");
}

TEST(BenchCompareTest, MalformedJsonReportsLineNumber) {
  std::vector<BenchRecord> records;
  std::string error;
  EXPECT_FALSE(
      parse_bench_jsonl(sample_line("a", "", 1.0) + "\n{\"bench\": oops}\n",
                        &records, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(BenchCompareTest, LastRecordPerBenchConfigWins) {
  // Appended accumulations (several runs into one APIO_BENCH_JSON file)
  // must gate against the freshest sample only.
  const auto records = parse_ok(sample_line("fig7", "cfg", 100.0) + "\n" +
                                sample_line("fig7", "cfg", 10.0));
  const auto merged = merge_records(records);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_NEAR(merged.at({"fig7", "cfg"}).values[0].value, 10.0, 1e-9);

  const auto result =
      compare_records(records, parse_ok(sample_line("fig7", "cfg", 10.0)),
                      CompareOptions{});
  EXPECT_TRUE(result.ok());
}

TEST(BenchCompareTest, InjectedRegressionBeyondToleranceFails) {
  const auto baseline = parse_ok(sample_line("fig7", "cfg", 100.0));
  CompareOptions options;  // det tolerance 10%

  // Clean rerun (identical values): passes.
  EXPECT_TRUE(
      compare_records(parse_ok(sample_line("fig7", "cfg", 100.0)), baseline,
                      options)
          .ok());
  // Small drift inside tolerance: passes.
  EXPECT_TRUE(
      compare_records(parse_ok(sample_line("fig7", "cfg", 105.0)), baseline,
                      options)
          .ok());
  // Injected >= 25% regression: fails (the CI acceptance case).
  const auto regressed = compare_records(
      parse_ok(sample_line("fig7", "cfg", 125.0)), baseline, options);
  ASSERT_EQ(regressed.violations.size(), 1u);
  EXPECT_EQ(regressed.violations[0].bench, "fig7");
  EXPECT_EQ(regressed.violations[0].metric, "total");
  // Deterministic values gate symmetrically: a 25% "improvement" means
  // the committed baseline is stale and must be regenerated.
  EXPECT_FALSE(
      compare_records(parse_ok(sample_line("fig7", "cfg", 75.0)), baseline,
                      options)
          .ok());
}

TEST(BenchCompareTest, WallNoiseGatesOneSidedByUnits) {
  CompareOptions options;  // wall tolerance 60%
  // Durations (s): only an increase is a regression.
  const auto base_s = parse_ok(sample_line("b", "c", 10.0, "wall", "s"));
  EXPECT_TRUE(compare_records(parse_ok(sample_line("b", "c", 15.0, "wall", "s")),
                              base_s, options)
                  .ok());  // +50% < 60%
  EXPECT_FALSE(
      compare_records(parse_ok(sample_line("b", "c", 17.0, "wall", "s")),
                      base_s, options)
          .ok());  // +70%
  EXPECT_TRUE(compare_records(parse_ok(sample_line("b", "c", 2.0, "wall", "s")),
                              base_s, options)
                  .ok());  // big improvement: fine for wall clock

  // Rates (B/s): only a decrease is a regression.
  const auto base_bw = parse_ok(sample_line("b", "c", 100.0, "wall", "B/s"));
  EXPECT_TRUE(
      compare_records(parse_ok(sample_line("b", "c", 500.0, "wall", "B/s")),
                      base_bw, options)
          .ok());
  EXPECT_FALSE(
      compare_records(parse_ok(sample_line("b", "c", 30.0, "wall", "B/s")),
                      base_bw, options)
          .ok());
}

TEST(BenchCompareTest, MissingMetricsAndRecordsAreViolations) {
  const std::string two_metrics =
      "{\"bench\":\"b\",\"schema\":1,\"config\":\"c\",\"values\":["
      "{\"metric\":\"m1\",\"value\":1,\"units\":\"s\",\"noise\":\"det\"},"
      "{\"metric\":\"m2\",\"value\":2,\"units\":\"s\",\"noise\":\"det\"}]}";
  const std::string one_metric =
      "{\"bench\":\"b\",\"schema\":1,\"config\":\"c\",\"values\":["
      "{\"metric\":\"m1\",\"value\":1,\"units\":\"s\",\"noise\":\"det\"}]}";

  // Metric dropped from the current run: violation.
  auto dropped = compare_records(parse_ok(one_metric), parse_ok(two_metrics),
                                 CompareOptions{});
  ASSERT_EQ(dropped.violations.size(), 1u);
  EXPECT_EQ(dropped.violations[0].metric, "m2");

  // Metric added without regenerating baselines: violation too.
  auto added = compare_records(parse_ok(two_metrics), parse_ok(one_metric),
                               CompareOptions{});
  ASSERT_EQ(added.violations.size(), 1u);
  EXPECT_EQ(added.violations[0].metric, "m2");

  // Whole bench record missing on either side: violation.
  EXPECT_FALSE(compare_records({}, parse_ok(one_metric), CompareOptions{}).ok());
  EXPECT_FALSE(compare_records(parse_ok(one_metric), {}, CompareOptions{}).ok());
}

TEST(BenchCompareTest, HigherIsWorseFollowsUnits) {
  EXPECT_TRUE(higher_is_worse("s"));
  EXPECT_TRUE(higher_is_worse("ms"));
  EXPECT_FALSE(higher_is_worse("B/s"));
  EXPECT_FALSE(higher_is_worse("ops/s"));
}

TEST(BenchCompareTest, ZeroBaselineOnlyMatchesZero) {
  const auto baseline = parse_ok(sample_line("b", "c", 0.0));
  EXPECT_TRUE(compare_records(parse_ok(sample_line("b", "c", 0.0)), baseline,
                              CompareOptions{})
                  .ok());
  EXPECT_FALSE(compare_records(parse_ok(sample_line("b", "c", 0.5)), baseline,
                               CompareOptions{})
                   .ok());
}

}  // namespace
}  // namespace apio::bench
