// Dependency-aware task scheduler over a set of execution streams.
//
// submit() returns an Eventual that completes when the task body has
// run.  A task may declare dependencies (other Eventuals); it becomes
// eligible only when all of them have completed.  Dependency release is
// callback-driven — no thread blocks while waiting for predecessors —
// mirroring how the HDF5 async VOL connector chains H5 operations.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "tasking/eventual.h"
#include "tasking/execution_stream.h"
#include "tasking/pool.h"

namespace apio::tasking {

/// A scheduler with `num_streams` worker threads sharing one FIFO pool.
class Scheduler {
 public:
  explicit Scheduler(std::size_t num_streams = 1);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Drains outstanding tasks and joins all streams.
  ~Scheduler();

  /// Submits `fn` for execution after all `deps` complete.  The returned
  /// eventual carries any exception thrown by `fn`.
  ///
  /// If a dependency completed with an error the task still runs — the
  /// VOL layer decides whether to propagate or suppress predecessor
  /// failures, matching the error-stack semantics of the async VOL.
  EventualPtr submit(TaskFn fn, const std::vector<EventualPtr>& deps = {});

  /// Closes the pool and joins all streams.  Further submit() calls throw.
  /// Idempotent.
  void shutdown();

  std::size_t num_streams() const { return streams_.size(); }

  /// Number of tasks submitted over the scheduler's lifetime.
  std::uint64_t tasks_submitted() const { return tasks_submitted_.load(); }

 private:
  PoolPtr pool_;
  std::vector<std::unique_ptr<ExecutionStream>> streams_;
  std::atomic<std::uint64_t> tasks_submitted_{0};
};

}  // namespace apio::tasking
