// Shared registry entries for leaf storage backends (memory, posix).
// Wrapper backends (throttled, faulty) delegate to a leaf and must NOT
// record here — one physical transfer, one count.
#pragma once

#include "obs/metrics.h"

namespace apio::storage {

inline obs::Histogram& storage_read_hist() {
  static auto& h = obs::Registry::instance().histogram("storage.read_seconds");
  return h;
}

inline obs::Histogram& storage_write_hist() {
  static auto& h = obs::Registry::instance().histogram("storage.write_seconds");
  return h;
}

inline obs::Counter& storage_bytes_read() {
  static auto& c = obs::Registry::instance().counter("storage.bytes_read");
  return c;
}

inline obs::Counter& storage_bytes_written() {
  static auto& c = obs::Registry::instance().counter("storage.bytes_written");
  return c;
}

}  // namespace apio::storage
