// POSIX file backend using positional pread/pwrite, the same primitive
// layer HDF5's sec2 driver uses underneath a parallel file system.
#pragma once

#include <atomic>
#include <string>

#include "storage/backend.h"

namespace apio::storage {

/// File-backed flat object.  pread/pwrite are thread-safe at the kernel
/// level, so concurrent disjoint-range access needs no user-space lock.
class PosixBackend final : public Backend {
 public:
  enum class Mode { kCreateTruncate, kOpenExisting, kOpenOrCreate };

  PosixBackend(const std::string& path, Mode mode);
  ~PosixBackend() override;

  PosixBackend(const PosixBackend&) = delete;
  PosixBackend& operator=(const PosixBackend&) = delete;

  std::uint64_t size() const override;
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  void flush() override;
  void truncate(std::uint64_t new_size) override;
  std::string name() const override { return "posix:" + path_; }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace apio::storage
