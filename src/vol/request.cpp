#include "vol/request.h"

namespace apio::vol {

std::string RequestInfo::to_string() const {
  std::string out = obs::to_string(op);
  if (!dataset_path.empty()) out += " " + dataset_path;
  if (!selection.empty()) out += " " + selection;
  out += " @+" + std::to_string(offset) + " (" + std::to_string(bytes) + " B)";
  return out;
}

}  // namespace apio::vol
