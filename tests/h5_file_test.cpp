// Unit tests for the apio-h5 container: files, groups, datasets
// (contiguous and chunked), attributes, persistence and format errors.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "common/error.h"
#include "h5/file.h"
#include "storage/memory_backend.h"

namespace apio::h5 {
namespace {

FilePtr make_file() {
  return File::create(std::make_shared<storage::MemoryBackend>());
}

std::vector<double> iota_doubles(std::size_t n, double start = 0.0) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

// ---------------------------------------------------------------------------
// File lifecycle

TEST(FileTest, CreateOpensEmptyRoot) {
  auto file = make_file();
  EXPECT_TRUE(file->is_open());
  EXPECT_TRUE(file->root().group_names().empty());
  EXPECT_TRUE(file->root().dataset_names().empty());
}

TEST(FileTest, CloseInvalidatesHandles) {
  auto file = make_file();
  Group root = file->root();
  file->close();
  EXPECT_FALSE(file->is_open());
  EXPECT_THROW(root.create_group("g"), StateError);
  EXPECT_THROW(file->flush(), InvalidArgumentError);
}

TEST(FileTest, OpenRejectsGarbage) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  std::vector<std::byte> junk(128, std::byte{0x5A});
  backend->write(0, junk);
  EXPECT_THROW(File::open(backend), FormatError);
}

TEST(FileTest, OpenRejectsTooSmall) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  backend->write(0, std::vector<std::byte>(8, std::byte{1}));
  EXPECT_THROW(File::open(backend), FormatError);
}

TEST(FileTest, RoundTripThroughBackend) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  {
    auto file = File::create(backend);
    auto g = file->root().create_group("physics");
    auto ds = g.create_dataset("x", Datatype::kFloat64, {8});
    const auto values = iota_doubles(8, 1.0);
    ds.write<double>(Selection::all(), values);
    g.set_attribute<std::int64_t>("step", 17);
    file->close();
  }
  {
    auto file = File::open(backend);
    auto g = file->root().open_group("physics");
    EXPECT_EQ(g.attribute<std::int64_t>("step"), 17);
    auto ds = g.open_dataset("x");
    EXPECT_EQ(ds.dtype(), Datatype::kFloat64);
    EXPECT_EQ(ds.dims(), (Dims{8}));
    auto values = ds.read_vector<double>(Selection::all());
    EXPECT_EQ(values, iota_doubles(8, 1.0));
  }
}

TEST(FileTest, ReopenAfterFlushWithoutClose) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  auto file = File::create(backend);
  file->root().create_dataset("d", Datatype::kInt32, {4});
  file->flush();
  auto reopened = File::open(backend);
  EXPECT_TRUE(reopened->root().has_dataset("d"));
}

TEST(FileTest, PosixFileHelpersRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "apio_h5_file_test.h5").string();
  {
    auto file = create_file(path);
    auto ds = file->root().create_dataset("v", Datatype::kUInt32, {3});
    const std::vector<std::uint32_t> values{7, 8, 9};
    ds.write<std::uint32_t>(Selection::all(), values);
    file->close();
  }
  {
    auto file = open_file(path);
    auto values = file->root().open_dataset("v").read_vector<std::uint32_t>(
        Selection::all());
    EXPECT_EQ(values, (std::vector<std::uint32_t>{7, 8, 9}));
  }
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Groups

TEST(GroupTest, NestedHierarchy) {
  auto file = make_file();
  auto a = file->root().create_group("a");
  auto b = a.create_group("b");
  b.create_group("c");
  EXPECT_TRUE(file->root().open_group("a").open_group("b").has_group("c"));
}

TEST(GroupTest, DuplicateNameRejected) {
  auto file = make_file();
  file->root().create_group("x");
  EXPECT_THROW(file->root().create_group("x"), InvalidArgumentError);
  EXPECT_THROW(file->root().create_dataset("x", Datatype::kInt8, {1}),
               InvalidArgumentError);
}

TEST(GroupTest, OpenMissingThrowsNotFound) {
  auto file = make_file();
  EXPECT_THROW(file->root().open_group("nope"), NotFoundError);
  EXPECT_THROW(file->root().open_dataset("nope"), NotFoundError);
}

TEST(GroupTest, InvalidNamesRejected) {
  auto file = make_file();
  EXPECT_THROW(file->root().create_group(""), InvalidArgumentError);
  EXPECT_THROW(file->root().create_group("a/b"), InvalidArgumentError);
}

TEST(GroupTest, RequireGroupIdempotent) {
  auto file = make_file();
  file->root().require_group("g");
  auto g = file->root().require_group("g");
  EXPECT_EQ(g.name(), "g");
  EXPECT_EQ(file->root().group_names().size(), 1u);
}

TEST(GroupTest, ListingsAreSorted) {
  auto file = make_file();
  file->root().create_group("zeta");
  file->root().create_group("alpha");
  file->root().create_dataset("mid", Datatype::kInt8, {1});
  EXPECT_EQ(file->root().group_names(), (std::vector<std::string>{"alpha", "zeta"}));
  EXPECT_EQ(file->root().dataset_names(), (std::vector<std::string>{"mid"}));
}

TEST(GroupTest, RemoveUnlinksChild) {
  auto file = make_file();
  file->root().create_group("g");
  file->root().create_dataset("d", Datatype::kInt8, {1});
  file->root().remove("g");
  file->root().remove("d");
  EXPECT_FALSE(file->root().has_group("g"));
  EXPECT_FALSE(file->root().has_dataset("d"));
  EXPECT_THROW(file->root().remove("g"), NotFoundError);
}

TEST(GroupTest, EnsurePathCreatesChain) {
  auto file = make_file();
  auto g = file->ensure_path("/sim/output/step1/");
  EXPECT_EQ(g.name(), "step1");
  EXPECT_TRUE(
      file->root().open_group("sim").open_group("output").has_group("step1"));
}

TEST(GroupTest, DatasetAtWalksPath) {
  auto file = make_file();
  auto g = file->ensure_path("a/b");
  g.create_dataset("d", Datatype::kFloat32, {2});
  auto ds = file->dataset_at("a/b/d");
  EXPECT_EQ(ds.name(), "d");
  EXPECT_THROW(file->dataset_at("a/b/missing"), NotFoundError);
}

// ---------------------------------------------------------------------------
// Contiguous datasets

TEST(DatasetTest, TypedWriteReadRoundTrip) {
  auto file = make_file();
  auto ds = file->root().create_dataset("d", Datatype::kFloat64, {4, 4});
  EXPECT_EQ(ds.npoints(), 16u);
  EXPECT_EQ(ds.element_size(), 8u);
  EXPECT_EQ(ds.byte_size(), 128u);
  const auto values = iota_doubles(16);
  ds.write<double>(Selection::all(), values);
  EXPECT_EQ(ds.read_vector<double>(Selection::all()), values);
}

TEST(DatasetTest, HyperslabWriteReadSubregion) {
  auto file = make_file();
  auto ds = file->root().create_dataset("d", Datatype::kInt32, {4, 4});
  std::vector<std::int32_t> zeros(16, 0);
  ds.write<std::int32_t>(Selection::all(), zeros);

  const auto sel = Selection::offsets({1, 1}, {2, 2});
  const std::vector<std::int32_t> patch{1, 2, 3, 4};
  ds.write<std::int32_t>(sel, patch);

  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all[1 * 4 + 1], 1);
  EXPECT_EQ(all[1 * 4 + 2], 2);
  EXPECT_EQ(all[2 * 4 + 1], 3);
  EXPECT_EQ(all[2 * 4 + 2], 4);
  EXPECT_EQ(all[0], 0);
  EXPECT_EQ(ds.read_vector<std::int32_t>(sel), patch);
}

TEST(DatasetTest, StridedWrite) {
  auto file = make_file();
  auto ds = file->root().create_dataset("d", Datatype::kInt32, {10});
  std::vector<std::int32_t> zeros(10, 0);
  ds.write<std::int32_t>(Selection::all(), zeros);

  Hyperslab slab;
  slab.start = {0};
  slab.stride = {2};
  slab.count = {5};
  const std::vector<std::int32_t> odds{1, 3, 5, 7, 9};
  ds.write<std::int32_t>(Selection::hyperslab(slab), odds);
  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all, (std::vector<std::int32_t>{1, 0, 3, 0, 5, 0, 7, 0, 9, 0}));
}

TEST(DatasetTest, TypeMismatchRejected) {
  auto file = make_file();
  auto ds = file->root().create_dataset("d", Datatype::kFloat32, {4});
  const std::vector<double> wrong(4, 0.0);
  EXPECT_THROW(ds.write<double>(Selection::all(), wrong), InvalidArgumentError);
}

TEST(DatasetTest, BufferSizeMismatchRejected) {
  auto file = make_file();
  auto ds = file->root().create_dataset("d", Datatype::kFloat32, {4});
  const std::vector<float> too_small(3, 0.0f);
  EXPECT_THROW(ds.write<float>(Selection::all(), too_small), InvalidArgumentError);
  std::vector<float> too_big(5, 0.0f);
  EXPECT_THROW(ds.read<float>(Selection::all(), std::span<float>(too_big)),
               InvalidArgumentError);
}

TEST(DatasetTest, OutOfBoundsSelectionRejected) {
  auto file = make_file();
  auto ds = file->root().create_dataset("d", Datatype::kFloat32, {4});
  std::vector<float> buf(2, 0.0f);
  EXPECT_THROW(ds.write<float>(Selection::offsets({3}, {2}), buf),
               InvalidArgumentError);
}

template <typename T>
void check_datatype_roundtrip(const FilePtr& file, const char* name, T sample) {
  auto ds = file->root().create_dataset(name, native_datatype<T>(), {2});
  const std::vector<T> values{sample, T{}};
  ds.template write<T>(Selection::all(), values);
  EXPECT_EQ(ds.template read_vector<T>(Selection::all()), values);
}

TEST(DatasetTest, AllSupportedDatatypes) {
  auto file = make_file();
  check_datatype_roundtrip<std::int8_t>(file, "i8", -5);
  check_datatype_roundtrip<std::uint8_t>(file, "u8", 200);
  check_datatype_roundtrip<std::int16_t>(file, "i16", -3000);
  check_datatype_roundtrip<std::uint16_t>(file, "u16", 60000);
  check_datatype_roundtrip<std::int32_t>(file, "i32", -100000);
  check_datatype_roundtrip<std::uint32_t>(file, "u32", 4000000000u);
  check_datatype_roundtrip<std::int64_t>(file, "i64", -5000000000ll);
  check_datatype_roundtrip<std::uint64_t>(file, "u64", 18000000000000000000ull);
  check_datatype_roundtrip<float>(file, "f32", 1.5f);
  check_datatype_roundtrip<double>(file, "f64", -2.25);
}

TEST(DatasetTest, SetExtentRequiresChunked) {
  auto file = make_file();
  auto ds = file->root().create_dataset("d", Datatype::kInt8, {4});
  EXPECT_THROW(ds.set_extent({8}), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Chunked datasets

TEST(ChunkedTest, RoundTripAcrossChunkBoundaries) {
  auto file = make_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {8, 8}, DatasetCreateProps::chunked({3, 3}));
  EXPECT_EQ(ds.layout(), Layout::kChunked);
  std::vector<std::int32_t> values(64);
  std::iota(values.begin(), values.end(), 0);
  ds.write<std::int32_t>(Selection::all(), values);
  EXPECT_EQ(ds.read_vector<std::int32_t>(Selection::all()), values);
}

TEST(ChunkedTest, UnwrittenChunksReadZeroFill) {
  auto file = make_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kFloat32, {8}, DatasetCreateProps::chunked({4}));
  const std::vector<float> half{1, 2, 3, 4};
  ds.write<float>(Selection::offsets({0}, {4}), half);
  auto all = ds.read_vector<float>(Selection::all());
  EXPECT_EQ(all[0], 1.0f);
  EXPECT_EQ(all[4], 0.0f);
  EXPECT_EQ(all[7], 0.0f);
}

TEST(ChunkedTest, PartialChunkWriteLeavesRestZero) {
  auto file = make_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {4, 4}, DatasetCreateProps::chunked({4, 4}));
  const std::vector<std::int32_t> one{42};
  ds.write<std::int32_t>(Selection::offsets({2, 2}, {1, 1}), one);
  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all[2 * 4 + 2], 42);
  EXPECT_EQ(all[0], 0);
}

TEST(ChunkedTest, SetExtentGrowsDataset) {
  auto file = make_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {4}, DatasetCreateProps::chunked({4}));
  const std::vector<std::int32_t> first{1, 2, 3, 4};
  ds.write<std::int32_t>(Selection::all(), first);
  ds.set_extent({8});
  EXPECT_EQ(ds.dims(), (Dims{8}));
  const std::vector<std::int32_t> second{5, 6, 7, 8};
  ds.write<std::int32_t>(Selection::offsets({4}, {4}), second);
  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all, (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(ChunkedTest, SetExtentShrinkDropsOutsideChunksOnRegrow) {
  // Regression: shrinking used to keep chunks that fell entirely
  // outside the new extent, so regrowing exposed stale data where the
  // format promises zero fill for never-written (dead) regions.
  auto file = make_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {8}, DatasetCreateProps::chunked({4}));
  const std::vector<std::int32_t> values{1, 2, 3, 4, 5, 6, 7, 8};
  ds.write<std::int32_t>(Selection::all(), values);

  ds.set_extent({4});  // chunk [4,8) now fully outside: dropped
  ds.set_extent({8});  // regrow over dead space
  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all, (std::vector<std::int32_t>{1, 2, 3, 4, 0, 0, 0, 0}));
}

TEST(ChunkedTest, SetExtentShrinkKeepsPartiallyCoveredChunks) {
  // A chunk still intersecting the new extent survives the shrink; the
  // part beyond the extent is clipped on read but reappears on regrow
  // (matching HDF5, which only discards whole chunks).
  auto file = make_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {8}, DatasetCreateProps::chunked({4}));
  const std::vector<std::int32_t> values{1, 2, 3, 4, 5, 6, 7, 8};
  ds.write<std::int32_t>(Selection::all(), values);

  ds.set_extent({6});  // chunk [4,8) partially inside: kept
  EXPECT_EQ(ds.read_vector<std::int32_t>(Selection::all()),
            (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6}));
  ds.set_extent({8});
  EXPECT_EQ(ds.read_vector<std::int32_t>(Selection::all()), values);
}

TEST(ChunkedTest, SetExtentShrink2DDropsOnlyFullyOutsideChunks) {
  auto file = make_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kInt32, {4, 4}, DatasetCreateProps::chunked({2, 2}));
  std::vector<std::int32_t> values(16);
  std::iota(values.begin(), values.end(), 1);
  ds.write<std::int32_t>(Selection::all(), values);

  // Shrink to {2,4}: the two bottom chunks (rows 2-3) are fully
  // outside and must be dropped; top chunks survive intact.
  ds.set_extent({2, 4});
  ds.set_extent({4, 4});
  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all, (std::vector<std::int32_t>{1, 2, 3, 4, 5, 6, 7, 8,  //
                                            0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST(ChunkedTest, PersistsAcrossReopen) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  {
    auto file = File::create(backend);
    auto ds = file->root().create_dataset(
        "d", Datatype::kFloat64, {6, 6}, DatasetCreateProps::chunked({2, 5}));
    const auto values = iota_doubles(36);
    ds.write<double>(Selection::all(), values);
    file->close();
  }
  {
    auto file = File::open(backend);
    auto ds = file->root().open_dataset("d");
    EXPECT_EQ(ds.layout(), Layout::kChunked);
    EXPECT_EQ(ds.chunk_dims(), (Dims{2, 5}));
    EXPECT_EQ(ds.read_vector<double>(Selection::all()), iota_doubles(36));
  }
}

TEST(ChunkedTest, ChunkRankMismatchRejected) {
  auto file = make_file();
  EXPECT_THROW(file->root().create_dataset("d", Datatype::kInt8, {4, 4},
                                           DatasetCreateProps::chunked({4})),
               InvalidArgumentError);
}

TEST(ChunkedTest, ZeroChunkDimRejected) {
  auto file = make_file();
  EXPECT_THROW(file->root().create_dataset("d", Datatype::kInt8, {4},
                                           DatasetCreateProps::chunked({0})),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Attributes

TEST(AttributeTest, ScalarRoundTripAllTypes) {
  auto file = make_file();
  auto g = file->root().create_group("g");
  g.set_attribute<double>("pi", 3.25);
  g.set_attribute<std::int32_t>("count", -7);
  g.set_attribute<std::uint64_t>("big", 1ull << 40);
  EXPECT_DOUBLE_EQ(g.attribute<double>("pi"), 3.25);
  EXPECT_EQ(g.attribute<std::int32_t>("count"), -7);
  EXPECT_EQ(g.attribute<std::uint64_t>("big"), 1ull << 40);
}

TEST(AttributeTest, OverwriteReplacesValue) {
  auto file = make_file();
  auto g = file->root().create_group("g");
  g.set_attribute<std::int32_t>("v", 1);
  g.set_attribute<std::int32_t>("v", 2);
  EXPECT_EQ(g.attribute<std::int32_t>("v"), 2);
}

TEST(AttributeTest, TypeMismatchOnReadThrows) {
  auto file = make_file();
  auto g = file->root().create_group("g");
  g.set_attribute<std::int32_t>("v", 1);
  EXPECT_THROW(g.attribute<double>("v"), InvalidArgumentError);
}

TEST(AttributeTest, MissingAttributeThrows) {
  auto file = make_file();
  auto g = file->root().create_group("g");
  EXPECT_FALSE(g.has_attribute("v"));
  EXPECT_THROW(g.attribute<double>("v"), NotFoundError);
}

TEST(AttributeTest, DatasetAttributesPersist) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  {
    auto file = File::create(backend);
    auto ds = file->root().create_dataset("d", Datatype::kInt8, {1});
    ds.set_attribute<double>("dt", 0.125);
    file->close();
  }
  auto file = File::open(backend);
  EXPECT_DOUBLE_EQ(file->root().open_dataset("d").attribute<double>("dt"), 0.125);
}

TEST(AttributeTest, VectorAttributeRaw) {
  auto file = make_file();
  auto g = file->root().create_group("g");
  const std::vector<float> values{1.0f, 2.0f, 3.0f};
  g.set_attribute_raw("vec", Datatype::kFloat32, {3},
                      std::as_bytes(std::span<const float>(values)));
  std::vector<float> out(3);
  g.attribute_raw("vec", Datatype::kFloat32,
                  std::as_writable_bytes(std::span<float>(out)));
  EXPECT_EQ(out, values);
}

// ---------------------------------------------------------------------------
// Many objects / metadata scale

TEST(MetadataScaleTest, HundredsOfDatasetsPersist) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  {
    auto file = File::create(backend);
    for (int step = 0; step < 20; ++step) {
      auto g = file->root().create_group("step" + std::to_string(step));
      for (int d = 0; d < 10; ++d) {
        auto ds = g.create_dataset("d" + std::to_string(d), Datatype::kInt32, {2});
        const std::vector<std::int32_t> values{step, d};
        ds.write<std::int32_t>(Selection::all(), values);
      }
    }
    file->close();
  }
  auto file = File::open(backend);
  for (int step = 0; step < 20; ++step) {
    auto g = file->root().open_group("step" + std::to_string(step));
    ASSERT_EQ(g.dataset_names().size(), 10u);
    auto v = g.open_dataset("d7").read_vector<std::int32_t>(Selection::all());
    EXPECT_EQ(v, (std::vector<std::int32_t>{step, 7}));
  }
}

}  // namespace
}  // namespace apio::h5
