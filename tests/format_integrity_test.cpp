// Integrity tests: CRC-32C vectors, corruption detection at open time,
// and shadow-update crash consistency.
#include <gtest/gtest.h>

#include <numeric>

#include "common/crc32.h"
#include "common/error.h"
#include "h5/file.h"
#include "storage/memory_backend.h"

namespace apio {
namespace {

std::span<const std::byte> str_bytes(const char* s, std::size_t n) {
  return std::as_bytes(std::span<const char>(s, n));
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / published CRC-32C test vectors.
  EXPECT_EQ(crc32c({}), 0x00000000u);
  EXPECT_EQ(crc32c(str_bytes("123456789", 9)), 0xE3069283u);
  EXPECT_EQ(crc32c(str_bytes("a", 1)), 0xC1D04330u);
  std::vector<std::byte> zeros32(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros32), 0x8A9136AAu);
  std::vector<std::byte> ffs32(32, std::byte{0xFF});
  EXPECT_EQ(crc32c(ffs32), 0x62A8AB43u);
}

TEST(Crc32cTest, SeedContinuation) {
  // Checksumming in two pieces must equal one pass.
  const char* msg = "asynchronous parallel i/o";
  const std::size_t n = 25;
  const auto full = crc32c(str_bytes(msg, n));
  const auto part = crc32c(str_bytes(msg + 10, n - 10), crc32c(str_bytes(msg, 10)));
  EXPECT_EQ(full, part);
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::vector<std::byte> data(128, std::byte{0x5A});
  const auto base = crc32c(data);
  for (std::size_t i = 0; i < data.size(); i += 17) {
    auto copy = data;
    copy[i] ^= std::byte{0x01};
    EXPECT_NE(crc32c(copy), base) << "flip at " << i;
  }
}

// ---------------------------------------------------------------------------
// Container corruption detection

h5::FilePtr populated_file(storage::BackendPtr backend) {
  auto file = h5::File::create(backend);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt64, {64});
  std::vector<std::int64_t> values(64);
  std::iota(values.begin(), values.end(), 0);
  ds.write<std::int64_t>(h5::Selection::all(), values);
  file->close();
  return file;
}

TEST(CorruptionTest, CleanFileOpens) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  populated_file(backend);
  EXPECT_NO_THROW(h5::File::open(backend));
}

TEST(CorruptionTest, FlippedSuperblockByteDetected) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  populated_file(backend);
  // Corrupt a byte inside the superblock payload (eof field region).
  std::vector<std::byte> byte_buf(1);
  backend->read(34, byte_buf);
  byte_buf[0] ^= std::byte{0xFF};
  backend->write(34, byte_buf);
  EXPECT_THROW(h5::File::open(backend), FormatError);
}

TEST(CorruptionTest, FlippedMetadataByteDetected) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  populated_file(backend);
  // The metadata block is the last thing flushed; flip a byte near the
  // end of the backend (inside the metadata blob).
  const std::uint64_t target = backend->size() - 8;
  std::vector<std::byte> byte_buf(1);
  backend->read(target, byte_buf);
  byte_buf[0] ^= std::byte{0x10};
  backend->write(target, byte_buf);
  EXPECT_THROW(h5::File::open(backend), FormatError);
}

TEST(CorruptionTest, TornSuperblockWriteDetected) {
  auto backend = std::make_shared<storage::MemoryBackend>();
  populated_file(backend);
  // Emulate a torn in-place superblock update: half the block replaced
  // with other content.
  std::vector<std::byte> garbage(24, std::byte{0x77});
  backend->write(16, garbage);
  EXPECT_THROW(h5::File::open(backend), FormatError);
}

TEST(CorruptionTest, ShadowUpdateLeavesOldTreeReadable) {
  // Crash between writing the new metadata block and the superblock:
  // we emulate it by snapshotting the backend before a second flush and
  // appending the new metadata without the superblock rewrite.
  auto backend = std::make_shared<storage::MemoryBackend>();
  auto file = h5::File::create(backend);
  file->root().create_dataset("first", h5::Datatype::kInt8, {1});
  file->flush();

  // Snapshot: copy all bytes.
  std::vector<std::byte> snapshot(backend->size());
  backend->read(0, snapshot);

  file->root().create_dataset("second", h5::Datatype::kInt8, {1});
  file->close();  // second flush appends new metadata + new superblock

  // "Crash before the superblock rewrite": restore the old superblock
  // (first 64 bytes) from the snapshot.  It points at the old, intact
  // metadata block, because flushes never overwrite previous metadata.
  backend->write(0, std::span<const std::byte>(snapshot.data(), 64));

  auto reopened = h5::File::open(backend);
  EXPECT_TRUE(reopened->root().has_dataset("first"));
  EXPECT_FALSE(reopened->root().has_dataset("second"));
}

TEST(CorruptionTest, DataBytesAreNotChecksummed) {
  // Raw dataset bytes carry no checksum (matching HDF5 defaults); a
  // flipped data byte is returned as stored, not rejected.  This test
  // documents the boundary of the integrity guarantee.
  auto backend = std::make_shared<storage::MemoryBackend>();
  populated_file(backend);
  std::vector<std::byte> byte_buf(1);
  backend->read(64, byte_buf);  // first raw data byte (after superblock)
  byte_buf[0] ^= std::byte{0x01};
  backend->write(64, byte_buf);
  auto file = h5::File::open(backend);
  auto values = file->root().open_dataset("d").read_vector<std::int64_t>(
      h5::Selection::all());
  EXPECT_NE(values[0], 0);  // silently different, by design
}

}  // namespace
}  // namespace apio
