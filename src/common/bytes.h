// Byte-buffer encoding/decoding primitives for the apio-h5 on-disk format.
//
// All on-disk integers are little-endian.  ByteWriter grows an owned
// vector; ByteReader walks a read-only span and throws FormatError on
// truncation, so format parsing code never reads out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"

namespace apio {

/// Serialises primitive values into a growable little-endian byte vector.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(std::byte{v}); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void put_f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }

  /// Writes a u32 length prefix followed by the raw characters.
  void put_string(std::string_view s);

  /// Appends raw bytes without a length prefix.
  void put_bytes(std::span<const std::byte> bytes);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::byte> view() const { return buf_; }
  std::vector<std::byte> take() && { return std::move(buf_); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
    }
  }

  std::vector<std::byte> buf_;
};

/// Deserialises primitive values from a byte span; throws FormatError on
/// truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t get_u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_le<std::uint64_t>()); }
  double get_f64() {
    const std::uint64_t bits = get_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// Reads a u32 length prefix followed by the raw characters.
  std::string get_string();

  /// Reads exactly n raw bytes.
  std::span<const std::byte> get_bytes(std::size_t n) { return take(n); }

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> take(std::size_t n) {
    if (remaining() < n) {
      throw FormatError("truncated structure: wanted " + std::to_string(n) +
                        " bytes, have " + std::to_string(remaining()));
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  template <typename T>
  T get_le() {
    auto bytes = take(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(std::to_integer<std::uint8_t>(bytes[i])) << (8 * i)));
    }
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Reinterprets a typed object span as raw bytes (for data-path copies).
template <typename T>
std::span<const std::byte> as_bytes_span(std::span<const T> s) {
  return std::as_bytes(s);
}

}  // namespace apio
