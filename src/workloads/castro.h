// Castro proxy: compressible-astrophysics simulation (Sec. IV-C) —
// AMReX MultiFab with 6 components plus tracer particles (2 per cell),
// checkpointed under strong scaling.  The particle output adds the
// 1-D-dataset pattern to the 3-D field pattern, matching how Castro's
// HDF5 plotfiles mix both.
#pragma once

#include "sim/epoch_sim.h"
#include "workloads/amr.h"
#include "workloads/checkpoint_app.h"

namespace apio::workloads {

struct CastroParams {
  h5::Dims domain{128, 128, 128};
  int ncomp = 6;            ///< the paper's "6 components in each multifab"
  int particles_per_cell = 2;
  int particle_props = 4;   ///< x, y, z, id
  CheckpointSchedule schedule{/*checkpoints=*/3, /*steps_per_checkpoint=*/10,
                              /*seconds_per_step=*/0.0};
};

class CastroProxy {
 public:
  explicit CastroProxy(CastroParams params);

  CheckpointRunResult run(vol::Connector& connector, pmpi::Communicator& comm) const;

  const CastroParams& params() const { return params_; }

  /// Aggregate bytes per checkpoint (fields + particles).
  static std::uint64_t checkpoint_bytes(const CastroParams& params);

  static std::string checkpoint_name(int index);

  /// Simulator configuration reproducing Fig. 4c/4d (strong scaling).
  static sim::RunConfig sim_config(const sim::SystemSpec& spec, int nodes,
                                   model::IoMode mode, const CastroParams& params,
                                   double seconds_per_step = 2.0);

 private:
  CastroParams params_;
};

}  // namespace apio::workloads
