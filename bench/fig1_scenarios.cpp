// Fig. 1: the three overlap scenarios as epoch-model timelines.
// Renders the sync and async epoch structure for (a) ideal overlap,
// (b) partial overlap and (c) the slowdown case, plus the algebraic
// outcome of Eq. 2a/2b.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "model/epoch_model.h"

namespace apio {
namespace {

std::string bar(double seconds, double unit, char fill) {
  const int width = std::max(1, static_cast<int>(seconds / unit + 0.5));
  return std::string(static_cast<std::size_t>(width), fill);
}

void render(const char* title, const model::EpochCosts& costs) {
  using namespace model;
  const double sync = sync_epoch_seconds(costs);
  const double async = async_epoch_seconds(costs);
  const double unit = std::max(sync, async) / 48.0;

  std::printf("\n--- %s ---\n", title);
  std::printf("costs: t_comp=%.2fs t_io=%.2fs t_transact=%.2fs\n", costs.t_comp,
              costs.t_io, costs.t_transact);
  // Sync timeline: compute then blocking I/O.
  std::printf("  sync : [%s%s] %.2fs\n", bar(costs.t_comp, unit, 'C').c_str(),
              bar(costs.t_io, unit, 'I').c_str(), sync);
  // Async timeline: overhead (staging copy), then compute overlapping
  // background I/O; the exposed remainder (if any) trails.
  const double exposed = std::max(0.0, costs.t_io - costs.t_comp);
  std::printf("  async: [%s%s%s] %.2fs\n", bar(costs.t_transact, unit, 'O').c_str(),
              bar(costs.t_comp, unit, 'C').c_str(),
              exposed > 0 ? bar(exposed, unit, 'i').c_str() : "", async);
  std::printf("  scenario=%s  speedup=%.2fx  (C=compute, I=blocking I/O,\n"
              "  O=transactional overhead, i=exposed async I/O remainder)\n",
              to_string(classify_overlap(costs)).c_str(), async_speedup(costs));
}

}  // namespace
}  // namespace apio

int main() {
  using apio::model::EpochCosts;
  apio::bench::banner("Fig. 1: overlap scenarios of the epoch model",
                      "Eq. 2a: t_sync = t_io + t_comp ; "
                      "Eq. 2b: t_async = max(t_comp, t_io - t_comp) + t_transact");
  apio::render("(a) ideal: computation longer than I/O",
               EpochCosts{.t_comp = 6.0, .t_io = 4.0, .t_transact = 0.5});
  apio::render("(b) partial overlap: I/O longer than computation",
               EpochCosts{.t_comp = 2.0, .t_io = 6.0, .t_transact = 0.5});
  apio::render("(c) slowdown: overhead exceeds the feasible overlap",
               EpochCosts{.t_comp = 0.4, .t_io = 0.3, .t_transact = 0.8});
  return apio::bench::record_bench_metrics("fig1_scenarios");
}
