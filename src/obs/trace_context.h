// Causal request tracing: follow ONE I/O request through every layer.
//
// The metrics registry answers "how much, in aggregate"; the Chrome
// span buffer answers "what ran when, per thread".  Neither can answer
// the paper's per-request question — where did *this* write spend its
// time once it left the application?  obs::trace does: every request
// submitted through the async VOL mints a TraceContext (trace id +
// root span id) that travels with the operation across threads —
// issuing rank -> FIFO chain -> tasking pool -> retry attempts ->
// scheduler admission -> backend decorator stack — and every layer
// records phase-named child spans against it.  A completed request
// yields one span tree whose self-times decompose the request's wall
// time exactly (critical_path.h turns that into percentiles and
// straggler attribution).
//
// Propagation rules:
//   * the issuing thread binds the context with ScopedTraceContext for
//     the synchronous submit window (mirroring sched::ScopedSubmission);
//   * the background stream re-binds it around every attempt, exactly
//     where the submission identity is re-bound;
//   * layers that run on the bound thread open ScopedPhase spans (they
//     nest via a per-thread span stack);
//   * cross-thread gaps (FIFO wait, pool wait) and cross-rank work
//     (collective aggregation) are recorded with explicit
//     record_phase()/TraceCollector::record() against the context,
//     since no thread holds the binding while the request waits.
//
// Memory is bounded: sampling keeps 1-in-N requests (deterministic
// counter, not RNG, so runs are reproducible), spans per trace are
// capped, and completed traces live in a fixed-capacity ring.  Every
// instrumentation site starts with one relaxed atomic load, so
// compiled-in tracing costs a predictable branch when disabled (the
// fig_trace_overhead bench gates the enabled+sampled cost at <= 2%).
//
// NEVER record spans while holding a RankedMutex: the collector's own
// guard is a plain leaf mutex and recording from inside a ranked
// critical section would hide scheduler/pool time inside the span.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/record.h"

namespace apio::obs::trace {

/// The documented phase vocabulary.  Every span names one of these —
/// the apio_lint `trace-phase` rule rejects ad-hoc strings, so
/// critical-path reports can never fragment across spellings.
enum class Phase : std::uint8_t {
  kSubmit = 0,   ///< synchronous submit window on the issuing thread
  kStageCopy,    ///< transactional staging copy (t_transact)
  kFifoWait,     ///< waiting behind the connector's FIFO predecessor
  kPoolWait,     ///< pool push -> background stream pickup
  kQueueWait,    ///< sched::FairScheduler submit -> grant
  kAdmission,    ///< channel grant held around the inner transfer
  kAttempt,      ///< one retry-session execution attempt
  kBackoff,      ///< retry backoff delay
  kBackend,      ///< one storage::Backend decorator/leaf operation
  kCacheHit,     ///< read served from the burst-buffer staging area
  kCacheFlush,   ///< dirty-extent drain from the cache to the PFS tier
  kFallback,     ///< degraded-mode synchronous replay
  kExchange,     ///< collective header/payload exchange (pmpi)
  kRemoteWrite,  ///< aggregator writing a contributor's bytes
  kComplete,     ///< completion bookkeeping before the eventual fires
  kOther,        ///< root self-time not covered by any child phase
};

inline constexpr int kPhaseCount = 16;

const char* phase_name(Phase phase);

/// The propagated identity of one traced request.  trace_id == 0 means
/// "untraced" (collector disabled); sampled == false means the request
/// counts in watermarks but records no spans.
struct TraceContext {
  std::uint64_t trace_id = 0;
  /// Root span of the request; child phases parent to it by default.
  std::uint64_t span_id = 0;
  bool sampled = false;

  [[nodiscard]] bool recording() const { return trace_id != 0 && sampled; }
};

/// One recorded phase span inside a trace.
struct TraceSpan {
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;  ///< 0 = child of the root span
  Phase phase = Phase::kOther;
  double start_seconds = 0.0;  ///< obs::steady_seconds() timebase
  double duration_seconds = 0.0;
  std::uint64_t bytes = 0;
  int rank = -1;       ///< pmpi rank of the recording thread
  std::string detail;  ///< free-form annotation (backend name, attempt no.)
};

/// One finished request's full span tree plus its identity.
struct CompletedTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t root_span_id = 0;
  /// Causal link to the trace whose context was bound at mint time
  /// (e.g. a collective exchange spawning aggregated writes); 0 = none.
  std::uint64_t parent_trace_id = 0;
  std::uint64_t parent_span_id = 0;
  IoOp op = IoOp::kWrite;
  std::string tenant;
  std::uint64_t bytes = 0;
  bool failed = false;
  double start_seconds = 0.0;     ///< root span start
  double duration_seconds = 0.0;  ///< root span wall time
  std::vector<TraceSpan> spans;   ///< children only; the root is implicit
};

/// The calling thread's bound trace context; null when unbound or when
/// the bound request is untraced.
const TraceContext* current_trace();

/// RAII binding of a TraceContext to the current thread, next to (and
/// with the same nesting discipline as) sched::ScopedSubmission.  The
/// per-thread phase stack is swapped out for the binding's lifetime, so
/// an inner binding's spans can never parent to an outer binding's
/// open phases.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
  std::vector<std::uint64_t> previous_stack_;
};

/// Process-wide trace registry: active (in-flight) traces keyed by id,
/// plus a bounded ring of completed traces for export/analysis.
class TraceCollector {
 public:
  /// Spans kept per trace; further records are counted as dropped.
  static constexpr std::size_t kMaxSpansPerTrace = 512;

  static TraceCollector& instance();

  /// Master switch (relaxed atomic).  Disabled start_trace() mints
  /// nothing and every recording site short-circuits.
  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Deterministic 1-in-N sampling: every `period`-th minted trace
  /// records spans (period 1 = record everything).  Unsampled traces
  /// still count in the watermark.
  void set_sampling_period(std::uint64_t period);
  [[nodiscard]] std::uint64_t sampling_period() const;

  /// Test hook for the tracing-cost gate (bench/fig_trace_overhead): a
  /// busy-wait of this many microseconds is charged on every *enabled*
  /// start_trace(), modelling a tracing-path slowdown the gate must
  /// catch.  Seeded once from APIO_TRACE_INJECT_SPAN_DELAY_US when the
  /// singleton is first touched; the production value 0 costs a single
  /// relaxed load on the minting path and nothing when tracing is off.
  void set_injected_delay_us(std::uint64_t us);
  [[nodiscard]] std::uint64_t injected_delay_us() const {
    return injected_delay_us_.load(std::memory_order_relaxed);
  }

  /// Completed-trace ring capacity; the oldest trace is evicted first.
  void set_capacity(std::size_t capacity);

  /// Mints a context for a new request.  If the calling thread already
  /// holds a recording context (e.g. an aggregator issuing writes from
  /// inside a collective trace), the new trace carries a causal parent
  /// link and inherits sampling, keeping cross-request chains whole.
  TraceContext start_trace();

  /// Fresh span id under `context`'s trace (0 when not recording).
  std::uint64_t new_span_id(const TraceContext& context);

  /// Appends one span to an active trace.  The trace_id form serves
  /// cross-rank recording (the id arrived over the wire); spans for
  /// unknown/already-completed traces are dropped and counted.
  void record(const TraceContext& context, TraceSpan span);
  void record(std::uint64_t trace_id, TraceSpan span);

  /// Seals an active trace and moves it into the completed ring.
  void complete(const TraceContext& context, IoOp op, std::string tenant,
                std::uint64_t bytes, bool failed, double start_seconds,
                double end_seconds);

  /// Removes and returns every completed trace (analysis at end of run).
  std::vector<CompletedTrace> drain();

  /// Copies completed traces with ring sequence > `cursor`, returning
  /// the new cursor — the non-destructive form the telemetry exporter
  /// polls so a later drain() still sees everything left in the ring.
  std::pair<std::vector<CompletedTrace>, std::uint64_t> completed_since(
      std::uint64_t cursor) const;

  /// Live counters for watermark export.
  struct Watermark {
    std::uint64_t started = 0;    ///< traces minted
    std::uint64_t sampled = 0;    ///< traces that recorded spans
    std::uint64_t completed = 0;  ///< traces sealed
    std::uint64_t evicted = 0;    ///< completed traces pushed out of the ring
    std::uint64_t dropped_spans = 0;  ///< spans over the per-trace cap
    std::uint64_t late_spans = 0;     ///< spans for unknown/sealed traces
    std::uint64_t active = 0;         ///< currently in-flight sampled traces
    /// Start time of the oldest in-flight trace (0 when none) — a
    /// stuck-request indicator.
    double oldest_active_start = 0.0;
  };
  [[nodiscard]] Watermark watermark() const;

  /// Drops all state (tests / tool re-runs).  Counters reset too.
  void clear();

 private:
  TraceCollector() = default;

  struct ActiveTrace {
    std::uint64_t root_span_id = 0;
    std::uint64_t parent_trace_id = 0;
    std::uint64_t parent_span_id = 0;
    double start_seconds = 0.0;
    std::vector<TraceSpan> spans;
  };

  void record_locked(std::uint64_t trace_id, TraceSpan&& span);
  void apply_injected_delay() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> injected_delay_us_{0};
  std::atomic<std::uint64_t> next_trace_{0};
  std::atomic<std::uint64_t> next_span_{0};

  mutable std::mutex mutex_;
  std::uint64_t sampling_period_ = 1;
  std::size_t capacity_ = 4096;
  std::map<std::uint64_t, ActiveTrace> active_;
  std::deque<CompletedTrace> completed_;
  std::uint64_t completed_seq_ = 0;  ///< seq of completed_.back()
  std::uint64_t sampled_count_ = 0;
  std::uint64_t completed_count_ = 0;
  std::uint64_t evicted_count_ = 0;
  std::uint64_t dropped_spans_ = 0;
  std::uint64_t late_spans_ = 0;
};

/// Records one phase against `context` with explicit timing, parented
/// to the root span.  The cross-thread form: used where no thread holds
/// the binding while the time passes (FIFO wait, pool wait).
void record_phase(const TraceContext& context, Phase phase,
                  double start_seconds, double duration_seconds,
                  std::uint64_t bytes = 0, std::string detail = {});

/// RAII phase span on the bound context.  Construction samples the
/// clock and pushes onto the thread's phase stack (so nested phases
/// parent correctly); destruction (or finish()) pops and records.
/// Near-zero cost when the thread is unbound or the trace unsampled.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase, std::uint64_t bytes = 0,
                       const char* detail = nullptr);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void finish();

 private:
  bool active_ = false;
  Phase phase_ = Phase::kOther;
  std::uint64_t bytes_ = 0;
  const char* detail_ = nullptr;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_ = 0;
  TraceContext context_;
  double start_ = 0.0;
};

}  // namespace apio::obs::trace
