// Live telemetry export: a background thread that periodically
// serializes the metrics registry plus trace-collector watermarks to
// Prometheus text format, and completed traces to JSONL.
//
// Lifecycle: construct with options, start(), do work, stop().  stop()
// performs one final flush so short runs still export; the destructor
// stops too, so scope-bound usage is safe.  The exporter reads the
// completed-trace ring non-destructively (completed_since cursor) — a
// final TraceCollector::drain() for end-of-run analysis still sees
// every trace that fit in the ring.
//
// Memory stays bounded by construction: the registry is fixed-size, the
// trace ring has a capacity, and the exporter holds only a cursor.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace_context.h"

namespace apio::obs::trace {

struct TelemetryOptions {
  /// Seconds between flushes.
  double interval_seconds = 1.0;
  /// Prometheus text-format snapshot path (rewritten atomically-ish by
  /// truncate each flush); empty = no Prometheus export.
  std::string prom_path;
  /// JSONL stream path (appended: one line per newly completed trace,
  /// plus one watermark line per flush); empty = no JSONL export.
  std::string jsonl_path;
};

/// Renders a registry snapshot + trace watermark as Prometheus text
/// format (metric names get an `apio_` prefix, dots become
/// underscores; histograms export as summaries with p50/p95/p99
/// quantile lines).  Exposed for tests and one-shot tool export.
std::string to_prometheus(const RegistrySnapshot& snapshot,
                          const TraceCollector::Watermark& watermark);

/// One completed trace as a single JSON line (no trailing newline).
std::string trace_to_json(const CompletedTrace& trace);

class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryOptions options);
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Launches the background flusher; idempotent.
  void start();

  /// Stops the flusher after one final flush; idempotent.
  void stop();

  /// Performs one synchronous flush on the calling thread (also used by
  /// tools that want a final snapshot without the thread).
  void flush();

  /// Flushes performed so far (including the final one).
  [[nodiscard]] std::uint64_t flush_count() const;

 private:
  void run();

  TelemetryOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::uint64_t trace_cursor_ = 0;
  std::uint64_t flush_count_ = 0;
  std::thread thread_;
};

}  // namespace apio::obs::trace
