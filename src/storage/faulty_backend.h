// FaultyBackend: deterministic fault injection for testing error paths.
//
// Wraps another backend and fails selected operations with IoError —
// after a countdown, on an operation-index set, or always — so tests
// can drive the library's failure handling (async error propagation,
// event-set error collection, partial-write recovery) without real
// hardware faults.
#pragma once

#include <atomic>

#include "storage/backend.h"

namespace apio::storage {

struct FaultPlan {
  /// Fail every write once this many write calls have succeeded
  /// (negative = never).
  std::int64_t fail_writes_after = -1;
  /// Fail every read once this many read calls have succeeded.
  std::int64_t fail_reads_after = -1;
  /// Fail flush() calls.
  bool fail_flush = false;
};

class FaultyBackend final : public Backend {
 public:
  FaultyBackend(BackendPtr inner, FaultPlan plan);

  std::uint64_t size() const override { return inner_->size(); }
  void read(std::uint64_t offset, std::span<std::byte> out) override;
  void write(std::uint64_t offset, std::span<const std::byte> data) override;
  void flush() override;
  void truncate(std::uint64_t new_size) override { inner_->truncate(new_size); }
  std::string name() const override { return "faulty(" + inner_->name() + ")"; }

  /// Operations rejected so far.
  std::uint64_t faults_injected() const { return faults_.load(); }

  /// Heals the backend: subsequent operations succeed.
  void heal();

 private:
  BackendPtr inner_;
  FaultPlan plan_;
  std::atomic<std::int64_t> writes_left_;
  std::atomic<std::int64_t> reads_left_;
  std::atomic<std::uint64_t> faults_{0};
  std::atomic<bool> healed_{false};
};

}  // namespace apio::storage
