// Tests for the virtual-cluster simulator: GPU link model, contention,
// system specs and the epoch simulator's pipeline semantics.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/stats.h"
#include "common/units.h"
#include "model/epoch_model.h"
#include "sim/contention.h"
#include "sim/epoch_sim.h"
#include "sim/gpu_link_model.h"
#include "sim/system_spec.h"

namespace apio::sim {
namespace {

using model::IoMode;

// ---------------------------------------------------------------------------
// GpuLinkModel (Sec. III-B1 micro-benchmark behaviours)

TEST(GpuLinkModelTest, PinnedApproachesTheoreticalPeakForLargeTransfers) {
  auto link = GpuLinkModel::nvlink2();
  const double bw = link.achieved_bandwidth(256ull * kMiB, /*pinned=*/true);
  EXPECT_GT(bw, 0.9 * link.peak_bandwidth());
}

TEST(GpuLinkModelTest, PageableIsSlowerThanPinned) {
  auto link = GpuLinkModel::nvlink2();
  const std::uint64_t bytes = 64ull * kMiB;
  EXPECT_GT(link.achieved_bandwidth(bytes, true),
            1.5 * link.achieved_bandwidth(bytes, false));
}

TEST(GpuLinkModelTest, CostAmortizedAboveTenMegabytes) {
  auto link = GpuLinkModel::nvlink2();
  const double bw10 = link.achieved_bandwidth(10ull * 1000 * 1000, true);
  const double bw100 = link.achieved_bandwidth(100ull * 1000 * 1000, true);
  EXPECT_NEAR(bw100 / bw10, 1.0, 0.20);  // flat above the knee
  const double bw_small = link.achieved_bandwidth(64ull * kKiB, true);
  EXPECT_LT(bw_small, 0.3 * bw10);  // setup dominates small transfers
}

TEST(GpuLinkModelTest, Pcie3SlowerThanNvlink) {
  const std::uint64_t bytes = 64ull * kMiB;
  EXPECT_GT(GpuLinkModel::nvlink2().achieved_bandwidth(bytes, true),
            2.0 * GpuLinkModel::pcie3().achieved_bandwidth(bytes, true));
}

TEST(GpuLinkModelTest, RejectsBadConfig) {
  EXPECT_THROW(GpuLinkModel(0.0, 1.0, 1.0, 0.0), InvalidArgumentError);
  EXPECT_THROW(GpuLinkModel(1.0, 2.0, 1.0, 0.0), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// ContentionModel (Fig. 8 machinery)

TEST(ContentionTest, NoneAlwaysUnity) {
  auto none = ContentionModel::none();
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(none.sample_run_factor(rng), 1.0);
}

TEST(ContentionTest, FactorsBoundedAndVaried) {
  ContentionModel model(0.3, 0.15);
  Rng rng(42);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double f = model.sample_run_factor(rng);
    EXPECT_GT(f, 0.14);
    EXPECT_LE(f, 1.0);
    lo = std::min(lo, f);
    hi = std::max(hi, f);
  }
  EXPECT_LT(lo, 0.8);   // real spread
  EXPECT_GT(hi, 0.95);  // good runs exist
}

TEST(ContentionTest, DeterministicInSeed) {
  ContentionModel model(0.3, 0.15);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(model.sample_run_factor(a), model.sample_run_factor(b));
  }
}

TEST(ContentionTest, RejectsBadParams) {
  EXPECT_THROW(ContentionModel(-0.1, 0.5), InvalidArgumentError);
  EXPECT_THROW(ContentionModel(0.1, 0.0), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// SystemSpec

TEST(SystemSpecTest, PaperLaunchConfigurations) {
  const auto summit = SystemSpec::summit();
  EXPECT_EQ(summit.ranks_per_node, 6);
  EXPECT_TRUE(summit.has_gpus);
  EXPECT_EQ(summit.max_nodes, 4608);

  const auto cori = SystemSpec::cori_haswell();
  EXPECT_EQ(cori.ranks_per_node, 32);
  EXPECT_FALSE(cori.has_gpus);
  EXPECT_EQ(cori.max_nodes, 2388);
}

// ---------------------------------------------------------------------------
// EpochSimulator

RunConfig base_config(IoMode mode, int nodes, std::uint64_t bytes,
                      double compute = 30.0) {
  RunConfig config;
  config.nodes = nodes;
  config.mode = mode;
  config.iterations = 5;
  config.compute_seconds = compute;
  config.bytes_per_epoch = bytes;
  config.io_kind = storage::IoKind::kWrite;
  config.contention_sigma_override = 0.0;  // deterministic unless testing Fig. 8
  return config;
}

TEST(EpochSimTest, SyncEpochBandwidthMatchesPfsModel) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  const int nodes = 16;
  const std::uint64_t bytes = 10ull * kGiB;
  const auto result = simulator.run(base_config(IoMode::kSync, nodes, bytes));
  const double expected =
      spec.pfs.aggregate_bandwidth(bytes, nodes * 6, nodes, storage::IoKind::kWrite);
  ASSERT_EQ(result.epochs.size(), 5u);
  for (const auto& epoch : result.epochs) {
    EXPECT_NEAR(epoch.bandwidth, expected, expected * 1e-9);
    EXPECT_DOUBLE_EQ(epoch.io_blocking_seconds, epoch.io_completion_seconds);
  }
}

TEST(EpochSimTest, AsyncBlockingIsOnlyStagingWhenComputeCovers) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  const int nodes = 8;
  const std::uint64_t bytes = 4ull * kGiB;
  // 30 s compute easily covers the background transfer.
  const auto result = simulator.run(base_config(IoMode::kAsync, nodes, bytes));
  const double staging = spec.staging.transact_seconds(bytes, nodes * 6, nodes);
  for (const auto& epoch : result.epochs) {
    EXPECT_NEAR(epoch.io_blocking_seconds, staging, staging * 1e-9);
    EXPECT_GT(epoch.io_completion_seconds, epoch.io_blocking_seconds);
  }
}

TEST(EpochSimTest, AsyncBandwidthOrdersOfMagnitudeAboveSyncWhenOverlapped) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  const int nodes = 128;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(nodes) * 6 * 32 * kMiB * 8;
  const auto sync = simulator.run(base_config(IoMode::kSync, nodes, bytes));
  const auto async = simulator.run(base_config(IoMode::kAsync, nodes, bytes));
  EXPECT_GT(async.peak_bandwidth(), 5.0 * sync.peak_bandwidth());
}

TEST(EpochSimTest, AsyncWeakScalingIsLinearInNodes) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  const std::uint64_t per_node = 6ull * 256 * kMiB;
  const auto at = [&](int nodes) {
    return simulator
        .run(base_config(IoMode::kAsync, nodes, per_node * static_cast<unsigned>(nodes)))
        .peak_bandwidth();
  };
  const double bw32 = at(32);
  const double bw256 = at(256);
  EXPECT_NEAR(bw256 / bw32, 8.0, 0.5);
}

TEST(EpochSimTest, SyncWeakScalingSaturates) {
  const auto spec = SystemSpec::cori_haswell();
  EpochSimulator simulator(spec);
  const std::uint64_t per_rank = 32ull * kMiB;
  const auto at = [&](int nodes) {
    const std::uint64_t bytes = per_rank * static_cast<unsigned>(nodes) * 32;
    return simulator.run(base_config(IoMode::kSync, nodes, bytes)).peak_bandwidth();
  };
  const double bw8 = at(8);
  const double bw64 = at(64);
  const double bw256 = at(256);
  EXPECT_GT(bw64, 1.5 * bw8);          // still scaling at small node counts
  EXPECT_LT(bw256 / bw64, 1.5);        // saturated past ~32 nodes
  EXPECT_LE(bw256, spec.pfs.params().aggregate_cap * 1.2);
}

TEST(EpochSimTest, BackPressureSurfacesWhenComputeTooShort) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  const int nodes = 4;
  const std::uint64_t bytes = 64ull * kGiB;  // slow background transfers
  auto config = base_config(IoMode::kAsync, nodes, bytes, /*compute=*/0.01);
  config.iterations = 12;
  config.staging_queue_depth = 2;
  const auto result = simulator.run(config);
  const double staging = spec.staging.transact_seconds(bytes, nodes * 6, nodes);
  // Early epochs fill the queue cheaply; steady-state epochs must wait.
  EXPECT_NEAR(result.epochs.front().io_blocking_seconds, staging, staging * 0.01);
  EXPECT_GT(result.epochs.back().io_blocking_seconds, 5.0 * staging);
}

TEST(EpochSimTest, AsyncNeverSlowerThanSyncTotalWhenComputeCovers) {
  const auto spec = SystemSpec::cori_haswell();
  EpochSimulator simulator(spec);
  const std::uint64_t bytes = 32ull * kGiB;
  const auto sync = simulator.run(base_config(IoMode::kSync, 32, bytes));
  const auto async = simulator.run(base_config(IoMode::kAsync, 32, bytes));
  EXPECT_LT(async.total_seconds, sync.total_seconds);
}

TEST(EpochSimTest, PrefetchedReadsFirstEpochBlocksLaterEpochsFly) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  auto config = base_config(IoMode::kAsync, 64, 32ull * kGiB);
  config.io_kind = storage::IoKind::kRead;
  config.prefetch_reads = true;
  const auto result = simulator.run(config);
  ASSERT_GE(result.epochs.size(), 2u);
  EXPECT_FALSE(result.epochs[0].served_from_cache);
  EXPECT_TRUE(result.epochs[1].served_from_cache);
  EXPECT_GT(result.epochs[0].io_blocking_seconds,
            5.0 * result.epochs[1].io_blocking_seconds);
}

TEST(EpochSimTest, GpuResidencyAddsTransferOverhead) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  auto cpu = base_config(IoMode::kAsync, 16, 8ull * kGiB);
  auto gpu = cpu;
  gpu.gpu_resident = true;
  const double cpu_blocking =
      simulator.run(cpu).epochs[0].io_blocking_seconds;
  const double gpu_blocking =
      simulator.run(gpu).epochs[0].io_blocking_seconds;
  EXPECT_GT(gpu_blocking, cpu_blocking);
  // Pageable memory is worse still.
  gpu.pinned_host_memory = false;
  EXPECT_GT(simulator.run(gpu).epochs[0].io_blocking_seconds, gpu_blocking);
}

TEST(EpochSimTest, StagingTierOrderingDramFastestThenSsd) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  auto config = base_config(IoMode::kAsync, 16, 8ull * kGiB);
  config.staging_tier = StagingTier::kDram;
  const double dram = simulator.run(config).epochs[0].io_blocking_seconds;
  config.staging_tier = StagingTier::kNodeLocalSsd;
  const double ssd = simulator.run(config).epochs[0].io_blocking_seconds;
  // DRAM staging (20 GB/s/node) beats the NVMe (2.1 GB/s/node).
  EXPECT_LT(dram, ssd);
  EXPECT_NEAR(ssd, (8.0 * kGiB / 16) / 2.1e9, 0.05);
}

TEST(EpochSimTest, BurstBufferStagingOnCori) {
  const auto spec = SystemSpec::cori_haswell();
  EpochSimulator simulator(spec);
  auto config = base_config(IoMode::kAsync, 32, 32ull * kGiB);
  config.staging_tier = StagingTier::kBurstBuffer;
  const auto bb = simulator.run(config);
  config.staging_tier = StagingTier::kDram;
  const auto dram = simulator.run(config);
  // The BB is shared and slower than node-local DRAM, but the async
  // path still beats the Lustre-bound sync path.
  EXPECT_GT(bb.epochs[0].io_blocking_seconds, dram.epochs[0].io_blocking_seconds);
  config.staging_tier = StagingTier::kDram;
  config.mode = IoMode::kSync;
  const auto sync = simulator.run(config);
  EXPECT_LT(bb.epochs[0].io_blocking_seconds, sync.epochs[0].io_blocking_seconds);
}

TEST(EpochSimTest, UnsupportedStagingTierRejected) {
  EpochSimulator summit(SystemSpec::summit());
  auto config = base_config(IoMode::kAsync, 4, 1ull * kGiB);
  config.staging_tier = StagingTier::kBurstBuffer;  // Summit has no BB
  EXPECT_THROW(summit.run(config), InvalidArgumentError);

  EpochSimulator cori(SystemSpec::cori_haswell());
  config.staging_tier = StagingTier::kNodeLocalSsd;  // Cori nodes are diskless
  EXPECT_THROW(cori.run(config), InvalidArgumentError);
}

TEST(EpochSimTest, GpuOnCoriRejected) {
  EpochSimulator simulator(SystemSpec::cori_haswell());
  auto config = base_config(IoMode::kAsync, 4, 1ull * kGiB);
  config.gpu_resident = true;
  EXPECT_THROW(simulator.run(config), InvalidArgumentError);
}

TEST(EpochSimTest, ContentionMakesSyncVaryButNotAsync) {
  const auto spec = SystemSpec::summit();
  EpochSimulator simulator(spec);
  const std::uint64_t bytes = 24ull * kGiB;

  auto run_with_seed = [&](IoMode mode, std::uint64_t seed) {
    auto config = base_config(mode, 32, bytes);
    config.contention_sigma_override = 0.35;
    config.seed = seed;
    return simulator.run(config).peak_bandwidth();
  };

  RunningStats sync_bw;
  RunningStats async_bw;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sync_bw.add(run_with_seed(IoMode::kSync, seed));
    async_bw.add(run_with_seed(IoMode::kAsync, seed));
  }
  // Fig. 8: async hides full-system variability behind node-local staging.
  EXPECT_GT(sync_bw.cv(), 0.05);
  EXPECT_LT(async_bw.cv(), 0.01);
}

TEST(EpochSimTest, ObserverReceivesOneRecordPerEpoch) {
  class Counter : public vol::IoObserver {
   public:
    void on_io(const vol::IoRecord& record) override {
      ++count;
      last = record;
    }
    int count = 0;
    vol::IoRecord last;
  };
  Counter counter;
  EpochSimulator simulator(SystemSpec::summit());
  auto config = base_config(IoMode::kAsync, 8, 2ull * kGiB);
  config.observer = &counter;
  simulator.run(config);
  EXPECT_EQ(counter.count, 5);
  EXPECT_TRUE(counter.last.async);
  EXPECT_EQ(counter.last.ranks, 48);
  EXPECT_EQ(counter.last.bytes, 2ull * kGiB);
}

TEST(EpochSimTest, RunValidation) {
  EpochSimulator simulator(SystemSpec::summit());
  auto config = base_config(IoMode::kSync, 0, 1);
  EXPECT_THROW(simulator.run(config), InvalidArgumentError);
  config.nodes = 100000;
  EXPECT_THROW(simulator.run(config), InvalidArgumentError);
  config.nodes = 1;
  config.bytes_per_epoch = 0;
  EXPECT_THROW(simulator.run(config), InvalidArgumentError);
}

TEST(EpochSimTest, TotalsAreConsistent) {
  EpochSimulator simulator(SystemSpec::summit());
  const auto config = base_config(IoMode::kSync, 4, 1ull * kGiB, 2.0);
  const auto result = simulator.run(config);
  double expected = 0.0;
  for (const auto& epoch : result.epochs) {
    expected += epoch.compute_seconds + epoch.io_blocking_seconds;
  }
  EXPECT_NEAR(result.total_seconds, expected, 1e-9);
  EXPECT_EQ(result.ranks, 24);
}

}  // namespace
}  // namespace apio::sim
