// Tests for datatype conversion on the I/O path (h5/convert.h and the
// Dataset::write_as / read_as entry points).
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "h5/convert.h"
#include "h5/file.h"
#include "storage/memory_backend.h"

namespace apio::h5 {
namespace {

FilePtr mem_file() {
  return File::create(std::make_shared<storage::MemoryBackend>());
}

TEST(ConvertTest, IdentityIsMemcpy) {
  const std::vector<std::int32_t> in{1, -2, 3};
  std::vector<std::int32_t> out(3);
  convert_elements(Datatype::kInt32, std::as_bytes(std::span<const std::int32_t>(in)),
                   Datatype::kInt32, std::as_writable_bytes(std::span<std::int32_t>(out)),
                   3);
  EXPECT_EQ(out, in);
}

TEST(ConvertTest, WideningIntToDouble) {
  const std::vector<std::int16_t> in{-300, 0, 12345};
  std::vector<double> out(3);
  convert_elements(Datatype::kInt16, std::as_bytes(std::span<const std::int16_t>(in)),
                   Datatype::kFloat64, std::as_writable_bytes(std::span<double>(out)),
                   3);
  EXPECT_DOUBLE_EQ(out[0], -300.0);
  EXPECT_DOUBLE_EQ(out[2], 12345.0);
}

TEST(ConvertTest, NarrowingDoubleToFloat) {
  const std::vector<double> in{1.5, -2.25, 1e10};
  std::vector<float> out(3);
  convert_elements(Datatype::kFloat64, std::as_bytes(std::span<const double>(in)),
                   Datatype::kFloat32, std::as_writable_bytes(std::span<float>(out)),
                   3);
  EXPECT_FLOAT_EQ(out[0], 1.5f);
  EXPECT_FLOAT_EQ(out[1], -2.25f);
  EXPECT_FLOAT_EQ(out[2], 1e10f);
}

TEST(ConvertTest, FloatToIntTruncates) {
  const std::vector<float> in{1.9f, -2.9f, 0.0f};
  std::vector<std::int32_t> out(3);
  convert_elements(Datatype::kFloat32, std::as_bytes(std::span<const float>(in)),
                   Datatype::kInt32,
                   std::as_writable_bytes(std::span<std::int32_t>(out)), 3);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], -2);
}

TEST(ConvertTest, SizeMismatchRejected) {
  const std::vector<float> in{1.0f};
  std::vector<double> out(2);
  EXPECT_THROW(
      convert_elements(Datatype::kFloat32, std::as_bytes(std::span<const float>(in)),
                       Datatype::kFloat64,
                       std::as_writable_bytes(std::span<double>(out)), 2),
      InvalidArgumentError);
}

// Property sweep: every (from, to) pair round-trips small non-negative
// integers exactly (all ten types can represent 0..100).
class ConvertPairTest
    : public ::testing::TestWithParam<std::tuple<Datatype, Datatype>> {};

TEST_P(ConvertPairTest, SmallIntegersSurviveRoundTrip) {
  const auto [from, to] = GetParam();
  const std::uint64_t n = 101;
  // Build source: values 0..100 encoded as `from`.
  std::vector<double> seed(n);
  std::iota(seed.begin(), seed.end(), 0.0);
  std::vector<std::byte> src(n * datatype_size(from));
  convert_elements(Datatype::kFloat64, std::as_bytes(std::span<const double>(seed)),
                   from, src, n);
  // from -> to -> float64 and compare.
  std::vector<std::byte> mid(n * datatype_size(to));
  convert_elements(from, src, to, mid, n);
  std::vector<double> back(n);
  convert_elements(to, mid, Datatype::kFloat64,
                   std::as_writable_bytes(std::span<double>(back)), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(back[i], static_cast<double>(i));
  }
}

constexpr Datatype kAllTypes[] = {
    Datatype::kInt8,  Datatype::kUInt8,  Datatype::kInt16,   Datatype::kUInt16,
    Datatype::kInt32, Datatype::kUInt32, Datatype::kInt64,   Datatype::kUInt64,
    Datatype::kFloat32, Datatype::kFloat64};

INSTANTIATE_TEST_SUITE_P(AllPairs, ConvertPairTest,
                         ::testing::Combine(::testing::ValuesIn(kAllTypes),
                                            ::testing::ValuesIn(kAllTypes)),
                         [](const auto& info) {
                           return datatype_name(std::get<0>(info.param)) + "_to_" +
                                  datatype_name(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Dataset-level conversion

TEST(DatasetConvertTest, WriteDoublesIntoFloat32Dataset) {
  auto file = mem_file();
  auto ds = file->root().create_dataset("d", Datatype::kFloat32, {4});
  const std::vector<double> values{1.5, 2.5, 3.5, 4.5};
  ds.write_as<double>(Selection::all(), values);
  auto stored = ds.read_vector<float>(Selection::all());
  EXPECT_EQ(stored, (std::vector<float>{1.5f, 2.5f, 3.5f, 4.5f}));
}

TEST(DatasetConvertTest, ReadFloat32DatasetAsDoubles) {
  auto file = mem_file();
  auto ds = file->root().create_dataset("d", Datatype::kFloat32, {3});
  const std::vector<float> values{0.5f, 1.0f, -2.0f};
  ds.write<float>(Selection::all(), values);
  auto as_doubles = ds.read_as<double>(Selection::all());
  EXPECT_EQ(as_doubles, (std::vector<double>{0.5, 1.0, -2.0}));
}

TEST(DatasetConvertTest, MatchingTypeUsesDirectPath) {
  auto file = mem_file();
  auto ds = file->root().create_dataset("d", Datatype::kInt64, {2});
  const std::vector<std::int64_t> values{7, 8};
  ds.write_as<std::int64_t>(Selection::all(), values);
  EXPECT_EQ(ds.read_as<std::int64_t>(Selection::all()), values);
}

TEST(DatasetConvertTest, ConversionOnHyperslab) {
  auto file = mem_file();
  auto ds = file->root().create_dataset("d", Datatype::kInt32, {8});
  std::vector<std::int32_t> zeros(8, 0);
  ds.write<std::int32_t>(Selection::all(), zeros);
  const std::vector<double> patch{5.9, 6.9};  // truncates to 5, 6
  ds.write_as<double>(Selection::offsets({2}, {2}), patch);
  auto all = ds.read_vector<std::int32_t>(Selection::all());
  EXPECT_EQ(all[2], 5);
  EXPECT_EQ(all[3], 6);
  EXPECT_EQ(all[4], 0);
}

TEST(DatasetConvertTest, WorksOnChunkedFilteredDatasets) {
  auto file = mem_file();
  auto ds = file->root().create_dataset(
      "d", Datatype::kFloat32, {16},
      DatasetCreateProps::chunked({8}, FilterId::kLz));
  std::vector<double> values(16);
  std::iota(values.begin(), values.end(), 0.25);
  ds.write_as<double>(Selection::all(), values);
  auto back = ds.read_as<double>(Selection::all());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(back[i], static_cast<double>(static_cast<float>(values[i])));
  }
}

}  // namespace
}  // namespace apio::h5
