#include "workloads/castro.h"

#include <cstdio>

#include "common/clock.h"
#include "common/error.h"
#include "workloads/workload_common.h"

namespace apio::workloads {

CastroProxy::CastroProxy(CastroParams params) : params_(std::move(params)) {
  APIO_REQUIRE(params_.domain.size() == 3, "Castro domains are 3-D");
  APIO_REQUIRE(params_.particles_per_cell >= 0, "negative particles per cell");
}

std::string CastroProxy::checkpoint_name(int index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "chk%05d", index);
  return buf;
}

std::uint64_t CastroProxy::checkpoint_bytes(const CastroParams& params) {
  const std::uint64_t cells = h5::num_elements(params.domain);
  const std::uint64_t field_bytes =
      cells * static_cast<std::uint64_t>(params.ncomp) * sizeof(float);
  const std::uint64_t particles =
      cells * static_cast<std::uint64_t>(params.particles_per_cell);
  const std::uint64_t particle_bytes =
      particles * static_cast<std::uint64_t>(params.particle_props) * sizeof(float);
  return field_bytes + particle_bytes;
}

CheckpointRunResult CastroProxy::run(vol::Connector& connector,
                                     pmpi::Communicator& comm) const {
  const int rank = comm.rank();
  const int size = comm.size();
  const auto boxes = decompose_domain(params_.domain, size);
  MultiFab fab(params_.domain, params_.ncomp, {boxes[static_cast<std::size_t>(rank)]});

  // Particle slab of this rank: particles proportional to its cells.
  const std::uint64_t local_particles =
      boxes[static_cast<std::size_t>(rank)].num_cells() *
      static_cast<std::uint64_t>(params_.particles_per_cell);
  const std::uint64_t total_particles = comm.allreduce_sum(local_particles);
  const std::uint64_t particle_offset = comm.exscan_sum(local_particles);

  std::vector<float> particle_buffer(local_particles);
  const std::uint64_t local_bytes =
      fab.local_bytes() + local_particles *
                              static_cast<std::uint64_t>(params_.particle_props) *
                              sizeof(float);

  WallClock clock;
  return run_checkpoint_app(
      connector, comm, params_.schedule, local_bytes,
      [&](int c) {
        const std::string name = checkpoint_name(c);
        MultiFab::create_plotfile(connector, name, params_.domain, params_.ncomp);
        auto g = connector.file()->root().open_group(name).create_group("particles");
        for (int p = 0; p < params_.particle_props; ++p) {
          g.create_dataset("prop" + std::to_string(p), h5::Datatype::kFloat32,
                           h5::Dims{total_particles});
        }
      },
      [&](int c, std::vector<vol::RequestPtr>& outstanding) {
        const double t0 = clock.now();
        const std::string name = checkpoint_name(c);
        double blocking = fab.write_plotfile(connector, name, outstanding);
        if (local_particles > 0) {
          auto g = connector.file()->root().open_group(name).open_group("particles");
          const h5::Selection slab =
              h5::Selection::offsets({particle_offset}, {local_particles});
          for (int p = 0; p < params_.particle_props; ++p) {
            for (std::uint64_t i = 0; i < local_particles; ++i) {
              particle_buffer[i] = particle_value(particle_offset + i, p);
            }
            auto ds = g.open_dataset("prop" + std::to_string(p));
            outstanding.push_back(connector.dataset_write(
                ds, slab, std::as_bytes(std::span<const float>(particle_buffer))));
          }
        }
        blocking = clock.now() - t0;
        return blocking;
      });
}

sim::RunConfig CastroProxy::sim_config(const sim::SystemSpec& spec, int nodes,
                                       model::IoMode mode, const CastroParams& params,
                                       double seconds_per_step) {
  (void)spec;
  sim::RunConfig config;
  config.nodes = nodes;
  config.mode = mode;
  config.iterations = params.schedule.checkpoints;
  config.compute_seconds = seconds_per_step * params.schedule.steps_per_checkpoint;
  config.bytes_per_epoch = checkpoint_bytes(params);
  config.io_kind = storage::IoKind::kWrite;
  return config;
}

}  // namespace apio::workloads
