// Task pools: FIFO work queues in the style of Argobots' ABT_pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "common/debug/lock_rank.h"

namespace apio::tasking {

/// Unit of work executed by an ExecutionStream.
using TaskFn = std::function<void()>;

/// Thread-safe FIFO queue of tasks.  Multiple producers, multiple
/// consumers.  close() releases blocked consumers; after close, push()
/// throws and pop() drains remaining tasks then returns nullopt.
///
/// Close/drain contract (pinned by ConcurrencyTest.PoolCloseRace): a
/// push() racing close() either enqueues fully — its task WILL be
/// drained by consumers — or throws StateError; no task is half
/// accepted or silently dropped.
class Pool {
 public:
  /// Enqueues a task.  Throws StateError if the pool is closed.
  void push(TaskFn task);

  /// Enqueues a task unless the pool is closed; returns false instead of
  /// throwing in that case.  Used by code that schedules follow-up work
  /// from continuations (e.g. retry re-enqueue) and must degrade
  /// gracefully when it races shutdown.
  bool try_push(TaskFn task);

  /// Blocks for the next task.  Returns nullopt when the pool is closed
  /// and drained.
  std::optional<TaskFn> pop();

  /// Non-blocking pop; nullopt when empty (even if not closed).
  std::optional<TaskFn> try_pop();

  /// Marks the pool closed: producers are rejected, consumers drain.
  void close();

  bool closed() const;
  std::size_t size() const;

  /// Tasks accepted by push() over the pool's lifetime.
  std::uint64_t accepted() const;
  /// Tasks handed to consumers by pop()/try_pop() over the lifetime.
  std::uint64_t drained() const;

 private:
  void note_popped_locked();

  mutable debug::RankedMutex<debug::LockRank::kTaskingPool> mutex_;
  std::condition_variable_any cv_;
  std::deque<TaskFn> tasks_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t drained_ = 0;
};

using PoolPtr = std::shared_ptr<Pool>;

}  // namespace apio::tasking
