// Compact textual encoding of h5::Selection used by the unified
// IoRecord stream and the trace CSV format.
//
// Grammar: "all" for the full-extent selection; otherwise
// "start0xstart1:count0xcount1" with optional ":stride:block" suffixes
// (dims joined by 'x').  The alphabet is [0-9x:al], so tokens never
// collide with CSV separators.
#pragma once

#include <string>

#include "h5/dataspace.h"

namespace apio::vol {

std::string selection_to_token(const h5::Selection& selection);

/// Parses a token; throws FormatError on malformed input.  The empty
/// token decodes to Selection::all() (records of path-less operations
/// such as flush carry no selection).
h5::Selection selection_from_token(const std::string& token);

}  // namespace apio::vol
