#include "analysis/passes.h"

#include <algorithm>
#include <deque>
#include <fstream>
#include <ostream>
#include <sstream>

namespace apio::analysis {
namespace {

bool is_sleep_name(const std::string& s) {
  return s == "sleep_for" || s == "sleep_until" || s == "usleep" ||
         s == "nanosleep" || s == "join";
}

bool is_cv_wait_name(const std::string& s) {
  return s == "wait" || s == "wait_for" || s == "wait_until";
}

/// Results a caller must not silently drop (mirrors the [[nodiscard]]
/// annotations on the real APIs; the pass also covers code paths built
/// before the attribute existed).
bool is_must_check_name(const std::string& s) {
  static const std::set<std::string> kSet = {
      "write_v",        "read_v",        "try_push",
      "try_pop",        "backoff_and_retry", "run_with_retry",
      "errors",         "num_errors",    "error_messages",
      "test",           "deadline_exhausted"};
  return kSet.count(s) > 0;
}

struct PassContext {
  const CodeModel& model;
  /// call_targets[f][c] = resolved callee indices of functions[f].calls[c].
  std::vector<std::vector<std::vector<std::size_t>>> call_targets;
  /// may_acquire[f] = ranks function f may acquire, transitively.
  std::vector<std::set<std::string>> may_acquire;

  explicit PassContext(const CodeModel& m) : model(m) {
    const std::size_t count = m.functions.size();
    call_targets.resize(count);
    may_acquire.resize(count);
    for (std::size_t f = 0; f < count; ++f) {
      const Function& fn = m.functions[f];
      call_targets[f].reserve(fn.calls.size());
      for (const CallSite& call : fn.calls) {
        call_targets[f].push_back(m.resolve(call, fn.cls));
      }
      for (const AcquireSite& a : fn.acquires) {
        may_acquire[f].insert(a.rank);
      }
    }
    // Fixpoint: propagate callee acquisitions to callers.
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t f = 0; f < count; ++f) {
        for (const auto& targets : call_targets[f]) {
          for (const std::size_t g : targets) {
            for (const std::string& r : may_acquire[g]) {
              if (may_acquire[f].insert(r).second) changed = true;
            }
          }
        }
      }
    }
  }

  /// BFS parent chains from `start`; parents[g] = (parent fn, call line).
  std::map<std::size_t, std::pair<std::size_t, int>> reach(
      std::size_t start) const {
    std::map<std::size_t, std::pair<std::size_t, int>> parents;
    std::deque<std::size_t> work{start};
    std::set<std::size_t> seen{start};
    while (!work.empty()) {
      const std::size_t f = work.front();
      work.pop_front();
      const Function& fn = model.functions[f];
      for (std::size_t c = 0; c < fn.calls.size(); ++c) {
        for (const std::size_t g : call_targets[f][c]) {
          if (!seen.insert(g).second) continue;
          parents[g] = {f, fn.calls[c].line};
          work.push_back(g);
        }
      }
    }
    return parents;
  }

  /// Witness chain root -> ... -> g using `parents` from reach(root).
  std::vector<WitnessStep> chain(
      std::size_t root, std::size_t g,
      const std::map<std::size_t, std::pair<std::size_t, int>>& parents) const {
    std::vector<std::size_t> order{g};
    std::vector<int> lines{0};
    std::size_t cur = g;
    while (cur != root) {
      auto it = parents.find(cur);
      if (it == parents.end()) break;
      lines.push_back(it->second.second);
      cur = it->second.first;
      order.push_back(cur);
      if (order.size() > 64) break;  // cycle guard
    }
    std::reverse(order.begin(), order.end());
    std::reverse(lines.begin(), lines.end());
    std::vector<WitnessStep> steps;
    for (std::size_t k = 0; k < order.size(); ++k) {
      const Function& fn = model.functions[order[k]];
      WitnessStep step;
      step.function = fn.qualified;
      step.file = fn.file;
      // lines[k] is where order[k] calls order[k+1] (lines was built
      // innermost-first and reversed alongside order).
      step.line = k + 1 < order.size() ? lines[k] : fn.line;
      step.note = k + 1 < order.size()
                      ? "calls " + model.functions[order[k + 1]].name
                      : "";
      steps.push_back(std::move(step));
    }
    return steps;
  }
};

std::string rank_label(const CodeModel& m, const std::string& rank) {
  const int v = m.ranks.rank_of(rank);
  return rank + " (rank " + std::to_string(v) + ")";
}

void pass_lock_rank(const PassContext& ctx, std::vector<Finding>& out) {
  const CodeModel& m = ctx.model;
  std::set<std::string> seen;
  for (std::size_t f = 0; f < m.functions.size(); ++f) {
    const Function& fn = m.functions[f];
    // Direct: an acquire site with an equal-or-higher rank already held.
    for (const AcquireSite& a : fn.acquires) {
      const int av = m.ranks.rank_of(a.rank);
      if (av < 0) continue;
      for (const std::string& h : a.held_before) {
        const int hv = m.ranks.rank_of(h);
        if (hv < 0 || hv < av) continue;
        Finding fd;
        fd.rule = kRuleLockRank;
        fd.file = fn.file;
        fd.line = a.line;
        fd.function = fn.qualified;
        fd.message = (h == a.rank ? "may re-acquire " : "acquires ") +
                     rank_label(m, a.rank) + " while holding " +
                     rank_label(m, h) +
                     "; the declared order requires strictly increasing ranks";
        fd.key = std::string(kRuleLockRank) + "|" + fn.qualified + "|" + h +
                 ">" + a.rank + "|direct";
        fd.witness.push_back(
            {fn.qualified, fn.file, a.line, "acquires " + a.rank});
        if (seen.insert(fd.key).second) out.push_back(std::move(fd));
      }
    }
    // Transitive: a callee may acquire a rank <= one held at the call.
    for (std::size_t c = 0; c < fn.calls.size(); ++c) {
      const CallSite& call = fn.calls[c];
      if (call.held.empty()) continue;
      for (const std::size_t g : ctx.call_targets[f][c]) {
        for (const std::string& r : ctx.may_acquire[g]) {
          const int rv = m.ranks.rank_of(r);
          if (rv < 0) continue;
          for (const std::string& h : call.held) {
            const int hv = m.ranks.rank_of(h);
            if (hv < 0 || hv < rv) continue;
            const Function& callee = m.functions[g];
            Finding fd;
            fd.rule = kRuleLockRank;
            fd.file = fn.file;
            fd.line = call.line;
            fd.function = fn.qualified;
            fd.message = "call to " + callee.qualified + " may acquire " +
                         rank_label(m, r) + " while " + rank_label(m, h) +
                         " is held";
            fd.key = std::string(kRuleLockRank) + "|" + fn.qualified + "|" +
                     h + ">" + r + "|" + callee.qualified;
            if (!seen.insert(fd.key).second) continue;
            // Witness: this call site, then the path inside the callee
            // down to a function that directly acquires r.
            fd.witness.push_back({fn.qualified, fn.file, call.line,
                                  "calls " + callee.name + " holding " + h});
            const auto parents = ctx.reach(g);
            std::size_t target = g;
            bool found = false;
            auto acquires_r = [&](std::size_t idx) {
              for (const AcquireSite& a : m.functions[idx].acquires) {
                if (a.rank == r) return true;
              }
              return false;
            };
            if (acquires_r(g)) {
              found = true;
            } else {
              for (const auto& [idx, _] : parents) {
                if (acquires_r(idx)) {
                  target = idx;
                  found = true;
                  break;
                }
              }
            }
            if (found) {
              auto steps = ctx.chain(g, target, parents);
              for (auto& s : steps) {
                if (s.note.empty()) {
                  for (const AcquireSite& a : m.functions[target].acquires) {
                    if (a.rank == r) {
                      s.line = a.line;
                      break;
                    }
                  }
                  s.note = "acquires " + r;
                }
                fd.witness.push_back(std::move(s));
              }
            }
            out.push_back(std::move(fd));
          }
        }
      }
    }
  }
}

void pass_thread_context(const PassContext& ctx, std::vector<Finding>& out) {
  const CodeModel& m = ctx.model;
  std::set<std::string> seen;
  for (std::size_t root = 0; root < m.functions.size(); ++root) {
    if (!m.functions[root].asserts_stream) continue;
    const Function& rfn = m.functions[root];
    const auto parents = ctx.reach(root);
    auto visit = [&](std::size_t g) {
      const Function& fn = m.functions[g];
      if (g != root && fn.asserts_rank) {
        Finding fd;
        fd.rule = kRuleThreadContext;
        fd.file = fn.file;
        fd.line = fn.assert_rank_line;
        fd.function = fn.qualified;
        fd.message = fn.qualified +
                     " asserts rank context but is reachable from stream "
                     "context " +
                     rfn.qualified;
        fd.key = std::string(kRuleThreadContext) + "|" + rfn.qualified + "|" +
                 fn.qualified + "|rank-context";
        if (seen.insert(fd.key).second) {
          fd.witness = ctx.chain(root, g, parents);
          if (!fd.witness.empty()) {
            fd.witness.back().line = fn.assert_rank_line;
            fd.witness.back().note = "asserts rank context";
          }
          out.push_back(std::move(fd));
        }
      }
      for (const CallSite& call : fn.calls) {
        const bool sleeps = is_sleep_name(call.name);
        const bool cv_wait = is_cv_wait_name(call.name) &&
                             !call.receiver.empty() &&
                             m.cv_names.count(call.receiver) > 0;
        if (!sleeps && !cv_wait) continue;
        Finding fd;
        fd.rule = kRuleThreadContext;
        fd.file = fn.file;
        fd.line = call.line;
        fd.function = fn.qualified;
        fd.message = "blocking " + call.name +
                     (cv_wait ? " on " + call.receiver : "") +
                     " reachable from stream context " + rfn.qualified;
        fd.key = std::string(kRuleThreadContext) + "|" + rfn.qualified + "|" +
                 fn.qualified + "|" + call.name;
        if (!seen.insert(fd.key).second) continue;
        fd.witness = ctx.chain(root, g, parents);
        if (!fd.witness.empty()) {
          fd.witness.back().line = call.line;
          fd.witness.back().note = "blocks in " + call.name;
        }
        out.push_back(std::move(fd));
      }
    };
    visit(root);
    for (const auto& [g, _] : parents) visit(g);
  }
}

void pass_unchecked_outcome(const PassContext& ctx, std::vector<Finding>& out) {
  const CodeModel& m = ctx.model;
  std::map<std::string, int> ordinal;
  for (const Function& fn : m.functions) {
    for (const CallSite& call : fn.calls) {
      if (!call.stmt_discard || !is_must_check_name(call.name)) continue;
      Finding fd;
      fd.rule = kRuleUncheckedOutcome;
      fd.file = fn.file;
      fd.line = call.line;
      fd.function = fn.qualified;
      fd.message = "result of " + call.name +
                   "() is discarded; check it, or waive with a comment";
      std::string key = std::string(kRuleUncheckedOutcome) + "|" +
                        fn.qualified + "|" + call.name;
      const int count = ordinal[key]++;
      if (count > 0) key += "|#" + std::to_string(count + 1);
      fd.key = std::move(key);
      fd.witness.push_back({fn.qualified, fn.file, call.line,
                            "discards result of " + call.name});
      out.push_back(std::move(fd));
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void finding_json(const Finding& f, std::ostringstream& os,
                  const char* indent) {
  os << indent << "{\"rule\": \"" << json_escape(f.rule) << "\", \"file\": \""
     << json_escape(f.file) << "\", \"line\": " << f.line
     << ", \"function\": \"" << json_escape(f.function)
     << "\", \"message\": \"" << json_escape(f.message) << "\", \"key\": \""
     << json_escape(f.key) << "\", \"witness\": [";
  for (std::size_t i = 0; i < f.witness.size(); ++i) {
    const WitnessStep& w = f.witness[i];
    if (i > 0) os << ", ";
    os << "{\"function\": \"" << json_escape(w.function) << "\", \"file\": \""
       << json_escape(w.file) << "\", \"line\": " << w.line
       << ", \"note\": \"" << json_escape(w.note) << "\"}";
  }
  os << "]}";
}

}  // namespace

Analysis analyze(const CodeModel& model, const std::set<std::string>& baseline) {
  PassContext ctx(model);
  std::vector<Finding> raw;
  pass_lock_rank(ctx, raw);
  pass_thread_context(ctx, raw);
  pass_unchecked_outcome(ctx, raw);

  Analysis result;
  // (file, line, rule) of waivers that suppressed something.
  std::set<std::tuple<std::string, int, std::string>> used;
  for (Finding& f : raw) {
    const SourceFile* sf = model.file_of(f.file);
    if (sf != nullptr && sf->line_waived(static_cast<std::size_t>(f.line),
                                         f.rule)) {
      used.insert({f.file, f.line, f.rule});
      continue;  // waived
    }
    if (baseline.count(f.key) > 0) {
      result.baselined.push_back(std::move(f));
    } else {
      result.findings.push_back(std::move(f));
    }
  }

  // Waivers naming our rules that suppressed nothing are stale.
  static const char* kRules[] = {kRuleLockRank, kRuleThreadContext,
                                 kRuleUncheckedOutcome};
  for (const SourceFile& sf : model.files) {
    for (std::size_t li = 0; li < sf.raw.size(); ++li) {
      for (const char* rule : kRules) {
        if (!waived(sf.raw[li], rule)) continue;
        const int line = static_cast<int>(li) + 1;
        if (used.count({sf.rel, line, rule}) == 0) {
          result.stale_waivers.push_back({sf.rel, line, rule});
        }
      }
    }
  }

  auto by_location = [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.key) <
           std::tie(b.file, b.line, b.rule, b.key);
  };
  std::sort(result.findings.begin(), result.findings.end(), by_location);
  std::sort(result.baselined.begin(), result.baselined.end(), by_location);
  return result;
}

void print_text(const Analysis& analysis, std::ostream& os) {
  for (const Finding& f : analysis.findings) {
    os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
       << "\n";
    for (std::size_t i = 0; i < f.witness.size(); ++i) {
      const WitnessStep& w = f.witness[i];
      os << "    #" << i << " " << w.function << " (" << w.file << ":"
         << w.line << ")";
      if (!w.note.empty()) os << " " << w.note;
      os << "\n";
    }
  }
  for (const StaleWaiver& s : analysis.stale_waivers) {
    os << s.file << ":" << s.line << ": [stale-waiver] allow(" << s.rule
       << ") matches no " << s.rule << " finding\n";
  }
  if (analysis.clean()) {
    os << "apio_analyze: clean";
    if (!analysis.baselined.empty()) {
      os << " (" << analysis.baselined.size() << " baselined)";
    }
    os << "\n";
  } else {
    os << "apio_analyze: " << analysis.findings.size() << " finding(s), "
       << analysis.stale_waivers.size() << " stale waiver(s)";
    if (!analysis.baselined.empty()) {
      os << ", " << analysis.baselined.size() << " baselined";
    }
    os << "\n";
  }
}

std::string to_json(const Analysis& analysis) {
  std::ostringstream os;
  os << "{\n  \"tool\": \"apio_analyze\",\n  \"version\": 1,\n"
     << "  \"findings\": [\n";
  for (std::size_t i = 0; i < analysis.findings.size(); ++i) {
    if (i > 0) os << ",\n";
    finding_json(analysis.findings[i], os, "    ");
  }
  os << "\n  ],\n  \"baselined\": " << analysis.baselined.size()
     << ",\n  \"stale_waivers\": [\n";
  for (std::size_t i = 0; i < analysis.stale_waivers.size(); ++i) {
    const StaleWaiver& s = analysis.stale_waivers[i];
    if (i > 0) os << ",\n";
    os << "    {\"file\": \"" << json_escape(s.file)
       << "\", \"line\": " << s.line << ", \"rule\": \""
       << json_escape(s.rule) << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::string baseline_json(const Analysis& analysis) {
  std::set<std::string> keys;
  for (const Finding& f : analysis.findings) keys.insert(f.key);
  for (const Finding& f : analysis.baselined) keys.insert(f.key);
  std::ostringstream os;
  os << "{\n  \"version\": 1,\n  \"findings\": [\n";
  std::size_t i = 0;
  for (const std::string& k : keys) {
    if (i++ > 0) os << ",\n";
    os << "    \"" << json_escape(k) << "\"";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool read_baseline(const std::filesystem::path& path,
                   std::set<std::string>& keys, std::string& err) {
  std::ifstream in(path);
  if (!in) {
    err = "cannot open " + path.string();
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::size_t anchor = text.find("\"findings\"");
  if (anchor == std::string::npos) {
    err = "no \"findings\" array in " + path.string();
    return false;
  }
  const std::size_t open = text.find('[', anchor);
  if (open == std::string::npos) {
    err = "malformed baseline " + path.string();
    return false;
  }
  std::size_t i = open + 1;
  while (i < text.size() && text[i] != ']') {
    if (text[i] == '"') {
      std::string cur;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) ++i;
        cur += text[i++];
      }
      if (i >= text.size()) {
        err = "unterminated string in " + path.string();
        return false;
      }
      ++i;  // closing quote
      keys.insert(cur);
    } else {
      ++i;
    }
  }
  return true;
}

}  // namespace apio::analysis
