#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/units.h"

namespace apio::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<int> g_next_slot{0};

thread_local int t_shard = -1;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

int thread_shard() {
  if (t_shard < 0) {
    t_shard = g_next_slot.fetch_add(1, std::memory_order_relaxed) %
              static_cast<int>(kShards);
  }
  return t_shard;
}

void set_thread_shard(int shard) {
  t_shard = shard >= 0 ? shard % static_cast<int>(kShards) : -1;
}

// ---------------------------------------------------------------------------
// Counter

std::uint64_t Counter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s.value.load(std::memory_order_relaxed);
  return sum;
}

std::array<std::uint64_t, kShards> Counter::per_shard() const noexcept {
  std::array<std::uint64_t, kShards> out{};
  for (std::size_t i = 0; i < kShards; ++i) {
    out[i] = shards_[i].value.load(std::memory_order_relaxed);
  }
  return out;
}

void Counter::reset() noexcept {
  for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge

void Gauge::note_watermark() noexcept {
  const std::int64_t v = value_.load(std::memory_order_relaxed);
  std::int64_t seen = high_.load(std::memory_order_relaxed);
  while (v > seen &&
         !high_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() noexcept {
  value_.store(0, std::memory_order_relaxed);
  high_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

std::size_t Histogram::bucket_index(double seconds) noexcept {
  if (!(seconds > 0.0)) return 0;
  const double nanos = seconds * 1e9;
  if (nanos < 1.0) return 0;
  const int b = static_cast<int>(std::floor(std::log2(nanos)));
  if (b < 0) return 0;
  return std::min<std::size_t>(static_cast<std::size_t>(b), kBuckets - 1);
}

double Histogram::bucket_lower_seconds(std::size_t i) {
  return std::ldexp(1.0, static_cast<int>(i)) * 1e-9;
}

void Histogram::record_seconds(double seconds) noexcept {
  buckets_[bucket_index(seconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double nanos = seconds > 0.0 ? seconds * 1e9 : 0.0;
  sum_nanos_.fetch_add(static_cast<std::uint64_t>(nanos),
                       std::memory_order_relaxed);
}

double Histogram::sum_seconds() const noexcept {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
}

std::array<std::uint64_t, Histogram::kBuckets> Histogram::buckets() const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshot

double HistogramSnapshot::quantile_seconds(double q) const {
  if (count == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample, 1-based ("nearest-rank" definition).
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] < target) {
      cumulative += buckets[i];
      continue;
    }
    // Interpolate inside bucket i.  Bucket 0 additionally holds
    // sub-nanosecond values, so its lower edge is taken as 0.
    const double lower = i == 0 ? 0.0 : Histogram::bucket_lower_seconds(i);
    const double upper = Histogram::bucket_lower_seconds(i + 1);
    const double within = static_cast<double>(target - cumulative) /
                          static_cast<double>(buckets[i]);
    return lower + (upper - lower) * within;
  }
  return Histogram::bucket_lower_seconds(buckets.size());
}

std::uint64_t RegistrySnapshot::counter_total(const std::string& name) const {
  auto it = counters.find(name);
  return it != counters.end() ? it->second.total : 0;
}

std::string RegistrySnapshot::summary() const {
  std::ostringstream os;
  os << "metrics registry snapshot\n";
  if (!counters.empty()) {
    os << "  counters:\n";
    for (const auto& [name, c] : counters) {
      os << "    " << name << " = " << c.total;
      if (name.find("bytes") != std::string::npos) {
        os << " (" << format_bytes(c.total) << ")";
      }
      os << '\n';
    }
  }
  if (!gauges.empty()) {
    os << "  gauges:\n";
    for (const auto& [name, g] : gauges) {
      os << "    " << name << " = " << g.value
         << " (high watermark " << g.high_watermark << ")\n";
    }
  }
  if (!histograms.empty()) {
    os << "  latency histograms (log2 ns buckets):\n";
    for (const auto& [name, h] : histograms) {
      os << "    " << name << ": n=" << h.count << " mean="
         << format_seconds(h.mean_seconds()) << " p50="
         << format_seconds(h.p50_seconds()) << " p95="
         << format_seconds(h.p95_seconds()) << " p99="
         << format_seconds(h.p99_seconds()) << " total="
         << format_seconds(h.sum_seconds) << '\n';
      for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        if (h.buckets[i] == 0) continue;
        os << "      [" << format_seconds(Histogram::bucket_lower_seconds(i))
           << ", " << format_seconds(Histogram::bucket_lower_seconds(i + 1))
           << "): " << h.buckets[i] << '\n';
      }
    }
  }
  return os.str();
}

std::string RegistrySnapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"total\":" << c.total
       << ",\"per_shard\":[";
    for (std::size_t i = 0; i < c.per_shard.size(); ++i) {
      if (i > 0) os << ',';
      os << c.per_shard[i];
    }
    os << "]}";
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"value\":" << g.value
       << ",\"high_watermark\":" << g.high_watermark << '}';
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << h.count
       << ",\"sum_seconds\":" << h.sum_seconds
       << ",\"p50_seconds\":" << h.p50_seconds()
       << ",\"p95_seconds\":" << h.p95_seconds()
       << ",\"p99_seconds\":" << h.p99_seconds() << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ',';
      os << h.buckets[i];
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) {
    CounterSnapshot cs;
    cs.total = c->total();
    cs.per_shard = c->per_shard();
    snap.counters.emplace(name, cs);
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace(name, GaugeSnapshot{g->value(), g->high_watermark()});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum_seconds = h->sum_seconds();
    hs.buckets = h->buckets();
    snap.histograms.emplace(name, hs);
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace apio::obs
