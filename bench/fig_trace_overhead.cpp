// fig_trace_overhead: the causal-tracing cost gate.
//
// The old gate differenced two end-to-end wall times (tracing off vs
// on) and failed when the delta exceeded 2% — but a 2% delta on a
// ~0.1 s workload is inside scheduler noise, so the gate tripped on
// roughly one run in three with no regression present.  The gate now
// separates MEASUREMENT from JUDGEMENT:
//
//   1. Work proxy (the hard 2% gate): the per-request tracing cost is
//      measured directly — an amplified calibration loop performs only
//      the tracing work the async write path does per request (mint,
//      bind, two phase records, complete; 1-in-16 sampling), min-of-N
//      over repetitions — and is compared against the workload's
//      MODELLED duration (ThrottledBackend arithmetic: kOps x (latency
//      + bytes/bandwidth), deterministic).  The noisy quantity is a
//      tight per-op cost amplified over 100k iterations, not a 2%
//      difference of two ~equal wall times.
//   2. Wall sanity (generous one-sided bound): the end-to-end runs
//      still execute, min-of-N each, and fail only past +15% — a
//      catastrophic, not statistical, threshold.
//
// A deliberate tracing slowdown still trips the gate: run with
// APIO_TRACE_INJECT_SPAN_DELAY_US=20 (TraceCollector busy-waits that
// long on every enabled start_trace) and the proxy overhead crosses
// the budget by >2x.  ci/check.sh exercises exactly that.
//
// Exported for apio_bench_compare drift tracking: the run-level wall
// times as "wall" values (generous tolerance) and the started and
// sampled trace counts as "det" values so the sampling arithmetic
// cannot silently change.  The per-op cost itself is printed but NOT
// exported — a wall measurement of ~50 ns doubles on a loaded machine,
// which would re-introduce the baseline-diff flake.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "obs/record.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "storage/memory_backend.h"
#include "storage/throttled_backend.h"
#include "vol/async_connector.h"

using namespace apio;

namespace {

constexpr int kOps = 256;
constexpr std::uint64_t kOpBytes = 64 * kKiB;
constexpr int kReps = 5;
constexpr int kCalibrationOps = 100000;
constexpr std::uint64_t kSamplingPeriod = 16;
constexpr double kOverheadBudgetPct = 2.0;   // hard gate, work proxy
constexpr double kWallBudgetPct = 15.0;      // generous one-sided sanity

storage::ThrottleParams pfs_throttle() {
  storage::ThrottleParams throttle;
  throttle.bandwidth = 256.0 * kMiB;
  throttle.latency = 2e-4;
  return throttle;
}

/// The workload's duration per the PFS timing model — deterministic
/// arithmetic, the denominator the 2% budget is taken against.
double modelled_workload_seconds() {
  const storage::ThrottleParams throttle = pfs_throttle();
  return kOps * (throttle.latency +
                 static_cast<double>(kOpBytes) / throttle.bandwidth);
}

/// One full workload run: fresh throttled PFS, fresh connector, kOps
/// staged writes, drain.  Returns the end-to-end wall time.
double run_once() {
  auto backend = std::make_shared<storage::ThrottledBackend>(
      std::make_shared<storage::MemoryBackend>(), pfs_throttle());
  auto file = h5::File::create(backend);
  auto ds = file->root().create_dataset(
      "d", h5::Datatype::kUInt8, {static_cast<std::uint64_t>(kOps) * kOpBytes});
  vol::AsyncConnector connector(file);

  const std::vector<std::byte> payload(kOpBytes, std::byte{0x5A});
  const double t0 = obs::steady_seconds();
  for (int i = 0; i < kOps; ++i) {
    connector.dataset_write(
        ds,
        h5::Selection::offsets({static_cast<std::uint64_t>(i) * kOpBytes},
                               {kOpBytes}),
        payload);
  }
  connector.wait_all();
  const double elapsed = obs::steady_seconds() - t0;
  connector.close();
  return elapsed;
}

double min_of_reps(int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const double elapsed = run_once();
    std::printf("    rep %d: %.4f s\n", r + 1, elapsed);
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Per-request tracing cost: kCalibrationOps iterations of exactly the
/// tracing work one async write performs (mint a sampled-1-in-16
/// context, bind it, record two phases, complete), no workload around
/// it.  The loop body with tracing enabled IS the cost being gated;
/// amplification over 100k iterations puts the measured quantity far
/// above timer and scheduler noise, and min-of-N removes the tail.
double tracing_cost_per_op_seconds() {
  auto& collector = obs::trace::TraceCollector::instance();
  double best = 0.0;
  for (int r = 0; r < kReps; ++r) {
    collector.clear();
    const double t0 = obs::steady_seconds();
    for (int i = 0; i < kCalibrationOps; ++i) {
      auto ctx = collector.start_trace();
      {
        obs::trace::ScopedTraceContext bind(ctx);
        obs::trace::record_phase(ctx, obs::trace::Phase::kSubmit, t0, 0.0,
                                 kOpBytes);
        obs::trace::record_phase(ctx, obs::trace::Phase::kBackend, t0, 0.0,
                                 kOpBytes);
      }
      collector.complete(ctx, obs::IoOp::kWrite, "bench", kOpBytes, false, t0,
                         t0);
    }
    const double per_op =
        (obs::steady_seconds() - t0) / static_cast<double>(kCalibrationOps);
    std::printf("    rep %d: %.0f ns/op\n", r + 1, per_op * 1e9);
    if (r == 0 || per_op < best) best = per_op;
  }
  collector.clear();
  return best;
}

}  // namespace

int main() {
  bench::banner("fig_trace_overhead — causal tracing cost on the async path",
                "per-request tracing work (min-of-5, 100k-op loop) vs the "
                "modelled 256 x 64 KiB workload; wall runs as sanity bound");

  auto& collector = obs::trace::TraceCollector::instance();
  collector.clear();
  collector.set_sampling_period(kSamplingPeriod);

  // --- work proxy: measured per-op tracing cost vs modelled time ----
  collector.set_enabled(true);
  std::printf("  tracing work per request (1-in-%llu sampling):\n",
              static_cast<unsigned long long>(kSamplingPeriod));
  const double cost_per_op = tracing_cost_per_op_seconds();
  collector.set_enabled(false);

  const double modelled = modelled_workload_seconds();
  const double proxy_pct =
      100.0 * (cost_per_op * kOps) / modelled;
  std::printf("  proxy: %.0f ns/op x %d ops = %.3f ms over a %.1f ms "
              "modelled workload = %.3f%%\n",
              cost_per_op * 1e9, kOps, cost_per_op * kOps * 1e3,
              modelled * 1e3, proxy_pct);

  // --- wall sanity: end-to-end min-of-N, generous one-sided bound ---
  collector.clear();
  collector.set_enabled(false);
  std::printf("  tracing off:\n");
  const double off = min_of_reps(kReps);

  collector.set_enabled(true);
  std::printf("  tracing on (1-in-%llu):\n",
              static_cast<unsigned long long>(kSamplingPeriod));
  const double on = min_of_reps(kReps);
  collector.set_enabled(false);

  const auto watermark = collector.watermark();
  const double sampled = static_cast<double>(watermark.sampled);
  const double wall_pct = 100.0 * (on - off) / off;
  std::printf("\n  off %.4f s   on %.4f s   wall delta %+.2f%%   "
              "(%llu traces started, %llu sampled)\n",
              off, on, wall_pct,
              static_cast<unsigned long long>(watermark.started),
              static_cast<unsigned long long>(watermark.sampled));

  bool ok = true;
  if (proxy_pct > kOverheadBudgetPct) {
    std::printf("  FAIL: tracing work %.3f%% of the modelled workload "
                "exceeds the %.1f%% budget\n",
                proxy_pct, kOverheadBudgetPct);
    ok = false;
  } else {
    std::printf("  PASS: tracing work %.3f%% <= %.1f%% budget\n", proxy_pct,
                kOverheadBudgetPct);
  }
  if (wall_pct > kWallBudgetPct) {
    std::printf("  FAIL: wall delta %.2f%% exceeds the generous %.1f%% "
                "sanity bound\n",
                wall_pct, kWallBudgetPct);
    ok = false;
  } else {
    std::printf("  PASS: wall delta %.2f%% within the %.1f%% sanity bound "
                "(one-sided; negative deltas are noise)\n",
                wall_pct, kWallBudgetPct);
  }
  // Sampling arithmetic gates exactly: kReps enabled runs x kOps
  // requests, every 16th sampled (counter-based, no randomness).
  const auto expect_started = static_cast<std::uint64_t>(kReps) * kOps;
  if (watermark.started != expect_started ||
      watermark.sampled != expect_started / kSamplingPeriod) {
    std::printf("  FAIL: expected %llu traces started / %llu sampled, saw "
                "%llu / %llu\n",
                static_cast<unsigned long long>(expect_started),
                static_cast<unsigned long long>(expect_started /
                                                kSamplingPeriod),
                static_cast<unsigned long long>(watermark.started),
                static_cast<unsigned long long>(watermark.sampled));
    ok = false;
  }

  // trace_cost_per_op_ns is deliberately NOT exported: it is a wall
  // measurement of a ~50 ns operation and doubles under a loaded
  // machine (e.g. full-parallel ctest), which would re-introduce the
  // exact baseline-diff flake this bench was rebuilt to remove.  It
  // feeds the deterministic proxy gate above and is printed for
  // humans; only stable run-level walls and exact counts are diffed.
  const std::vector<bench::BenchValue> values = {
      {"elapsed_off_seconds", off, "s", "wall"},
      {"elapsed_on_seconds", on, "s", "wall"},
      {"started_traces", static_cast<double>(watermark.started), "count",
       "det"},
      {"sampled_traces", sampled, "count", "det"},
  };
  const int status =
      bench::record_bench_metrics("fig_trace_overhead", "async_256x64KiB",
                                  values);
  return ok ? status : 1;
}
