#include "storage/memory_backend.h"

#include <cstring>

#include "common/debug/invariant.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "storage/obs_metrics.h"

namespace apio::storage {

std::uint64_t MemoryBackend::size() const {
  std::lock_guard lock(mutex_);
  return data_.size();
}

void MemoryBackend::read(std::uint64_t offset, std::span<std::byte> out) {
  APIO_INVARIANT(offset + out.size() >= offset, "read range overflows offset space");
  obs::TimedOp op("storage.read", obs::Category::kStorage, storage_read_hist(),
                  &storage_bytes_read(), out.size());
  std::lock_guard lock(mutex_);
  if (offset + out.size() > data_.size()) {
    throw IoError("memory backend: read past end of object (offset " +
                  std::to_string(offset) + " + " + std::to_string(out.size()) +
                  " > " + std::to_string(data_.size()) + ")");
  }
  std::memcpy(out.data(), data_.data() + offset, out.size());
  count_read(out.size());
}

void MemoryBackend::write(std::uint64_t offset, std::span<const std::byte> data) {
  APIO_INVARIANT(offset + data.size() >= offset, "write range overflows offset space");
  obs::TimedOp op("storage.write", obs::Category::kStorage, storage_write_hist(),
                  &storage_bytes_written(), data.size());
  std::lock_guard lock(mutex_);
  const std::uint64_t end = offset + data.size();
  if (end > data_.size()) data_.resize(end);
  std::memcpy(data_.data() + offset, data.data(), data.size());
  count_write(data.size());
}

void MemoryBackend::flush() { count_flush(); }

void MemoryBackend::truncate(std::uint64_t new_size) {
  std::lock_guard lock(mutex_);
  data_.resize(new_size);
}

}  // namespace apio::storage
