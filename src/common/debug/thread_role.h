// Thread-role tagging: who is allowed to run what.
//
// apio has three kinds of threads with different contracts:
//   * application threads — issue VOL calls, may block on requests;
//   * execution streams (tasking) — drain task pools; they must never
//     block on work scheduled behind them (self-deadlock) and are the
//     only threads that run staged I/O task bodies;
//   * pmpi rank threads — drive SPMD bodies; collectives must be called
//     by the thread that owns the communicator's rank, and never by an
//     execution stream (a stream parked in a barrier starves its pool).
//
// ScopedThreadRole tags the current thread; the APIO_ASSERT_ON_* macros
// make the contracts fail loudly at the call site.  Like the lock-rank
// checker, everything compiles out without APIO_DEBUG_CHECKS.
#pragma once

#include <source_location>

namespace apio::debug {

enum class ThreadRole : int {
  kUnassigned = 0,  ///< plain application thread (default)
  kStream = 1,      ///< tasking execution stream worker
  kPmpiRank = 2,    ///< pmpi SPMD rank thread
};

const char* thread_role_name(ThreadRole role);

/// Current thread's role (kUnassigned unless inside a ScopedThreadRole).
ThreadRole current_thread_role();

/// Role-specific id: the pmpi rank for kPmpiRank threads, -1 otherwise.
int current_thread_role_id();

/// Opaque owner of the id (e.g. the pmpi World the rank belongs to);
/// nullptr when no role is set.
const void* current_thread_role_domain();

/// RAII role tag.  Nests: the destructor restores the previous role, so
/// e.g. a pmpi rank thread that constructs a nested SPMD region keeps a
/// consistent tag stack.
class ScopedThreadRole {
 public:
  explicit ScopedThreadRole(ThreadRole role, int id = -1,
                            const void* domain = nullptr);
  ~ScopedThreadRole();

  ScopedThreadRole(const ScopedThreadRole&) = delete;
  ScopedThreadRole& operator=(const ScopedThreadRole&) = delete;

 private:
  ThreadRole prev_role_;
  int prev_id_;
  const void* prev_domain_;
};

namespace detail {
/// Aborts unless the current thread is an execution stream.
void assert_on_stream(std::source_location loc);
/// Aborts when called from an execution stream, or from a pmpi rank
/// thread tagged for the same `domain` whose rank differs from `rank`.
/// Untagged (application) threads pass — tests drive communicators from
/// threads they manage — and so do rank threads acting on another
/// domain (split() sub-communicators are owned by parent-world ranks).
void assert_on_rank(const void* domain, int rank, std::source_location loc);
}  // namespace detail

}  // namespace apio::debug

#if defined(APIO_DEBUG_CHECKS)

/// The enclosing code must run on a tasking execution stream.
#define APIO_ASSERT_ON_STREAM() \
  ::apio::debug::detail::assert_on_stream(std::source_location::current())

/// The enclosing code must run on the thread owning pmpi rank `rank` of
/// `domain` (or an untagged thread the caller manages itself) — never a
/// stream.
#define APIO_ASSERT_ON_RANK(domain, rank)                   \
  ::apio::debug::detail::assert_on_rank((domain), (rank),   \
                                        std::source_location::current())

#else

#define APIO_ASSERT_ON_STREAM() \
  do {                          \
  } while (false)
#define APIO_ASSERT_ON_RANK(domain, rank) \
  do {                                    \
    (void)sizeof(domain);                 \
    (void)sizeof(rank);                   \
  } while (false)

#endif  // APIO_DEBUG_CHECKS
