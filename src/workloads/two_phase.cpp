#include "workloads/two_phase.h"

#include <algorithm>

#include "common/clock.h"
#include "common/error.h"

namespace apio::workloads {
namespace {

constexpr int kTagHeader = -2000001;
constexpr int kTagPayload = -2000002;

int aggregator_of(int rank, int size, int num_aggregators) {
  // Contiguous groups: aggregator g serves ranks [g*size/A, (g+1)*size/A).
  const int group = rank * num_aggregators / size;
  // The aggregator is the first rank of the group.
  return group * size / num_aggregators +
         (group * size % num_aggregators != 0 ? 1 : 0);
}

}  // namespace

TwoPhaseResult two_phase_write(vol::Connector& connector, pmpi::Communicator& comm,
                               h5::Dataset ds, std::uint64_t elem_offset,
                               std::span<const std::byte> data, int num_aggregators) {
  const int rank = comm.rank();
  const int size = comm.size();
  APIO_REQUIRE(num_aggregators >= 1 && num_aggregators <= size,
               "aggregator count must be in [1, comm size]");
  const std::size_t elsize = ds.element_size();
  APIO_REQUIRE(data.size() % elsize == 0,
               "two_phase_write data must be whole elements");
  WallClock clock;
  const double t0 = clock.now();

  const int my_aggregator = aggregator_of(rank, size, num_aggregators);
  const bool i_aggregate = rank == my_aggregator;

  // Phase 1: ship (offset, payload) to the aggregator.  Sends are
  // buffered, so aggregators may also send to themselves.
  const std::vector<std::uint64_t> header{elem_offset, data.size()};
  comm.send<std::uint64_t>(header, my_aggregator, kTagHeader);
  comm.send_bytes(data, my_aggregator, kTagPayload);

  std::uint64_t local_requests = 0;
  if (i_aggregate) {
    struct Piece {
      std::uint64_t elem_offset;
      std::vector<std::byte> bytes;
    };
    std::vector<Piece> pieces;
    for (int r = 0; r < size; ++r) {
      if (aggregator_of(r, size, num_aggregators) != rank) continue;
      auto h = comm.recv<std::uint64_t>(r, kTagHeader);
      APIO_ASSERT(h.size() == 2, "two-phase header corrupt");
      Piece piece;
      piece.elem_offset = h[0];
      piece.bytes = comm.recv_bytes(r, kTagPayload);
      APIO_ASSERT(piece.bytes.size() == h[1], "two-phase payload size mismatch");
      pieces.push_back(std::move(piece));
    }
    std::sort(pieces.begin(), pieces.end(), [](const Piece& a, const Piece& b) {
      return a.elem_offset < b.elem_offset;
    });

    // Phase 2: merge adjacent extents and issue large writes.
    std::vector<vol::RequestPtr> outstanding;
    std::size_t i = 0;
    while (i < pieces.size()) {
      std::uint64_t run_start = pieces[i].elem_offset;
      std::vector<std::byte> merged = std::move(pieces[i].bytes);
      std::size_t j = i + 1;
      while (j < pieces.size() &&
             pieces[j].elem_offset ==
                 run_start + merged.size() / elsize) {
        merged.insert(merged.end(), pieces[j].bytes.begin(), pieces[j].bytes.end());
        ++j;
      }
      outstanding.push_back(connector.dataset_write(
          ds, h5::Selection::offsets({run_start}, {merged.size() / elsize}),
          merged));
      ++local_requests;
      i = j;
    }
    for (auto& req : outstanding) req->wait();
  }

  const double blocking = clock.now() - t0;
  comm.barrier();

  TwoPhaseResult result;
  result.blocking_seconds = comm.allreduce_max(blocking);
  result.requests_issued = comm.allreduce_sum(local_requests);
  result.total_bytes = comm.allreduce_sum(static_cast<std::uint64_t>(data.size()));
  return result;
}

}  // namespace apio::workloads
