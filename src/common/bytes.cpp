#include "common/bytes.h"

namespace apio {

void ByteWriter::put_string(std::string_view s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  for (char c : s) buf_.push_back(std::byte{static_cast<std::uint8_t>(c)});
}

void ByteWriter::put_bytes(std::span<const std::byte> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::string ByteReader::get_string() {
  const std::uint32_t n = get_u32();
  auto bytes = get_bytes(n);
  std::string s;
  s.reserve(n);
  for (std::byte b : bytes) s.push_back(static_cast<char>(std::to_integer<std::uint8_t>(b)));
  return s;
}

}  // namespace apio
