#include "workloads/eqsim.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "workloads/workload_common.h"

namespace apio::workloads {

// ---------------------------------------------------------------------------
// WaveGrid

WaveGrid::WaveGrid(h5::Dims dims, double dx, double dt, double wave_speed)
    : dims_(std::move(dims)), dx_(dx), dt_(dt), c_(wave_speed) {
  APIO_REQUIRE(dims_.size() == 3, "WaveGrid is 3-D");
  for (std::uint64_t d : dims_) {
    APIO_REQUIRE(d >= 9, "WaveGrid needs >= 9 points per axis for the 4th-order stencil");
  }
  APIO_REQUIRE(dx_ > 0 && dt_ > 0 && c_ > 0, "positive dx, dt, wave speed required");
  APIO_REQUIRE(dt_ <= dx_ / (c_ * std::sqrt(3.0)) + 1e-12,
               "CFL violation: dt must be <= dx / (c*sqrt(3))");
  const std::size_t n = static_cast<std::size_t>(h5::num_elements(dims_));
  u_prev_.assign(n, 0.0f);
  u_.assign(n, 0.0f);
  u_next_.assign(n, 0.0f);
}

std::size_t WaveGrid::index(std::uint64_t i, std::uint64_t j, std::uint64_t k) const {
  return static_cast<std::size_t>((i * dims_[1] + j) * dims_[2] + k);
}

void WaveGrid::seed_pulse(double amplitude, double width) {
  const double ci = static_cast<double>(dims_[0]) / 2.0;
  const double cj = static_cast<double>(dims_[1]) / 2.0;
  const double ck = static_cast<double>(dims_[2]) / 2.0;
  for (std::uint64_t i = 0; i < dims_[0]; ++i) {
    for (std::uint64_t j = 0; j < dims_[1]; ++j) {
      for (std::uint64_t k = 0; k < dims_[2]; ++k) {
        const double r2 = (static_cast<double>(i) - ci) * (static_cast<double>(i) - ci) +
                          (static_cast<double>(j) - cj) * (static_cast<double>(j) - cj) +
                          (static_cast<double>(k) - ck) * (static_cast<double>(k) - ck);
        const double v = amplitude * std::exp(-r2 / (2.0 * width * width));
        u_[index(i, j, k)] = static_cast<float>(v);
        u_prev_[index(i, j, k)] = static_cast<float>(v);  // zero initial velocity
      }
    }
  }
}

void WaveGrid::step() {
  // 4th-order central second derivative: (-1/12, 4/3, -5/2, 4/3, -1/12).
  const double r = (c_ * dt_ / dx_) * (c_ * dt_ / dx_);
  const std::uint64_t ni = dims_[0];
  const std::uint64_t nj = dims_[1];
  const std::uint64_t nk = dims_[2];
  auto lap4 = [&](std::uint64_t i, std::uint64_t j, std::uint64_t k) {
    const auto u = [&](std::uint64_t a, std::uint64_t b, std::uint64_t c2) {
      return static_cast<double>(u_[index(a, b, c2)]);
    };
    const double center = u(i, j, k);
    double acc = 0.0;
    acc += (-u(i - 2, j, k) + 16 * u(i - 1, j, k) - 30 * center + 16 * u(i + 1, j, k) -
            u(i + 2, j, k)) /
           12.0;
    acc += (-u(i, j - 2, k) + 16 * u(i, j - 1, k) - 30 * center + 16 * u(i, j + 1, k) -
            u(i, j + 2, k)) /
           12.0;
    acc += (-u(i, j, k - 2) + 16 * u(i, j, k - 1) - 30 * center + 16 * u(i, j, k + 1) -
            u(i, j, k + 2)) /
           12.0;
    return acc;
  };

  // Dirichlet boundary (u = 0 on the two outermost shells).
  for (std::uint64_t i = 2; i + 2 < ni; ++i) {
    for (std::uint64_t j = 2; j + 2 < nj; ++j) {
      for (std::uint64_t k = 2; k + 2 < nk; ++k) {
        const std::size_t idx = index(i, j, k);
        const double next = 2.0 * static_cast<double>(u_[idx]) -
                            static_cast<double>(u_prev_[idx]) + r * lap4(i, j, k);
        u_next_[idx] = static_cast<float>(next);
      }
    }
  }
  std::swap(u_prev_, u_);
  std::swap(u_, u_next_);
  time_ += dt_;
}

double WaveGrid::energy() const {
  // Kinetic proxy sum((u - u_prev)/dt)^2 + potential proxy sum(grad u)^2.
  double kinetic = 0.0;
  for (std::size_t i = 0; i < u_.size(); ++i) {
    const double v = (static_cast<double>(u_[i]) - static_cast<double>(u_prev_[i])) / dt_;
    kinetic += v * v;
  }
  double potential = 0.0;
  for (std::uint64_t i = 1; i < dims_[0]; ++i) {
    for (std::uint64_t j = 1; j < dims_[1]; ++j) {
      for (std::uint64_t k = 1; k < dims_[2]; ++k) {
        const double du_i = (u_[index(i, j, k)] - u_[index(i - 1, j, k)]) / dx_;
        const double du_j = (u_[index(i, j, k)] - u_[index(i, j - 1, k)]) / dx_;
        const double du_k = (u_[index(i, j, k)] - u_[index(i, j, k - 1)]) / dx_;
        potential += du_i * du_i + du_j * du_j + du_k * du_k;
      }
    }
  }
  return 0.5 * (kinetic + c_ * c_ * potential);
}

// ---------------------------------------------------------------------------
// EqsimProxy

EqsimProxy::EqsimProxy(EqsimParams params) : params_(std::move(params)) {
  APIO_REQUIRE(params_.domain.size() == 3, "EQSIM domains are 3-D");
}

std::string EqsimProxy::checkpoint_name(int index) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "ckpt%04d", index);
  return buf;
}

CheckpointRunResult EqsimProxy::run(vol::Connector& connector,
                                    pmpi::Communicator& comm) const {
  const auto boxes = decompose_domain(params_.domain, comm.size());
  MultiFab fields(params_.domain, params_.ncomp,
                  {boxes[static_cast<std::size_t>(comm.rank())]});

  // Optional genuine compute: a private small wave grid per rank,
  // stepped `steps_per_checkpoint` times per phase.
  std::unique_ptr<WaveGrid> wave;
  if (params_.real_compute) {
    wave = std::make_unique<WaveGrid>(h5::Dims{24, 24, 24}, /*dx=*/50.0,
                                      /*dt=*/0.005, /*wave_speed=*/3000.0);
    wave->seed_pulse(1.0, 3.0);
  }

  CheckpointSchedule schedule = params_.schedule;
  if (params_.real_compute) schedule.seconds_per_step = 0.0;

  return run_checkpoint_app(
      connector, comm, schedule, fields.local_bytes(),
      [&](int c) {
        MultiFab::create_plotfile(connector, checkpoint_name(c), params_.domain,
                                  params_.ncomp);
      },
      [&](int c, std::vector<vol::RequestPtr>& outstanding) {
        if (wave) {
          for (int s = 0; s < params_.schedule.steps_per_checkpoint; ++s) wave->step();
        }
        return fields.write_plotfile(connector, checkpoint_name(c), outstanding);
      });
}

sim::RunConfig EqsimProxy::sim_config(const sim::SystemSpec& spec, int nodes,
                                      model::IoMode mode, const EqsimParams& params,
                                      double seconds_per_step) {
  (void)spec;
  sim::RunConfig config;
  config.nodes = nodes;
  config.mode = mode;
  config.iterations = params.schedule.checkpoints;
  config.compute_seconds = seconds_per_step * params.schedule.steps_per_checkpoint;
  config.bytes_per_epoch = h5::num_elements(params.domain) *
                           static_cast<std::uint64_t>(params.ncomp) * sizeof(float);
  config.io_kind = storage::IoKind::kWrite;
  return config;
}

}  // namespace apio::workloads
