#include "obs/telemetry.h"

#include <chrono>
#include <fstream>
#include <sstream>

namespace apio::obs::trace {

namespace {

/// `sched.tenant.a.wait_seconds` -> `apio_sched_tenant_a_wait_seconds`.
std::string prom_name(const std::string& name) {
  std::string out = "apio_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_escaped(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

std::string to_prometheus(const RegistrySnapshot& snapshot,
                          const TraceCollector::Watermark& watermark) {
  std::ostringstream os;
  os.precision(9);
  for (const auto& [name, c] : snapshot.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << c.total << "\n";
  }
  for (const auto& [name, g] : snapshot.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << g.value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " summary\n";
    os << n << "{quantile=\"0.5\"} " << h.p50_seconds() << "\n";
    os << n << "{quantile=\"0.95\"} " << h.p95_seconds() << "\n";
    os << n << "{quantile=\"0.99\"} " << h.p99_seconds() << "\n";
    os << n << "_sum " << h.sum_seconds << "\n";
    os << n << "_count " << h.count << "\n";
  }
  os << "# TYPE apio_trace_started counter\n"
     << "apio_trace_started " << watermark.started << "\n"
     << "# TYPE apio_trace_sampled counter\n"
     << "apio_trace_sampled " << watermark.sampled << "\n"
     << "# TYPE apio_trace_completed counter\n"
     << "apio_trace_completed " << watermark.completed << "\n"
     << "# TYPE apio_trace_evicted counter\n"
     << "apio_trace_evicted " << watermark.evicted << "\n"
     << "# TYPE apio_trace_dropped_spans counter\n"
     << "apio_trace_dropped_spans " << watermark.dropped_spans << "\n"
     << "# TYPE apio_trace_late_spans counter\n"
     << "apio_trace_late_spans " << watermark.late_spans << "\n"
     << "# TYPE apio_trace_active gauge\n"
     << "apio_trace_active " << watermark.active << "\n"
     << "# TYPE apio_trace_oldest_active_start_seconds gauge\n"
     << "apio_trace_oldest_active_start_seconds "
     << watermark.oldest_active_start << "\n";
  return os.str();
}

std::string trace_to_json(const CompletedTrace& trace) {
  std::ostringstream os;
  os.precision(9);
  os << "{\"kind\":\"trace\",\"trace_id\":" << trace.trace_id
     << ",\"root_span_id\":" << trace.root_span_id;
  if (trace.parent_trace_id != 0) {
    os << ",\"parent_trace_id\":" << trace.parent_trace_id
       << ",\"parent_span_id\":" << trace.parent_span_id;
  }
  os << ",\"op\":\"" << to_string(trace.op) << "\",\"tenant\":\"";
  append_escaped(os, trace.tenant);
  os << "\",\"bytes\":" << trace.bytes
     << ",\"failed\":" << (trace.failed ? "true" : "false")
     << ",\"start\":" << trace.start_seconds
     << ",\"duration\":" << trace.duration_seconds << ",\"spans\":[";
  bool first = true;
  for (const auto& s : trace.spans) {
    os << (first ? "" : ",") << "{\"span_id\":" << s.span_id
       << ",\"parent\":" << s.parent_span_id << ",\"phase\":\""
       << phase_name(s.phase) << "\",\"start\":" << s.start_seconds
       << ",\"duration\":" << s.duration_seconds << ",\"bytes\":" << s.bytes
       << ",\"rank\":" << s.rank;
    if (!s.detail.empty()) {
      os << ",\"detail\":\"";
      append_escaped(os, s.detail);
      os << "\"";
    }
    os << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

TelemetryExporter::TelemetryExporter(TelemetryOptions options)
    : options_(std::move(options)) {}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  running_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void TelemetryExporter::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard lock(mutex_);
    running_ = false;
  }
  flush();  // final flush so short runs still export
}

void TelemetryExporter::flush() {
  const auto snapshot = Registry::instance().snapshot();
  auto& collector = TraceCollector::instance();
  const auto watermark = collector.watermark();

  std::uint64_t cursor = 0;
  {
    std::lock_guard lock(mutex_);
    cursor = trace_cursor_;
  }
  auto [fresh, next] = collector.completed_since(cursor);

  if (!options_.prom_path.empty()) {
    std::ofstream out(options_.prom_path, std::ios::trunc);
    if (out) out << to_prometheus(snapshot, watermark);
  }
  if (!options_.jsonl_path.empty()) {
    std::ofstream out(options_.jsonl_path, std::ios::app);
    if (out) {
      for (const auto& t : fresh) out << trace_to_json(t) << "\n";
      out << "{\"kind\":\"watermark\",\"started\":" << watermark.started
          << ",\"sampled\":" << watermark.sampled
          << ",\"completed\":" << watermark.completed
          << ",\"evicted\":" << watermark.evicted
          << ",\"dropped_spans\":" << watermark.dropped_spans
          << ",\"late_spans\":" << watermark.late_spans
          << ",\"active\":" << watermark.active << "}\n";
    }
  }

  std::lock_guard lock(mutex_);
  trace_cursor_ = next;
  ++flush_count_;
}

std::uint64_t TelemetryExporter::flush_count() const {
  std::lock_guard lock(mutex_);
  return flush_count_;
}

void TelemetryExporter::run() {
  const auto interval = std::chrono::duration<double>(
      options_.interval_seconds > 0.0 ? options_.interval_seconds : 1.0);
  while (true) {
    {
      std::unique_lock lock(mutex_);
      if (cv_.wait_for(lock, interval, [this] { return stopping_; })) return;
    }
    flush();
  }
}

}  // namespace apio::obs::trace
