#include "vol/async_connector.h"

#include <cstring>
#include <optional>
#include <sstream>

#include "common/debug/invariant.h"
#include "common/debug/thread_role.h"
#include "common/error.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_context.h"
#include "vol/selection_token.h"

namespace apio::vol {
namespace {

obs::Histogram& stage_hist() {
  static auto& h = obs::Registry::instance().histogram("vol.async.stage_seconds");
  return h;
}

obs::Histogram& execute_hist() {
  static auto& h = obs::Registry::instance().histogram("vol.async.execute_seconds");
  return h;
}

obs::Counter& staged_bytes_counter() {
  static auto& c = obs::Registry::instance().counter("vol.async.bytes_staged");
  return c;
}

obs::Counter& executed_bytes_counter() {
  static auto& c = obs::Registry::instance().counter("vol.async.bytes_executed");
  return c;
}

obs::Counter& prefetch_hits_counter() {
  static auto& c = obs::Registry::instance().counter("vol.async.prefetch_hits");
  return c;
}

obs::Counter& prefetch_misses_counter() {
  static auto& c = obs::Registry::instance().counter("vol.async.prefetch_misses");
  return c;
}

obs::Counter& retries_counter() {
  static auto& c = obs::Registry::instance().counter("vol.async.retries");
  return c;
}

obs::Counter& degraded_counter() {
  static auto& c = obs::Registry::instance().counter("vol.async.degraded_ops");
  return c;
}

obs::Counter& failed_counter() {
  static auto& c = obs::Registry::instance().counter("vol.async.failed_ops");
  return c;
}

obs::Counter& io_degraded_counter() {
  static auto& c = obs::Registry::instance().counter("io.degraded_ops");
  return c;
}

/// Byte offset of the selection's first element within the dataset's
/// linearized (row-major) extent; 0 for an all-selection.
std::uint64_t selection_offset_bytes(const h5::Dataset& ds,
                                     const h5::Selection& selection) {
  if (selection.is_all()) return 0;
  const auto pitches = h5::row_pitches(ds.dims());
  const h5::Dims& start = selection.slab().start;
  std::uint64_t elems = 0;
  const std::size_t rank = std::min(start.size(), pitches.size());
  for (std::size_t i = 0; i < rank; ++i) elems += start[i] * pitches[i];
  return elems * ds.element_size();
}

const char* execute_label(obs::IoOp kind) {
  switch (kind) {
    case obs::IoOp::kWrite: return "write.execute";
    case obs::IoOp::kRead: return "read.execute";
    case obs::IoOp::kPrefetch: return "prefetch.execute";
    case obs::IoOp::kFlush: return "flush.execute";
  }
  return "execute";
}

}  // namespace

struct AsyncConnector::AsyncOp {
  obs::IoOp kind = obs::IoOp::kWrite;
  std::optional<h5::Dataset> ds;
  h5::Selection selection = h5::Selection::all();
  /// Write payload when staging in DRAM.
  std::shared_ptr<std::vector<std::byte>> staged;
  /// Write payload location when staging on a device.
  std::uint64_t device_offset = 0;
  /// Read destination (caller-owned until completion).
  std::span<std::byte> out;
  /// Prefetch destination (cache-owned).
  std::shared_ptr<std::vector<std::byte>> buffer;
  std::uint64_t bytes = 0;

  tasking::EventualPtr done;
  RequestInfo info;
  RequestOutcomePtr outcome;
  /// Fair-share identity captured at issue time; re-bound on the
  /// background stream around every attempt so a QosBackend under the
  /// file charges the issuing tenant.
  sched::SubmissionContext submission;
  std::unique_ptr<resilience::RetrySession> session;
  /// Observer record emission; run on final success only.
  std::function<void()> on_complete;

  /// Causal trace identity, minted at submission; re-bound alongside
  /// the submission context around every attempt.
  obs::trace::TraceContext trace;
  double trace_start = 0.0;       ///< root span start (steady_seconds)
  double fifo_enqueue_time = 0.0; ///< FIFO-wait phase anchor
  double pool_push_time = 0.0;    ///< pool-wait phase anchor
};

/// Records the completion phase and seals the op's trace.  Must run
/// before the eventual fires so waiters observe a sealed trace.
void AsyncConnector::seal_trace(const AsyncOp& op, bool failed,
                                double completion_start) {
  if (!op.trace.recording()) return;
  const double now = obs::steady_seconds();
  obs::trace::record_phase(op.trace, obs::trace::Phase::kComplete,
                           completion_start, now - completion_start);
  obs::trace::TraceCollector::instance().complete(
      op.trace, op.kind,
      op.submission.tenant.empty() ? sched::kDefaultTenant
                                   : op.submission.tenant,
      op.bytes, failed, op.trace_start, now);
}

AsyncConnector::AsyncConnector(h5::FilePtr file, AsyncOptions options,
                               const Clock* clock)
    : file_(std::move(file)),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : &wall_clock_) {
  APIO_REQUIRE(file_ != nullptr, "AsyncConnector requires an open file");
  options_.retry.validate();
  const double t0 = clock_->now();
  pool_ = std::make_shared<tasking::Pool>();
  stream_ = std::make_unique<tasking::ExecutionStream>(pool_);
  last_op_ = tasking::Eventual::make_ready();
  std::lock_guard lock(stats_mutex_);
  stats_.init_seconds = clock_->now() - t0;
}

AsyncConnector::~AsyncConnector() {
  try {
    shutdown_machinery();
  } catch (...) {
    // Failures surface through explicit close()/wait_all(); the
    // destructor must stay silent.
  }
}

void AsyncConnector::shutdown_machinery() {
  if (closed_.exchange(true)) return;
  const double t0 = clock_->now();
  wait_all();
  stream_->shutdown();
  clear_cache();
  std::lock_guard lock(stats_mutex_);
  stats_.term_seconds = clock_->now() - t0;
}

void AsyncConnector::enqueue_op(std::shared_ptr<AsyncOp> op) {
  if (closed_.load()) throw StateError("AsyncConnector used after close()");
  obs::ScopedSpan span("enqueue", obs::Category::kVol);

  // Submission identity, resolved at issue time: connector-level tenant
  // wins, then the issuing thread's binding.  Flushes ride the priority
  // lane (they are the latency-sensitive barrier ops the fairness gate
  // protects); the op's admission deadline is the same issue-anchored
  // budget its retries run under.
  if (const sched::SubmissionContext* ctx = sched::current_submission()) {
    op->submission = *ctx;
  }
  if (!options_.tenant.empty()) op->submission.tenant = options_.tenant;
  op->submission.lane = op->kind == obs::IoOp::kFlush
                            ? sched::Lane::kPriority
                            : sched::Lane::kBulk;
  if (options_.retry.deadline_seconds > 0.0) {
    op->submission.deadline =
        sched::IoRequest::deadline_from(options_.retry, clock_->now());
  }

  op->done = tasking::Eventual::make();
  op->outcome = std::make_shared<RequestOutcome>();
  op->session = std::make_unique<resilience::RetrySession>(
      options_.retry, clock_,
      options_.sleeper != nullptr ? options_.sleeper
                                  : &resilience::wall_sleeper(),
      options_.breaker.get());

  op->fifo_enqueue_time = obs::steady_seconds();

  std::lock_guard lock(order_mutex_);
  tasking::EventualPtr prev = last_op_;
  last_op_ = op->done;
  // FIFO chain: the new op enters the pool only when its predecessor
  // reached its final outcome (including any retries).  A predecessor
  // failure does not cancel successors — the async VOL records errors
  // per operation, it does not poison the queue.
  prev->on_ready([this, op = std::move(op)]() mutable {
    op->pool_push_time = obs::steady_seconds();
    obs::trace::record_phase(op->trace, obs::trace::Phase::kFifoWait,
                             op->fifo_enqueue_time,
                             op->pool_push_time - op->fifo_enqueue_time);
    if (!pool_->try_push([this, op] { run_attempt(op); })) {
      finish_failure(op, std::make_exception_ptr(StateError(
                             "async operation dropped: connector shut down")));
    }
  });
}

void AsyncConnector::execute_op(AsyncOp& op) {
  obs::TimedOp execute_span(
      execute_label(op.kind), obs::Category::kVol, execute_hist(),
      op.kind == obs::IoOp::kPrefetch ? nullptr : &executed_bytes_counter(),
      op.bytes);
  switch (op.kind) {
    case obs::IoOp::kWrite:
      if (options_.staging_backend) {
        std::vector<std::byte> from_device(op.bytes);
        options_.staging_backend->read(op.device_offset, from_device);
        op.ds->write_raw(op.selection, from_device);
      } else {
        op.ds->write_raw(op.selection, *op.staged);
      }
      break;
    case obs::IoOp::kRead:
      op.ds->read_raw(op.selection, op.out);
      break;
    case obs::IoOp::kPrefetch:
      op.ds->read_raw(op.selection, *op.buffer);
      break;
    case obs::IoOp::kFlush:
      file_->flush();
      break;
  }
}

void AsyncConnector::run_attempt(const std::shared_ptr<AsyncOp>& op) {
  APIO_ASSERT_ON_STREAM();
  // Background threads do not inherit the issuer's thread-local
  // submission binding; restore it for the whole attempt (storage
  // transfer AND sync-fallback replay) so QosBackend admission charges
  // the right tenant.
  sched::ScopedSubmission bind(op->submission);
  // Re-bind the trace next to the submission identity and close the
  // pool-wait gap (push time -> this pickup).
  obs::trace::ScopedTraceContext trace_bind(op->trace);
  if (op->pool_push_time > 0.0) {
    const double picked_up = obs::steady_seconds();
    obs::trace::record_phase(op->trace, obs::trace::Phase::kPoolWait,
                             op->pool_push_time,
                             picked_up - op->pool_push_time);
    op->pool_push_time = 0.0;
  }
  try {
    obs::trace::ScopedPhase attempt(obs::trace::Phase::kAttempt, op->bytes);
    op->session->check_breaker();
    execute_op(*op);
    attempt.finish();
    op->session->note_success();
    finish_success(op);
    return;
  } catch (...) {
    std::exception_ptr error = std::current_exception();
    if (op->session->backoff_and_retry(error)) {
      // Re-enqueue the same op; when the pool closed under us (shutdown
      // racing a retry) fail the request instead of wedging the drain.
      op->pool_push_time = obs::steady_seconds();
      if (pool_->try_push([this, op] { run_attempt(op); })) return;
      error = std::make_exception_ptr(
          StateError("async retry abandoned: connector shut down"));
    }
    // Policy exhausted (or error permanent / deadline overrun).
    if (op->kind == obs::IoOp::kWrite && options_.sync_fallback) {
      try {
        // Degraded mode: replay the staged buffer through the native
        // synchronous path, outside policy and breaker — the last
        // resort before reporting data loss.
        obs::trace::ScopedPhase fallback(obs::trace::Phase::kFallback,
                                         op->bytes);
        if (options_.staging_backend) {
          std::vector<std::byte> from_device(op->bytes);
          options_.staging_backend->read(op->device_offset, from_device);
          op->ds->write_raw(op->selection, from_device);
        } else {
          op->ds->write_raw(op->selection, *op->staged);
        }
        fallback.finish();
        op->outcome->degraded = true;
        finish_success(op);
        return;
      } catch (...) {
        error = std::current_exception();
      }
    }
    finish_failure(op, std::move(error));
  }
}

void AsyncConnector::finish_success(const std::shared_ptr<AsyncOp>& op) {
  const double completion_start = obs::steady_seconds();
  // The outcome must be fully written before the eventual completes:
  // completion is the release point observers synchronize on.
  op->outcome->attempts = std::max(op->session->attempts(), 1);
  op->outcome->deadline_exhausted = op->session->deadline_exhausted();
  const std::uint64_t retries =
      static_cast<std::uint64_t>(op->outcome->attempts - 1);
  if (op->kind == obs::IoOp::kWrite) {
    op->staged.reset();
    note_unstaged(op->bytes);
  }
  if (obs::enabled()) {
    if (retries > 0) retries_counter().add(retries);
    if (op->outcome->degraded) {
      degraded_counter().increment();
      io_degraded_counter().increment();
    }
  }
  {
    std::lock_guard lock(stats_mutex_);
    stats_.retries += retries;
    if (op->outcome->degraded) ++stats_.degraded_ops;
  }
  if (op->on_complete) op->on_complete();
  seal_trace(*op, /*failed=*/false, completion_start);
  op->done->set();
}

void AsyncConnector::finish_failure(const std::shared_ptr<AsyncOp>& op,
                                    std::exception_ptr error) {
  const double completion_start = obs::steady_seconds();
  op->outcome->attempts = std::max(op->session->attempts(), 1);
  op->outcome->deadline_exhausted = op->session->deadline_exhausted();
  const std::uint64_t retries =
      static_cast<std::uint64_t>(op->outcome->attempts - 1);
  if (op->kind == obs::IoOp::kWrite) {
    op->staged.reset();
    note_unstaged(op->bytes);
  }
  if (obs::enabled()) {
    if (retries > 0) retries_counter().add(retries);
    failed_counter().increment();
  }
  {
    std::lock_guard lock(stats_mutex_);
    stats_.retries += retries;
    ++stats_.failed_ops;
  }
  seal_trace(*op, /*failed=*/true, completion_start);
  op->done->set_error(std::move(error));
}

RequestPtr AsyncConnector::dataset_write(h5::Dataset ds,
                                         const h5::Selection& selection,
                                         std::span<const std::byte> data) {
  const double t0 = clock_->now();
  auto op = std::make_shared<AsyncOp>();
  op->trace = obs::trace::TraceCollector::instance().start_trace();
  op->trace_start = obs::steady_seconds();
  obs::trace::ScopedTraceContext trace_bind(op->trace);
  obs::trace::ScopedPhase submit_phase(obs::trace::Phase::kSubmit,
                                       data.size());

  // The transactional copy: a non-zero-copy into a private staging area
  // so the caller may immediately reuse (or mutate) its memory while
  // the background thread performs the actual storage transfer.  The
  // staging area is either a DRAM buffer or, when configured, a
  // node-local staging device (SSD) region.
  note_staged(data.size());
  op->kind = obs::IoOp::kWrite;
  op->ds = ds;
  op->selection = selection;
  op->bytes = data.size();
  {
    obs::trace::ScopedPhase stage_span(obs::trace::Phase::kStageCopy,
                                       data.size());
    obs::TimedOp stage_op("stage_copy", obs::Category::kVol, stage_hist(),
                          &staged_bytes_counter(), data.size());
    if (options_.staging_backend) {
      op->device_offset = staging_device_offset_.fetch_add(data.size());
      options_.staging_backend->write(op->device_offset, data);
    } else {
      op->staged =
          std::make_shared<std::vector<std::byte>>(data.begin(), data.end());
    }
  }
  const double blocking = clock_->now() - t0;

  // Identity is captured at issue time unconditionally — failures must
  // carry it even when no observer is attached (the background stream
  // has no business touching the container's path index).
  op->info.op = obs::IoOp::kWrite;
  op->info.dataset_path = file_->path_of(ds);
  op->info.selection = selection_to_token(selection);
  op->info.offset = selection_offset_bytes(ds, selection);
  op->info.bytes = data.size();

  if (has_observers()) {
    op->on_complete = [this, t0, blocking, bytes = data.size(),
                       ranks = reported_ranks(),
                       origin_rank = obs::thread_rank(),
                       path = op->info.dataset_path,
                       token = op->info.selection,
                       trace_id = op->trace.trace_id,
                       span_id = op->trace.span_id] {
      IoRecord record;
      record.op = IoOp::kWrite;
      record.dataset_path = path;
      record.selection = token;
      record.bytes = bytes;
      record.ranks = ranks;
      record.origin_rank = origin_rank;
      record.issue_time = t0;
      record.blocking_seconds = blocking;
      record.completion_seconds = clock_->now() - t0;
      record.async = true;
      record.trace_id = trace_id;
      record.span_id = span_id;
      observe(record);
    };
  }

  auto request_info = op->info;
  enqueue_op(op);
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.writes_enqueued;
  }
  return std::make_shared<Request>(op->done, std::move(request_info),
                                   op->outcome);
}

RequestPtr AsyncConnector::dataset_read(h5::Dataset ds,
                                        const h5::Selection& selection,
                                        std::span<std::byte> out) {
  const double t0 = clock_->now();
  const std::string key = cache_key(ds, selection);

  // Prefetch-cache hit: the data was pulled into node-local memory
  // during a previous compute phase; serve it with a memcpy.
  CacheEntry entry;
  bool hit = false;
  {
    std::lock_guard lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      entry = it->second;
      cache_.erase(it);
      hit = true;
    }
  }
  if (hit) {
    if (obs::enabled()) prefetch_hits_counter().increment();
    obs::ScopedSpan span("read.cache_hit", obs::Category::kVol, out.size());
    entry.ready->wait();  // normally already complete
    APIO_REQUIRE(entry.data->size() == out.size(),
                 "prefetched buffer size does not match read selection");
    std::memcpy(out.data(), entry.data->data(), out.size());
    const double dt = clock_->now() - t0;
    if (has_observers()) {
      IoRecord record;
      record.op = IoOp::kRead;
      record.bytes = out.size();
      record.ranks = reported_ranks();
      record.origin_rank = obs::thread_rank();
      record.issue_time = t0;
      record.blocking_seconds = dt;
      record.completion_seconds = dt;
      record.async = true;
      record.cache_hit = true;
      if (observers_want_detail()) {
        record.dataset_path = file_->path_of(ds);
        record.selection = selection_to_token(selection);
      }
      observe(record);
    }
    {
      std::lock_guard lock(stats_mutex_);
      ++stats_.cache_hits;
    }
    RequestInfo info;
    info.op = obs::IoOp::kRead;
    info.dataset_path = file_->path_of(ds);
    info.selection = selection_to_token(selection);
    info.offset = selection_offset_bytes(ds, selection);
    info.bytes = out.size();
    return std::make_shared<Request>(tasking::Eventual::make_ready(),
                                     std::move(info));
  }

  if (obs::enabled()) prefetch_misses_counter().increment();
  auto op = std::make_shared<AsyncOp>();
  op->trace = obs::trace::TraceCollector::instance().start_trace();
  op->trace_start = obs::steady_seconds();
  obs::trace::ScopedTraceContext trace_bind(op->trace);
  obs::trace::ScopedPhase submit_phase(obs::trace::Phase::kSubmit, out.size());
  op->kind = obs::IoOp::kRead;
  op->ds = ds;
  op->selection = selection;
  op->out = out;
  op->bytes = out.size();
  op->info.op = obs::IoOp::kRead;
  op->info.dataset_path = file_->path_of(ds);
  op->info.selection = selection_to_token(selection);
  op->info.offset = selection_offset_bytes(ds, selection);
  op->info.bytes = out.size();

  if (has_observers()) {
    op->on_complete = [this, t0, bytes = out.size(), ranks = reported_ranks(),
                       origin_rank = obs::thread_rank(),
                       path = op->info.dataset_path,
                       token = op->info.selection,
                       trace_id = op->trace.trace_id,
                       span_id = op->trace.span_id] {
      IoRecord record;
      record.op = IoOp::kRead;
      record.dataset_path = path;
      record.selection = token;
      record.bytes = bytes;
      record.ranks = ranks;
      record.origin_rank = origin_rank;
      record.issue_time = t0;
      record.blocking_seconds = 0.0;  // caller was not blocked
      record.completion_seconds = clock_->now() - t0;
      record.async = true;
      record.trace_id = trace_id;
      record.span_id = span_id;
      observe(record);
    };
  }

  auto request_info = op->info;
  enqueue_op(op);
  {
    std::lock_guard lock(stats_mutex_);
    ++stats_.reads_enqueued;
    ++stats_.cache_misses;
  }
  return std::make_shared<Request>(op->done, std::move(request_info),
                                   op->outcome);
}

void AsyncConnector::prefetch(h5::Dataset ds, const h5::Selection& selection) {
  const double t0 = clock_->now();
  const std::string key = cache_key(ds, selection);
  {
    std::lock_guard lock(cache_mutex_);
    if (cache_.count(key) > 0) return;  // already in flight
  }
  const std::uint64_t bytes = selection.npoints(ds.dims()) * ds.element_size();
  auto op = std::make_shared<AsyncOp>();
  op->trace = obs::trace::TraceCollector::instance().start_trace();
  op->trace_start = obs::steady_seconds();
  obs::trace::ScopedTraceContext trace_bind(op->trace);
  obs::trace::ScopedPhase submit_phase(obs::trace::Phase::kSubmit, bytes);
  op->kind = obs::IoOp::kPrefetch;
  op->ds = ds;
  op->selection = selection;
  op->buffer = std::make_shared<std::vector<std::byte>>(bytes);
  op->bytes = bytes;
  op->info.op = obs::IoOp::kPrefetch;
  op->info.dataset_path = file_->path_of(ds);
  op->info.selection = selection_to_token(selection);
  op->info.offset = selection_offset_bytes(ds, selection);
  op->info.bytes = bytes;

  auto buffer = op->buffer;
  enqueue_op(op);
  {
    std::lock_guard lock(cache_mutex_);
    cache_.emplace(key, CacheEntry{op->done, buffer});
  }
  if (has_observers()) {
    IoRecord record;
    record.op = IoOp::kPrefetch;
    record.bytes = bytes;
    record.ranks = reported_ranks();
    record.origin_rank = obs::thread_rank();
    record.issue_time = t0;
    record.blocking_seconds = clock_->now() - t0;
    record.async = true;
    if (observers_want_detail()) {
      record.dataset_path = op->info.dataset_path;
      record.selection = op->info.selection;
    }
    observe(record);
  }
  std::lock_guard lock(stats_mutex_);
  ++stats_.prefetches_enqueued;
}

RequestPtr AsyncConnector::flush() {
  const double t0 = clock_->now();
  auto op = std::make_shared<AsyncOp>();
  op->trace = obs::trace::TraceCollector::instance().start_trace();
  op->trace_start = obs::steady_seconds();
  obs::trace::ScopedTraceContext trace_bind(op->trace);
  obs::trace::ScopedPhase submit_phase(obs::trace::Phase::kSubmit);
  op->kind = obs::IoOp::kFlush;
  op->info.op = obs::IoOp::kFlush;

  if (has_observers()) {
    op->on_complete = [this, t0, ranks = reported_ranks(),
                       origin_rank = obs::thread_rank(),
                       trace_id = op->trace.trace_id,
                       span_id = op->trace.span_id] {
      IoRecord record;
      record.op = IoOp::kFlush;
      record.trace_id = trace_id;
      record.span_id = span_id;
      record.ranks = ranks;
      record.origin_rank = origin_rank;
      record.issue_time = t0;
      record.blocking_seconds = 0.0;  // caller was not blocked
      record.completion_seconds = clock_->now() - t0;
      record.async = true;
      observe(record);
    };
  }

  auto request_info = op->info;
  enqueue_op(op);
  return std::make_shared<Request>(op->done, std::move(request_info),
                                   op->outcome);
}

void AsyncConnector::note_staged(std::uint64_t bytes) {
  if (options_.max_staged_bytes > 0) {
    std::unique_lock lock(staging_mutex_);
    staging_cv_.wait(lock, [&] {
      return staged_outstanding_.load() + bytes <= options_.max_staged_bytes ||
             staged_outstanding_.load() == 0;
    });
  }
  const std::uint64_t now_staged = staged_outstanding_.fetch_add(bytes) + bytes;
  if (obs::enabled()) {
    static auto& gauge = obs::Registry::instance().gauge("vol.async.staged_outstanding");
    gauge.set(static_cast<std::int64_t>(now_staged));
    gauge.note_watermark();
  }
  std::lock_guard lock(stats_mutex_);
  stats_.bytes_staged += bytes;
  stats_.staged_high_watermark = std::max(stats_.staged_high_watermark, now_staged);
}

void AsyncConnector::note_unstaged(std::uint64_t bytes) {
  const std::uint64_t before = staged_outstanding_.fetch_sub(bytes);
  APIO_INVARIANT(before >= bytes, "staging accounting underflow");
  if (obs::enabled()) {
    static auto& gauge = obs::Registry::instance().gauge("vol.async.staged_outstanding");
    gauge.set(static_cast<std::int64_t>(before - bytes));
  }
  if (options_.max_staged_bytes > 0) {
    std::lock_guard lock(staging_mutex_);
    staging_cv_.notify_all();
  }
}

void AsyncConnector::wait_all() {
  // Drains the FIFO without rethrowing: per-operation failures are
  // reported through each Request (or collected by an EventSet), the
  // H5ESwait contract.  Rethrowing only the tail's error here would be
  // arbitrary — intermediate failures would vanish.
  tasking::EventualPtr tail;
  {
    std::lock_guard lock(order_mutex_);
    tail = last_op_;
  }
  tail->wait_ignore_error();
}

void AsyncConnector::close() {
  shutdown_machinery();
  if (file_->is_open()) file_->close();
}

AsyncStats AsyncConnector::stats() const {
  std::lock_guard lock(stats_mutex_);
  return stats_;
}

void AsyncConnector::clear_cache() {
  std::lock_guard lock(cache_mutex_);
  cache_.clear();
}

std::string AsyncConnector::cache_key(const h5::Dataset& ds,
                                      const h5::Selection& selection) {
  std::ostringstream os;
  os << ds.object_key() << '|';
  if (selection.is_all()) {
    os << "all";
  } else {
    const h5::Hyperslab& slab = selection.slab();
    auto emit = [&os](const h5::Dims& dims) {
      os << '[';
      for (std::uint64_t d : dims) os << d << ',';
      os << ']';
    };
    emit(slab.start);
    emit(slab.stride);
    emit(slab.count);
    emit(slab.block);
  }
  return os.str();
}

}  // namespace apio::vol
