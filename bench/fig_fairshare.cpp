// fig_fairshare: the multi-tenant fairness gate.
//
// Runs workloads::multi_job's reference scenario — three saturating
// tenants (checkpoint : vpic : bdcats) at weights 1:2:4 over ONE
// throttled Lustre model behind sched::FairScheduler — and gates:
//
//   1. each tenant's dispatched bytes, sampled while every tenant was
//      still backlogged, lie within 10% of its weighted max-min share;
//   2. the priority lane stays responsive: p99 submit->grant wait of
//      the checkpoint tenant's flushes is bounded by a few bulk-op
//      service times while the bulk lanes saturate the channel.
//
// Both checks fail the binary directly (a broken scheduler should not
// need a stale baseline to be caught); the per-tenant shares and waits
// are also exported for apio_bench_compare drift tracking.
#include <cstdio>

#include "bench/bench_util.h"
#include "workloads/multi_job.h"

using namespace apio;

int main() {
  bench::banner("fig_fairshare — weighted max-min fair-share under contention",
                "3 tenants (1:2:4) saturating one 64 MiB/s throttled channel "
                "through sched::FairScheduler");

  const auto params = workloads::MultiJobParams::reference();
  const auto result = workloads::run_multi_job(params);

  std::printf("\n%s\n", result.table().c_str());
  std::printf("  max share error: %.2f%%   elapsed: %.3f s\n",
              100.0 * result.max_share_error(), result.elapsed_seconds);

  // Self-gates.  Share tolerance is the acceptance criterion's 10%.
  // The priority bound is 10 bulk service times: one residual transfer
  // the flush must wait out (admission is non-preemptive), the metadata
  // write that precedes the backend flush, and headroom for OS
  // scheduling jitter when the bench shares cores with a parallel
  // ctest run (observed up to ~6x serial).  It still cleanly separates
  // priority-jump (measured ~1-6x) from un-prioritised dispatch: a
  // weight-1 tenant at a 1/7 share is granted one bulk transfer per ~7
  // service times, so a flush queued behind even two of its own bulk
  // steps would wait >= ~14 service times.
  const double share_tolerance = 0.10;
  const double bulk_service_seconds =
      (params.pfs_latency + static_cast<double>(params.tenants[0].bytes_per_step) /
                                params.pfs_bandwidth) *
      params.time_scale;
  const double priority_bound = 10.0 * bulk_service_seconds;

  bool ok = true;
  if (result.max_share_error() > share_tolerance) {
    std::printf("  FAIL: share error %.2f%% exceeds %.0f%% tolerance\n",
                100.0 * result.max_share_error(), 100.0 * share_tolerance);
    ok = false;
  }
  if (result.priority_p99_wait() > priority_bound) {
    std::printf("  FAIL: priority p99 wait %.2f ms exceeds bound %.2f ms\n",
                1e3 * result.priority_p99_wait(), 1e3 * priority_bound);
    ok = false;
  }
  if (ok) {
    std::printf("  PASS: shares within %.0f%% of weighted max-min, priority "
                "p99 %.2f ms <= %.2f ms\n",
                100.0 * share_tolerance, 1e3 * result.priority_p99_wait(),
                1e3 * priority_bound);
  }

  // Shares are zero-sum across tenants, so the one-sided "wall"
  // tolerance still catches any tenant losing its share (some other
  // tenant's share must rise); the hard fairness bound is the self-gate
  // above, which needs no baseline at all.  The priority p99 wait is
  // deliberately NOT a baseline-gated value: a ~2 ms wait swings 2-5x
  // with OS scheduling jitter when ctest runs the suite in parallel,
  // which no fixed relative tolerance absorbs — the absolute self-gate
  // above is the binding check, and the raw histogram still lands in
  // the jsonl's registry-snapshot metrics for inspection.
  std::vector<bench::BenchValue> values;
  for (const auto& tenant : result.tenants) {
    values.push_back({"share." + tenant.name, tenant.share, "fraction", "wall"});
  }
  values.push_back({"elapsed_seconds", result.elapsed_seconds, "s", "wall"});

  const int status =
      bench::record_bench_metrics("fig_fairshare", "reference_1_2_4", values);
  return ok ? status : 1;
}
