// pmpi: an in-process message-passing subset with MPI semantics.
//
// The paper's experiments run MPI programs (6 ranks/node on Summit, 32
// on Cori).  This repository has no MPI launcher, so pmpi provides the
// same programming model over std::thread ranks inside one process:
// SPMD bodies, a communicator per rank, barrier/bcast/reduce/gather
// collectives and matched point-to-point send/recv.  Collective
// semantics follow MPI: every rank of the communicator must call the
// collective, in the same order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/debug/lock_rank.h"

namespace apio::pmpi {

class Communicator;

/// Shared state backing one communicator group.  Create one World per
/// SPMD region; obtain per-rank Communicators from it.  Prefer run()
/// below, which owns the thread spawn/join.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Returns the communicator handle for `rank` (0 <= rank < size()).
  Communicator comm(int rank);

 private:
  friend class Communicator;

  struct Mailbox {
    debug::RankedMutex<debug::LockRank::kPmpiMailbox> mutex;
    std::condition_variable_any cv;
    // keyed by (source rank, tag)
    std::map<std::pair<int, int>, std::deque<std::vector<std::byte>>> queues;
  };

  int size_;

  // Sense-reversing central barrier.
  debug::RankedMutex<debug::LockRank::kPmpiBarrier> barrier_mutex_;
  std::condition_variable_any barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Collective exchange area: one slot per rank, plus the root's bcast view.
  debug::RankedMutex<debug::LockRank::kPmpiCollective> coll_mutex_;
  std::vector<std::vector<std::byte>> coll_slots_;
  std::span<const std::byte> bcast_view_;

  // split() rendezvous: color -> sub-world under construction.
  debug::RankedMutex<debug::LockRank::kPmpiSplit> split_mutex_;
  std::map<int, std::shared_ptr<World>> split_worlds_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  void barrier();
};

/// Per-rank handle to a World.  Cheap to copy.
class Communicator {
 public:
  Communicator() = default;

  int rank() const { return rank_; }
  int size() const;

  /// Blocks until every rank has entered the barrier.
  void barrier();

  /// Broadcasts root's buffer into every rank's buffer.  All buffers
  /// must have identical byte size.
  void bcast_bytes(std::span<std::byte> buffer, int root);

  template <typename T>
  void bcast(std::span<T> buffer, int root) {
    bcast_bytes(std::as_writable_bytes(buffer), root);
  }

  /// All-gathers a variable-length byte buffer per rank; result is
  /// indexed by rank.  Collective-aggregation layers (two-phase I/O)
  /// use this directly to exchange extent lists.
  std::vector<std::vector<std::byte>> allgather_bytes(std::span<const std::byte> mine);

  /// All-gathers one value per rank; result is indexed by rank.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    auto raw = allgather_bytes(std::as_bytes(std::span<const T>(&value, 1)));
    std::vector<T> out(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      std::memcpy(&out[r], raw[r].data(), sizeof(T));
    }
    return out;
  }

  /// Gathers one value per rank at `root`; non-roots receive an empty
  /// vector.  (Implemented over allgather for simplicity.)
  template <typename T>
  std::vector<T> gather(const T& value, int root) {
    auto all = allgather(value);
    if (rank() != root) return {};
    return all;
  }

  /// MPI_Allreduce with a caller-provided combiner.
  template <typename T>
  T allreduce(const T& value, const std::function<T(const T&, const T&)>& op) {
    auto all = allgather(value);
    T acc = all[0];
    for (std::size_t i = 1; i < all.size(); ++i) acc = op(acc, all[i]);
    return acc;
  }

  double allreduce_sum(double value);
  double allreduce_max(double value);
  double allreduce_min(double value);
  std::uint64_t allreduce_sum(std::uint64_t value);
  std::uint64_t allreduce_max(std::uint64_t value);

  /// Exclusive prefix sum over ranks (MPI_Exscan); rank 0 receives 0.
  std::uint64_t exscan_sum(std::uint64_t value);

  /// Blocking matched send/recv.  Message order between a fixed
  /// (source, dest, tag) triple is FIFO.  Sends are buffered and never
  /// block (MPI_Bsend semantics), so self-sends are safe.
  void send_bytes(std::span<const std::byte> data, int dest, int tag);
  std::vector<std::byte> recv_bytes(int source, int tag);

  /// Non-blocking probe (MPI_Iprobe): true when a matching message is
  /// already waiting, i.e. the next recv(source, tag) will not block.
  bool iprobe(int source, int tag) const;

  /// MPI_Scatter: root holds one chunk per rank (all the same length);
  /// every rank receives its chunk.  Pass empty on non-roots.
  template <typename T>
  std::vector<T> scatter(const std::vector<std::vector<T>>& chunks, int root) {
    if (rank() == root) {
      for (int r = 0; r < size(); ++r) {
        send<T>(chunks[static_cast<std::size_t>(r)], r, kInternalTagScatter);
      }
    }
    return recv<T>(root, kInternalTagScatter);
  }

  /// MPI_Alltoall (variable-length): outgoing[j] goes to rank j; the
  /// result's element [j] came from rank j.
  template <typename T>
  std::vector<std::vector<T>> alltoall(const std::vector<std::vector<T>>& outgoing) {
    for (int r = 0; r < size(); ++r) {
      send<T>(outgoing[static_cast<std::size_t>(r)], r, kInternalTagAlltoall);
    }
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(size()));
    for (int r = 0; r < size(); ++r) {
      incoming[static_cast<std::size_t>(r)] = recv<T>(r, kInternalTagAlltoall);
    }
    return incoming;
  }

  /// MPI_Comm_split: collective.  Ranks with the same `color` form a
  /// new communicator, ordered by (key, old rank).  The returned
  /// communicator owns its world's lifetime (safe to outlive the call
  /// site while the parent world is alive).
  Communicator split(int color, int key);

  template <typename T>
  void send(std::span<const T> data, int dest, int tag) {
    send_bytes(std::as_bytes(data), dest, tag);
  }

  template <typename T>
  std::vector<T> recv(int source, int tag) {
    auto raw = recv_bytes(source, tag);
    std::vector<T> out(raw.size() / sizeof(T));
    std::memcpy(out.data(), raw.data(), out.size() * sizeof(T));
    return out;
  }

 private:
  friend class World;
  Communicator(World* world, int rank) : world_(world), rank_(rank) {}
  Communicator(std::shared_ptr<World> owned, int rank)
      : world_(owned.get()), rank_(rank), owned_world_(std::move(owned)) {}

  /// Reserved tag space for internal collectives; user tags >= 0 never
  /// collide with these.
  static constexpr int kInternalTagScatter = -1000001;
  static constexpr int kInternalTagAlltoall = -1000002;

  World* world_ = nullptr;
  int rank_ = -1;
  /// Set for communicators produced by split(): keeps the sub-world
  /// alive for as long as any of its communicators.
  std::shared_ptr<World> owned_world_;
};

/// Runs `body` as an SPMD region over `size` ranks, one std::thread per
/// rank, and joins them.  The first exception thrown by any rank is
/// rethrown on the caller after all ranks have been joined.
void run(int size, const std::function<void(Communicator&)>& body);

}  // namespace apio::pmpi
