#include "storage/pfs_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/units.h"

namespace apio::storage {

PfsModel::PfsModel(PfsParams params) : params_(std::move(params)) {
  APIO_REQUIRE(params_.node_bandwidth > 0, "node_bandwidth must be positive");
  APIO_REQUIRE(params_.aggregate_cap > 0, "aggregate_cap must be positive");
  APIO_REQUIRE(params_.per_rank_half_size >= 0, "per_rank_half_size must be >= 0");
}

double PfsModel::effective_bandwidth(std::uint64_t total_bytes, int ranks, int nodes,
                                     IoKind kind, double contention_factor) const {
  APIO_REQUIRE(ranks >= 1 && nodes >= 1, "ranks and nodes must be >= 1");
  APIO_REQUIRE(contention_factor > 0.0 && contention_factor <= 1.0,
               "contention factor must be in (0,1]");
  const double per_rank = static_cast<double>(total_bytes) / ranks;
  const double eff = per_rank / (per_rank + params_.per_rank_half_size);
  double bw = std::min(nodes * params_.node_bandwidth * eff, params_.aggregate_cap);
  if (kind == IoKind::kRead) bw *= params_.read_bandwidth_factor;
  return bw * contention_factor;
}

double PfsModel::io_seconds(std::uint64_t total_bytes, int ranks, int nodes,
                            IoKind kind, double contention_factor) const {
  const double bw = effective_bandwidth(total_bytes, ranks, nodes, kind, contention_factor);
  const double data_time = static_cast<double>(total_bytes) / bw;
  return params_.open_latency + params_.meta_per_rank * ranks + data_time;
}

double PfsModel::aggregate_bandwidth(std::uint64_t total_bytes, int ranks, int nodes,
                                     IoKind kind, double contention_factor) const {
  APIO_REQUIRE(total_bytes > 0, "aggregate_bandwidth of an empty transfer");
  return static_cast<double>(total_bytes) /
         io_seconds(total_bytes, ranks, nodes, kind, contention_factor);
}

PfsModel PfsModel::summit_gpfs() {
  PfsParams p;
  p.name = "summit-gpfs";
  // Alpine: 2.5 TB/s system peak; a single job observes ~2.2 GB/s per
  // node and a ~280 GB/s allocation share, which reproduces the Fig. 3a
  // saturation at ~128 nodes (768 ranks).
  p.node_bandwidth = 2.2 * kGB;
  p.aggregate_cap = 280.0 * kGB;
  // GPFS's large block size penalises small per-rank requests strongly.
  p.per_rank_half_size = 256.0 * static_cast<double>(kKiB);
  p.open_latency = 0.10;
  // Token/lock traffic per writer: drives the strong-scaling decline of
  // sync bandwidth on Summit (Fig. 4c, Fig. 6).
  p.meta_per_rank = 1.0e-4;
  p.read_bandwidth_factor = 1.2;
  return PfsModel(p);
}

PfsModel PfsModel::cori_lustre(int stripe_count) {
  APIO_REQUIRE(stripe_count >= 1, "stripe_count must be >= 1");
  PfsParams p;
  p.name = "cori-lustre(" + std::to_string(stripe_count) + " OSTs)";
  // Cori scratch: 700 GB/s over 248 OSTs => ~0.7 GB/s per OST achieved;
  // a job's cap is its stripe count times that.  With the paper's
  // 72-OST stripe_large setting the cap is ~50 GB/s, which reproduces
  // the Fig. 3b saturation at ~32 nodes (1024 ranks, 32 ranks/node).
  p.node_bandwidth = 1.6 * kGB;
  p.aggregate_cap = 0.7 * kGB * stripe_count;
  // Lustre with explicit striping handles smaller requests better than
  // GPFS but still has an efficiency knee.
  p.per_rank_half_size = 64.0 * static_cast<double>(kKiB);
  p.open_latency = 0.20;
  // User-visible metadata cost per rank is small (single MDS, but the
  // data path is decoupled from lock tokens).
  p.meta_per_rank = 1.0e-5;
  p.read_bandwidth_factor = 1.1;
  return PfsModel(p);
}

MemcpyModel::MemcpyModel(double node_bandwidth, double half_size_bytes,
                         double latency_seconds)
    : node_bandwidth_(node_bandwidth),
      half_size_(half_size_bytes),
      latency_(latency_seconds) {
  APIO_REQUIRE(node_bandwidth > 0, "memcpy bandwidth must be positive");
}

double MemcpyModel::efficiency(std::uint64_t per_rank_bytes) const {
  const double s = static_cast<double>(per_rank_bytes);
  return s / (s + half_size_);
}

double MemcpyModel::copy_seconds(std::uint64_t bytes_per_node,
                                 std::uint64_t per_rank_bytes) const {
  const double bw = node_bandwidth_ * efficiency(per_rank_bytes);
  return latency_ + static_cast<double>(bytes_per_node) / bw;
}

double MemcpyModel::transact_seconds(std::uint64_t total_bytes, int ranks,
                                     int nodes) const {
  APIO_REQUIRE(ranks >= 1 && nodes >= 1, "ranks and nodes must be >= 1");
  const std::uint64_t per_node = (total_bytes + nodes - 1) / nodes;
  const std::uint64_t per_rank = (total_bytes + ranks - 1) / ranks;
  return copy_seconds(per_node, per_rank);
}

double MemcpyModel::aggregate_bandwidth(std::uint64_t total_bytes, int ranks,
                                        int nodes) const {
  APIO_REQUIRE(total_bytes > 0, "aggregate_bandwidth of an empty transfer");
  return static_cast<double>(total_bytes) / transact_seconds(total_bytes, ranks, nodes);
}

MemcpyModel MemcpyModel::summit_dram() {
  // POWER9 DDR4: one-node staging copy sustains ~20 GB/s with all 6
  // ranks copying; the bandwidth is constant above ~32 MB (Sec. III-B1)
  // which a 2 MiB half-size knee approximates.
  return MemcpyModel(20.0 * kGB, 2.0 * static_cast<double>(kMiB), 2.0e-5);
}

MemcpyModel MemcpyModel::cori_dram() {
  // Haswell DDR4, 32 ranks sharing two sockets: ~10 GB/s staging copy.
  return MemcpyModel(10.0 * kGB, 2.0 * static_cast<double>(kMiB), 2.0e-5);
}

}  // namespace apio::storage
