// Deterministic pseudo-random number generation for simulations and tests.
//
// apio simulations must be reproducible run-to-run, so every stochastic
// component takes an explicit Rng seeded by the caller; nothing in the
// library reads a global entropy source.
#pragma once

#include <cstdint>

namespace apio {

/// xoshiro256** 1.0 — fast, high-quality, splittable-enough PRNG for
/// simulation workloads (Blackman & Vigna).  Not cryptographic.
class Rng {
 public:
  /// Seeds the generator deterministically from a 64-bit seed using
  /// SplitMix64 to fill the state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next 64 random bits.
  std::uint64_t next_u64();

  /// Returns a double uniformly distributed in [0, 1).
  double next_double();

  /// Returns a double uniformly distributed in [lo, hi).
  double uniform(double lo, double hi);

  /// Returns an integer uniformly distributed in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Returns a sample from a normal distribution (Box-Muller).
  double normal(double mean, double stddev);

  /// Returns a sample from a log-normal distribution parameterised by the
  /// mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Returns an exponentially distributed sample with the given rate.
  double exponential(double rate);

  /// Derives an independent child generator; used to give each simulated
  /// rank / node its own stream.
  Rng split();

 private:
  std::uint64_t state_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace apio
