// Tests for the ModeAdvisor feedback loop (Fig. 2): exploration,
// estimation from observed records, and sync-vs-async recommendations.
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/advisor.h"

namespace apio::model {
namespace {

vol::IoRecord sync_write(std::uint64_t bytes, int ranks, double seconds) {
  vol::IoRecord r;
  r.op = vol::IoOp::kWrite;
  r.bytes = bytes;
  r.ranks = ranks;
  r.blocking_seconds = seconds;
  r.completion_seconds = seconds;
  r.async = false;
  return r;
}

vol::IoRecord async_write(std::uint64_t bytes, int ranks, double staging_seconds,
                          double completion_seconds) {
  vol::IoRecord r;
  r.op = vol::IoOp::kWrite;
  r.bytes = bytes;
  r.ranks = ranks;
  r.blocking_seconds = staging_seconds;
  r.completion_seconds = completion_seconds;
  r.async = true;
  return r;
}

/// Feeds an advisor a sync population at rate `sync_rate` and an async
/// (staging) population at rate `async_rate`.
void feed(ModeAdvisor& advisor, double sync_rate, double async_rate,
          int samples = 6) {
  for (int i = 1; i <= samples; ++i) {
    const std::uint64_t bytes = static_cast<std::uint64_t>(i) * 10'000'000;
    const int ranks = 2 * i;
    advisor.on_io(sync_write(bytes, ranks, static_cast<double>(bytes) / sync_rate));
    advisor.on_io(async_write(bytes, ranks, static_cast<double>(bytes) / async_rate,
                              static_cast<double>(bytes) / sync_rate));
  }
}

TEST(ModeAdvisorTest, StartsUnready) {
  ModeAdvisor advisor;
  EXPECT_FALSE(advisor.sync_ready());
  EXPECT_FALSE(advisor.async_ready());
  EXPECT_FALSE(advisor.compute_ready());
}

TEST(ModeAdvisorTest, ExplorationOrderSyncThenAsync) {
  ModeAdvisor advisor;
  // With nothing known: measure sync first.
  EXPECT_EQ(advisor.recommend(1'000'000, 4), IoMode::kSync);

  for (int i = 1; i <= 4; ++i) {
    advisor.on_io(sync_write(static_cast<std::uint64_t>(i) * 1'000'000, i, 0.1 * i));
  }
  advisor.record_compute(1.0);
  // Sync known, async not: explore async.
  EXPECT_TRUE(advisor.sync_ready());
  EXPECT_EQ(advisor.recommend(1'000'000, 4), IoMode::kAsync);
}

TEST(ModeAdvisorTest, IgnoresZeroBlockingRecords) {
  ModeAdvisor advisor;
  vol::IoRecord r = async_write(1000, 1, 0.0, 1.0);  // background read style
  advisor.on_io(r);
  EXPECT_EQ(advisor.history().size(), 0u);
}

TEST(ModeAdvisorTest, EstimatesMatchFedRates) {
  ModeAdvisor advisor;
  feed(advisor, /*sync_rate=*/1e9, /*async_rate=*/1e10);
  advisor.record_compute(2.0);

  const std::uint64_t probe = 40'000'000;
  EXPECT_NEAR(advisor.estimate_io_seconds(probe, 8), probe / 1e9, probe / 1e9 * 0.2);
  EXPECT_NEAR(advisor.estimate_transact_seconds(probe, 8), probe / 1e10,
              probe / 1e10 * 0.2);
  EXPECT_DOUBLE_EQ(advisor.estimate_compute_seconds(), 2.0);
}

TEST(ModeAdvisorTest, RecommendsAsyncWhenComputeHidesIo) {
  ModeAdvisor advisor;
  feed(advisor, 1e9, 1e10);
  advisor.record_compute(10.0);  // plenty of compute to overlap with
  EXPECT_EQ(advisor.recommend(50'000'000, 8), IoMode::kAsync);
  EXPECT_EQ(advisor.predict_scenario(50'000'000, 8), OverlapScenario::kIdeal);
}

TEST(ModeAdvisorTest, RecommendsSyncWhenOverheadCannotAmortize) {
  ModeAdvisor advisor;
  // Staging barely faster than the PFS: overhead eats the benefit when
  // compute is negligible.
  feed(advisor, 1e9, 1.05e9);
  advisor.record_compute(1e-4);
  EXPECT_EQ(advisor.recommend(50'000'000, 8), IoMode::kSync);
  EXPECT_EQ(advisor.predict_scenario(50'000'000, 8), OverlapScenario::kSlowdown);
}

TEST(ModeAdvisorTest, PredictEpochComposesEstimators) {
  ModeAdvisor advisor;
  feed(advisor, 2e9, 2e10);
  advisor.record_compute(3.0);
  const auto costs = advisor.predict_epoch(20'000'000, 4);
  EXPECT_NEAR(costs.t_comp, 3.0, 1e-12);
  EXPECT_GT(costs.t_io, 0.0);
  EXPECT_GT(costs.t_transact, 0.0);
  EXPECT_LT(costs.t_transact, costs.t_io);
}

TEST(ModeAdvisorTest, R2HighForCleanLinearPopulations) {
  ModeAdvisor advisor;
  feed(advisor, 1e9, 1e10, /*samples=*/12);
  // Rates proportional to bytes/second with bytes and ranks growing
  // linearly: the linear fit should be essentially exact, mirroring the
  // paper's >80 % (sync) / >90 % (async) observations.
  EXPECT_GT(advisor.sync_r_squared(), 0.9);
  EXPECT_GT(advisor.async_r_squared(), 0.9);
}

TEST(ModeAdvisorTest, ComputeEwmaTracksDrift) {
  ModeAdvisor advisor;
  advisor.record_compute(1.0);
  for (int i = 0; i < 30; ++i) advisor.record_compute(4.0);
  EXPECT_NEAR(advisor.estimate_compute_seconds(), 4.0, 0.01);
  EXPECT_EQ(advisor.compute_observations(), 31u);
}

TEST(ModeAdvisorTest, NegativeComputeRejected) {
  ModeAdvisor advisor;
  EXPECT_THROW(advisor.record_compute(-1.0), InvalidArgumentError);
}

TEST(ModeAdvisorTest, SaveAndLoadStatePreservesDecisions) {
  ModeAdvisor original;
  feed(original, 1e9, 1e10, 8);
  original.record_compute(2.0);

  const std::string state = original.save_state();
  auto restored = ModeAdvisor::load_state(state);

  ASSERT_TRUE(restored->sync_ready());
  ASSERT_TRUE(restored->async_ready());
  ASSERT_TRUE(restored->compute_ready());
  EXPECT_EQ(restored->history().size(), original.history().size());
  EXPECT_NEAR(restored->estimate_compute_seconds(),
              original.estimate_compute_seconds(), 1e-9);
  const std::uint64_t probe = 40'000'000;
  EXPECT_NEAR(restored->estimate_io_seconds(probe, 8),
              original.estimate_io_seconds(probe, 8),
              original.estimate_io_seconds(probe, 8) * 1e-6);
  EXPECT_EQ(restored->recommend(probe, 8), original.recommend(probe, 8));
}

TEST(ModeAdvisorTest, LoadStateRejectsGarbage) {
  EXPECT_THROW(ModeAdvisor::load_state("not a state"), FormatError);
  EXPECT_THROW(ModeAdvisor::load_state("advisorv1\nrubbish"), FormatError);
}

TEST(ModeAdvisorTest, SaveStateWithoutComputeObservations) {
  ModeAdvisor advisor;
  feed(advisor, 1e9, 1e10, 4);
  auto restored = ModeAdvisor::load_state(advisor.save_state());
  EXPECT_FALSE(restored->compute_ready());
  EXPECT_TRUE(restored->sync_ready());
}

TEST(ModeAdvisorTest, DecisionMatchesOracleOverSweep) {
  // For a grid of workloads, the advisor trained on exact-rate
  // populations must agree with the analytic oracle (Eq. 2a vs 2b).
  const double sync_rate = 5e8;
  const double async_rate = 8e9;
  ModeAdvisor advisor;
  feed(advisor, sync_rate, async_rate, 10);

  for (double compute : {0.0001, 0.01, 0.5, 5.0}) {
    ModeAdvisor fresh;
    feed(fresh, sync_rate, async_rate, 10);
    fresh.record_compute(compute);
    for (std::uint64_t bytes : {5'000'000ull, 50'000'000ull, 500'000'000ull}) {
      EpochCosts oracle;
      oracle.t_comp = compute;
      oracle.t_io = static_cast<double>(bytes) / sync_rate;
      oracle.t_transact = static_cast<double>(bytes) / async_rate;
      const IoMode expected =
          async_is_beneficial(oracle) ? IoMode::kAsync : IoMode::kSync;
      // Allow the advisor's regression-smoothed estimates to disagree
      // only when the two modes are within 10% of each other.
      const double margin =
          std::abs(sync_epoch_seconds(oracle) - async_epoch_seconds(oracle)) /
          sync_epoch_seconds(oracle);
      if (margin > 0.1) {
        EXPECT_EQ(fresh.recommend(bytes, 8), expected)
            << "compute=" << compute << " bytes=" << bytes;
      }
    }
  }
}

}  // namespace
}  // namespace apio::model
