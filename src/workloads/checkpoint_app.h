// Shared driver for checkpoint-based applications: N time steps of
// computation between I/O phases, each I/O phase writing one plotfile
// or checkpoint group (the structure of Nyx, Castro and EQSIM in
// Sec. IV-C).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "pmpi/world.h"
#include "vol/connector.h"

namespace apio::workloads {

/// Epoch structure of a checkpointing application.
struct CheckpointSchedule {
  int checkpoints = 3;            ///< number of I/O phases
  int steps_per_checkpoint = 20;  ///< time steps per compute phase
  double seconds_per_step = 0.0;  ///< emulated compute per time step
};

/// Result of a real execution (identical on every rank).
struct CheckpointRunResult {
  std::vector<double> checkpoint_io_seconds;  ///< max over ranks per phase
  std::uint64_t bytes_per_checkpoint = 0;     ///< aggregate over ranks
  double total_seconds = 0.0;
  /// Requests that completed with an error, aggregated over ranks.  A
  /// resilient run degrades instead of aborting: failures are drained
  /// through an EventSet, counted here, and described in local_errors.
  std::uint64_t failed_requests = 0;
  /// This rank's failure descriptions (identity + message + category);
  /// NOT collective — empty on ranks that saw no failure.
  std::vector<std::string> local_errors;

  double peak_bandwidth() const;
  double mean_bandwidth() const;
};

/// Drives the epoch loop.  `create_meta(c)` runs on rank 0 before phase
/// `c` (group/dataset creation); `write(c, outstanding)` runs on every
/// rank and returns its blocking seconds.  The driver inserts barriers,
/// reduces the phase time over ranks, drains requests at the end and
/// broadcasts one consistent result.
CheckpointRunResult run_checkpoint_app(
    vol::Connector& connector, pmpi::Communicator& comm,
    const CheckpointSchedule& schedule, std::uint64_t local_bytes_per_checkpoint,
    const std::function<void(int)>& create_meta,
    const std::function<double(int, std::vector<vol::RequestPtr>&)>& write);

}  // namespace apio::workloads
