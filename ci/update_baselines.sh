#!/usr/bin/env bash
# Regenerates the committed bench baselines the regression gate
# (apio_bench_compare) diffs against.  Run after an intentional change
# to the simulator, the model, or a gated bench's configuration, then
# commit the refreshed bench/baselines/*.jsonl together with the change
# that moved the numbers.
#
# Usage: ci/update_baselines.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

if [[ ! -d "${BUILD}/bench" ]]; then
  echo "error: ${BUILD}/bench not found — build the default preset first" >&2
  exit 2
fi

mkdir -p bench/baselines
for bench in fig3_vpic_write fig7_overlap ablation_vectored_io fig_fairshare \
             fig_trace_overhead ablation_cache; do
  out="bench/baselines/${bench}.jsonl"
  rm -f "${out}"
  APIO_BENCH_JSON="${out}" "${BUILD}/bench/${bench}" >/dev/null
  echo "regenerated ${out}"
done

"${BUILD}/tools/apio_bench_compare" bench/baselines/*.jsonl \
  --baselines bench/baselines >/dev/null
echo "baselines self-consistent; commit bench/baselines/ with your change"
