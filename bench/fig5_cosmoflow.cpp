// Fig. 5: Cosmoflow batch-read bandwidth on Summit (the paper only ran
// it where GPUs are available).  Sync reads stop scaling past ~128
// nodes; the prefetching async loader maintains a higher bandwidth.
#include "bench/bench_util.h"
#include "workloads/cosmoflow.h"

int main() {
  using namespace apio;
  const auto spec = sim::SystemSpec::summit();
  sim::EpochSimulator simulator(spec);
  model::ModeAdvisor advisor;
  workloads::CosmoflowParams params;  // 128^3 voxels, batch 8, 4 epochs

  bench::banner("Fig. 5 (" + spec.name + "): Cosmoflow batch reads",
                "128^3 voxel samples, batch size 8, 4 training epochs, "
                "GPU-resident training data");

  std::vector<bench::SweepPoint> points;
  for (int nodes : {8, 16, 32, 64, 128, 256, 512}) {
    auto sync_cfg = workloads::CosmoflowProxy::sim_config(spec, nodes,
                                                          model::IoMode::kSync, params);
    auto async_cfg = workloads::CosmoflowProxy::sim_config(
        spec, nodes, model::IoMode::kAsync, params);
    sync_cfg.contention_sigma_override = 0.0;
    async_cfg.contention_sigma_override = 0.0;
    bench::SweepPoint p;
    p.nodes = nodes;
    p.bytes = sync_cfg.bytes_per_epoch;
    p.sync_bw = bench::run_point(simulator, sync_cfg, &advisor);
    p.async_bw = bench::run_point(simulator, async_cfg, &advisor);
    points.push_back(p);
  }

  bench::print_sweep(advisor, spec, points);
  return 0;
}
