#include "common/error.h"

#include <sstream>

namespace apio {

std::string error_category(const std::exception_ptr& error) {
  if (error == nullptr) return "";
  try {
    std::rethrow_exception(error);
  } catch (const TransientIoError&) {
    return "transient-io";
  } catch (const IoError&) {
    return "io";
  } catch (const FormatError&) {
    return "format";
  } catch (const NotFoundError&) {
    return "not-found";
  } catch (const StateError&) {
    return "state";
  } catch (const InvalidArgumentError&) {
    return "invalid-argument";
  } catch (const Error&) {
    return "error";
  } catch (const std::exception&) {
    return "std";
  } catch (...) {
    return "unknown";
  }
}

std::string error_message(const std::exception_ptr& error) {
  if (error == nullptr) return "";
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "<non-standard exception>";
  }
}

}  // namespace apio

namespace apio::detail {

void throw_check_failure(const char* expr, const std::string& message,
                         std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " [" << loc.function_name()
     << "] check failed: (" << expr << ") — " << message;
  throw InvalidArgumentError(os.str());
}

}  // namespace apio::detail
