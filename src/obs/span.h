// Span tracing: begin/end spans with a category, rank and stream id,
// exported as Chrome trace_event JSON (load into chrome://tracing or
// Perfetto) and as a plain-text per-category summary.
//
// Disabled by default; every instrumentation site starts with a relaxed
// atomic check so the cost of compiled-in tracing is one branch.  When
// enabled, finished spans append to a guarded process-wide buffer —
// tracing is a profiling mode, not a production hot path, so a mutex
// per completed span (one per I/O operation / task / barrier) is cheap
// relative to the operations being traced.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace apio::obs {

/// Layer the span belongs to; becomes the Chrome trace "cat" field.
enum class Category : std::uint8_t {
  kVol = 0,
  kTasking,
  kPmpi,
  kStorage,
  kTool,
  kApp,
};

const char* to_string(Category category);

/// One finished span.
struct SpanRecord {
  std::string name;
  Category category = Category::kApp;
  /// pmpi rank of the emitting thread (-1 outside an SPMD region).
  int rank = -1;
  /// Background execution-stream id (-1 on application threads).
  int stream = -1;
  /// Stable small integer identifying the emitting thread.
  int tid = 0;
  /// Seconds since the tracer epoch at which the span began.
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
  /// Payload bytes the span moved (0 when not applicable).
  std::uint64_t bytes = 0;
};

/// Global tracing switch; independent of the metrics switch so traces
/// (which accumulate memory) can be off while counters run.
bool tracing_enabled();
void set_tracing_enabled(bool on);

/// Thread identity used to label spans.  The rank is set by pmpi::run
/// for rank threads; the stream id by ExecutionStream workers.
int thread_rank();
void set_thread_rank(int rank);
int thread_stream();
void set_thread_stream(int stream);
int thread_tid();

/// Monotonic wall time in seconds (steady_clock).
double steady_seconds();

class Tracer {
 public:
  static Tracer& instance();

  /// Seconds on the steady clock at tracer construction; span starts
  /// are stored relative to this.
  double epoch_seconds() const { return epoch_; }

  void record(SpanRecord span);

  std::vector<SpanRecord> spans() const;
  std::size_t size() const;
  void clear();

  /// Chrome trace_event JSON object: {"traceEvents":[...],...}.
  /// Complete "X" (duration) events; ts/dur in microseconds; pid 0;
  /// tid encodes rank/stream/thread.
  std::string to_chrome_json() const;

  /// Per (category, name) count / total / mean / max table.
  std::string summary() const;

 private:
  Tracer();

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  double epoch_;
};

/// RAII span: samples the clock on construction when tracing is
/// enabled, records on destruction.  Near-zero cost when disabled.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Category category, std::uint64_t bytes = 0)
      : active_(tracing_enabled()) {
    if (active_) {
      name_ = name;
      category_ = category;
      bytes_ = bytes;
      start_ = steady_seconds();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { finish(); }

  /// Updates the byte payload after construction (e.g. once known).
  void set_bytes(std::uint64_t bytes) { bytes_ = bytes; }

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void finish();

 private:
  bool active_ = false;
  const char* name_ = "";
  Category category_ = Category::kApp;
  std::uint64_t bytes_ = 0;
  double start_ = 0.0;
};

/// Times one operation into both pillars: a latency histogram + byte
/// counter when metrics are enabled, and a span when tracing is.  The
/// metric references are cached by the caller (function-local statics)
/// so the per-op cost is two relaxed loads when everything is off.
class Histogram;
class Counter;

class TimedOp {
 public:
  TimedOp(const char* span_name, Category category, Histogram& latency,
          Counter* bytes_counter, std::uint64_t bytes);
  TimedOp(const TimedOp&) = delete;
  TimedOp& operator=(const TimedOp&) = delete;
  ~TimedOp();

 private:
  bool metrics_;
  bool tracing_;
  const char* name_;
  Category category_;
  Histogram* latency_;
  Counter* bytes_counter_;
  std::uint64_t bytes_;
  double start_ = 0.0;
};

}  // namespace apio::obs
