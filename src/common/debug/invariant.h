// Always-cheap invariant macros for the concurrent substrate.
//
// APIO_REQUIRE / APIO_ASSERT (common/error.h) throw exceptions and are
// the right tool for API misuse on user-facing paths.  The macros here
// are different: they guard *internal* invariants of lock-free and
// locked data structures (queue states, barrier generations, staging
// accounting) where throwing would unwind through locks and leave the
// structure corrupted.  A violated invariant prints a diagnostic and
// aborts — the fail-loud discipline TSan-style tooling relies on.
//
// All checks compile to no-ops (expressions are not evaluated) when
// APIO_DEBUG_CHECKS is not defined, i.e. in Release builds.
#pragma once

#include <source_location>

namespace apio::debug {

/// Prints "<kind>: <expr> — <message> at file:line (function)" to
/// stderr and calls std::abort().  Never throws: invariant failures
/// must not unwind through locked regions.
[[noreturn]] void invariant_failure(
    const char* kind, const char* expr, const char* message,
    std::source_location loc = std::source_location::current());

}  // namespace apio::debug

#if defined(APIO_DEBUG_CHECKS)

/// Internal invariant of a concurrent structure; aborts on violation.
#define APIO_INVARIANT(expr, message)                                        \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::apio::debug::invariant_failure("APIO_INVARIANT", #expr, (message)); \
    }                                                                        \
  } while (false)

#else

// The sizeof keeps `expr` syntactically checked without evaluating it.
#define APIO_INVARIANT(expr, message) \
  do {                                \
    (void)sizeof(!(expr));            \
    (void)(message);                  \
  } while (false)

#endif  // APIO_DEBUG_CHECKS
