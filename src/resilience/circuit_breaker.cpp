#include "resilience/circuit_breaker.h"

#include <mutex>

#include "obs/metrics.h"

namespace apio::resilience {
namespace {

obs::Gauge& breaker_state_gauge() {
  static auto& g = obs::Registry::instance().gauge("io.breaker_state");
  return g;
}

obs::Counter& breaker_trips_counter() {
  static auto& c = obs::Registry::instance().counter("io.breaker_trips");
  return c;
}

}  // namespace

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "<unknown>";
}

CircuitBreaker::CircuitBreaker(BreakerOptions options, const Clock* clock,
                               std::string name)
    : options_(options),
      clock_(clock != nullptr ? clock : &wall_clock_),
      name_(std::move(name)) {}

void CircuitBreaker::transition_locked(BreakerState next) {
  if (state_ == next) return;
  state_ = next;
  if (next == BreakerState::kOpen) {
    ++trips_;
    opened_at_ = clock_->now();
    if (obs::enabled()) breaker_trips_counter().increment();
  }
  if (obs::enabled()) {
    breaker_state_gauge().set(static_cast<std::int64_t>(next));
  }
}

bool CircuitBreaker::allow() {
  std::lock_guard lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      if (clock_->now() - opened_at_ >= options_.open_seconds) {
        transition_locked(BreakerState::kHalfOpen);
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::on_success() {
  std::lock_guard lock(mutex_);
  failures_ = 0;
  transition_locked(BreakerState::kClosed);
}

void CircuitBreaker::on_failure() {
  std::lock_guard lock(mutex_);
  ++failures_;
  if (state_ == BreakerState::kHalfOpen) {
    transition_locked(BreakerState::kOpen);
    return;
  }
  if (state_ == BreakerState::kClosed && options_.failure_threshold > 0 &&
      failures_ >= options_.failure_threshold) {
    transition_locked(BreakerState::kOpen);
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard lock(mutex_);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard lock(mutex_);
  return trips_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard lock(mutex_);
  return failures_;
}

}  // namespace apio::resilience
