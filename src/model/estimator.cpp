#include "model/estimator.h"

#include <algorithm>

#include "common/error.h"

namespace apio::model {

IoRateEstimator::IoRateEstimator(FeatureForm form, std::size_t min_samples)
    : form_(form), min_samples_(std::max<std::size_t>(min_samples, 3)) {}

std::optional<LinearFit> IoRateEstimator::try_fit(
    FeatureForm form, const std::vector<IoSample>& samples) {
  std::vector<std::vector<double>> rows;
  std::vector<double> y;
  rows.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    rows.push_back(make_features(form, static_cast<double>(s.data_size),
                                 static_cast<double>(s.ranks)));
    y.push_back(s.io_rate);
  }
  try {
    return fit_least_squares(rows, y);
  } catch (const InvalidArgumentError&) {
    return std::nullopt;  // collinear / under-determined; keep old fit
  }
}

void IoRateEstimator::refit(const std::vector<IoSample>& samples) {
  if (samples.size() < min_samples_) return;

  std::optional<LinearFit> best = try_fit(form_, samples);
  FeatureForm best_form = form_;
  if (auto_form_) {
    const FeatureForm other = form_ == FeatureForm::kLinear
                                  ? FeatureForm::kLinearLog
                                  : FeatureForm::kLinear;
    auto alt = try_fit(other, samples);
    if (alt && (!best || alt->r_squared > best->r_squared)) {
      best = alt;
      best_form = other;
    }
  }
  if (!best) return;

  fit_ = *best;
  form_ = best_form;
  min_rate_seen_ = samples.front().io_rate;
  max_rate_seen_ = samples.front().io_rate;
  for (const auto& s : samples) {
    min_rate_seen_ = std::min(min_rate_seen_, s.io_rate);
    max_rate_seen_ = std::max(max_rate_seen_, s.io_rate);
  }
}

double IoRateEstimator::estimate_rate(std::uint64_t data_size, int ranks) const {
  APIO_REQUIRE(ready(), "estimate_rate() before a successful refit()");
  const auto features = make_features(form_, static_cast<double>(data_size),
                                      static_cast<double>(ranks));
  const double raw = predict(fit_, features);
  // Clamp into a (generously) widened observation envelope: regression
  // extrapolation must never return a non-positive or absurd rate, but
  // legitimate weak-scaling forecasts reach far beyond the trained
  // range (async rates grow linearly with node count), so the ceiling
  // is deliberately loose.
  const double lo = 0.05 * min_rate_seen_;
  const double hi = 1000.0 * max_rate_seen_;
  return std::clamp(raw, lo, hi);
}

double IoRateEstimator::estimate_seconds(std::uint64_t data_size, int ranks) const {
  return static_cast<double>(data_size) / estimate_rate(data_size, ranks);
}

double ComputeTimeEstimator::estimate_seconds() const {
  APIO_REQUIRE(ready(), "compute-time estimate before any observation");
  return ewma_.value();
}

}  // namespace apio::model
