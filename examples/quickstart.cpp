// Quickstart: the apio public API in one file.
//
//   1. create a container on a POSIX file,
//   2. write a dataset synchronously (native VOL connector),
//   3. write a dataset asynchronously (async VOL connector) and keep
//      computing while the transfer completes in the background,
//   4. read everything back and verify.
//
// Build & run:  ./build/examples/quickstart [/tmp/apio_quickstart.h5]
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/units.h"
#include "h5/file.h"
#include "vol/async_connector.h"
#include "vol/native_connector.h"

int main(int argc, char** argv) {
  using namespace apio;
  const std::string path = argc > 1 ? argv[1] : "/tmp/apio_quickstart.h5";

  // --- 1. create a container --------------------------------------------
  auto file = h5::create_file(path);
  auto physics = file->root().create_group("physics");
  physics.set_attribute<double>("dt", 0.001);

  // --- 2. synchronous write through the native connector -----------------
  {
    vol::NativeConnector sync_io(file);
    auto temperature =
        physics.create_dataset("temperature", h5::Datatype::kFloat64, {64, 64});
    std::vector<double> values(64 * 64);
    std::iota(values.begin(), values.end(), 0.0);
    sync_io.dataset_write(temperature, h5::Selection::all(),
                          std::as_bytes(std::span<const double>(values)));
    std::printf("wrote %s synchronously\n", format_bytes(values.size() * 8).c_str());
  }

  // --- 3. asynchronous write through the async connector -----------------
  {
    vol::AsyncConnector async_io(file);
    auto pressure =
        physics.create_dataset("pressure", h5::Datatype::kFloat64, {64, 64});
    std::vector<double> values(64 * 64, 101.325);
    auto request = async_io.dataset_write(
        pressure, h5::Selection::all(), std::as_bytes(std::span<const double>(values)));
    // The connector staged a private copy — this buffer is ours again:
    std::fill(values.begin(), values.end(), -1.0);  // "next iteration's" data
    std::printf("async write issued; computing while it completes...\n");
    request->wait();
    std::printf("async write complete (staged %s, init took %.1f us)\n",
                format_bytes(async_io.stats().bytes_staged).c_str(),
                async_io.stats().init_seconds * 1e6);
    async_io.wait_all();
    // Leave the file open for the read-back below.
  }

  // --- 4. read back and verify -------------------------------------------
  {
    auto temperature = file->dataset_at("physics/temperature");
    auto values = temperature.read_vector<double>(h5::Selection::offsets({0, 0}, {1, 4}));
    std::printf("temperature[0][0..3] = %.0f %.0f %.0f %.0f\n", values[0], values[1],
                values[2], values[3]);
    auto pressure = file->dataset_at("physics/pressure");
    auto p = pressure.read_vector<double>(h5::Selection::offsets({3, 3}, {1, 1}));
    std::printf("pressure[3][3] = %.3f (expected 101.325)\n", p[0]);
    std::printf("container layout: groups = [");
    for (const auto& name : file->root().group_names()) std::printf(" %s", name.c_str());
    std::printf(" ], physics datasets = [");
    for (const auto& name : physics.dataset_names()) std::printf(" %s", name.c_str());
    std::printf(" ]\n");
  }

  file->close();
  std::printf("done; container at %s\n", path.c_str());
  return 0;
}
