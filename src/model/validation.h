// Model validation utilities: k-fold cross-validation of the I/O-rate
// regression.  R² measures in-sample fit; cross-validation measures
// what the advisor actually needs — predictive accuracy on transfers it
// has not seen (the "estimating the effectiveness ... on future
// iterations based on performance observed in previous iterations"
// objective of Sec. III).
#pragma once

#include <cstdint>
#include <vector>

#include "model/history.h"
#include "model/regression.h"

namespace apio::model {

struct CrossValidationResult {
  /// Mean over folds of the mean |predicted − actual| / actual.
  double mean_abs_rel_error = 0.0;
  /// Worst single-sample relative error across all folds.
  double worst_abs_rel_error = 0.0;
  std::size_t folds_evaluated = 0;
};

/// k-fold cross-validation of a rate fit with feature form `form`.
/// Samples are shuffled deterministically by `seed`.  Folds whose
/// training split is degenerate (fewer samples than features, or
/// singular beyond regularisation) are skipped; throws when no fold
/// could be evaluated.
CrossValidationResult k_fold_cross_validation(const std::vector<IoSample>& samples,
                                              FeatureForm form, int k,
                                              std::uint64_t seed = 1234);

}  // namespace apio::model
