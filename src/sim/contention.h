// Full-system contention model (Sec. V-C / Fig. 8).
//
// The shared PFS and interconnect are used by every job on the
// machine, so the bandwidth a run observes varies across runs and
// days.  We model the per-run effect as a multiplicative factor in
// (0, 1] drawn from a truncated log-normal: most runs see mild
// interference, a tail of runs sees heavy interference.  Node-local
// staging copies (the async path's blocking component) are unaffected,
// which is exactly why the paper finds async I/O hides variability.
#pragma once

#include "common/rng.h"

namespace apio::sim {

class ContentionModel {
 public:
  /// `sigma` controls spread (0 = no contention, ~0.4 = busy machine);
  /// `floor` bounds the worst case factor.
  explicit ContentionModel(double sigma = 0.30, double floor = 0.15);

  /// Factor for one run; deterministic in `rng`'s state.
  double sample_run_factor(Rng& rng) const;

  double sigma() const { return sigma_; }

  /// An unloaded machine (factor always 1).
  static ContentionModel none();

 private:
  double sigma_;
  double floor_;
};

}  // namespace apio::sim
