// Virtual HPC system specifications: the two machines of Sec. IV-A.
#pragma once

#include <string>

#include "sim/contention.h"
#include "sim/gpu_link_model.h"
#include "storage/pfs_model.h"

namespace apio::sim {

/// Where the async VOL's transactional copy lands (Sec. II-C: "caching
/// data either to a memory buffer on the same node or to a node-local
/// SSD"; Cori additionally offers a shared burst buffer).
enum class StagingTier {
  kDram,          ///< on-node memory buffer
  kNodeLocalSsd,  ///< per-node NVMe (Summit: 1.6 TB)
  kBurstBuffer,   ///< shared SSD tier (Cori: 1.7 TB/s aggregate)
};

/// Everything the epoch simulator needs to know about a machine.
struct SystemSpec {
  std::string name;
  int ranks_per_node = 1;  ///< the paper's launch configuration
  int max_nodes = 1;
  storage::PfsModel pfs;
  storage::MemcpyModel staging;  ///< DRAM staging copy (t_transact source)
  GpuLinkModel gpu_link;
  bool has_gpus = false;
  ContentionModel contention;
  /// Node-local SSD write bandwidth (0 = no local SSD).
  double ssd_node_bandwidth = 0.0;
  /// Shared burst-buffer tier (0 = none).  The BB behaves like a fast
  /// PFS: per-node injection up to bb_node_bandwidth, capped globally.
  double bb_aggregate_bandwidth = 0.0;
  double bb_node_bandwidth = 0.0;

  bool supports(StagingTier tier) const {
    switch (tier) {
      case StagingTier::kDram: return true;
      case StagingTier::kNodeLocalSsd: return ssd_node_bandwidth > 0.0;
      case StagingTier::kBurstBuffer: return bb_aggregate_bandwidth > 0.0;
    }
    return false;
  }

  /// Summit (OLCF): 4608 nodes, 2x POWER9 + 6x V100 per node, NVLink
  /// 2.0, Alpine GPFS at 2.5 TB/s; the paper runs 6 ranks/node.
  static SystemSpec summit();

  /// Cori-Haswell (NERSC): 2388 Haswell nodes, Lustre at 700 GB/s with
  /// the 72-OST stripe_large setting; the paper runs 32 ranks/node.
  static SystemSpec cori_haswell();
};

}  // namespace apio::sim
