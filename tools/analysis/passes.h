// apio_analyze's flow passes over the extracted CodeModel, plus the
// reporting/waiver/baseline machinery shared by the CLI and the tests.
//
//   lock-rank          a call path may acquire LockRanks out of the
//                      global order in src/common/debug/lock_rank.h
//                      (direct re-acquisition/inversion at an acquire
//                      site, or transitively through callees while a
//                      rank is held)
//   thread-context     a blocking primitive (sleep, condition-variable
//                      wait) or a rank-thread-only function
//                      (APIO_ASSERT_ON_RANK) is reachable from a
//                      stream-context root (APIO_ASSERT_ON_STREAM)
//   unchecked-outcome  a statement discards the result of an I/O
//                      outcome API (write_v/read_v byte counts,
//                      RetrySession outcomes, EventSet error
//                      accessors, try_push/try_pop)
//
// Findings carry a call-chain witness and a stable key (no line
// numbers) so baselines survive unrelated edits.  A finding is
// suppressed by `// apio-lint: allow(<rule>)` on the reported line;
// waivers that match no finding are themselves reported (stale) so
// suppressions cannot outlive the code they excused.
#pragma once

#include <iosfwd>
#include <set>

#include "analysis/call_graph.h"

namespace apio::analysis {

inline constexpr const char* kRuleLockRank = "lock-rank";
inline constexpr const char* kRuleThreadContext = "thread-context";
inline constexpr const char* kRuleUncheckedOutcome = "unchecked-outcome";

/// One hop of a finding's call-chain witness.
struct WitnessStep {
  std::string function;  ///< qualified name
  std::string file;
  int line = 0;
  std::string note;  ///< e.g. "calls run_attempt", "acquires kVolCache"
};

struct Finding {
  std::string rule;
  std::string file;  ///< repo-relative path of the reported line
  int line = 0;
  std::string function;  ///< qualified name containing the reported line
  std::string message;
  std::string key;  ///< stable identity for baselines (no line numbers)
  std::vector<WitnessStep> witness;
};

/// A waiver comment naming one of our rules that suppressed nothing.
struct StaleWaiver {
  std::string file;
  int line = 0;
  std::string rule;
};

struct Analysis {
  std::vector<Finding> findings;   ///< active: fail the run
  std::vector<Finding> baselined;  ///< matched --baseline, reported quietly
  std::vector<StaleWaiver> stale_waivers;  ///< also fail the run

  bool clean() const { return findings.empty() && stale_waivers.empty(); }
};

/// Runs all three passes.  `baseline` holds finding keys frozen by
/// --baseline (empty set = everything is active).
Analysis analyze(const CodeModel& model, const std::set<std::string>& baseline);

/// Human-readable report (one line per finding + indented witness).
void print_text(const Analysis& analysis, std::ostream& os);

/// SARIF-lite JSON: {tool, version, findings: [...], baselined, stale_waivers}.
std::string to_json(const Analysis& analysis);

/// JSON for --write-baseline: the sorted keys of every current finding
/// (active and already-baselined).
std::string baseline_json(const Analysis& analysis);

/// Parses a baseline file produced by baseline_json().  Returns false
/// (with *err set) when the file exists but cannot be parsed; a missing
/// file is the caller's concern.
bool read_baseline(const std::filesystem::path& path,
                   std::set<std::string>& keys, std::string& err);

}  // namespace apio::analysis
