#include "tasking/scheduler.h"

#include "common/debug/thread_role.h"
#include "common/error.h"

namespace apio::tasking {

Scheduler::Scheduler(std::size_t num_streams) : pool_(std::make_shared<Pool>()) {
  APIO_REQUIRE(num_streams >= 1, "Scheduler requires at least one stream");
  streams_.reserve(num_streams);
  for (std::size_t i = 0; i < num_streams; ++i) {
    streams_.push_back(std::make_unique<ExecutionStream>(pool_));
  }
}

Scheduler::~Scheduler() { shutdown(); }

EventualPtr Scheduler::submit(TaskFn fn, const std::vector<EventualPtr>& deps) {
  auto done = Eventual::make();
  tasks_submitted_.fetch_add(1, std::memory_order_relaxed);

  // Wrap the body so its outcome always lands in `done`.
  auto body = [pool = pool_, fn = std::move(fn), done]() mutable {
    APIO_ASSERT_ON_STREAM();
    try {
      fn();
      done->set();
    } catch (...) {
      done->set_error(std::current_exception());
    }
  };

  if (deps.empty()) {
    pool_->push(std::move(body));
    return done;
  }

  // Count-down latch over the dependencies; the last completing
  // dependency enqueues the task.  Shared state keeps the body alive.
  struct PendingTask {
    std::atomic<std::size_t> remaining;
    TaskFn body;
    PoolPtr pool;
  };
  auto pending = std::make_shared<PendingTask>();
  pending->remaining.store(deps.size());
  pending->body = std::move(body);
  pending->pool = pool_;

  for (const auto& dep : deps) {
    APIO_REQUIRE(dep != nullptr, "null dependency eventual");
    dep->on_ready([pending] {
      if (pending->remaining.fetch_sub(1) == 1) {
        pending->pool->push(std::move(pending->body));
      }
    });
  }
  return done;
}

void Scheduler::shutdown() {
  pool_->close();
  for (auto& stream : streams_) stream->shutdown();
}

}  // namespace apio::tasking
