// Tests for the two-phase collective write (collective buffering).
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "storage/memory_backend.h"
#include "vol/async_connector.h"
#include "vol/native_connector.h"
#include "vol/passthrough_connector.h"
#include "workloads/two_phase.h"

namespace apio::workloads {
namespace {

h5::FilePtr mem_file() {
  return h5::File::create(std::make_shared<storage::MemoryBackend>());
}

/// Runs a two-phase write of `per_rank` int32 elements per rank and
/// verifies the dataset contents; returns the collective result.
TwoPhaseResult run_collective(int ranks, int aggregators, std::uint64_t per_rank,
                              bool async) {
  auto file = mem_file();
  std::shared_ptr<vol::Connector> connector;
  if (async) connector = std::make_shared<vol::AsyncConnector>(file);
  else connector = std::make_shared<vol::NativeConnector>(file);
  auto ds = file->root().create_dataset(
      "d", h5::Datatype::kInt32, {per_rank * static_cast<std::uint64_t>(ranks)});

  TwoPhaseResult result;
  pmpi::run(ranks, [&](pmpi::Communicator& comm) {
    const std::uint64_t offset = static_cast<std::uint64_t>(comm.rank()) * per_rank;
    std::vector<std::int32_t> values(per_rank);
    std::iota(values.begin(), values.end(), static_cast<std::int32_t>(offset));
    auto r = two_phase_write(*connector, comm, ds, offset,
                             std::as_bytes(std::span<const std::int32_t>(values)),
                             aggregators);
    if (comm.rank() == 0) result = r;
  });
  connector->wait_all();

  auto all = ds.read_vector<std::int32_t>(h5::Selection::all());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], static_cast<std::int32_t>(i)) << "element " << i;
  }
  connector->close();
  return result;
}

TEST(TwoPhaseTest, SingleAggregatorMergesEverythingIntoOneWrite) {
  const auto result = run_collective(6, 1, 100, /*async=*/false);
  EXPECT_EQ(result.requests_issued, 1u);
  EXPECT_EQ(result.total_bytes, 6u * 100 * sizeof(std::int32_t));
}

TEST(TwoPhaseTest, TwoAggregatorsTwoWrites) {
  const auto result = run_collective(8, 2, 64, false);
  EXPECT_EQ(result.requests_issued, 2u);
}

TEST(TwoPhaseTest, AggregatorPerRankDegeneratesToDirect) {
  const auto result = run_collective(4, 4, 32, false);
  EXPECT_EQ(result.requests_issued, 4u);
}

TEST(TwoPhaseTest, WorksThroughAsyncConnector) {
  const auto result = run_collective(6, 2, 128, /*async=*/true);
  EXPECT_EQ(result.requests_issued, 2u);
  EXPECT_GT(result.blocking_seconds, 0.0);
}

TEST(TwoPhaseTest, UnevenGroupSizes) {
  // 7 ranks over 3 aggregators: groups of 3/2/2 — everything must land.
  run_collective(7, 3, 50, false);
}

TEST(TwoPhaseTest, ReducesRequestCountVersusDirect) {
  // Count requests at the connector with a passthrough interposer.
  constexpr int kRanks = 8;
  constexpr std::uint64_t kPerRank = 64;
  auto file = mem_file();
  auto stack = std::make_shared<vol::PassthroughConnector>(
      std::make_shared<vol::NativeConnector>(file));
  auto ds = file->root().create_dataset(
      "d", h5::Datatype::kInt32, {kPerRank * kRanks});

  pmpi::run(kRanks, [&](pmpi::Communicator& comm) {
    const std::uint64_t offset = static_cast<std::uint64_t>(comm.rank()) * kPerRank;
    std::vector<std::int32_t> values(kPerRank, comm.rank());
    two_phase_write(*stack, comm, ds, offset,
                    std::as_bytes(std::span<const std::int32_t>(values)), 2);
  });
  // 8 ranks' worth of data reached storage in exactly 2 write calls.
  EXPECT_EQ(stack->stats().writes, 2u);
  EXPECT_EQ(stack->stats().bytes_written, kPerRank * kRanks * sizeof(std::int32_t));
}

TEST(TwoPhaseTest, ValidatesArguments) {
  auto file = mem_file();
  vol::NativeConnector connector(file);
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {8});
  pmpi::run(2, [&](pmpi::Communicator& comm) {
    std::vector<std::int32_t> values(4, 0);
    // Aggregator count out of range.
    EXPECT_THROW(two_phase_write(connector, comm, ds,
                                 static_cast<std::uint64_t>(comm.rank()) * 4,
                                 std::as_bytes(std::span<const std::int32_t>(values)),
                                 0),
                 InvalidArgumentError);
    comm.barrier();
  });
}

TEST(TwoPhaseTest, NonAdjacentSlabsStaySeparateRequests) {
  // Ranks write every other block: no merging possible, aggregator
  // issues one request per piece.
  constexpr int kRanks = 4;
  auto file = mem_file();
  auto stack = std::make_shared<vol::PassthroughConnector>(
      std::make_shared<vol::NativeConnector>(file));
  auto ds = file->root().create_dataset("d", h5::Datatype::kInt32, {kRanks * 2 * 8});

  pmpi::run(kRanks, [&](pmpi::Communicator& comm) {
    // Rank r owns elements [r*16, r*16+8): gaps of 8 between pieces.
    const std::uint64_t offset = static_cast<std::uint64_t>(comm.rank()) * 16;
    std::vector<std::int32_t> values(8, comm.rank());
    two_phase_write(*stack, comm, ds, offset,
                    std::as_bytes(std::span<const std::int32_t>(values)), 1);
  });
  EXPECT_EQ(stack->stats().writes, 4u);  // nothing merged across the gaps
}

}  // namespace
}  // namespace apio::workloads
