#include "analysis/source_model.h"

#include <algorithm>
#include <cctype>
#include <fstream>

namespace fs = std::filesystem;

namespace apio::analysis {

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

namespace {

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// True when position i in `line` starts a raw-string introducer
/// (R" with an optional encoding prefix already consumed by the caller).
bool raw_string_intro(const std::string& line, std::size_t i) {
  return line[i] == 'R' && i + 1 < line.size() && line[i + 1] == '"';
}

}  // namespace

bool has_token(std::string_view code, std::string_view needle) {
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string_view::npos) {
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t end = pos + needle.size();
    const bool right_ok = end >= code.size() || !is_ident_char(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

bool waived(std::string_view line, std::string_view rule) {
  const std::string marker = "apio-lint: allow(" + std::string(rule) + ")";
  return contains(line, marker);
}

std::string strip_noncode(const std::string& line, StripState& state) {
  std::string out;
  out.reserve(line.size());
  std::size_t i = 0;
  while (i < line.size()) {
    if (state.in_block_comment) {
      if (line.compare(i, 2, "*/") == 0) {
        state.in_block_comment = false;
        i += 2;
      } else {
        ++i;
      }
      continue;
    }
    if (state.in_raw_string) {
      const std::size_t end = line.find(state.raw_delim, i);
      if (end == std::string::npos) return out;  // literal continues next line
      state.in_raw_string = false;
      i = end + state.raw_delim.size();
      out += '"';  // keep a closing quote so tokens stay balanced
      continue;
    }
    const char c = line[i];
    if (line.compare(i, 2, "/*") == 0) {
      state.in_block_comment = true;
      i += 2;
      continue;
    }
    if (line.compare(i, 2, "//") == 0) break;
    if (raw_string_intro(line, i) &&
        (i == 0 || !is_ident_char(line[i - 1]) ||
         // encoding prefixes (u8R", LR", ...) still start a raw string;
         // identifiers ending in R (FooR"...") cannot occur in valid C++.
         line[i - 1] == '8' || line[i - 1] == 'u' || line[i - 1] == 'U' ||
         line[i - 1] == 'L')) {
      // R"delim( ... )delim"
      const std::size_t open = line.find('(', i + 2);
      if (open != std::string::npos) {
        state.raw_delim = ")" + line.substr(i + 2, open - (i + 2)) + "\"";
        out += '"';
        const std::size_t close = line.find(state.raw_delim, open + 1);
        if (close == std::string::npos) {
          state.in_raw_string = true;
          return out;
        }
        i = close + state.raw_delim.size();
        state.raw_delim.clear();
        out += '"';
        continue;
      }
    }
    if (c == '"') {
      out += '"';
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == '"') {
          out += '"';
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    if (c == '\'' && !(i > 0 && std::isalnum(static_cast<unsigned char>(
                                    line[i - 1])))) {
      // character literal (but not a 1'000 digit separator)
      out += '\'';
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == '\'') {
          out += '\'';
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

bool load_source(const fs::path& root, const fs::path& file, SourceFile& out) {
  std::ifstream in(file);
  if (!in) return false;
  out.path = file.generic_string();
  out.rel = fs::relative(file, root).generic_string();
  out.raw.clear();
  out.code.clear();
  StripState state;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    out.raw.push_back(line);
    out.code.push_back(strip_noncode(line, state));
  }
  return true;
}

std::vector<fs::path> collect_sources(const fs::path& root,
                                      const std::vector<std::string>& dirs) {
  std::vector<fs::path> files;
  for (const auto& dir : dirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<Token> tokenize(const SourceFile& file) {
  std::vector<Token> toks;
  bool in_directive = false;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& raw = li < file.raw.size() ? file.raw[li] : file.code[li];
    const int lineno = static_cast<int>(li) + 1;

    // Preprocessor lines (and their continuations) contribute nothing.
    const std::size_t first = raw.find_first_not_of(" \t");
    const bool continues = !raw.empty() && raw.back() == '\\';
    if (in_directive) {
      in_directive = continues;
      continue;
    }
    if (first != std::string::npos && raw[first] == '#') {
      in_directive = continues;
      continue;
    }

    const std::string& code = file.code[li];
    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (is_ident_char(c) && !(c >= '0' && c <= '9')) {
        std::size_t j = i + 1;
        while (j < code.size() && is_ident_char(code[j])) ++j;
        toks.push_back({Token::Kind::kIdent, code.substr(i, j - i), lineno});
        i = j;
        continue;
      }
      if (c >= '0' && c <= '9') {
        std::size_t j = i + 1;
        while (j < code.size() &&
               (is_ident_char(code[j]) || code[j] == '.' ||
                ((code[j] == '+' || code[j] == '-') &&
                 (code[j - 1] == 'e' || code[j - 1] == 'E' ||
                  code[j - 1] == 'p' || code[j - 1] == 'P')))) {
          ++j;
        }
        toks.push_back({Token::Kind::kNumber, code.substr(i, j - i), lineno});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        toks.push_back({Token::Kind::kPunct, "::", lineno});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        toks.push_back({Token::Kind::kPunct, "->", lineno});
        i += 2;
        continue;
      }
      toks.push_back({Token::Kind::kPunct, std::string(1, c), lineno});
      ++i;
    }
  }
  return toks;
}

}  // namespace apio::analysis
