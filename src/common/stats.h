// Small descriptive-statistics helpers used by the performance model,
// the contention analysis (Fig. 8) and the bench harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace apio {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a sample; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1); 0 for fewer than two points.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::span<const double> xs, double p);

/// Median shorthand.
double median(std::span<const double> xs);

/// Exponentially-weighted moving average with decay `alpha` in (0, 1];
/// newer samples carry more weight.  Used by the compute-time estimator
/// (Sec. III-B of the paper: "weighted average over the measurements
/// taken in previous iterations").
class Ewma {
 public:
  explicit Ewma(double alpha);

  void add(double x);
  bool empty() const { return !seeded_; }
  /// Current estimate; requires at least one sample.
  double value() const;

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace apio
